package heterosim

import (
	"math"
	"testing"
)

func TestWooLeeFacade(t *testing.T) {
	m := WooLee{N: 16, K: 0.3}
	ppw, err := m.PerfPerWatt(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ppw > 1 {
		t.Errorf("symmetric perf/W = %g, cannot exceed 1", ppw)
	}
	u := WooLeeUCore{N: 19, R: 2, Mu: 27.4, Phi: 0.79, Alpha: 1.75}
	ppw, err = u.PerfPerWatt(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ppw <= 1 {
		t.Errorf("ASIC U-core perf/W = %g, should exceed 1", ppw)
	}
}

func TestCriticalSectionsFacade(t *testing.T) {
	c := CriticalSections{FSeq: 0.1, FCrit: 0.3, PCtn: 0.5, N: 32}
	s, err := c.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	plain := 1 / (0.1 + 0.9/32)
	if s >= plain {
		t.Errorf("contended speedup %g should trail plain Amdahl %g", s, plain)
	}
}

func TestRooflineFacade(t *testing.T) {
	d := RooflineDevice{Name: "GTX285", PeakCompute: 700, PeakBandwidth: 159}
	p, err := d.Place("MMM", 32, 425)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound.String() != "compute-bound" {
		t.Errorf("MMM should be compute-bound, got %v", p.Bound)
	}
}

func TestValidationFacade(t *testing.T) {
	rep, err := CheckConclusions("forward", ITRS2009())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllHold() {
		t.Errorf("forward validation failed: %+v", rep.Results)
	}
	rep, err = CheckConclusions("backcast", BackcastRoadmap())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllHold() {
		t.Errorf("backcast validation failed: %+v", rep.Results)
	}
}

func TestAblationFacade(t *testing.T) {
	rs, err := AblateBandwidthBound(FFT1024, 0.999, 4)
	if err != nil {
		t.Fatal(err)
	}
	var asicRatio float64
	for _, r := range rs {
		if r.Design == "(6) ASIC" {
			asicRatio = r.Ratio
		}
	}
	if asicRatio < 3 {
		t.Errorf("ASIC bandwidth ablation ratio = %g, want > 3", asicRatio)
	}
	rs, err = AblatePowerBound(FFT1024, 0.999, 4)
	if err != nil {
		t.Fatal(err)
	}
	var cmpRatio float64
	for _, r := range rs {
		if r.Design == "(1) AsymCMP" {
			cmpRatio = r.Ratio
		}
	}
	if cmpRatio < 2 {
		t.Errorf("CMP power ablation ratio = %g, want > 2", cmpRatio)
	}
}

func TestMixFacade(t *testing.T) {
	asicMMM, _ := PublishedUCore(ASIC, MMM)
	gpuFFT, _ := PublishedUCore(GTX285, FFT1024)
	chip := MixChip{
		Law:            DefaultLaw(),
		SerialFraction: 0.1,
		Kernels: []MixKernel{
			{Name: "mmm", Weight: 0.45, UCore: asicMMM, ExemptBandwidth: true},
			{Name: "fft", Weight: 0.45, UCore: gpuFFT, BandwidthBCE: 57.9},
		},
		AreaBCE: 19, PowerBCE: 8.6, MaxR: 16,
	}
	alloc, err := chip.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Speedup <= 1 || math.IsNaN(alloc.Speedup) {
		t.Errorf("mix speedup = %g", alloc.Speedup)
	}
}

func TestTraceFacade(t *testing.T) {
	u, _ := PublishedUCore(GTX285, FFT1024)
	chip := TraceChip{
		Law: DefaultLaw(),
		R:   2,
		Fabrics: map[string]TraceFabric{
			"fft": {UCore: u, AreaBCE: 17},
		},
	}
	jobs, err := GenerateTrace(100, map[string]float64{"fft": 1}, 2, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(jobs, chip)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := TraceSpeedup(jobs, res)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 {
		t.Errorf("trace speedup = %g", sp)
	}
	if res.Utilization["fft"] <= 0 || res.Utilization["fft"] > 1 {
		t.Errorf("utilization = %g", res.Utilization["fft"])
	}
}
