package heterosim

import (
	"math"
	"testing"
)

func TestPublishedUCore(t *testing.T) {
	u, ok := PublishedUCore(ASIC, FFT1024)
	if !ok || u.Mu != 489 || u.Phi != 4.96 {
		t.Errorf("ASIC FFT-1024 = %+v, %v", u, ok)
	}
	if _, ok := PublishedUCore(R5870, BS); ok {
		t.Error("R5870 BS is unmeasured")
	}
}

func TestEvaluatorQuickstartFlow(t *testing.T) {
	u, ok := PublishedUCore(LX760, FFT1024)
	if !ok {
		t.Fatal("missing FPGA params")
	}
	ev := NewEvaluator()
	pt, err := ev.Optimize(Design{Kind: Het, Label: "fpga", UCore: u},
		0.99, Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Speedup <= 1 {
		t.Errorf("speedup = %g", pt.Speedup)
	}
	if pt.Limit != AreaLimited && pt.Limit != PowerLimited && pt.Limit != BandwidthLimited {
		t.Errorf("limit = %v", pt.Limit)
	}
}

func TestNewEvaluatorAlpha(t *testing.T) {
	ev, err := NewEvaluatorAlpha(2.25)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Law.Alpha() != 2.25 || ev.MaxR != 16 {
		t.Errorf("evaluator = %+v", ev)
	}
	if _, err := NewEvaluatorAlpha(-1); err == nil {
		t.Error("bad alpha must fail")
	}
}

func TestProjectWorkload(t *testing.T) {
	ts, err := ProjectWorkload(FFT1024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 6 {
		t.Fatalf("FFT lineup = %d designs, want 6", len(ts))
	}
	for _, tr := range ts {
		if len(tr.Points) != 5 {
			t.Errorf("%s: %d nodes, want 5", tr.Design.Label, len(tr.Points))
		}
	}
}

func TestProjectEnergy(t *testing.T) {
	ts, err := ProjectEnergy(MMM, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 7 {
		t.Fatalf("MMM lineup = %d designs, want 7", len(ts))
	}
}

func TestScenarios(t *testing.T) {
	ss := Scenarios()
	if len(ss) != 7 {
		t.Fatalf("scenarios = %d, want 7", len(ss))
	}
	ts, err := RunScenario(ss[2], FFT1024, 0.9) // 1 TB/s
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Error("no trajectories")
	}
}

func TestBudgetsFor(t *testing.T) {
	b, err := BudgetsFor(FFT1024, "40nm")
	if err != nil {
		t.Fatal(err)
	}
	if b.Area != 19 {
		t.Errorf("A = %g, want 19", b.Area)
	}
	if b.Power < 8 || b.Power > 9.3 {
		t.Errorf("P = %g, want ~8.6", b.Power)
	}
	if b.Bandwidth < 55 || b.Bandwidth > 61 {
		t.Errorf("B = %g, want ~58", b.Bandwidth)
	}
	// The helper and the hand-computed quickstart budgets agree.
	ev := NewEvaluator()
	u, _ := PublishedUCore(ASIC, FFT1024)
	viaHelper, err := ev.Optimize(Design{Kind: Het, UCore: u}, 0.99, b)
	if err != nil {
		t.Fatal(err)
	}
	viaHand, err := ev.Optimize(Design{Kind: Het, UCore: u}, 0.99,
		Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viaHelper.Speedup/viaHand.Speedup-1) > 0.02 {
		t.Errorf("helper %g vs hand %g", viaHelper.Speedup, viaHand.Speedup)
	}
	if _, err := BudgetsFor(FFT1024, "7nm"); err == nil {
		t.Error("unknown node must fail")
	}
	if _, err := BudgetsFor("bogus", "40nm"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestITRS2009(t *testing.T) {
	r := ITRS2009()
	if r.Len() != 5 {
		t.Errorf("roadmap length = %d", r.Len())
	}
}

func TestCalibrateReproducesTable5(t *testing.T) {
	table, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := table[GTX285][MMM]
	if !ok {
		t.Fatal("missing GTX285 MMM")
	}
	if math.Abs(got.Mu-3.41) > 0.07 || math.Abs(got.Phi-0.74) > 0.02 {
		t.Errorf("GTX285 MMM = (%.3f, %.3f), published (3.41, 0.74)", got.Mu, got.Phi)
	}
}

func TestProfiles(t *testing.T) {
	p, err := TwoPhaseProfile(0.9, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	u, _ := PublishedUCore(GTX285, FFT1024)
	s, err := p.SpeedupHeterogeneous(19, 2, u)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 {
		t.Errorf("profile speedup = %g", s)
	}
	if _, err := NewProfile(Phase{Weight: 0.4, Width: 1}, Phase{Weight: 0.6, Width: 8}); err != nil {
		t.Error(err)
	}
}
