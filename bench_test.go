// Benchmark harness: one benchmark per paper table and figure, each
// regenerating the corresponding dataset end-to-end through the public
// pipeline (simulate -> measure -> calibrate -> project). Run with
//
//	go test -bench=. -benchmem
//
// The EXPERIMENTS.md index maps each benchmark to its table/figure and
// records paper-vs-measured comparisons.
package heterosim

import (
	"testing"

	"github.com/calcm/heterosim/internal/ablation"
	"github.com/calcm/heterosim/internal/baseline"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/scenario"
	"github.com/calcm/heterosim/internal/sim"
	"github.com/calcm/heterosim/internal/validate"
)

// BenchmarkTable1Bounds solves the full Table 1 constraint system (all
// three chip models, every feasible r) at the 40nm FFT operating point.
func BenchmarkTable1Bounds(b *testing.B) {
	law := pollack.Default()
	budgets := bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	u := bounds.UCore{Mu: 489, Phi: 4.96}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for r := 1.0; r <= 11; r++ {
			if _, err := bounds.Symmetric(law, budgets, r); err != nil {
				b.Fatal(err)
			}
			if _, err := bounds.AsymmetricOffload(law, budgets, r); err != nil {
				b.Fatal(err)
			}
			if _, err := bounds.Heterogeneous(law, budgets, r, u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4Summary regenerates the MMM/Black-Scholes measurement
// summary through the full rig (kernels executed and verified).
func BenchmarkTable4Summary(b *testing.B) {
	rig, err := measure.IdealRig()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BuildTable4(rig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5UCoreParameters runs the complete Section 5.1
// calibration (measurement database + derivation).
func BenchmarkTable5UCoreParameters(b *testing.B) {
	rig, err := measure.IdealRig()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BuildTable5(rig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2FFTPerformance sweeps the FFT on all five devices
// (2^4..2^20) with kernel execution and verification at every size.
func BenchmarkFigure2FFTPerformance(b *testing.B) {
	s, err := sim.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BuildFigure2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3FFTPower regenerates the power-breakdown stacks.
func BenchmarkFigure3FFTPower(b *testing.B) {
	s, err := sim.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BuildFigure3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4FFTEfficiencyBandwidth regenerates energy efficiency
// and the GPU bandwidth-verification series.
func BenchmarkFigure4FFTEfficiencyBandwidth(b *testing.B) {
	s, err := sim.New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BuildFigure4(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5ITRS rebuilds and validates the roadmap series.
func BenchmarkFigure5ITRS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := itrs.ITRS2009()
		if err := r.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProjection is the common body of the Figure 6-9 benchmarks.
func benchProjection(b *testing.B, w paper.WorkloadID, fractions []float64, scen scenario.ID) {
	b.Helper()
	s, err := scenario.Get(scen)
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Apply(project.DefaultConfig(w))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fractions {
			if _, err := project.Project(cfg, f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure6FFTProjection regenerates the four FFT-1024 panels.
func BenchmarkFigure6FFTProjection(b *testing.B) {
	benchProjection(b, paper.FFT1024, paper.ProjectionFractions, scenario.Baseline)
}

// BenchmarkFigure7MMMProjection regenerates the four MMM panels
// (seven designs including the R5870).
func BenchmarkFigure7MMMProjection(b *testing.B) {
	benchProjection(b, paper.MMM, paper.ProjectionFractions, scenario.Baseline)
}

// BenchmarkFigure8BSProjection regenerates the two Black-Scholes panels.
func BenchmarkFigure8BSProjection(b *testing.B) {
	benchProjection(b, paper.BS, paper.BSProjectionFractions, scenario.Baseline)
}

// BenchmarkFigure9FFT1TBs regenerates the 1 TB/s FFT panels (Scenario 2).
func BenchmarkFigure9FFT1TBs(b *testing.B) {
	benchProjection(b, paper.FFT1024, paper.ProjectionFractions, scenario.HighBandwidth)
}

// BenchmarkFigure10MMMEnergy regenerates the three energy panels.
func BenchmarkFigure10MMMEnergy(b *testing.B) {
	cfg := project.DefaultConfig(paper.MMM)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, f := range paper.EnergyProjectionFractions {
			if _, err := project.ProjectEnergy(cfg, f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchScenario runs one Section 6.2 scenario against the baseline.
func benchScenario(b *testing.B, id scenario.ID, w paper.WorkloadID, f float64) {
	b.Helper()
	s, err := scenario.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := scenario.Compare(s, w, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario1LowBandwidth: 90 GB/s start (FFT).
func BenchmarkScenario1LowBandwidth(b *testing.B) {
	benchScenario(b, scenario.LowBandwidth, paper.FFT1024, 0.99)
}

// BenchmarkScenario2HighBandwidth: 1 TB/s start (FFT).
func BenchmarkScenario2HighBandwidth(b *testing.B) {
	benchScenario(b, scenario.HighBandwidth, paper.FFT1024, 0.9)
}

// BenchmarkScenario3HalfArea: 216 mm² core budget.
func BenchmarkScenario3HalfArea(b *testing.B) {
	benchScenario(b, scenario.HalfArea, paper.FFT1024, 0.99)
}

// BenchmarkScenario4DoublePower: 200 W budget.
func BenchmarkScenario4DoublePower(b *testing.B) {
	benchScenario(b, scenario.DoublePower, paper.FFT1024, 0.99)
}

// BenchmarkScenario5MobilePower: 10 W budget.
func BenchmarkScenario5MobilePower(b *testing.B) {
	benchScenario(b, scenario.MobilePower, paper.FFT1024, 0.9)
}

// BenchmarkScenario6SerialPower: alpha = 2.25.
func BenchmarkScenario6SerialPower(b *testing.B) {
	benchScenario(b, scenario.SerialPower, paper.FFT1024, 0.5)
}

// ---- Ablation benches: re-run the projection with one model ingredient
// removed, quantifying what each constraint contributes (DESIGN.md §6).

// BenchmarkAblationBandwidthBound removes the bandwidth constraint.
func BenchmarkAblationBandwidthBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ablation.BandwidthBound(paper.FFT1024, 0.999, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPowerBound removes the power constraint.
func BenchmarkAblationPowerBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ablation.PowerBound(paper.FFT1024, 0.999, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSequentialSizing pins r = 1 versus the full sweep.
func BenchmarkAblationSequentialSizing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ablation.SequentialSizing(paper.FFT1024, 0.5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOffload compares offload vs original asymmetric.
func BenchmarkAblationOffload(b *testing.B) {
	budgets := bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ablation.OffloadAssumption(0.99, budgets, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidationStudy runs the four-conclusion check on both the
// forward and the back-cast roadmaps (the paper's §6.3 validity check).
func BenchmarkValidationStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := validate.CheckConclusions("fwd", itrs.ITRS2009()); err != nil {
			b.Fatal(err)
		}
		if _, err := validate.CheckConclusions("back", validate.BackcastRoadmap()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrateFacade measures the public one-call calibration.
func BenchmarkCalibrateFacade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Calibrate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeSingleDesign measures one design-point optimization —
// the model's innermost hot path.
func BenchmarkOptimizeSingleDesign(b *testing.B) {
	ev := NewEvaluator()
	u, ok := PublishedUCore(ASIC, FFT1024)
	if !ok {
		b.Fatal("missing params")
	}
	d := Design{Kind: Het, UCore: u}
	budgets := Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Optimize(d, 0.99, budgets); err != nil {
			b.Fatal(err)
		}
	}
}
