package heterosim

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/project"
)

// TestEndToEndPipeline chains the whole reproduction: calibrate (µ, φ)
// from simulated measurements, feed the *derived* (not published)
// parameters into the projection engine, and confirm the paper's
// qualitative results still hold. This guards against the calibration
// and projection halves silently drifting apart.
func TestEndToEndPipeline(t *testing.T) {
	derived, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}

	// Build an FFT-1024 design lineup from derived parameters only.
	cfg := project.DefaultConfig(FFT1024)
	node, err := cfg.Roadmap.First()
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := cfg.BudgetsAt(node)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator()

	type entry struct {
		dev   DeviceID
		label string
	}
	lineup := []entry{
		{LX760, "FPGA"}, {GTX285, "GPU"}, {ASIC, "ASIC"},
	}
	results := map[string]Point{}
	for _, e := range lineup {
		p, ok := derived[e.dev][FFT1024]
		if !ok {
			t.Fatalf("calibration missing %s FFT-1024", e.dev)
		}
		d := Design{Kind: Het, Label: e.label, UCore: UCore{Mu: p.Mu, Phi: p.Phi}}
		pt, err := ev.Optimize(d, 0.99, budgets)
		if err != nil {
			t.Fatal(err)
		}
		results[e.label] = pt
	}
	cmpPt, err := ev.Optimize(Design{Kind: AsymCMP, Label: "CMP"}, 0.99, budgets)
	if err != nil {
		t.Fatal(err)
	}

	// Paper structure: ASIC on top, bandwidth-limited; HETs beat the CMP.
	if results["ASIC"].Limit != BandwidthLimited {
		t.Errorf("derived-parameter ASIC limit = %v", results["ASIC"].Limit)
	}
	if !(results["ASIC"].Speedup > results["GPU"].Speedup &&
		results["GPU"].Speedup > cmpPt.Speedup &&
		results["FPGA"].Speedup > cmpPt.Speedup) {
		t.Errorf("ordering broken: ASIC %.1f, GPU %.1f, FPGA %.1f, CMP %.1f",
			results["ASIC"].Speedup, results["GPU"].Speedup,
			results["FPGA"].Speedup, cmpPt.Speedup)
	}

	// The derived-parameter projection agrees with the published-parameter
	// projection within calibration rounding (2%).
	pubASIC, _ := PublishedUCore(ASIC, FFT1024)
	pubPt, err := ev.Optimize(Design{Kind: Het, Label: "pub", UCore: pubASIC}, 0.99, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results["ASIC"].Speedup/pubPt.Speedup-1) > 0.02 {
		t.Errorf("derived vs published ASIC projection: %.3f vs %.3f",
			results["ASIC"].Speedup, pubPt.Speedup)
	}
}

// TestEndToEndEnergyObjective chains calibration into the energy
// objective: with derived ASIC MMM parameters, the energy-optimal design
// beats the CMP by a large factor at f=0.9 (the paper's fourth finding).
func TestEndToEndEnergyObjective(t *testing.T) {
	derived, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := derived[ASIC][MMM]
	if !ok {
		t.Fatal("missing derived ASIC MMM")
	}
	ev := NewEvaluator()
	budgets := bounds.Budgets{Area: 19, Power: 8.7, Bandwidth: 339}
	asic, err := ev.OptimizeEnergy(core.Design{Kind: core.Het, UCore: bounds.UCore{Mu: p.Mu, Phi: p.Phi}}, 0.9, budgets)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := ev.OptimizeEnergy(core.Design{Kind: core.AsymCMP}, 0.9, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := cmp.EnergyNorm / asic.EnergyNorm; ratio < 3 {
		t.Errorf("derived-parameter energy advantage = %.2fx, want >= 3", ratio)
	}
}
