// Package heterosim is a Go reproduction of "Single-Chip Heterogeneous
// Computing: Does the Future Include Custom Logic, FPGAs, and GPGPUs?"
// (Chung, Milder, Hoe, Mai — MICRO 2010).
//
// It packages the paper's extended Hill & Marty analytical model —
// unconventional cores (U-cores) characterized by relative performance mu
// and relative power phi, evaluated under joint area, power, and
// bandwidth budgets — together with the calibration pipeline that derives
// (mu, phi) from device measurements and the ITRS-driven scaling
// projections of the paper's Section 6.
//
// This root package is the stable public API; the internal packages
// supply the machinery (device simulator, measurement rig, projection
// engine). Typical use:
//
//	u, _ := heterosim.PublishedUCore(heterosim.ASIC, heterosim.FFT1024)
//	ev := heterosim.NewEvaluator()
//	pt, _ := ev.Optimize(heterosim.Design{
//	    Kind: heterosim.Het, Label: "my accelerator", UCore: u,
//	}, 0.99, heterosim.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9})
//	fmt.Println(pt.Speedup, pt.Limit)
//
// or, at the study level:
//
//	ts, _ := heterosim.ProjectWorkload(heterosim.FFT1024, 0.99)
package heterosim

import (
	"context"
	"net"

	"github.com/calcm/heterosim/internal/ablation"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/metrics"
	"github.com/calcm/heterosim/internal/mix"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/profile"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/roofline"
	"github.com/calcm/heterosim/internal/scenario"
	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/trace"
	"github.com/calcm/heterosim/internal/ucore"
	"github.com/calcm/heterosim/internal/validate"
	"github.com/calcm/heterosim/internal/version"
)

// Model primitives re-exported from the internal engine.
type (
	// UCore characterizes a BCE-sized unconventional core: Mu is relative
	// performance, Phi relative active power (Section 3.3 of the paper).
	UCore = bounds.UCore
	// Budgets carries chip budgets in BCE-relative units (Table 1).
	Budgets = bounds.Budgets
	// Limit identifies the binding budget of a design point.
	Limit = bounds.Limit
	// Design is one chip alternative (symmetric CMP, asymmetric-offload
	// CMP, or U-core heterogeneous).
	Design = core.Design
	// Point is one evaluated design point.
	Point = core.Point
	// Evaluator optimizes designs under budgets.
	Evaluator = core.Evaluator
	// Trajectory is a design's evolution across ITRS nodes.
	Trajectory = project.Trajectory
	// NodePoint is one trajectory sample.
	NodePoint = project.NodePoint
	// Config parameterizes a projection study.
	Config = project.Config
	// Scenario is one Section 6.2 alternative-assumption study.
	Scenario = scenario.Scenario
	// Roadmap is the ITRS 2009 node sequence.
	Roadmap = itrs.Roadmap
	// Node is one technology generation.
	Node = itrs.Node
	// Params is a derived (mu, phi) pair.
	Params = ucore.Params
	// Measurement is one calibration observation.
	Measurement = ucore.Measurement
	// Profile models varying degrees of parallelism (future-work
	// extension).
	Profile = profile.Profile
	// Phase is one segment of a parallelism profile.
	Phase = profile.Phase
	// MixChip is a mixed-fabric design problem (Section 6.3 extension):
	// several U-core fabrics on one die, powered on-demand per kernel.
	MixChip = mix.Chip
	// MixKernel is one workload in a mixed-fabric chip.
	MixKernel = mix.Kernel
	// MixAllocation is the mixed-fabric optimizer's result.
	MixAllocation = mix.Allocation
)

// DefaultLaw returns the paper's sequential-core law (Pollack's rule with
// alpha = 1.75) for use in mixed-fabric problems.
func DefaultLaw() pollack.Law { return pollack.Default() }

// Chip kinds.
const (
	SymCMP  = core.SymCMP
	AsymCMP = core.AsymCMP
	Het     = core.Het
)

// Limiting factors.
const (
	AreaLimited      = bounds.AreaLimited
	PowerLimited     = bounds.PowerLimited
	BandwidthLimited = bounds.BandwidthLimited
	Infeasible       = bounds.Infeasible
)

// Device identifiers (Table 2).
const (
	CoreI7 = paper.CoreI7
	GTX285 = paper.GTX285
	GTX480 = paper.GTX480
	R5870  = paper.R5870
	LX760  = paper.LX760
	ASIC   = paper.ASIC
)

// Workload identifiers (Tables 3-5).
const (
	MMM      = paper.MMM
	BS       = paper.BS
	FFT64    = paper.FFT64
	FFT1024  = paper.FFT1024
	FFT16384 = paper.FFT16384
)

// DeviceID and WorkloadID name the catalog axes.
type (
	DeviceID   = paper.DeviceID
	WorkloadID = paper.WorkloadID
)

// NewEvaluator returns an evaluator with the paper's defaults
// (Pollack's law, alpha = 1.75, r swept 1..16).
func NewEvaluator() Evaluator { return core.NewEvaluator() }

// NewEvaluatorAlpha returns an evaluator with a custom sequential power
// exponent (Scenario 6 uses 2.25).
func NewEvaluatorAlpha(alpha float64) (Evaluator, error) {
	law, err := pollack.New(alpha)
	if err != nil {
		return Evaluator{}, err
	}
	return Evaluator{Law: law, MaxR: paper.MaxSweepR}, nil
}

// PublishedUCore returns the paper's Table 5 parameters for a device and
// workload; ok is false for combinations the paper could not measure.
func PublishedUCore(d DeviceID, w WorkloadID) (UCore, bool) {
	p, ok := ucore.PublishedParams(d, w)
	if !ok {
		return UCore{}, false
	}
	return UCore{Mu: p.Mu, Phi: p.Phi}, true
}

// DefaultConfig returns the paper's baseline projection configuration
// (432 mm² core area, 100 W, 180 GB/s with ITRS scaling) for a workload.
func DefaultConfig(w WorkloadID) Config { return project.DefaultConfig(w) }

// ProjectWorkload projects the paper's full design lineup for a workload
// at parallel fraction f under baseline assumptions (Figures 6-8).
func ProjectWorkload(w WorkloadID, f float64) ([]Trajectory, error) {
	return project.Project(DefaultConfig(w), f)
}

// ProjectEnergy projects energy-optimal designs (Figure 10's objective).
func ProjectEnergy(w WorkloadID, f float64) ([]Trajectory, error) {
	return project.ProjectEnergy(DefaultConfig(w), f)
}

// Scenarios returns the baseline plus the six Section 6.2 scenarios.
func Scenarios() []Scenario { return scenario.All() }

// RunScenario projects a workload under one scenario.
func RunScenario(s Scenario, w WorkloadID, f float64) ([]Trajectory, error) {
	return scenario.Run(s, w, f)
}

// ITRS2009 returns the Table 6 roadmap.
func ITRS2009() Roadmap { return itrs.ITRS2009() }

// BudgetsFor converts the paper's physical budgets at a named technology
// node (e.g. "40nm", "22nm") into BCE-relative units for a workload —
// the (A, P, B) triple the evaluator consumes. It uses the baseline
// configuration (432 mm², 100 W, 180 GB/s ITRS-scaled).
func BudgetsFor(w WorkloadID, nodeName string) (Budgets, error) {
	cfg := project.DefaultConfig(w)
	node, err := cfg.Roadmap.ByName(nodeName)
	if err != nil {
		return Budgets{}, err
	}
	return cfg.BudgetsAt(node)
}

// Calibrate runs the full simulated measurement and calibration pipeline
// (Sections 4-5): execute and verify the real kernels on the device
// simulator, probe power, subtract uncore components, and derive the
// U-core parameter table. The result reproduces the paper's Table 5.
func Calibrate() (map[DeviceID]map[WorkloadID]Params, error) {
	rig, err := measure.IdealRig()
	if err != nil {
		return nil, err
	}
	db, err := rig.BuildDatabase()
	if err != nil {
		return nil, err
	}
	return db.DeriveTable5()
}

// NewProfile builds a varying-parallelism profile (future-work
// extension); weights must sum to 1, widths must be >= 1.
func NewProfile(phases ...Phase) (Profile, error) { return profile.New(phases...) }

// TwoPhaseProfile builds the classic Amdahl split: 1-f serial, f parallel
// at the given width.
func TwoPhaseProfile(f, width float64) (Profile, error) { return profile.TwoPhase(f, width) }

// Related-work model family and analysis tools, re-exported for
// downstream studies.
type (
	// WooLee is the symmetric-multicore energy model of Woo & Lee.
	WooLee = metrics.WooLee
	// WooLeeUCore is its U-core extension.
	WooLeeUCore = metrics.WooLeeUCore
	// CriticalSections is Eyerman & Eeckhout's Amdahl refinement.
	CriticalSections = metrics.CriticalSections
	// RooflineDevice is a peak-compute/peak-bandwidth machine.
	RooflineDevice = roofline.Device
	// ValidationReport is a four-conclusion model-validity check.
	ValidationReport = validate.Report
	// AblationResult compares a design with and without one model
	// ingredient.
	AblationResult = ablation.Result
	// TraceJob is one kernel invocation in a replayable stream.
	TraceJob = trace.Job
	// TraceChip is a mixed-fabric chip for time-domain replay.
	TraceChip = trace.Chip
	// TraceFabric is one on-die U-core pool in a TraceChip.
	TraceFabric = trace.Fabric
	// TraceResult summarizes one replay (busy time, utilization, energy).
	TraceResult = trace.Result
)

// GenerateTrace builds a deterministic random kernel stream: count jobs
// drawn from the weighted kernel mix, exponential work around meanWork,
// serial prologues of serialFraction x meanWork on average.
func GenerateTrace(count int, mix map[string]float64, meanWork, serialFraction float64, seed int64) ([]TraceJob, error) {
	return trace.Generate(count, mix, meanWork, serialFraction, seed)
}

// ReplayTrace executes a job stream on a mixed-fabric chip (fabrics
// powered on-demand) and returns timing, utilization, and energy.
func ReplayTrace(jobs []TraceJob, c TraceChip) (TraceResult, error) {
	return trace.Replay(jobs, c)
}

// TraceSpeedup returns the replayed stream's speedup over one BCE core.
func TraceSpeedup(jobs []TraceJob, res TraceResult) (float64, error) {
	return trace.Speedup(jobs, res)
}

// CheckConclusions evaluates the paper's four conclusions over a roadmap
// (the §6.3 model-validity check).
func CheckConclusions(name string, roadmap Roadmap) (ValidationReport, error) {
	return validate.CheckConclusions(name, roadmap)
}

// BackcastRoadmap returns the 65nm-anchored validation roadmap.
func BackcastRoadmap() Roadmap { return validate.BackcastRoadmap() }

// AblateBandwidthBound re-projects a workload with the bandwidth
// constraint removed, at the given node index.
func AblateBandwidthBound(w WorkloadID, f float64, nodeIdx int) ([]AblationResult, error) {
	return ablation.BandwidthBound(w, f, nodeIdx)
}

// AblatePowerBound re-projects with the power constraint removed.
func AblatePowerBound(w WorkloadID, f float64, nodeIdx int) ([]AblationResult, error) {
	return ablation.PowerBound(w, f, nodeIdx)
}

// Serving layer (the heterosimd daemon's engine), re-exported so library
// consumers can embed the model service in their own processes.
type (
	// Server is the JSON-over-HTTP serving layer: the four model
	// endpoints backed by a sharded result cache with request coalescing
	// and a bounded-concurrency admission gate.
	Server = server.Server
	// ServerConfig parameterizes the serving layer; the zero value uses
	// production defaults.
	ServerConfig = server.Config
	// VersionInfo is the build identity served by /v1/version.
	VersionInfo = version.Info
)

// NewServer builds the serving layer. Mount NewServer(cfg).Handler() in
// an existing mux, or use Serve for a managed listener.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Serve runs the model service on cfg.Addr until ctx is cancelled, then
// drains in-flight requests. ready, if non-nil, receives the bound
// address once listening (useful with ":0" for tests).
func Serve(ctx context.Context, cfg ServerConfig, ready chan<- net.Addr) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	return s.ListenAndServe(ctx, ready)
}

// Version reports the build identity (stamped via -ldflags in releases).
func Version() VersionInfo { return version.Get() }
