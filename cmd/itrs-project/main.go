// Command itrs-project runs a single flag-tunable ITRS scaling projection
// — the building block of the paper's Figures 6-9 — and prints speedup
// trajectories with limiting-factor attribution.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "itrs-project:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("itrs-project", flag.ContinueOnError)
	wname := fs.String("workload", "FFT-1024", "MMM, BS, FFT-64, FFT-1024, or FFT-16384")
	f := fs.Float64("f", 0.99, "parallel fraction")
	power := fs.Float64("power", 100, "core power budget in watts")
	bw := fs.Float64("bandwidth", 180, "starting off-chip bandwidth in GB/s")
	areaScale := fs.Float64("areascale", 1, "area budget scale factor")
	alpha := fs.Float64("alpha", 1.75, "sequential power-law exponent")
	maxR := fs.Int("maxr", 16, "sequential core sweep bound")
	csvOut := fs.Bool("csv", false, "emit CSV")
	energy := fs.Bool("energy", false, "optimize for minimum energy instead of speedup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w paper.WorkloadID
	switch *wname {
	case "MMM":
		w = paper.MMM
	case "BS":
		w = paper.BS
	case "FFT-64":
		w = paper.FFT64
	case "FFT-1024":
		w = paper.FFT1024
	case "FFT-16384":
		w = paper.FFT16384
	default:
		return fmt.Errorf("unknown workload %q", *wname)
	}
	cfg := project.DefaultConfig(w)
	cfg.PowerBudgetW = *power
	cfg.BaseBandwidthGBs = *bw
	cfg.AreaScale = *areaScale
	cfg.Alpha = *alpha
	cfg.MaxR = *maxR

	var (
		ts  []project.Trajectory
		err error
	)
	if *energy {
		ts, err = project.ProjectEnergy(cfg, *f)
	} else {
		ts, err = project.Project(cfg, *f)
	}
	if err != nil {
		return err
	}
	nodes := cfg.Roadmap.Nodes()
	labels := make([]string, len(nodes))
	for i, n := range nodes {
		labels[i] = n.Name
	}
	metric := func(p project.NodePoint) float64 {
		if *energy {
			return p.EnergyNode
		}
		return p.Point.Speedup
	}
	if *csvOut {
		var rows [][]string
		for _, tr := range ts {
			vals := make([]float64, len(tr.Points))
			for i, p := range tr.Points {
				if p.Valid {
					vals[i] = metric(p)
				} else {
					vals[i] = math.NaN()
				}
			}
			rows = append(rows, report.FloatRow(tr.Design.Label, vals...))
		}
		return report.WriteCSV(os.Stdout, append([]string{"design"}, labels...), rows)
	}
	kind := "speedup"
	if *energy {
		kind = "normalized energy"
	}
	t := report.NewTable(
		fmt.Sprintf("%s projection: %s, f=%.3f, %gW, %gGB/s, alpha=%.2f",
			kind, w, *f, *power, *bw, *alpha),
		append([]string{"Design"}, labels...)...)
	for _, tr := range ts {
		row := []string{tr.Design.Label}
		for _, p := range tr.Points {
			if !p.Valid {
				row = append(row, "infeasible")
				continue
			}
			row = append(row, fmt.Sprintf("%s (%s,r=%d)",
				report.FormatFloat(metric(p)), p.Point.Limit.String()[:1], p.Point.R))
		}
		t.AddRow(row...)
	}
	return t.Render(os.Stdout)
}
