package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestDefaultRun(t *testing.T) {
	out, err := capture(t, func() error { return run(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FFT-1024", "40nm", "11nm", "(6) ASIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAllWorkloads(t *testing.T) {
	for _, w := range []string{"MMM", "BS", "FFT-64", "FFT-1024", "FFT-16384"} {
		if _, err := capture(t, func() error {
			return run([]string{"-workload", w, "-f", "0.9"})
		}); err != nil {
			t.Errorf("%s: %v", w, err)
		}
	}
	if err := run([]string{"-workload", "SPECint"}); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestCSVMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-csv", "-workload", "MMM"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "design,40nm") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestEnergyMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-energy", "-workload", "MMM", "-f", "0.9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "normalized energy") {
		t.Errorf("energy title missing:\n%s", out)
	}
}

func TestBudgetFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-power", "10", "-bandwidth", "90", "-alpha", "2.25", "-maxr", "8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10W") || !strings.Contains(out, "alpha=2.25") {
		t.Errorf("flag echo missing:\n%s", out)
	}
	// 10 W makes 40nm infeasible.
	if !strings.Contains(out, "infeasible") {
		t.Errorf("expected infeasible 40nm at 10 W:\n%s", out)
	}
}
