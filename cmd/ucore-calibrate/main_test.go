package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestIdealCalibration(t *testing.T) {
	out, err := capture(t, func() error { return run(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Derived U-core parameters", "ASIC", "FFT-1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCSVCalibration(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-csv"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "device,workload,phi,mu") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
	if !strings.Contains(out, "ASIC,FFT-1024,4.96") {
		t.Errorf("published ASIC FFT row missing:\n%s", out)
	}
}

func TestNoisyCalibration(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-noise", "0.03", "-samples", "200", "-seed", "42"})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-noise", "-1"}); err == nil {
		t.Error("negative noise must fail")
	}
	if err := run([]string{"-samples", "0"}); err == nil {
		t.Error("zero samples must fail")
	}
}
