// Command ucore-calibrate runs the standalone Section 5.1 calibration:
// it simulates the measurement campaign (kernels verified on the device
// simulator, power probed and uncore-subtracted) and emits the derived
// U-core parameter table as CSV or text, optionally exercising a noisy
// probe to show the methodology's robustness.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/calcm/heterosim/internal/baseline"
	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ucore-calibrate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ucore-calibrate", flag.ContinueOnError)
	noise := fs.Float64("noise", 0, "relative probe noise per sample (0 = ideal probe)")
	samples := fs.Int("samples", 1, "probe samples averaged per measurement")
	seed := fs.Int64("seed", 1, "noise seed")
	csvOut := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := sim.New()
	if err != nil {
		return err
	}
	rig, err := measure.NewRig(s, *noise, *seed, *samples)
	if err != nil {
		return err
	}
	cells, err := baseline.BuildTable5(rig)
	if err != nil {
		return err
	}
	if *csvOut {
		rows := make([][]string, 0, len(cells))
		for _, c := range cells {
			rows = append(rows, []string{
				string(c.Device), string(c.Workload),
				fmt.Sprintf("%.6g", c.Derived.Phi), fmt.Sprintf("%.6g", c.Derived.Mu),
				fmt.Sprintf("%.6g", c.Published.Phi), fmt.Sprintf("%.6g", c.Published.Mu),
			})
		}
		return report.WriteCSV(os.Stdout,
			[]string{"device", "workload", "phi", "mu", "published_phi", "published_mu"}, rows)
	}
	t := report.NewTable("Derived U-core parameters (Table 5)",
		"Device", "Workload", "phi", "mu", "pub phi", "pub mu")
	for _, c := range cells {
		t.AddRowf(string(c.Device), string(c.Workload),
			c.Derived.Phi, c.Derived.Mu, c.Published.Phi, c.Published.Mu)
	}
	return t.Render(os.Stdout)
}
