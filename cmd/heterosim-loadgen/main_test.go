package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/loadgen"
)

func TestScenariosLists(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range loadgen.BuiltinNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("scenarios output missing %q:\n%s", name, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"scenarios", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var scs []loadgen.Scenario
	if err := json.Unmarshal(out.Bytes(), &scs); err != nil {
		t.Fatalf("scenarios -json is not valid JSON: %v", err)
	}
	if len(scs) != len(loadgen.BuiltinNames()) {
		t.Errorf("got %d scenarios, want %d", len(scs), len(loadgen.BuiltinNames()))
	}
}

// TestRunDeterministicEndToEnd is the CLI spelling of the tentpole
// acceptance criterion: two fixed-seed runs produce byte-identical CSV,
// and the summary they emit passes its own check command.
func TestRunDeterministicEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	sum := filepath.Join(dir, "summary.json")

	var out bytes.Buffer
	if err := run([]string{"run", "-name", "smoke", "-deterministic", "-csv", csv1, "-summary", sum}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-name", "smoke", "-deterministic", "-csv", csv2}, &out); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(csv1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(csv2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("fixed-seed CSVs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", b1, b2)
	}
	if !strings.HasPrefix(string(b1), "scenario,seq,offset_us,") {
		t.Errorf("CSV missing pinned header: %q", strings.SplitN(string(b1), "\n", 2)[0])
	}

	out.Reset()
	if err := run([]string{"check", "-summary", sum}, &out); err != nil {
		t.Errorf("check rejected a clean run summary: %v", err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("check output %q does not confirm", out.String())
	}
}

func TestRunConfigFileAndOverrides(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sc.json")
	body := `{
		"name": "custom", "requests": 100,
		"arrival": {"process": "closed", "concurrency": 1},
		"mix": {"optimize": 1, "models": 1},
		"hitRatio": 0.4, "keySpace": 4
	}`
	if err := os.WriteFile(cfg, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	sum := filepath.Join(dir, "summary.json")
	var out bytes.Buffer
	// -requests cuts the run down; -seed moves it off the default.
	if err := run([]string{"run", "-config", cfg, "-deterministic",
		"-requests", "20", "-seed", "9", "-summary", sum}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	var s loadgen.Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Scenario != "custom" || s.Requests != 20 || s.Seed != 9 {
		t.Errorf("overrides not applied: %+v", s)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","requests":1,"arrival":{"process":"warp"},"mix":{"optimize":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no scenario", []string{"run"}, "-name or -config"},
		{"unknown name", []string{"run", "-name", "nope"}, "unknown scenario"},
		{"bad config", []string{"run", "-config", bad}, "arrival process"},
		{"unknown subcommand", []string{"flood"}, "unknown subcommand"},
		{"check without input", []string{"check"}, "-summary or -bench"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &out)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckCatchesDriftAndFailure(t *testing.T) {
	dir := t.TempDir()
	good := loadgen.Summary{
		Scenario: "s", Server: "baseline", Seed: 1,
		Requests: 10, OK: 10, DurationMS: 5, ThroughputRPS: 2000,
		LatencyP50US: 100, LatencyP99US: 200, LatencyMaxUS: 250, LatencySamples: 10,
	}
	write := func(name string, v any) string {
		t.Helper()
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	var out bytes.Buffer
	if err := run([]string{"check", "-summary", write("good.json", good)}, &out); err != nil {
		t.Fatalf("clean summary rejected: %v", err)
	}

	// Unexpected errors fail the invariants.
	broken := good
	broken.OK = 8
	broken.TransportErrors = 2
	if err := run([]string{"check", "-summary", write("broken.json", broken)}, &out); err == nil ||
		!strings.Contains(err.Error(), "transport errors") {
		t.Errorf("transport errors not caught: %v", err)
	}

	// Schema drift (an unknown field) fails the strict parse.
	drifted := filepath.Join(dir, "drifted.json")
	if err := os.WriteFile(drifted, []byte(`{"scenario":"s","requests":1,"renamedField":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-summary", drifted}, &out); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("schema drift not caught: %v", err)
	}

	// Bench documents: every cell is held to the invariants.
	doc := loadgen.NewBenchDoc(loadgen.DefaultMatrix(), []loadgen.Summary{good, broken})
	if err := run([]string{"check", "-bench", write("bench.json", doc)}, &out); err == nil ||
		!strings.Contains(err.Error(), "transport errors") {
		t.Errorf("bad bench cell not caught: %v", err)
	}
	okDoc := loadgen.NewBenchDoc(loadgen.DefaultMatrix(), []loadgen.Summary{good})
	if err := run([]string{"check", "-bench", write("okbench.json", okDoc)}, &out); err != nil {
		t.Errorf("clean bench rejected: %v", err)
	}
}
