// Command heterosim-loadgen is the load-generation and scenario-matrix
// harness for the serving stack. It drives declarative traffic
// scenarios — endpoint mix, open-loop Poisson or closed-loop arrivals, a
// target cache-hit ratio, fault and deadline distributions — through
// internal/client against either a live daemon or an in-process one,
// with every request stream a deterministic function of the scenario
// seed.
//
// Usage:
//
//	heterosim-loadgen scenarios [-json]
//	heterosim-loadgen run [-name SCENARIO | -config FILE]
//	                      [-addr URL] [-csv FILE] [-summary FILE]
//	                      [-seed N] [-requests N] [-duration D]
//	                      [-deterministic] [server flags]
//	heterosim-loadgen matrix [-out FILE] [-csv-dir DIR]
//	heterosim-loadgen check -summary FILE | -bench FILE
//
// run without -addr boots a fresh in-process daemon (configured by the
// server flags) on an ephemeral port, so a scenario is reproducible
// without any standing infrastructure; with -addr it aims the same
// traffic at a live daemon. -deterministic swaps the wall clock for the
// logical clock: with a sequential scenario (closed loop, concurrency
// 1) the per-request CSV is then byte-identical across invocations,
// which is what the CI smoke diffs.
//
// matrix runs the BENCH_8 measurement matrix — every shipped
// measurement scenario against the baseline and constrained server
// configurations — and writes the BENCH_8.json document.
//
// check re-parses a summary (or bench document) strictly against the
// schema and holds it to the harness invariants: traffic moved, every
// request accounted for, no unexpected failures. CI gates on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/calcm/heterosim/internal/baseurl"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "heterosim-loadgen:", err)
		os.Exit(1)
	}
}

// run dispatches subcommands; out receives everything the user asked to
// see (tests capture it).
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "scenarios":
		return cmdScenarios(rest, out)
	case "run":
		return cmdRun(rest, out)
	case "matrix":
		return cmdMatrix(rest, out)
	case "check":
		return cmdCheck(rest, out)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `heterosim-loadgen — load-generation and scenario-matrix harness

Subcommands:
  scenarios  list the shipped traffic scenarios
  run        run one scenario against a live or in-process daemon
  matrix     run the BENCH_8 scenario x server-config matrix
  check      validate a summary (or bench document) against schema and invariants

run flags:
  -name          shipped scenario to run (see scenarios)
  -config        scenario JSON file (strict schema; overrides -name)
  -addr          base URL of a live daemon, or a comma-separated list of
                 cluster members for pick-first failover
                 (default: boot one in-process)
  -csv           write the per-request CSV time series here ("-" = stdout)
  -summary       write the run summary JSON here ("-" = stdout)
  -seed          override the scenario seed
  -requests      override the scenario request budget
  -duration      override the scenario duration bound
  -deterministic drive the run on the logical clock (virtual time)

run server flags (in-process daemon only):
  -server-name -workers -cache-entries -max-inflight -max-queue
  -queue-timeout -request-timeout

matrix flags:
  -out       write the BENCH_8 document here (default BENCH_8.json)
  -csv-dir   write one per-request CSV per cell into this directory

check flags:
  -summary   summary JSON file to validate
  -bench     BENCH_8-style document to validate (every result checked)
`)
}

func cmdScenarios(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit the full scenario definitions as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scs []loadgen.Scenario
	for _, name := range loadgen.BuiltinNames() {
		sc, _ := loadgen.Builtin(name)
		scs = append(scs, sc)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(scs)
	}
	fmt.Fprintf(out, "%-14s %-8s %9s %12s %9s %7s  %s\n",
		"name", "arrival", "requests", "rate/conc", "hitRatio", "faults", "mix")
	for _, sc := range scs {
		load := fmt.Sprintf("conc=%d", sc.Arrival.Concurrency)
		if sc.Arrival.Process == "poisson" {
			load = fmt.Sprintf("%.0fHz", sc.Arrival.RateHz)
		}
		faults := "no"
		if sc.Faults != "" {
			faults = "yes"
		}
		fmt.Fprintf(out, "%-14s %-8s %9d %12s %9.2f %7s  %d endpoints\n",
			sc.Name, sc.Arrival.Process, sc.Requests, load, sc.HitRatio, faults, len(sc.Mix))
	}
	return nil
}

// serverFlags registers the in-process daemon knobs and returns a
// loader that assembles the ServerConfig after parsing.
func serverFlags(fs *flag.FlagSet) func() loadgen.ServerConfig {
	name := fs.String("server-name", "baseline", "server configuration label")
	workers := fs.Int("workers", 0, "evaluation worker pool (0 = server default)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache budget (0 = server default)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent evaluations admitted (0 = server default)")
	maxQueue := fs.Int("max-queue", 0, "queued requests before 429 (0 = server default)")
	queueTimeout := fs.Duration("queue-timeout", 0, "queued-request wait before 503 (0 = server default)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline before 504 (0 = server default)")
	return func() loadgen.ServerConfig {
		return loadgen.ServerConfig{
			Name:           *name,
			Workers:        *workers,
			CacheEntries:   *cacheEntries,
			MaxInflight:    *maxInflight,
			MaxQueue:       *maxQueue,
			QueueTimeout:   loadgen.Duration(*queueTimeout),
			RequestTimeout: loadgen.Duration(*requestTimeout),
		}
	}
}

// loadScenario resolves -name/-config plus the override flags.
func loadScenario(name, config string, seed int64, requests int, duration time.Duration) (loadgen.Scenario, error) {
	var sc loadgen.Scenario
	switch {
	case config != "":
		data, err := os.ReadFile(config)
		if err != nil {
			return sc, err
		}
		sc, err = loadgen.ParseScenario(data)
		if err != nil {
			return sc, fmt.Errorf("%s: %w", config, err)
		}
	case name != "":
		var ok bool
		sc, ok = loadgen.Builtin(name)
		if !ok {
			return sc, fmt.Errorf("unknown scenario %q (try: heterosim-loadgen scenarios)", name)
		}
	default:
		return sc, fmt.Errorf("run needs -name or -config")
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if requests != 0 {
		sc.Requests = requests
	}
	if duration != 0 {
		sc.Duration = loadgen.Duration(duration)
	}
	return sc, sc.Validate()
}

// openSink opens path for writing; "-" is the shared output stream.
func openSink(path string, out io.Writer) (io.Writer, func() error, error) {
	if path == "-" {
		return out, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	name := fs.String("name", "", "shipped scenario name")
	config := fs.String("config", "", "scenario JSON file")
	addr := fs.String("addr", "", "live daemon base URL, comma-separated for a cluster (empty = in-process)")
	csvPath := fs.String("csv", "", "per-request CSV destination (\"-\" = stdout)")
	summaryPath := fs.String("summary", "", "summary JSON destination (\"-\" = stdout)")
	seed := fs.Int64("seed", 0, "override the scenario seed")
	requests := fs.Int("requests", 0, "override the scenario request budget")
	duration := fs.Duration("duration", 0, "override the scenario duration bound")
	deterministic := fs.Bool("deterministic", false, "drive the run on the logical clock")
	server := serverFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := loadScenario(*name, *config, *seed, *requests, *duration)
	if err != nil {
		return err
	}

	cfg := loadgen.RunConfig{}
	if *deterministic {
		cfg.Clock = loadgen.NewLogicalClock(time.Unix(0, 0), time.Millisecond)
	}
	if *csvPath != "" {
		w, closeCSV, err := openSink(*csvPath, out)
		if err != nil {
			return err
		}
		defer closeCSV()
		cfg.Recorders = append(cfg.Recorders, loadgen.NewCSVRecorder(w))
	}

	srvCfg := server()
	if *addr != "" {
		// One shared normalizer (internal/baseurl) handles bare
		// host:port, trailing slashes, and comma-separated cluster
		// lists; a list drives the client's pick-first failover.
		urls, err := baseurl.NormalizeList(*addr)
		if err != nil {
			return fmt.Errorf("-addr: %w", err)
		}
		if len(urls) == 1 {
			cfg.BaseURL = urls[0]
		} else {
			cfg.BaseURLs = urls
		}
		cfg.ServerName = "live"
	} else {
		baseURL, stop, err := loadgen.StartInProcess(sc, srvCfg)
		if err != nil {
			return err
		}
		defer stop()
		cfg.BaseURL = baseURL
		cfg.ServerName = srvCfg.Name
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	sum, err := loadgen.Run(ctx, sc, cfg)
	if err != nil {
		return err
	}
	if *summaryPath != "" {
		w, closeSum, err := openSink(*summaryPath, out)
		if err != nil {
			return err
		}
		defer closeSum()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	}
	if *summaryPath != "-" && *csvPath != "-" {
		loadgen.FormatSummaries(out, []loadgen.Summary{sum})
	}
	return nil
}

func cmdMatrix(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	outPath := fs.String("out", "BENCH_8.json", "BENCH_8 document destination")
	csvDir := fs.String("csv-dir", "", "per-cell CSV directory (empty = no CSVs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	m := loadgen.DefaultMatrix()
	sums, err := loadgen.RunMatrix(ctx, m, loadgen.MatrixOptions{
		CSVDir:   *csvDir,
		Progress: out,
	})
	if err != nil {
		return err
	}
	doc := loadgen.NewBenchDoc(m, sums)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d cells)\n", *outPath, len(sums))
	return nil
}

func cmdCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	summaryPath := fs.String("summary", "", "summary JSON file to validate")
	benchPath := fs.String("bench", "", "BENCH_8-style document to validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *summaryPath != "":
		data, err := os.ReadFile(*summaryPath)
		if err != nil {
			return err
		}
		var sum loadgen.Summary
		if err := engine.DecodeStrict(data, &sum); err != nil {
			return fmt.Errorf("%s: schema: %w", *summaryPath, err)
		}
		if err := sum.Check(); err != nil {
			return fmt.Errorf("%s: %w", *summaryPath, err)
		}
		fmt.Fprintf(out, "%s: ok (%s x %s, %d requests, %.1f rps)\n",
			*summaryPath, sum.Scenario, sum.Server, sum.Requests, sum.ThroughputRPS)
		return nil
	case *benchPath != "":
		data, err := os.ReadFile(*benchPath)
		if err != nil {
			return err
		}
		var doc loadgen.BenchDoc
		if err := engine.DecodeStrict(data, &doc); err != nil {
			return fmt.Errorf("%s: schema: %w", *benchPath, err)
		}
		if len(doc.Results) == 0 {
			return fmt.Errorf("%s: no results", *benchPath)
		}
		for _, sum := range doc.Results {
			if err := sum.Check(); err != nil {
				return fmt.Errorf("%s: cell (%s, %s): %w", *benchPath, sum.Scenario, sum.Server, err)
			}
		}
		fmt.Fprintf(out, "%s: ok (%d cells)\n", *benchPath, len(doc.Results))
		return nil
	default:
		return fmt.Errorf("check needs -summary or -bench")
	}
}
