package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/report"
)

// modelSelection is a resolved -model/-model-params pair. Model and
// Factory are nil for the default backend, which keeps every
// subcommand's default output on the analytic Chung path (and therefore
// byte-identical to builds that predate the backend registry).
type modelSelection struct {
	Name    string        // canonical backend name, e.g. "chung"
	Model   model.Model   // constructed instance (nil for the default)
	Factory model.Factory // deferred constructor (nil for the default)
}

// modelFlag registers the shared -model and -model-params flags and
// returns a resolver to run after Parse: it validates the pair against
// the backend registry (unknown names and malformed or unknown params
// fail fast, before any evaluation starts).
func modelFlag(fs *flag.FlagSet) func() (modelSelection, error) {
	name := fs.String("model", "", "model backend (run `heterosim models` to list; default chung)")
	params := fs.String("model-params", "", "backend parameters as a JSON object (see `heterosim models`)")
	return func() (modelSelection, error) {
		canon, err := model.Canonical(*name)
		if err != nil {
			return modelSelection{}, err
		}
		var raw json.RawMessage
		if *params != "" {
			raw = json.RawMessage(*params)
		}
		m, canonRaw, err := model.New(canon, 0, 0, raw)
		if err != nil {
			return modelSelection{}, fmt.Errorf("model %s: %w", canon, err)
		}
		sel := modelSelection{Name: canon}
		if canon == model.DefaultName {
			return sel, nil
		}
		sel.Model = m
		sel.Factory = model.NewFactory(canon, canonRaw)
		return sel, nil
	}
}

// printModelBanner notes a non-default backend above a subcommand's
// output; the default prints nothing, keeping baseline output stable.
func printModelBanner(sel modelSelection) {
	if sel.Model != nil {
		fmt.Printf("Model backend: %s\n\n", sel.Name)
	}
}

// cmdModels lists the model-backend registry.
func cmdModels(args []string) error {
	fs := newFlagSet("models")
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos := model.Infos()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(infos)
	}
	t := report.NewTable(
		"Model backends (select with -model NAME [-model-params JSON] or the API's model field)",
		"Name", "Default", "Capabilities", "Params")
	for _, info := range infos {
		def := ""
		if info.Default {
			def = "yes"
		}
		var params []string
		for _, p := range info.Params {
			if p.Default != "" {
				params = append(params, fmt.Sprintf("%s (%s, default %s)", p.Name, p.Type, p.Default))
			} else {
				params = append(params, fmt.Sprintf("%s (%s)", p.Name, p.Type))
			}
		}
		if len(params) == 0 {
			params = []string{"-"}
		}
		t.AddRow(info.Name, def, strings.Join(info.Capabilities, ","), strings.Join(params, "; "))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	for _, info := range infos {
		fmt.Printf("%s: %s\n", info.Name, info.Description)
	}
	return nil
}
