package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"github.com/calcm/heterosim/internal/baseline"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/scenario"
	"github.com/calcm/heterosim/internal/sim"
)

func cmdFigure(args []string) error {
	fs := newFlagSet("figure")
	csvOut := fs.Bool("csv", false, "emit CSV instead of an ASCII chart")
	workers := workersFlag(fs)
	if len(args) < 1 {
		return fmt.Errorf("figure: which one? (2-10)")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("figure: bad number %q", args[0])
	}
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch n {
	case 2:
		return renderFigure2(os.Stdout, *csvOut)
	case 3:
		return renderFigure3(os.Stdout, *csvOut)
	case 4:
		return renderFigure4(os.Stdout, *csvOut)
	case 5:
		return renderFigure5(os.Stdout, *csvOut)
	case 6:
		return renderProjectionFigure(os.Stdout, paper.FFT1024, paper.ProjectionFractions,
			"Figure 6: FFT-1024 projection", scenario.Baseline, *csvOut, *workers)
	case 7:
		return renderProjectionFigure(os.Stdout, paper.MMM, paper.ProjectionFractions,
			"Figure 7: MMM projection", scenario.Baseline, *csvOut, *workers)
	case 8:
		return renderProjectionFigure(os.Stdout, paper.BS, paper.BSProjectionFractions,
			"Figure 8: Black-Scholes projection", scenario.Baseline, *csvOut, *workers)
	case 9:
		return renderProjectionFigure(os.Stdout, paper.FFT1024, paper.ProjectionFractions,
			"Figure 9: FFT-1024 projection at 1 TB/s", scenario.HighBandwidth, *csvOut, *workers)
	case 10:
		return renderFigure10(os.Stdout, *csvOut, *workers)
	default:
		return fmt.Errorf("figure: no figure %d is reproducible (1 is a diagram)", n)
	}
}

func fftXLabels(log2N []int) []string {
	out := make([]string, len(log2N))
	for i, l2 := range log2N {
		out[i] = strconv.Itoa(l2)
	}
	return out
}

func renderFigure2(out io.Writer, csvOut bool) error {
	s, err := sim.New()
	if err != nil {
		return err
	}
	fig, err := baseline.BuildFigure2(s)
	if err != nil {
		return err
	}
	if csvOut {
		headers := []string{"device"}
		for _, l2 := range fig.Log2N {
			headers = append(headers, fmt.Sprintf("log2N=%d", l2))
		}
		var rows [][]string
		for _, id := range baseline.FFTDevices {
			rows = append(rows, report.FloatRow(string(id)+" raw", fig.Raw[id]...))
			rows = append(rows, report.FloatRow(string(id)+" norm", fig.Normalized[id]...))
		}
		return report.WriteCSV(out, headers, rows)
	}
	for _, part := range []struct {
		title string
		data  map[paper.DeviceID][]float64
		ylab  string
	}{
		{"Figure 2 (top): FFT performance, non-normalized", fig.Raw, "pseudo-GFLOP/s"},
		{"Figure 2 (bottom): area-normalized FFT performance (40nm)", fig.Normalized, "pseudo-GFLOP/s per mm2"},
	} {
		c := report.Chart{
			Title: part.title, YLabel: part.ylab,
			XLabels: fftXLabels(fig.Log2N), LogY: true, Height: 18,
		}
		for _, id := range baseline.FFTDevices {
			c.Series = append(c.Series, report.Series{Name: string(id), Values: part.data[id]})
		}
		if err := c.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func renderFigure3(out io.Writer, csvOut bool) error {
	s, err := sim.New()
	if err != nil {
		return err
	}
	fig, err := baseline.BuildFigure3(s)
	if err != nil {
		return err
	}
	if csvOut {
		headers := []string{"device", "log2N", "core_dynamic", "core_leakage",
			"uncore_static", "uncore_dynamic", "unknown", "total"}
		var rows [][]string
		for _, id := range baseline.FFTDevices {
			for i, st := range fig.Stacks[id] {
				rows = append(rows, report.FloatRow(string(id),
					float64(fig.Log2N[i]), st.CoreDynamic, st.CoreLeakage,
					st.UncoreStatic, st.UncoreDynamic, st.Unknown, st.Total()))
			}
		}
		return report.WriteCSV(out, headers, rows)
	}
	// Stacked bars at the FFT-1024 operating point (the paper's x-axis
	// has all sizes; the bar shape is per device).
	bars := report.StackedBar{
		Title:      "Figure 3: FFT power consumption breakdown at N=1024",
		Unit:       "W",
		Components: []string{"core dynamic", "core leakage", "uncore static", "uncore dynamic", "unknown"},
		Width:      46,
	}
	idx1024 := -1
	for i, l2 := range fig.Log2N {
		if l2 == 10 {
			idx1024 = i
		}
	}
	for _, id := range baseline.FFTDevices {
		st := fig.Stacks[id][idx1024]
		bars.Rows = append(bars.Rows, report.StackRow{
			Label: string(id),
			Values: []float64{st.CoreDynamic, st.CoreLeakage,
				st.UncoreStatic, st.UncoreDynamic, st.Unknown},
		})
	}
	if err := bars.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	t := report.NewTable("Breakdown across sizes (watts)",
		"Device", "log2N", "Core dyn", "Core leak", "Uncore static", "Uncore dyn", "Unknown", "Total")
	for _, id := range baseline.FFTDevices {
		for i, l2 := range fig.Log2N {
			if l2 != 6 && l2 != 10 && l2 != 14 && l2 != 20 {
				continue
			}
			st := fig.Stacks[id][i]
			t.AddRowf(string(id), l2, st.CoreDynamic, st.CoreLeakage,
				st.UncoreStatic, st.UncoreDynamic, st.Unknown, st.Total())
		}
	}
	return t.Render(out)
}

func renderFigure4(out io.Writer, csvOut bool) error {
	s, err := sim.New()
	if err != nil {
		return err
	}
	fig, err := baseline.BuildFigure4(s)
	if err != nil {
		return err
	}
	if csvOut {
		headers := []string{"series"}
		for _, l2 := range fig.Log2N {
			headers = append(headers, fmt.Sprintf("log2N=%d", l2))
		}
		var rows [][]string
		for _, id := range baseline.FFTDevices {
			rows = append(rows, report.FloatRow(string(id)+" GFLOPs/J", fig.Efficiency[id]...))
		}
		rows = append(rows,
			report.FloatRow("GTX285 compulsory GB/s", fig.CompulsoryGTX285...),
			report.FloatRow("GTX285 measured GB/s", fig.MeasuredGTX285...),
			report.FloatRow("GTX480 compulsory GB/s", fig.CompulsoryGTX480...))
		return report.WriteCSV(out, headers, rows)
	}
	eff := report.Chart{
		Title: "Figure 4 (top): FFT energy efficiency (40nm)", YLabel: "pseudo-GFLOPs per J",
		XLabels: fftXLabels(fig.Log2N), LogY: true, Height: 16,
	}
	for _, id := range baseline.FFTDevices {
		eff.Series = append(eff.Series, report.Series{Name: string(id), Values: fig.Efficiency[id]})
	}
	if err := eff.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	bw := report.Chart{
		Title: "Figure 4 (bottom): FFT bandwidth (GTX285 knee at 2^12)", YLabel: "GB/s",
		XLabels: fftXLabels(fig.Log2N), Height: 14,
		Series: []report.Series{
			{Name: "GTX285 compulsory", Values: fig.CompulsoryGTX285},
			{Name: "GTX285 measured", Values: fig.MeasuredGTX285},
			{Name: "GTX480 compulsory", Values: fig.CompulsoryGTX480},
		},
	}
	return bw.Render(out)
}

func renderFigure5(out io.Writer, csvOut bool) error {
	nodes := itrs.ITRS2009().Nodes()
	labels := make([]string, len(nodes))
	pins := make([]float64, len(nodes))
	vdd := make([]float64, len(nodes))
	cgate := make([]float64, len(nodes))
	combined := make([]float64, len(nodes))
	for i, n := range nodes {
		labels[i] = fmt.Sprintf("%d", n.Year)
		pins[i] = n.RelPins
		vdd[i] = n.RelVdd
		cgate[i] = n.RelGateCap
		combined[i] = n.RelPowerPerXtor
	}
	if csvOut {
		return report.WriteCSV(out,
			[]string{"series", labels[0], labels[1], labels[2], labels[3], labels[4]},
			[][]string{
				report.FloatRow("package pins", pins...),
				report.FloatRow("Vdd", vdd...),
				report.FloatRow("gate capacitance", cgate...),
				report.FloatRow("combined power reduction", combined...),
			})
	}
	c := report.Chart{
		Title:   "Figure 5: ITRS 2009 scaling projections (normalized to 2011)",
		XLabels: labels, Height: 14,
		Series: []report.Series{
			{Name: "package pins", Values: pins},
			{Name: "Vdd", Values: vdd},
			{Name: "gate capacitance", Values: cgate},
			{Name: "combined power reduction", Values: combined},
		},
	}
	return c.Render(out)
}

// renderProjectionFigure draws one chart per f value, with limit
// annotations per the paper's dashed/solid convention. The design x node
// projection grid is evaluated across workers goroutines.
func renderProjectionFigure(out io.Writer, w paper.WorkloadID, fractions []float64, title string, scen scenario.ID, csvOut bool, workers int) error {
	s, err := scenario.Get(scen)
	if err != nil {
		return err
	}
	cfg := s.Apply(project.DefaultConfig(w))
	cfg.Workers = workers
	nodes := cfg.Roadmap.Nodes()
	labels := make([]string, len(nodes))
	for i, n := range nodes {
		labels[i] = n.Name
	}
	for _, f := range fractions {
		ts, err := project.Project(cfg, f)
		if err != nil {
			return err
		}
		if csvOut {
			headers := append([]string{"design"}, labels...)
			headers = append(headers, "limits")
			var rows [][]string
			for _, tr := range ts {
				vals := make([]float64, len(tr.Points))
				lims := ""
				for i, p := range tr.Points {
					if p.Valid {
						vals[i] = p.Point.Speedup
						lims += p.Point.Limit.String()[:1]
					} else {
						vals[i] = math.NaN()
						lims += "-"
					}
				}
				row := report.FloatRow(fmt.Sprintf("%s f=%.3f", tr.Design.Label, f), vals...)
				row = append(row, lims)
				rows = append(rows, row)
			}
			if err := report.WriteCSV(out, headers, rows); err != nil {
				return err
			}
			continue
		}
		c := report.Chart{
			Title:   fmt.Sprintf("%s, f=%.3f", title, f),
			YLabel:  "Speedup (vs 1 BCE)",
			XLabels: labels, Height: 16,
		}
		for _, tr := range ts {
			vals := make([]float64, len(tr.Points))
			for i, p := range tr.Points {
				if p.Valid {
					vals[i] = p.Point.Speedup
				} else {
					vals[i] = math.NaN()
				}
			}
			c.Series = append(c.Series, report.Series{Name: tr.Design.Label, Values: vals})
		}
		if err := c.Render(out); err != nil {
			return err
		}
		// Limit annotation table (dashed = power, solid = bandwidth).
		t := report.NewTable("Limiting factor per node (a=area, p=power, b=bandwidth, -=infeasible)",
			append([]string{"Design"}, labels...)...)
		for _, tr := range ts {
			row := []string{tr.Design.Label}
			for _, p := range tr.Points {
				if !p.Valid {
					row = append(row, "-")
				} else {
					row = append(row, p.Point.Limit.String()[:1]+fmt.Sprintf(" r=%d", p.Point.R))
				}
			}
			t.AddRow(row...)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func renderFigure10(out io.Writer, csvOut bool, workers int) error {
	cfg := project.DefaultConfig(paper.MMM)
	cfg.Workers = workers
	nodes := cfg.Roadmap.Nodes()
	labels := make([]string, len(nodes))
	for i, n := range nodes {
		labels[i] = n.Name
	}
	for _, f := range paper.EnergyProjectionFractions {
		ts, err := project.ProjectEnergy(cfg, f)
		if err != nil {
			return err
		}
		if csvOut {
			var rows [][]string
			for _, tr := range ts {
				vals := make([]float64, len(tr.Points))
				for i, p := range tr.Points {
					if p.Valid {
						vals[i] = p.EnergyNode
					} else {
						vals[i] = math.NaN()
					}
				}
				rows = append(rows, report.FloatRow(fmt.Sprintf("%s f=%.3f", tr.Design.Label, f), vals...))
			}
			if err := report.WriteCSV(out, append([]string{"design"}, labels...), rows); err != nil {
				return err
			}
			continue
		}
		c := report.Chart{
			Title:   fmt.Sprintf("Figure 10: MMM energy projections (normalized to BCE at 40nm), f=%.3f", f),
			YLabel:  "Energy (normalized)",
			XLabels: labels, Height: 14,
		}
		for _, tr := range ts {
			vals := make([]float64, len(tr.Points))
			for i, p := range tr.Points {
				if p.Valid {
					vals[i] = p.EnergyNode
				} else {
					vals[i] = math.NaN()
				}
			}
			c.Series = append(c.Series, report.Series{Name: tr.Design.Label, Values: vals})
		}
		if err := c.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
