package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	return out, runErr
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help should succeed: %v", err)
	}
}

func TestTableSubcommands(t *testing.T) {
	for _, n := range []string{"1", "2", "3", "6"} {
		out, err := capture(t, func() error { return run([]string{"table", n}) })
		if err != nil {
			t.Fatalf("table %s: %v", n, err)
		}
		if !strings.Contains(out, "Table "+n) {
			t.Errorf("table %s output missing title:\n%s", n, out)
		}
	}
	if err := run([]string{"table"}); err == nil {
		t.Error("missing table number must fail")
	}
	if err := run([]string{"table", "9"}); err == nil {
		t.Error("table 9 must fail")
	}
	if err := run([]string{"table", "x"}); err == nil {
		t.Error("non-numeric table must fail")
	}
}

func TestTable5MatchesPublishedInOutput(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"table", "5"}) })
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few published values appear.
	for _, want := range []string{"ASIC", "FFT-1024", "4.96", "489"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureSubcommands(t *testing.T) {
	cases := map[string]string{
		"5": "ITRS",
		"6": "FFT-1024",
		"8": "Black-Scholes",
		"9": "1 TB/s",
	}
	for n, want := range cases {
		out, err := capture(t, func() error { return run([]string{"figure", n}) })
		if err != nil {
			t.Fatalf("figure %s: %v", n, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("figure %s missing %q", n, want)
		}
	}
	if err := run([]string{"figure"}); err == nil {
		t.Error("missing figure number must fail")
	}
	if err := run([]string{"figure", "1"}); err == nil {
		t.Error("figure 1 is a diagram; must fail")
	}
	if err := run([]string{"figure", "z"}); err == nil {
		t.Error("non-numeric figure must fail")
	}
}

func TestFigureCSVOutput(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"figure", "5", "-csv"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "series,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "package pins") {
		t.Errorf("CSV rows missing:\n%s", out)
	}
}

func TestProjectSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"project", "-workload", "MMM", "-f", "0.99"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(6) ASIC", "(5) R5870", "40nm", "11nm"} {
		if !strings.Contains(out, want) {
			t.Errorf("project output missing %q", want)
		}
	}
	if err := run([]string{"project", "-workload", "nope"}); err == nil {
		t.Error("unknown workload must fail")
	}
	if err := run([]string{"project", "-scenario", "99"}); err == nil {
		t.Error("unknown scenario must fail")
	}
}

func TestProjectOverrides(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"project", "-workload", "FFT-1024", "-f", "0.9",
			"-power", "200", "-bandwidth", "90", "-areascale", "0.5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FFT-1024") {
		t.Error("override run missing output")
	}
}

func TestScenarioSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"scenario", "2", "-workload", "FFT-1024", "-f", "0.9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scenario 2", "1 TB/s", "Baseline:"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario output missing %q", want)
		}
	}
	if err := run([]string{"scenario"}); err == nil {
		t.Error("missing scenario number must fail")
	}
	if err := run([]string{"scenario", "7"}); err == nil {
		t.Error("scenario 7 must fail")
	}
}

func TestEnergySubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"energy", "-workload", "MMM", "-f", "0.9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Energy projection") {
		t.Errorf("energy output missing title:\n%s", out)
	}
	if err := run([]string{"energy", "-workload", "bogus"}); err == nil {
		t.Error("bad workload must fail")
	}
}

func TestValidateSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"validate"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ITRS-2009", "back-cast", "all conclusions hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("validate output missing %q", want)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("validation should pass on both roadmaps:\n%s", out)
	}
}

func TestCalibrateSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"calibrate"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Calibration") || !strings.Contains(out, "mu err %") {
		t.Errorf("calibrate output malformed:\n%s", out)
	}
	// Noisy calibration with few samples still runs.
	if _, err := capture(t, func() error {
		return run([]string{"calibrate", "-noise", "0.05", "-samples", "50", "-seed", "7"})
	}); err != nil {
		t.Fatalf("noisy calibrate: %v", err)
	}
}

func TestAblateSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"ablate", "-f", "0.999", "-node", "4"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bandwidth bound removed", "power bound removed",
		"sequential core pinned", "Offload assumption", "Scheduling assumption"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablate output missing %q", want)
		}
	}
	if err := run([]string{"ablate", "-node", "99"}); err == nil {
		t.Error("bad node index must fail")
	}
}

func TestDeriveSubcommand(t *testing.T) {
	// Dump a template, then re-derive from it.
	dump, err := capture(t, func() error { return run([]string{"derive", "-dump"}) })
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/db.json"
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"derive", "-measurements", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ASIC") || !strings.Contains(out, "489") {
		t.Errorf("derive output missing calibration:\n%s", out)
	}
	if err := run([]string{"derive"}); err == nil {
		t.Error("derive without input must fail")
	}
	if err := run([]string{"derive", "-measurements", dir + "/missing.json"}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestSensitivitySubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"sensitivity", "-workload", "FFT-1024", "-f", "0.999",
			"-node", "0", "-samples", "50"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Elasticities", "Monte Carlo", "(6) ASIC", "bandwidth"} {
		if !strings.Contains(out, want) {
			t.Errorf("sensitivity output missing %q", want)
		}
	}
	if err := run([]string{"sensitivity", "-node", "99"}); err == nil {
		t.Error("bad node must fail")
	}
}

func TestFrontierSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"frontier", "-steps", "3", "-node", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"speedup surface", "Best grid point", "phi\\mu"} {
		if !strings.Contains(out, want) {
			t.Errorf("frontier output missing %q", want)
		}
	}
	if err := run([]string{"frontier", "-steps", "0"}); err == nil {
		t.Error("zero steps must fail")
	}
	if err := run([]string{"frontier", "-node", "-1"}); err == nil {
		t.Error("bad node must fail")
	}
}

func TestParseWorkload(t *testing.T) {
	for _, s := range []string{"MMM", "bs", "FFT", "fft-64", "FFT-16384"} {
		if _, err := parseWorkload(s); err != nil {
			t.Errorf("parseWorkload(%q): %v", s, err)
		}
	}
	if _, err := parseWorkload("LINPACK"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestWorkersFlagNormalizes(t *testing.T) {
	cases := []struct {
		arg  string
		want int
	}{
		{"4", 4},
		{"1", 1},
		{"0", 0},
		{"-3", 0}, // any "auto" spelling canonicalizes to 0 at parse time
	}
	for _, c := range cases {
		fs := newFlagSet("test")
		fs.SetOutput(io.Discard)
		workers := workersFlag(fs)
		if err := fs.Parse([]string{"-workers", c.arg}); err != nil {
			t.Errorf("-workers %s: %v", c.arg, err)
			continue
		}
		if *workers != c.want {
			t.Errorf("-workers %s = %d, want %d", c.arg, *workers, c.want)
		}
	}

	fs := newFlagSet("test")
	fs.SetOutput(io.Discard)
	workersFlag(fs)
	if err := fs.Parse([]string{"-workers", "many"}); err == nil {
		t.Error("non-integer -workers must fail to parse")
	}
}

func TestVersionSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"version"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "github.com/calcm/heterosim") {
		t.Errorf("version output missing module path: %q", out)
	}
}
