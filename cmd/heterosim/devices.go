package main

import (
	"fmt"
	"os"

	"github.com/calcm/heterosim/internal/device"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/sim"
)

// cmdDevices lists the simulated device catalog and, per device, the
// workload operating points the models expose.
func cmdDevices(args []string) error {
	fs := newFlagSet("devices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.NewTable("Device catalog (Table 2 + simulator attributes)",
		"Device", "Kind", "Node", "Core mm2", "Clock GHz", "Peak BW GB/s", "On-chip knee (log2 N)")
	for _, d := range device.Catalog() {
		knee := "-"
		if k := d.OnChipKneeLog2N(); k > 0 {
			knee = fmt.Sprintf("%d", k)
		}
		peak := "-"
		if d.PeakBandwidthGBs > 0 {
			peak = report.FormatFloat(d.PeakBandwidthGBs)
		}
		t.AddRowf(string(d.ID), d.Kind.String(), d.Table2.Process,
			d.Table2.CoreAreaMM2, d.Table2.ClockGHz, peak, knee)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	s, err := sim.New()
	if err != nil {
		return err
	}
	ops := report.NewTable("Model operating points (throughput, compute watts)",
		"Device", "MMM", "BS", "FFT-64", "FFT-1024", "FFT-16384")
	for _, d := range device.Catalog() {
		row := []string{string(d.ID)}
		cell := func(rec sim.Record, err error, unit string) string {
			if err != nil {
				return "-"
			}
			return fmt.Sprintf("%s %s / %sW",
				report.FormatFloat(rec.Throughput), unit,
				report.FormatFloat(rec.Power.Compute()))
		}
		mmm, errM := s.RunMMM(d.ID, 1024, int(paper.MMMBlockN), false)
		row = append(row, cell(mmm, errM, "GF/s"))
		bs, errB := s.RunBS(d.ID, 1<<20, false)
		row = append(row, cell(bs, errB, "Mopt/s"))
		for _, n := range []int{64, 1024, 16384} {
			rec, err := s.RunFFT(d.ID, n, false)
			row = append(row, cell(rec, err, "GF/s"))
		}
		ops.AddRow(row...)
	}
	return ops.Render(os.Stdout)
}
