// Command heterosim regenerates every table and figure of Chung et al.
// (MICRO 2010) from the reproduction's simulated measurement and
// projection pipeline.
//
// Usage:
//
//	heterosim table <1|2|3|4|5|6>       render a paper table
//	heterosim figure <2|3|4|5|6|7|8|9|10> [-csv] render a paper figure
//	heterosim calibrate                 run the full calibration pipeline
//	heterosim project -workload W -f F [-scenario N]  custom projection
//	heterosim scenario <1..6>           run a Section 6.2 scenario study
//	heterosim energy [-f F]             Figure 10 energy projections
//	heterosim all                       regenerate everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "table":
		return cmdTable(rest)
	case "figure":
		return cmdFigure(rest)
	case "calibrate":
		return cmdCalibrate(rest)
	case "project":
		return cmdProject(rest)
	case "scenario":
		return cmdScenario(rest)
	case "compare":
		return cmdCompare(rest)
	case "energy":
		return cmdEnergy(rest)
	case "validate":
		return cmdValidate(rest)
	case "ablate":
		return cmdAblate(rest)
	case "derive":
		return cmdDerive(rest)
	case "sensitivity":
		return cmdSensitivity(rest)
	case "frontier":
		return cmdFrontier(rest)
	case "devices":
		return cmdDevices(rest)
	case "models":
		return cmdModels(rest)
	case "all":
		return cmdAll(rest)
	case "version":
		info := version.Get()
		info.Models = model.Names()
		fmt.Printf("%s %s (%s, %s/%s) models=%s\n", info.Module, info.Version,
			info.GoVersion, info.OS, info.Arch, strings.Join(info.Models, ","))
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `heterosim — reproduction of "Single-Chip Heterogeneous Computing" (MICRO 2010)

Subcommands:
  table <n>      render paper table n (1-6)
  figure <n>     render paper figure n (2-10); -csv for CSV output
  calibrate      run the measurement + calibration pipeline (Table 5)
  project        custom projection: -workload MMM|BS|FFT-1024 -f 0.99 [-scenario 0-6]
  scenario <n>   run Section 6.2 scenario n (1-6) against the baseline
  compare        delta + crossover tables for several scenarios: -scenarios 1,2
  energy         Figure 10 energy projections: [-f 0.9] [-workload MMM]
  validate       check the paper's four conclusions on forward + back-cast roadmaps
  ablate         quantify each model ingredient by removing it
  derive         calibrate (mu, phi) from a JSON measurement file; -dump for a template
  sensitivity    input elasticities + Monte Carlo speedup intervals
  frontier       sweep the (mu, phi) design space on a grid
  devices        list the simulated device catalog and operating points
  models         list the model backends (Chung, Multi-Amdahl, thermal, sqrt(m))
  all            regenerate every table and figure
  version        print the build identity (module, version, Go runtime, models)

Model-evaluating subcommands accept -workers N to size the worker pool
(<= 0 means GOMAXPROCS); outputs are identical at every worker count.
project, scenario, compare, energy, and sensitivity additionally accept
-model NAME [-model-params JSON] to evaluate under an alternative
model backend (run "heterosim models" for the registry).
`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// workersValue parses -workers through par.Normalize, the shared
// worker-count sanitizer: every "auto" spelling (zero or negative)
// canonicalizes to 0 at parse time, so no subcommand — and nothing
// downstream — ever sees a raw negative count. The server's Workers
// config normalizes through the same helper.
type workersValue int

// String renders the current value (flag.Value).
func (w *workersValue) String() string { return strconv.Itoa(int(*w)) }

// Set parses and normalizes one -workers argument (flag.Value).
func (w *workersValue) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("invalid worker count %q", s)
	}
	*w = workersValue(par.Normalize(n))
	return nil
}

// workersFlag registers the shared -workers flag. Every subcommand that
// evaluates the model fans out across this many goroutines; outputs are
// deterministic at any worker count, so the flag only changes speed.
func workersFlag(fs *flag.FlagSet) *int {
	w := new(workersValue)
	fs.Var(w, "workers", "worker goroutines for parallel evaluation (<= 0 means GOMAXPROCS)")
	return (*int)(w)
}
