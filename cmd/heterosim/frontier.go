package main

import (
	"context"
	"fmt"
	"os"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/sweep"
)

// cmdFrontier sweeps the (mu, phi) U-core design space on a grid and
// reports the speedup surface plus the best point — the tool behind the
// designspace example, generalized. Every grid cell is an independent
// optimization, so both the surface and the argmax fan out across the
// worker pool; outputs are identical at any worker count.
func cmdFrontier(args []string) error {
	fs := newFlagSet("frontier")
	wname := fs.String("workload", "FFT-1024", "workload (sets the bandwidth scale)")
	f := fs.Float64("f", 0.99, "parallel fraction")
	node := fs.Int("node", 2, "roadmap node index (0=40nm .. 4=11nm)")
	muLo := fs.Float64("mu-lo", 0.5, "mu grid lower bound")
	muHi := fs.Float64("mu-hi", 64, "mu grid upper bound")
	phiLo := fs.Float64("phi-lo", 0.125, "phi grid lower bound")
	phiHi := fs.Float64("phi-hi", 4, "phi grid upper bound")
	steps := fs.Int("steps", 8, "grid points per axis")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}
	cfg := project.DefaultConfig(w)
	nodes := cfg.Roadmap.Nodes()
	if *node < 0 || *node >= len(nodes) {
		return fmt.Errorf("frontier: node index %d out of range", *node)
	}
	budgets, err := cfg.BudgetsAt(nodes[*node])
	if err != nil {
		return err
	}
	mus, err := sweep.Range(*muLo, *muHi, *steps)
	if err != nil {
		return err
	}
	phis, err := sweep.Range(*phiLo, *phiHi, *steps)
	if err != nil {
		return err
	}
	grid, err := sweep.NewGrid(
		sweep.Axis{Name: "phi", Values: phis},
		sweep.Axis{Name: "mu", Values: mus},
	)
	if err != nil {
		return err
	}
	ev := core.NewEvaluator()
	objective := func(p sweep.Point) (float64, error) {
		d := core.Design{
			Kind:  core.Het,
			Label: "candidate",
			UCore: bounds.UCore{Mu: p["mu"], Phi: p["phi"]},
		}
		pt, err := ev.Optimize(d, *f, budgets)
		if err != nil {
			return 0, err
		}
		return pt.Speedup, nil
	}

	// Evaluate every cell across the worker pool. The grid axes are
	// (phi, mu) with mu fastest, which is exactly the surface table's
	// row-major order; infeasible cells render as "-", not errors.
	cells, err := par.Map(context.Background(), grid.Size(), *workers,
		func(_ context.Context, i int) (string, error) {
			p, err := grid.PointAt(i)
			if err != nil {
				return "", err
			}
			v, err := objective(p)
			if err != nil {
				return "-", nil
			}
			return report.FormatFloat(v), nil
		})
	if err != nil {
		return err
	}

	// Surface table: one row per phi, one column per mu.
	headers := []string{"phi\\mu"}
	for _, mu := range mus {
		headers = append(headers, report.FormatFloat(mu))
	}
	t := report.NewTable(
		fmt.Sprintf("U-core (mu, phi) speedup surface: %s, f=%.3f, %s (A=%.0f P=%.1f B=%.1f BCE)",
			w, *f, nodes[*node].Name, budgets.Area, budgets.Power, budgets.Bandwidth),
		headers...)
	for pi, phi := range phis {
		row := []string{report.FormatFloat(phi)}
		row = append(row, cells[pi*len(mus):(pi+1)*len(mus)]...)
		t.AddRow(row...)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	best, err := grid.ArgMaxParallel(context.Background(), *workers, objective)
	if err != nil {
		return err
	}
	fmt.Printf("\nBest grid point: mu=%.3g phi=%.3g -> speedup %.2f (of %d candidates)\n",
		best.Point["mu"], best.Point["phi"], best.Value, grid.Size())
	return nil
}
