package main

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/calcm/heterosim/internal/baseline"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/workload"
)

func cmdTable(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("table: which one? (1-6)")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("table: bad number %q", args[0])
	}
	switch n {
	case 1:
		return renderTable1(os.Stdout)
	case 2:
		return renderTable2(os.Stdout)
	case 3:
		return renderTable3(os.Stdout)
	case 4:
		return renderTable4(os.Stdout)
	case 5:
		return renderTable5(os.Stdout)
	case 6:
		return renderTable6(os.Stdout)
	default:
		return fmt.Errorf("table: no table %d in the paper", n)
	}
}

func renderTable1(out io.Writer) error {
	t := report.NewTable("Table 1: Bounds on area, power, and bandwidth (alpha = 1.75)",
		"Bound", "Symmetric", "Asym-offload", "Heterogeneous")
	t.AddRow("Area", "n <= A", "n <= A", "n <= A")
	t.AddRow("Parallel power", "n <= P/r^(a/2-1)", "n <= P + r", "n <= P/phi + r")
	t.AddRow("Serial power", "r^(a/2) <= P", "r^(a/2) <= P", "r^(a/2) <= P")
	t.AddRow("Parallel bandwidth", "n <= B*sqrt(r)", "n <= B + r", "n <= B/mu + r")
	t.AddRow("Serial bandwidth", "r <= B^2", "r <= B^2", "r <= B^2")
	return t.Render(out)
}

func renderTable2(out io.Writer) error {
	t := report.NewTable("Table 2: Summary of devices",
		"Device", "Year", "Process", "Die mm2", "Core mm2", "Clock GHz", "Mem GB", "BW GB/s")
	for _, id := range paper.AllDevices {
		d := paper.Table2[id]
		t.AddRowf(string(id), d.Year, d.Process, d.DieAreaMM2, d.CoreAreaMM2,
			d.ClockGHz, d.MemoryGB, d.MemBWGBs)
	}
	return t.Render(out)
}

func renderTable3(out io.Writer) error {
	t := report.NewTable("Table 3: Summary of workloads (implementations used per device)",
		"Workload", "Core i7", "GTX285", "GTX480", "R5870", "LX760/ASIC")
	rows := []struct {
		w    paper.WorkloadID
		name string
	}{
		{paper.MMM, "Dense Matrix Multiplication"},
		{paper.FFT1024, "Fast Fourier Transform"},
		{paper.BS, "Black-Scholes"},
	}
	dash := func(s string) string {
		if s == "" {
			return "-"
		}
		return s
	}
	for _, r := range rows {
		impls := paper.Table3[r.w]
		t.AddRow(r.name, dash(impls[paper.CoreI7]), dash(impls[paper.GTX285]),
			dash(impls[paper.GTX480]), dash(impls[paper.R5870]), dash(impls[paper.LX760]))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "\n(In this reproduction every implementation is a verified Go kernel")
	fmt.Fprintln(out, " mapped through calibrated analytic device models; see DESIGN.md.)")
	return nil
}

func renderTable4(out io.Writer) error {
	rig, err := measure.IdealRig()
	if err != nil {
		return err
	}
	table, err := baseline.BuildTable4(rig)
	if err != nil {
		return err
	}
	reg := workload.Registry()
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		info := reg[w]
		t := report.NewTable(
			fmt.Sprintf("Table 4 (%s): measured vs published", info.Name),
			"Device", info.ThroughputUnit, "per mm2 (40nm)", "per J",
			"pub "+info.ThroughputUnit, "pub/mm2", "pub/J")
		for _, row := range table[w] {
			pub := paper.Table4[w][row.Device]
			t.AddRowf(string(row.Device), row.Throughput, row.PerMM2, row.PerJoule,
				pub.Throughput, pub.PerMM2, pub.PerJoule)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func renderTable5(out io.Writer) error {
	rig, err := measure.IdealRig()
	if err != nil {
		return err
	}
	cells, err := baseline.BuildTable5(rig)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 5: derived U-core parameters (phi = rel. power, mu = rel. performance)",
		"Device", "Workload", "phi", "mu", "pub phi", "pub mu")
	for _, c := range cells {
		pubPhi, pubMu := "-", "-"
		if c.HasRef {
			pubPhi = report.FormatFloat(c.Published.Phi)
			pubMu = report.FormatFloat(c.Published.Mu)
		}
		t.AddRow(string(c.Device), string(c.Workload),
			report.FormatFloat(c.Derived.Phi), report.FormatFloat(c.Derived.Mu),
			pubPhi, pubMu)
	}
	return t.Render(out)
}

func renderTable6(out io.Writer) error {
	t := report.NewTable("Table 6: parameters assumed in technology scaling",
		"Year", "Node", "Core die mm2", "Core power W", "BW GB/s", "Max area (BCE)",
		"Rel pwr/xtor", "Rel BW")
	for _, n := range itrs.ITRS2009().Nodes() {
		t.AddRowf(n.Year, n.Name, itrs.CoreDieBudgetMM2, itrs.CorePowerBudgetW,
			n.BandwidthGBs(itrs.BaseBandwidthGBs), n.MaxAreaBCE,
			n.RelPowerPerXtor, n.RelBandwidth)
	}
	return t.Render(out)
}
