package main

import (
	"strings"
	"testing"
)

func TestCompareSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"compare", "-scenarios", "1,2", "-workload", "FFT-1024", "-f", "0.99"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Scenario 1", "Scenario 2",
		"speedup delta vs baseline",
		"crossover nodes",
		"Overtakes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	// The delta table zeroes the CMP columns by construction (the CMPs
	// are unaffected by a bandwidth scenario), so "0" rows must appear.
	if !strings.Contains(out, "(0) SymCMP") {
		t.Errorf("compare output missing CMP column:\n%s", out)
	}
}

func TestCompareSubcommandValidation(t *testing.T) {
	for _, args := range [][]string{
		{"compare", "-scenarios", "9"},        // out of range
		{"compare", "-scenarios", "1,1"},      // duplicate
		{"compare", "-scenarios", ","},        // empty list
		{"compare", "-scenarios", "x"},        // not a number
		{"compare", "-workload", "nope"},      // unknown workload
		{"compare", "-model", "no-such-back"}, // unknown backend
	} {
		if err := run(args); err == nil {
			t.Errorf("%v must fail", args)
		}
	}
}

// TestCompareSubcommandDeterministic: output is identical at every
// worker count (the same guarantee every other subcommand makes).
func TestCompareSubcommandDeterministic(t *testing.T) {
	args := []string{"compare", "-scenarios", "2,5", "-workload", "MMM", "-f", "0.9"}
	one, err := capture(t, func() error { return run(append(args, "-workers", "1")) })
	if err != nil {
		t.Fatal(err)
	}
	many, err := capture(t, func() error { return run(append(args, "-workers", "8")) })
	if err != nil {
		t.Fatal(err)
	}
	if one != many {
		t.Errorf("output differs between -workers 1 and 8:\n%s\n--- vs ---\n%s", one, many)
	}
}
