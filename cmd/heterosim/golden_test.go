package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-output regression tests for the fully deterministic renderers.
// Regenerate with:
//
//	go run ./cmd/heterosim table 6 > cmd/heterosim/testdata/table6.golden
//	go run ./cmd/heterosim table 1 > cmd/heterosim/testdata/table1.golden
//	go run ./cmd/heterosim figure 5 -csv > cmd/heterosim/testdata/figure5.golden
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"table6.golden", []string{"table", "6"}},
		{"table1.golden", []string{"table", "1"}},
		{"figure5.golden", []string{"figure", "5", "-csv"}},
		{"project_fft_999.golden", []string{"project", "-workload", "FFT-1024", "-f", "0.999", "-csv"}},
	}
	for _, c := range cases {
		want, err := os.ReadFile(filepath.Join("testdata", c.golden))
		if err != nil {
			t.Fatalf("%s: %v", c.golden, err)
		}
		got, err := capture(t, func() error { return run(c.args) })
		if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if got != string(want) {
			t.Errorf("%v output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
				c.args, c.golden, got, want)
		}
	}
}

func TestDevicesSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"devices"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Device catalog", "GTX285", "operating points", "Mopt/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("devices output missing %q", want)
		}
	}
	// Unmeasured combinations render as dashes, not zeros.
	if !strings.Contains(out, "-") {
		t.Error("expected dashes for unmeasured combinations")
	}
}
