package main

import (
	"fmt"
	"os"
	"sort"

	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/report"
)

// cmdDerive calibrates U-core parameters from a user-supplied JSON
// measurement file (or exports the built-in simulated database as a
// template with -dump). Each workload needs a "Core i7-960" reference
// row; any other device name is treated as a U-core.
func cmdDerive(args []string) error {
	fs := newFlagSet("derive")
	in := fs.String("measurements", "", "path to a JSON measurement file (see -dump for the format)")
	dump := fs.Bool("dump", false, "write the built-in simulated measurement database as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dump {
		rig, err := measure.IdealRig()
		if err != nil {
			return err
		}
		db, err := rig.BuildDatabase()
		if err != nil {
			return err
		}
		return measure.SaveMeasurements(os.Stdout, db)
	}
	if *in == "" {
		return fmt.Errorf("derive: -measurements <file> required (or -dump for a template)")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := measure.LoadMeasurements(f)
	if err != nil {
		return err
	}
	derived, err := db.DeriveTable5()
	if err != nil {
		return err
	}
	type row struct {
		dev, wl string
		mu, phi float64
	}
	var rows []row
	for dev, wls := range derived {
		for wl, p := range wls {
			rows = append(rows, row{string(dev), string(wl), p.Mu, p.Phi})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].dev != rows[j].dev {
			return rows[i].dev < rows[j].dev
		}
		return rows[i].wl < rows[j].wl
	})
	t := report.NewTable(fmt.Sprintf("Derived U-core parameters from %s", *in),
		"Device", "Workload", "phi", "mu")
	for _, r := range rows {
		t.AddRowf(r.dev, r.wl, r.phi, r.mu)
	}
	return t.Render(os.Stdout)
}
