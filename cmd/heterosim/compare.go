package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/scenario"
)

// cmdCompare answers the same question as POST /v1/compare, locally: a
// set of Section 6.2 scenarios each run against the baseline, reduced
// to per-node speedup deltas and the crossover table ("at which node
// does each heterogeneous design overtake each CMP?"). Scenarios fan
// out across the worker pool; output order follows the -scenarios
// list, so bytes are identical at any worker count.
func cmdCompare(args []string) error {
	fs := newFlagSet("compare")
	wname := fs.String("workload", "FFT-1024", "workload")
	f := fs.Float64("f", 0.99, "parallel fraction")
	list := fs.String("scenarios", "1,2", "comma-separated scenario IDs (0-6, 0=baseline)")
	workers := workersFlag(fs)
	resolveModel := modelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}
	sel, err := resolveModel()
	if err != nil {
		return err
	}
	var ids []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(*list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 6 {
			return fmt.Errorf("compare: scenario IDs are 0-6, got %q", part)
		}
		if seen[n] {
			return fmt.Errorf("compare: scenario %d listed twice", n)
		}
		seen[n] = true
		ids = append(ids, n)
	}
	if len(ids) == 0 {
		return fmt.Errorf("compare: -scenarios lists no scenario IDs")
	}
	scs := make([]scenario.Scenario, len(ids))
	for i, n := range ids {
		if scs[i], err = scenario.Get(scenario.ID(n)); err != nil {
			return err
		}
	}
	printModelBanner(sel)

	type result struct {
		base, alt []project.Trajectory
	}
	results, err := par.Map(context.Background(), len(scs), min(*workers, len(scs)),
		func(ctx context.Context, i int) (result, error) {
			base, alt, err := scenario.CompareModelCtx(ctx, scs[i], w, *f, *workers, sel.Factory)
			if err != nil {
				return result{}, fmt.Errorf("scenario %d: %w", ids[i], err)
			}
			return result{base: base, alt: alt}, nil
		})
	if err != nil {
		return err
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		if err := renderCompare(ids[i], scs[i], res.base, res.alt, w, *f); err != nil {
			return err
		}
	}
	return nil
}

// renderCompare prints one scenario's delta table (alternative minus
// baseline speedup, per design per node) and its crossover table.
func renderCompare(id int, sc scenario.Scenario, base, alt []project.Trajectory, w paper.WorkloadID, f float64) error {
	deltas := scenario.Deltas(base, alt)
	if len(deltas) == 0 {
		return fmt.Errorf("scenario %d: baseline and alternative disagree on shape", id)
	}
	headers := []string{"Node"}
	for _, d := range deltas[0] {
		headers = append(headers, d.Label)
	}
	t := report.NewTable(
		fmt.Sprintf("Scenario %d (%s): speedup delta vs baseline, %s f=%.3f", id, sc.Name, w, f),
		headers...)
	for n, row := range deltas {
		cells := []string{alt[0].Points[n].Node.Name}
		for _, d := range row {
			if !d.Valid {
				cells = append(cells, "-")
			} else {
				cells = append(cells, report.FormatFloat(d.Delta))
			}
		}
		t.AddRow(cells...)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	ct := report.NewTable(
		fmt.Sprintf("Scenario %d: crossover nodes (first node each heterogeneous design is strictly ahead)", id),
		"Design", "Overtakes", "Node")
	for _, c := range scenario.Crossovers(alt) {
		node := c.Node
		if c.NodeIndex < 0 {
			node = "never"
		}
		ct.AddRow(c.Design, c.Over, node)
	}
	return ct.Render(os.Stdout)
}
