package main

import (
	"fmt"
	"os"

	"github.com/calcm/heterosim/internal/ablation"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/sched"
)

// cmdAblate quantifies what each model ingredient contributes by removing
// it and re-projecting, plus a discrete-scheduling check of the model's
// "perfectly scheduled" assumption.
func cmdAblate(args []string) error {
	fs := newFlagSet("ablate")
	wname := fs.String("workload", "FFT-1024", "workload")
	f := fs.Float64("f", 0.999, "parallel fraction")
	node := fs.Int("node", 4, "roadmap node index (0=40nm .. 4=11nm)")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}

	render := func(title string, rs []ablation.Result, removedIsBetter bool) error {
		t := report.NewTable(title, "Design", "Full model", "Ablated", "Ratio")
		for _, r := range rs {
			t.AddRowf(r.Design, r.Baseline, r.Ablated, r.Ratio)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		if removedIsBetter {
			fmt.Println("(ratio > 1: the removed constraint was binding that design)")
		} else {
			fmt.Println("(ratio < 1: the removed ingredient was helping that design)")
		}
		fmt.Println()
		return nil
	}

	// All three ablation studies run concurrently across the worker pool
	// and come back in a fixed order, so the report is deterministic.
	studies, err := ablation.Studies(w, *f, *node, *workers)
	if err != nil {
		return err
	}
	for i, part := range []struct {
		title           string
		removedIsBetter bool
	}{
		{"Ablation: bandwidth bound removed", true},
		{"Ablation: power bound removed", true},
		{"Ablation: sequential core pinned at r=1", false},
	} {
		title := fmt.Sprintf("%s (%s, f=%.3f, node %d)", part.title, w, *f, *node)
		if err := render(title, studies[i], part.removedIsBetter); err != nil {
			return err
		}
	}

	// The offload assumption at the 40nm FFT budgets.
	b := bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	off, orig, err := ablation.OffloadAssumption(*f, b, 16)
	if err != nil {
		return err
	}
	fmt.Printf("Offload assumption (40nm FFT budgets, f=%.3f): offload CMP %.2f vs original asymmetric %.2f\n\n",
		*f, off, orig)

	// Discrete-scheduling check of the fluid assumption.
	t := report.NewTable("Scheduling assumption: LPT vs fluid ideal (17 U-core lanes, mu=2.88)",
		"Task mix", "Model error")
	fine, err := sched.UniformTasks(10000, 0.01)
	if err != nil {
		return err
	}
	errFine, err := sched.ModelError(fine, 17, 2.88)
	if err != nil {
		return err
	}
	coarse, err := sched.HeavyTailedTasks(25, 1, 3)
	if err != nil {
		return err
	}
	errCoarse, err := sched.ModelError(coarse, 17, 2.88)
	if err != nil {
		return err
	}
	t.AddRow("10k uniform fine-grained tasks", fmt.Sprintf("%.2f%%", 100*errFine))
	t.AddRow("25 heavy-tailed coarse tasks", fmt.Sprintf("%.2f%%", 100*errCoarse))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("(the paper's fluid model is exact for throughput-driven fine-grained work,")
	fmt.Println(" the regime its compute-bound measurement methodology enforces)")
	return nil
}
