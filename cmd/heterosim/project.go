package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"github.com/calcm/heterosim/internal/baseline"
	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/scenario"
	"github.com/calcm/heterosim/internal/sim"
)

func parseWorkload(s string) (paper.WorkloadID, error) {
	switch s {
	case "MMM", "mmm":
		return paper.MMM, nil
	case "BS", "bs", "blackscholes":
		return paper.BS, nil
	case "FFT-64", "fft-64":
		return paper.FFT64, nil
	case "FFT-1024", "fft-1024", "FFT", "fft":
		return paper.FFT1024, nil
	case "FFT-16384", "fft-16384":
		return paper.FFT16384, nil
	default:
		return "", fmt.Errorf("unknown workload %q (want MMM, BS, FFT-64, FFT-1024, FFT-16384)", s)
	}
}

func cmdCalibrate(args []string) error {
	fs := newFlagSet("calibrate")
	noise := fs.Float64("noise", 0, "relative probe noise (0 = ideal)")
	samples := fs.Int("samples", 1, "probe samples averaged per measurement")
	seed := fs.Int64("seed", 1, "probe noise seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rig, err := newRig(*noise, *seed, *samples)
	if err != nil {
		return err
	}
	cells, err := baseline.BuildTable5(rig)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Calibration (noise=%.3f, samples=%d): derived vs published Table 5", *noise, *samples),
		"Device", "Workload", "phi", "mu", "pub phi", "pub mu", "mu err %")
	for _, c := range cells {
		muErr := "-"
		pubPhi, pubMu := "-", "-"
		if c.HasRef {
			pubPhi = report.FormatFloat(c.Published.Phi)
			pubMu = report.FormatFloat(c.Published.Mu)
			muErr = fmt.Sprintf("%.2f", 100*(c.Derived.Mu/c.Published.Mu-1))
		}
		t.AddRow(string(c.Device), string(c.Workload),
			report.FormatFloat(c.Derived.Phi), report.FormatFloat(c.Derived.Mu),
			pubPhi, pubMu, muErr)
	}
	return t.Render(os.Stdout)
}

func newRig(noise float64, seed int64, samples int) (*measure.Rig, error) {
	if noise == 0 && samples == 1 {
		return measure.IdealRig()
	}
	s, err := sim.New()
	if err != nil {
		return nil, err
	}
	return measure.NewRig(s, noise, seed, samples)
}

func cmdProject(args []string) error {
	fs := newFlagSet("project")
	wname := fs.String("workload", "FFT-1024", "workload: MMM, BS, FFT-64, FFT-1024, FFT-16384")
	f := fs.Float64("f", 0.99, "parallel fraction")
	scen := fs.Int("scenario", 0, "scenario 0 (baseline) to 6")
	power := fs.Float64("power", 0, "override power budget in watts (0 = scenario default)")
	bw := fs.Float64("bandwidth", 0, "override starting bandwidth in GB/s (0 = scenario default)")
	area := fs.Float64("areascale", 0, "override area scale factor (0 = scenario default)")
	csvOut := fs.Bool("csv", false, "emit CSV")
	workers := workersFlag(fs)
	resolveModel := modelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}
	sel, err := resolveModel()
	if err != nil {
		return err
	}
	s, err := scenario.Get(scenario.ID(*scen))
	if err != nil {
		return err
	}
	cfg := s.Apply(project.DefaultConfig(w))
	cfg.Model = sel.Factory
	cfg.Workers = *workers
	if *power > 0 {
		cfg.PowerBudgetW = *power
	}
	if *bw > 0 {
		cfg.BaseBandwidthGBs = *bw
	}
	if *area > 0 {
		cfg.AreaScale = *area
	}
	ts, err := project.Project(cfg, *f)
	if err != nil {
		return err
	}
	if !*csvOut {
		printModelBanner(sel)
	}
	return renderTrajectories(os.Stdout, ts, cfg, *f, *csvOut)
}

func renderTrajectories(out io.Writer, ts []project.Trajectory, cfg project.Config, f float64, csvOut bool) error {
	nodes := cfg.Roadmap.Nodes()
	labels := make([]string, len(nodes))
	for i, n := range nodes {
		labels[i] = n.Name
	}
	if csvOut {
		var rows [][]string
		for _, tr := range ts {
			vals := make([]float64, len(tr.Points))
			for i, p := range tr.Points {
				if p.Valid {
					vals[i] = p.Point.Speedup
				} else {
					vals[i] = math.NaN()
				}
			}
			rows = append(rows, report.FloatRow(tr.Design.Label, vals...))
		}
		return report.WriteCSV(out, append([]string{"design"}, labels...), rows)
	}
	t := report.NewTable(
		fmt.Sprintf("Projection: %s, f=%.3f (speedup vs 1 BCE; a/p/b = limiting factor)", cfg.Workload, f),
		append([]string{"Design"}, labels...)...)
	for _, tr := range ts {
		row := []string{tr.Design.Label}
		for _, p := range tr.Points {
			if !p.Valid {
				row = append(row, "infeasible")
				continue
			}
			row = append(row, fmt.Sprintf("%s (%s,r=%d)",
				report.FormatFloat(p.Point.Speedup), p.Point.Limit.String()[:1], p.Point.R))
		}
		t.AddRow(row...)
	}
	return t.Render(out)
}

func cmdScenario(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("scenario: which one? (1-6)")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > 6 {
		return fmt.Errorf("scenario: want 1-6, got %q", args[0])
	}
	fs := newFlagSet("scenario")
	wname := fs.String("workload", "FFT-1024", "workload")
	f := fs.Float64("f", 0.9, "parallel fraction")
	workers := workersFlag(fs)
	resolveModel := modelFlag(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}
	sel, err := resolveModel()
	if err != nil {
		return err
	}
	s, err := scenario.Get(scenario.ID(n))
	if err != nil {
		return err
	}
	fmt.Printf("Scenario %d: %s\n  Rationale: %s\n  Paper's finding: %s\n\n",
		n, s.Name, s.Rationale, s.Expectation)
	printModelBanner(sel)
	base, alt, err := scenario.CompareModelCtx(context.Background(), s, w, *f, *workers, sel.Factory)
	if err != nil {
		return err
	}
	cfg := project.DefaultConfig(w)
	fmt.Println("Baseline:")
	if err := renderTrajectories(os.Stdout, base, cfg, *f, false); err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("Under %s:\n", s.Name)
	return renderTrajectories(os.Stdout, alt, s.Apply(cfg), *f, false)
}

func cmdEnergy(args []string) error {
	fs := newFlagSet("energy")
	wname := fs.String("workload", "MMM", "workload")
	f := fs.Float64("f", 0.9, "parallel fraction")
	workers := workersFlag(fs)
	resolveModel := modelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}
	sel, err := resolveModel()
	if err != nil {
		return err
	}
	cfg := project.DefaultConfig(w)
	cfg.Model = sel.Factory
	cfg.Workers = *workers
	ts, err := project.ProjectEnergy(cfg, *f)
	if err != nil {
		return err
	}
	printModelBanner(sel)
	nodes := cfg.Roadmap.Nodes()
	labels := make([]string, len(nodes))
	for i, n := range nodes {
		labels[i] = n.Name
	}
	t := report.NewTable(
		fmt.Sprintf("Energy projection: %s, f=%.3f (task energy normalized to 1 BCE at 40nm)", w, *f),
		append([]string{"Design"}, labels...)...)
	for _, tr := range ts {
		row := []string{tr.Design.Label}
		for _, p := range tr.Points {
			if !p.Valid {
				row = append(row, "infeasible")
			} else {
				row = append(row, report.FormatFloat(p.EnergyNode))
			}
		}
		t.AddRow(row...)
	}
	return t.Render(os.Stdout)
}

func cmdAll(args []string) error {
	fs := newFlagSet("all")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wk := *workers
	steps := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"Table 1", renderTable1},
		{"Table 2", renderTable2},
		{"Table 3", renderTable3},
		{"Table 4", renderTable4},
		{"Table 5", renderTable5},
		{"Table 6", renderTable6},
		{"Figure 2", func(out io.Writer) error { return renderFigure2(out, false) }},
		{"Figure 3", func(out io.Writer) error { return renderFigure3(out, false) }},
		{"Figure 4", func(out io.Writer) error { return renderFigure4(out, false) }},
		{"Figure 5", func(out io.Writer) error { return renderFigure5(out, false) }},
		{"Figure 6", func(out io.Writer) error {
			return renderProjectionFigure(out, paper.FFT1024, paper.ProjectionFractions,
				"Figure 6: FFT-1024 projection", scenario.Baseline, false, wk)
		}},
		{"Figure 7", func(out io.Writer) error {
			return renderProjectionFigure(out, paper.MMM, paper.ProjectionFractions,
				"Figure 7: MMM projection", scenario.Baseline, false, wk)
		}},
		{"Figure 8", func(out io.Writer) error {
			return renderProjectionFigure(out, paper.BS, paper.BSProjectionFractions,
				"Figure 8: Black-Scholes projection", scenario.Baseline, false, wk)
		}},
		{"Figure 9", func(out io.Writer) error {
			return renderProjectionFigure(out, paper.FFT1024, paper.ProjectionFractions,
				"Figure 9: FFT-1024 projection at 1 TB/s", scenario.HighBandwidth, false, wk)
		}},
		{"Figure 10", func(out io.Writer) error { return renderFigure10(out, false, wk) }},
	}
	// Render every step into its own buffer across the worker pool, then
	// emit the buffers in step order: identical bytes to a serial run, at
	// a fraction of the wall clock.
	bufs, err := par.Map(context.Background(), len(steps), wk,
		func(_ context.Context, i int) (*bytes.Buffer, error) {
			var buf bytes.Buffer
			if err := steps[i].fn(&buf); err != nil {
				return nil, fmt.Errorf("%s: %w", steps[i].name, err)
			}
			return &buf, nil
		})
	if err != nil {
		return err
	}
	for i, st := range steps {
		fmt.Printf("==== %s ====\n", st.name)
		if _, err := bufs[i].WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
