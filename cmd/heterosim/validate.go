package main

import (
	"fmt"
	"os"

	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/validate"
)

// cmdValidate runs the paper's model-validity check (Section 6.3): the
// four conclusions evaluated on the forward ITRS roadmap and on a
// back-cast 65nm-era roadmap.
func cmdValidate(args []string) error {
	fs := newFlagSet("validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	studies := []struct {
		name    string
		roadmap itrs.Roadmap
	}{
		{"ITRS-2009 (forward, 40nm->11nm)", itrs.ITRS2009()},
		{"back-cast (65nm->40nm, older devices)", validate.BackcastRoadmap()},
	}
	for _, st := range studies {
		rep, err := validate.CheckConclusions(st.name, st.roadmap)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("Conclusion check: %s", st.name),
			"Finding", "Holds", "Evidence")
		for _, r := range rep.Results {
			t.AddRowf(r.Finding.String(), r.Holds, r.Evidence)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		if rep.AllHold() {
			fmt.Println("=> all conclusions hold")
		} else {
			fmt.Println("=> WARNING: some conclusions failed")
		}
		fmt.Println()
	}
	return nil
}
