package main

import (
	"fmt"
	"os"

	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/report"
	"github.com/calcm/heterosim/internal/sensitivity"
)

// cmdSensitivity prints input elasticities and Monte Carlo speedup
// intervals for every design in a workload's lineup at one node.
func cmdSensitivity(args []string) error {
	fs := newFlagSet("sensitivity")
	wname := fs.String("workload", "FFT-1024", "workload")
	f := fs.Float64("f", 0.99, "parallel fraction")
	node := fs.Int("node", 0, "roadmap node index (0=40nm .. 4=11nm)")
	sigma := fs.Float64("sigma", 0.2, "log-normal input uncertainty for Monte Carlo")
	samples := fs.Int("samples", 1000, "Monte Carlo draws")
	workers := workersFlag(fs)
	resolveModel := modelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wname)
	if err != nil {
		return err
	}
	sel, err := resolveModel()
	if err != nil {
		return err
	}
	cfg := project.DefaultConfig(w)
	nodes := cfg.Roadmap.Nodes()
	if *node < 0 || *node >= len(nodes) {
		return fmt.Errorf("sensitivity: node index %d out of range", *node)
	}
	budgets, err := cfg.BudgetsAt(nodes[*node])
	if err != nil {
		return err
	}
	designs, err := project.DesignsFor(w)
	if err != nil {
		return err
	}
	ev := core.NewEvaluator()
	var opt sensitivity.Optimizer = ev
	if sel.Model != nil {
		opt = sel.Model
	}
	printModelBanner(sel)

	t := report.NewTable(
		fmt.Sprintf("Elasticities d ln(speedup)/d ln(input): %s, f=%.3f, %s",
			w, *f, nodes[*node].Name),
		"Design", "mu", "phi", "area", "power", "bandwidth")
	cell := func(prof map[sensitivity.Input]float64, in sensitivity.Input) string {
		v, ok := prof[in]
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, d := range designs {
		prof, err := sensitivity.ProfileWorkers(opt, d, *f, budgets, 0.01, *workers)
		if err != nil {
			t.AddRow(d.Label, "infeasible")
			continue
		}
		t.AddRow(d.Label,
			cell(prof, sensitivity.Mu), cell(prof, sensitivity.Phi),
			cell(prof, sensitivity.Area), cell(prof, sensitivity.Power),
			cell(prof, sensitivity.Bandwidth))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("(elasticity ~1: the input binds; ~0: slack — cross-checks the limit attribution)")
	fmt.Println()

	mc := report.NewTable(
		fmt.Sprintf("Monte Carlo speedup intervals (sigma=%.2f, %d draws)", *sigma, *samples),
		"Design", "nominal", "p05", "median", "p95")
	for _, d := range designs {
		iv, err := sensitivity.MonteCarloWorkers(opt, d, *f, budgets, *sigma, *samples, 1, *workers)
		if err != nil {
			mc.AddRow(d.Label, "infeasible")
			continue
		}
		mc.AddRowf(d.Label, iv.Nominal, iv.P05, iv.Median, iv.P95)
	}
	return mc.Render(os.Stdout)
}
