// Command heterosimd is the long-running model-evaluation service: the
// Chung et al. (MICRO 2010) analytical engine behind JSON-over-HTTP
// endpoints, with a sharded result cache, request coalescing, and
// admission control so overload degrades to 429/503 instead of
// collapsing.
//
// Usage:
//
//	heterosimd serve [-addr :8080] [-workers N] [-cache-entries N]
//	                 [-max-inflight N] [-max-queue N] [-queue-timeout D]
//	                 [-request-timeout D]
//	heterosimd version
//
// serve runs until SIGINT/SIGTERM, then drains in-flight requests.
//
// Setting the HETEROSIMD_FAULTS environment variable (see
// internal/faultinject.Parse for the spec format) splices the chaos
// middleware in front of the serving stack — never do this in
// production; it exists so resilience drills can run against the real
// binary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/calcm/heterosim/internal/faultinject"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/version"
)

// faultsEnv guards the chaos middleware: the daemon injects faults only
// when this variable is set, and logs that it is doing so.
const faultsEnv = "HETEROSIMD_FAULTS"

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "heterosimd:", err)
		os.Exit(1)
	}
}

// run dispatches subcommands. ready, if non-nil, receives the bound
// listen address (tests and scripts use it with -addr :0).
func run(args []string, ready chan<- net.Addr) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return cmdServe(rest, ready)
	case "version":
		return cmdVersion(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `heterosimd — HTTP model-evaluation service for the MICRO 2010 reproduction

Subcommands:
  serve     run the service until SIGINT/SIGTERM
  version   print the build identity (module, version, Go runtime)

serve flags:
  -addr          listen address (default :8080; use :0 for an ephemeral port)
  -workers       evaluation worker pool, <= 0 means GOMAXPROCS (default 0)
  -cache-entries result cache budget; 0 keeps coalescing but disables storage (default 4096)
  -max-inflight  concurrent evaluations admitted (default 2 x GOMAXPROCS)
  -max-queue     requests queued beyond that before 429 (default = max-inflight)
  -queue-timeout queued-request wait bound before 503 (default 2s)
  -request-timeout
                 per-request deadline, queue wait plus evaluation, before
                 504 (default 30s; 0 disables)
`)
}

func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info := version.Get()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(info)
	}
	fmt.Printf("%s %s (%s, %s/%s)\n", info.Module, info.Version, info.GoVersion, info.OS, info.Arch)
	return nil
}

func cmdServe(args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "evaluation worker pool (<= 0 means GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 4096, "result cache budget (0 disables storage, keeps coalescing)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent evaluations admitted (0 = 2 x GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "queued requests before 429 (0 = max-inflight)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "queued-request wait before 503")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline before 504 (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries := *cacheEntries
	if entries <= 0 {
		entries = -1 // flag spelling: 0 disables storage, keeps coalescing
	}
	reqTimeout := *requestTimeout
	if reqTimeout <= 0 {
		reqTimeout = -1 // flag spelling: 0 disables the deadline
	}
	cfg := server.Config{
		Addr:           *addr,
		Workers:        par.Normalize(*workers),
		CacheEntries:   entries,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: reqTimeout,
	}
	logger := log.New(os.Stderr, "heterosimd: ", log.LstdFlags)
	var inj *faultinject.Injector
	if spec := os.Getenv(faultsEnv); spec != "" {
		fcfg, err := faultinject.Parse(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", faultsEnv, err)
		}
		inj, err = faultinject.New(fcfg)
		if err != nil {
			return fmt.Errorf("%s: %w", faultsEnv, err)
		}
		cfg.Middleware = inj.Wrap
		logger.Printf("WARNING: %s is set — serving with injected faults (%s)", faultsEnv, spec)
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	bound := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(ctx, bound) }()

	select {
	case a := <-bound:
		logger.Printf("%s listening on %s", version.Get().Version, a)
		for _, e := range server.Endpoints() {
			logger.Printf("  %s", e)
		}
		if ready != nil {
			ready <- a
		}
	case err := <-errc:
		return err // listen failed before binding
	}
	err = <-errc
	if err != nil {
		return err
	}
	if inj != nil {
		st := inj.Stats()
		logger.Printf("fault injection summary: %d requests, %d latencies, %d errors, %d resets, %d truncates",
			st.Requests, st.Latencies, st.Errors, st.Resets, st.Truncates)
	}
	logger.Printf("shut down cleanly")
	return nil
}
