// Command heterosimd is the long-running model-evaluation service: the
// Chung et al. (MICRO 2010) analytical engine behind JSON-over-HTTP
// endpoints, with a sharded result cache, request coalescing, and
// admission control so overload degrades to 429/503 instead of
// collapsing.
//
// Usage:
//
//	heterosimd serve [-addr :8080] [-workers N] [-cache-entries N]
//	                 [-max-inflight N] [-max-queue N] [-queue-timeout D]
//	                 [-request-timeout D] [-pprof-addr ADDR]
//	                 [-log-format text|json]
//
//	heterosimd version
//
// Every POST /v1 endpoint — optimize, sweep, project, scenario,
// sensitivity, ablation — is one entry in internal/server's operation
// registry and shares a single serving pipeline: strict decode,
// canonical cache key, coalescing, admission, deadlines, telemetry.
//
// serve runs until SIGINT/SIGTERM, then drains in-flight requests. It
// logs one structured line (log/slog; text or JSON) per request with a
// request ID taken from X-Request-ID or minted, serves /metrics as both
// the JSON counter document (default) and Prometheus text exposition
// (?format=prometheus or Accept: text/plain), and — opt-in via
// -pprof-addr — exposes net/http/pprof on a separate listener that is
// never reachable through the serving address.
//
// Setting the HETEROSIMD_FAULTS environment variable (see
// internal/faultinject.Parse for the spec format) splices the chaos
// middleware in front of the serving stack — never do this in
// production; it exists so resilience drills can run against the real
// binary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/calcm/heterosim/internal/faultinject"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/server"
	"github.com/calcm/heterosim/internal/version"
)

// faultsEnv guards the chaos middleware: the daemon injects faults only
// when this variable is set, and logs that it is doing so.
const faultsEnv = "HETEROSIMD_FAULTS"

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "heterosimd:", err)
		os.Exit(1)
	}
}

// run dispatches subcommands. ready, if non-nil, receives the bound
// listen address (tests and scripts use it with -addr :0).
func run(args []string, ready chan<- net.Addr) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return cmdServe(rest, ready)
	case "version":
		return cmdVersion(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `heterosimd — HTTP model-evaluation service for the MICRO 2010 reproduction

Subcommands:
  serve     run the service until SIGINT/SIGTERM
  version   print the build identity (module, version, Go runtime)

serve flags:
  -addr          listen address (default :8080; use :0 for an ephemeral port)
  -workers       evaluation worker pool, <= 0 means GOMAXPROCS (default 0)
  -cache-entries result cache budget; 0 keeps coalescing but disables storage (default 4096)
  -max-inflight  concurrent evaluations admitted (default 2 x GOMAXPROCS)
  -max-queue     requests queued beyond that before 429 (default = max-inflight)
  -queue-timeout queued-request wait bound before 503 (default 2s)
  -request-timeout
                 per-request deadline, queue wait plus evaluation, before
                 504 (default 30s; 0 disables)
  -pprof-addr    serve net/http/pprof on this separate listener
                 (default empty = disabled; never exposed on -addr)
  -log-format    structured log format: text or json (default text)
  -peers         comma-separated base URLs of every cluster member,
                 this daemon included (default empty = single-node)
  -peer-self     this daemon's own base URL as it appears in -peers
                 (required with -peers)
  -peer-timeout  per-fetch bound on owner-peer requests (default 10s)
`)
}

func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info := version.Get()
	info.Models = model.Names()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(info)
	}
	fmt.Printf("%s %s (%s, %s/%s) models=%s\n", info.Module, info.Version,
		info.GoVersion, info.OS, info.Arch, strings.Join(info.Models, ","))
	return nil
}

func cmdServe(args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "evaluation worker pool (<= 0 means GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 4096, "result cache budget (0 disables storage, keeps coalescing)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent evaluations admitted (0 = 2 x GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "queued requests before 429 (0 = max-inflight)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "queued-request wait before 503")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline before 504 (0 disables)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty disables)")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	peers := fs.String("peers", "", "comma-separated base URLs of every cluster member, this one included (empty = single-node)")
	peerSelf := fs.String("peer-self", "", "this daemon's own base URL within -peers (required with -peers)")
	peerTimeout := fs.Duration("peer-timeout", 10*time.Second, "per-fetch bound on owner-peer requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}
	entries := *cacheEntries
	if entries <= 0 {
		entries = -1 // flag spelling: 0 disables storage, keeps coalescing
	}
	reqTimeout := *requestTimeout
	if reqTimeout <= 0 {
		reqTimeout = -1 // flag spelling: 0 disables the deadline
	}
	cfg := server.Config{
		Addr:           *addr,
		Workers:        par.Normalize(*workers),
		CacheEntries:   entries,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: reqTimeout,
		Logger:         logger,
	}
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
		cfg.PeerSelf = *peerSelf
		cfg.PeerTimeout = *peerTimeout
	} else if *peerSelf != "" {
		return fmt.Errorf("-peer-self requires -peers")
	}
	var inj *faultinject.Injector
	if spec := os.Getenv(faultsEnv); spec != "" {
		fcfg, err := faultinject.Parse(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", faultsEnv, err)
		}
		inj, err = faultinject.New(fcfg)
		if err != nil {
			return fmt.Errorf("%s: %w", faultsEnv, err)
		}
		inj.SetLogger(logger)
		cfg.Middleware = inj.Wrap
		logger.Warn("serving with injected faults", "env", faultsEnv, "spec", spec)
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		pa, perrc, err := startPprof(ctx, *pprofAddr, logger)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		logger.Info("pprof listening", "addr", pa.String())
		go func() {
			if err := <-perrc; err != nil {
				logger.Error("pprof server failed", "error", err)
			}
		}()
	}

	bound := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(ctx, bound) }()

	select {
	case a := <-bound:
		logger.Info("listening", "version", version.Get().Version, "addr", a.String(),
			"models", strings.Join(model.Names(), ","))
		if cl := s.Cluster(); cl != nil {
			logger.Info("clustering", "self", cl.Self(), "peers", strings.Join(cl.Peers(), ","))
		}
		for _, e := range server.Endpoints() {
			logger.Info("endpoint", "route", e)
		}
		if ready != nil {
			ready <- a
		}
	case err := <-errc:
		return err // listen failed before binding
	}
	err = <-errc
	if err != nil {
		return err
	}
	if inj != nil {
		st := inj.Stats()
		logger.Info("fault injection summary",
			"requests", st.Requests, "latencies", st.Latencies,
			"errors", st.Errors, "resets", st.Resets, "truncates", st.Truncates)
	}
	logger.Info("shut down cleanly")
	return nil
}

// newLogger builds the daemon's structured logger on stderr.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// startPprof serves net/http/pprof on its own listener so profiling is
// never reachable through the public serving address. The server shuts
// down when ctx is cancelled; the returned channel reports its exit.
func startPprof(ctx context.Context, addr string, logger *slog.Logger) (net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Warn("pprof shutdown", "error", err)
		}
	}()
	return ln.Addr(), errc, nil
}
