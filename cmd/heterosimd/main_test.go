package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRunDispatch(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"frobnicate"}, nil); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if err := run([]string{"help"}, nil); err != nil {
		t.Errorf("help should succeed: %v", err)
	}
}

func TestVersionSubcommand(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"version", "-json"}, nil)
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	var info struct {
		Module  string `json:"module"`
		Version string `json:"version"`
	}
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatalf("version -json output %q: %v", out, err)
	}
	if info.Module != "github.com/calcm/heterosim" || info.Version == "" {
		t.Errorf("unexpected version info: %+v", info)
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port, exercises the
// live HTTP surface (healthz, version, optimize against the smoke
// golden that CI curls), and shuts it down with SIGINT — the exact
// lifecycle a deployment sees.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", "127.0.0.1:0", "-workers", "2", "-cache-entries", "64"}, ready)
	}()
	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not bind within 5s")
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(string(body)) != `{"status":"ok"}` {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get("/v1/version"); code != http.StatusOK || !bytes.Contains(body, []byte("goVersion")) {
		t.Fatalf("version: %d %s", code, body)
	}

	// Observability surface: every response carries a request ID (echoed
	// when the caller supplies one), and /metrics speaks Prometheus text
	// exposition on request while defaulting to the JSON document.
	req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "e2e-test-1")
	idResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	idResp.Body.Close()
	if got := idResp.Header.Get("X-Request-ID"); got != "e2e-test-1" {
		t.Errorf("X-Request-ID = %q, want echo of e2e-test-1", got)
	}
	if code, body := get("/metrics?format=prometheus"); code != http.StatusOK ||
		!bytes.Contains(body, []byte(`heterosimd_requests_total{endpoint="optimize"}`)) ||
		!bytes.Contains(body, []byte("heterosimd_request_duration_seconds_bucket")) {
		t.Errorf("prometheus exposition missing expected series: %d\n%s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !bytes.Contains(body, []byte(`"uptimeSeconds"`)) {
		t.Errorf("JSON metrics document broken: %d %s", code, body)
	}

	// The same request/response pairs CI replays with curl. The
	// frontier entry is the NDJSON stream: its golden pins the whole
	// header/rows/trailer byte sequence, same as the buffered bodies.
	for _, ep := range []struct{ name, path string }{
		{"optimize", "/v1/optimize"},
		{"sensitivity", "/v1/sensitivity"},
		{"ablation", "/v1/ablation"},
		{"compare", "/v1/compare"},
		{"frontier", "/v1/frontier/stream"},
	} {
		reqBody, err := os.ReadFile(filepath.Join("testdata", ep.name+"_smoke.json"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+ep.path, "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", ep.name, resp.StatusCode, got)
		}
		goldenPath := filepath.Join("testdata", ep.name+"_smoke.golden")
		if *update {
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%v (regenerate with go test ./cmd/heterosimd -update)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s smoke response drifted:\n--- got ---\n%s\n--- want ---\n%s", ep.name, got, want)
		}
	}

	// Graceful shutdown on SIGINT.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve did not shut down cleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGINT")
	}
}

// TestStartPprof drives the profiling listener directly: it binds its
// own port, serves the pprof index, and shuts down with the context.
func TestStartPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	addr, errc, err := startPprof(ctx, "127.0.0.1:0", logger)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index: %d %s", resp.StatusCode, body)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("pprof server exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pprof server did not shut down on context cancel")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	for _, ok := range []string{"text", "json", ""} {
		if _, err := newLogger(ok); err != nil {
			t.Errorf("newLogger(%q) = %v", ok, err)
		}
	}
	if _, err := newLogger("xml"); err == nil {
		t.Error("unknown log format must fail")
	}
}
