module github.com/calcm/heterosim

go 1.22
