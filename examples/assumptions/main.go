// Assumptions: probe the model's three idealizations with the
// repository's extension packages — the scalar parallel fraction
// (profile), the fluid scheduling assumption (discrete LPT scheduling),
// and the linear bandwidth assumption (roofline placement). This is the
// "model validity and concerns" discussion of the paper's Section 6.3,
// made executable.
//
// Run with: go run ./examples/assumptions
package main

import (
	"fmt"
	"log"
	"math"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	probeScalarF()
	probeScheduling()
	probeRoofline()
}

// probeScalarF: two applications with the same Amdahl f but different
// parallelism-width profiles value the same U-core very differently.
func probeScalarF() {
	fmt.Println("1. The scalar parallel fraction hides width structure")
	fmt.Println("   (same f = 0.9, ASIC MMM U-core, n = 64, best r <= 16):")
	u, ok := heterosim.PublishedUCore(heterosim.ASIC, heterosim.MMM)
	if !ok {
		log.Fatal("missing ASIC MMM parameters")
	}
	for _, width := range []float64{2, 8, 64, math.Inf(1)} {
		p, err := heterosim.TwoPhaseProfile(0.9, width)
		if err != nil {
			log.Fatal(err)
		}
		bestHet, bestCMP := 0.0, 0.0
		for r := 1.0; r <= 16; r++ {
			if s, err := p.SpeedupHeterogeneous(64, r, u); err == nil && s > bestHet {
				bestHet = s
			}
			if s, err := p.SpeedupAsymmetricOffload(64, r); err == nil && s > bestCMP {
				bestCMP = s
			}
		}
		label := fmt.Sprintf("%.0f", width)
		if math.IsInf(width, 1) {
			label = "inf"
		}
		fmt.Printf("   width %4s: HET %7.2f  CMP %6.2f  U-core advantage %5.2fx\n",
			label, bestHet, bestCMP, bestHet/bestCMP)
	}
	fmt.Println()
}

// probeScheduling: the fluid model is exact for fine-grained
// throughput-driven work and lossy for coarse skewed work.
func probeScheduling() {
	fmt.Println("2. The 'perfectly scheduled' assumption, quantified")
	fmt.Println("   (17 GPU lanes, mu = 2.88 — the 40nm FFT fabric):")
	// Exercised through the CLI's ablate subcommand as well; here via the
	// numbers a library user would compute. The sched package is internal
	// machinery; its verdict is reproduced by the model error the profile
	// exposes at width = lane count boundaries.
	for _, tasks := range []int{17, 18, 34, 35, 1700} {
		// With T equal unit tasks on L lanes, the real makespan is
		// ceil(T/L) rounds while the fluid model predicts T/L.
		lanes := 17
		rounds := (tasks + lanes - 1) / lanes
		fluid := float64(tasks) / float64(lanes)
		loss := 1 - fluid/float64(rounds)
		fmt.Printf("   %5d unit tasks: fluid %6.2f rounds, real %2d rounds, model error %5.1f%%\n",
			tasks, fluid, rounds, 100*loss)
	}
	fmt.Println("   -> throughput-driven kernels (many independent inputs, the paper's")
	fmt.Println("      measurement condition) sit in the negligible-error regime.")
	fmt.Println()
}

// probeRoofline: where the paper's workloads sit against a device's
// compute and bandwidth ceilings.
func probeRoofline() {
	fmt.Println("3. Roofline placement on the GTX285 (peak ~700 GFLOP/s, 159 GB/s):")
	d := heterosim.RooflineDevice{Name: "GTX285", PeakCompute: 700, PeakBandwidth: 159}
	cases := []struct {
		name     string
		ai       float64
		achieved float64
	}{
		{"MMM (blocked N=128, AI=32)", 32, 425},
		{"FFT-1024 (AI=3.125)", 3.125, 392},
		{"FFT-64 (AI=1.875)", 1.875, 290},
	}
	for _, c := range cases {
		p, err := d.Place(c.name, c.ai, c.achieved)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-28s attainable %5.0f, achieved %4.0f (%.0f%%), %s\n",
			c.name, p.Attainable, p.Achieved, 100*p.Utilization, p.Bound)
	}
	fmt.Println("   -> every measured kernel ran below both ceilings: compute-bound in")
	fmt.Println("      practice, which is what licenses the model's linear area scaling.")
}
