// Ondemand: replay a mixed kernel stream on a Section 6.3 chip in the
// time domain. The fluid mix optimizer says how to split the die; the
// trace replayer shows what a concrete workload does with that split —
// per-fabric utilization, average power (dark silicon at work), and the
// cost of imperfect power gating.
//
// Run with: go run ./examples/ondemand
package main

import (
	"fmt"
	"log"
	"sort"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	asicMMM, ok := heterosim.PublishedUCore(heterosim.ASIC, heterosim.MMM)
	if !ok {
		log.Fatal("missing ASIC MMM parameters")
	}
	gpuFFT, ok := heterosim.PublishedUCore(heterosim.GTX285, heterosim.FFT1024)
	if !ok {
		log.Fatal("missing GTX285 FFT parameters")
	}

	// Split a 22nm die (75 BCE, r = 8) between the two fabrics.
	chip := heterosim.TraceChip{
		Law: heterosim.DefaultLaw(),
		R:   8,
		Fabrics: map[string]heterosim.TraceFabric{
			"mmm": {UCore: asicMMM, AreaBCE: 27},
			"fft": {UCore: gpuFFT, AreaBCE: 40},
		},
	}

	// A stream of 5000 jobs: twice as much FFT work as MMM, 10% serial
	// prologues.
	jobs, err := heterosim.GenerateTrace(5000,
		map[string]float64{"mmm": 1, "fft": 2}, 4.0, 0.1, 2026)
	if err != nil {
		log.Fatal(err)
	}

	res, err := heterosim.ReplayTrace(jobs, chip)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := heterosim.TraceSpeedup(jobs, res)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Replayed %d jobs in %.1f time units (one BCE would need %.0f)\n",
		res.Jobs, res.Seconds, res.Seconds*sp)
	fmt.Printf("Speedup over one BCE: %.1fx\n\n", sp)

	fmt.Println("Where the time went:")
	fmt.Printf("  %-18s %6.1f%%  (sequential core, r=%.0f)\n",
		"serial prologues:", 100*res.SerialBusy/res.Seconds, chip.R)
	names := make([]string, 0, len(res.Utilization))
	for name := range res.Utilization {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-18s %6.1f%%  (%.0f BCE of fabric)\n",
			name+" fabric:", 100*res.Utilization[name], chip.Fabrics[name].AreaBCE)
	}

	fmt.Printf("\nAverage power: %.1f BCE units — versus %.1f if every fabric"+
		" ran at once.\n", res.AvgPowerBCE,
		asicMMM.Phi*27+gpuFFT.Phi*40)

	// What imperfect power gating costs: idle fabrics at 20% of active.
	leaky := chip
	leaky.IdleFraction = 0.2
	leakyRes, err := heterosim.ReplayTrace(jobs, leaky)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("With 20%% idle leakage the same run costs %.0f%% more energy"+
		" (%.1f vs %.1f BCE-units) at identical speed.\n",
		100*(leakyRes.EnergyBCEs/res.EnergyBCEs-1),
		leakyRes.EnergyBCEs, res.EnergyBCEs)
	fmt.Println("\nDark silicon only pays if the gates actually close — the")
	fmt.Println("quantified footnote to the paper's 'powered on-demand' proposal.")
}
