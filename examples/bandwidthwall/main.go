// Bandwidthwall: the paper's Scenario 2 — what happens if disruptive
// memory technology (3D stacking, embedded DRAM) delivers 1 TB/s? The
// study behind Figure 9: the bandwidth wall moves, designs become
// power-limited, and custom logic's edge over flexible U-cores reopens
// only at extreme parallelism.
//
// Run with: go run ./examples/bandwidthwall
package main

import (
	"fmt"
	"log"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	var baselineScen, highBW heterosim.Scenario
	for _, s := range heterosim.Scenarios() {
		switch s.Name {
		case "baseline":
			baselineScen = s
		case "1 TB/s start":
			highBW = s
		}
	}
	if baselineScen.Name == "" || highBW.Name == "" {
		log.Fatal("scenario catalog incomplete")
	}

	fmt.Println("How much speedup does lifting the bandwidth wall buy?")
	fmt.Println("(FFT-1024 at 11nm, best design point per chip, 180 GB/s vs 1 TB/s)")
	fmt.Println()

	for _, f := range []float64{0.9, 0.99, 0.999} {
		base, err := heterosim.RunScenario(baselineScen, heterosim.FFT1024, f)
		if err != nil {
			log.Fatal(err)
		}
		wide, err := heterosim.RunScenario(highBW, heterosim.FFT1024, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("f = %.3f:\n", f)
		fmt.Printf("  %-14s %12s %12s %8s %s\n", "design", "180 GB/s", "1 TB/s", "gain", "new limit")
		for i := range base {
			b := base[i].Points[len(base[i].Points)-1]
			w := wide[i].Points[len(wide[i].Points)-1]
			if !b.Valid || !w.Valid {
				continue
			}
			fmt.Printf("  %-14s %12.1f %12.1f %7.2fx %s\n",
				base[i].Design.Label, b.Point.Speedup, w.Point.Speedup,
				w.Point.Speedup/b.Point.Speedup, w.Point.Limit)
		}
		fmt.Println()
	}

	fmt.Println("Reading the result: bandwidth-starved U-cores (especially custom")
	fmt.Println("logic) gain the most; the CMPs gain nothing because power, not")
	fmt.Println("bandwidth, was their wall all along — the paper's Section 6.2.")
}
