// Mixfabric: the design the paper's discussion proposes (Section 6.3) —
// fabricate several U-core fabrics on one die and power each on-demand:
// a custom MMM core for the high-arithmetic-intensity kernel next to a
// GPU fabric for bandwidth-limited FFTs. Compares the mixed chip against
// single-fabric alternatives.
//
// Run with: go run ./examples/mixfabric
package main

import (
	"fmt"
	"log"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	asicMMM, ok := heterosim.PublishedUCore(heterosim.ASIC, heterosim.MMM)
	if !ok {
		log.Fatal("missing ASIC MMM parameters")
	}
	gpuFFT, ok := heterosim.PublishedUCore(heterosim.GTX285, heterosim.FFT1024)
	if !ok {
		log.Fatal("missing GTX285 FFT parameters")
	}

	// A workload that is 10% sequential, 45% MMM-like, 45% FFT-like, on a
	// 22nm die (75 BCE area, ~17.3 BCE power for the FFT/MMM BCE scale).
	chip := heterosim.MixChip{
		Law:            heterosim.DefaultLaw(),
		SerialFraction: 0.10,
		Kernels: []heterosim.MixKernel{
			{
				Name:   "MMM on custom logic",
				Weight: 0.45,
				UCore:  asicMMM,
				// The ASIC MMM core blocks at N >= 2048; its arithmetic
				// intensity lifts it out of the bandwidth constraint.
				ExemptBandwidth: true,
			},
			{
				Name:         "FFT on GPU fabric",
				Weight:       0.45,
				UCore:        gpuFFT,
				BandwidthBCE: 75.2, // 234 GB/s over the FFT BCE demand
			},
		},
		AreaBCE:  75,
		PowerBCE: 17.3,
		MaxR:     16,
	}

	alloc, err := chip.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mixed-fabric chip (22nm, 10% serial, 45% MMM, 45% FFT):")
	fmt.Printf("  sequential core:   r = %d BCE\n", alloc.R)
	for i, k := range chip.Kernels {
		fmt.Printf("  %-22s %6.1f BCE of fabric (%.1f usable while active)\n",
			k.Name+":", alloc.AreaBCE[i], alloc.EffectiveN[i])
	}
	fmt.Printf("  overall speedup:   %.1f x over one BCE\n\n", alloc.Speedup)

	for j, k := range chip.Kernels {
		single, err := chip.SingleFabricSpeedup(j)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Only %-22s -> speedup %6.1f (%.0f%% of the mix)\n",
			k.Name+":", single, 100*single/alloc.Speedup)
	}
	fmt.Println()
	fmt.Println("Dark silicon works in the mix's favor: both fabrics occupy area,")
	fmt.Println("but only the active one draws power — the paper's 'powered")
	fmt.Println("on-demand for suitable tasks' proposal, quantified.")
}
