// Mobile: the paper's Scenario 5 — a 10 W power envelope (laptops,
// phones). Shows that under severe power constraints only custom logic
// approaches the bandwidth ceiling, and quantifies how much performance
// each U-core class gives up.
//
// Run with: go run ./examples/mobile
package main

import (
	"fmt"
	"log"
	"math"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	// Find Scenario 5 in the catalog.
	var mobile heterosim.Scenario
	found := false
	for _, s := range heterosim.Scenarios() {
		if s.Name == "10 W budget" {
			mobile, found = s, true
			break
		}
	}
	if !found {
		log.Fatal("scenario catalog missing the 10 W study")
	}
	fmt.Printf("Scenario: %s\nRationale: %s\n\n", mobile.Name, mobile.Rationale)

	for _, f := range []float64{0.9, 0.99} {
		ts, err := heterosim.RunScenario(mobile, heterosim.FFT1024, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FFT-1024 at f=%.2f under 10 W:\n", f)
		fmt.Printf("  %-14s %10s %10s %10s %10s %10s\n",
			"design", "40nm", "32nm", "22nm", "16nm", "11nm")
		for _, tr := range ts {
			fmt.Printf("  %-14s", tr.Design.Label)
			for _, p := range tr.Points {
				if !p.Valid {
					fmt.Printf(" %10s", "infeasible")
					continue
				}
				fmt.Printf(" %6.1f (%s)", p.Point.Speedup, p.Point.Limit.String()[:1])
			}
			fmt.Println()
		}

		// Quantify the paper's claim: the ASIC's advantage over the best
		// flexible U-core grows as power shrinks.
		asic := mustFind(ts, "(6) ASIC")
		flexBest := math.Inf(-1)
		for _, label := range []string{"(2) LX760", "(3) GTX285", "(4) GTX480"} {
			tr := mustFindOk(ts, label)
			if tr == nil {
				continue
			}
			last := tr.Points[len(tr.Points)-1]
			if last.Valid && last.Point.Speedup > flexBest {
				flexBest = last.Point.Speedup
			}
		}
		lastASIC := asic.Points[len(asic.Points)-1]
		fmt.Printf("  -> at 11nm the ASIC leads the best flexible U-core by %.2fx\n\n",
			lastASIC.Point.Speedup/flexBest)
	}

	fmt.Println("Compare with the 100 W baseline, where flexible U-cores catch the")
	fmt.Println("same bandwidth ceiling as the ASIC (run: heterosim figure 6).")
}

func mustFind(ts []heterosim.Trajectory, label string) heterosim.Trajectory {
	tr := mustFindOk(ts, label)
	if tr == nil {
		log.Fatalf("missing trajectory %s", label)
	}
	return *tr
}

func mustFindOk(ts []heterosim.Trajectory, label string) *heterosim.Trajectory {
	for i := range ts {
		if ts[i].Design.Label == label {
			return &ts[i]
		}
	}
	return nil
}
