// Designspace: sweep the (mu, phi) plane for a hypothetical accelerator
// and find where it beats the best published U-cores — answering "how
// fast and how efficient must my fabric be to matter?" for a given
// parallelism level and technology node.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"strings"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	// 22nm budgets for FFT-1024: area 75 BCE, power 100W / (11.6W x 0.5)
	// ~ 17.3 BCE, bandwidth 234 GB/s / 3.11 GB/s ~ 75 BCE.
	budgets := heterosim.Budgets{Area: 75, Power: 17.3, Bandwidth: 75.2}
	const f = 0.99

	ev := heterosim.NewEvaluator()

	// Reference point: the best published U-core (ASIC) at this node.
	asicU, ok := heterosim.PublishedUCore(heterosim.ASIC, heterosim.FFT1024)
	if !ok {
		log.Fatal("missing ASIC parameters")
	}
	asic, err := ev.Optimize(heterosim.Design{Kind: heterosim.Het, Label: "ASIC", UCore: asicU}, f, budgets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reference: published ASIC FFT core reaches speedup %.1f (%s) at 22nm, f=%.2f\n\n",
		asic.Speedup, asic.Limit, f)

	// Sweep mu (columns) and phi (rows) and report speedup relative to
	// the ASIC reference.
	mus := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128}
	phis := []float64{0.125, 0.25, 0.5, 1, 2, 4}

	fmt.Println("Speedup relative to the ASIC design point (>=1.00 means competitive):")
	fmt.Printf("%8s", "phi\\mu")
	for _, mu := range mus {
		fmt.Printf("%7.3g", mu)
	}
	fmt.Println()
	for _, phi := range phis {
		fmt.Printf("%8.3g", phi)
		for _, mu := range mus {
			d := heterosim.Design{
				Kind:  heterosim.Het,
				Label: "candidate",
				UCore: heterosim.UCore{Mu: mu, Phi: phi},
			}
			pt, err := ev.Optimize(d, f, budgets)
			if err != nil {
				fmt.Printf("%7s", "-")
				continue
			}
			fmt.Printf("%7.2f", pt.Speedup/asic.Speedup)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println(strings.TrimSpace(`
Reading the table: once a candidate hits the bandwidth ceiling (B/mu + r),
raising mu further stops helping — exactly the paper's second finding.
Lowering phi keeps helping until the area budget binds instead.`))

	// Find the cheapest (lowest-mu) candidate within 5% of the ASIC.
	for _, mu := range mus {
		d := heterosim.Design{Kind: heterosim.Het, UCore: heterosim.UCore{Mu: mu, Phi: 0.5}}
		pt, err := ev.Optimize(d, f, budgets)
		if err != nil {
			continue
		}
		if pt.Speedup >= 0.95*asic.Speedup {
			fmt.Printf("\nAt phi=0.5, mu=%.3g already matches the ASIC within 5%%"+
				" (speedup %.1f, %s) — flexibility is affordable here.\n",
				mu, pt.Speedup, pt.Limit)
			break
		}
	}
}
