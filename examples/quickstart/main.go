// Quickstart: evaluate a U-core heterogeneous chip under the paper's
// 40nm budgets and compare it with the CMP baselines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	heterosim "github.com/calcm/heterosim"
)

func main() {
	// Budgets at the 2011/40nm node for FFT-1024, converted from the
	// paper's physical budgets (432 mm², 100 W, 180 GB/s) into
	// BCE-relative units: 19 BCE of area, ~8.6 of power, ~58 of
	// bandwidth.
	budgets, err := heterosim.BudgetsFor(heterosim.FFT1024, "40nm")
	if err != nil {
		log.Fatal(err)
	}
	const f = 0.99 // 99% of execution is parallelizable

	ev := heterosim.NewEvaluator()

	// The paper's measured U-cores for FFT-1024 (Table 5).
	lineup := []struct {
		device heterosim.DeviceID
		label  string
	}{
		{heterosim.LX760, "FPGA (Virtex-6 LX760)"},
		{heterosim.GTX285, "GPU (GTX285)"},
		{heterosim.ASIC, "Custom logic (ASIC)"},
	}

	fmt.Printf("FFT-1024 at f=%.2f under 40nm budgets (A=%.0f, P=%.1f, B=%.1f BCE):\n\n",
		f, budgets.Area, budgets.Power, budgets.Bandwidth)

	// CMP baselines first.
	for _, d := range []heterosim.Design{
		{Kind: heterosim.SymCMP, Label: "Symmetric CMP"},
		{Kind: heterosim.AsymCMP, Label: "Asymmetric CMP (offload)"},
	} {
		pt, err := ev.Optimize(d, f, budgets)
		if err != nil {
			log.Fatal(err)
		}
		show(d.Label, pt)
	}

	// Then one heterogeneous chip per U-core.
	for _, entry := range lineup {
		u, ok := heterosim.PublishedUCore(entry.device, heterosim.FFT1024)
		if !ok {
			log.Fatalf("no published parameters for %s", entry.device)
		}
		d := heterosim.Design{Kind: heterosim.Het, Label: entry.label, UCore: u}
		pt, err := ev.Optimize(d, f, budgets)
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("%s (mu=%.2f, phi=%.2f)", entry.label, u.Mu, u.Phi), pt)
	}

	// And a hypothetical accelerator of your own design.
	custom := heterosim.Design{
		Kind:  heterosim.Het,
		Label: "your accelerator",
		UCore: heterosim.UCore{Mu: 10, Phi: 0.5},
	}
	pt, err := ev.Optimize(custom, f, budgets)
	if err != nil {
		log.Fatal(err)
	}
	show("Hypothetical U-core (mu=10, phi=0.5)", pt)
}

func show(label string, pt heterosim.Point) {
	fmt.Printf("  %-42s speedup %7.2f  (best r=%d, %s)\n",
		label, pt.Speedup, pt.R, pt.Limit)
}
