package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/sweep"
)

// fuzzCase draws one optimizer input. The distributions deliberately mix
// smooth interiors with degenerate edges: f pinned to 0 and 1, budgets
// spanning infeasible (< 1) through slack (10^4), infinite bandwidth, and
// U-cores from hopeless (mu << 1) to exotic (mu >> 1).
type fuzzCase struct {
	d     Design
	f     float64
	b     bounds.Budgets
	alpha float64
}

func drawCase(rng *rand.Rand) fuzzCase {
	logU := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	var f float64
	switch rng.Intn(6) {
	case 0:
		f = 0
	case 1:
		f = 1
	case 2:
		f = 1 - logU(1e-6, 1) // the paper's 0.9/0.99/0.999 regime
	default:
		f = rng.Float64()
	}
	b := bounds.Budgets{
		Area:      logU(0.3, 2e4),
		Power:     logU(0.3, 2e4),
		Bandwidth: logU(0.05, 2e3),
	}
	if rng.Intn(12) == 0 {
		b.Bandwidth = math.Inf(1)
	}
	d := Design{Label: "fuzz"}
	switch rng.Intn(3) {
	case 0:
		d.Kind = SymCMP
	case 1:
		d.Kind = AsymCMP
	default:
		d.Kind = Het
		d.UCore = bounds.UCore{Mu: logU(0.01, 200), Phi: logU(0.01, 200)}
	}
	if rng.Intn(10) == 0 {
		d.ExemptBandwidth = true
	}
	alphas := []float64{pollack.DefaultAlpha, pollack.ScenarioSixAlpha, 1, 2, 0.5}
	var alpha float64
	if rng.Intn(2) == 0 {
		alpha = alphas[rng.Intn(len(alphas))]
	} else {
		alpha = 0.3 + rng.Float64()*2.7
	}
	return fuzzCase{d: d, f: f, b: b, alpha: alpha}
}

func evaluatorFor(t *testing.T, alpha float64, maxR int) Evaluator {
	t.Helper()
	law, err := pollack.New(alpha)
	if err != nil {
		t.Fatalf("pollack.New(%v): %v", alpha, err)
	}
	return Evaluator{Law: law, MaxR: maxR}
}

// TestAnalyticMatchesGridFuzz is the core equivalence property: for
// fuzzed (f, budgets, design, alpha) across all three chip kinds, the
// analytic Optimize must return exactly the Point the serial grid scan
// returns — same r, same bit pattern of every float — and must be
// infeasible exactly when the grid finds nothing.
func TestAnalyticMatchesGridFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const cases = 6000
	feasible, infeasible := 0, 0
	for i := 0; i < cases; i++ {
		c := drawCase(rng)
		maxR := 16
		if rng.Intn(8) == 0 {
			maxR = 1 + rng.Intn(64)
		}
		e := evaluatorFor(t, c.alpha, maxR)
		got, gotErr := e.Optimize(c.d, c.f, c.b)
		want, wantErr := e.OptimizeGrid(c.d, c.f, c.b)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("case %d (%+v): analytic err=%v grid err=%v", i, c, gotErr, wantErr)
		}
		if wantErr != nil {
			infeasible++
			if !errors.Is(gotErr, ErrInfeasible) || !errors.Is(wantErr, ErrInfeasible) {
				t.Fatalf("case %d (%+v): non-infeasible errors: %v vs %v", i, c, gotErr, wantErr)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("case %d (%+v): error text diverged:\n  analytic: %v\n  grid:     %v", i, c, gotErr, wantErr)
			}
			continue
		}
		feasible++
		if got != want {
			t.Fatalf("case %d (%+v):\n  analytic: %+v\n  grid:     %+v", i, c, got, want)
		}
	}
	// The draw must exercise both outcomes or the property is vacuous.
	if feasible < cases/10 || infeasible < cases/50 {
		t.Fatalf("draw imbalance: %d feasible, %d infeasible of %d", feasible, infeasible, cases)
	}
}

// TestAnalyticEnergyMatchesGridFuzz is the same property for the energy
// objective.
func TestAnalyticEnergyMatchesGridFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const cases = 6000
	for i := 0; i < cases; i++ {
		c := drawCase(rng)
		e := evaluatorFor(t, c.alpha, 16)
		got, gotErr := e.OptimizeEnergy(c.d, c.f, c.b)
		want, wantErr := e.OptimizeEnergyGrid(c.d, c.f, c.b)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("case %d (%+v): analytic err=%v grid err=%v", i, c, gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("case %d (%+v): error text diverged:\n  analytic: %v\n  grid:     %v", i, c, gotErr, wantErr)
			}
			continue
		}
		// NaN energy (degenerate U-cores) compares unequal to itself under
		// struct ==; both paths must still pick the same r and bit pattern.
		if got.R != want.R || math.Float64bits(got.EnergyNorm) != math.Float64bits(want.EnergyNorm) ||
			math.Float64bits(got.Speedup) != math.Float64bits(want.Speedup) || got.N != want.N || got.Limit != want.Limit {
			t.Fatalf("case %d (%+v):\n  analytic: %+v\n  grid:     %+v", i, c, got, want)
		}
	}
}

// TestAnalyticMatchesArgMaxParallelFuzz closes the triangle from the
// issue: analytic optimum == serial grid scan == sweep.ArgMaxParallel
// over an explicit r axis, including infeasible-case agreement.
func TestAnalyticMatchesArgMaxParallelFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	const cases = 500
	for i := 0; i < cases; i++ {
		c := drawCase(rng)
		e := evaluatorFor(t, c.alpha, 16)
		rs := make([]float64, e.MaxR)
		for r := range rs {
			rs[r] = float64(r + 1)
		}
		grid, err := sweep.NewGrid(sweep.Axis{Name: "r", Values: rs})
		if err != nil {
			t.Fatal(err)
		}
		res, sweepErr := grid.ArgMaxParallel(context.Background(), 4, func(p sweep.Point) (float64, error) {
			pt, err := e.Evaluate(c.d, c.f, c.b, int(p["r"]))
			if err != nil {
				return 0, err
			}
			return pt.Speedup, nil
		})
		got, gotErr := e.Optimize(c.d, c.f, c.b)
		if (gotErr == nil) != (sweepErr == nil) {
			t.Fatalf("case %d (%+v): analytic err=%v sweep err=%v", i, c, gotErr, sweepErr)
		}
		if sweepErr != nil {
			if !errors.Is(gotErr, ErrInfeasible) {
				t.Fatalf("case %d: analytic error not ErrInfeasible: %v", i, gotErr)
			}
			continue
		}
		if int(res.Point["r"]) != got.R || res.Value != got.Speedup {
			t.Fatalf("case %d (%+v): sweep picked r=%v v=%v, analytic r=%d v=%v",
				i, c, res.Point["r"], res.Value, got.R, got.Speedup)
		}
	}
}

// TestAnalyticDegenerateInputs pins the fallback behavior for inputs the
// analytic path refuses to analyze: validation failures must surface the
// grid's exact errors.
func TestAnalyticDegenerateInputs(t *testing.T) {
	e := NewEvaluator()
	okB := bounds.Budgets{Area: 64, Power: 32, Bandwidth: 8}
	cases := []struct {
		name string
		d    Design
		f    float64
		b    bounds.Budgets
	}{
		{"bad kind", Design{Kind: ChipKind(9)}, 0.5, okB},
		{"bad fraction", Design{Kind: SymCMP}, 1.5, okB},
		{"nan fraction", Design{Kind: SymCMP}, math.NaN(), okB},
		{"zero area", Design{Kind: SymCMP}, 0.5, bounds.Budgets{Area: 0, Power: 32, Bandwidth: 8}},
		{"negative power", Design{Kind: AsymCMP}, 0.5, bounds.Budgets{Area: 64, Power: -1, Bandwidth: 8}},
		{"nan bandwidth", Design{Kind: AsymCMP}, 0.5, bounds.Budgets{Area: 64, Power: 32, Bandwidth: math.NaN()}},
		{"bad ucore", Design{Kind: Het, UCore: bounds.UCore{Mu: 0, Phi: 1}}, 0.5, okB},
		{"sub-serial budgets", Design{Kind: SymCMP}, 0.5, bounds.Budgets{Area: 0.5, Power: 0.5, Bandwidth: 0.5}},
		{"offload no headroom", Design{Kind: AsymCMP}, 0.5, bounds.Budgets{Area: 1, Power: 1, Bandwidth: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, gotErr := e.Optimize(tc.d, tc.f, tc.b)
			_, wantErr := e.OptimizeGrid(tc.d, tc.f, tc.b)
			if gotErr == nil || wantErr == nil {
				t.Fatalf("expected errors, got analytic=%v grid=%v", gotErr, wantErr)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text diverged:\n  analytic: %v\n  grid:     %v", gotErr, wantErr)
			}
		})
	}
}

// TestSerialCapMatchesMaxSerialR checks the closed-form serial cap
// against the linear scan it replaces.
func TestSerialCapMatchesMaxSerialR(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 3000; i++ {
		c := drawCase(rng)
		law, err := pollack.New(c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if r, err := bounds.MaxSerialR(law, c.b); err == nil {
			want = r
		}
		if want > 16 {
			want = 16
		}
		if got := bounds.SerialCap(law, c.b, 16); got != want {
			t.Fatalf("case %d (%+v): SerialCap=%d, MaxSerialR-capped=%d", i, c, got, want)
		}
	}
}
