package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
)

// 40nm FFT-1024 context: A=19, P~8.6, B~57.9 (see DESIGN.md §5).
func fft40nmBudgets() bounds.Budgets {
	return bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
}

func TestDesignValidate(t *testing.T) {
	if err := (Design{Kind: SymCMP}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Design{Kind: Het, UCore: bounds.UCore{Mu: 2, Phi: 0.5}}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Design{Kind: Het}).Validate(); err == nil {
		t.Error("HET without U-core must fail")
	}
	if err := (Design{Kind: ChipKind(9)}).Validate(); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestChipKindString(t *testing.T) {
	if SymCMP.String() != "SymCMP" || AsymCMP.String() != "AsymCMP" || Het.String() != "HET" {
		t.Error("ChipKind.String mismatch")
	}
	if ChipKind(9).String() == "" {
		t.Error("unknown kind should print")
	}
}

func TestEvaluateValidation(t *testing.T) {
	e := NewEvaluator()
	b := fft40nmBudgets()
	d := Design{Kind: AsymCMP}
	if _, err := e.Evaluate(d, -0.5, b, 2); err == nil {
		t.Error("bad f must fail")
	}
	if _, err := e.Evaluate(d, 0.9, b, 0); err == nil {
		t.Error("r=0 must fail")
	}
	if _, err := e.Evaluate(d, 0.9, b, 15); err == nil {
		t.Error("r violating serial power bound must fail")
	}
}

func TestEvaluateASICFFTIsBandwidthLimited(t *testing.T) {
	e := NewEvaluator()
	asic := Design{Kind: Het, Label: "(6) ASIC", UCore: bounds.UCore{Mu: 489, Phi: 4.96}}
	p, err := e.Evaluate(asic, 0.999, fft40nmBudgets(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Limit != bounds.BandwidthLimited {
		t.Errorf("ASIC FFT limit = %v, want bandwidth-limited", p.Limit)
	}
	// Parallel throughput caps at B = 57.9 BCE units; speedup ~ 56.
	want := 1 / (0.001/math.Sqrt2 + 0.999/57.9)
	if math.Abs(p.Speedup/want-1) > 0.02 {
		t.Errorf("speedup = %g, want ~%g", p.Speedup, want)
	}
}

func TestOptimizePicksBestR(t *testing.T) {
	e := NewEvaluator()
	d := Design{Kind: AsymCMP}
	b := fft40nmBudgets()
	best, err := e.Optimize(d, 0.5, b)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check against manual sweep.
	for r := 1; r <= 16; r++ {
		p, err := e.Evaluate(d, 0.5, b, r)
		if err != nil {
			continue
		}
		if p.Speedup > best.Speedup+1e-12 {
			t.Errorf("r=%d beats Optimize: %g > %g", r, p.Speedup, best.Speedup)
		}
	}
	// At f=0.5 a bigger sequential core pays off; at f=0.999 it should not.
	bestHighF, err := e.Optimize(d, 0.999, b)
	if err != nil {
		t.Fatal(err)
	}
	if bestHighF.R > best.R {
		t.Errorf("optimal r at f=0.999 (%d) should not exceed r at f=0.5 (%d)",
			bestHighF.R, best.R)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	e := NewEvaluator()
	d := Design{Kind: SymCMP}
	// Power budget below one BCE: even r=1 violates the serial bound.
	b := bounds.Budgets{Area: 19, Power: 0.5, Bandwidth: 57.9}
	_, err := e.Optimize(d, 0.9, b)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestExemptBandwidth(t *testing.T) {
	e := NewEvaluator()
	// Tight bandwidth budget strangles a fast U-core...
	b := bounds.Budgets{Area: 100, Power: 50, Bandwidth: 2}
	u := bounds.UCore{Mu: 100, Phi: 1}
	constrained, err := e.Evaluate(Design{Kind: Het, UCore: u}, 0.99, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	exempt, err := e.Evaluate(Design{Kind: Het, UCore: u, ExemptBandwidth: true}, 0.99, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exempt.Speedup <= constrained.Speedup {
		t.Errorf("exempt %g should beat constrained %g", exempt.Speedup, constrained.Speedup)
	}
	if constrained.Limit != bounds.BandwidthLimited {
		t.Errorf("constrained limit = %v", constrained.Limit)
	}
	if exempt.Limit == bounds.BandwidthLimited {
		t.Error("exempt design cannot be bandwidth-limited")
	}
}

func TestEnergyNormFormulas(t *testing.T) {
	e := NewEvaluator()
	b := bounds.Budgets{Area: 100, Power: 100, Bandwidth: 1000}
	// AsymCMP at f=1: parallel ratio exactly 1.
	p, err := e.Evaluate(Design{Kind: AsymCMP}, 1, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.EnergyNorm-1) > 1e-12 {
		t.Errorf("AsymCMP f=1 energy = %g, want 1", p.EnergyNorm)
	}
	// HET at f=1: energy = phi/mu.
	u := bounds.UCore{Mu: 27.4, Phi: 0.79} // ASIC MMM
	p, err = e.Evaluate(Design{Kind: Het, UCore: u}, 1, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.EnergyNorm-0.79/27.4) > 1e-12 {
		t.Errorf("HET f=1 energy = %g, want %g", p.EnergyNorm, 0.79/27.4)
	}
	// f=0: all designs cost power_seq/perf_seq = r^((alpha-1)/2).
	for _, d := range []Design{{Kind: SymCMP}, {Kind: AsymCMP}, {Kind: Het, UCore: u}} {
		p, err := e.Evaluate(d, 0, b, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(4, 0.375)
		if math.Abs(p.EnergyNorm-want) > 1e-12 {
			t.Errorf("%v f=0 energy = %g, want %g", d.Kind, p.EnergyNorm, want)
		}
	}
	// Symmetric parallel phase is less efficient than offload for r > 1.
	sym, _ := e.Evaluate(Design{Kind: SymCMP}, 1, b, 4)
	off, _ := e.Evaluate(Design{Kind: AsymCMP}, 1, b, 4)
	if sym.EnergyNorm <= off.EnergyNorm {
		t.Errorf("sym energy %g should exceed offload %g at r=4, f=1",
			sym.EnergyNorm, off.EnergyNorm)
	}
}

func TestOptimizeEnergyPrefersEfficientPoint(t *testing.T) {
	e := NewEvaluator()
	b := fft40nmBudgets()
	d := Design{Kind: AsymCMP}
	en, err := e.OptimizeEnergy(d, 0.9, b)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := e.Optimize(d, 0.9, b)
	if err != nil {
		t.Fatal(err)
	}
	if en.EnergyNorm > sp.EnergyNorm+1e-12 {
		t.Errorf("energy-optimal %g worse than speedup-optimal %g",
			en.EnergyNorm, sp.EnergyNorm)
	}
	// Energy-optimal sequential core is small (serial power dominates).
	if en.R > sp.R {
		t.Errorf("energy-optimal r=%d should not exceed speedup-optimal r=%d", en.R, sp.R)
	}
}

func TestStandardDesignsFor(t *testing.T) {
	hets := []Design{
		{Kind: Het, Label: "(2) LX760", UCore: bounds.UCore{Mu: 2.02, Phi: 0.29}},
		{Kind: Het, Label: "(6) ASIC", UCore: bounds.UCore{Mu: 489, Phi: 4.96}},
	}
	all := StandardDesignsFor(hets)
	if len(all) != 4 {
		t.Fatalf("len = %d", len(all))
	}
	if all[0].Label != "(0) SymCMP" || all[1].Label != "(1) AsymCMP" {
		t.Error("CMP baselines missing or misordered")
	}
	if all[2].Label != "(2) LX760" || all[3].Label != "(6) ASIC" {
		t.Error("HET ordering broken")
	}
}

// Paper sanity: at f=0.5 HETs barely beat the CMPs; at f=0.999 the gap is
// large (Section 6.1's central observation).
func TestParallelismGatesTheHetAdvantage(t *testing.T) {
	e := NewEvaluator()
	b := fft40nmBudgets()
	fpga := Design{Kind: Het, UCore: bounds.UCore{Mu: 2.02, Phi: 0.29}}
	cmp := Design{Kind: AsymCMP}
	gap := func(f float64) float64 {
		h, err := e.Optimize(fpga, f, b)
		if err != nil {
			t.Fatal(err)
		}
		c, err := e.Optimize(cmp, f, b)
		if err != nil {
			t.Fatal(err)
		}
		return h.Speedup / c.Speedup
	}
	low, high := gap(0.5), gap(0.999)
	if low > 1.5 {
		t.Errorf("f=0.5 HET/CMP gap = %g, should be modest", low)
	}
	if high < 1.5 {
		t.Errorf("f=0.999 HET/CMP gap = %g, should be large", high)
	}
	if high <= low {
		t.Errorf("gap must widen with parallelism: %g -> %g", low, high)
	}
}

// Property: relaxing any budget never reduces the optimized speedup.
func TestPropOptimizeMonotoneInBudgets(t *testing.T) {
	e := NewEvaluator()
	prop := func(a, p, bw, mu, phi, fraw float64) bool {
		b := bounds.Budgets{
			Area:      2 + math.Mod(math.Abs(a), 300),
			Power:     1 + math.Mod(math.Abs(p), 300),
			Bandwidth: 1 + math.Mod(math.Abs(bw), 300),
		}
		d := Design{Kind: Het, UCore: bounds.UCore{
			Mu:  0.1 + math.Mod(math.Abs(mu), 500),
			Phi: 0.05 + math.Mod(math.Abs(phi), 8),
		}}
		f := math.Mod(math.Abs(fraw), 1)
		base, err := e.Optimize(d, f, b)
		if err != nil {
			return true
		}
		for _, rb := range []bounds.Budgets{
			{Area: b.Area * 2, Power: b.Power, Bandwidth: b.Bandwidth},
			{Area: b.Area, Power: b.Power * 2, Bandwidth: b.Bandwidth},
			{Area: b.Area, Power: b.Power, Bandwidth: b.Bandwidth * 2},
		} {
			got, err := e.Optimize(d, f, rb)
			if err != nil || got.Speedup < base.Speedup-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: speedup never exceeds the serial-bounded Amdahl limit.
func TestPropSpeedupRespectsAmdahl(t *testing.T) {
	e := NewEvaluator()
	b := fft40nmBudgets()
	prop := func(mu, phi, fraw float64) bool {
		f := math.Mod(math.Abs(fraw), 0.9999)
		d := Design{Kind: Het, UCore: bounds.UCore{
			Mu:  0.1 + math.Mod(math.Abs(mu), 1000),
			Phi: 0.05 + math.Mod(math.Abs(phi), 8),
		}}
		pt, err := e.Optimize(d, f, b)
		if err != nil {
			return true
		}
		limit := math.Sqrt(float64(pt.R)) / (1 - f)
		return pt.Speedup <= limit*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with alpha = 2.25 (Scenario 6) the optimized speedup at low f
// never beats the alpha = 1.75 baseline (sequential power constrains r).
func TestPropHarsherAlphaNeverHelps(t *testing.T) {
	law225, err := pollack.New(2.25)
	if err != nil {
		t.Fatal(err)
	}
	base := NewEvaluator()
	harsh := Evaluator{Law: law225, MaxR: 16}
	b := fft40nmBudgets()
	d := Design{Kind: AsymCMP}
	for _, f := range []float64{0.1, 0.5, 0.9} {
		pb, err1 := base.Optimize(d, f, b)
		ph, err2 := harsh.Optimize(d, f, b)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ph.Speedup > pb.Speedup+1e-9 {
			t.Errorf("f=%g: alpha=2.25 speedup %g beats alpha=1.75 %g",
				f, ph.Speedup, pb.Speedup)
		}
	}
}
