// Package core is the heart of the reproduction: the extended Hill &
// Marty model of Chung et al. (MICRO 2010) that evaluates single-chip
// designs — symmetric CMPs, asymmetric-offload CMPs, and U-core
// heterogeneous chips — under joint area, power, and bandwidth budgets
// (Table 1), and optimizes the sequential-core size r for each design
// point as Section 6 does (sweeping r up to 16 and reporting the best
// speedup).
//
// All quantities are in BCE-relative units; converting watts, mm², and
// GB/s into those units is the job of package project.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/amdahl"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
)

// ChipKind selects the chip organization.
type ChipKind int

const (
	// SymCMP is the symmetric multicore baseline ("(0) SymCMP").
	SymCMP ChipKind = iota
	// AsymCMP is the asymmetric-offload multicore ("(1) AsymCMP").
	AsymCMP
	// Het is a U-core heterogeneous chip.
	Het
)

// String names the chip kind.
func (k ChipKind) String() string {
	switch k {
	case SymCMP:
		return "SymCMP"
	case AsymCMP:
		return "AsymCMP"
	case Het:
		return "HET"
	default:
		return fmt.Sprintf("ChipKind(%d)", int(k))
	}
}

// Design is one chip alternative to evaluate.
type Design struct {
	Kind  ChipKind
	Label string // display label, e.g. "(6) ASIC"

	// UCore parameters; required when Kind == Het.
	UCore bounds.UCore

	// ExemptBandwidth removes the off-chip bandwidth bound, used for the
	// ASIC MMM core whose blocking (N >= 2048) raises arithmetic intensity
	// beyond the constraint's reach (Section 6).
	ExemptBandwidth bool
}

// Validate reports an error for malformed designs.
func (d Design) Validate() error {
	if d.Kind == Het {
		return d.UCore.Validate()
	}
	if d.Kind != SymCMP && d.Kind != AsymCMP {
		return fmt.Errorf("core: unknown chip kind %d", int(d.Kind))
	}
	return nil
}

// Point is one evaluated design point: the chosen sequential-core size,
// the usable resources, the achieved speedup, and which budget binds.
type Point struct {
	Design  Design
	F       float64 // parallel fraction
	R       int     // sequential core size (BCE)
	N       float64 // usable resources (BCE)
	Speedup float64
	Limit   bounds.Limit

	// EnergyNorm is the task energy normalized to one BCE executing the
	// whole task at unit power — before any technology-node scaling.
	EnergyNorm float64
}

// Evaluator evaluates designs under a sequential-core law.
type Evaluator struct {
	Law pollack.Law
	// MaxR bounds the sequential-core sweep (paper: 16).
	MaxR int
}

// NewEvaluator returns an evaluator with the paper's defaults
// (alpha = 1.75, r swept 1..16).
func NewEvaluator() Evaluator {
	return Evaluator{Law: pollack.Default(), MaxR: 16}
}

// ErrInfeasible is returned when no r in the sweep yields a valid design.
var ErrInfeasible = errors.New("core: no feasible design point")

// Evaluate computes the design's speedup at a fixed r under the budgets.
// It returns an error when r violates the serial bounds or leaves no
// parallel resources while f > 0.
func (e Evaluator) Evaluate(d Design, f float64, b bounds.Budgets, r int) (Point, error) {
	if err := d.Validate(); err != nil {
		return Point{}, err
	}
	if r < 1 {
		return Point{}, errors.New("core: r must be >= 1")
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return Point{}, amdahl.ErrFraction
	}
	eb := b
	if d.ExemptBandwidth {
		eb.Bandwidth = math.Inf(1)
	}
	var (
		bd  bounds.Bound
		err error
	)
	switch d.Kind {
	case SymCMP:
		bd, err = bounds.Symmetric(e.Law, eb, float64(r))
	case AsymCMP:
		bd, err = bounds.AsymmetricOffload(e.Law, eb, float64(r))
	case Het:
		bd, err = bounds.Heterogeneous(e.Law, eb, float64(r), d.UCore)
	}
	if err != nil {
		return Point{}, err
	}
	speedup, err := e.speedup(d, f, bd.N, float64(r))
	if err != nil {
		return Point{}, err
	}
	energy, err := e.energyNorm(d, f, bd.N, float64(r))
	if err != nil {
		return Point{}, err
	}
	return Point{
		Design: d, F: f, R: r, N: bd.N,
		Speedup: speedup, Limit: bd.Limit, EnergyNorm: energy,
	}, nil
}

// OptimizeGrid sweeps r in [1, MaxR] serially and returns the point with
// the highest speedup (ties broken toward smaller r). Infeasible r values
// are skipped; if every r fails, ErrInfeasible wraps the last cause.
//
// This is the brute-force reference: Optimize produces byte-identical
// results by visiting only the analytic candidate set, and the property
// tests use this scan as the oracle. It is also the fallback for
// degenerate inputs, so the two share error behavior exactly.
func (e Evaluator) OptimizeGrid(d Design, f float64, b bounds.Budgets) (Point, error) {
	maxR := e.MaxR
	if maxR < 1 {
		maxR = 16
	}
	var (
		best    Point
		found   bool
		lastErr error
	)
	for r := 1; r <= maxR; r++ {
		p, err := e.Evaluate(d, f, b, r)
		if err != nil {
			lastErr = err
			continue
		}
		if !found || p.Speedup > best.Speedup {
			best, found = p, true
		}
	}
	if !found {
		return Point{}, fmt.Errorf("%w: %v", ErrInfeasible, lastErr)
	}
	return best, nil
}

// OptimizeEnergyGrid sweeps r serially and returns the point with the
// lowest normalized energy among feasible points. Like OptimizeGrid it is
// the oracle and fallback for the analytic OptimizeEnergy.
func (e Evaluator) OptimizeEnergyGrid(d Design, f float64, b bounds.Budgets) (Point, error) {
	maxR := e.MaxR
	if maxR < 1 {
		maxR = 16
	}
	var (
		best    Point
		found   bool
		lastErr error
	)
	for r := 1; r <= maxR; r++ {
		p, err := e.Evaluate(d, f, b, r)
		if err != nil {
			lastErr = err
			continue
		}
		if !found || p.EnergyNorm < best.EnergyNorm {
			best, found = p, true
		}
	}
	if !found {
		return Point{}, fmt.Errorf("%w: %v", ErrInfeasible, lastErr)
	}
	return best, nil
}

// speedup dispatches to the right Amdahl-family formula given usable n.
func (e Evaluator) speedup(d Design, f, n, r float64) (float64, error) {
	if n < r {
		n = r
	}
	switch d.Kind {
	case SymCMP:
		return amdahl.SpeedupSymmetric(f, n, r)
	case AsymCMP:
		if f > 0 && n <= r {
			return 0, amdahl.ErrNoProgram
		}
		return amdahl.SpeedupAsymmetricOffload(f, n, r)
	case Het:
		if f > 0 && n <= r {
			return 0, amdahl.ErrNoProgram
		}
		return amdahl.SpeedupHeterogeneous(f, n, r, d.UCore.Mu)
	default:
		return 0, fmt.Errorf("core: unknown chip kind %d", int(d.Kind))
	}
}

// energyNorm computes task energy relative to one BCE running the whole
// task at unit power, for the design executing with usable resources n
// and sequential core r:
//
//	E = (1-f) · power_seq(r)/perf_seq(r) + f · P_par/Perf_par
//
// For the parallel phase, P_par/Perf_par is r^((alpha-1)/2) for the
// symmetric CMP (big cores are inefficient), exactly 1 for the
// asymmetric-offload CMP (BCEs at BCE efficiency), and phi/mu for
// heterogeneous chips — independent of n, which cancels.
func (e Evaluator) energyNorm(d Design, f, n, r float64) (float64, error) {
	if n < r {
		n = r
	}
	pw, err := e.Law.Power(r)
	if err != nil {
		return 0, err
	}
	pf, err := e.Law.Perf(r)
	if err != nil {
		return 0, err
	}
	serial := (1 - f) * pw / pf
	var parallelRatio float64
	switch d.Kind {
	case SymCMP:
		parallelRatio = math.Pow(r, (e.Law.Alpha()-1)/2)
	case AsymCMP:
		parallelRatio = 1
	case Het:
		parallelRatio = d.UCore.Phi / d.UCore.Mu
	default:
		return 0, fmt.Errorf("core: unknown chip kind %d", int(d.Kind))
	}
	return serial + f*parallelRatio, nil
}

// StandardDesignsFor returns the paper's Figure 6-10 design lineup for a
// set of U-core parameters: "(0) SymCMP", "(1) AsymCMP", then one HET per
// provided U-core in the given order.
func StandardDesignsFor(hets []Design) []Design {
	out := []Design{
		{Kind: SymCMP, Label: "(0) SymCMP"},
		{Kind: AsymCMP, Label: "(1) AsymCMP"},
	}
	out = append(out, hets...)
	return out
}
