package core

import (
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
)

// TestOptimizeZeroAllocs pins the alloc ceiling of the analytic hot
// path: a warm single-point Optimize (and OptimizeEnergy) must not
// allocate for any design kind. The serving layer leans on this — the
// sweep and sensitivity loops call Optimize per cell/draw, so a single
// allocation here multiplies by the grid size. The grid fallback
// (OptimizeGrid) is exempt: it is the testing oracle, not the hot path.
func TestOptimizeZeroAllocs(t *testing.T) {
	ev := NewEvaluator()
	b := bounds.Budgets{Area: 64, Power: 48, Bandwidth: 16}
	designs := map[string]Design{
		"sym":  {Kind: SymCMP},
		"asym": {Kind: AsymCMP},
		"het":  {Kind: Het, UCore: bounds.UCore{Mu: 10, Phi: 0.2}},
	}
	for name, d := range designs {
		d := d
		// Warm once so lazy state (none today, but cheap insurance) is
		// outside the measured runs.
		if _, err := ev.Optimize(d, 0.99, b); err != nil {
			t.Fatalf("%s: warm Optimize: %v", name, err)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := ev.Optimize(d, 0.99, b); err != nil {
				t.Fatalf("%s: Optimize: %v", name, err)
			}
		}); allocs != 0 {
			t.Errorf("%s: Optimize allocates %.0f allocs/op, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := ev.OptimizeEnergy(d, 0.99, b); err != nil {
				t.Fatalf("%s: OptimizeEnergy: %v", name, err)
			}
		}); allocs != 0 {
			t.Errorf("%s: OptimizeEnergy allocates %.0f allocs/op, want 0", name, allocs)
		}
	}
}

// BenchmarkOptimizeAnalytic is the core-level counterpart of the
// serving benchmarks: one warm analytic optimize, no HTTP framing.
func BenchmarkOptimizeAnalytic(b *testing.B) {
	ev := NewEvaluator()
	bud := bounds.Budgets{Area: 64, Power: 48, Bandwidth: 16}
	d := Design{Kind: Het, UCore: bounds.UCore{Mu: 10, Phi: 0.2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Optimize(d, 0.99, bud); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeGridOracle measures the serial grid scan the
// analytic path replaced, for the EXPERIMENTS before/after table.
func BenchmarkOptimizeGridOracle(b *testing.B) {
	ev := NewEvaluator()
	bud := bounds.Budgets{Area: 64, Power: 48, Bandwidth: 16}
	d := Design{Kind: Het, UCore: bounds.UCore{Mu: 10, Phi: 0.2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.OptimizeGrid(d, 0.99, bud); err != nil {
			b.Fatal(err)
		}
	}
}
