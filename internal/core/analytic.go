// analytic.go implements the closed-form optimizer over r (ROADMAP item
// 2): instead of evaluating every r in 1..MaxR, it derives where each
// budget binds (package bounds exports the piece boundaries), places the
// per-piece optima analytically, and scores only those O(pieces)
// candidate core sizes. The winner is then re-evaluated through the exact
// Evaluate, so every Point this package hands out is byte-identical to
// what the serial grid scan (OptimizeGrid, kept as the testing oracle)
// would have produced.
//
// Per-piece structure of the speedup S(r) = 1/((1-f)/perf(r) + f·cost(r)):
//
//   - Symmetric, area piece (n = A): cost = r/(A·√r); S is unimodal with
//     the stationary point at r* = A(1-f)/f.
//   - Symmetric, power piece (n = P·r^(1-α/2)): cost = r^((α-1)/2)/P·...;
//     minimizing (1-f)r^(-1/2) + (f/P)r^((α-1)/2) gives
//     r* = ((1-f)P / (f(α-1)))^(2/α) for α > 1 (monotone otherwise).
//   - Symmetric, bandwidth piece (n = B·√r): cost = f/B is constant, so S
//     increases with r — the optimum sits at the piece's right edge.
//   - Asym/Het, constant piece (n - r = C): S increases with r.
//   - Asym/Het, area piece (n = A): minimizing
//     (1-f)r^(-1/2) + f/(µ(A-r)) gives the root of
//     g(r) = (1-f)·µ·(A-r)² - 2f·r^(3/2), which is strictly decreasing on
//     [1, A] — an interval bisection to width < 1/2 brackets the integer
//     argmax (µ = 1 for the asymmetric-offload chip).
//
// Candidates are scored with the same speedup/energy formulas Evaluate
// uses, and n(r) is recomputed with float-for-float the same expressions
// as package bounds (single binary operations and math calls in the same
// order), so the analytic scan and the grid scan agree bit for bit on
// which r wins, including ties (ascending order, strict comparison, then
// a walk-down over exact-equal plateaus).
//
// Feasibility in r is contiguous: the three serial bounds are monotone in
// r, and for the offload/heterogeneous chips the extra n(r) > r
// requirement has a non-increasing margin min(A - r, C), so the feasible
// set is always [1, rTop] — every candidate inside it scores cleanly.
package core

import (
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
)

// fallbackMaxR mirrors the paper's default sweep ceiling, applied when an
// Evaluator is used with an unset MaxR (matching the grid scan).
const fallbackMaxR = 16

// fmin is math.Min for the value domain of this file: budgets, bound
// curves, and their quotients, which are positive, +Inf, or NaN — never
// a negative zero. On that domain it returns the identical value (and
// identical bits) while avoiding the non-intrinsified math.Min call on
// the per-candidate path.
func fmin(a, b float64) float64 {
	if a < b || math.IsNaN(a) {
		return a
	}
	return b
}

// nOf reproduces the bounded n of package bounds for core size rf,
// including the n >= r clamp, using bitwise the same float expressions as
// Symmetric/AsymmetricOffload/Heterogeneous + Attribute. Keeping every
// step a single binary operation (or math call) in the same order means
// no compiler re-association or FMA contraction can make this value
// differ from the one Evaluate computes. The design and budgets must be
// pre-validated.
func nOf(d Design, law pollack.Law, eb bounds.Budgets, rf float64) float64 {
	var nPow, nBW float64
	switch d.Kind {
	case SymCMP:
		nPow = eb.Power / math.Pow(rf, law.Alpha()/2-1)
		nBW = eb.Bandwidth * math.Sqrt(rf)
	case AsymCMP:
		nPow = eb.Power + rf
		nBW = eb.Bandwidth + rf
	default: // Het; Validate has already excluded unknown kinds.
		nPow = eb.Power/d.UCore.Phi + rf
		nBW = eb.Bandwidth/d.UCore.Mu + rf
	}
	n := fmin(eb.Area, fmin(nPow, nBW))
	if n < rf {
		n = rf
	}
	return n
}

// scoreSpeedup evaluates the same speedup Evaluate would report at r,
// without constructing a Point or any error values. The boolean is false
// exactly when Evaluate would fail at this r for a non-serial reason
// (n degenerate while f > 0, or a non-finite n).
//
// The formulas are float-exact replicas of the amdahl package's (same
// expression shapes, so not even FMA contraction can split them), with
// the input validation amdahl repeats per call hoisted out: argmaxAnalytic
// has already validated d, f, and the budgets, and nOf clamps n >= r, so
// the only reachable failure modes are a non-finite n and the offload
// chips' empty parallel fabric. Called a dozen times per optimize, this
// is the innermost loop of the serving hot path.
func (e Evaluator) scoreSpeedup(d Design, f float64, eb bounds.Budgets, r int) (float64, bool) {
	rf := float64(r)
	n := nOf(d, e.Law, eb, rf)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0, false
	}
	p := math.Sqrt(rf)
	switch d.Kind {
	case SymCMP:
		return 1 / ((1-f)/p + f*rf/(n*p)), true
	case AsymCMP:
		if f == 0 {
			return p, true
		}
		if n <= rf {
			return 0, false
		}
		return 1 / ((1-f)/p + f/(n-rf)), true
	default: // Het; unknown kinds fail d.Validate before scoring.
		if f == 0 {
			return p, true
		}
		if n <= rf {
			return 0, false
		}
		return 1 / ((1-f)/p + f/(d.UCore.Mu*(n-rf))), true
	}
}

// scoreEnergy evaluates the normalized energy at r. Evaluate requires the
// speedup to be computable before it reports energy, so the same gate
// applies here to keep feasible sets identical; the formula replicates
// energyNorm exactly (serial + f·parallelRatio, identical shapes).
func (e Evaluator) scoreEnergy(d Design, f float64, eb bounds.Budgets, r int) (float64, bool) {
	rf := float64(r)
	n := nOf(d, e.Law, eb, rf)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0, false
	}
	if d.Kind != SymCMP && f > 0 && n <= rf {
		return 0, false
	}
	pw, err := e.Law.Power(rf)
	if err != nil {
		return 0, false // unreachable: r >= 1
	}
	serial := (1 - f) * pw / math.Sqrt(rf)
	switch d.Kind {
	case SymCMP:
		return serial + f*math.Pow(rf, (e.Law.Alpha()-1)/2), true
	case AsymCMP:
		parallelRatio := 1.0
		return serial + f*parallelRatio, true
	default: // Het
		return serial + f*(d.UCore.Phi/d.UCore.Mu), true
	}
}

// addCandidates appends the integers floor(x)-1 .. floor(x)+2, clamped to
// [1, rTop], to cand. The ±1 padding absorbs any float error in where a
// piece boundary or stationary point actually falls; NaN contributes
// nothing. cand is caller-stack backed — never grown past its capacity.
func addCandidates(cand []int, rTop int, x float64) []int {
	if math.IsNaN(x) {
		return cand
	}
	base := rTop
	switch {
	case x < 1:
		base = 1
	case x < float64(rTop):
		base = int(x)
	}
	for r := base - 1; r <= base+2; r++ {
		if r >= 1 && r <= rTop {
			cand = append(cand, r)
		}
	}
	return cand
}

// areaPieceGap is the decreasing function whose root is the stationary
// point of the offload/heterogeneous speedup on the area-limited piece:
// g(r) = (1-f)·µ·(A-r)² - 2f·r^(3/2).
func areaPieceGap(area, f, mu, r float64) float64 {
	ar := area - r
	return (1-f)*mu*ar*ar - 2*f*r*math.Sqrt(r)
}

// feasibleTop returns the largest r in [1, maxR] at which Evaluate can
// succeed, or 0 when there is none: the serial cap, further trimmed for
// the offload/heterogeneous chips by the n(r) > r requirement (checked
// with the exact bounded-n expression, so float underflow in C + r is
// honored rather than idealized away). The trim walks at most the
// (narrow) degenerate band, and the feasible set below the returned top
// is contiguous.
func (e Evaluator) feasibleTop(d Design, f float64, eb bounds.Budgets, maxR int) int {
	rTop := bounds.SerialCap(e.Law, eb, maxR)
	if f > 0 && d.Kind != SymCMP {
		for rTop >= 1 {
			rf := float64(rTop)
			if nOf(d, e.Law, eb, rf) > rf {
				break
			}
			rTop--
		}
	}
	return rTop
}

// effectiveBudgets applies the design's bandwidth exemption the same way
// Evaluate does.
func effectiveBudgets(d Design, b bounds.Budgets) bounds.Budgets {
	if d.ExemptBandwidth {
		b.Bandwidth = math.Inf(1)
	}
	return b
}

// offloadMargin is the constant parallel-resource margin C of the
// offload/heterogeneous bound (n - r on the non-area piece).
func offloadMargin(d Design, eb bounds.Budgets) float64 {
	if d.Kind == Het {
		return fmin(eb.Power/d.UCore.Phi, eb.Bandwidth/d.UCore.Mu)
	}
	return fmin(eb.Power, eb.Bandwidth)
}

// needsSpeedupScan reports the regimes where piece analysis cannot pin
// the float argmax: the per-piece monotonicity arguments hold in real
// arithmetic, and rounding (e.g. √r·√r ≠ r by an ulp) makes
// exactly-constant pieces wiggle. The serial Amdahl term (1-f)/√r
// normally dominates those wiggles, so the degenerate cases are f within
// float noise of 1 (no serial anchor — at f = 1 the bandwidth-limited
// symmetric speedup B·√r·√r/r is flat and its ulp wiggle decides the
// argmax) and an offload margin C so small that the relative rounding of
// (C + r) - r rivals the serial increments. There the optimizer scores
// every r in [1, rTop] instead — still error- and allocation-free, just
// not O(pieces).
func needsSpeedupScan(d Design, f float64, eb bounds.Budgets) bool {
	if 1-f <= 1e-6 {
		return true
	}
	return d.Kind != SymCMP && f > 0 && offloadMargin(d, eb) <= 1e-3
}

// needsEnergyScan is the energy-objective analogue: the normalized
// energy is exactly monotone in real arithmetic, but near α = 1 (where
// r^((α-1)/2) is flat to sub-ulp increments), near f = 1, or with an
// extreme heterogeneous φ/µ ratio swamping the r-dependent term, the
// float sequence can wiggle and the endpoint argument no longer picks
// the grid's bit-exact minimum.
func needsEnergyScan(d Design, f float64, law pollack.Law) bool {
	if 1-f <= 1e-6 || math.Abs(law.Alpha()-1) <= 1e-9 {
		return true
	}
	return d.Kind == Het && d.UCore.Phi/d.UCore.Mu >= 1e6
}

// scanSpeedup reproduces the grid argmax over the (contiguous) feasible
// range by scoring every r — the degenerate-regime fallback.
func (e Evaluator) scanSpeedup(d Design, f float64, eb bounds.Budgets, rTop int) (int, bool) {
	bestR := 0
	var bestS float64
	for r := 1; r <= rTop; r++ {
		s, ok := e.scoreSpeedup(d, f, eb, r)
		if !ok {
			continue
		}
		if bestR == 0 || s > bestS {
			bestR, bestS = r, s
		}
	}
	return bestR, bestR != 0
}

// scanEnergy is scanSpeedup for the energy objective (strict <, exactly
// the grid's tie break).
func (e Evaluator) scanEnergy(d Design, f float64, eb bounds.Budgets, rTop int) (int, bool) {
	bestR := 0
	var bestE float64
	for r := 1; r <= rTop; r++ {
		en, ok := e.scoreEnergy(d, f, eb, r)
		if !ok {
			continue
		}
		if bestR == 0 || en < bestE {
			bestR, bestE = r, en
		}
	}
	return bestR, bestR != 0
}

// argmaxAnalytic returns the grid argmax of the speedup over r in
// [1, maxR] without scanning, or ok = false when no r is feasible (or the
// inputs fail validation — the caller's grid fallback reproduces the
// exact error in that case).
func (e Evaluator) argmaxAnalytic(d Design, f float64, b bounds.Budgets, maxR int) (int, bool) {
	if d.Validate() != nil || f < 0 || f > 1 || math.IsNaN(f) {
		return 0, false
	}
	eb := effectiveBudgets(d, b)
	if eb.Validate() != nil {
		return 0, false
	}
	rTop := e.feasibleTop(d, f, eb, maxR)
	if rTop < 1 {
		return 0, false
	}
	if needsSpeedupScan(d, f, eb) {
		return e.scanSpeedup(d, f, eb, rTop)
	}

	var cbuf [24]int
	cand := cbuf[:0]
	cand = append(cand, 1, rTop)

	var bbuf [3]float64
	switch d.Kind {
	case SymCMP:
		for _, x := range bounds.SymmetricBreaks(e.Law, eb, bbuf[:0]) {
			cand = addCandidates(cand, rTop, x)
		}
		if f > 0 && f < 1 {
			// Area-piece stationary point, then the power piece's (only
			// present when bigger cores cost superlinear power).
			cand = addCandidates(cand, rTop, eb.Area*(1-f)/f)
			if alpha := e.Law.Alpha(); alpha > 1 {
				cand = addCandidates(cand, rTop, math.Pow((1-f)*eb.Power/(f*(alpha-1)), 2/alpha))
			}
		}
	case AsymCMP, Het:
		breaks := bbuf[:0]
		mu := 1.0
		if d.Kind == Het {
			mu = d.UCore.Mu
			breaks = bounds.HeterogeneousBreaks(eb, d.UCore, breaks)
		} else {
			breaks = bounds.AsymmetricOffloadBreaks(eb, breaks)
		}
		for _, x := range breaks {
			cand = addCandidates(cand, rTop, x)
		}
		if f > 0 && f < 1 {
			lo, hi := 1.0, fmin(float64(rTop), eb.Area)
			switch {
			case hi <= lo || areaPieceGap(eb.Area, f, mu, lo) <= 0:
				cand = addCandidates(cand, rTop, lo)
			case areaPieceGap(eb.Area, f, mu, hi) >= 0:
				cand = addCandidates(cand, rTop, hi)
			default:
				for hi-lo > 0.5 {
					mid := (lo + hi) / 2
					if areaPieceGap(eb.Area, f, mu, mid) > 0 {
						lo = mid
					} else {
						hi = mid
					}
				}
				cand = addCandidates(cand, rTop, lo)
				cand = addCandidates(cand, rTop, hi)
			}
		}
	}

	// Ascending order + strict > reproduces the grid's smallest-r tie
	// break among the candidates themselves.
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	bestR, prev := 0, 0
	var bestS float64
	for _, r := range cand {
		if r == prev {
			continue
		}
		prev = r
		s, ok := e.scoreSpeedup(d, f, eb, r)
		if !ok {
			continue
		}
		if bestR == 0 || s > bestS {
			bestR, bestS = r, s
		}
	}
	if bestR == 0 {
		return 0, false
	}
	// The grid prefers the smallest r over ALL of [1, rTop]: when the
	// float speedup plateaus across a piece (e.g. f = 1 on a constant
	// piece), walk down while the score stays exactly equal.
	for bestR > 1 {
		s, ok := e.scoreSpeedup(d, f, eb, bestR-1)
		if !ok || s != bestS {
			break
		}
		bestR--
	}
	return bestR, true
}

// argminEnergyAnalytic mirrors argmaxAnalytic for the energy objective.
// The normalized energy (1-f)·r^((α-1)/2) + f·ratio(r) is monotone in r
// for every chip kind (ratio is r^((α-1)/2), 1, or φ/µ), so the integer
// argmin sits at an end of the feasible range; the strict < pick and the
// walk-down reproduce the grid's smallest-r tie break, and a NaN energy
// (possible for degenerate U-cores) falls to r = 1 exactly as the grid's
// failed strict comparisons do.
func (e Evaluator) argminEnergyAnalytic(d Design, f float64, b bounds.Budgets, maxR int) (int, bool) {
	if d.Validate() != nil || f < 0 || f > 1 || math.IsNaN(f) {
		return 0, false
	}
	eb := effectiveBudgets(d, b)
	if eb.Validate() != nil {
		return 0, false
	}
	rTop := e.feasibleTop(d, f, eb, maxR)
	if rTop < 1 {
		return 0, false
	}
	if needsEnergyScan(d, f, e.Law) {
		return e.scanEnergy(d, f, eb, rTop)
	}
	e1, ok1 := e.scoreEnergy(d, f, eb, 1)
	if rTop == 1 {
		if !ok1 {
			return 0, false
		}
		return 1, true
	}
	eT, okT := e.scoreEnergy(d, f, eb, rTop)
	best := 0
	if ok1 {
		best = 1
	}
	if okT && (!ok1 || eT < e1) {
		best = rTop
		for best > 1 {
			s, ok := e.scoreEnergy(d, f, eb, best-1)
			if !ok || s != eT {
				break
			}
			best--
		}
	}
	if best == 0 {
		return 0, false
	}
	return best, true
}

// evaluateWinner builds the Point Evaluate would return for a winning r
// the analytic argmax has already proven feasible, skipping the checks
// that proof makes redundant: d.Validate and the f/r range tests passed
// in the argmax preamble, and the serial bounds are monotone in r, so a
// winner at or below feasibleTop's cap satisfies SerialFeasible. What
// remains is the identical arithmetic in the identical order — the same
// Attribute expressions bounds.Symmetric/AsymmetricOffload/Heterogeneous
// evaluate, then the same speedup and energyNorm calls — so the Point is
// bit-for-bit Evaluate's. Any error (unreachable for a proven winner)
// reports exactly as Evaluate would, keeping Optimize's grid fallback
// semantics unchanged.
func (e Evaluator) evaluateWinner(d Design, f float64, b bounds.Budgets, r int) (Point, error) {
	eb := effectiveBudgets(d, b)
	rf := float64(r)
	var bd bounds.Bound
	switch d.Kind {
	case SymCMP:
		bd = bounds.Attribute(rf, eb.Area, eb.Power/math.Pow(rf, e.Law.Alpha()/2-1), eb.Bandwidth*math.Sqrt(rf))
	case AsymCMP:
		bd = bounds.Attribute(rf, eb.Area, eb.Power+rf, eb.Bandwidth+rf)
	default: // Het; argmax rejected unknown kinds.
		bd = bounds.Attribute(rf, eb.Area, eb.Power/d.UCore.Phi+rf, eb.Bandwidth/d.UCore.Mu+rf)
	}
	speedup, err := e.speedup(d, f, bd.N, rf)
	if err != nil {
		return Point{}, err
	}
	energy, err := e.energyNorm(d, f, bd.N, rf)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Design: d, F: f, R: r, N: bd.N,
		Speedup: speedup, Limit: bd.Limit, EnergyNorm: energy,
	}, nil
}

// Optimize sweeps r in [1, MaxR] and returns the point with the highest
// speedup (ties broken toward smaller r), exactly as the serial grid scan
// does but visiting only the analytically placed candidate core sizes.
// The winner is re-evaluated with Evaluate's arithmetic, so the returned
// Point is byte-identical to OptimizeGrid's. Degenerate inputs
// (validation failures, infeasible budgets) fall back to OptimizeGrid to
// reproduce its exact error, including the ErrInfeasible wrap.
func (e Evaluator) Optimize(d Design, f float64, b bounds.Budgets) (Point, error) {
	maxR := e.MaxR
	if maxR < 1 {
		maxR = fallbackMaxR
	}
	if r, ok := e.argmaxAnalytic(d, f, b, maxR); ok {
		if p, err := e.evaluateWinner(d, f, b, r); err == nil {
			return p, nil
		}
	}
	return e.OptimizeGrid(d, f, b)
}

// OptimizeEnergy sweeps r and returns the point with the lowest
// normalized energy among feasible points (the alternative objective of
// the paper's third question), via the analytic endpoint argument above,
// with the same grid fallback and byte-identical results.
func (e Evaluator) OptimizeEnergy(d Design, f float64, b bounds.Budgets) (Point, error) {
	maxR := e.MaxR
	if maxR < 1 {
		maxR = fallbackMaxR
	}
	if r, ok := e.argminEnergyAnalytic(d, f, b, maxR); ok {
		if p, err := e.evaluateWinner(d, f, b, r); err == nil {
			return p, nil
		}
	}
	return e.OptimizeEnergyGrid(d, f, b)
}
