package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !Close(got[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLinspaceEndpointExact(t *testing.T) {
	got := Linspace(0.1, 0.9, 7)
	if got[0] != 0.1 || got[6] != 0.9 {
		t.Errorf("endpoints = %g, %g; want exact 0.1, 0.9", got[0], got[6])
	}
}

func TestLinspacePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	Linspace(0, 1, 1)
}

func TestLogspace(t *testing.T) {
	got := Logspace(0, 2, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if !Close(got[i], want[i], 1e-12) {
			t.Errorf("Logspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(4, 7)
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PowersOfTwo[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if s := Sum(xs); s != 10 {
		t.Errorf("Sum = %g, want 10", s)
	}
	m, err := Mean(xs)
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %g, %v; want 2.5, nil", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 100})
	if err != nil || !Close(g, 10, 1e-12) {
		t.Errorf("Geomean = %g, %v; want 10", g, err)
	}
	if _, err := Geomean([]float64{1, -1}); err == nil {
		t.Error("Geomean with negative value should error")
	}
	if _, err := Geomean(nil); err != ErrEmpty {
		t.Errorf("Geomean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if m, _ := Min(xs); m != 1 {
		t.Errorf("Min = %g, want 1", m)
	}
	if m, _ := Max(xs); m != 5 {
		t.Errorf("Max = %g, want 5", m)
	}
	if i, _ := ArgMax(xs); i != 4 {
		t.Errorf("ArgMax = %d, want 4", i)
	}
	if _, err := ArgMax(nil); err != ErrEmpty {
		t.Errorf("ArgMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedian(t *testing.T) {
	if m, _ := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("odd Median = %g, want 3", m)
	}
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even Median = %g, want 2.5", m)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestStddev(t *testing.T) {
	sd, err := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !Close(sd, 2, 1e-12) {
		t.Errorf("Stddev = %g, %v; want 2", sd, err)
	}
}

func TestClose(t *testing.T) {
	if !Close(100, 100.4, 0.005) {
		t.Error("100 vs 100.4 should be close at 0.5%")
	}
	if Close(100, 102, 0.005) {
		t.Error("100 vs 102 should not be close at 0.5%")
	}
	if !Close(0, 1e-9, 1e-6) {
		t.Error("near-zero absolute fallback failed")
	}
}

func TestWithinFactor(t *testing.T) {
	if !WithinFactor(10, 19, 2) {
		t.Error("10 and 19 are within 2x")
	}
	if WithinFactor(10, 21, 2) {
		t.Error("10 and 21 are not within 2x")
	}
	if WithinFactor(-1, 5, 2) {
		t.Error("negative inputs must fail")
	}
	// Symmetry.
	if WithinFactor(3, 7, 2) != WithinFactor(7, 3, 2) {
		t.Error("WithinFactor must be symmetric")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Normalize[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	if _, err := Normalize([]float64{0, 1}, 0); err == nil {
		t.Error("zero reference must error")
	}
	if _, err := Normalize([]float64{1}, 5); err == nil {
		t.Error("out-of-range reference must error")
	}
}

func TestRatio(t *testing.T) {
	out, err := Ratio([]float64{2, 9}, []float64{1, 3})
	if err != nil || out[0] != 2 || out[1] != 3 {
		t.Errorf("Ratio = %v, %v", out, err)
	}
	if _, err := Ratio([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Ratio([]float64{1}, []float64{0}); err == nil {
		t.Error("division by zero must error")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestIsMonotoneNonDecreasing(t *testing.T) {
	if !IsMonotoneNonDecreasing([]float64{1, 1, 2}) {
		t.Error("non-strict monotone should pass")
	}
	if IsMonotoneNonDecreasing([]float64{1, 0.5}) {
		t.Error("decreasing should fail")
	}
	if !IsMonotoneNonDecreasing(nil) {
		t.Error("empty is trivially monotone")
	}
}

// Property: geometric mean lies between min and max for positive inputs.
func TestGeomeanBetweenMinMax(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := Geomean(xs)
		if err != nil {
			return false
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Scale then Scale by reciprocal is identity.
func TestScaleRoundTrip(t *testing.T) {
	prop := func(raw []float64, k float64) bool {
		k = math.Abs(k)
		if k < 1e-3 || k > 1e3 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		back := Scale(Scale(raw, k), 1/k)
		for i := range raw {
			if !Close(back[i], raw[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("Q(0) = %g", q)
	}
	if q, _ := Quantile(xs, 1); q != 5 {
		t.Errorf("Q(1) = %g", q)
	}
	if q, _ := Quantile(xs, 0.5); q != 3 {
		t.Errorf("Q(.5) = %g", q)
	}
	// Input unmodified.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("empty: %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("p > 1 must fail")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("NaN p must fail")
	}
}
