// Package stats provides small numeric helpers shared by the heterosim
// model, simulator, and reporting layers: series construction, reductions,
// and tolerant floating-point comparison.
//
// The helpers are deliberately dependency-free (standard library only) and
// operate on plain float64 slices so they compose with every other package
// in the module.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2; Linspace panics otherwise because a malformed grid is a
// programming error, not a runtime condition.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace requires n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Logspace returns n values evenly spaced in log10 between 10^lo and 10^hi.
func Logspace(lo, hi float64, n int) []float64 {
	lin := Linspace(lo, hi, n)
	for i, v := range lin {
		lin[i] = math.Pow(10, v)
	}
	return lin
}

// PowersOfTwo returns [2^lo, 2^(lo+1), ..., 2^hi].
func PowersOfTwo(lo, hi int) []int {
	if hi < lo {
		panic("stats: PowersOfTwo requires hi >= lo")
	}
	out := make([]int, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<uint(e))
	}
	return out
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Geomean returns the geometric mean of xs. All values must be positive.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: Geomean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(xs []float64) (int, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best, nil
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using the
// nearest-rank method on a sorted copy. The input is not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, errors.New("stats: quantile p must be in [0, 1]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(p * float64(len(cp)-1))
	return cp[idx], nil
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Close reports whether a and b agree to within rel relative tolerance
// (falling back to an absolute tolerance of rel near zero).
func Close(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= rel
	}
	return diff <= rel*scale
}

// WithinFactor reports whether a and b are within a multiplicative factor k
// of one another. Both must be positive; k must be >= 1.
func WithinFactor(a, b, k float64) bool {
	if a <= 0 || b <= 0 || k < 1 {
		return false
	}
	r := a / b
	if r < 1 {
		r = 1 / r
	}
	return r <= k
}

// Scale returns a copy of xs with every element multiplied by k.
func Scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

// Normalize returns xs scaled so that the element at index ref equals 1.
func Normalize(xs []float64, ref int) ([]float64, error) {
	if ref < 0 || ref >= len(xs) {
		return nil, errors.New("stats: Normalize reference index out of range")
	}
	if xs[ref] == 0 {
		return nil, errors.New("stats: Normalize reference value is zero")
	}
	return Scale(xs, 1/xs[ref]), nil
}

// Ratio returns element-wise a[i]/b[i]. Slices must be the same length and
// b must contain no zeros.
func Ratio(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, errors.New("stats: Ratio length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		if b[i] == 0 {
			return nil, errors.New("stats: Ratio division by zero")
		}
		out[i] = a[i] / b[i]
	}
	return out, nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// IsMonotoneNonDecreasing reports whether xs never decreases.
func IsMonotoneNonDecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}
