package version

import (
	"runtime"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.Module != Module {
		t.Errorf("Module = %q, want %q", info.Module, Module)
	}
	if info.Version == "" {
		t.Error("Version must never be empty (unstamped builds report dev)")
	}
	if info.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.OS != runtime.GOOS || info.Arch != runtime.GOARCH {
		t.Errorf("OS/Arch = %s/%s, want %s/%s", info.OS, info.Arch, runtime.GOOS, runtime.GOARCH)
	}
}
