// Package version carries the build's identity. The variables are plain
// strings so release builds can stamp them through the linker:
//
//	go build -ldflags "-X github.com/calcm/heterosim/internal/version.Version=v1.2.3"
//
// Unstamped builds report "dev".
package version

import "runtime"

// Module is the import path of the repository's root module.
const Module = "github.com/calcm/heterosim"

// Version is the release identifier, stamped via -ldflags at build time.
var Version = "dev"

// Info is the machine-readable shape served by `heterosimd version` and
// GET /v1/version.
type Info struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`

	// Models lists the model backends this build can serve, in registry
	// order. The version package stays dependency-free, so callers that
	// know the registry (the serving layer, the CLIs) stamp it before
	// encoding; bare Get() leaves it empty.
	Models []string `json:"models,omitempty"`
}

// Get returns the build's identity including the Go runtime that built it.
func Get() Info {
	return Info{
		Module:    Module,
		Version:   Version,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
}
