package engine

import (
	"bytes"
	"encoding/json"
	"math"
)

// DecodeStrict unmarshals JSON rejecting unknown fields, so typos in
// request bodies fail loudly instead of silently using defaults.
func DecodeStrict(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return BadRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return BadRequest("invalid request body: trailing data")
	}
	return nil
}

// CanonicalKey derives the cache/coalescing key for a decoded,
// default-applied request. Identical requests — regardless of JSON field
// order, whitespace, or spelling variants normalized during decoding —
// hash to the same key. Worker-count fields must already be cleared by
// the caller: results are byte-identical at every worker count, so
// worker counts must not fragment the cache.
func CanonicalKey(endpoint string, req any) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return endpoint + "\x00" + string(b), nil
}

// ParseObjective validates the objective a request optimizes: speedup
// (the default) or energy.
func ParseObjective(s string) (string, error) {
	switch s {
	case "", "speedup":
		return "speedup", nil
	case "energy":
		return "energy", nil
	default:
		return "", BadRequest("unknown objective %q (want speedup or energy)", s)
	}
}

// CheckF validates a parallel fraction.
func CheckF(f float64) error {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return BadRequest("f must be in [0, 1], got %v", f)
	}
	return nil
}
