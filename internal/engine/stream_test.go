package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// collectEmitter buffers emitted lines for assertions.
type collectEmitter struct {
	lines   []string
	flushes int
}

func (e *collectEmitter) Emit(line []byte) error { e.lines = append(e.lines, string(line)); return nil }
func (e *collectEmitter) Flush() error           { e.flushes++; return nil }

type streamReq struct {
	N int `json:"n"`
}

func testStream() StreamOp {
	return NewStream("numbers", "/v1/numbers/stream", func(req *streamReq, env Env) (StreamFunc, error) {
		if req.N < 0 {
			return nil, BadRequest("n must be >= 0, got %d", req.N)
		}
		n := req.N
		return func(ctx context.Context, e StreamEmitter) error {
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := e.Emit([]byte(`{"i":` + string(rune('0'+i)) + `}`)); err != nil {
					return err
				}
			}
			return e.Flush()
		}, nil
	})
}

func TestNewStreamIdentity(t *testing.T) {
	op := testStream()
	if op.Name() != "numbers" {
		t.Fatalf("Name() = %q", op.Name())
	}
	if op.Path() != "/v1/numbers/stream" {
		t.Fatalf("Path() = %q", op.Path())
	}
}

func TestPrepareStreamDecodeStrict(t *testing.T) {
	op := testStream()
	if _, err := op.PrepareStream([]byte(`{"n": 1, "typo": true}`), Env{}); err == nil {
		t.Fatal("unknown field accepted")
	} else if e := new(Error); !errors.As(err, &e) || e.Status != 400 {
		t.Fatalf("want 400 *Error, got %v", err)
	}
	if _, err := op.PrepareStream([]byte(`{"n": -1}`), Env{}); err == nil {
		t.Fatal("build validation error lost")
	} else if !strings.Contains(err.Error(), "n must be >= 0") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPrepareStreamEmits(t *testing.T) {
	op := testStream()
	fn, err := op.PrepareStream([]byte(`{"n": 3}`), Env{})
	if err != nil {
		t.Fatal(err)
	}
	e := &collectEmitter{}
	if err := fn(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if len(e.lines) != 3 || e.flushes != 1 {
		t.Fatalf("got %d lines, %d flushes", len(e.lines), e.flushes)
	}
}

func TestStreamHonorsContext(t *testing.T) {
	op := testStream()
	fn, err := op.PrepareStream([]byte(`{"n": 3}`), Env{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fn(ctx, &collectEmitter{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEnvReportModel: Meta capture when present, no-op (no panic)
// when the caller did not ask for metadata.
func TestEnvReportModel(t *testing.T) {
	meta := Meta{}
	Env{Meta: &meta}.ReportModel("sqrtm")
	if meta.Model != "sqrtm" {
		t.Errorf("Meta.Model = %q, want sqrtm", meta.Model)
	}
	Env{}.ReportModel("sqrtm") // nil Meta must be a safe no-op
}
