package engine

import "context"

// This file is the streaming counterpart to Op. A buffered operation
// produces one marshaled response; a streaming operation produces a
// sequence of NDJSON frames — by convention one header line (the
// request's identity), any number of row lines, and one trailer line
// (the reduction) — emitted as the evaluation progresses, so a result
// too large or too slow to buffer still starts flowing immediately.
//
// The split mirrors Op exactly: PrepareStream owns strict decode,
// validation, and canonicalization (so the serving layer's decode span
// and error mapping work unchanged), and the returned closure owns the
// deadline-bounded evaluation. What streams give up is the cache: a
// stream has no single response value to key, so StreamOps never enter
// the result cache or the peer tier — every stream evaluates.

// StreamEmitter receives one operation's NDJSON frames. Emit appends
// the newline itself, so ops hand over bare JSON documents; Flush
// pushes everything buffered so far to the client — the op decides the
// flush granularity (after the header, after each evaluation window)
// because only it knows when a frame boundary is worth a syscall.
// After either method returns an error the stream is dead (the client
// went away); the op must stop and return that error unchanged.
type StreamEmitter interface {
	// Emit appends one NDJSON line (a complete JSON document, no
	// trailing newline).
	Emit(line []byte) error

	// Flush writes all buffered lines to the client immediately.
	Flush() error
}

// StreamFunc evaluates one prepared stream: it emits the header, rows,
// and trailer through e, honoring ctx between frames. Returning nil
// means the trailer is emitted and the stream is complete; returning an
// error after frames are on the wire becomes an in-band error line —
// the transport's status codes are already spent.
type StreamFunc func(ctx context.Context, e StreamEmitter) error

// StreamOp is one streaming operation as the serving stack consumes
// it. It deliberately has no cache key: streams always evaluate.
type StreamOp interface {
	// Name is the operation's short name. A StreamOp may share its name
	// with a buffered Op (the sweep does): the pair then shares one
	// route and one counter, dispatched on the stream query parameter.
	Name() string

	// Path is the HTTP route. Stream-only operations use their own path
	// (e.g. "/v1/frontier/stream"); ops shadowing a buffered Op reuse
	// its path.
	Path() string

	// PrepareStream decodes the body strictly, validates and
	// canonicalizes the request, and returns the evaluation closure.
	// Validation failures surface as *Error before any byte is written,
	// so they still map to plain 400/422 responses.
	PrepareStream(body []byte, env Env) (StreamFunc, error)
}

// StreamBuildFunc is the one endpoint-specific piece of a streaming
// operation: validate req, canonicalize it in place, and return the
// frame-emitting closure.
type StreamBuildFunc[Req any] func(req *Req, env Env) (StreamFunc, error)

// streamOp implements StreamOp for one request type.
type streamOp[Req any] struct {
	name  string
	path  string
	build StreamBuildFunc[Req]
}

// NewStream defines the streaming operation served at path. The
// generic pipeline it inherits mirrors New's: strict decode into Req,
// then build (validate + canonicalize + stream closure).
func NewStream[Req any](name, path string, build StreamBuildFunc[Req]) StreamOp {
	return &streamOp[Req]{name: name, path: path, build: build}
}

func (o *streamOp[Req]) Name() string { return o.name }
func (o *streamOp[Req]) Path() string { return o.path }

func (o *streamOp[Req]) PrepareStream(body []byte, env Env) (StreamFunc, error) {
	var req Req
	if err := DecodeStrict(body, &req); err != nil {
		return nil, err
	}
	return o.build(&req, env)
}
