package engine

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strings"
	"testing"
)

type testReq struct {
	Name    string `json:"name"`
	Workers int    `json:"workers,omitempty"`
}

type testResp struct {
	Greeting string `json:"greeting"`
}

// echoOp canonicalizes Name to lower case, clears Workers, and greets.
func echoOp() Op {
	return New("echo", func(req *testReq, env Env) (func(context.Context) (testResp, error), error) {
		if req.Name == "" {
			return nil, BadRequest("name required")
		}
		req.Name = strings.ToLower(req.Name)
		req.Workers = 0
		return func(ctx context.Context) (testResp, error) {
			if err := ctx.Err(); err != nil {
				return testResp{}, err
			}
			return testResp{Greeting: "hello " + req.Name}, nil
		}, nil
	})
}

func TestOpNameAndPath(t *testing.T) {
	op := echoOp()
	if op.Name() != "echo" || op.Path() != "/v1/echo" {
		t.Fatalf("op identity = (%q, %q), want (echo, /v1/echo)", op.Name(), op.Path())
	}
}

func TestPrepareCanonicalizes(t *testing.T) {
	op := echoOp()
	// Spelling variants and worker counts collapse onto one key.
	bodies := []string{
		`{"name":"Ada"}`,
		`{"name":"ada","workers":7}`,
		`{ "workers": 3, "name": "ADA" }`,
	}
	var firstKey string
	for i, b := range bodies {
		key, eval, err := op.Prepare([]byte(b), Env{})
		if err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		if i == 0 {
			firstKey = key
			if want := "/v1/echo\x00" + `{"name":"ada"}`; key != want {
				t.Fatalf("key = %q, want %q", key, want)
			}
		} else if key != firstKey {
			t.Errorf("body %d: key %q, want %q", i, key, firstKey)
		}
		out, err := eval(context.Background())
		if err != nil || string(out) != `{"greeting":"hello ada"}` {
			t.Errorf("body %d: eval = (%s, %v)", i, out, err)
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	op := echoOp()
	cases := []struct {
		body string
		want int
	}{
		{`{bad`, http.StatusBadRequest},
		{`{"name":"x","typo":1}`, http.StatusBadRequest},
		{`{"name":"x"} trailing`, http.StatusBadRequest},
		{`{"name":""}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		_, _, err := op.Prepare([]byte(c.body), Env{})
		var e *Error
		if !errors.As(err, &e) || e.Status != c.want {
			t.Errorf("body %q: err = %v, want *Error with status %d", c.body, err, c.want)
		}
	}
}

func TestPrepareEvalHonorsContext(t *testing.T) {
	op := echoOp()
	_, eval, err := op.Prepare([]byte(`{"name":"x"}`), Env{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eval(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled eval err = %v, want context.Canceled", err)
	}
}

func TestRegistry(t *testing.T) {
	a := New("a", func(req *testReq, env Env) (func(context.Context) (testResp, error), error) { return nil, nil })
	b := New("b", func(req *testReq, env Env) (func(context.Context) (testResp, error), error) { return nil, nil })
	r := NewRegistry(a, b)
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names() = %v", got)
	}
	if got := r.Ops(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Ops() out of order")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	NewRegistry(a, a)
}

func TestEvalFailure(t *testing.T) {
	if err := EvalFailure(context.Canceled, BadRequest); !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation must pass through, got %v", err)
	}
	if err := EvalFailure(context.DeadlineExceeded, Unprocessable); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline must pass through, got %v", err)
	}
	var e *Error
	if err := EvalFailure(errors.New("boom"), Unprocessable); !errors.As(err, &e) || e.Status != http.StatusUnprocessableEntity {
		t.Errorf("model error must wrap as 422, got %v", err)
	}
}

func TestParseObjective(t *testing.T) {
	for _, c := range []struct {
		in, want string
		ok       bool
	}{
		{"", "speedup", true},
		{"speedup", "speedup", true},
		{"energy", "energy", true},
		{"area", "", false},
	} {
		got, err := ParseObjective(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseObjective(%q) = (%q, %v)", c.in, got, err)
		}
	}
}

func TestCheckF(t *testing.T) {
	for _, f := range []float64{0, 0.5, 1} {
		if err := CheckF(f); err != nil {
			t.Errorf("CheckF(%v) = %v, want nil", f, err)
		}
	}
	for _, f := range []float64{-0.1, 1.1, math.NaN()} {
		if err := CheckF(f); err == nil {
			t.Errorf("CheckF(%v) = nil, want error", f)
		}
	}
}
