package engine

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Error is an error with an HTTP status. Operations return it from
// validation and evaluation so the transport layer can map model errors
// to 4xx instead of a blanket 500. It marshals as the serving API's
// error body, {"error": message}.
type Error struct {
	Status  int    `json:"-"`
	Message string `json:"error"`
}

func (e *Error) Error() string { return e.Message }

// BadRequest builds a 400 Error: the request is malformed.
func BadRequest(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Message: fmt.Sprintf(format, args...)}
}

// Unprocessable builds a 422 Error: the request is well-formed but the
// model cannot produce a feasible answer for it.
func Unprocessable(format string, args ...any) *Error {
	return &Error{Status: http.StatusUnprocessableEntity, Message: fmt.Sprintf(format, args...)}
}

// EvalFailure classifies an evaluation error: context cancellation and
// deadline errors pass through untouched so the transport can map them
// to 503/504, anything else is wrapped with mk (BadRequest or
// Unprocessable).
func EvalFailure(err error, mk func(string, ...any) *Error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return mk("%v", err)
}
