// appendjson.go is the reflection-free response encoder: a response
// type that implements Appender serializes itself with the helpers
// below instead of going through encoding/json's reflection walk. The
// bytes must be identical — the result cache, the coalescer, and the
// golden fixtures all compare serialized responses — so the helpers
// reproduce encoding/json's exact formatting (float form selection,
// exponent cleanup, HTML-escaped strings) and the per-type encoders are
// fuzz-checked against json.Marshal in their own packages.
package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Appender is the opt-in fast-path a response type may implement: the
// operation pipeline calls AppendJSON instead of json.Marshal when
// present. The appended bytes must be exactly what json.Marshal would
// have produced for the same value.
type Appender interface {
	// AppendJSON appends the value's JSON encoding to b and returns the
	// extended slice.
	AppendJSON(b []byte) ([]byte, error)
}

// AppendFloat appends f exactly as encoding/json encodes a float64:
// shortest representation, 'f' form except for very small or very large
// magnitudes which use 'e' form with the leading zero of a short
// exponent stripped (1e-09 -> 1e-9). Non-finite values are errors, as
// they are for json.Marshal.
func AppendFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("engine: unsupported value: %v", f)
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// AppendString appends s as a JSON string exactly as encoding/json
// does (HTML escaping on). The fast path covers plain printable ASCII;
// anything needing escapes is delegated to json.Marshal itself, so the
// bytes agree for every input.
func AppendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			esc, err := json.Marshal(s)
			if err != nil { // unreachable: strings always marshal
				return append(b, `""`...)
			}
			return append(b, esc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// AppendFloats appends a []float64 exactly as encoding/json does: null
// when nil, otherwise a comma-separated array.
func AppendFloats(b []byte, vals []float64) ([]byte, error) {
	if vals == nil {
		return append(b, "null"...), nil
	}
	b = append(b, '[')
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		var err error
		if b, err = AppendFloat(b, v); err != nil {
			return nil, err
		}
	}
	return append(b, ']'), nil
}
