// Package engine is the generic operation layer between the model
// packages and the serving stack. One model operation — optimize, sweep,
// project, scenario, sensitivity, ablation — is described once as an Op:
// a name, a strict JSON request decode, validation that canonicalizes
// the request in place, a canonical cache key derived from the
// canonicalized request, and a ctx-aware evaluation closure producing
// the marshaled response bytes.
//
// The serving pipeline (decode spans, result cache, coalescing,
// admission gate, deadlines, telemetry, access logging, error mapping)
// is written once against the Op interface, so adding an endpoint is one
// registry entry plus its request/response types instead of parallel
// edits to the server, client, metrics, and CLI layers.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
)

// Env carries serving-layer defaults an operation may consult while
// validating a request. It is deliberately small: operations must stay
// pure functions of (request, Env) so responses remain cacheable.
type Env struct {
	// Workers is the evaluation worker-pool default applied when a
	// request does not ask for a specific count. Responses must be
	// byte-identical at every worker count, so Workers never
	// participates in cache keys.
	Workers int

	// Meta, when non-nil, lets an operation report request metadata back
	// to the serving layer during Prepare — today the resolved model
	// backend, stamped into response headers and access logs. It flows
	// serving-layer-outward only and never participates in cache keys.
	Meta *Meta
}

// Meta is per-request metadata an operation reports during Prepare.
type Meta struct {
	// Model is the canonical name of the model backend answering the
	// request (e.g. "chung"), including defaulted requests.
	Model string
}

// ReportModel records the resolved model backend when the serving layer
// asked for metadata; it is a no-op under a nil Meta, so tests and
// embedded callers need not allocate one.
func (e Env) ReportModel(name string) {
	if e.Meta != nil {
		e.Meta.Model = name
	}
}

// Op is one model operation as the serving stack consumes it. Prepare
// turns raw request bytes into the canonical cache/coalescing key and a
// deadline-aware evaluation closure; validation failures surface as
// *Error so the transport can map them to 400/422.
type Op interface {
	// Name is the operation's short name, e.g. "optimize". It labels
	// request counters and latency-histogram series.
	Name() string

	// Path is the HTTP route, "/v1/" + Name().
	Path() string

	// Prepare decodes the body strictly (unknown fields are errors),
	// validates and canonicalizes the request, and returns the canonical
	// key plus the evaluation closure. The closure receives the
	// request's deadline-bounded context and must stop early (returning
	// the context error) when it expires.
	Prepare(body []byte, env Env) (key string, eval func(context.Context) ([]byte, error), err error)
}

// BuildFunc is the one endpoint-specific piece of an operation: it
// validates req, canonicalizes it in place (default fields filled,
// spellings normalized, worker counts cleared) so equivalent requests
// share one cache key, and returns the typed evaluation closure.
type BuildFunc[Req, Resp any] func(req *Req, env Env) (func(context.Context) (Resp, error), error)

// op implements Op for one (Req, Resp) pair.
type op[Req, Resp any] struct {
	name  string
	path  string
	build BuildFunc[Req, Resp]
}

// New defines the operation served at "/v1/" + name. The generic
// pipeline it inherits: strict decode into Req, build (validate +
// canonicalize + typed eval), canonical key over the canonicalized
// request, and JSON marshaling of the typed response.
func New[Req, Resp any](name string, build BuildFunc[Req, Resp]) Op {
	return &op[Req, Resp]{name: name, path: "/v1/" + name, build: build}
}

func (o *op[Req, Resp]) Name() string { return o.name }
func (o *op[Req, Resp]) Path() string { return o.path }

func (o *op[Req, Resp]) Prepare(body []byte, env Env) (string, func(context.Context) ([]byte, error), error) {
	var req Req
	if err := DecodeStrict(body, &req); err != nil {
		return "", nil, err
	}
	eval, err := o.build(&req, env)
	if err != nil {
		return "", nil, err
	}
	key, err := CanonicalKey(o.path, req)
	if err != nil {
		return "", nil, err
	}
	return key, func(ctx context.Context) ([]byte, error) {
		resp, err := eval(ctx)
		if err != nil {
			return nil, err
		}
		// Responses that implement Appender (large, hot ones like the
		// sweep surface) skip the reflection encoder; the bytes are
		// identical by contract, fuzz-checked per type.
		if a, ok := any(resp).(Appender); ok {
			return a.AppendJSON(nil)
		}
		return json.Marshal(resp)
	}, nil
}

// Registry is the fixed set of operations a server exposes. Construct
// with NewRegistry at package init; it is immutable afterwards, so it is
// safe for concurrent use.
type Registry struct {
	ops []Op
}

// NewRegistry builds a registry, panicking on duplicate names —
// duplicates are a programming error caught at init, not a runtime
// condition.
func NewRegistry(ops ...Op) *Registry {
	seen := make(map[string]bool, len(ops))
	for _, o := range ops {
		if seen[o.Name()] {
			panic(fmt.Sprintf("engine: duplicate op %q", o.Name()))
		}
		seen[o.Name()] = true
	}
	return &Registry{ops: ops}
}

// Ops returns the operations in registration order.
func (r *Registry) Ops() []Op { return r.ops }

// Names returns the operation names in registration order.
func (r *Registry) Names() []string {
	names := make([]string, len(r.ops))
	for i, o := range r.ops {
		names[i] = o.Name()
	}
	return names
}
