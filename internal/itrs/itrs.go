// Package itrs models the ITRS 2009 roadmap assumptions used by Chung et
// al. (MICRO 2010) for their scaling projections: Table 6's per-node
// technology parameters and Figure 5's normalized long-term trends for
// package pins, supply voltage, and gate capacitance.
//
// The paper's essential observations, which this package encodes:
//
//   - Transistor density doubles per node (max area in BCE units doubles).
//   - With flat clock frequencies, power per transistor falls only ~4x
//     over fifteen years (1x, 0.75x, 0.5x, 0.36x, 0.25x).
//   - Off-chip bandwidth (pin counts) grows < 1.5x over the same window
//     (1x, 1.1x, 1.3x, 1.3x, 1.4x).
package itrs

import (
	"errors"
	"fmt"
)

// Node is one technology generation of the roadmap.
type Node struct {
	Year int    // first production year assumed by the paper
	Name string // e.g. "40nm"
	Nm   int    // feature size in nanometers

	// MaxAreaBCE is the compute budget in BCE units at the paper's
	// 432 mm^2 core-area budget (576 mm^2 die less 25% non-compute).
	MaxAreaBCE float64

	// RelPowerPerXtor is power per transistor relative to the 2011/40nm
	// node (the "combined technology power reduction" of Figure 5).
	RelPowerPerXtor float64

	// RelBandwidth is off-chip bandwidth relative to 2011/40nm,
	// following pin-count growth.
	RelBandwidth float64

	// Figure 5 constituents, normalized to 2011.
	RelPins    float64
	RelVdd     float64
	RelGateCap float64
}

// Roadmap is an ordered sequence of nodes (earliest first).
type Roadmap struct {
	nodes []Node
}

// Paper budget constants (Table 6 and surrounding text).
const (
	// DieBudgetMM2 is the maximum die size assumed (a Power7-class die).
	DieBudgetMM2 = 576.0
	// NonComputeFraction of the die is reserved for memory controllers,
	// I/O, and other non-compute components.
	NonComputeFraction = 0.25
	// CoreDieBudgetMM2 is the area available to cores and caches.
	CoreDieBudgetMM2 = DieBudgetMM2 * (1 - NonComputeFraction)
	// CorePowerBudgetW is the power budget for core- and cache-only
	// components.
	CorePowerBudgetW = 100.0
	// BaseBandwidthGBs is the optimistic 2011 starting bandwidth
	// (GTX480's 177 GB/s rounded up).
	BaseBandwidthGBs = 180.0
)

// ITRS2009 returns the paper's Table 6 roadmap. The returned value is a
// fresh copy each call; mutating it does not affect other callers.
func ITRS2009() Roadmap {
	mk := func(year int, name string, nm int, area, relPwr, relBW, pins, vdd, cgate float64) Node {
		return Node{
			Year: year, Name: name, Nm: nm,
			MaxAreaBCE:      area,
			RelPowerPerXtor: relPwr,
			RelBandwidth:    relBW,
			RelPins:         pins,
			RelVdd:          vdd,
			RelGateCap:      cgate,
		}
	}
	// RelVdd and RelGateCap are chosen so RelVdd^2 * RelGateCap equals the
	// published combined power reduction (Figure 5's series are consistent
	// by construction: dynamic power ~ C V^2 f with flat f).
	return Roadmap{nodes: []Node{
		mk(2011, "40nm", 40, 19, 1.00, 1.0, 1.00, 1.000, 1.000),
		mk(2013, "32nm", 32, 37, 0.75, 1.1, 1.10, 0.950, 0.831),
		mk(2016, "22nm", 22, 75, 0.50, 1.3, 1.30, 0.870, 0.661),
		mk(2019, "16nm", 16, 149, 0.36, 1.3, 1.30, 0.810, 0.549),
		mk(2022, "11nm", 11, 298, 0.25, 1.4, 1.40, 0.740, 0.457),
	}}
}

// defaultRoadmap is the process-wide shared copy of the paper roadmap.
// Roadmap's node slice is unexported and no method mutates it (Nodes
// returns a defensive copy), so sharing one value is safe.
var defaultRoadmap = ITRS2009()

// Default returns the shared Table 6 roadmap without copying. Use it on
// hot paths that only read; use ITRS2009 when a caller needs a private
// copy to build variations from.
func Default() Roadmap { return defaultRoadmap }

// CustomRoadmap builds a roadmap from caller-supplied nodes (earliest
// first). Callers should Validate the result; validation is not forced
// here so tests can construct deliberately inconsistent roadmaps.
func CustomRoadmap(nodes []Node) Roadmap {
	cp := make([]Node, len(nodes))
	copy(cp, nodes)
	return Roadmap{nodes: cp}
}

// Nodes returns the roadmap's nodes in order (a defensive copy).
func (r Roadmap) Nodes() []Node {
	out := make([]Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of nodes.
func (r Roadmap) Len() int { return len(r.nodes) }

// ByName looks a node up by its name (e.g. "22nm").
func (r Roadmap) ByName(name string) (Node, error) {
	i, err := r.Index(name)
	if err != nil {
		return Node{}, err
	}
	return r.nodes[i], nil
}

// Index returns the position of the named node in roadmap order.
func (r Roadmap) Index(name string) (int, error) {
	for i, n := range r.nodes {
		if n.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("itrs: unknown node %q", name)
}

// ByYear looks a node up by its production year.
func (r Roadmap) ByYear(year int) (Node, error) {
	for _, n := range r.nodes {
		if n.Year == year {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("itrs: no node for year %d", year)
}

// First returns the earliest node.
func (r Roadmap) First() (Node, error) {
	if len(r.nodes) == 0 {
		return Node{}, errors.New("itrs: empty roadmap")
	}
	return r.nodes[0], nil
}

// BandwidthGBs returns the absolute off-chip bandwidth at node n given a
// starting (first-node) bandwidth in GB/s. Table 6's row "Bandwidth
// (GB/s)" is BandwidthGBs with base 180, rounded to the nearest integer.
func (n Node) BandwidthGBs(baseGBs float64) float64 {
	return baseGBs * n.RelBandwidth
}

// CombinedPowerReduction is the Figure 5 product Vdd^2 x Cgate; it should
// equal RelPowerPerXtor by construction.
func (n Node) CombinedPowerReduction() float64 {
	return n.RelVdd * n.RelVdd * n.RelGateCap
}

// Validate checks internal consistency of a roadmap: positive budgets,
// strictly increasing area, non-increasing power per transistor,
// non-decreasing bandwidth, and Figure 5 consistency within 2%.
func (r Roadmap) Validate() error {
	if len(r.nodes) == 0 {
		return errors.New("itrs: empty roadmap")
	}
	for i, n := range r.nodes {
		if n.MaxAreaBCE <= 0 || n.RelPowerPerXtor <= 0 || n.RelBandwidth <= 0 {
			return fmt.Errorf("itrs: node %s has non-positive parameters", n.Name)
		}
		combined := n.CombinedPowerReduction()
		if diff := combined/n.RelPowerPerXtor - 1; diff > 0.02 || diff < -0.02 {
			return fmt.Errorf("itrs: node %s Figure-5 inconsistency: Vdd^2*C = %.3f vs relPwr = %.3f",
				n.Name, combined, n.RelPowerPerXtor)
		}
		if i == 0 {
			continue
		}
		prev := r.nodes[i-1]
		if n.MaxAreaBCE <= prev.MaxAreaBCE {
			return fmt.Errorf("itrs: area must grow: %s -> %s", prev.Name, n.Name)
		}
		if n.RelPowerPerXtor > prev.RelPowerPerXtor {
			return fmt.Errorf("itrs: power per transistor must not grow: %s -> %s", prev.Name, n.Name)
		}
		if n.RelBandwidth < prev.RelBandwidth {
			return fmt.Errorf("itrs: bandwidth must not shrink: %s -> %s", prev.Name, n.Name)
		}
	}
	return nil
}

// NormalizeAreaTo40nm converts a silicon area measured at a given feature
// size (in nm) to its 40 nm-equivalent area, the normalization step of
// Section 5 used before comparing per-mm^2 metrics across devices. The
// paper treats 45 nm and 40 nm as the same generation (Core i7 numbers are
// not rescaled), so nm values of 40 and 45 return the area unchanged;
// other nodes scale by (40/nm)^2.
func NormalizeAreaTo40nm(areaMM2 float64, nm int) (float64, error) {
	if areaMM2 <= 0 {
		return 0, errors.New("itrs: area must be positive")
	}
	if nm <= 0 {
		return 0, errors.New("itrs: feature size must be positive")
	}
	if nm == 40 || nm == 45 {
		return areaMM2, nil
	}
	s := 40.0 / float64(nm)
	return areaMM2 * s * s, nil
}
