package itrs

import (
	"math"
	"testing"
)

func TestRoadmapMatchesTable6(t *testing.T) {
	r := ITRS2009()
	if r.Len() != 5 {
		t.Fatalf("len = %d, want 5", r.Len())
	}
	want := []struct {
		name   string
		year   int
		area   float64
		relPwr float64
		bwGBs  float64
	}{
		{"40nm", 2011, 19, 1.00, 180},
		{"32nm", 2013, 37, 0.75, 198},
		{"22nm", 2016, 75, 0.50, 234},
		{"16nm", 2019, 149, 0.36, 234},
		{"11nm", 2022, 298, 0.25, 252},
	}
	for i, n := range r.Nodes() {
		w := want[i]
		if n.Name != w.name || n.Year != w.year {
			t.Errorf("node %d = %s/%d, want %s/%d", i, n.Name, n.Year, w.name, w.year)
		}
		if n.MaxAreaBCE != w.area {
			t.Errorf("%s area = %g, want %g", n.Name, n.MaxAreaBCE, w.area)
		}
		if n.RelPowerPerXtor != w.relPwr {
			t.Errorf("%s relPwr = %g, want %g", n.Name, n.RelPowerPerXtor, w.relPwr)
		}
		if got := n.BandwidthGBs(BaseBandwidthGBs); math.Abs(got-w.bwGBs) > 1e-9 {
			t.Errorf("%s bandwidth = %g, want %g", n.Name, got, w.bwGBs)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := ITRS2009().Validate(); err != nil {
		t.Fatalf("published roadmap must validate: %v", err)
	}
	if err := (Roadmap{}).Validate(); err == nil {
		t.Error("empty roadmap must fail")
	}
	// Corrupt the area ordering.
	bad := ITRS2009()
	bad.nodes[2].MaxAreaBCE = 1
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing area must fail validation")
	}
	// Figure 5 inconsistency.
	bad2 := ITRS2009()
	bad2.nodes[1].RelVdd = 0.5
	if err := bad2.Validate(); err == nil {
		t.Error("Vdd^2*C != relPwr must fail validation")
	}
}

func TestCombinedPowerReductionConsistent(t *testing.T) {
	for _, n := range ITRS2009().Nodes() {
		got := n.CombinedPowerReduction()
		if math.Abs(got/n.RelPowerPerXtor-1) > 0.02 {
			t.Errorf("%s: combined %g vs relPwr %g", n.Name, got, n.RelPowerPerXtor)
		}
	}
}

func TestLookups(t *testing.T) {
	r := ITRS2009()
	n, err := r.ByName("22nm")
	if err != nil || n.Year != 2016 {
		t.Errorf("ByName(22nm) = %+v, %v", n, err)
	}
	if _, err := r.ByName("7nm"); err == nil {
		t.Error("unknown node must error")
	}
	n, err = r.ByYear(2019)
	if err != nil || n.Name != "16nm" {
		t.Errorf("ByYear(2019) = %+v, %v", n, err)
	}
	if _, err := r.ByYear(1999); err == nil {
		t.Error("unknown year must error")
	}
	first, err := r.First()
	if err != nil || first.Name != "40nm" {
		t.Errorf("First = %+v, %v", first, err)
	}
	if _, err := (Roadmap{}).First(); err == nil {
		t.Error("First on empty roadmap must error")
	}
}

func TestNodesDefensiveCopy(t *testing.T) {
	r := ITRS2009()
	ns := r.Nodes()
	ns[0].MaxAreaBCE = -1
	if got := r.Nodes()[0].MaxAreaBCE; got != 19 {
		t.Errorf("mutating Nodes() result leaked: area = %g", got)
	}
}

func TestAreaDoublesPerNode(t *testing.T) {
	ns := ITRS2009().Nodes()
	for i := 1; i < len(ns); i++ {
		ratio := ns[i].MaxAreaBCE / ns[i-1].MaxAreaBCE
		if ratio < 1.9 || ratio > 2.1 {
			t.Errorf("%s -> %s area ratio = %g, want ~2", ns[i-1].Name, ns[i].Name, ratio)
		}
	}
}

func TestPaperHeadlineClaims(t *testing.T) {
	ns := ITRS2009().Nodes()
	last := ns[len(ns)-1]
	// "power per transistor is expected to drop only by a factor of ~5x
	// over the next fifteen years" — 1/0.25 = 4x in Table 6's horizon.
	if f := 1 / last.RelPowerPerXtor; f < 3.5 || f > 5.5 {
		t.Errorf("power reduction factor = %g, want ~4-5x", f)
	}
	// "pin counts grow < 1.5x over fifteen years".
	if last.RelPins >= 1.5 {
		t.Errorf("pin growth = %g, want < 1.5", last.RelPins)
	}
}

func TestCoreDieBudget(t *testing.T) {
	if CoreDieBudgetMM2 != 432 {
		t.Errorf("core die budget = %g, want 432", CoreDieBudgetMM2)
	}
}

func TestNormalizeAreaTo40nm(t *testing.T) {
	// 45nm and 40nm are treated as the same generation.
	for _, nm := range []int{40, 45} {
		got, err := NormalizeAreaTo40nm(193, nm)
		if err != nil || got != 193 {
			t.Errorf("NormalizeAreaTo40nm(193, %d) = %g, %v; want 193", nm, got, err)
		}
	}
	// GTX285 at 55nm: 338 mm^2 -> ~178.8 mm^2 (reproduces Table 4's
	// 425 GFLOP/s / 2.40 GFLOP/s/mm^2 = 177).
	got, err := NormalizeAreaTo40nm(338, 55)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-178.8) > 0.5 {
		t.Errorf("GTX285 normalized area = %g, want ~178.8", got)
	}
	// 65nm ASIC scales by (40/65)^2.
	got, _ = NormalizeAreaTo40nm(100, 65)
	if math.Abs(got-100*(40.0/65)*(40.0/65)) > 1e-9 {
		t.Errorf("65nm scaling wrong: %g", got)
	}
	if _, err := NormalizeAreaTo40nm(-1, 40); err == nil {
		t.Error("negative area must error")
	}
	if _, err := NormalizeAreaTo40nm(1, 0); err == nil {
		t.Error("zero nm must error")
	}
}
