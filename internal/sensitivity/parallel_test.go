package sensitivity

import (
	"reflect"
	"runtime"
	"testing"
)

// TestMonteCarloParallelStability: the interval must be bit-identical at
// workers = 1, 4, and GOMAXPROCS — per-sample RNG sub-streams make the
// draw sequence independent of scheduling.
func TestMonteCarloParallelStability(t *testing.T) {
	want, err := MonteCarloWorkers(ev, asic, 0.999, fftBudget, 0.2, 400, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		got, err := MonteCarloWorkers(ev, asic, 0.999, fftBudget, 0.2, 400, 42, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: interval %+v differs from serial %+v", workers, got, want)
		}
	}
	// The exported MonteCarlo wrapper (GOMAXPROCS pool) agrees too.
	got, err := MonteCarlo(ev, asic, 0.999, fftBudget, 0.2, 400, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MonteCarlo wrapper %+v differs from serial %+v", got, want)
	}
}

// TestProfileParallelStability: elasticities are identical at every
// worker count.
func TestProfileParallelStability(t *testing.T) {
	want, err := ProfileWorkers(ev, asic, 0.999, fftBudget, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		got, err := ProfileWorkers(ev, asic, 0.999, fftBudget, 0.01, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: profile %v differs from serial %v", workers, got, want)
		}
	}
	// CMP designs (no mu/phi) fan out fewer inputs but stay stable.
	wantCMP, err := ProfileWorkers(ev, cmp, 0.999, fftBudget, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotCMP, err := ProfileWorkers(ev, cmp, 0.999, fftBudget, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCMP, wantCMP) {
		t.Errorf("CMP profile differs: %v vs %v", gotCMP, wantCMP)
	}
}

// TestSampleRNGSubStreamsDecorrelated: adjacent seeds must not replay
// near-identical draw sequences (the reason for the splitmix64 mix).
func TestSampleRNGSubStreamsDecorrelated(t *testing.T) {
	a := sampleRNG(7, 0)
	b := sampleRNG(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.NormFloat64() == b.NormFloat64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("sub-streams 0 and 1 collide on %d of 100 draws", same)
	}
}

// benchMonteCarlo runs the paper-sized 1000-draw study at a fixed worker
// count.
func benchMonteCarlo(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloWorkers(ev, asic, 0.999, fftBudget, 0.2, 1000, 42, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloSerial is the single-worker baseline.
func BenchmarkMonteCarloSerial(b *testing.B) { benchMonteCarlo(b, 1) }

// BenchmarkMonteCarloParallel fans the draws out at GOMAXPROCS.
func BenchmarkMonteCarloParallel(b *testing.B) { benchMonteCarlo(b, 0) }
