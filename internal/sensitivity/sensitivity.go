// Package sensitivity quantifies how errors in the model's inputs
// propagate to its outputs — the paper's own caveat ("the further we
// predict, the higher chance that some predictions will go askew",
// Section 6.3) made quantitative. Two tools:
//
//   - Elasticities: the local log-log derivative of projected speedup
//     with respect to each input (mu, phi, area, power, bandwidth). An
//     elasticity of 1 means a 1% input error moves the answer 1%; an
//     elasticity of 0 means the input is not binding — which doubles as
//     a cross-check of the limiting-factor attribution.
//   - Monte Carlo intervals: speedup ranges under independent
//     multiplicative perturbations of the calibrated parameters.
package sensitivity

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/stats"
)

// Optimizer is the evaluation surface a sensitivity study perturbs:
// optimize a design under one budget triple. core.Evaluator and every
// model backend satisfy it, so elasticities and Monte Carlo intervals
// apply to the whole Amdahl-extension family, not just the baseline.
type Optimizer interface {
	Optimize(d core.Design, f float64, b bounds.Budgets) (core.Point, error)
}

// Input identifies one perturbable model input.
type Input int

const (
	// Mu is the U-core relative performance.
	Mu Input = iota
	// Phi is the U-core relative power.
	Phi
	// Area is the chip area budget.
	Area
	// Power is the chip power budget.
	Power
	// Bandwidth is the off-chip bandwidth budget.
	Bandwidth
)

// Inputs lists every perturbable input.
var Inputs = []Input{Mu, Phi, Area, Power, Bandwidth}

// String names the input.
func (i Input) String() string {
	switch i {
	case Mu:
		return "mu"
	case Phi:
		return "phi"
	case Area:
		return "area"
	case Power:
		return "power"
	case Bandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("Input(%d)", int(i))
	}
}

// perturb returns the design/budgets pair with one input scaled by k.
func perturb(d core.Design, b bounds.Budgets, in Input, k float64) (core.Design, bounds.Budgets) {
	switch in {
	case Mu:
		d.UCore.Mu *= k
	case Phi:
		d.UCore.Phi *= k
	case Area:
		b.Area *= k
	case Power:
		b.Power *= k
	case Bandwidth:
		b.Bandwidth *= k
	}
	return d, b
}

// Elasticity estimates d ln(speedup) / d ln(input) by a central
// difference with relative step h (e.g. 0.01). The design must be
// heterogeneous when perturbing Mu or Phi.
func Elasticity(ev Optimizer, d core.Design, f float64, b bounds.Budgets, in Input, h float64) (float64, error) {
	if h <= 0 || h >= 0.5 {
		return 0, errors.New("sensitivity: step h must be in (0, 0.5)")
	}
	if (in == Mu || in == Phi) && d.Kind != core.Het {
		return 0, errors.New("sensitivity: mu/phi only apply to heterogeneous designs")
	}
	up, bUp := perturb(d, b, in, 1+h)
	dn, bDn := perturb(d, b, in, 1-h)
	pUp, err := ev.Optimize(up, f, bUp)
	if err != nil {
		return 0, err
	}
	pDn, err := ev.Optimize(dn, f, bDn)
	if err != nil {
		return 0, err
	}
	return (math.Log(pUp.Speedup) - math.Log(pDn.Speedup)) /
		(math.Log(1+h) - math.Log(1-h)), nil
}

// Profile computes all applicable elasticities for a design point across
// a GOMAXPROCS worker pool. See ProfileWorkers.
func Profile(ev Optimizer, d core.Design, f float64, b bounds.Budgets, h float64) (map[Input]float64, error) {
	return ProfileWorkers(ev, d, f, b, h, 0)
}

// ProfileWorkers fans the applicable inputs out over workers goroutines
// (<= 0 means GOMAXPROCS). Each elasticity is an independent pair of
// optimizations, so the result is identical at every worker count.
func ProfileWorkers(ev Optimizer, d core.Design, f float64, b bounds.Budgets, h float64, workers int) (map[Input]float64, error) {
	return ProfileCtx(context.Background(), ev, d, f, b, h, workers)
}

// ProfileCtx is ProfileWorkers bounded by a context: cancellation or an
// expired deadline stops the fan-out early and surfaces ctx.Err(), which
// is how the serving layer turns a request deadline into a 504.
func ProfileCtx(ctx context.Context, ev Optimizer, d core.Design, f float64, b bounds.Budgets, h float64, workers int) (map[Input]float64, error) {
	applicable := make([]Input, 0, len(Inputs))
	for _, in := range Inputs {
		if (in == Mu || in == Phi) && d.Kind != core.Het {
			continue
		}
		applicable = append(applicable, in)
	}
	es, err := par.Map(ctx, len(applicable), workers,
		func(_ context.Context, i int) (float64, error) {
			e, err := Elasticity(ev, d, f, b, applicable[i], h)
			if err != nil {
				return 0, fmt.Errorf("sensitivity: %v: %w", applicable[i], err)
			}
			return e, nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[Input]float64, len(applicable))
	for i, in := range applicable {
		out[in] = es[i]
	}
	return out, nil
}

// Interval is a Monte Carlo speedup range.
type Interval struct {
	Nominal float64
	P05     float64 // 5th percentile
	Median  float64
	P95     float64 // 95th percentile
	Samples int
}

// MonteCarlo evaluates the design under `samples` random perturbations
// across a GOMAXPROCS worker pool. See MonteCarloWorkers.
func MonteCarlo(ev Optimizer, d core.Design, f float64, b bounds.Budgets, sigma float64, samples int, seed int64) (Interval, error) {
	return MonteCarloWorkers(ev, d, f, b, sigma, samples, seed, 0)
}

// normKey identifies one deterministic matrix of standard-normal draws:
// sample i consumes row i (inputs values, in Inputs order). Sigma is
// deliberately absent — draws are N(0,1) and scaled at use — so studies
// that vary sigma share one matrix.
type normKey struct {
	seed    int64
	samples int
	inputs  int
}

// maxNormCacheFloats bounds the normal-draw cache (2^21 float64s is
// 16 MiB). Seeding Go's lagged-Fibonacci source costs ~1800 arithmetic
// steps per sample — with one source per sample for worker-count
// determinism, that seeding dominated a cold Monte Carlo request by 5x
// over the actual optimizations. The draws depend only on (seed,
// samples, inputs), and the serving layer defaults seed to 1, so
// caching them removes the cost from every request after the first
// while leaving the interval byte-identical: hit or miss, the same
// N(0,1) values feed the same perturbation arithmetic.
const maxNormCacheFloats = 1 << 21

var (
	normMu     sync.Mutex
	normCache  = map[normKey][]float64{}
	normFloats int
)

// cachedNormals returns the shared (read-only) draw matrix for key.
func cachedNormals(key normKey) ([]float64, bool) {
	normMu.Lock()
	defer normMu.Unlock()
	m, ok := normCache[key]
	return m, ok
}

// storeNormals publishes a completed draw matrix, evicting arbitrary
// entries if needed; matrices too large for the whole cache are simply
// not kept.
func storeNormals(key normKey, m []float64) {
	if len(m) > maxNormCacheFloats {
		return
	}
	normMu.Lock()
	defer normMu.Unlock()
	if _, ok := normCache[key]; ok {
		return // a concurrent miss computed the identical matrix
	}
	for k := range normCache {
		if normFloats+len(m) <= maxNormCacheFloats {
			break
		}
		normFloats -= len(normCache[k])
		delete(normCache, k)
	}
	normCache[key] = m
	normFloats += len(m)
}

// splitmix64 is the SplitMix64 finalizer, used to derive decorrelated
// per-sample RNG seeds from (seed, sample index). Adjacent raw seeds feed
// Go's additive-lagged-Fibonacci source nearly identical streams; the
// finalizer scatters them across the seed space.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sampleRNG returns the deterministic sub-stream for sample i.
func sampleRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed) + uint64(i)))))
}

// MonteCarloWorkers evaluates the design under `samples` random
// perturbations: every input independently scaled by exp(sigma x N(0,1))
// (log-normal, so a sigma of 0.2 is roughly +-20%). Infeasible draws are
// skipped but counted against the sample budget; at least half must
// succeed.
//
// Samples fan out over workers goroutines (<= 0 means GOMAXPROCS). Each
// sample draws from its own deterministic RNG sub-stream derived from
// (seed, sample index), and the surviving speedups are assembled in
// sample order, so the interval is identical at every worker count.
func MonteCarloWorkers(ev Optimizer, d core.Design, f float64, b bounds.Budgets, sigma float64, samples int, seed int64, workers int) (Interval, error) {
	return MonteCarloCtx(context.Background(), ev, d, f, b, sigma, samples, seed, workers)
}

// MonteCarloCtx is MonteCarloWorkers bounded by a context: cancellation
// or an expired deadline stops the sample fan-out early and surfaces
// ctx.Err() so callers (the serving layer) can distinguish a timeout
// from an infeasible study.
func MonteCarloCtx(ctx context.Context, ev Optimizer, d core.Design, f float64, b bounds.Budgets, sigma float64, samples int, seed int64, workers int) (Interval, error) {
	if sigma <= 0 || samples < 10 {
		return Interval{}, errors.New("sensitivity: need sigma > 0 and samples >= 10")
	}
	nominal, err := ev.Optimize(d, f, b)
	if err != nil {
		return Interval{}, err
	}
	type draw struct {
		speedup  float64
		feasible bool
	}
	inputs := len(Inputs)
	if d.Kind != core.Het {
		inputs -= 2 // Mu and Phi draw nothing
	}
	key := normKey{seed: seed, samples: samples, inputs: inputs}
	norms, hit := cachedNormals(key)
	if !hit {
		norms = make([]float64, samples*inputs)
	}
	draws, err := par.Map(ctx, samples, workers,
		func(_ context.Context, i int) (draw, error) {
			row := norms[i*inputs : (i+1)*inputs]
			if !hit {
				// Each sample owns its own deterministic RNG sub-stream
				// (and its own row, so the fill is race-free): the matrix
				// is the same at every worker count, and a cache hit
				// replays exactly the values a miss would generate.
				rng := sampleRNG(seed, i)
				for j := range row {
					row[j] = rng.NormFloat64()
				}
			}
			dd, bb := d, b
			next := 0
			for _, in := range Inputs {
				if (in == Mu || in == Phi) && d.Kind != core.Het {
					continue
				}
				k := math.Exp(sigma * row[next])
				next++
				dd, bb = perturb(dd, bb, in, k)
			}
			p, err := ev.Optimize(dd, f, bb)
			if err != nil {
				return draw{}, nil // infeasible draws are skipped, not fatal
			}
			return draw{speedup: p.Speedup, feasible: true}, nil
		})
	if err != nil {
		return Interval{}, err
	}
	if !hit {
		storeNormals(key, norms)
	}
	vals := make([]float64, 0, samples)
	for _, dr := range draws {
		if dr.feasible {
			vals = append(vals, dr.speedup)
		}
	}
	if len(vals) < samples/2 {
		return Interval{}, fmt.Errorf("sensitivity: only %d of %d draws feasible", len(vals), samples)
	}
	q := func(p float64) float64 {
		v, err := stats.Quantile(vals, p)
		if err != nil {
			return math.NaN() // unreachable: vals is non-empty
		}
		return v
	}
	return Interval{
		Nominal: nominal.Speedup,
		P05:     q(0.05),
		Median:  q(0.50),
		P95:     q(0.95),
		Samples: len(vals),
	}, nil
}
