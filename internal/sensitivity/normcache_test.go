package sensitivity

import (
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
)

// TestMonteCarloNormCacheReplay checks that a cache hit replays exactly
// the interval a cache miss computes: the first call on a fresh key
// generates and publishes the draw matrix, the second consumes it, and
// both must agree bit for bit (the serving layer's responses are
// compared as bytes).
func TestMonteCarloNormCacheReplay(t *testing.T) {
	ev := core.NewEvaluator()
	b := bounds.Budgets{Area: 64, Power: 48, Bandwidth: 16}
	d := core.Design{Kind: core.Het, UCore: bounds.UCore{Mu: 10, Phi: 0.2}}
	// An uncommon seed keeps this test's key disjoint from the other
	// tests in the package, so the first call is a genuine miss.
	const seed = 987654321
	miss, err := MonteCarlo(ev, d, 0.99, b, 0.2, 200, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cachedNormals(normKey{seed: seed, samples: 200, inputs: 5}); !ok {
		t.Fatal("miss did not publish the draw matrix")
	}
	hit, err := MonteCarlo(ev, d, 0.99, b, 0.2, 200, seed)
	if err != nil {
		t.Fatal(err)
	}
	if miss != hit {
		t.Fatalf("cache hit changed the interval:\nmiss: %+v\nhit:  %+v", miss, hit)
	}
	// Same draws, different sigma: the matrix is sigma-independent, so
	// this hits too, and must still differ from the sigma=0.2 interval.
	wide, err := MonteCarlo(ev, d, 0.99, b, 0.5, 200, seed)
	if err != nil {
		t.Fatal(err)
	}
	if wide == hit {
		t.Fatal("sigma=0.5 interval identical to sigma=0.2: draws not rescaled")
	}
	// A symmetric design consumes 3 draws per sample, not 5: its matrix
	// must live under its own key rather than reusing the het one.
	if _, err := MonteCarlo(ev, core.Design{Kind: core.SymCMP}, 0.99, b, 0.2, 200, seed); err != nil {
		t.Fatal(err)
	}
	if _, ok := cachedNormals(normKey{seed: seed, samples: 200, inputs: 3}); !ok {
		t.Fatal("symmetric design did not publish its own 3-input matrix")
	}
}

// TestNormCacheBounded checks the eviction path: publishing more than
// maxNormCacheFloats worth of matrices keeps the total in bounds, and
// an oversized matrix is rejected outright.
func TestNormCacheBounded(t *testing.T) {
	const rows = maxNormCacheFloats / 8
	for s := int64(0); s < 12; s++ {
		storeNormals(normKey{seed: 1000 + s, samples: rows, inputs: 1}, make([]float64, rows))
	}
	normMu.Lock()
	total := normFloats
	normMu.Unlock()
	if total > maxNormCacheFloats {
		t.Fatalf("cache holds %d floats, cap %d", total, maxNormCacheFloats)
	}
	big := normKey{seed: -1, samples: maxNormCacheFloats + 1, inputs: 1}
	storeNormals(big, make([]float64, maxNormCacheFloats+1))
	if _, ok := cachedNormals(big); ok {
		t.Fatal("oversized matrix was cached")
	}
}
