package sensitivity

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
)

var (
	ev        = core.NewEvaluator()
	fftBudget = bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	asic      = core.Design{Kind: core.Het, Label: "ASIC", UCore: bounds.UCore{Mu: 489, Phi: 4.96}}
	fpga      = core.Design{Kind: core.Het, Label: "FPGA", UCore: bounds.UCore{Mu: 2.02, Phi: 0.29}}
	cmp       = core.Design{Kind: core.AsymCMP, Label: "CMP"}
)

func TestInputString(t *testing.T) {
	names := map[Input]string{Mu: "mu", Phi: "phi", Area: "area", Power: "power", Bandwidth: "bandwidth"}
	for in, want := range names {
		if in.String() != want {
			t.Errorf("%d.String() = %q", int(in), in.String())
		}
	}
	if Input(9).String() == "" {
		t.Error("unknown input should print")
	}
}

// The ASIC on FFT is bandwidth-limited: its speedup should be elastic in
// bandwidth (~1) and inelastic in mu, area, and power (~0) — the
// elasticities must agree with the limiting-factor attribution.
func TestElasticitiesMatchLimitingFactor(t *testing.T) {
	prof, err := Profile(ev, asic, 0.999, fftBudget, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if prof[Bandwidth] < 0.7 {
		t.Errorf("bandwidth elasticity = %g, want ~1 for a bandwidth-limited design", prof[Bandwidth])
	}
	for _, in := range []Input{Mu, Area, Power} {
		if math.Abs(prof[in]) > 0.15 {
			t.Errorf("%v elasticity = %g, want ~0 (not binding)", in, prof[in])
		}
	}
	// The CMP at the same point is power-limited.
	profCMP, err := Profile(ev, cmp, 0.999, fftBudget, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if profCMP[Power] < 0.5 {
		t.Errorf("CMP power elasticity = %g, want large", profCMP[Power])
	}
	if math.Abs(profCMP[Bandwidth]) > 0.15 {
		t.Errorf("CMP bandwidth elasticity = %g, want ~0", profCMP[Bandwidth])
	}
	// CMP profiles skip mu/phi.
	if _, ok := profCMP[Mu]; ok {
		t.Error("CMP profile should not contain mu")
	}
}

// The area-limited FPGA at 40nm responds to area, not power.
func TestAreaLimitedFPGA(t *testing.T) {
	prof, err := Profile(ev, fpga, 0.999, fftBudget, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if prof[Area] < 0.5 {
		t.Errorf("area elasticity = %g, want large for area-limited FPGA", prof[Area])
	}
	if prof[Phi] < -0.2 {
		// Phi isn't binding (power bound slack), so lowering it buys ~0.
		t.Errorf("phi elasticity = %g, want ~0", prof[Phi])
	}
}

func TestElasticityValidation(t *testing.T) {
	if _, err := Elasticity(ev, asic, 0.9, fftBudget, Mu, 0); err == nil {
		t.Error("h=0 must fail")
	}
	if _, err := Elasticity(ev, asic, 0.9, fftBudget, Mu, 0.7); err == nil {
		t.Error("h too large must fail")
	}
	if _, err := Elasticity(ev, cmp, 0.9, fftBudget, Mu, 0.01); err == nil {
		t.Error("mu on a CMP must fail")
	}
}

func TestMonteCarloIntervals(t *testing.T) {
	iv, err := MonteCarlo(ev, asic, 0.999, fftBudget, 0.2, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Samples < 250 {
		t.Fatalf("too few feasible samples: %d", iv.Samples)
	}
	if !(iv.P05 <= iv.Median && iv.Median <= iv.P95) {
		t.Errorf("quantiles disordered: %+v", iv)
	}
	// The nominal point sits inside the 90% interval.
	if iv.Nominal < iv.P05 || iv.Nominal > iv.P95 {
		t.Errorf("nominal %g outside [%g, %g]", iv.Nominal, iv.P05, iv.P95)
	}
	// A 20% input uncertainty cannot produce a degenerate interval.
	if iv.P95/iv.P05 < 1.05 {
		t.Errorf("interval suspiciously tight: %+v", iv)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	a, err := MonteCarlo(ev, fpga, 0.99, fftBudget, 0.1, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(ev, fpga, 0.99, fftBudget, 0.1, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed must reproduce the interval")
	}
	c, err := MonteCarlo(ev, fpga, 0.99, fftBudget, 0.1, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(ev, asic, 0.9, fftBudget, 0, 100, 1); err == nil {
		t.Error("sigma=0 must fail")
	}
	if _, err := MonteCarlo(ev, asic, 0.9, fftBudget, 0.1, 5, 1); err == nil {
		t.Error("too few samples must fail")
	}
	// Infeasible nominal point.
	poor := bounds.Budgets{Area: 19, Power: 0.5, Bandwidth: 57.9}
	if _, err := MonteCarlo(ev, asic, 0.9, poor, 0.1, 100, 1); err == nil {
		t.Error("infeasible nominal must fail")
	}
}

// Bigger uncertainty widens the interval.
func TestMonteCarloWidensWithSigma(t *testing.T) {
	narrow, err := MonteCarlo(ev, asic, 0.99, fftBudget, 0.05, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MonteCarlo(ev, asic, 0.99, fftBudget, 0.3, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wide.P95/wide.P05 <= narrow.P95/narrow.P05 {
		t.Errorf("sigma=0.3 interval (%g) should be wider than sigma=0.05 (%g)",
			wide.P95/wide.P05, narrow.P95/narrow.P05)
	}
}
