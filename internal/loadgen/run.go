package loadgen

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"github.com/calcm/heterosim/internal/client"
	"github.com/calcm/heterosim/internal/server"
)

// RunConfig aims a scenario at a target daemon.
type RunConfig struct {
	// BaseURL is the daemon under load, e.g. "http://127.0.0.1:8080".
	BaseURL string

	// BaseURLs, when set, lists every member of a cluster under load;
	// BaseURL must then be empty. The driving client is pick-first with
	// failover (see internal/client), so a mid-run peer death shifts
	// traffic instead of failing the scenario.
	BaseURLs []string

	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client

	// Clock drives scheduling and every recorded timestamp (default
	// WallClock). Inject a LogicalClock for deterministic output.
	Clock Clock

	// Recorders observe every completed request; the Summary
	// accumulator is always attached in addition.
	Recorders []Recorder

	// ServerName labels the Summary with the server configuration the
	// run targeted (matrix runs set it; single runs may leave it "").
	ServerName string
}

// sampleSlot carries the in-flight request's attempt metadata from the
// client's OnAttempt observer back to the issuing goroutine. Attempts
// within one call run sequentially on the caller's goroutine, so the
// slot needs no lock.
type sampleSlot struct {
	attempts int
	status   int
	cache    string
	fault    string
}

type sampleSlotKey struct{}

// classify reduces a client error to the sample's error class.
func classify(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusGatewayTimeout {
			return "deadline"
		}
		var re *client.RetryError
		if errors.As(err, &re) {
			return "retry"
		}
		return "api"
	}
	var te *client.TransportError
	if errors.As(err, &te) {
		return "transport"
	}
	return "other"
}

// Run executes one scenario against cfg's target and returns its
// Summary. The scenario is validated (and defaulted) first; the request
// stream is a pure function of its seed. Cache ratios come from the
// target's /metrics counters, sampled before and after the run —
// meaningful when the harness owns the daemon, best-effort on a shared
// one.
func Run(ctx context.Context, sc Scenario, cfg RunConfig) (Summary, error) {
	if err := sc.Validate(); err != nil {
		return Summary{}, err
	}
	if cfg.BaseURL == "" && len(cfg.BaseURLs) == 0 {
		return Summary{}, errors.New("loadgen: RunConfig.BaseURL (or BaseURLs) required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = WallClock{}
	}
	cli, err := client.New(client.Config{
		BaseURL:     cfg.BaseURL,
		BaseURLs:    cfg.BaseURLs,
		HTTPClient:  cfg.HTTPClient,
		MaxAttempts: sc.Retries,
		// Snappy backoff: the harness measures the server's behavior,
		// not the client's patience.
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Seed:        sc.Seed,
		OnAttempt: func(ctx context.Context, a client.Attempt) {
			slot, _ := ctx.Value(sampleSlotKey{}).(*sampleSlot)
			if slot == nil {
				return
			}
			slot.attempts = a.N
			slot.status = a.Status
			slot.cache = a.Cache
			slot.fault = a.Fault
		},
	})
	if err != nil {
		return Summary{}, err
	}

	before, beforeErr := cli.Metrics(ctx)

	acc := &summarizer{}
	recorders := append([]Recorder{Recorder(acc)}, cfg.Recorders...)
	gen := newGenerator(&sc)
	start := clock.Now()
	bound := time.Duration(sc.Duration)
	expired := func() bool {
		return bound > 0 && clock.Now().Sub(start) >= bound
	}

	doOne := func(r genRequest) {
		slot := &sampleSlot{}
		reqCtx := context.WithValue(ctx, sampleSlotKey{}, slot)
		cancel := context.CancelFunc(func() {})
		if r.Deadline > 0 {
			reqCtx, cancel = context.WithTimeout(reqCtx, r.Deadline)
		}
		t0 := clock.Now()
		err := issue(reqCtx, cli, r.Endpoint, r.Key, sc.Samples)
		lat := clock.Now().Sub(t0)
		cancel()
		s := Sample{
			Scenario:   sc.Name,
			Seq:        r.Seq,
			OffsetUS:   t0.Sub(start).Microseconds(),
			Endpoint:   r.Endpoint,
			Key:        r.Key,
			DeadlineUS: r.Deadline.Microseconds(),
			Status:     slot.status,
			Cache:      slot.cache,
			Fault:      slot.fault,
			Attempts:   slot.attempts,
			LatencyUS:  lat.Microseconds(),
			Err:        classify(err),
		}
		if s.Status == 0 {
			var ae *client.APIError
			if errors.As(err, &ae) {
				s.Status = ae.Status
			}
		}
		for _, rec := range recorders {
			rec.Record(s)
		}
	}

	var wg sync.WaitGroup
	switch sc.Arrival.Process {
	case "closed":
		for w := 0; w < sc.Arrival.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil || expired() {
						return
					}
					r, ok := gen.next()
					if !ok {
						return
					}
					doOne(r)
				}
			}()
		}
	case "poisson":
		// Open loop: the dispatcher paces arrivals off the seeded
		// interarrival stream regardless of server latency; the
		// outstanding-request bound converts pathological overload into
		// schedule slip instead of unbounded goroutine growth.
		sem := make(chan struct{}, sc.Arrival.MaxOutstanding)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil || expired() {
					return
				}
				r, ok := gen.next()
				if !ok {
					return
				}
				if clock.Sleep(ctx, r.Gap) != nil {
					return
				}
				sem <- struct{}{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					doOne(r)
				}()
			}
		}()
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)

	var cache CacheRatios
	if after, err := cli.Metrics(ctx); err == nil && beforeErr == nil {
		cache = ratios(
			after.Cache.Hits-before.Cache.Hits,
			after.Cache.Misses-before.Cache.Misses,
			after.Cache.Coalesced-before.Cache.Coalesced,
			after.Cache.StaleServed-before.Cache.StaleServed,
		)
	}

	sum := acc.summary(&sc, elapsed.Microseconds(), cache)
	sum.Server = cfg.ServerName
	for _, rec := range cfg.Recorders {
		if err := rec.Flush(); err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// Metrics re-exports the server metrics type the harness scrapes, so
// CLI callers can assert on counters without importing internal/server.
type Metrics = server.Metrics
