package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/calcm/heterosim/internal/client"
	"github.com/calcm/heterosim/internal/faultinject"
	"github.com/calcm/heterosim/internal/servecache"
	"github.com/calcm/heterosim/internal/server"
)

// ServerConfig is one serving-layer configuration under test: the knobs
// that govern capacity. Zero fields take internal/server's production
// defaults, so the zero value (plus a name) is the baseline deployment.
type ServerConfig struct {
	Name           string   `json:"name"`
	Workers        int      `json:"workers,omitempty"`
	CacheEntries   int      `json:"cacheEntries,omitempty"`
	MaxInflight    int      `json:"maxInflight,omitempty"`
	MaxQueue       int      `json:"maxQueue,omitempty"`
	QueueTimeout   Duration `json:"queueTimeout,omitempty"`
	RequestTimeout Duration `json:"requestTimeout,omitempty"`
}

// Matrix crosses traffic scenarios with server configurations: every
// (scenario, server) cell runs against a fresh in-process daemon, so
// cells never contaminate each other's caches or counters.
type Matrix struct {
	Scenarios []Scenario     `json:"scenarios"`
	Servers   []ServerConfig `json:"servers"`
}

// MatrixOptions parameterize RunMatrix.
type MatrixOptions struct {
	// Clock drives every cell (default WallClock).
	Clock Clock

	// CSVDir, when set, receives one per-request CSV per cell, named
	// <scenario>__<server>.csv.
	CSVDir string

	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// buildServerConfig maps one harness ServerConfig (plus the scenario's
// fault spec) to the serving layer's config.
func buildServerConfig(sc Scenario, cfg ServerConfig) (server.Config, error) {
	srvCfg := server.Config{
		Addr:           "127.0.0.1:0",
		Workers:        cfg.Workers,
		CacheEntries:   cfg.CacheEntries,
		MaxInflight:    cfg.MaxInflight,
		MaxQueue:       cfg.MaxQueue,
		QueueTimeout:   time.Duration(cfg.QueueTimeout),
		RequestTimeout: time.Duration(cfg.RequestTimeout),
	}
	if sc.Faults != "" {
		fcfg, err := faultinject.Parse(sc.Faults)
		if err != nil {
			return server.Config{}, err
		}
		inj, err := faultinject.New(fcfg)
		if err != nil {
			return server.Config{}, err
		}
		srvCfg.Middleware = inj.Wrap
	}
	return srvCfg, nil
}

// StartInProcess boots a fresh daemon for one server configuration on
// an ephemeral localhost port, splicing in the scenario's fault
// injector when one is specified. stop shuts it down and blocks until
// the listener is released.
func StartInProcess(sc Scenario, cfg ServerConfig) (baseURL string, stop func(), err error) {
	srvCfg, err := buildServerConfig(sc, cfg)
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, ready) }()
	select {
	case addr := <-ready:
		baseURL = "http://" + addr.String()
	case err := <-done:
		cancel()
		return "", nil, fmt.Errorf("loadgen: in-process daemon failed to start: %w", err)
	}
	stop = func() {
		cancel()
		<-done
	}
	return baseURL, stop, nil
}

// StartCluster boots n peer-aware daemons of one configuration, each
// knowing the full membership: listeners are bound first so every
// member's base URL is known before any server starts, then each
// daemon serves on its pre-bound port with -peers-equivalent wiring.
// Every member gets its own fault injector when the scenario asks for
// faults. stopOne(i) kills a single member (chaos tests); stop shuts
// the rest down and blocks until every listener is released.
func StartCluster(sc Scenario, cfg ServerConfig, n int) (baseURLs []string, stopOne func(i int), stop func(), err error) {
	if n < 1 {
		return nil, nil, nil, fmt.Errorf("loadgen: cluster size %d, want >= 1", n)
	}
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	closeAll := func() {
		for _, ln := range lns {
			if ln != nil {
				ln.Close()
			}
		}
	}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	cancels := make([]context.CancelFunc, n)
	dones := make([]chan error, n)
	for i := range lns {
		srvCfg, err := buildServerConfig(sc, cfg)
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		srvCfg.Peers = urls
		srvCfg.PeerSelf = urls[i]
		srv, err := server.New(srvCfg)
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		cancels[i], dones[i] = cancel, done
		go func(ln net.Listener) { done <- srv.Serve(ctx, ln) }(lns[i])
	}
	var mu sync.Mutex
	stopped := make([]bool, n)
	stopOne = func(i int) {
		mu.Lock()
		dead := stopped[i]
		stopped[i] = true
		mu.Unlock()
		if dead {
			return
		}
		cancels[i]()
		<-dones[i]
	}
	stop = func() {
		for i := range cancels {
			stopOne(i)
		}
	}
	return urls, stopOne, stop, nil
}

// RunMatrix executes every (scenario, server) cell and returns the
// summaries in scenario-major order.
func RunMatrix(ctx context.Context, m Matrix, opts MatrixOptions) ([]Summary, error) {
	if len(m.Scenarios) == 0 || len(m.Servers) == 0 {
		return nil, fmt.Errorf("loadgen: matrix needs at least one scenario and one server config")
	}
	for i := range m.Scenarios {
		if err := m.Scenarios[i].Validate(); err != nil {
			return nil, err
		}
	}
	var sums []Summary
	for _, sc := range m.Scenarios {
		for _, srv := range m.Servers {
			sum, err := runCell(ctx, sc, srv, opts)
			if err != nil {
				return sums, fmt.Errorf("loadgen: cell (%s, %s): %w", sc.Name, srv.Name, err)
			}
			sums = append(sums, sum)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-14s x %-12s  %6d req  %8.1f rps  p99 %6dus  shed %.1f%%\n",
					sc.Name, srv.Name, sum.Requests, sum.ThroughputRPS,
					sum.LatencyP99US, sum.ShedRate*100)
			}
		}
	}
	return sums, nil
}

// runCell runs one (scenario, server) pair against a fresh daemon.
func runCell(ctx context.Context, sc Scenario, srv ServerConfig, opts MatrixOptions) (Summary, error) {
	baseURL, stop, err := StartInProcess(sc, srv)
	if err != nil {
		return Summary{}, err
	}
	defer stop()
	cfg := RunConfig{BaseURL: baseURL, Clock: opts.Clock, ServerName: srv.Name}
	var csv *os.File
	if opts.CSVDir != "" {
		path := filepath.Join(opts.CSVDir, sc.Name+"__"+srv.Name+".csv")
		csv, err = os.Create(path)
		if err != nil {
			return Summary{}, err
		}
		defer csv.Close()
		cfg.Recorders = append(cfg.Recorders, NewCSVRecorder(csv))
	}
	return Run(ctx, sc, cfg)
}

// ClusterMatrix crosses traffic scenarios with cluster sizes: every
// (scenario, size) cell runs against a fresh peer-aware cluster of
// that many daemons, all sharing one server configuration, driven
// through the pick-first/failover client so load reaches the cluster
// the way a real frontend's would.
type ClusterMatrix struct {
	Scenarios []Scenario   `json:"scenarios"`
	Server    ServerConfig `json:"server"`
	Sizes     []int        `json:"sizes"`
}

// RunClusterMatrix executes every (scenario, size) cell and returns
// the summaries in scenario-major order. Each summary's Server label
// is "<config>-x<size>". Cache ratios are cluster-wide: every
// member's /metrics deltas are summed, so a peer-owned key that cost
// one compute cluster-wide shows as one miss, not three.
func RunClusterMatrix(ctx context.Context, m ClusterMatrix, opts MatrixOptions) ([]Summary, error) {
	if len(m.Scenarios) == 0 || len(m.Sizes) == 0 {
		return nil, fmt.Errorf("loadgen: cluster matrix needs at least one scenario and one size")
	}
	for i := range m.Scenarios {
		if err := m.Scenarios[i].Validate(); err != nil {
			return nil, err
		}
	}
	var sums []Summary
	for _, sc := range m.Scenarios {
		for _, n := range m.Sizes {
			sum, err := runClusterCell(ctx, sc, m.Server, n, opts)
			if err != nil {
				return sums, fmt.Errorf("loadgen: cluster cell (%s, x%d): %w", sc.Name, n, err)
			}
			sums = append(sums, sum)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-14s x %-12s  %6d req  %8.1f rps  p99 %6dus  shed %.1f%%\n",
					sc.Name, sum.Server, sum.Requests, sum.ThroughputRPS,
					sum.LatencyP99US, sum.ShedRate*100)
			}
		}
	}
	return sums, nil
}

// runClusterCell runs one (scenario, size) pair against a fresh
// cluster, patching cluster-wide cache ratios over the single-member
// sample Run takes through the driving client.
func runClusterCell(ctx context.Context, sc Scenario, srv ServerConfig, n int, opts MatrixOptions) (Summary, error) {
	urls, _, stop, err := StartCluster(sc, srv, n)
	if err != nil {
		return Summary{}, err
	}
	defer stop()
	name := srv.Name
	if name == "" {
		name = "baseline"
	}
	cfg := RunConfig{Clock: opts.Clock, ServerName: fmt.Sprintf("%s-x%d", name, n)}
	if n == 1 {
		cfg.BaseURL = urls[0]
	} else {
		cfg.BaseURLs = urls
	}
	before, beforeErr := clusterCacheTotals(ctx, urls)
	sum, err := Run(ctx, sc, cfg)
	if err != nil {
		return sum, err
	}
	if after, afterErr := clusterCacheTotals(ctx, urls); beforeErr == nil && afterErr == nil {
		sum.Cache = ratios(
			after.Hits-before.Hits,
			after.Misses-before.Misses,
			after.Coalesced-before.Coalesced,
			after.StaleServed-before.StaleServed,
		)
	}
	return sum, nil
}

// clusterCacheTotals sums the cache counters across every member.
func clusterCacheTotals(ctx context.Context, urls []string) (servecache.Stats, error) {
	var tot servecache.Stats
	for _, u := range urls {
		cli, err := client.New(client.Config{BaseURL: u})
		if err != nil {
			return tot, err
		}
		m, err := cli.Metrics(ctx)
		if err != nil {
			return tot, err
		}
		tot.Hits += m.Cache.Hits
		tot.Misses += m.Cache.Misses
		tot.Coalesced += m.Cache.Coalesced
		tot.StaleServed += m.Cache.StaleServed
	}
	return tot, nil
}

// BenchDoc is the BENCH_8.json document: the matrix that ran and the
// per-cell summaries. Every future serving-capacity PR lands against
// these numbers.
type BenchDoc struct {
	Note      string         `json:"note"`
	Scenarios []Scenario     `json:"scenarios"`
	Servers   []ServerConfig `json:"servers"`
	Results   []Summary      `json:"results"`
}

// NewBenchDoc assembles the document for one matrix run.
func NewBenchDoc(m Matrix, sums []Summary) BenchDoc {
	return BenchDoc{
		Note: "Scenario-matrix load measurements: each cell drives one traffic " +
			"scenario through internal/client against a fresh in-process daemon " +
			"with one server configuration. Latencies are quantiles over " +
			"successful requests. Regenerate: HETEROSIM_MEASURE=1 " +
			"go test -run MeasureBench8 -v ./internal/loadgen/",
		Scenarios: m.Scenarios,
		Servers:   m.Servers,
		Results:   sums,
	}
}

// ClusterBenchDoc is the BENCH_9.json document: one server
// configuration at each cluster size, per-cell summaries with
// cluster-wide cache ratios. It is the 1-node-vs-3-node baseline the
// clustering work lands against.
type ClusterBenchDoc struct {
	Note      string       `json:"note"`
	Scenarios []Scenario   `json:"scenarios"`
	Server    ServerConfig `json:"server"`
	Sizes     []int        `json:"sizes"`
	Results   []Summary    `json:"results"`
}

// NewClusterBenchDoc assembles the document for one cluster-matrix run.
func NewClusterBenchDoc(m ClusterMatrix, sums []Summary) ClusterBenchDoc {
	return ClusterBenchDoc{
		Note: "Cluster-size load measurements: each cell drives one traffic " +
			"scenario through the pick-first/failover client against a fresh " +
			"peer-aware cluster of N in-process daemons sharing one server " +
			"configuration. Cache ratios sum /metrics deltas across every " +
			"member, so one cluster-wide compute is one miss. Regenerate: " +
			"HETEROSIM_MEASURE=1 go test -run MeasureBench9 -v ./internal/loadgen/",
		Scenarios: m.Scenarios,
		Server:    m.Server,
		Sizes:     m.Sizes,
		Results:   sums,
	}
}

// DefaultClusterMatrix is the BENCH_9 measurement matrix: the two
// non-fault measurement scenarios at one and three nodes under the
// baseline configuration. chaos-faults is excluded because per-member
// injectors make cross-size comparisons measure fault luck, not
// clustering cost.
func DefaultClusterMatrix() ClusterMatrix {
	return ClusterMatrix{
		Scenarios: []Scenario{
			mustBuiltin("steady-mixed"),
			mustBuiltin("burst-open"),
		},
		Server: ServerConfig{Name: "baseline"},
		Sizes:  []int{1, 3},
	}
}

// mix returns a copy of the standard all-endpoint weighting, biased
// toward the cheap hot-path operations the way interactive frontends
// are.
func mixAll() map[string]float64 {
	return map[string]float64{
		"optimize": 6, "sweep": 3, "project": 1,
		"scenario": 0.5, "sensitivity": 1, "ablation": 0.5,
		"compare": 0.5, "frontier": 0.5, "models": 0.5,
	}
}

// builtins are the named scenarios shipped with the harness.
// "smoke" is the deterministic tier-1 scenario: sequential, so that
// under a LogicalClock two runs produce byte-identical CSV output.
func builtins() []Scenario {
	return []Scenario{
		{
			Name: "smoke", Seed: 1, Requests: 60,
			Arrival:  ArrivalSpec{Process: "closed", Concurrency: 1},
			Mix:      mixAll(),
			HitRatio: 0.5, KeySpace: 8,
		},
		{
			Name: "steady-mixed", Seed: 1, Requests: 400,
			Arrival:  ArrivalSpec{Process: "closed", Concurrency: 8},
			Mix:      mixAll(),
			HitRatio: 0.6, KeySpace: 32,
		},
		{
			// The overload scenario: offered load well past capacity —
			// one in five requests is an expensive Monte Carlo
			// evaluation, arrivals fire regardless of server latency —
			// so the admission gate's shed behavior is measured, not
			// hypothetical.
			Name: "burst-open", Seed: 2, Requests: 400,
			Arrival:  ArrivalSpec{Process: "poisson", RateHz: 2000},
			Mix:      map[string]float64{"optimize": 6, "sweep": 2, "sensitivity": 2},
			HitRatio: 0.3, KeySpace: 16,
			Samples: 20_000,
		},
		{
			Name: "chaos-faults", Seed: 3, Requests: 300,
			Arrival:  ArrivalSpec{Process: "closed", Concurrency: 8},
			Mix:      map[string]float64{"optimize": 5, "sweep": 2, "sensitivity": 1},
			HitRatio: 0.5, KeySpace: 16,
			Faults:   "seed=7,latency=0.05:5ms,error=0.05",
			Deadline: DeadlineSpec{Dist: "uniform", Min: Duration(5 * time.Millisecond), Max: Duration(50 * time.Millisecond)},
			Retries:  3,
		},
	}
}

// BuiltinNames lists the shipped scenarios.
func BuiltinNames() []string {
	var names []string
	for _, sc := range builtins() {
		names = append(names, sc.Name)
	}
	return names
}

// Builtin returns a shipped scenario by name.
func Builtin(name string) (Scenario, bool) {
	for _, sc := range builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// DefaultMatrix is the BENCH_8 measurement matrix: the three
// measurement scenarios against the baseline deployment and a
// deliberately constrained one (small cache, two evaluation slots, a
// short queue), so shed and deadline-miss behavior is exercised, not
// just asserted about.
func DefaultMatrix() Matrix {
	return Matrix{
		Scenarios: []Scenario{
			mustBuiltin("steady-mixed"),
			mustBuiltin("burst-open"),
			mustBuiltin("chaos-faults"),
		},
		Servers: []ServerConfig{
			{Name: "baseline"},
			{
				Name: "constrained", Workers: 2, CacheEntries: 64,
				MaxInflight: 2, MaxQueue: 2,
				QueueTimeout:   Duration(50 * time.Millisecond),
				RequestTimeout: Duration(250 * time.Millisecond),
			},
		},
	}
}

func mustBuiltin(name string) Scenario {
	sc, ok := Builtin(name)
	if !ok {
		panic("loadgen: missing builtin " + name)
	}
	return sc
}
