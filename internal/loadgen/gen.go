package loadgen

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/calcm/heterosim/internal/client"
	"github.com/calcm/heterosim/internal/server"
)

// genRequest is one generated arrival: what to send and when.
type genRequest struct {
	Seq      int
	Endpoint string
	// Key indexes the request key space. Keys below the scenario's
	// KeySpace are "hot" (repeats that become cache hits once warmed);
	// keys at or above it are unique cold misses.
	Key int64
	// Deadline is the client-side budget for this request (0 = none).
	Deadline time.Duration
	// Gap is the Poisson interarrival delay before this request fires
	// (always 0 for the closed loop).
	Gap time.Duration
}

// generator derives the deterministic request stream from one seeded
// RNG. All draws happen under one lock in one goroutine-independent
// order (closed-loop workers serialize on next), so a (config, seed)
// pair always produces the same stream.
type generator struct {
	sc    *Scenario
	names []string
	cum   []float64

	mu   sync.Mutex
	rng  *rand.Rand
	cold int64
	seq  int
}

func newGenerator(sc *Scenario) *generator {
	names, cum := sc.mixEntries()
	return &generator{
		sc:    sc,
		names: names,
		cum:   cum,
		rng:   rand.New(rand.NewSource(sc.Seed)),
	}
}

// next draws one arrival; ok is false once the scenario's request
// budget is exhausted.
func (g *generator) next() (r genRequest, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seq >= g.sc.Requests {
		return genRequest{}, false
	}
	r.Seq = g.seq
	g.seq++

	u := g.rng.Float64()
	r.Endpoint = g.names[len(g.names)-1]
	for i, c := range g.cum {
		if u < c {
			r.Endpoint = g.names[i]
			break
		}
	}

	// Key shaping: with probability HitRatio reuse a hot key, otherwise
	// mint a unique cold one. Hot keys repeat, so once the hot set has
	// been evaluated the realized cache-hit ratio converges on the
	// target.
	if g.rng.Float64() < g.sc.HitRatio {
		r.Key = g.rng.Int63n(int64(g.sc.KeySpace))
	} else {
		r.Key = int64(g.sc.KeySpace) + g.cold
		g.cold++
	}

	switch g.sc.Deadline.Dist {
	case "fixed":
		r.Deadline = time.Duration(g.sc.Deadline.Min)
	case "uniform":
		lo, hi := time.Duration(g.sc.Deadline.Min), time.Duration(g.sc.Deadline.Max)
		r.Deadline = lo + time.Duration(g.rng.Int63n(int64(hi-lo)+1))
	}

	if g.sc.Arrival.Process == "poisson" {
		r.Gap = time.Duration(g.rng.ExpFloat64() / g.sc.Arrival.RateHz * float64(time.Second))
	}
	return r, true
}

// fOf maps a key index onto a parallel fraction in [0.5, 0.9): distinct
// keys produce distinct request bodies, hence distinct canonical cache
// keys, so the key space shapes the cache-hit ratio directly.
func fOf(key int64) float64 { return 0.5 + float64(key%400_000)*1e-6 }

// hetASIC is the design every generated model request evaluates: the
// paper's custom-logic U-core, whose published (mu, phi) exist for
// FFT-1024.
var hetASIC = server.DesignSpec{Kind: "het", Device: "ASIC"}

// issue sends one generated request through the typed client. samples
// is the scenario's Monte Carlo cost knob for sensitivity requests. The
// response body is discarded — the harness measures the serving
// behavior, not the model output (which the golden suites already pin).
func issue(ctx context.Context, c *client.Client, ep string, key int64, samples int) error {
	f := fOf(key)
	var err error
	switch ep {
	case "optimize":
		_, err = c.Optimize(ctx, server.OptimizeRequest{Workload: "FFT-1024", F: f, Design: hetASIC})
	case "sweep":
		_, err = c.Sweep(ctx, server.SweepRequest{
			Workload: "FFT-1024", Design: hetASIC,
			F: server.AxisSpec{Lo: f, Hi: 0.999, Steps: 8},
		})
	case "project":
		_, err = c.Project(ctx, server.ProjectRequest{Workload: "FFT-1024", F: f})
	case "scenario":
		_, err = c.Scenario(ctx, server.ScenarioRequest{Scenario: int(key%6) + 1, Workload: "FFT-1024", F: f})
	case "sensitivity":
		_, err = c.Sensitivity(ctx, server.SensitivityRequest{
			Workload: "FFT-1024", F: f, Design: hetASIC, Samples: samples,
		})
	case "ablation":
		_, err = c.Ablation(ctx, server.AblationRequest{Workload: "FFT-1024", F: f})
	case "compare":
		// Two distinct scenarios per request (s2 is s1 shifted by one in
		// 1-6), so the pair list is always duplicate-free.
		s1 := int(key%6) + 1
		_, err = c.Compare(ctx, server.CompareRequest{
			Workload: "FFT-1024", F: f,
			Pairs: []server.ComparePair{{Scenario: s1}, {Scenario: s1%6 + 1}},
		})
	case "frontier":
		// The stream bypasses the cache by design, so every frontier
		// request is an evaluation regardless of key reuse; rows are
		// discarded like every other response body.
		_, err = c.FrontierStream(ctx, server.FrontierRequest{
			Workload: "FFT-1024", F: f, Scenario: int(key % 7),
		}, func(server.FrontierRowJSON) error { return nil })
	case "models":
		_, err = c.Models(ctx)
	default:
		// Validate rejects unknown endpoints; reaching this is a bug.
		panic("loadgen: unmixable endpoint " + ep)
	}
	return err
}
