package loadgen

import (
	"strings"
	"testing"
)

// TestBuiltinNamesMatchBuiltins: the advertised list is exactly the
// shipped scenarios, in order — the CLI's `scenarios` output and the
// matrix builtins can never drift apart.
func TestBuiltinNamesMatchBuiltins(t *testing.T) {
	names := BuiltinNames()
	scs := builtins()
	if len(names) != len(scs) {
		t.Fatalf("BuiltinNames has %d entries, builtins %d", len(names), len(scs))
	}
	for i, sc := range scs {
		if names[i] != sc.Name {
			t.Errorf("name %d = %q, scenario says %q", i, names[i], sc.Name)
		}
	}
}

// TestFormatSummaries pins the summary table's header and one row's
// scenario/server columns — the shape the CLI prints after a run.
func TestFormatSummaries(t *testing.T) {
	var b strings.Builder
	FormatSummaries(&b, []Summary{{Scenario: "smoke", Server: "default", Requests: 10, OK: 9}})
	out := b.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scenario") || !strings.Contains(lines[0], "p99(us)") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "smoke") || !strings.Contains(lines[1], "default") {
		t.Errorf("row = %q", lines[1])
	}
}

// TestSummarizerFlushIsNoop: the summarizer satisfies Recorder; its
// Flush has nothing to write and must say so.
func TestSummarizerFlushIsNoop(t *testing.T) {
	if err := (&summarizer{}).Flush(); err != nil {
		t.Errorf("Flush = %v, want nil", err)
	}
}
