package loadgen

import (
	"errors"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/engine"
)

// valid returns a minimal passing scenario for the table tests to
// perturb.
func valid() Scenario {
	return Scenario{
		Name: "t", Requests: 10,
		Arrival: ArrivalSpec{Process: "closed"},
		Mix:     map[string]float64{"optimize": 1},
	}
}

func TestValidateRejects(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string // substring of the error message
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }, "needs a name"},
		{"comma in name", func(s *Scenario) { s.Name = "a,b" }, "must not contain"},
		{"newline in name", func(s *Scenario) { s.Name = "a\nb" }, "must not contain"},
		{"zero requests", func(s *Scenario) { s.Requests = 0 }, "requests must be > 0"},
		{"negative requests", func(s *Scenario) { s.Requests = -5 }, "requests must be > 0"},
		{"absurd requests", func(s *Scenario) { s.Requests = 20_000_000 }, "10M cap"},
		{"negative duration", func(s *Scenario) { s.Duration = Duration(-time.Second) }, "duration must be >= 0"},
		{"unknown process", func(s *Scenario) { s.Arrival.Process = "uniform" }, "unknown arrival process"},
		{"empty process", func(s *Scenario) { s.Arrival.Process = "" }, "unknown arrival process"},
		{"closed with rate", func(s *Scenario) { s.Arrival.RateHz = 5 }, "rateHz applies to the poisson"},
		{"negative concurrency", func(s *Scenario) { s.Arrival.Concurrency = -1 }, "concurrency must be >= 0"},
		{"poisson without rate", func(s *Scenario) {
			s.Arrival = ArrivalSpec{Process: "poisson"}
		}, "needs rateHz > 0"},
		{"poisson negative rate", func(s *Scenario) {
			s.Arrival = ArrivalSpec{Process: "poisson", RateHz: -3}
		}, "needs rateHz > 0"},
		{"poisson NaN rate", func(s *Scenario) {
			s.Arrival = ArrivalSpec{Process: "poisson", RateHz: nan}
		}, "must be finite"},
		{"poisson with concurrency", func(s *Scenario) {
			s.Arrival = ArrivalSpec{Process: "poisson", RateHz: 10, Concurrency: 4}
		}, "concurrency applies to the closed"},
		{"empty mix", func(s *Scenario) { s.Mix = nil }, "at least one endpoint weight"},
		{"unknown endpoint", func(s *Scenario) { s.Mix = map[string]float64{"metrics": 1} }, "unknown endpoint"},
		{"NaN weight", func(s *Scenario) { s.Mix = map[string]float64{"optimize": nan} }, "must be finite"},
		{"negative weight", func(s *Scenario) { s.Mix = map[string]float64{"optimize": -1} }, "must be >= 0"},
		{"all-zero mix", func(s *Scenario) { s.Mix = map[string]float64{"optimize": 0, "sweep": 0} }, "at least one must be positive"},
		{"NaN hitRatio", func(s *Scenario) { s.HitRatio = nan }, "must be finite"},
		{"negative hitRatio", func(s *Scenario) { s.HitRatio = -0.1 }, "hitRatio must be in [0, 1)"},
		{"hitRatio one", func(s *Scenario) { s.HitRatio = 1 }, "hitRatio must be in [0, 1)"},
		{"negative keySpace", func(s *Scenario) { s.KeySpace = -2 }, "keySpace must be >= 0"},
		{"bad faults spec", func(s *Scenario) { s.Faults = "error=2.5" }, "faults:"},
		{"unknown deadline dist", func(s *Scenario) { s.Deadline.Dist = "pareto" }, "unknown deadline dist"},
		{"deadline min without dist", func(s *Scenario) { s.Deadline.Min = Duration(time.Second) }, "need dist fixed or uniform"},
		{"fixed deadline without min", func(s *Scenario) { s.Deadline.Dist = "fixed" }, "needs min > 0"},
		{"uniform deadline inverted", func(s *Scenario) {
			s.Deadline = DeadlineSpec{Dist: "uniform", Min: Duration(time.Second), Max: Duration(time.Millisecond)}
		}, "0 < min <= max"},
		{"negative retries", func(s *Scenario) { s.Retries = -1 }, "retries must be in [0, 10]"},
		{"huge retries", func(s *Scenario) { s.Retries = 100 }, "retries must be in [0, 10]"},
		{"tiny samples", func(s *Scenario) { s.Samples = 5 }, "samples must be in [10, 100000]"},
		{"huge samples", func(s *Scenario) { s.Samples = 1_000_000 }, "samples must be in [10, 100000]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := valid()
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", sc)
			}
			var ee *engine.Error
			if !errors.As(err, &ee) {
				t.Fatalf("error %v is not an *engine.Error", err)
			}
			if ee.Status != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", ee.Status)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateDefaults(t *testing.T) {
	sc := valid()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 1 || sc.Arrival.Concurrency != 1 || sc.KeySpace != 16 || sc.Retries != 1 || sc.Samples != 200 {
		t.Errorf("defaults not filled: %+v", sc)
	}
	po := valid()
	po.Arrival = ArrivalSpec{Process: "poisson", RateHz: 100}
	if err := po.Validate(); err != nil {
		t.Fatal(err)
	}
	if po.Arrival.MaxOutstanding != 512 {
		t.Errorf("MaxOutstanding default = %d, want 512", po.Arrival.MaxOutstanding)
	}
}

func TestParseScenario(t *testing.T) {
	good := `{
		"name": "steady", "seed": 3, "requests": 100,
		"arrival": {"process": "poisson", "rateHz": 50.5},
		"mix": {"optimize": 2, "models": 1},
		"hitRatio": 0.25, "keySpace": 8,
		"deadline": {"dist": "uniform", "min": "5ms", "max": "50ms"},
		"retries": 2
	}`
	sc, err := ParseScenario([]byte(good))
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if sc.Name != "steady" || sc.Arrival.RateHz != 50.5 ||
		time.Duration(sc.Deadline.Max) != 50*time.Millisecond {
		t.Errorf("parsed %+v", sc)
	}

	bad := []struct {
		name, body string
	}{
		{"unknown field", `{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1},"burst":true}`},
		{"bad duration string", `{"name":"x","requests":1,"duration":"fast","arrival":{"process":"closed"},"mix":{"optimize":1}}`},
		{"numeric duration", `{"name":"x","requests":1,"duration":250,"arrival":{"process":"closed"},"mix":{"optimize":1}}`},
		{"trailing garbage", `{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1}} extra`},
		{"not an object", `[1,2,3]`},
		{"unknown endpoint", `{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"healthz":1}}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScenario([]byte(tc.body)); err == nil {
				t.Errorf("accepted %s", tc.body)
			}
		})
	}
}
