package loadgen

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/loadgen -run %s -update)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestCSVSchemaGolden pins the per-request CSV schema: the header line
// and the exact formatting of one fully-populated row. Downstream
// analysis (and the CI smoke's schema check) parse these columns;
// changing them must be a deliberate, golden-updating act.
func TestCSVSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf)
	rec.Record(Sample{
		Scenario: "golden", Seq: 7, OffsetUS: 123456,
		Endpoint: "optimize", Key: 42, DeadlineUS: 50000,
		Status: 200, Cache: "hit", Fault: "",
		Attempts: 2, LatencyUS: 1875, Err: "",
	})
	rec.Record(Sample{
		Scenario: "golden", Seq: 8, OffsetUS: 130000,
		Endpoint: "sensitivity", Key: 99, DeadlineUS: 0,
		Status: 503, Cache: "", Fault: "error",
		Attempts: 3, LatencyUS: 20104, Err: "retry",
	})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "csv_schema.golden", buf.Bytes())
}

// keyTree flattens a JSON document into its sorted set of key paths.
// Array elements collapse into "[]" — the golden pins the shape, not the
// cardinality.
func keyTree(v any, prefix string, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := prefix + "." + k
			out[p] = true
			keyTree(child, p, out)
		}
	case []any:
		for _, child := range x {
			keyTree(child, prefix+"[]", out)
		}
	}
}

// TestBench8KeyTreeGolden pins the BENCH_8.json key tree: the scenario
// matrix document's shape, including every per-cell summary field. A
// field renamed or dropped here silently breaks whatever trends those
// numbers, so the shape is held by a golden.
func TestBench8KeyTreeGolden(t *testing.T) {
	m := DefaultMatrix()
	// One synthetic summary exercising every optional field, so the
	// tree is complete without running the (nondeterministic, slow)
	// measurement matrix.
	sum := Summary{
		Scenario: m.Scenarios[0].Name, Server: m.Servers[0].Name, Seed: 1,
		Requests: 10, OK: 6, Shed: 1, DeadlineMiss: 1, InjectedFaults: 2,
		DurationMS: 12.5, ThroughputRPS: 800,
		LatencyP50US: 900, LatencyP99US: 4000, LatencyMaxUS: 5000, LatencySamples: 6,
		ShedRate: 0.1, DeadlineMissRate: 0.1,
		Cache: CacheRatios{Hits: 3, Misses: 3, Coalesced: 1, StaleServed: 1, HitRatio: 0.5, CoalesceRatio: 0.14},
	}
	doc := NewBenchDoc(m, []Summary{sum})
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	keyTree(v, "", paths)
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	var b strings.Builder
	fmt.Fprintln(&b, "# BENCH_8.json key tree (shape only; [] collapses array elements)")
	for _, p := range sorted {
		fmt.Fprintln(&b, p)
	}
	checkGolden(t, "bench8_keys.golden", []byte(b.String()))
}

// TestBench9KeyTreeGolden pins the BENCH_9.json key tree the same way:
// the cluster-size matrix document's shape, including every per-cell
// summary field, held by a golden so the 1-node-vs-N-node trend lines
// never silently lose a column.
func TestBench9KeyTreeGolden(t *testing.T) {
	m := DefaultClusterMatrix()
	sum := Summary{
		Scenario: m.Scenarios[0].Name, Server: "baseline-x3", Seed: 1,
		Requests: 10, OK: 6, Shed: 1, DeadlineMiss: 1, InjectedFaults: 2,
		DurationMS: 12.5, ThroughputRPS: 800,
		LatencyP50US: 900, LatencyP99US: 4000, LatencyMaxUS: 5000, LatencySamples: 6,
		ShedRate: 0.1, DeadlineMissRate: 0.1,
		Cache: CacheRatios{Hits: 3, Misses: 3, Coalesced: 1, StaleServed: 1, HitRatio: 0.5, CoalesceRatio: 0.14},
	}
	doc := NewClusterBenchDoc(m, []Summary{sum})
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	keyTree(v, "", paths)
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	var b strings.Builder
	fmt.Fprintln(&b, "# BENCH_9.json key tree (shape only; [] collapses array elements)")
	for _, p := range sorted {
		fmt.Fprintln(&b, p)
	}
	checkGolden(t, "bench9_keys.golden", []byte(b.String()))
}
