package loadgen

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts the runner's notion of time: the wall clock for real
// measurement runs, a logical clock for deterministic ones. Every
// timestamp and latency the recorders see comes through a Clock, so
// under the logical clock a sequential run's CSV output is a pure
// function of the scenario seed — byte-identical across invocations —
// while under the wall clock the same code path measures real latency.
type Clock interface {
	// Now returns the current time.
	Now() time.Time

	// Sleep waits d or until ctx is done, returning ctx.Err() when the
	// context ended the wait early.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real-time clock used for measurement runs.
type WallClock struct{}

// Now returns time.Now.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep waits on a real timer.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// LogicalClock is a deterministic virtual clock: Now advances a fixed
// tick per call and Sleep advances virtual time without waiting. Runs
// driven by it finish at memory speed and produce identical timing
// columns every invocation. Safe for concurrent use, but determinism
// additionally requires a sequential run (closed loop, concurrency 1) —
// concurrent callers interleave their ticks nondeterministically.
type LogicalClock struct {
	mu   sync.Mutex
	now  time.Time
	tick time.Duration
}

// NewLogicalClock starts a logical clock at start, advancing tick per
// Now call (tick <= 0 defaults to 1ms).
func NewLogicalClock(start time.Time, tick time.Duration) *LogicalClock {
	if tick <= 0 {
		tick = time.Millisecond
	}
	return &LogicalClock{now: start, tick: tick}
}

// Now advances the virtual time by one tick and returns it.
func (c *LogicalClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.tick)
	return c.now
}

// Sleep advances the virtual time by d without waiting.
func (c *LogicalClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.mu.Lock()
		c.now = c.now.Add(d)
		c.mu.Unlock()
	}
	return nil
}
