// Package loadgen is the load-generation and scenario-matrix harness
// for the serving stack: declarative traffic scenarios — an endpoint mix
// across every /v1 operation, an open-loop Poisson or closed-loop
// arrival process, a target cache-hit ratio shaped through the request
// key space, a fault rate, and a deadline distribution — crossed with
// server configurations (workers, cache size, inflight caps) into a
// scenario matrix.
//
// Each scenario runs through internal/client against an in-process or
// live daemon with one seeded deterministic RNG, records a per-request
// CSV time series through pluggable recorders, and reduces to a Summary
// (p50/p99 latency, throughput, shed rate, deadline-miss rate, cache
// hit/coalesce ratios). The matrix runner emits the summaries as the
// BENCH_8.json document, turning "serves heavy traffic" from a claim
// into a measured, regression-gated trajectory.
//
// The harness follows the repo's determinism discipline: a scenario is
// a pure function of its seed. The request stream (endpoints, keys,
// deadlines, arrival offsets) replays bit-identically, and under the
// logical clock (see Clock) a sequential run's CSV output is
// byte-identical across invocations, which is what lets a short
// deterministic run serve as a tier-1 regression gate.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/faultinject"
)

// Endpoints the mix may weight: the seven registry operations, the
// stream-only frontier trajectory endpoint, and the GET /v1/models
// discovery endpoint. "frontier" drives POST /v1/frontier/stream —
// NDJSON, cache-bypassing — so mixes with it exercise the streaming
// pipeline under load, not just the buffered one.
var endpointNames = []string{
	"optimize", "sweep", "project", "scenario", "sensitivity", "ablation",
	"compare", "frontier", "models",
}

// KnownEndpoint reports whether name is a mixable endpoint.
func KnownEndpoint(name string) bool {
	for _, e := range endpointNames {
		if e == name {
			return true
		}
	}
	return false
}

// Duration is time.Duration with the JSON spelling used across the
// scenario format: a Go duration string ("250ms", "2s").
type Duration time.Duration

// MarshalJSON renders the Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like %q: %w", "250ms", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// ArrivalSpec selects how requests enter the system.
//
// "closed" is the classic closed loop: Concurrency workers each issue
// the next request as soon as the previous response lands, so offered
// load adapts to server latency (throughput-limited, never overruns).
//
// "poisson" is an open loop: arrivals fire at exponentially distributed
// intervals at RateHz regardless of how the server is doing — the
// process that actually produces overload, shed, and queueing, because
// real users do not wait for each other.
type ArrivalSpec struct {
	Process string `json:"process"`

	// Concurrency is the closed-loop worker count (default 1). One
	// worker makes the run fully sequential and therefore byte-
	// deterministic under the logical clock.
	Concurrency int `json:"concurrency,omitempty"`

	// RateHz is the open-loop Poisson arrival rate (required > 0 for
	// process "poisson").
	RateHz float64 `json:"rateHz,omitempty"`

	// MaxOutstanding bounds concurrently in-flight open-loop requests
	// (default 512). The dispatcher blocks when the bound is reached,
	// which shows up as schedule slip, not as silent request drops.
	MaxOutstanding int `json:"maxOutstanding,omitempty"`
}

// DeadlineSpec draws a per-request client-side deadline. The zero value
// (or dist "none") issues requests without deadlines.
type DeadlineSpec struct {
	// Dist is "none" (or empty), "fixed" (every request gets Min), or
	// "uniform" (uniform in [Min, Max]).
	Dist string   `json:"dist,omitempty"`
	Min  Duration `json:"min,omitempty"`
	Max  Duration `json:"max,omitempty"`
}

// Scenario is one declarative traffic pattern. It is a pure description:
// running it requires a RunConfig (target, clock, recorders), and the
// request stream it generates is a deterministic function of Seed.
type Scenario struct {
	// Name labels CSV rows, summaries, and BENCH_8 entries. Required;
	// must stay clear of CSV/JSON structural characters.
	Name string `json:"name"`

	// Seed drives every draw the scenario makes — endpoint choice, key
	// shaping, deadlines, Poisson interarrivals (default 1).
	Seed int64 `json:"seed,omitempty"`

	// Requests is the total number of requests to issue (required > 0;
	// Duration, when set, may stop the run earlier).
	Requests int `json:"requests"`

	// Duration, when positive, bounds the run wall-clock time; the run
	// stops at whichever of Requests/Duration comes first.
	Duration Duration `json:"duration,omitempty"`

	// Arrival selects the arrival process.
	Arrival ArrivalSpec `json:"arrival"`

	// Mix weights the endpoints (key: endpoint name, value: relative
	// weight >= 0). At least one weight must be positive.
	Mix map[string]float64 `json:"mix"`

	// HitRatio is the target cache-hit ratio in [0, 1): each request's
	// key is drawn from a small hot set with this probability and is
	// otherwise a fresh unique key (a guaranteed cold miss). The
	// realized hit ratio converges on the target once the hot set has
	// been warmed.
	HitRatio float64 `json:"hitRatio,omitempty"`

	// KeySpace is the hot-set size per endpoint (default 16). Smaller
	// sets warm faster; larger ones exercise more of the cache.
	KeySpace int `json:"keySpace,omitempty"`

	// Faults is an internal/faultinject spec (e.g.
	// "seed=7,error=0.05,latency=0.05:5ms") spliced in front of the
	// server on in-process runs. For live daemons set the equivalent
	// HETEROSIMD_FAULTS environment on the daemon instead.
	Faults string `json:"faults,omitempty"`

	// Deadline draws per-request client-side deadlines; a request whose
	// deadline expires counts as a deadline miss, as does a server 504.
	Deadline DeadlineSpec `json:"deadline,omitempty"`

	// Retries is the client's attempt budget per request (default 1:
	// no retries, so shed responses stay visible instead of being
	// retried away by the client).
	Retries int `json:"retries,omitempty"`

	// Samples is the Monte Carlo draw count for generated
	// /v1/sensitivity requests (default 200, server cap 100000). It is
	// the scenario's per-request cost knob: sensitivity evaluation
	// scales linearly in it, so overload scenarios raise it to make
	// individual evaluations long enough to contend for admission
	// slots instead of finishing between scheduler slices.
	Samples int `json:"samples,omitempty"`
}

// checkFinite rejects NaN and infinite rates — a NaN probability would
// silently disable every comparison it participates in.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return engine.BadRequest("%s must be finite, got %v", name, v)
	}
	return nil
}

// Validate checks the scenario and fills defaults in place (seed,
// key-space size, closed-loop concurrency, retry budget). Errors carry
// HTTP-style statuses via *engine.Error: every rejection is a 400 — the
// config is the client's input.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return engine.BadRequest("scenario needs a name")
	}
	if strings.ContainsAny(s.Name, ",\"\n\r") {
		return engine.BadRequest("scenario name %q must not contain commas, quotes, or newlines", s.Name)
	}
	if s.Requests <= 0 {
		return engine.BadRequest("requests must be > 0, got %d", s.Requests)
	}
	if s.Requests > 10_000_000 {
		return engine.BadRequest("requests %d exceeds the 10M cap; split the run", s.Requests)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Duration < 0 {
		return engine.BadRequest("duration must be >= 0, got %v", time.Duration(s.Duration))
	}
	switch s.Arrival.Process {
	case "closed":
		if s.Arrival.Concurrency < 0 {
			return engine.BadRequest("closed-loop concurrency must be >= 0, got %d", s.Arrival.Concurrency)
		}
		if s.Arrival.Concurrency == 0 {
			s.Arrival.Concurrency = 1
		}
		if s.Arrival.RateHz != 0 {
			return engine.BadRequest("rateHz applies to the poisson process, not closed")
		}
	case "poisson":
		if err := checkFinite("rateHz", s.Arrival.RateHz); err != nil {
			return err
		}
		if s.Arrival.RateHz <= 0 {
			return engine.BadRequest("poisson arrival needs rateHz > 0, got %v", s.Arrival.RateHz)
		}
		if s.Arrival.Concurrency != 0 {
			return engine.BadRequest("concurrency applies to the closed process, not poisson")
		}
		if s.Arrival.MaxOutstanding < 0 {
			return engine.BadRequest("maxOutstanding must be >= 0, got %d", s.Arrival.MaxOutstanding)
		}
		if s.Arrival.MaxOutstanding == 0 {
			s.Arrival.MaxOutstanding = 512
		}
	default:
		return engine.BadRequest("unknown arrival process %q (want closed or poisson)", s.Arrival.Process)
	}
	if len(s.Mix) == 0 {
		return engine.BadRequest("mix needs at least one endpoint weight")
	}
	total := 0.0
	for name, w := range s.Mix {
		if !KnownEndpoint(name) {
			return engine.BadRequest("unknown endpoint %q in mix (want %s)",
				name, strings.Join(endpointNames, ", "))
		}
		if err := checkFinite("mix."+name, w); err != nil {
			return err
		}
		if w < 0 {
			return engine.BadRequest("mix.%s must be >= 0, got %v", name, w)
		}
		total += w
	}
	if total <= 0 {
		return engine.BadRequest("mix weights sum to %v; at least one must be positive", total)
	}
	if err := checkFinite("hitRatio", s.HitRatio); err != nil {
		return err
	}
	if s.HitRatio < 0 || s.HitRatio >= 1 {
		return engine.BadRequest("hitRatio must be in [0, 1), got %v", s.HitRatio)
	}
	if s.KeySpace < 0 {
		return engine.BadRequest("keySpace must be >= 0, got %d", s.KeySpace)
	}
	if s.KeySpace == 0 {
		s.KeySpace = 16
	}
	if s.Faults != "" {
		if _, err := faultinject.Parse(s.Faults); err != nil {
			return engine.BadRequest("faults: %v", err)
		}
	}
	switch s.Deadline.Dist {
	case "", "none":
		if s.Deadline.Min != 0 || s.Deadline.Max != 0 {
			return engine.BadRequest("deadline min/max need dist fixed or uniform")
		}
	case "fixed":
		if s.Deadline.Min <= 0 {
			return engine.BadRequest("fixed deadline needs min > 0, got %v", time.Duration(s.Deadline.Min))
		}
		if s.Deadline.Max != 0 && s.Deadline.Max != s.Deadline.Min {
			return engine.BadRequest("fixed deadline takes min only")
		}
	case "uniform":
		if s.Deadline.Min <= 0 || s.Deadline.Max < s.Deadline.Min {
			return engine.BadRequest("uniform deadline needs 0 < min <= max, got [%v, %v]",
				time.Duration(s.Deadline.Min), time.Duration(s.Deadline.Max))
		}
	default:
		return engine.BadRequest("unknown deadline dist %q (want none, fixed, uniform)", s.Deadline.Dist)
	}
	if s.Retries < 0 || s.Retries > 10 {
		return engine.BadRequest("retries must be in [0, 10], got %d", s.Retries)
	}
	if s.Retries == 0 {
		s.Retries = 1
	}
	if s.Samples != 0 && (s.Samples < 10 || s.Samples > 100_000) {
		return engine.BadRequest("samples must be in [10, 100000], got %d", s.Samples)
	}
	if s.Samples == 0 {
		s.Samples = 200
	}
	return nil
}

// ParseScenario decodes a strict-JSON scenario config and validates it.
// Unknown fields are rejected — a typoed knob must fail loudly, not
// silently run the default traffic pattern.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := engine.DecodeStrict(data, &s); err != nil {
		return Scenario{}, err
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// mixEntries returns the mix in sorted-name order with cumulative
// weights — map iteration order must never reach the RNG stream.
func (s *Scenario) mixEntries() (names []string, cum []float64) {
	for name, w := range s.Mix {
		if w > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	cum = make([]float64, len(names))
	total := 0.0
	for i, name := range names {
		total += s.Mix[name]
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return names, cum
}
