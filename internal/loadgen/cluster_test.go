package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/client"
	"github.com/calcm/heterosim/internal/faultinject"
	"github.com/calcm/heterosim/internal/server"
)

// The cluster chaos suite: boots real multi-daemon clusters (every
// member a full in-process heterosimd with the peer tier wired) and
// holds them to the clustering contract under peer death and injected
// faults. Run under -race this is also the cross-process-boundary race
// shake for the peer tier.

// postJSON POSTs a body to one member and returns (status, response).
func postJSON(t *testing.T, baseURL, path, body string) (int, []byte) {
	t.Helper()
	res, err := http.Post(baseURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s%s: %v", baseURL, path, err)
	}
	defer res.Body.Close()
	payload, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, payload
}

// metricsOf fetches one member's /metrics document.
func metricsOf(t *testing.T, baseURL string) server.Metrics {
	t.Helper()
	res, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// optimizeBodies returns n distinct canonical-cold optimize requests.
func optimizeBodies(n int) []string {
	bodies := make([]string, n)
	for i := range bodies {
		f := 0.50 + 0.4*float64(i)/float64(n)
		bodies[i] = fmt.Sprintf(`{"workload":"MMM","f":%.4f,"design":{"kind":"sym"}}`, f)
	}
	return bodies
}

// TestClusterByteIdenticalAndSingleCompute is the core clustering
// acceptance: every member answers every canonical key with identical
// bytes, and a cold key is computed exactly once cluster-wide no matter
// which member was asked.
func TestClusterByteIdenticalAndSingleCompute(t *testing.T) {
	urls, _, stop, err := StartCluster(Scenario{}, ServerConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	bodies := optimizeBodies(8)
	for _, body := range bodies {
		var first []byte
		for pi, u := range urls {
			status, payload := postJSON(t, u, "/v1/optimize", body)
			if status != http.StatusOK {
				t.Fatalf("peer %d: status %d (%s)", pi, status, payload)
			}
			if first == nil {
				first = payload
			} else if !bytes.Equal(payload, first) {
				t.Errorf("peer %d answered different bytes for %s:\n got %s\nwant %s", pi, body, payload, first)
			}
		}
	}

	var misses, peerFetches int64
	for pi, u := range urls {
		m := metricsOf(t, u)
		if m.Peers == nil {
			t.Fatalf("peer %d: /metrics has no peers section", pi)
		}
		if m.Peers.Self != urls[pi] {
			t.Errorf("peer %d self = %q, want %q", pi, m.Peers.Self, urls[pi])
		}
		misses += m.Cache.Misses
		peerFetches += m.Peers.Fetches
		if m.Peers.FetchErrors != 0 || m.Peers.LocalFallbacks != 0 {
			t.Errorf("peer %d: fetchErrors %d localFallbacks %d in a healthy cluster",
				pi, m.Peers.FetchErrors, m.Peers.LocalFallbacks)
		}
	}
	if want := int64(len(bodies)); misses != want {
		t.Errorf("cluster-wide computes = %d, want %d (exactly one per cold key)", misses, want)
	}
	if peerFetches == 0 {
		t.Error("no peer fetches happened: ownership routing is not exercising the peer tier")
	}
}

// TestClusterPeerDeathMidBatch kills one member while a cold batch is
// in flight through another: the batch must return 200 with every item
// evaluated (owner loss degrades to local compute, never to request
// loss), and the receiving member's metrics must account for the
// outage as fallbacks, not 5xx.
func TestClusterPeerDeathMidBatch(t *testing.T) {
	urls, stopOne, stop, err := StartCluster(Scenario{}, ServerConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	bodies := optimizeBodies(64)
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i, b := range bodies {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"op":"optimize","request":` + b + `}`)
	}
	sb.WriteString(`]}`)

	// Kill peer 2 while the batch fans out through peer 0. The sleep
	// only shapes the interleaving; correctness must hold wherever the
	// kill lands, which is exactly what -race runs shake.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(2 * time.Millisecond)
		stopOne(2)
	}()
	status, payload := postJSON(t, urls[0], "/v1/batch", sb.String())
	<-done
	if status != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", status, payload)
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK != len(bodies) || resp.Failed != 0 {
		for _, it := range resp.Items {
			if it.Status != http.StatusOK {
				t.Logf("failed item: %+v", it)
			}
		}
		t.Fatalf("ok/failed = %d/%d, want %d/0 — peer death lost requests", resp.OK, resp.Failed, len(bodies))
	}

	// Every item answered; re-asking the survivors must give the same
	// bytes the batch returned (fallback computes are still canonical).
	for i, b := range bodies[:8] {
		status, payload := postJSON(t, urls[1], "/v1/optimize", b)
		if status != http.StatusOK {
			t.Fatalf("survivor: status %d", status)
		}
		if !bytes.Equal(payload, resp.Items[i].Response) {
			t.Errorf("survivor bytes differ from batch item %d", i)
		}
	}
}

// TestClusterPeerDeathMidStream kills a member while an NDJSON sweep
// streams from another: streams evaluate locally, so the stream must
// run to its trailer with every row intact.
func TestClusterPeerDeathMidStream(t *testing.T) {
	urls, stopOne, stop, err := StartCluster(Scenario{}, ServerConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	cli, err := client.New(client.Config{BaseURL: urls[0], MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	rows := 0
	res, err := cli.SweepStream(context.Background(), server.SweepRequest{
		Workload: "MMM",
		Design:   server.DesignSpec{Kind: "sym"},
		F:        server.AxisSpec{Lo: 0.01, Hi: 0.99, Steps: 150},
		AreaScale: &server.AxisSpec{
			Lo: 0.5, Hi: 2, Steps: 40,
		},
	}, func(server.SweepPointJSON) error {
		rows++
		if rows == 100 {
			stopOne(1)
			close(killed)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream failed after %d rows: %v", rows, err)
	}
	<-killed // the kill really happened mid-stream
	if want := 150 * 40; rows != want || res.Rows != want {
		t.Errorf("rows = %d (result %d), want %d", rows, res.Rows, want)
	}
}

// TestClusterFailoverDrainsToSurvivors: a client given all three
// members keeps answering after one dies mid-run — zero lost requests,
// byte-identical answers from whoever serves them.
func TestClusterFailoverDrainsToSurvivors(t *testing.T) {
	urls, stopOne, stop, err := StartCluster(Scenario{}, ServerConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cli, err := client.New(client.Config{
		BaseURLs:    urls,
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 24
	var killOnce sync.Once
	var issued, failed atomic.Int64
	answers := make([]map[float64]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		answers[w] = make(map[float64]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/2 {
					// Kill the client's current pick mid-run, once.
					killOnce.Do(func() { stopOne(0) })
				}
				f := 0.5 + 0.002*float64(i%16)
				issued.Add(1)
				resp, err := cli.Optimize(context.Background(), server.OptimizeRequest{
					Workload: "MMM", F: f, Design: server.DesignSpec{Kind: "sym"},
				})
				if err != nil {
					failed.Add(1)
					continue
				}
				b, _ := json.Marshal(resp)
				answers[w][f] = string(b)
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Errorf("%d/%d requests lost to a single peer death (failover should absorb it)", failed.Load(), issued.Load())
	}
	// Cross-worker consistency: same key, same decoded answer, no
	// matter which member served it before or after the kill.
	for f, want := range answers[0] {
		for w := 1; w < workers; w++ {
			if got, ok := answers[w][f]; ok && got != want {
				t.Errorf("worker %d saw different answer for f=%v", w, f)
			}
		}
	}
}

// TestClusterFaultLedger injects deterministic faults into every
// member and audits the ledger: every injected error is accounted for
// either by a client-observed faulted attempt (X-Fault-Injected on a
// direct response) or by a peer-fetch failure recorded in some
// member's metrics — no injected fault vanishes.
func TestClusterFaultLedger(t *testing.T) {
	const n = 3
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	injectors := make([]*faultinject.Injector, n)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := range lns {
		inj, err := faultinject.New(faultinject.Config{Seed: int64(10 + i), ErrorP: 0.15, LatencyP: 0.1, Latency: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		injectors[i] = inj
		srv, err := server.New(server.Config{
			Peers:    urls,
			PeerSelf: urls[i],
			// Roomy limits: the injector must be the only failure source
			// so the ledger arithmetic is exact.
			MaxInflight: 64, MaxQueue: 64,
			Middleware: inj.Wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ln net.Listener) {
			defer wg.Done()
			srv.Serve(ctx, ln)
		}(lns[i])
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	var faultedAttempts atomic.Int64
	cli, err := client.New(client.Config{
		BaseURLs:    urls,
		MaxAttempts: 10,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		OnAttempt: func(_ context.Context, a client.Attempt) {
			if a.Fault != "" {
				faultedAttempts.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range optimizeBodies(24) {
		var req server.OptimizeRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Optimize(context.Background(), req); err != nil {
			t.Fatalf("request lost under faults: %v", err)
		}
	}

	var injected, fetchErrors, metricsFaults int64
	for i, inj := range injectors {
		st := inj.Stats()
		injected += st.Errors
		if st.Resets != 0 || st.Truncates != 0 {
			t.Fatalf("unexpected fault kinds injected: %+v", st)
		}
		// /metrics itself passes through the injector; retry until it
		// answers and subtract the faults burned on these reads.
		for {
			res, err := http.Get(urls[i] + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			faulted := res.Header.Get("X-Fault-Injected") != ""
			if faulted {
				metricsFaults++
				res.Body.Close()
				continue
			}
			var m server.Metrics
			if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
				t.Fatal(err)
			}
			res.Body.Close()
			if m.Peers == nil {
				t.Fatalf("peer %d: no peers metrics", i)
			}
			fetchErrors += m.Peers.FetchErrors
			break
		}
		// Later iterations' metrics reads may inject more errors; fold
		// the running injector total in again at the end.
	}
	// Re-snapshot the injectors after the metrics reads so the totals
	// include faults burned on /metrics itself.
	injected = 0
	for _, inj := range injectors {
		injected += inj.Stats().Errors
	}
	accounted := faultedAttempts.Load() + fetchErrors + metricsFaults
	if injected != accounted {
		t.Errorf("fault ledger out of balance: injected %d, accounted %d (client %d + peer-fetch %d + metrics %d)",
			injected, accounted, faultedAttempts.Load(), fetchErrors, metricsFaults)
	}
	if injected == 0 {
		t.Error("no faults injected: the ledger test exercised nothing")
	}
}
