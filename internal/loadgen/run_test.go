package loadgen

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// runSmokeOnce runs one deterministic smoke pass against a fresh
// in-process baseline daemon under the logical clock and returns the
// CSV bytes plus the summary.
func runSmokeOnce(t *testing.T, sc Scenario) ([]byte, Summary) {
	t.Helper()
	baseURL, stop, err := StartInProcess(sc, ServerConfig{Name: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var buf bytes.Buffer
	sum, err := Run(context.Background(), sc, RunConfig{
		BaseURL:    baseURL,
		Clock:      NewLogicalClock(time.Unix(0, 0), time.Millisecond),
		Recorders:  []Recorder{NewCSVRecorder(&buf)},
		ServerName: "baseline",
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum
}

// TestDeterministicSmokeCSV is the harness's own regression gate: the
// fixed-seed smoke scenario, run twice against fresh daemons under the
// logical clock, must produce byte-identical CSV output — the request
// stream, cache outcomes, and logical timings are all pure functions of
// the seed.
func TestDeterministicSmokeCSV(t *testing.T) {
	sc, ok := Builtin("smoke")
	if !ok {
		t.Fatal("missing smoke builtin")
	}
	csv1, sum1 := runSmokeOnce(t, sc)
	csv2, sum2 := runSmokeOnce(t, sc)
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("fixed-seed CSV output differs across invocations:\n--- run 1 ---\n%s--- run 2 ---\n%s", csv1, csv2)
	}
	if err := sum1.Check(); err != nil {
		t.Errorf("summary failed its own invariants: %v", err)
	}
	if sum1.Requests != sc.Requests || sum1.OK != sc.Requests {
		t.Errorf("smoke run = %d requests / %d ok, want %d clean successes", sum1.Requests, sum1.OK, sc.Requests)
	}
	if sum1.OK != sum2.OK || sum1.Cache.Hits != sum2.Cache.Hits || sum1.Cache.Misses != sum2.Cache.Misses {
		t.Errorf("summaries disagree across identical runs: %+v vs %+v", sum1, sum2)
	}
	// The logical clock makes even the throughput deterministic.
	if sum1.ThroughputRPS != sum2.ThroughputRPS {
		t.Errorf("logical-clock throughput differs: %v vs %v", sum1.ThroughputRPS, sum2.ThroughputRPS)
	}
}

// TestHitRatioShaping: the key-space shaping converges near the target
// cache-hit ratio once the hot set is warm. Wide tolerance — this is a
// statistical property, not a bit-exact one.
func TestHitRatioShaping(t *testing.T) {
	sc := Scenario{
		Name: "shaping", Seed: 11, Requests: 300,
		Arrival:  ArrivalSpec{Process: "closed", Concurrency: 1},
		Mix:      map[string]float64{"optimize": 1},
		HitRatio: 0.7, KeySpace: 8,
	}
	baseURL, stop, err := StartInProcess(sc, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	sum, err := Run(context.Background(), sc, RunConfig{
		BaseURL: baseURL,
		Clock:   NewLogicalClock(time.Unix(0, 0), time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cache.HitRatio < 0.5 || sum.Cache.HitRatio > 0.85 {
		t.Errorf("realized hit ratio %.3f far from the 0.7 target (hits %d, misses %d)",
			sum.Cache.HitRatio, sum.Cache.Hits, sum.Cache.Misses)
	}
}

// TestOpenLoopShedsUnderPressure: an open-loop burst of cold requests
// against a deliberately tiny admission gate must shed (429 or
// queue-timeout 503) rather than collapse, and the harness must account
// for every request. The logical clock collapses the Poisson gaps, so
// the dispatcher genuinely bursts MaxOutstanding-deep instead of being
// paced by wall-clock timer resolution.
func TestOpenLoopShedsUnderPressure(t *testing.T) {
	sc := Scenario{
		Name: "pressure", Seed: 5, Requests: 60,
		Arrival: ArrivalSpec{Process: "poisson", RateHz: 5000, MaxOutstanding: 32},
		// Expensive cold sensitivity evaluations (~15ms each) hold the
		// single admission slot long enough for later arrivals to pile
		// up at the gate even on a one-core box.
		Mix:      map[string]float64{"sensitivity": 1},
		HitRatio: 0, KeySpace: 1,
		Samples: 20_000,
	}
	baseURL, stop, err := StartInProcess(sc, ServerConfig{
		Name: "tiny", MaxInflight: 1, MaxQueue: 1,
		QueueTimeout: Duration(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	sum, err := Run(context.Background(), sc, RunConfig{
		BaseURL:    baseURL,
		Clock:      NewLogicalClock(time.Unix(0, 0), time.Millisecond),
		ServerName: "tiny",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != sc.Requests {
		t.Fatalf("accounted %d requests, want %d", sum.Requests, sc.Requests)
	}
	if sum.Shed == 0 {
		t.Errorf("no shed responses under a 5kHz cold burst against a 1-slot gate: %+v", sum)
	}
	if sum.OK == 0 {
		t.Errorf("no successes at all — the gate should degrade, not collapse: %+v", sum)
	}
	if got := sum.OK + sum.Shed + sum.DeadlineMiss + sum.InjectedFaults + sum.TransportErrors + sum.OtherErrors; got != sum.Requests {
		t.Errorf("outcome accounting %d != requests %d", got, sum.Requests)
	}
	if sum.ShedRate <= 0 {
		t.Errorf("ShedRate = %v, want > 0", sum.ShedRate)
	}
}

// TestGeneratorDeterminism: the generated stream is a pure function of
// (config, seed) — same seed replays, different seed diverges.
func TestGeneratorDeterminism(t *testing.T) {
	mk := func(seed int64) []genRequest {
		sc := Scenario{
			Name: "g", Seed: seed, Requests: 200,
			Arrival:  ArrivalSpec{Process: "poisson", RateHz: 100},
			Mix:      mixAll(),
			HitRatio: 0.5, KeySpace: 16,
			Deadline: DeadlineSpec{Dist: "uniform", Min: Duration(time.Millisecond), Max: Duration(time.Second)},
		}
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		g := newGenerator(&sc)
		var out []genRequest
		for {
			r, ok := g.next()
			if !ok {
				return out
			}
			out = append(out, r)
		}
	}
	a, b := mk(7), mk(7)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("stream lengths %d, %d, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

// TestMatrixMini runs a tiny 2x2 matrix end to end: every cell must
// produce a self-consistent summary against its own fresh daemon, and
// the chaos cell must exercise the fault injector without producing
// unexpected errors.
func TestMatrixMini(t *testing.T) {
	m := Matrix{
		Scenarios: []Scenario{
			{
				Name: "mini-steady", Seed: 1, Requests: 40,
				Arrival:  ArrivalSpec{Process: "closed", Concurrency: 4},
				Mix:      map[string]float64{"optimize": 3, "sweep": 1, "models": 1},
				HitRatio: 0.5, KeySpace: 8,
			},
			{
				Name: "mini-chaos", Seed: 2, Requests: 40,
				Arrival:  ArrivalSpec{Process: "closed", Concurrency: 4},
				Mix:      map[string]float64{"optimize": 1},
				HitRatio: 0.5, KeySpace: 8,
				Faults:  "seed=3,error=0.2",
				Retries: 3,
			},
		},
		Servers: []ServerConfig{
			{Name: "baseline"},
			{Name: "small", Workers: 1, CacheEntries: 16, MaxInflight: 2, MaxQueue: 2},
		},
	}
	sums, err := RunMatrix(context.Background(), m, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("got %d summaries, want 4", len(sums))
	}
	for _, s := range sums {
		if s.Requests != 40 {
			t.Errorf("cell (%s, %s): %d requests, want 40", s.Scenario, s.Server, s.Requests)
		}
		if s.OK == 0 {
			t.Errorf("cell (%s, %s): no successes", s.Scenario, s.Server)
		}
		if s.TransportErrors != 0 || s.OtherErrors != 0 {
			t.Errorf("cell (%s, %s): unexpected failures in %+v", s.Scenario, s.Server, s)
		}
		if got := s.OK + s.Shed + s.DeadlineMiss + s.InjectedFaults + s.TransportErrors + s.OtherErrors; got != s.Requests {
			t.Errorf("cell (%s, %s): outcomes sum to %d, want %d", s.Scenario, s.Server, got, s.Requests)
		}
	}
	// Retried injected faults mostly recover; the chaos cells must
	// still have seen the injector (clean runs would make the scenario
	// meaningless silently).
	chaosOK := sums[2].OK + sums[3].OK
	if chaosOK == 0 {
		t.Error("chaos cells: no successes despite a 3-attempt retry budget")
	}
}
