package loadgen

import (
	"encoding/json"
	"errors"
	"testing"

	"github.com/calcm/heterosim/internal/engine"
)

// FuzzParseScenario holds the scenario parser to the repo's input
// contract: arbitrary bytes must never panic, every rejection must be a
// status-carrying *engine.Error in the 4xx range (bad config is the
// client's fault, never a 500), and an accepted config must survive a
// marshal/re-parse round trip — the defaults Validate fills in are part
// of the format, not hidden state.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		// The shipped scenarios, as JSON.
		`{"name":"smoke","seed":1,"requests":60,"arrival":{"process":"closed","concurrency":1},"mix":{"optimize":6,"sweep":3,"project":1,"scenario":0.5,"sensitivity":1,"ablation":0.5,"models":0.5},"hitRatio":0.5,"keySpace":8}`,
		`{"name":"burst","seed":2,"requests":400,"arrival":{"process":"poisson","rateHz":2000},"mix":{"optimize":8,"sweep":2},"hitRatio":0.3,"samples":20000}`,
		`{"name":"chaos","requests":300,"arrival":{"process":"closed","concurrency":8},"mix":{"optimize":5},"faults":"seed=7,latency=0.05:5ms,error=0.05","deadline":{"dist":"uniform","min":"5ms","max":"50ms"},"retries":3}`,
		// Shapes the parser must reject without panicking.
		`{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1},"duration":"-5s"}`,
		`{"name":"x","requests":1,"arrival":{"process":"poisson","rateHz":NaN},"mix":{"optimize":1}}`,
		`{"name":"x","requests":1,"arrival":{"process":"poisson","rateHz":1e999},"mix":{"optimize":1}}`,
		`{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"metrics":1}}`,
		`{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":-1}}`,
		`{"name":"x","requests":-1,"arrival":{"process":"closed"},"mix":{"optimize":1}}`,
		`{"name":"a,b","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1}}`,
		`{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1},"deadline":{"dist":"pareto"}}`,
		`{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1},"faults":"error=banana"}`,
		`{"name":"x","requests":1,"arrival":{"process":"closed"},"mix":{"optimize":1},"typo":true}`,
		`{bad`,
		``,
		`null`,
		`[1,2,3]`,
		`"just a string"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			var ee *engine.Error
			if !errors.As(err, &ee) {
				t.Fatalf("rejection %v (input %q) is not an *engine.Error", err, data)
			}
			if ee.Status < 400 || ee.Status >= 500 {
				t.Fatalf("rejection of %q carries status %d, want 4xx", data, ee.Status)
			}
			return
		}
		// Accepted: the validated scenario must re-encode and re-parse
		// to itself.
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted config %q failed to re-marshal: %v", data, err)
		}
		sc2, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("re-parse of %s (from %q) failed: %v", out, data, err)
		}
		if sc2.Name != sc.Name || sc2.Seed != sc.Seed || sc2.Requests != sc.Requests ||
			sc2.Arrival != sc.Arrival || sc2.HitRatio != sc.HitRatio ||
			sc2.KeySpace != sc.KeySpace || sc2.Samples != sc.Samples ||
			sc2.Retries != sc.Retries || sc2.Deadline != sc.Deadline {
			t.Fatalf("round trip drifted:\n  first  %+v\n  second %+v", sc, sc2)
		}
	})
}
