package loadgen

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/calcm/heterosim/internal/engine"
)

// Sample is one completed request as the recorders see it.
type Sample struct {
	Scenario string
	Seq      int
	// OffsetUS is the request's start time relative to the run start,
	// in microseconds of the run's clock.
	OffsetUS int64
	Endpoint string
	Key      int64
	// DeadlineUS is the client-side budget (0 = none).
	DeadlineUS int64
	// Status is the final HTTP status (0 when no response arrived).
	Status int
	// Cache is the X-Heterosim-Cache outcome of the final attempt
	// (hit/miss/coalesced/stale; empty for uncached endpoints).
	Cache string
	// Fault is the X-Fault-Injected marker when the chaos middleware
	// answered instead of the server.
	Fault string
	// Attempts counts wire attempts the client made (>= 1).
	Attempts int
	// LatencyUS is the request latency in microseconds of the run's
	// clock (logical ticks under the deterministic clock).
	LatencyUS int64
	// Err classifies the final error: "" (success), "api" (terminal
	// 4xx), "retry" (budget exhausted), "transport", or "deadline".
	Err string
}

// Recorder observes every completed request. Record may be called
// concurrently; Flush is called once, after the run, with samples
// guaranteed complete.
type Recorder interface {
	Record(s Sample)
	Flush() error
}

// csvHeader is the pinned per-request time-series schema. Changing it
// breaks the golden test on purpose: downstream analysis scripts parse
// these columns.
const csvHeader = "scenario,seq,offset_us,endpoint,key,deadline_us,status,cache,fault,attempts,latency_us,error"

// csvRow formats one sample in header order.
func csvRow(s Sample) string {
	return strings.Join([]string{
		s.Scenario,
		strconv.Itoa(s.Seq),
		strconv.FormatInt(s.OffsetUS, 10),
		s.Endpoint,
		strconv.FormatInt(s.Key, 10),
		strconv.FormatInt(s.DeadlineUS, 10),
		strconv.Itoa(s.Status),
		s.Cache,
		s.Fault,
		strconv.Itoa(s.Attempts),
		strconv.FormatInt(s.LatencyUS, 10),
		s.Err,
	}, ",")
}

// CSVRecorder writes the per-request time series. Samples are buffered
// and emitted in sequence order at Flush, so concurrent runs still
// produce a stable row order (column values then differ only where the
// measurement does).
type CSVRecorder struct {
	w io.Writer

	mu      sync.Mutex
	samples []Sample
}

// NewCSVRecorder buffers samples for w.
func NewCSVRecorder(w io.Writer) *CSVRecorder { return &CSVRecorder{w: w} }

// Record buffers one sample.
func (r *CSVRecorder) Record(s Sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

// Flush writes the header and every sample in sequence order.
func (r *CSVRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i].Seq < r.samples[j].Seq })
	var b strings.Builder
	b.WriteString(csvHeader)
	b.WriteByte('\n')
	for _, s := range r.samples {
		b.WriteString(csvRow(s))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(r.w, b.String())
	return err
}

// CacheRatios is the cache section of a Summary, from the server's
// /metrics counters (deltas across the run when the harness owns the
// server, best-effort totals otherwise).
type CacheRatios struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	StaleServed int64 `json:"staleServed"`
	// HitRatio is hits / (hits + misses) over the run.
	HitRatio float64 `json:"hitRatio"`
	// CoalesceRatio is coalesced / (hits + misses + coalesced).
	CoalesceRatio float64 `json:"coalesceRatio"`
}

// Summary reduces one scenario run to the scoreboard numbers BENCH_8
// tracks. All latencies are quantiles over successful requests, in the
// run clock's microseconds.
type Summary struct {
	Scenario string `json:"scenario"`
	Server   string `json:"server,omitempty"`
	Seed     int64  `json:"seed"`

	Requests        int `json:"requests"`
	OK              int `json:"ok"`
	Shed            int `json:"shed"`         // 429 + 503
	DeadlineMiss    int `json:"deadlineMiss"` // 504 + client-side deadline expiry
	InjectedFaults  int `json:"injectedFaults"`
	TransportErrors int `json:"transportErrors"`
	OtherErrors     int `json:"otherErrors"` // anything not accounted above

	DurationMS    float64 `json:"durationMs"`
	ThroughputRPS float64 `json:"throughputRps"`

	LatencyP50US   int64 `json:"latencyP50Us"`
	LatencyP99US   int64 `json:"latencyP99Us"`
	LatencyMaxUS   int64 `json:"latencyMaxUs"`
	LatencySamples int   `json:"latencySamples"`

	ShedRate         float64 `json:"shedRate"`
	DeadlineMissRate float64 `json:"deadlineMissRate"`

	Cache CacheRatios `json:"cache"`
}

// Check holds a summary to the harness invariants the CI smoke asserts:
// the run issued requests, moved traffic, accounted for every request,
// and saw no unexpected failures (shed and deadline misses are expected
// degradation modes; injected faults are expected when a fault spec was
// active; transport/other errors are not).
func (s Summary) Check() error {
	if s.Requests <= 0 {
		return engine.BadRequest("summary: no requests issued")
	}
	if s.ThroughputRPS <= 0 {
		return engine.BadRequest("summary: throughput is %v rps, want > 0", s.ThroughputRPS)
	}
	if s.OK <= 0 {
		return engine.BadRequest("summary: no successful requests")
	}
	sum := s.OK + s.Shed + s.DeadlineMiss + s.InjectedFaults + s.TransportErrors + s.OtherErrors
	if sum != s.Requests {
		return engine.BadRequest("summary: outcomes sum to %d, want requests = %d", sum, s.Requests)
	}
	if s.TransportErrors != 0 {
		return engine.BadRequest("summary: %d transport errors", s.TransportErrors)
	}
	if s.OtherErrors != 0 {
		return engine.BadRequest("summary: %d unexpected errors", s.OtherErrors)
	}
	return nil
}

// summarizer accumulates the Summary during a run.
type summarizer struct {
	mu        sync.Mutex
	latencies []int64
	s         Summary
}

func (a *summarizer) Record(s Sample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.s.Requests++
	switch {
	case s.Err == "" && s.Status == 200:
		a.s.OK++
		a.latencies = append(a.latencies, s.LatencyUS)
	case s.Err == "deadline" || s.Status == 504:
		a.s.DeadlineMiss++
	case s.Status == 429 || s.Status == 503:
		if s.Fault != "" {
			a.s.InjectedFaults++
		} else {
			a.s.Shed++
		}
	case s.Fault != "":
		a.s.InjectedFaults++
	case s.Err == "transport":
		a.s.TransportErrors++
	default:
		a.s.OtherErrors++
	}
}

func (a *summarizer) Flush() error { return nil }

// quantile returns the q-quantile of sorted latencies (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// summary finalizes the accumulated counters over the run duration.
func (a *summarizer) summary(sc *Scenario, elapsedUS int64, cache CacheRatios) Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.s
	s.Scenario = sc.Name
	s.Seed = sc.Seed
	s.Cache = cache
	sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
	s.LatencySamples = len(a.latencies)
	s.LatencyP50US = quantile(a.latencies, 0.50)
	s.LatencyP99US = quantile(a.latencies, 0.99)
	if n := len(a.latencies); n > 0 {
		s.LatencyMaxUS = a.latencies[n-1]
	}
	s.DurationMS = float64(elapsedUS) / 1e3
	if elapsedUS > 0 {
		s.ThroughputRPS = float64(s.Requests) / (float64(elapsedUS) / 1e6)
	}
	if s.Requests > 0 {
		s.ShedRate = float64(s.Shed) / float64(s.Requests)
		s.DeadlineMissRate = float64(s.DeadlineMiss) / float64(s.Requests)
	}
	return s
}

// ratios derives the summary ratios from raw counter deltas.
func ratios(hits, misses, coalesced, stale int64) CacheRatios {
	c := CacheRatios{Hits: hits, Misses: misses, Coalesced: coalesced, StaleServed: stale}
	if looked := hits + misses; looked > 0 {
		c.HitRatio = float64(hits) / float64(looked)
	}
	if all := hits + misses + coalesced; all > 0 {
		c.CoalesceRatio = float64(coalesced) / float64(all)
	}
	return c
}

// FormatSummaries renders summaries as the aligned text table the CLI
// prints after a run.
func FormatSummaries(w io.Writer, sums []Summary) {
	fmt.Fprintf(w, "%-14s %-12s %8s %8s %6s %6s %9s %10s %10s %7s\n",
		"scenario", "server", "requests", "ok", "shed", "dlmiss", "thr(rps)", "p50(us)", "p99(us)", "hit%")
	for _, s := range sums {
		fmt.Fprintf(w, "%-14s %-12s %8d %8d %6d %6d %9.1f %10d %10d %6.1f%%\n",
			s.Scenario, s.Server, s.Requests, s.OK, s.Shed, s.DeadlineMiss,
			s.ThroughputRPS, s.LatencyP50US, s.LatencyP99US, s.Cache.HitRatio*100)
	}
}
