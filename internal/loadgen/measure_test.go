package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMeasureBench8 regenerates BENCH_8.json at the repo root: the
// shipped measurement scenarios (steady-mixed, burst-open, chaos-faults)
// against the baseline and constrained server configurations, each cell
// a fresh in-process daemon driven through internal/client on the wall
// clock. Gated behind HETEROSIM_MEASURE=1 because it is a measurement,
// not a regression check:
//
//	HETEROSIM_MEASURE=1 go test -run MeasureBench8 -v ./internal/loadgen/
func TestMeasureBench8(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") == "" {
		t.Skip("set HETEROSIM_MEASURE=1 to regenerate BENCH_8.json")
	}
	m := DefaultMatrix()
	sums, err := RunMatrix(t.Context(), m, MatrixOptions{Progress: os.Stderr})
	if err != nil {
		t.Fatal(err)
	}
	// Measurement cells must still be self-consistent: every request
	// accounted for, traffic moved, no transport-level failures. Shed
	// and deadline misses are the point of the overload cells, not a
	// failure.
	for _, s := range sums {
		if err := s.Check(); err != nil {
			t.Errorf("cell (%s, %s): %v", s.Scenario, s.Server, err)
		}
	}
	doc := NewBenchDoc(m, sums)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_8.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cells)", path, len(sums))
}

// TestMeasureBench9 regenerates BENCH_9.json at the repo root: the
// non-fault measurement scenarios at one and three nodes, each cell a
// fresh peer-aware cluster driven through the pick-first/failover
// client on the wall clock, with cluster-wide cache ratios. Gated
// behind HETEROSIM_MEASURE=1 because it is a measurement, not a
// regression check:
//
//	HETEROSIM_MEASURE=1 go test -run MeasureBench9 -v ./internal/loadgen/
func TestMeasureBench9(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") == "" {
		t.Skip("set HETEROSIM_MEASURE=1 to regenerate BENCH_9.json")
	}
	m := DefaultClusterMatrix()
	sums, err := RunClusterMatrix(t.Context(), m, MatrixOptions{Progress: os.Stderr})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if err := s.Check(); err != nil {
			t.Errorf("cell (%s, %s): %v", s.Scenario, s.Server, err)
		}
	}
	doc := NewClusterBenchDoc(m, sums)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_9.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cells)", path, len(sums))
}
