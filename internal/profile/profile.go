// Package profile implements the paper's principal future-work direction
// (Section 7): modeling applications with *varying degrees of
// parallelism* rather than a single serial/parallel split, in the spirit
// of Moncrieff et al.'s heterogeneous-machine analysis.
//
// A Profile decomposes a task into weighted phases, each with a maximum
// exploitable parallelism width: the number of independent work streams
// the phase exposes. Width-1 phases run on the sequential core at Pollack
// performance sqrt(r); wider phases run on the chip's parallel fabric but
// engage at most width worth of resources — extra U-cores beyond a
// phase's width are wasted. On a U-core each engaged stream runs mu times
// faster than on a BCE (the custom-logic/FPGA "pipeline a stream" view of
// Section 6.3), so width-limited phases value U-cores *more* than
// infinitely parallel ones, where the CMP can also soak the whole chip —
// exactly the "suitability" effect the paper wants future models to
// capture.
package profile

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
)

// Phase is one segment of execution.
type Phase struct {
	// Weight is the fraction of baseline (1-BCE) execution time spent in
	// the phase. Weights across a profile sum to 1.
	Weight float64
	// Width is the maximum number of BCE-equivalent workers the phase can
	// keep busy; 1 means purely sequential, +Inf fully parallel.
	Width float64
}

// Profile is a set of phases. The zero value is invalid; use New.
type Profile struct {
	phases []Phase
}

// New validates and builds a profile. Weights must be positive and sum
// to 1 (within 1e-9); widths must be >= 1.
func New(phases ...Phase) (Profile, error) {
	if len(phases) == 0 {
		return Profile{}, errors.New("profile: at least one phase required")
	}
	var sum float64
	for i, p := range phases {
		if p.Weight <= 0 || math.IsNaN(p.Weight) {
			return Profile{}, fmt.Errorf("profile: phase %d weight must be positive", i)
		}
		if p.Width < 1 || math.IsNaN(p.Width) {
			return Profile{}, fmt.Errorf("profile: phase %d width must be >= 1", i)
		}
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		return Profile{}, fmt.Errorf("profile: weights sum to %g, want 1", sum)
	}
	cp := make([]Phase, len(phases))
	copy(cp, phases)
	return Profile{phases: cp}, nil
}

// TwoPhase builds the classic Amdahl profile: 1-f sequential, f with the
// given parallel width.
func TwoPhase(f, width float64) (Profile, error) {
	if f <= 0 || f >= 1 {
		return Profile{}, errors.New("profile: f must be in (0, 1) for a two-phase profile")
	}
	return New(Phase{Weight: 1 - f, Width: 1}, Phase{Weight: f, Width: width})
}

// Phases returns a copy of the phases.
func (p Profile) Phases() []Phase {
	out := make([]Phase, len(p.phases))
	copy(out, p.phases)
	return out
}

// SerialFraction returns the total weight of width-1 phases.
func (p Profile) SerialFraction() float64 {
	var s float64
	for _, ph := range p.phases {
		if ph.Width == 1 {
			s += ph.Weight
		}
	}
	return s
}

// AmdahlEquivalentF collapses the profile to the two-phase f the original
// model would use: everything with width > 1 counts as parallel. This is
// the information the richer profile preserves and the scalar f loses.
func (p Profile) AmdahlEquivalentF() float64 {
	return 1 - p.SerialFraction()
}

// SpeedupHeterogeneous evaluates the profile on a heterogeneous chip with
// n total BCE resources, sequential core size r, and U-core u. Each
// parallel phase runs at mu x min(width, n-r); sequential phases run at
// sqrt(r). Speedup is relative to one BCE executing the whole profile.
func (p Profile) SpeedupHeterogeneous(n, r float64, u bounds.UCore) (float64, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	return p.speedup(n, r, func(width, avail float64) float64 {
		return u.Mu * math.Min(width, avail)
	})
}

// SpeedupAsymmetricOffload evaluates the profile on the CMP baseline:
// parallel phases run on min(width, n-r) BCE cores.
func (p Profile) SpeedupAsymmetricOffload(n, r float64) (float64, error) {
	return p.speedup(n, r, math.Min)
}

func (p Profile) speedup(n, r float64, parallelThroughput func(width, avail float64) float64) (float64, error) {
	if len(p.phases) == 0 {
		return 0, errors.New("profile: empty profile")
	}
	if n <= 0 || r < 1 || r > n || math.IsNaN(n) || math.IsNaN(r) {
		return 0, errors.New("profile: need n > 0 and 1 <= r <= n")
	}
	seqPerf := math.Sqrt(r)
	avail := n - r
	var time float64
	for _, ph := range p.phases {
		if ph.Width == 1 {
			time += ph.Weight / seqPerf
			continue
		}
		if avail <= 0 {
			return 0, errors.New("profile: no parallel resources (n == r) for a parallel phase")
		}
		thr := parallelThroughput(ph.Width, avail)
		if thr <= 0 {
			return 0, errors.New("profile: non-positive parallel throughput")
		}
		time += ph.Weight / thr
	}
	return 1 / time, nil
}

// Suitability compares a HET against the CMP baseline over the profile:
// the ratio of their best speedups. Values > 1 mean the U-core's extra
// throughput survives the profile's limited widths.
func Suitability(p Profile, n float64, maxR int, u bounds.UCore) (float64, error) {
	if maxR < 1 {
		return 0, errors.New("profile: maxR must be >= 1")
	}
	bestHet, bestCMP := 0.0, 0.0
	var lastErr error
	for r := 1; r <= maxR && float64(r) <= n; r++ {
		if h, err := p.SpeedupHeterogeneous(n, float64(r), u); err == nil && h > bestHet {
			bestHet = h
		} else if err != nil {
			lastErr = err
		}
		if c, err := p.SpeedupAsymmetricOffload(n, float64(r)); err == nil && c > bestCMP {
			bestCMP = c
		} else if err != nil {
			lastErr = err
		}
	}
	if bestHet == 0 || bestCMP == 0 {
		return 0, fmt.Errorf("profile: no feasible design: %v", lastErr)
	}
	return bestHet / bestCMP, nil
}
