package profile

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/calcm/heterosim/internal/amdahl"
	"github.com/calcm/heterosim/internal/bounds"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty profile must fail")
	}
	if _, err := New(Phase{Weight: 0.5, Width: 1}); err == nil {
		t.Error("weights not summing to 1 must fail")
	}
	if _, err := New(Phase{Weight: -1, Width: 1}, Phase{Weight: 2, Width: 4}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := New(Phase{Weight: 1, Width: 0.5}); err == nil {
		t.Error("width < 1 must fail")
	}
	p, err := New(Phase{Weight: 0.3, Width: 1}, Phase{Weight: 0.7, Width: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SerialFraction(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("SerialFraction = %g", got)
	}
	if got := p.AmdahlEquivalentF(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("AmdahlEquivalentF = %g", got)
	}
}

func TestTwoPhase(t *testing.T) {
	p, err := TwoPhase(0.9, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases()) != 2 {
		t.Fatal("two phases expected")
	}
	if _, err := TwoPhase(0, 4); err == nil {
		t.Error("f=0 must fail")
	}
	if _, err := TwoPhase(1, 4); err == nil {
		t.Error("f=1 must fail")
	}
}

// With unlimited width, the profile model reduces exactly to the paper's
// heterogeneous speedup formula.
func TestReducesToHeterogeneousFormula(t *testing.T) {
	u := bounds.UCore{Mu: 2.88, Phi: 0.63} // GTX285 FFT-1024
	for _, f := range []float64{0.5, 0.9, 0.99} {
		p, err := TwoPhase(f, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.SpeedupHeterogeneous(19, 2, u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := amdahl.SpeedupHeterogeneous(f, 19, 2, u.Mu)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got/want-1) > 1e-12 {
			t.Errorf("f=%g: profile %g != formula %g", f, got, want)
		}
	}
}

func TestReducesToOffloadFormula(t *testing.T) {
	p, err := TwoPhase(0.9, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SpeedupAsymmetricOffload(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := amdahl.SpeedupAsymmetricOffload(0.9, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got/want-1) > 1e-12 {
		t.Errorf("profile %g != formula %g", got, want)
	}
}

// Limited width caps the benefit: a phase with width 4 cannot use more
// than 4 units no matter how many U-cores exist.
func TestWidthCapsThroughput(t *testing.T) {
	u := bounds.UCore{Mu: 10, Phi: 1}
	p, err := New(Phase{Weight: 0.5, Width: 1}, Phase{Weight: 0.5, Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	small, err := p.SpeedupHeterogeneous(8, 1, u)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := p.SpeedupHeterogeneous(10000, 1, u)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond width 4 more area is useless: n=8 already provides 7 >= 4.
	if math.Abs(huge/small-1) > 1e-12 {
		t.Errorf("width-capped speedup grew with area: %g vs %g", small, huge)
	}
	// The capped throughput is mu*width for the parallel phase.
	want := 1 / (0.5/1 + 0.5/(10*4))
	if math.Abs(small-want) > 1e-9 {
		t.Errorf("speedup = %g, want %g", small, want)
	}
}

func TestSpeedupValidation(t *testing.T) {
	p, _ := TwoPhase(0.5, 8)
	u := bounds.UCore{Mu: 2, Phi: 1}
	if _, err := p.SpeedupHeterogeneous(0, 1, u); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := p.SpeedupHeterogeneous(4, 5, u); err == nil {
		t.Error("r > n must fail")
	}
	if _, err := p.SpeedupHeterogeneous(4, 4, u); err == nil {
		t.Error("no parallel resources with parallel phase must fail")
	}
	if _, err := p.SpeedupHeterogeneous(8, 1, bounds.UCore{}); err == nil {
		t.Error("invalid U-core must fail")
	}
	if _, err := (Profile{}).SpeedupAsymmetricOffload(8, 1); err == nil {
		t.Error("zero-value profile must fail")
	}
}

// The headline insight the extension captures: two applications with the
// same Amdahl-equivalent f but different width profiles value a U-core
// very differently. Under the stream-pipelining semantics, a width-
// limited phase benefits *more* from a U-core (each of its few streams
// runs mu times faster) than an infinitely wide phase, where the CMP can
// also soak the whole chip with BCEs.
func TestSameFDifferentSuitability(t *testing.T) {
	u := bounds.UCore{Mu: 27.4, Phi: 0.79} // ASIC MMM
	wide, err := New(Phase{Weight: 0.1, Width: 1}, Phase{Weight: 0.9, Width: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := New(Phase{Weight: 0.1, Width: 1}, Phase{Weight: 0.9, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wide.AmdahlEquivalentF() != narrow.AmdahlEquivalentF() {
		t.Fatal("profiles must share the equivalent f")
	}
	sWide, err := Suitability(wide, 64, 16, u)
	if err != nil {
		t.Fatal(err)
	}
	sNarrow, err := Suitability(narrow, 64, 16, u)
	if err != nil {
		t.Fatal(err)
	}
	if sNarrow <= sWide {
		t.Errorf("narrow profile suitability %g should exceed wide %g", sNarrow, sWide)
	}
	if sWide < 1 {
		t.Errorf("U-core should never lose to the CMP on equal footing: %g", sWide)
	}
	// The scalar f cannot distinguish the two profiles; the profile model
	// can — the distinction the paper's future-work section asks for.
	fWide, err := amdahl.SpeedupHeterogeneous(wide.AmdahlEquivalentF(), 64, 2, u.Mu)
	if err != nil {
		t.Fatal(err)
	}
	fNarrow, err := amdahl.SpeedupHeterogeneous(narrow.AmdahlEquivalentF(), 64, 2, u.Mu)
	if err != nil {
		t.Fatal(err)
	}
	if fWide != fNarrow {
		t.Error("scalar-f model should be blind to width profiles")
	}
}

func TestSuitabilityValidation(t *testing.T) {
	p, _ := TwoPhase(0.9, 8)
	u := bounds.UCore{Mu: 2, Phi: 1}
	if _, err := Suitability(p, 64, 0, u); err == nil {
		t.Error("maxR < 1 must fail")
	}
}

func TestPhasesDefensiveCopy(t *testing.T) {
	p, _ := TwoPhase(0.5, 8)
	ph := p.Phases()
	ph[0].Weight = 99
	if p.Phases()[0].Weight == 99 {
		t.Error("Phases leaked internal storage")
	}
}

// Property: speedup is monotone in every phase's width.
func TestPropMonotoneInWidth(t *testing.T) {
	u := bounds.UCore{Mu: 5, Phi: 0.5}
	prop := func(seedW, seedF float64) bool {
		w := 1 + math.Mod(math.Abs(seedW), 100)
		f := 0.1 + math.Mod(math.Abs(seedF), 0.8)
		p1, err := TwoPhase(f, w)
		if err != nil {
			return false
		}
		p2, err := TwoPhase(f, w*2)
		if err != nil {
			return false
		}
		s1, err1 := p1.SpeedupHeterogeneous(64, 2, u)
		s2, err2 := p2.SpeedupHeterogeneous(64, 2, u)
		return err1 == nil && err2 == nil && s2 >= s1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
