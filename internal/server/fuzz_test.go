package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fuzzEndpoint is the shared harness: POST the fuzzed body and hold the
// handler to the error contract — it must never panic, never answer a
// malformed or absurd request with a 5xx (bad input is the client's
// fault: 400 for shape errors, 422 for infeasible-but-well-formed), and
// must always produce valid JSON.
func fuzzEndpoint(f *testing.F, path string, seeds []string) {
	f.Helper()
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	s, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity:
		default:
			t.Fatalf("%s: body %q got status %d (%s)", path, body, rec.Code, rec.Body.String())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s: body %q got non-JSON response %q", path, body, rec.Body.String())
		}
	})
}

func FuzzOptimize(f *testing.F) {
	fuzzEndpoint(f, "/v1/optimize", []string{
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`,
		`{"workload":"BS","f":0.99,"design":{"kind":"het","device":"asic"},"objective":"energy"}`,
		`{"workload":"MMM","f":0.9,"budgets":{"area":-1e308,"power":0,"bandwidth":1e308},"design":{"kind":"het","device":"gtx480"}}`,
		`{"workload":"MMM","f":NaN,"design":{"kind":"sym"}}`,
		`{"workload":"MMM","f":1e999,"design":{"kind":"sym"}}`,
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"typo":1}`,
		`{bad`,
		``,
		`null`,
		`[1,2,3]`,
	})
}

func FuzzSweep(f *testing.F) {
	fuzzEndpoint(f, "/v1/sweep", []string{
		`{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0.5,"hi":0.9,"steps":3}}`,
		`{"workload":"BS","design":{"kind":"het","device":"gtx285"},"f":{"values":[0.9,0.99]},"areaScale":{"lo":0.5,"hi":2,"steps":4}}`,
		`{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0,"hi":1,"steps":2000000}}`,
		`{"workload":"MMM","design":{"kind":"sym"},"f":{"steps":-5}}`,
		`{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0.9,"hi":0.1,"steps":3}}`,
		`{"f":{}}`,
		`{bad`,
		`0`,
	})
}

func FuzzProject(f *testing.F) {
	fuzzEndpoint(f, "/v1/project", []string{
		`{"workload":"MMM","f":0.9}`,
		`{"workload":"FFT-1024","f":0.99,"scenario":3,"objective":"energy"}`,
		`{"workload":"MMM","f":0.9,"power":-1e308,"bandwidth":1e308}`,
		`{"workload":"MMM","f":2}`,
		`{"workload":"MMM","f":0.9,"scenario":999}`,
		`{"workload":"MMM","f":0.9,"workers":-2147483648}`,
		`{bad`,
		`"a string"`,
	})
}

func FuzzSensitivity(f *testing.F) {
	fuzzEndpoint(f, "/v1/sensitivity", []string{
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"samples":50}`,
		`{"workload":"FFT-1024","f":0.99,"node":"22nm","design":{"kind":"het","device":"ASIC"},"samples":20,"seed":-9223372036854775808}`,
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"step":0.49999999,"sigma":2,"samples":10}`,
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"step":-1}`,
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"sigma":1e308}`,
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"samples":100001}`,
		`{"workload":"MMM","f":0.9,"design":{"kind":"het","mu":1e-308,"phi":1e308},"samples":10}`,
		`{bad`,
		`{}`,
	})
}

func FuzzAblation(f *testing.F) {
	fuzzEndpoint(f, "/v1/ablation", []string{
		`{"workload":"MMM","f":0.9,"node":"40nm"}`,
		`{"workload":"FFT-1024","f":0.999}`,
		`{"workload":"BS","f":0.9,"node":"11nm","workers":-1}`,
		`{"workload":"MMM","f":0.9,"node":"1nm"}`,
		`{"workload":"MMM","f":1e-300}`,
		`{"workload":"MMM","f":0.9,"node":""}`,
		`{bad`,
		`[]`,
	})
}

func FuzzCompare(f *testing.F) {
	fuzzEndpoint(f, "/v1/compare", []string{
		`{"workload":"MMM","f":0.9,"pairs":[{"scenario":1},{"scenario":2}]}`,
		`{"workload":"FFT-1024","f":0.99,"model":"sqrtm","pairs":[{"scenario":0}]}`,
		`{"workload":"MMM","f":NaN,"pairs":[{"scenario":1}]}`,
		`{"workload":"MMM","f":0.9,"pairs":[]}`,
		`{"workload":"MMM","f":0.9,"pairs":[{"scenario":99}]}`,
		`{"workload":"MMM","f":0.9,"pairs":[{"scenario":3},{"scenario":3}]}`,
		`{"workload":"MMM","f":0.9,"model":"sqrtm","pairs":[{"scenario":3},{"scenario":3,"model":"sqrtm"}]}`,
		`{"workload":"MMM","f":0.9,"pairs":[{"scenario":1,"model":"nope","modelParams":{"x":1}}]}`,
		`{bad`,
		`{}`,
	})
}

// FuzzFrontier is the NDJSON-aware variant of the shared harness: the
// stream endpoint's error contract is the same (no panics, no 5xx for
// bad input), but a 200 body is a sequence of JSON lines, each of
// which must decode, not one document.
func FuzzFrontier(f *testing.F) {
	for _, s := range []string{
		`{"workload":"MMM","f":0.9,"scenario":1}`,
		`{"workload":"FFT-1024","f":0.99,"scenario":0,"model":"multiamdahl-thermal"}`,
		`{"workload":"MMM","f":NaN,"scenario":1}`,
		`{"workload":"MMM","f":0.9,"scenario":9}`,
		`{"workload":"nope","f":0.9}`,
		`{"workload":"MMM","f":0.9,"model":"nope"}`,
		`{"workload":"MMM","f":0.9,"workers":-2147483648}`,
		`{bad`,
		`{}`,
	} {
		f.Add([]byte(s))
	}
	s, err := New(Config{})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/frontier/stream", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			for i, line := range strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n") {
				if !json.Valid([]byte(line)) {
					t.Fatalf("body %q: stream line %d is not JSON: %q", body, i, line)
				}
			}
		case http.StatusBadRequest, http.StatusUnprocessableEntity:
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("body %q got non-JSON error response %q", body, rec.Body.String())
			}
		default:
			t.Fatalf("body %q got status %d (%s)", body, rec.Code, rec.Body.String())
		}
	})
}

func FuzzScenario(f *testing.F) {
	fuzzEndpoint(f, "/v1/scenario", []string{
		`{"scenario":1,"workload":"MMM","f":0.9}`,
		`{"scenario":6,"workload":"BS","f":0.999}`,
		`{"scenario":0,"workload":"MMM","f":0.9}`,
		`{"scenario":7,"workload":"MMM","f":0.9}`,
		`{"scenario":1,"workload":"nope","f":0.9}`,
		`{"scenario":1,"workload":"MMM","f":-0.5}`,
		`{bad`,
		`{}`,
	})
}
