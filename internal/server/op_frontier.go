package server

import (
	"context"
	"encoding/json"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/scenario"
)

// POST /v1/frontier/stream — the paper's core artifact as a stream:
// the design frontier (every design in the workload's lineup) emitted
// node-by-node across the ITRS roadmap, under any Section 6.2 scenario
// and model backend. One header line (identity + lineup), one line per
// roadmap node with every design's point at that node, one trailer
// line carrying the crossover summary. The roadmap is five nodes, so
// unlike the sweep the window is the whole projection; the stream
// shape exists because it is the natural wire form of a trajectory —
// an interactive frontend draws the frontier a node at a time — and
// because /v1/compare's per-node rows reuse exactly these frames
// (TestFrontierMatchesCompareRows pins the bytes).

// FrontierRequest selects one trajectory set: a workload at parallel
// fraction f, optionally under a scenario transform (0 = baseline) and
// a model backend.
type FrontierRequest struct {
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Scenario    int             `json:"scenario,omitempty"` // 0-6, 0 = baseline
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
	Workers     int             `json:"workers,omitempty"`
}

// FrontierPointJSON is one design's sample inside a frontier row. It
// carries the design identity inline (unlike NodePointJSON, whose
// trajectory provides it), because a row is node-major: all designs at
// one node.
type FrontierPointJSON struct {
	Label      string  `json:"label"`
	Kind       string  `json:"kind"`
	Valid      bool    `json:"valid"`
	R          int     `json:"r,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Limit      string  `json:"limit,omitempty"`
	EnergyNode float64 `json:"energyNode,omitempty"`
}

// FrontierRowJSON is one NDJSON row: the whole design frontier at one
// roadmap node. Best names the fastest valid design, empty when the
// node supports nothing.
type FrontierRowJSON struct {
	Node   string              `json:"node"`
	Points []FrontierPointJSON `json:"points"`
	Best   string              `json:"best,omitempty"`
}

// FrontierStreamHeader is the first NDJSON line: the trajectory set's
// identity. Model names the backend only for non-default requests.
type FrontierStreamHeader struct {
	Workload string   `json:"workload"`
	F        float64  `json:"f"`
	Scenario int      `json:"scenario"`
	Name     string   `json:"name"` // scenario name, "baseline" for 0
	Nodes    []string `json:"nodes"`
	Designs  []string `json:"designs"`
	Model    string   `json:"model,omitempty"`
}

// FrontierStreamTrailer is the last NDJSON line: the row count (a
// completeness check — a stream without it is truncated) plus the
// crossover summary over the emitted set.
type FrontierStreamTrailer struct {
	Nodes      int             `json:"nodes"`
	Crossovers []CrossoverJSON `json:"crossovers"`
}

// CrossoverJSON is one scenario.Crossover on the wire. An absent node
// means the design never overtakes within the roadmap; the pair is
// still listed, so "never" is an answer, not a gap.
type CrossoverJSON struct {
	Design string `json:"design"`
	Over   string `json:"over"`
	Node   string `json:"node,omitempty"`
}

// frontierRows pivots a trajectory set (design-major) into wire rows
// (node-major), computing each node's best valid design by strict
// comparison in lineup order — ties break to the earliest design, at
// every worker count.
func frontierRows(ts []project.Trajectory) []FrontierRowJSON {
	if len(ts) == 0 {
		return nil
	}
	rows := make([]FrontierRowJSON, 0, len(ts[0].Points))
	for n := range ts[0].Points {
		row := FrontierRowJSON{Node: ts[0].Points[n].Node.Name}
		best := 0.0
		for _, t := range ts {
			p := t.Points[n]
			fp := FrontierPointJSON{Label: t.Design.Label, Kind: t.Design.Kind.String(), Valid: p.Valid}
			if p.Valid {
				fp.R = p.Point.R
				fp.Speedup = p.Point.Speedup
				fp.Limit = p.Point.Limit.String()
				fp.EnergyNode = p.EnergyNode
				if p.Point.Speedup > best {
					best = p.Point.Speedup
					row.Best = t.Design.Label
				}
			}
			row.Points = append(row.Points, fp)
		}
		rows = append(rows, row)
	}
	return rows
}

// crossoverJSON converts the analysis-layer crossovers to wire form.
func crossoverJSON(cs []scenario.Crossover) []CrossoverJSON {
	out := make([]CrossoverJSON, 0, len(cs))
	for _, c := range cs {
		out = append(out, CrossoverJSON{Design: c.Design, Over: c.Over, Node: c.Node})
	}
	return out
}

// streamFrontier is the frontier's streaming op; it owns its route (no
// buffered form — /v1/compare is the buffered trajectory surface).
var streamFrontier = engine.NewStream("frontier", "/v1/frontier/stream", buildFrontierStream)

func buildFrontierStream(req *FrontierRequest, env engine.Env) (engine.StreamFunc, error) {
	if req.Scenario < 0 || req.Scenario > 6 {
		return nil, badRequest("scenario must be 0-6, got %d", req.Scenario)
	}
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if err := engine.CheckF(req.F); err != nil {
		return nil, err
	}
	sc, err := scenario.Get(scenario.ID(req.Scenario))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	mk, err := resolveModelFactory(&req.Model, &req.ModelParams, env)
	if err != nil {
		return nil, err
	}
	workers := workersOr(&req.Workers, env)
	return func(ctx context.Context, e engine.StreamEmitter) error {
		ts, err := scenario.RunModelCtx(ctx, sc, w, req.F, workers, mk)
		if err != nil {
			return evalFailure(err, unprocessable)
		}
		rows := frontierRows(ts)
		hdr := FrontierStreamHeader{
			Workload: req.Workload,
			F:        req.F,
			Scenario: req.Scenario,
			Name:     sc.Name,
			Model:    req.Model,
		}
		for _, row := range rows {
			hdr.Nodes = append(hdr.Nodes, row.Node)
		}
		for _, t := range ts {
			hdr.Designs = append(hdr.Designs, t.Design.Label)
		}
		line, err := json.Marshal(hdr)
		if err != nil {
			return err
		}
		if err := e.Emit(line); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		for i := range rows {
			if err := ctx.Err(); err != nil {
				return err
			}
			line, err := json.Marshal(rows[i])
			if err != nil {
				return err
			}
			if err := e.Emit(line); err != nil {
				return err
			}
			// One flush per node: the frontier draws itself a node at a
			// time on the far end.
			if err := e.Flush(); err != nil {
				return err
			}
		}
		trailer, err := json.Marshal(FrontierStreamTrailer{
			Nodes:      len(rows),
			Crossovers: crossoverJSON(scenario.Crossovers(ts)),
		})
		if err != nil {
			return err
		}
		return e.Emit(trailer)
	}, nil
}
