package server

import (
	"encoding/json"
	"os"
	"testing"
)

// benchCompareBody is a two-pair compare: each pair is two full roadmap
// projections, so cold latency here is the most expensive buffered
// operation in the registry.
const benchCompareBody = `{"workload":"FFT-1024","f":0.99,"pairs":[{"scenario":1},{"scenario":2}]}`

// benchFrontierBody is the frontier stream's request: one trajectory
// set, streamed node-by-node, never cached.
const benchFrontierBody = `{"workload":"FFT-1024","f":0.99,"scenario":2}`

func BenchmarkCompareCold(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/compare", benchCompareBody)
	}
}

func BenchmarkCompareCached(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/compare", benchCompareBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/compare", benchCompareBody)
	}
}

// BenchmarkFrontierStream measures one full frontier stream through
// the generic NDJSON pipeline. There is no cached variant: streams
// bypass the cache by design, so this is the pipeline's floor.
func BenchmarkFrontierStream(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/frontier/stream", benchFrontierBody)
	}
}

// TestMeasureBench10 regenerates BENCH_10.json at the repo root: the
// cold-vs-cached /v1/compare measurement plus the frontier stream's
// evaluation cost, each the minimum of three testing.Benchmark runs
// through the full handler stack. Gated behind HETEROSIM_MEASURE=1
// because it is a measurement, not a regression check:
//
//	HETEROSIM_MEASURE=1 go test -run MeasureBench10 -v ./internal/server/
func TestMeasureBench10(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") == "" {
		t.Skip("set HETEROSIM_MEASURE=1 to regenerate BENCH_10.json")
	}
	type stat struct {
		NsPerOp     int64 `json:"nsPerOp"`
		BytesPerOp  int64 `json:"bytesPerOp"`
		AllocsPerOp int64 `json:"allocsPerOp"`
	}
	measure := func(fn func(b *testing.B)) stat {
		// Minimum of three runs: pure-CPU latencies, so the fastest run
		// is the least disturbed by background load (same estimator as
		// BENCH_7).
		r := testing.Benchmark(fn)
		for extra := 0; extra < 2; extra++ {
			if rr := testing.Benchmark(fn); rr.NsPerOp() < r.NsPerOp() {
				r = rr
			}
		}
		return stat{NsPerOp: r.NsPerOp(), BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp()}
	}
	cold := measure(BenchmarkCompareCold)
	cached := measure(BenchmarkCompareCached)
	stream := measure(BenchmarkFrontierStream)
	speedup := 0.0
	if cached.NsPerOp > 0 {
		// One decimal place keeps the file diff-stable across runs.
		speedup = float64(int64(float64(cold.NsPerOp)/float64(cached.NsPerOp)*10+0.5)) / 10
	}
	out := struct {
		Note           string  `json:"note"`
		CompareCold    stat    `json:"compareCold"`
		CompareCached  stat    `json:"compareCached"`
		FrontierStream stat    `json:"frontierStream"`
		ColdVsCachedX  float64 `json:"coldVsCachedX"`
	}{
		Note: "Cold vs cached /v1/compare (two pairs = four roadmap " +
			"projections per request) and one full /v1/frontier/stream " +
			"evaluation, through the full handler stack. Minimum of three " +
			"runs. Regenerate: HETEROSIM_MEASURE=1 " +
			"go test -run MeasureBench10 ./internal/server/",
		CompareCold:    cold,
		CompareCached:  cached,
		FrontierStream: stream,
		ColdVsCachedX:  speedup,
	}
	t.Logf("compare cold %d ns/op, cached %d ns/op (%.1fx), frontier stream %d ns/op",
		cold.NsPerOp, cached.NsPerOp, speedup, stream.NsPerOp)
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_10.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
