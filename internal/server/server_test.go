package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/ucore"
)

// newTestServer builds a server with test-friendly limits.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do posts JSON (or GETs when body is empty) and returns the recorder.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := strings.TrimSpace(rec.Body.String()); got != `{"status":"ok"}` {
		t.Errorf("body = %q", got)
	}
}

func TestVersionEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodGet, "/v1/version", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var info struct {
		Module    string `json:"module"`
		Version   string `json:"version"`
		GoVersion string `json:"goVersion"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Module != "github.com/calcm/heterosim" || info.Version == "" || !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("unexpected version info: %+v", info)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cfg := s.Config()
	if cfg.Addr != ":8080" || cfg.CacheEntries != 4096 || cfg.MaxInflight < 2 ||
		cfg.MaxQueue != cfg.MaxInflight || cfg.QueueTimeout != 2*time.Second {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	// Negative worker counts normalize to auto rather than erroring —
	// the same policy as the CLI flag.
	s = newTestServer(t, Config{Workers: -5})
	if s.Config().Workers != 0 {
		t.Errorf("Workers = %d, want 0 (normalized)", s.Config().Workers)
	}
	for _, bad := range []Config{
		{MaxInflight: -2},
		{MaxQueue: -3},
		{QueueTimeout: -time.Second},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("config %+v must fail", bad)
		}
	}
	// Negative cache entries mean "coalescing only": storage stays off.
	s = newTestServer(t, Config{CacheEntries: -1})
	body := `{"workload":"MMM","f":0.5,"design":{"kind":"sym"}}`
	do(t, s, http.MethodPost, "/v1/optimize", body)
	rec := do(t, s, http.MethodPost, "/v1/optimize", body)
	if got := rec.Header().Get("X-Heterosim-Cache"); got != "miss" {
		t.Errorf("storage-disabled outcome = %q, want miss", got)
	}
}

func TestOptimizeMatchesEngine(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"workload":"FFT-1024","f":0.99,"node":"22nm","design":{"kind":"het","device":"ASIC"}}`
	rec := do(t, s, http.MethodPost, "/v1/optimize", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	// The HTTP answer must be the engine's answer, bit for bit.
	cfg := project.DefaultConfig(paper.FFT1024)
	node, err := cfg.Roadmap.ByName("22nm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.BudgetsAt(node)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ucore.PublishedParams(paper.ASIC, paper.FFT1024)
	want, err := core.NewEvaluator().Optimize(core.Design{
		Kind: core.Het, Label: string(paper.ASIC),
		UCore: bounds.UCore{Mu: p.Mu, Phi: p.Phi},
	}, 0.99, b)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Point.Speedup != want.Speedup || resp.Point.R != want.R || resp.Point.Limit != want.Limit.String() {
		t.Errorf("HTTP point %+v differs from engine point %+v", resp.Point, want)
	}
}

func TestOptimizeValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"workload":"MMM","f":0.5,"desing":{}}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"LINPACK","f":0.5,"design":{"kind":"sym"}}`, http.StatusBadRequest},
		{"bad f", `{"workload":"MMM","f":1.5,"design":{"kind":"sym"}}`, http.StatusBadRequest},
		{"bad kind", `{"workload":"MMM","f":0.5,"design":{"kind":"quantum"}}`, http.StatusBadRequest},
		{"het without params", `{"workload":"MMM","f":0.5,"design":{"kind":"het"}}`, http.StatusBadRequest},
		{"device and mu", `{"workload":"MMM","f":0.5,"design":{"kind":"het","device":"ASIC","mu":2,"phi":1}}`, http.StatusBadRequest},
		{"node and budgets", `{"workload":"MMM","f":0.5,"node":"22nm","budgets":{"area":1,"power":1,"bandwidth":1},"design":{"kind":"sym"}}`, http.StatusBadRequest},
		{"negative budgets", `{"workload":"MMM","f":0.5,"budgets":{"area":-1,"power":1,"bandwidth":1},"design":{"kind":"sym"}}`, http.StatusBadRequest},
		{"unknown node", `{"workload":"MMM","f":0.5,"node":"7nm","design":{"kind":"sym"}}`, http.StatusBadRequest},
		{"bad objective", `{"workload":"MMM","f":0.5,"objective":"area","design":{"kind":"sym"}}`, http.StatusBadRequest},
		{"no published params", `{"workload":"FFT-1024","f":0.5,"design":{"kind":"het","device":"CoreI7"}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		rec := do(t, s, http.MethodPost, "/v1/optimize", c.body)
		if rec.Code != c.code {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, rec.Code, c.code, rec.Body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", c.name, rec.Body)
		}
	}
}

func TestInfeasibleMapsTo422(t *testing.T) {
	s := newTestServer(t, Config{})
	// A power budget too small to feed even one BCE is infeasible, which
	// is a model answer, not a transport failure: 422.
	body := `{"workload":"MMM","f":0.9,"budgets":{"area":19,"power":0.0001,"bandwidth":57},"design":{"kind":"sym"}}`
	rec := do(t, s, http.MethodPost, "/v1/optimize", body)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", rec.Code, rec.Body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/v1/optimize", "/v1/sweep", "/v1/project", "/v1/scenario"} {
		rec := do(t, s, http.MethodGet, path, "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status = %d, want 405", path, rec.Code)
		}
	}
}

// TestCacheNormalizesSpellings proves the canonical key ignores JSON
// field order and workload spelling variants: all four spellings of the
// same request hit one cache entry.
func TestCacheNormalizesSpellings(t *testing.T) {
	s := newTestServer(t, Config{})
	bodies := []string{
		`{"workload":"FFT-1024","f":0.9,"design":{"kind":"het","device":"ASIC"}}`,
		`{"workload":"fft","f":0.9,"design":{"kind":"het","device":"asic"}}`,
		`{"f":0.9,"workload":"fft-1024","design":{"device":"ASIC","kind":"HET"}}`,
		`{"design":{"kind":"het","device":"ASIC"},"workload":"FFT1024","f":0.9}`,
	}
	var first []byte
	for i, b := range bodies {
		rec := do(t, s, http.MethodPost, "/v1/optimize", b)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d (body %s)", i, rec.Code, rec.Body)
		}
		wantOutcome := "miss"
		if i > 0 {
			wantOutcome = "hit"
		}
		if got := rec.Header().Get("X-Heterosim-Cache"); got != wantOutcome {
			t.Errorf("request %d: cache outcome %q, want %q", i, got, wantOutcome)
		}
		if i == 0 {
			first = append([]byte(nil), rec.Body.Bytes()...)
		} else if !bytes.Equal(rec.Body.Bytes(), first) {
			t.Errorf("request %d: response differs from first", i)
		}
	}
	if st := s.cache.Stats(); st.Entries != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 entry and 1 miss", st)
	}
}

// TestWorkerCountDoesNotFragmentCache: the same sweep at different
// worker counts is one cache entry with byte-identical responses.
func TestWorkerCountDoesNotFragmentCache(t *testing.T) {
	s := newTestServer(t, Config{})
	base := `{"workload":"FFT-1024","f":{"values":[0.9,0.99]},"design":{"kind":"het","device":"ASIC"},"bandwidthScale":{"lo":0.5,"hi":2,"steps":3}`
	var first []byte
	for i, workers := range []int{1, 3, 0, -4} {
		body := base + `,"workers":` + itoa(workers) + `}`
		rec := do(t, s, http.MethodPost, "/v1/sweep", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d (body %s)", workers, rec.Code, rec.Body)
		}
		if i == 0 {
			first = append([]byte(nil), rec.Body.Bytes()...)
			continue
		}
		if got := rec.Header().Get("X-Heterosim-Cache"); got != "hit" {
			t.Errorf("workers=%d: outcome %q, want hit (worker count must not fragment the cache)", workers, got)
		}
		if !bytes.Equal(rec.Body.Bytes(), first) {
			t.Errorf("workers=%d: response differs", workers)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestSweepSurfaceMatchesSerialEngine(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	body := `{"workload":"FFT-1024","node":"22nm","design":{"kind":"het","device":"GTX480"},
		"f":{"values":[0.5,0.9,0.99]},"powerScale":{"values":[0.5,1,2]}}`
	rec := do(t, s, http.MethodPost, "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 9 {
		t.Fatalf("got %d points, want 9", len(resp.Points))
	}
	// Row-major with the last axis (bandwidth, single value) fastest:
	// f varies slowest, then area (single), power, bandwidth (single).
	wantF := []float64{0.5, 0.5, 0.5, 0.9, 0.9, 0.9, 0.99, 0.99, 0.99}
	wantP := []float64{0.5, 1, 2, 0.5, 1, 2, 0.5, 1, 2}
	cfg := project.DefaultConfig(paper.FFT1024)
	node, _ := cfg.Roadmap.ByName("22nm")
	base, err := cfg.BudgetsAt(node)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ucore.PublishedParams(paper.GTX480, paper.FFT1024)
	ev := core.NewEvaluator()
	for i, cell := range resp.Points {
		if cell.F != wantF[i] || cell.PowerScale != wantP[i] {
			t.Fatalf("cell %d ordering: got (f=%v, power=%v), want (%v, %v)", i, cell.F, cell.PowerScale, wantF[i], wantP[i])
		}
		b := base
		b.Power *= cell.PowerScale
		want, err := ev.Optimize(core.Design{Kind: core.Het, Label: "x",
			UCore: bounds.UCore{Mu: p.Mu, Phi: p.Phi}}, cell.F, b)
		if err != nil {
			t.Fatalf("cell %d: engine says infeasible, server said %+v", i, cell)
		}
		if !cell.Valid || cell.Speedup != want.Speedup || cell.R != want.R {
			t.Errorf("cell %d: server %+v, engine speedup=%v r=%d", i, cell, want.Speedup, want.R)
		}
	}
	if resp.Best == nil || resp.Feasible != 9 {
		t.Fatalf("best/feasible missing: %+v", resp)
	}
	// Best must be the max-speedup cell with ties to the lowest index.
	bestIdx := 0
	for i := range resp.Points {
		if resp.Points[i].Speedup > resp.Points[bestIdx].Speedup {
			bestIdx = i
		}
	}
	if *resp.Best != resp.Points[bestIdx] {
		t.Errorf("best = %+v, want cell %d %+v", resp.Best, bestIdx, resp.Points[bestIdx])
	}
}

func TestSweepTooLargeRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0,"hi":1,"steps":401},
		"powerScale":{"lo":0.1,"hi":10,"steps":500}}`
	rec := do(t, s, http.MethodPost, "/v1/sweep", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "split the request") {
		t.Errorf("error should tell the client to split: %s", rec.Body)
	}
}

func TestScenarioEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/scenario", `{"scenario":5,"workload":"FFT-1024","f":0.99}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp ScenarioResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "10 W budget" || len(resp.Baseline) == 0 || len(resp.Alternative) == 0 {
		t.Fatalf("unexpected scenario response: name=%q base=%d alt=%d", resp.Name, len(resp.Baseline), len(resp.Alternative))
	}
	// The 10 W scenario must hurt: every design's best speedup at the
	// last node is no better than the baseline's.
	for i := range resp.Baseline {
		lb := resp.Baseline[i].Points[len(resp.Baseline[i].Points)-1]
		la := resp.Alternative[i].Points[len(resp.Alternative[i].Points)-1]
		if la.Valid && lb.Valid && la.Speedup > lb.Speedup {
			t.Errorf("design %s: 10 W budget speedup %v exceeds baseline %v", resp.Baseline[i].Label, la.Speedup, lb.Speedup)
		}
	}
	for _, bad := range []string{
		`{"scenario":0,"workload":"MMM","f":0.5}`,
		`{"scenario":7,"workload":"MMM","f":0.5}`,
	} {
		if rec := do(t, s, http.MethodPost, "/v1/scenario", bad); rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestMetricsCountersMove(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, http.MethodPost, "/v1/optimize", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`)
	do(t, s, http.MethodPost, "/v1/optimize", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`)
	do(t, s, http.MethodPost, "/v1/optimize", `{bad`)
	rec := do(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var m Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["optimize"] != 3 {
		t.Errorf("optimize requests = %d, want 3", m.Requests["optimize"])
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Responses["ok"] != 2 || m.Responses["clientError"] != 1 {
		t.Errorf("responses = %v", m.Responses)
	}
	if m.Admission.Accepted != 1 {
		t.Errorf("admission accepted = %d, want 1 (hit and error bypass the gate)", m.Admission.Accepted)
	}
}
