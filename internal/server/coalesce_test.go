package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentIdenticalSweepsCoalesce is the serving layer's core
// contract (run with -race): N identical in-flight /v1/sweep requests
// cost exactly one underlying evaluation and every client receives
// byte-identical bytes — at several worker counts, since the engine is
// deterministic and worker counts are excluded from the cache key.
func TestConcurrentIdenticalSweepsCoalesce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		s := newTestServer(t, Config{Workers: workers})
		var evals atomic.Int64
		started := make(chan struct{})
		release := make(chan struct{})
		s.onEvaluate = func(string) {
			evals.Add(1)
			close(started) // second close would panic = second evaluation
			<-release
		}
		body := `{"workload":"FFT-1024","design":{"kind":"het","device":"ASIC"},
			"f":{"values":[0.5,0.9,0.99,0.999]},"bandwidthScale":{"lo":0.25,"hi":4,"steps":5}}`

		const clients = 16
		responses := make([][]byte, clients)
		codes := make([]int, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				codes[i] = rec.Code
				responses[i] = append([]byte(nil), rec.Body.Bytes()...)
			}(i)
		}
		// Wait for the single evaluation to start, give the other clients
		// a moment to pile onto it, then let it finish.
		<-started
		for s.cache.Stats().Coalesced < clients-1 {
			time.Sleep(time.Millisecond)
		}
		close(release)
		wg.Wait()

		if n := evals.Load(); n != 1 {
			t.Fatalf("workers=%d: %d evaluations, want exactly 1", workers, n)
		}
		for i := 0; i < clients; i++ {
			if codes[i] != http.StatusOK {
				t.Fatalf("workers=%d: client %d got status %d: %s", workers, i, codes[i], responses[i])
			}
			if !bytes.Equal(responses[i], responses[0]) {
				t.Fatalf("workers=%d: client %d response differs from client 0", workers, i)
			}
		}
		st := s.cache.Stats()
		if st.Misses != 1 || st.Coalesced != clients-1 {
			t.Errorf("workers=%d: cache stats %+v, want 1 miss and %d coalesced", workers, st, clients-1)
		}
		// Only one admission was consumed: coalesced waiters never queue
		// for the gate.
		if a := s.gate.stats(); a.Accepted != 1 {
			t.Errorf("workers=%d: gate accepted %d, want 1", workers, a.Accepted)
		}
	}
}

// TestAdmissionControlShedsLoad saturates a one-slot server with
// distinct long-running requests and checks the burst is shed with
// 429 (queue full) and 503 (queue timeout) instead of piling up.
func TestAdmissionControlShedsLoad(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInflight:  1,
		MaxQueue:     2,
		QueueTimeout: 50 * time.Millisecond,
	})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.onEvaluate = func(string) {
		once.Do(func() { close(started) })
		<-release
	}
	post := func(i int, rec *httptest.ResponseRecorder) {
		// Distinct f per request: distinct cache keys, no coalescing.
		body := `{"workload":"MMM","f":0.` + strings.Repeat("9", i+1) + `,"design":{"kind":"sym"}}`
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(body))
		s.Handler().ServeHTTP(rec, req)
	}

	// Occupy the single evaluation slot.
	var occupier sync.WaitGroup
	occupier.Add(1)
	firstRec := httptest.NewRecorder()
	go func() { defer occupier.Done(); post(0, firstRec) }()
	<-started

	// Burst: each needs its own evaluation. The queue holds 2; they will
	// time out with 503. Everything past the queue is an immediate 429.
	const burst = 6
	recs := make([]*httptest.ResponseRecorder, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		recs[i] = httptest.NewRecorder()
		go func(i int) { defer wg.Done(); post(i+1, recs[i]) }(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for _, rec := range recs {
		counts[rec.Code]++
	}
	if counts[http.StatusOK] != 0 {
		t.Errorf("burst produced %d OKs while the slot was held: %v", counts[http.StatusOK], counts)
	}
	if counts[http.StatusServiceUnavailable] == 0 {
		t.Errorf("no queued request timed out with 503: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("no overflow request was rejected with 429: %v", counts)
	}
	if counts[http.StatusServiceUnavailable]+counts[http.StatusTooManyRequests] != burst {
		t.Errorf("burst outcomes beyond 429/503: %v", counts)
	}
	for _, rec := range recs {
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Error("shed responses must carry Retry-After")
			break
		}
	}

	// Release the occupier; the service recovers and serves normally.
	close(release)
	occupier.Wait()
	if firstRec.Code != http.StatusOK {
		t.Fatalf("occupying request failed: %d %s", firstRec.Code, firstRec.Body)
	}
	s.onEvaluate = nil
	rec := httptest.NewRecorder()
	post(9, rec)
	if rec.Code != http.StatusOK {
		t.Errorf("post-burst request failed: %d %s", rec.Code, rec.Body)
	}
	st := s.gate.stats()
	if st.RejectedFull == 0 || st.RejectedTimeout == 0 {
		t.Errorf("gate stats did not record the shed load: %+v", st)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("gauges must drain to zero: %+v", st)
	}
}

// TestCachedHitsBypassAdmission proves a saturated gate still serves
// cached responses: overload never takes away answers we already have.
func TestCachedHitsBypassAdmission(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond})
	warm := `{"workload":"BS","f":0.9,"design":{"kind":"asym"}}`
	if rec := do(t, s, http.MethodPost, "/v1/optimize", warm); rec.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d %s", rec.Code, rec.Body)
	}

	// Saturate the only slot.
	release := make(chan struct{})
	started := make(chan struct{})
	s.onEvaluate = func(string) { close(started); <-release }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(t, s, http.MethodPost, "/v1/optimize", `{"workload":"BS","f":0.5,"design":{"kind":"asym"}}`)
	}()
	<-started

	// The cached request sails through while the gate is full.
	rec := do(t, s, http.MethodPost, "/v1/optimize", warm)
	if rec.Code != http.StatusOK {
		t.Errorf("cached request shed under load: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Heterosim-Cache"); got != "hit" {
		t.Errorf("outcome = %q, want hit", got)
	}
	close(release)
	wg.Wait()
}
