package server

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestRequestDeadlineInQueueIs504 is the end-to-end 504 path: the only
// evaluation slot is held, so a fresh request queues at the gate until
// its own RequestTimeout expires — and the response says so with 504,
// not a generic 503.
func TestRequestDeadlineInQueueIs504(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInflight:    1,
		MaxQueue:       4,
		QueueTimeout:   10 * time.Second, // queue patience outlives the request deadline
		RequestTimeout: 30 * time.Millisecond,
	})
	release, status := s.gate.acquire(context.Background())
	if status != 0 {
		t.Fatalf("holding the only slot: status %d", status)
	}
	defer release()

	rec := do(t, s, http.MethodPost, "/v1/optimize",
		`{"workload":"MMM","f":0.91,"design":{"kind":"sym"}}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", rec.Code, rec.Body.String())
	}
	if st := s.gate.stats(); st.RejectedDeadline != 1 {
		t.Errorf("RejectedDeadline = %d, want 1", st.RejectedDeadline)
	}
}

// TestSaturation503CarriesRetryAfter: with the slot held and a short
// queue timeout, a fresh request is told to come back later — and the
// response carries the Retry-After hint the client's backoff floors on.
func TestSaturation503CarriesRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInflight:  1,
		MaxQueue:     4,
		QueueTimeout: 5 * time.Millisecond,
	})
	release, status := s.gate.acquire(context.Background())
	if status != 0 {
		t.Fatalf("holding the only slot: status %d", status)
	}
	defer release()

	rec := do(t, s, http.MethodPost, "/v1/optimize",
		`{"workload":"MMM","f":0.92,"design":{"kind":"sym"}}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
}

// TestStaleServedEndToEnd: an entry evicted from the live cache is
// served from the stale tier when revalidation cannot run (gate
// saturated), and the response is labeled X-Heterosim-Cache: stale so
// clients can tell. This is the stale-while-revalidate contract at the
// HTTP layer.
func TestStaleServedEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{
		CacheEntries: 8, // tiny: a burst of distinct requests evicts earlier ones
		MaxInflight:  1,
		MaxQueue:     4,
		QueueTimeout: 5 * time.Millisecond,
	})
	first := `{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`
	rec := do(t, s, http.MethodPost, "/v1/optimize", first)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Heterosim-Cache") != "miss" {
		t.Fatalf("first request = (%d, %q)", rec.Code, rec.Header().Get("X-Heterosim-Cache"))
	}
	fresh := rec.Body.String()

	// Flood with distinct requests until the first one's entry has been
	// evicted into the stale tier: with the gate saturated, replaying it
	// must serve the retained bytes, labeled stale.
	for i := 0; ; i++ {
		if i == 1000 {
			t.Fatal("first entry never left the live tier after 1000 distinct inserts")
		}
		body := fmt.Sprintf(`{"workload":"MMM","f":%g,"design":{"kind":"sym"}}`, 0.0001*float64(i+1))
		if rec := do(t, s, http.MethodPost, "/v1/optimize", body); rec.Code != http.StatusOK {
			t.Fatalf("filler %d = %d (%s)", i, rec.Code, rec.Body.String())
		}

		release, status := s.gate.acquire(context.Background())
		if status != 0 {
			t.Fatalf("holding the only slot: status %d", status)
		}
		rec := do(t, s, http.MethodPost, "/v1/optimize", first)
		release()
		switch rec.Header().Get("X-Heterosim-Cache") {
		case "hit":
			continue // still live; keep evicting
		case "stale":
			if rec.Code != http.StatusOK {
				t.Fatalf("stale serve status = %d", rec.Code)
			}
			if rec.Body.String() != fresh {
				t.Error("stale bytes differ from the original response")
			}
			if st := s.cache.Stats(); st.StaleServed == 0 {
				t.Error("StaleServed counter never moved")
			}
			return
		default:
			t.Fatalf("replay = (%d, %q, %s), want hit or stale",
				rec.Code, rec.Header().Get("X-Heterosim-Cache"), rec.Body.String())
		}
	}
}
