package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestFrontierStreamGolden pins the complete frontier NDJSON stream —
// header schema, node-major row schema and order, trailer with the
// crossover table — the same way sweep_stream.golden pins the sweep.
// Non-regenerable: these bytes are the wire contract.
func TestFrontierStreamGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/frontier/stream", `{"workload":"MMM","f":0.9,"scenario":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if cc := rec.Header().Get("X-Heterosim-Cache"); cc != "stream" {
		t.Errorf("X-Heterosim-Cache = %q, want stream", cc)
	}
	want := mustGolden(t, "frontier_stream.golden")
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("streamed frontier drifted from the pinned NDJSON contract:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// rawComparePair splits one buffered compare pair into raw parts so
// its rows can be compared byte-for-byte with the stream.
type rawComparePair struct {
	Scenario int               `json:"scenario"`
	Name     string            `json:"name"`
	Rows     []json.RawMessage `json:"rows"`
}

// TestFrontierMatchesCompareRows is the streamed == buffered property
// for the trajectory surfaces, across every model backend: each
// /v1/frontier/stream row must be byte-identical to the corresponding
// rows element of /v1/compare's pair for the same (scenario, model) —
// the two endpoints answer the same question through one encoder.
func TestFrontierMatchesCompareRows(t *testing.T) {
	for _, backend := range []string{"", "multiamdahl", "multiamdahl-thermal", "sqrtm"} {
		name := backend
		if name == "" {
			name = "default"
		}
		t.Run(name, func(t *testing.T) {
			model := ""
			if backend != "" {
				model = `,"model":"` + backend + `"`
			}
			s := newTestServer(t, Config{})
			buf := do(t, s, http.MethodPost, "/v1/compare",
				`{"workload":"FFT-1024","f":0.99,"pairs":[{"scenario":2`+model+`}]}`)
			if buf.Code != http.StatusOK {
				t.Fatalf("compare status = %d (body %s)", buf.Code, buf.Body)
			}
			var resp struct {
				Pairs []rawComparePair `json:"pairs"`
			}
			if err := json.Unmarshal(buf.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if len(resp.Pairs) != 1 {
				t.Fatalf("got %d pairs, want 1", len(resp.Pairs))
			}
			want := resp.Pairs[0].Rows

			st := do(t, s, http.MethodPost, "/v1/frontier/stream",
				`{"workload":"FFT-1024","f":0.99,"scenario":2`+model+`}`)
			if st.Code != http.StatusOK {
				t.Fatalf("stream status = %d (body %s)", st.Code, st.Body)
			}
			lines := strings.Split(strings.TrimSuffix(st.Body.String(), "\n"), "\n")
			if len(lines) != len(want)+2 {
				t.Fatalf("stream has %d lines, want %d rows + header + trailer", len(lines), len(want))
			}
			for i, w := range want {
				if got := lines[i+1]; got != string(w) {
					t.Errorf("row %d differs:\nstream:  %s\ncompare: %s", i, got, w)
				}
			}
		})
	}
}

// TestCompareValidation holds /v1/compare to the 400 contract for
// request bugs: empty and oversized pair lists, out-of-range scenarios,
// duplicate pairs (including duplicates only visible after the
// top-level model default is pushed down).
func TestCompareValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	pairs := make([]string, maxComparePairs+1)
	for i := range pairs {
		pairs[i] = `{"scenario":1}`
	}
	cases := []struct {
		name, body string
	}{
		{"no pairs", `{"workload":"MMM","f":0.9,"pairs":[]}`},
		{"too many pairs", `{"workload":"MMM","f":0.9,"pairs":[` + strings.Join(pairs, ",") + `]}`},
		{"scenario out of range", `{"workload":"MMM","f":0.9,"pairs":[{"scenario":7}]}`},
		{"negative scenario", `{"workload":"MMM","f":0.9,"pairs":[{"scenario":-1}]}`},
		{"duplicate pair", `{"workload":"MMM","f":0.9,"pairs":[{"scenario":3},{"scenario":3}]}`},
		{"duplicate via pushdown", `{"workload":"MMM","f":0.9,"model":"sqrtm","pairs":[{"scenario":3},{"scenario":3,"model":"sqrtm"}]}`},
		{"unknown model", `{"workload":"MMM","f":0.9,"pairs":[{"scenario":1,"model":"nope"}]}`},
		{"bad f", `{"workload":"MMM","f":2,"pairs":[{"scenario":1}]}`},
		{"bad workload", `{"workload":"nope","f":0.9,"pairs":[{"scenario":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, http.MethodPost, "/v1/compare", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
			}
		})
	}
}

// TestCompareModelHeader: a uniform-model compare reports the backend
// in X-Heterosim-Model; a mixed-model one must not claim a single
// backend.
func TestCompareModelHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/compare",
		`{"workload":"MMM","f":0.9,"model":"sqrtm","pairs":[{"scenario":1},{"scenario":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if m := rec.Header().Get("X-Heterosim-Model"); m != "sqrtm" {
		t.Errorf("uniform compare: X-Heterosim-Model = %q, want sqrtm", m)
	}
	rec = do(t, s, http.MethodPost, "/v1/compare",
		`{"workload":"MMM","f":0.9,"pairs":[{"scenario":1},{"scenario":2,"model":"sqrtm"}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if m := rec.Header().Get("X-Heterosim-Model"); m != "" {
		t.Errorf("mixed compare: X-Heterosim-Model = %q, want unset", m)
	}
}

// TestStreamParamDispatch holds the generic pipeline's query-param
// contract: ?stream=ndjson on a buffered-only op is a clear 400, an
// unknown stream value is a 400 everywhere, and the stream-only
// frontier endpoint takes bare POSTs (no param needed) but still
// rejects non-POST methods.
func TestStreamParamDispatch(t *testing.T) {
	s := newTestServer(t, Config{})

	rec := do(t, s, http.MethodPost, "/v1/optimize?stream=ndjson",
		`{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("optimize?stream=ndjson: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "does not stream") {
		t.Errorf("optimize?stream=ndjson: error should say the op does not stream, got %s", rec.Body)
	}

	rec = do(t, s, http.MethodPost, "/v1/compare?stream=ndjson",
		`{"workload":"MMM","f":0.9,"pairs":[{"scenario":1}]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("compare?stream=ndjson: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}

	rec = do(t, s, http.MethodPost, "/v1/sweep?stream=xml", streamSweepBody)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("sweep?stream=xml: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}

	rec = do(t, s, http.MethodPost, "/v1/frontier/stream?stream=xml", `{"workload":"MMM","f":0.9}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("frontier?stream=xml: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}

	// The stream-only endpoint needs no param: bare POST streams, and
	// the redundant-but-correct ?stream=ndjson spelling works too.
	for _, path := range []string{"/v1/frontier/stream", "/v1/frontier/stream?stream=ndjson"} {
		rec = do(t, s, http.MethodPost, path, `{"workload":"MMM","f":0.9}`)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status = %d, want 200 (body %s)", path, rec.Code, rec.Body)
		}
	}

	rec = do(t, s, http.MethodGet, "/v1/frontier/stream", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET frontier: status = %d, want 405", rec.Code)
	}
}
