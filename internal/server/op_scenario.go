package server

import (
	"context"
	"encoding/json"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/scenario"
)

// POST /v1/scenario — a Section 6.2 study: baseline vs alternative.

// ScenarioRequest runs one of the six alternative-assumption studies
// side by side with the baseline.
type ScenarioRequest struct {
	Scenario    int             `json:"scenario"` // 1-6
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
	Workers     int             `json:"workers,omitempty"`
}

// ScenarioResponse pairs the baseline and alternative trajectory sets
// with the scenario's metadata. Model names the backend only for
// non-default requests; both trajectory sets run on the same backend.
type ScenarioResponse struct {
	Scenario    int              `json:"scenario"`
	Name        string           `json:"name"`
	Rationale   string           `json:"rationale"`
	Expectation string           `json:"expectation"`
	Workload    string           `json:"workload"`
	F           float64          `json:"f"`
	Nodes       []string         `json:"nodes"`
	Baseline    []TrajectoryJSON `json:"baseline"`
	Alternative []TrajectoryJSON `json:"alternative"`
	Model       string           `json:"model,omitempty"`
}

var opScenario = engine.New("scenario", buildScenario)

func buildScenario(req *ScenarioRequest, env engine.Env) (func(context.Context) (ScenarioResponse, error), error) {
	if req.Scenario < 1 || req.Scenario > 6 {
		return nil, badRequest("scenario must be 1-6, got %d", req.Scenario)
	}
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if err := engine.CheckF(req.F); err != nil {
		return nil, err
	}
	sc, err := scenario.Get(scenario.ID(req.Scenario))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	mk, err := resolveModelFactory(&req.Model, &req.ModelParams, env)
	if err != nil {
		return nil, err
	}
	workers := workersOr(&req.Workers, env)
	return func(ctx context.Context) (ScenarioResponse, error) {
		base, alt, err := scenario.CompareModelCtx(ctx, sc, w, req.F, workers, mk)
		if err != nil {
			return ScenarioResponse{}, evalFailure(err, unprocessable)
		}
		resp := ScenarioResponse{
			Scenario:    req.Scenario,
			Name:        sc.Name,
			Rationale:   sc.Rationale,
			Expectation: sc.Expectation,
			Workload:    req.Workload,
			F:           req.F,
			Baseline:    trajectoryJSON(base),
			Alternative: trajectoryJSON(alt),
			Model:       req.Model,
		}
		for _, n := range itrs.Default().Nodes() {
			resp.Nodes = append(resp.Nodes, n.Name)
		}
		return resp, nil
	}, nil
}
