package server

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/calcm/heterosim/internal/model"
)

// benchModelBody returns the cold-optimize benchmark body for one
// backend; the default backend keeps the field omitted so it measures
// the exact legacy path.
func benchModelBody(name string) string {
	if name == model.DefaultName {
		return benchOptimizeBody
	}
	return benchOptimizeBody[:len(benchOptimizeBody)-1] + `,"model":"` + name + `"}`
}

// benchModelOptimizeCold measures a cold /v1/optimize under one backend
// through the full handler stack, cache storage disabled.
func benchModelOptimizeCold(b *testing.B, name string) {
	s := newBenchServer(b, -1)
	body := benchModelBody(name)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/optimize", body)
	}
}

// BenchmarkModelOptimizeCold compares cold optimize latency across the
// whole backend registry; the chung case is the legacy omitted-field
// path, so the sub-benchmark spread is the price of each model.
func BenchmarkModelOptimizeCold(b *testing.B) {
	for _, name := range model.Names() {
		b.Run(name, func(b *testing.B) { benchModelOptimizeCold(b, name) })
	}
}

// TestMeasureBench7 regenerates BENCH_7.json at the repo root: one cold
// full-handler optimize measurement per registered model backend, with
// the chung default as the reference column. Gated behind
// HETEROSIM_MEASURE=1 because it is a measurement, not a regression
// check; honors -benchtime:
//
//	HETEROSIM_MEASURE=1 go test -run MeasureBench7 -benchtime 200ms -v ./internal/server/
func TestMeasureBench7(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") == "" {
		t.Skip("set HETEROSIM_MEASURE=1 to regenerate BENCH_7.json")
	}
	type stat struct {
		NsPerOp     int64   `json:"nsPerOp"`
		BytesPerOp  int64   `json:"bytesPerOp"`
		AllocsPerOp int64   `json:"allocsPerOp"`
		VsChungX    float64 `json:"vsChungX,omitempty"`
	}
	out := struct {
		Note      string          `json:"note"`
		Benchtime string          `json:"benchtime"`
		Backends  map[string]stat `json:"backends"`
	}{
		Note: "Cold full-handler /v1/optimize latency per model backend " +
			"(cache storage disabled; chung is the omitted-field default " +
			"path and the reference for vsChungX). Minimum of three runs. " +
			"Regenerate: HETEROSIM_MEASURE=1 " +
			"go test -run MeasureBench7 -benchtime 200ms ./internal/server/",
		Benchtime: "200ms",
		Backends:  make(map[string]stat, len(model.Names())),
	}
	measure := func(name string) stat {
		fn := func(b *testing.B) { benchModelOptimizeCold(b, name) }
		// Minimum of three runs: pure-CPU latencies, so the fastest run
		// is the least disturbed by background load (same estimator as
		// BENCH_6).
		r := testing.Benchmark(fn)
		for extra := 0; extra < 2; extra++ {
			if rr := testing.Benchmark(fn); rr.NsPerOp() < r.NsPerOp() {
				r = rr
			}
		}
		return stat{NsPerOp: r.NsPerOp(), BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp()}
	}
	ref := measure(model.DefaultName)
	out.Backends[model.DefaultName] = ref
	for _, name := range model.Names() {
		if name == model.DefaultName {
			continue
		}
		s := measure(name)
		if ref.NsPerOp > 0 {
			// One decimal place keeps the file diff-stable across runs.
			s.VsChungX = float64(int64(float64(s.NsPerOp)/float64(ref.NsPerOp)*10+0.5)) / 10
		}
		out.Backends[name] = s
		t.Logf("%-20s %10d ns/op (%.1fx chung)", name, s.NsPerOp, s.VsChungX)
	}
	t.Logf("%-20s %10d ns/op (reference)", model.DefaultName, ref.NsPerOp)
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_7.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
