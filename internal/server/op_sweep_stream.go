package server

import (
	"context"
	"encoding/json"

	"github.com/calcm/heterosim/internal/engine"
)

// POST /v1/sweep?stream=ndjson — the sweep surface as NDJSON: one
// header line (the sweep's identity and axes), one line per grid cell
// in flat row-major order, one trailer line (feasible count + best
// cell). Rows are emitted as evaluation windows complete, so a
// million-cell sweep never buffers a whole response and a mid-stream
// deadline stops the grid between cells; memory is O(window), not
// O(cells), which is why the streaming cell limit is 20x the buffered
// one.
//
// Each cell line is encoded by the same sweepEnc.appendPoint the
// buffered response uses, so the concatenated rows are byte-identical
// to the buffered Points array for the same request
// (TestSweepStreamMatchesBuffered pins this across all model
// backends). The HTTP plumbing — gate, deadline, spans, in-band errors
// — lives in the generic stream pipeline (stream.go); this file is
// only the sweep-shaped frames.

const (
	// maxStreamSweepCells bounds one streamed sweep. The stream holds
	// only one evaluation window in memory, so the bound is about
	// tying up evaluation workers, not memory.
	maxStreamSweepCells = 2_000_000

	// sweepStreamChunk is the evaluation window: cells per parallel
	// CellsRange call, and the flush granularity. Large enough to keep
	// the worker pool busy, small enough that rows appear promptly and
	// cancellation is honored quickly.
	sweepStreamChunk = 2048
)

// SweepStreamHeader is the first NDJSON line: the sweep's identity —
// everything SweepResponse carries before its points. Model names the
// backend only for non-default requests, mirroring the buffered shape.
type SweepStreamHeader struct {
	Workload string     `json:"workload"`
	Node     string     `json:"node"`
	Design   string     `json:"design"`
	Axes     []AxisJSON `json:"axes"`
	Model    string     `json:"model,omitempty"`
}

// SweepStreamTrailer is the last NDJSON line: the reduction the
// buffered response carries after its points.
type SweepStreamTrailer struct {
	Feasible int             `json:"feasible"`
	Best     *SweepPointJSON `json:"best,omitempty"`
}

// SweepStreamError is an NDJSON error line: emitted in-band by the
// generic pipeline when the evaluation fails after the 200 header is
// already on the wire. A stream ending without a trailer always ends
// with one of these (or a broken connection).
type SweepStreamError struct {
	Error string `json:"error"`
}

// streamSweep is the sweep's streaming form: it shares the buffered
// op's name, so the generic pipeline routes both through /v1/sweep and
// one counter, dispatched on `?stream=`.
var streamSweep = engine.NewStream("sweep", "/v1/sweep", buildSweepStream)

func buildSweepStream(req *SweepRequest, env engine.Env) (engine.StreamFunc, error) {
	plan, err := planSweep(req, env, maxStreamSweepCells)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, e engine.StreamEmitter) error {
		hdr, err := json.Marshal(SweepStreamHeader{
			Workload: plan.req.Workload,
			Node:     plan.req.Node,
			Design:   plan.design.Label,
			Axes:     plan.axesJSON(),
			Model:    plan.req.Model,
		})
		if err != nil {
			return err
		}
		if err := e.Emit(hdr); err != nil {
			return err
		}
		if err := e.Flush(); err != nil {
			return err
		}
		size := plan.grid.Size()
		window := make([]SweepPointJSON, sweepStreamChunk)
		var enc sweepEnc
		var row []byte
		red := bestReducer{energy: plan.energy}
		for lo := 0; lo < size; lo += sweepStreamChunk {
			hi := min(lo+sweepStreamChunk, size)
			cells := window[:hi-lo]
			err := plan.grid.CellsRange(ctx, plan.workers, lo, hi, func(flat int, v []float64) error {
				cell, err := plan.evalCell(v)
				if err != nil {
					return err
				}
				cells[flat-lo] = cell
				return nil
			})
			if err != nil {
				return evalFailure(err, badRequest)
			}
			for j := range cells {
				if row, err = enc.appendPoint(row[:0], &cells[j]); err != nil {
					return err
				}
				if err := e.Emit(row); err != nil {
					return err
				}
				red.observe(&cells[j])
			}
			if err := e.Flush(); err != nil {
				return err
			}
		}
		trailer, err := json.Marshal(SweepStreamTrailer{Feasible: red.feasible, Best: red.bestPtr()})
		if err != nil {
			return err
		}
		return e.Emit(trailer)
	}, nil
}
