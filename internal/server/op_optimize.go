package server

import (
	"context"
	"encoding/json"
	"errors"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/model"
)

// POST /v1/optimize — one design point.

// OptimizeRequest asks for the optimal sequential-core size of one
// design under one budget triple. Budgets come either from a roadmap
// node name (converted for the workload, as the projections do) or as an
// explicit BCE-relative triple.
type OptimizeRequest struct {
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Node        string          `json:"node,omitempty"`
	Budgets     *BudgetsSpec    `json:"budgets,omitempty"`
	Alpha       float64         `json:"alpha,omitempty"`
	Objective   string          `json:"objective,omitempty"`
	Design      DesignSpec      `json:"design"`
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
}

// OptimizeResponse is the evaluated point plus the budgets it ran under.
// Model names the backend only when the request selected a non-default
// one, keeping defaulted responses byte-identical.
type OptimizeResponse struct {
	Workload string      `json:"workload"`
	Node     string      `json:"node,omitempty"`
	Budgets  BudgetsSpec `json:"budgets"`
	Point    PointJSON   `json:"point"`
	Model    string      `json:"model,omitempty"`
}

var opOptimize = engine.New("optimize", buildOptimize)

func buildOptimize(req *OptimizeRequest, env engine.Env) (func(context.Context) (OptimizeResponse, error), error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w) // canonical spelling for the cache key
	if err := engine.CheckF(req.F); err != nil {
		return nil, err
	}
	obj, err := engine.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	req.Objective = obj
	d, err := req.Design.resolve(w)
	if err != nil {
		return nil, err
	}
	ev, err := evaluatorFor(req.Alpha)
	if err != nil {
		return nil, err
	}
	mdl, err := resolveModel(&req.Model, &req.ModelParams, req.Alpha, env)
	if err != nil {
		return nil, err
	}
	var b bounds.Budgets
	switch {
	case req.Budgets != nil:
		if req.Node != "" {
			return nil, badRequest("give either node or budgets, not both")
		}
		if req.Budgets.Area <= 0 || req.Budgets.Power <= 0 || req.Budgets.Bandwidth <= 0 {
			return nil, badRequest("budgets must be positive")
		}
		b = bounds.Budgets{Area: req.Budgets.Area, Power: req.Budgets.Power, Bandwidth: req.Budgets.Bandwidth}
	default:
		if req.Node == "" {
			req.Node = "40nm"
		}
		b, err = nodeBudgets(w, req.Node)
		if err != nil {
			return nil, err
		}
	}
	return func(context.Context) (OptimizeResponse, error) {
		var o model.Optimizer = ev
		if mdl != nil {
			o = mdl
		}
		opt := o.Optimize
		if req.Objective == "energy" {
			opt = o.OptimizeEnergy
		}
		pt, err := opt(d, req.F, b)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				return OptimizeResponse{}, unprocessable("%v", err)
			}
			return OptimizeResponse{}, badRequest("%v", err)
		}
		return OptimizeResponse{
			Workload: req.Workload,
			Node:     req.Node,
			Budgets:  BudgetsSpec{Area: b.Area, Power: b.Power, Bandwidth: b.Bandwidth},
			Point:    pointJSON(pt),
			Model:    req.Model,
		}, nil
	}, nil
}
