package server

import (
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"
)

// TestMeasureStageBreakdown produces the per-stage latency table in
// EXPERIMENTS.md: it drives /v1/sweep cold (every request a distinct
// grid, so each one evaluates) and cached (one grid repeated, so each
// one hits) on separate servers, then reports the p50/p99 of every
// pipeline stage from the telemetry histograms. Gated behind
// HETEROSIM_MEASURE=1 because it is a measurement, not a regression
// check — there are no assertions on absolute latency.
//
//	HETEROSIM_MEASURE=1 go test -run MeasureStageBreakdown -v ./internal/server/
func TestMeasureStageBreakdown(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") == "" {
		t.Skip("set HETEROSIM_MEASURE=1 to run the stage-latency measurement")
	}
	const n = 400
	sweepBody := func(i int) string {
		// Distinct lo per request keeps every grid a cache miss.
		return fmt.Sprintf(`{"workload":"FFT-1024","design":{"kind":"het","device":"ASIC"},"f":{"lo":%g,"hi":0.999,"steps":64}}`,
			0.10+0.001*float64(i%500))
	}

	report := func(label string, s *Server) {
		for _, fam := range s.Telemetry().Snapshot() {
			if fam.Name != famStageDuration {
				continue
			}
			for _, series := range fam.Series {
				h := series.Hist
				t.Logf("%s stage=%-8s n=%5d p50=%9v p99=%9v",
					label, series.Label, h.Count,
					h.Quantile(0.5).Round(time.Microsecond),
					h.Quantile(0.99).Round(time.Microsecond))
			}
		}
	}

	cold := newTestServer(t, Config{})
	for i := 0; i < n; i++ {
		if rec := do(t, cold, http.MethodPost, "/v1/sweep", sweepBody(i)); rec.Code != http.StatusOK {
			t.Fatalf("cold sweep %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	report("cold  ", cold)

	cached := newTestServer(t, Config{})
	do(t, cached, http.MethodPost, "/v1/sweep", sweepBody(0)) // fill
	for i := 0; i < n; i++ {
		rec := do(t, cached, http.MethodPost, "/v1/sweep", sweepBody(0))
		if rec.Code != http.StatusOK || rec.Header().Get("X-Heterosim-Cache") != "hit" {
			t.Fatalf("cached sweep %d: %d cache=%s", i, rec.Code, rec.Header().Get("X-Heterosim-Cache"))
		}
	}
	report("cached", cached)

	for _, s := range []*Server{cold, cached} {
		for _, fam := range s.Telemetry().Snapshot() {
			if fam.Name == famRequestDuration {
				for _, series := range fam.Series {
					if series.Label != opSweep.Name() {
						continue
					}
					h := series.Hist
					t.Logf("request endpoint=sweep n=%5d p50=%9v p99=%9v",
						h.Count, h.Quantile(0.5).Round(time.Microsecond),
						h.Quantile(0.99).Round(time.Microsecond))
				}
			}
		}
	}
}
