package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/model"
)

// withModel injects a "model" field (and optional params) into a sample
// request body.
func withModel(t *testing.T, body, name string, params string) string {
	t.Helper()
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatal(err)
	}
	decoded["model"] = json.RawMessage(`"` + name + `"`)
	if params != "" {
		decoded["modelParams"] = json.RawMessage(params)
	}
	out, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestModelEndpointMatrix drives every registered op under every
// registered backend: the full backend x endpoint matrix must evaluate
// successfully, and non-default responses must echo the model name.
func TestModelEndpointMatrix(t *testing.T) {
	for _, op := range registry.Ops() {
		for _, name := range model.Names() {
			body := withModel(t, sampleBodies[op.Name()], name, "")
			_, eval, err := op.Prepare([]byte(body), engine.Env{})
			if err != nil {
				t.Errorf("%s/%s: Prepare: %v", op.Name(), name, err)
				continue
			}
			resp, err := eval(context.Background())
			if err != nil {
				t.Errorf("%s/%s: eval: %v", op.Name(), name, err)
				continue
			}
			want := `"model":"` + name + `"`
			if name == model.DefaultName {
				if strings.Contains(string(resp), `"model"`) {
					t.Errorf("%s/%s: default response leaks a model field:\n%s", op.Name(), name, resp)
				}
			} else if !strings.Contains(string(resp), want) {
				t.Errorf("%s/%s: response does not echo %s:\n%s", op.Name(), name, want, resp)
			}
		}
	}
}

// TestModelParamsReachBackends spot-checks that modelParams change
// results: sqrtm at theta=0.5 must match the chung default exactly,
// while a different theta must not.
func TestModelParamsReachBackends(t *testing.T) {
	op := opByName(t, "optimize")
	// An asymmetric design: the sequential core's size r is a free
	// variable, so the scaling exponent theta shows up in the optimum.
	base := `{"workload":"MMM","f":0.9,"design":{"kind":"asym"}}`
	eval := func(body string) string {
		t.Helper()
		_, ev, err := op.Prepare([]byte(body), engine.Env{})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ev(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return string(resp)
	}
	plain := eval(base)
	pollack := eval(withModel(t, base, "sqrtm", `{"theta":0.5}`))
	steep := eval(withModel(t, base, "sqrtm", `{"theta":0.8}`))
	// Strip the echoed model field before comparing numeric payloads.
	strip := func(s string) string {
		s = strings.Replace(s, `,"model":"sqrtm"`, "", 1)
		return s
	}
	if strip(pollack) != plain {
		t.Errorf("sqrtm theta=0.5 differs from the chung default:\n--- chung ---\n%s\n--- sqrtm ---\n%s",
			plain, pollack)
	}
	if strip(steep) == plain {
		t.Error("sqrtm theta=0.8 is identical to the chung default; params are not reaching the backend")
	}
}

// TestChungSpellingsCoalesce asserts every spelling of the default
// backend — omitted, "chung", mixed case — maps to one cache key and
// one byte-identical response, so the cache holds a single entry for
// them and pre-registry golden responses stay valid.
func TestChungSpellingsCoalesce(t *testing.T) {
	for _, op := range registry.Ops() {
		base := sampleBodies[op.Name()]
		baseKey, baseEval, err := op.Prepare([]byte(base), engine.Env{})
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		baseResp, err := baseEval(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		for _, spelling := range []string{"chung", "CHUNG", "Chung"} {
			body := withModel(t, base, spelling, "")
			key, eval, err := op.Prepare([]byte(body), engine.Env{})
			if err != nil {
				t.Fatalf("%s/%s: %v", op.Name(), spelling, err)
			}
			if key != baseKey {
				t.Errorf("%s: model %q has its own cache key:\n--- omitted ---\n%q\n--- spelled ---\n%q",
					op.Name(), spelling, baseKey, key)
			}
			resp, err := eval(context.Background())
			if err != nil {
				t.Fatalf("%s/%s: eval: %v", op.Name(), spelling, err)
			}
			if string(resp) != string(baseResp) {
				t.Errorf("%s: model %q changes response bytes:\n--- omitted ---\n%s\n--- spelled ---\n%s",
					op.Name(), spelling, baseResp, resp)
			}
		}
	}
}

// TestModelDistinguishesCacheKeys is the flip side of coalescing:
// non-default backends (and distinct params) must produce distinct keys.
func TestModelDistinguishesCacheKeys(t *testing.T) {
	op := opByName(t, "optimize")
	keys := make(map[string]string)
	for _, tc := range []struct{ label, body string }{
		{"chung", sampleBodies["optimize"]},
		{"multiamdahl", withModel(t, sampleBodies["optimize"], "multiamdahl", "")},
		{"sqrtm", withModel(t, sampleBodies["optimize"], "sqrtm", "")},
		{"sqrtm-0.8", withModel(t, sampleBodies["optimize"], "sqrtm", `{"theta":0.8}`)},
	} {
		key, _, err := op.Prepare([]byte(tc.body), engine.Env{})
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if prev, ok := keys[key]; ok {
			t.Errorf("%s and %s share a cache key: %q", tc.label, prev, key)
		}
		keys[key] = tc.label
	}
}

// TestUnknownModelRejected pins the error path: a bad backend name or
// malformed params must 400 at decode, before any evaluation.
func TestUnknownModelRejected(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct{ label, body string }{
		{"unknown name", withModel(t, sampleBodies["optimize"], "amdahl9000", "")},
		{"bad params", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"model":"sqrtm","modelParams":{"theta":-1}}`},
		{"unknown param", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"model":"sqrtm","modelParams":{"beta":2}}`},
	} {
		rec := do(t, s, http.MethodPost, "/v1/optimize", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.label, rec.Code, rec.Body)
		}
	}
}

// TestModelsEndpoint pins GET /v1/models: the default name and the
// registry listing in registration order.
func TestModelsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodGet, "/v1/models", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp ModelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Default != model.DefaultName {
		t.Errorf("default = %q, want %q", resp.Default, model.DefaultName)
	}
	names := model.Names()
	if len(resp.Models) != len(names) {
		t.Fatalf("got %d models, want %d", len(resp.Models), len(names))
	}
	for i, info := range resp.Models {
		if info.Name != names[i] {
			t.Errorf("models[%d] = %q, want %q (registry order)", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("models[%d] %q has no description", i, info.Name)
		}
	}
}

// TestVersionStampsModels asserts the version document advertises the
// backend registry.
func TestVersionStampsModels(t *testing.T) {
	s := newTestServer(t, Config{})
	var info struct {
		Models []string `json:"models"`
	}
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/v1/version", "").Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	want := model.Names()
	if len(info.Models) != len(want) {
		t.Fatalf("version models = %v, want %v", info.Models, want)
	}
	for i := range want {
		if info.Models[i] != want[i] {
			t.Fatalf("version models = %v, want %v", info.Models, want)
		}
	}
}

// TestModelHeaderAndCacheCoalescing exercises the serving layer
// end-to-end: a non-default request carries X-Heterosim-Model, and the
// chung spellings coalesce to one cache entry (second spelling hits).
func TestModelHeaderAndCacheCoalescing(t *testing.T) {
	s := newTestServer(t, Config{})
	body := withModel(t, sampleBodies["optimize"], "multiamdahl", "")
	rec := do(t, s, http.MethodPost, "/v1/optimize", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(headerModel); got != "multiamdahl" {
		t.Errorf("%s = %q, want %q", headerModel, got, "multiamdahl")
	}

	const headerCache = "X-Heterosim-Cache"
	if rec := do(t, s, http.MethodPost, "/v1/optimize", sampleBodies["optimize"]); rec.Header().Get(headerCache) != "miss" {
		t.Fatalf("first default request: cache = %q, want miss", rec.Header().Get(headerCache))
	}
	spelled := withModel(t, sampleBodies["optimize"], "chung", "")
	rec = do(t, s, http.MethodPost, "/v1/optimize", spelled)
	if got := rec.Header().Get(headerCache); got != "hit" {
		t.Errorf(`explicit "model":"chung" missed the cache (got %q): spellings are not coalescing`, got)
	}
	if got := rec.Header().Get(headerModel); got != "chung" {
		t.Errorf("%s = %q, want %q", headerModel, got, "chung")
	}
}
