package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/calcm/heterosim/internal/engine"
)

// prerefactorFixture is one request captured through the pre-registry
// serving stack: the raw body, the canonical cache key it produced, and
// the exact response bytes. testdata/prerefactor.json was generated
// before the pipeline was re-expressed on the operation registry and is
// deliberately not regenerable — it pins the refactor to byte identity.
type prerefactorFixture struct {
	Op       string `json:"op"`
	Body     string `json:"body"`
	Key      string `json:"key"`
	Response string `json:"response"`
}

func loadPrerefactor(t *testing.T) []prerefactorFixture {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "prerefactor.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fixtures []prerefactorFixture
	if err := json.Unmarshal(raw, &fixtures); err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures")
	}
	return fixtures
}

// opByName resolves a registry op for a fixture.
func opByName(t *testing.T, name string) engine.Op {
	t.Helper()
	for _, op := range registry.Ops() {
		if op.Name() == name {
			return op
		}
	}
	t.Fatalf("fixture references unregistered op %q", name)
	return nil
}

// TestGoldenStabilityOps replays the pre-refactor fixtures directly
// through the registry ops: the canonical cache key and the response
// bytes must both match what the hand-rolled handlers produced —
// at the default worker count and at an explicit one, since workers
// must never reach the key or the response bytes.
func TestGoldenStabilityOps(t *testing.T) {
	for _, fx := range loadPrerefactor(t) {
		op := opByName(t, fx.Op)
		for _, env := range []engine.Env{{Workers: 0}, {Workers: 3}} {
			key, eval, err := op.Prepare([]byte(fx.Body), env)
			if err != nil {
				t.Fatalf("%s: Prepare(%s) failed: %v", fx.Op, fx.Body, err)
			}
			if key != fx.Key {
				t.Errorf("%s: cache key drifted (workers=%d):\n--- got ---\n%q\n--- want ---\n%q",
					fx.Op, env.Workers, key, fx.Key)
			}
			resp, err := eval(context.Background())
			if err != nil {
				t.Fatalf("%s: eval failed: %v", fx.Op, err)
			}
			if string(resp) != fx.Response {
				t.Errorf("%s: response drifted (workers=%d):\n--- got ---\n%s\n--- want ---\n%s",
					fx.Op, env.Workers, resp, fx.Response)
			}
		}
	}
}

// TestGoldenStabilityHTTP replays the same fixtures end to end through
// the refactored HTTP pipeline.
func TestGoldenStabilityHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, fx := range loadPrerefactor(t) {
		rec := do(t, s, http.MethodPost, "/v1/"+fx.Op, fx.Body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d (body %s)", fx.Op, rec.Code, rec.Body)
		}
		if rec.Body.String() != fx.Response {
			t.Errorf("%s: HTTP response drifted:\n--- got ---\n%s\n--- want ---\n%s",
				fx.Op, rec.Body.String(), fx.Response)
		}
	}
}
