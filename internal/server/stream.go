package server

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/telemetry"
)

// This file is the one generic NDJSON stream pipeline, written once
// against engine.StreamOp the way model() is written once against
// engine.Op: method check, body read, strict decode + validation
// (decode span), model header, per-request deadline, gate admission
// (one slot for the whole stream), evaluate span, chunked flush, and
// in-band error lines. Streams always evaluate: the response never
// enters the result cache or the peer tier — a stream is a bulk
// export, not a cacheable unit — and the X-Heterosim-Cache header says
// "stream" so clients can tell.
//
// An op may shadow a buffered registry op under the same route (the
// sweep does — `?stream=ndjson` picks the stream) or own a stream-only
// route (the frontier). Either way the stream query parameter is
// classified here, so `?stream=ndjson` on an endpoint with no stream
// form is a clear 400, never silently buffered.

// streamRegistry is the streaming surface, keyed by op name. An entry
// whose name matches a registry op shares that op's route and counter;
// the rest get stream-only routes.
var streamRegistry = map[string]engine.StreamOp{
	streamSweep.Name():    streamSweep,
	streamFrontier.Name(): streamFrontier,
}

// wantsStream classifies a route's stream parameter: absent means the
// buffered form, "ndjson" the stream; anything else is a 400 so typos
// fail loudly instead of silently buffering.
func wantsStream(r *http.Request) (bool, error) {
	switch v := r.URL.Query().Get("stream"); v {
	case "":
		return false, nil
	case "ndjson":
		return true, nil
	default:
		return false, badRequest("unknown stream format %q (want ndjson)", v)
	}
}

// streamRoute dispatches a shared route on its stream parameter: the
// generic buffered pipeline (untouched — its bytes, caching, and
// counters are the pre-stream contract) or the NDJSON stream. A nil
// buffered handler marks a stream-only route, where the bare POST and
// `?stream=ndjson` both stream. i indexes the op's counter, shared by
// both forms.
func (s *Server) streamRoute(i int, op engine.StreamOp, buffered http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		stream, err := wantsStream(r)
		if err != nil {
			s.requests[i].Add(1)
			defer s.timeEndpoint(i)()
			s.writeError(w, err)
			return
		}
		if !stream && buffered != nil {
			buffered(w, r)
			return
		}
		s.requests[i].Add(1)
		defer s.timeEndpoint(i)()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Message: "use POST"})
			return
		}
		s.handleStream(w, r, op)
	}
}

// rejectStreamParam guards a buffered-only route: a stream parameter —
// any value, even the well-formed "ndjson" — is a 400 naming the op,
// instead of being silently ignored and buffering the response.
func (s *Server) rejectStreamParam(i int, name string, buffered http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if v := r.URL.Query().Get("stream"); v != "" {
			s.requests[i].Add(1)
			defer s.timeEndpoint(i)()
			s.writeError(w, badRequest("%s does not stream: drop the stream parameter", name))
			return
		}
		buffered(w, r)
	}
}

// streamEmitter adapts an http.ResponseWriter to engine.StreamEmitter.
// Emit buffers complete NDJSON lines; Flush writes the buffer and
// pushes it through the HTTP flusher, so the op's flush granularity
// (after the header, after each evaluation window) becomes the wire's.
// The first write decides the stream is committed: from then on errors
// go in-band, not as HTTP statuses.
type streamEmitter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	buf     []byte
	started bool // any line emitted: the 200 header is (about to be) spent
	dead    bool // a write failed: the client is gone
}

func (e *streamEmitter) Emit(line []byte) error {
	if e.dead {
		return errStreamClientGone
	}
	e.started = true
	e.buf = append(e.buf, line...)
	e.buf = append(e.buf, '\n')
	return nil
}

func (e *streamEmitter) Flush() error {
	if err := e.write(); err != nil {
		return err
	}
	if e.flusher != nil {
		e.flusher.Flush()
	}
	return nil
}

// write drains the line buffer to the response without forcing an HTTP
// flush.
func (e *streamEmitter) write() error {
	if e.dead {
		return errStreamClientGone
	}
	if len(e.buf) == 0 {
		return nil
	}
	_, err := e.w.Write(e.buf)
	e.buf = e.buf[:0]
	if err != nil {
		e.dead = true
		return errStreamClientGone
	}
	return nil
}

// errStreamClientGone marks a failed response write: the client went
// away mid-stream. Nothing is salvageable — no error line can reach
// anyone — so the pipeline returns without a trace beyond the access
// log's byte count.
var errStreamClientGone = errors.New("stream client gone")

// handleStream serves one stream; the route has already counted the
// request and checked the method.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, op engine.StreamOp) {
	decode := telemetry.StartSpan(r.Context(), stageDecode)
	body, err := readBody(r)
	if err != nil {
		decode.End()
		s.writeError(w, err)
		return
	}
	meta := engine.Meta{}
	stream, err := op.PrepareStream(body, engine.Env{Workers: s.cfg.Workers, Meta: &meta})
	decode.End()
	if meta.Model != "" {
		w.Header().Set(headerModel, meta.Model)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	// Streams always evaluate, so they are admitted like any miss — one
	// slot for the whole stream.
	release, status := s.gate.acquire(ctx)
	if status != 0 {
		s.writeError(w, &apiError{Status: status, Message: "server saturated, retry later"})
		return
	}
	defer release()
	if s.onEvaluate != nil {
		s.onEvaluate(op.Name())
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Heterosim-Cache", "stream")
	flusher, _ := w.(http.Flusher)
	e := &streamEmitter{w: w, flusher: flusher}
	evalSpan := telemetry.StartSpan(ctx, stageEvaluate)
	err = stream(ctx, e)
	evalSpan.End()
	if err != nil {
		if e.dead {
			return // client gone; nothing to clean up
		}
		if !e.started {
			// Nothing emitted: the HTTP status is still ours to spend.
			s.writeError(w, err)
			return
		}
		s.streamError(r.Context(), op.Name(), e, err)
		return
	}
	if err := e.Flush(); err != nil {
		return
	}
	s.responses.ok.Add(1)
}

// streamError reports a failure after frames are on the wire: an
// in-band NDJSON error line, counted under the same response class
// writeError would have used, and logged — a stream that dies with no
// trailer must always be attributable in the access log's vicinity,
// because its HTTP status is a lie (200).
func (s *Server) streamError(ctx context.Context, name string, e *streamEmitter, err error) {
	var ae *apiError
	status := http.StatusInternalServerError
	if errors.As(err, &ae) {
		status = ae.Status
	} else if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	} else if errors.Is(err, context.Canceled) {
		status = http.StatusServiceUnavailable
	}
	if status >= 500 {
		s.responses.serverErr.Add(1)
	} else {
		s.responses.clientErr.Add(1)
	}
	s.logger.LogAttrs(ctx, slog.LevelWarn, "stream failed in-band",
		slog.String("endpoint", name),
		slog.Int("status", status),
		slog.String("error", err.Error()))
	line, merr := json.Marshal(SweepStreamError{Error: err.Error()})
	if merr != nil {
		// The error line itself is unmarshalable — the stream ends
		// truncated, so leave a trace instead of returning silently.
		s.logger.LogAttrs(ctx, slog.LevelError, "stream error line marshal failed",
			slog.String("endpoint", name),
			slog.String("error", merr.Error()))
		e.Flush()
		return
	}
	if e.Emit(line) != nil {
		return
	}
	e.Flush()
}
