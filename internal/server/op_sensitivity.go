package server

import (
	"context"
	"encoding/json"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/sensitivity"
)

// POST /v1/sensitivity — input elasticities and a Monte Carlo speedup
// interval for one design point.

// maxMCSamples bounds one Monte Carlo request: 100k draws evaluate in
// well under a second; anything larger should be split by the client.
const maxMCSamples = 100_000

// SensitivityRequest profiles how a design point responds to input
// error: the local elasticity of speedup with respect to each model
// input (central difference with relative step), plus a speedup
// interval under log-normal perturbation of every input at once.
type SensitivityRequest struct {
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Node        string          `json:"node,omitempty"`
	Design      DesignSpec      `json:"design"`
	Alpha       float64         `json:"alpha,omitempty"`
	Step        float64         `json:"step,omitempty"`    // central-difference step, default 0.01
	Sigma       float64         `json:"sigma,omitempty"`   // log-normal spread, default 0.2
	Samples     int             `json:"samples,omitempty"` // Monte Carlo draws, default 1000
	Seed        int64           `json:"seed,omitempty"`    // RNG seed, default 1
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
	Workers     int             `json:"workers,omitempty"`
}

// IntervalJSON is a Monte Carlo speedup range on the wire. Samples is
// the number of feasible draws the quantiles were computed from.
type IntervalJSON struct {
	Nominal float64 `json:"nominal"`
	P05     float64 `json:"p05"`
	Median  float64 `json:"median"`
	P95     float64 `json:"p95"`
	Samples int     `json:"samples"`
}

// SensitivityResponse reports the elasticity profile (keyed by input
// name; mu/phi appear only for heterogeneous designs) and the interval.
type SensitivityResponse struct {
	Workload     string             `json:"workload"`
	Node         string             `json:"node"`
	Design       string             `json:"design"`
	F            float64            `json:"f"`
	Step         float64            `json:"step"`
	Sigma        float64            `json:"sigma"`
	Elasticities map[string]float64 `json:"elasticities"`
	MonteCarlo   IntervalJSON       `json:"monteCarlo"`
	Model        string             `json:"model,omitempty"`
}

var opSensitivity = engine.New("sensitivity", buildSensitivity)

func buildSensitivity(req *SensitivityRequest, env engine.Env) (func(context.Context) (SensitivityResponse, error), error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if err := engine.CheckF(req.F); err != nil {
		return nil, err
	}
	if req.Node == "" {
		req.Node = "40nm"
	}
	d, err := req.Design.resolve(w)
	if err != nil {
		return nil, err
	}
	ev, err := evaluatorFor(req.Alpha)
	if err != nil {
		return nil, err
	}
	mdl, err := resolveModel(&req.Model, &req.ModelParams, req.Alpha, env)
	if err != nil {
		return nil, err
	}
	// The sensitivity machinery optimizes through its Optimizer
	// interface, so a non-default backend substitutes for the evaluator
	// wholesale: elasticities and Monte Carlo intervals perturb the
	// selected model, not the Chung baseline.
	var opt sensitivity.Optimizer = ev
	if mdl != nil {
		opt = mdl
	}
	// Defaults are materialized into the request before keying so every
	// spelling of "the defaults" shares one cache entry. The comparisons
	// are written accept-side so NaN fails them.
	if req.Step == 0 {
		req.Step = 0.01
	}
	if !(req.Step > 0 && req.Step < 0.5) {
		return nil, badRequest("step must be in (0, 0.5), got %v", req.Step)
	}
	if req.Sigma == 0 {
		req.Sigma = 0.2
	}
	if !(req.Sigma > 0 && req.Sigma <= 2) {
		return nil, badRequest("sigma must be in (0, 2], got %v", req.Sigma)
	}
	if req.Samples == 0 {
		req.Samples = 1000
	}
	if req.Samples < 10 || req.Samples > maxMCSamples {
		return nil, badRequest("samples must be in [10, %d], got %d", maxMCSamples, req.Samples)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	b, err := nodeBudgets(w, req.Node)
	if err != nil {
		return nil, err
	}
	workers := workersOr(&req.Workers, env)
	return func(ctx context.Context) (SensitivityResponse, error) {
		prof, err := sensitivity.ProfileCtx(ctx, opt, d, req.F, b, req.Step, workers)
		if err != nil {
			return SensitivityResponse{}, evalFailure(err, unprocessable)
		}
		iv, err := sensitivity.MonteCarloCtx(ctx, opt, d, req.F, b, req.Sigma, req.Samples, req.Seed, workers)
		if err != nil {
			return SensitivityResponse{}, evalFailure(err, unprocessable)
		}
		el := make(map[string]float64, len(prof))
		for in, e := range prof {
			el[in.String()] = e
		}
		return SensitivityResponse{
			Workload:     req.Workload,
			Node:         req.Node,
			Design:       d.Label,
			F:            req.F,
			Step:         req.Step,
			Sigma:        req.Sigma,
			Elasticities: el,
			MonteCarlo: IntervalJSON{
				Nominal: iv.Nominal,
				P05:     iv.P05,
				Median:  iv.Median,
				P95:     iv.P95,
				Samples: iv.Samples,
			},
			Model: req.Model,
		}, nil
	}, nil
}
