package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"github.com/calcm/heterosim/internal/ablation"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/sensitivity"
)

// TestSensitivityEndpoint checks /v1/sensitivity against the sensitivity
// package called directly with the same parameters — the endpoint is a
// transport, not a second model.
func TestSensitivityEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/sensitivity",
		`{"workload":"FFT-1024","f":0.99,"node":"22nm","design":{"kind":"het","device":"ASIC"},"samples":100}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp SensitivityResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	cfg := project.DefaultConfig(paper.FFT1024)
	node, err := cfg.Roadmap.ByName("22nm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.BudgetsAt(node)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Design{Kind: core.Het, Label: "ASIC"}
	d.UCore.Mu, d.UCore.Phi = resolveASIC(t)
	ev := core.NewEvaluator()
	prof, err := sensitivity.Profile(ev, d, 0.99, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Elasticities) != len(prof) {
		t.Fatalf("elasticities = %v, want %d entries", resp.Elasticities, len(prof))
	}
	for in, want := range prof {
		if got := resp.Elasticities[in.String()]; got != want {
			t.Errorf("elasticity[%s] = %v, want %v", in, got, want)
		}
	}
	iv, err := sensitivity.MonteCarlo(ev, d, 0.99, b, 0.2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := IntervalJSON{Nominal: iv.Nominal, P05: iv.P05, Median: iv.Median, P95: iv.P95, Samples: iv.Samples}
	if resp.MonteCarlo != got {
		t.Errorf("monteCarlo = %+v, want %+v", resp.MonteCarlo, got)
	}
	if resp.Step != 0.01 || resp.Sigma != 0.2 {
		t.Errorf("defaults not echoed: step=%v sigma=%v", resp.Step, resp.Sigma)
	}
}

// resolveASIC fetches the published (mu, phi) for ASIC on FFT-1024 via
// the same DesignSpec path the handler uses.
func resolveASIC(t *testing.T) (mu, phi float64) {
	t.Helper()
	ds := DesignSpec{Kind: "het", Device: "ASIC"}
	d, err := ds.resolve(paper.FFT1024)
	if err != nil {
		t.Fatal(err)
	}
	return d.UCore.Mu, d.UCore.Phi
}

func TestSensitivityValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"bad step", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"step":0.7}`, http.StatusBadRequest},
		{"negative step", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"step":-0.1}`, http.StatusBadRequest},
		{"huge sigma", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"sigma":50}`, http.StatusBadRequest},
		{"few samples", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"samples":5}`, http.StatusBadRequest},
		{"absurd samples", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"samples":100000000}`, http.StatusBadRequest},
		{"unknown node", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"node":"3nm"}`, http.StatusBadRequest},
		{"unknown field", `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"hsteps":1}`, http.StatusBadRequest},
	} {
		rec := do(t, s, http.MethodPost, "/v1/sensitivity", tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.status, rec.Body)
		}
	}
}

// TestAblationEndpoint checks /v1/ablation against ablation.Studies
// called directly, study names and node resolution included.
func TestAblationEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/ablation", `{"workload":"FFT-1024","f":0.999}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp AblationResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Node != "11nm" {
		t.Errorf("default node = %q, want 11nm", resp.Node)
	}
	studies, err := ablation.Studies(paper.FFT1024, 0.999, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Studies) != len(studies) {
		t.Fatalf("got %d studies, want %d", len(resp.Studies), len(studies))
	}
	for i, st := range resp.Studies {
		if st.Study != ablationStudyNames[i] {
			t.Errorf("study[%d] = %q, want %q", i, st.Study, ablationStudyNames[i])
		}
		if len(st.Results) != len(studies[i]) {
			t.Fatalf("study %s: got %d results, want %d", st.Study, len(st.Results), len(studies[i]))
		}
		for j, r := range st.Results {
			want := studies[i][j]
			if r.Design != want.Design || r.Baseline != want.Baseline ||
				r.Ablated != want.Ablated || r.Ratio != want.Ratio {
				t.Errorf("study %s result %d = %+v, want %+v", st.Study, j, r, want)
			}
		}
	}
}

func TestAblationValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown node", `{"workload":"MMM","f":0.9,"node":"7nm"}`, http.StatusBadRequest},
		{"bad f", `{"workload":"MMM","f":1.5}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope","f":0.9}`, http.StatusBadRequest},
		{"unknown field", `{"workload":"MMM","f":0.9,"nodeIdx":4}`, http.StatusBadRequest},
	} {
		rec := do(t, s, http.MethodPost, "/v1/ablation", tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.status, rec.Body)
		}
	}
}

// TestNewOpsEvalHonorsContext proves the deadline contract holds for the
// two new operations: their evaluate closures thread the request context
// down into par.Map, so a cancelled request aborts evaluation instead of
// burning worker time. (server.writeError then maps the context error to
// 504/503; that mapping is covered by the resilience tests.)
func TestNewOpsEvalHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, op := range []engine.Op{opSensitivity, opAblation} {
		_, eval, err := op.Prepare([]byte(sampleBodies[op.Name()]), engine.Env{})
		if err != nil {
			t.Fatalf("%s: Prepare: %v", op.Name(), err)
		}
		if _, err := eval(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: eval(cancelled ctx) = %v, want context.Canceled", op.Name(), err)
		}
	}
}

// TestAxisSpecEdgeCases pins the sweep-axis materialization rules the
// shared validation layer enforces.
func TestAxisSpecEdgeCases(t *testing.T) {
	if _, err := (AxisSpec{}).values("f"); err == nil {
		t.Error("empty axis: want error, got none")
	}
	if _, err := (AxisSpec{Values: []float64{0.9}, Steps: 3}).values("f"); err == nil {
		t.Error("values plus lo/hi/steps: want error, got none")
	}
	if _, err := (AxisSpec{Lo: 0.1, Hi: 0.9, Steps: 0}).values("f"); err == nil {
		t.Error("zero steps: want error, got none")
	}
	got, err := (AxisSpec{Lo: 0.5, Hi: 0.9, Steps: 1}).values("f")
	if err != nil || len(got) != 1 || got[0] != 0.5 {
		t.Errorf("single point: got %v, %v; want [0.5]", got, err)
	}
	got, err = (AxisSpec{Values: []float64{0.7}}).values("f")
	if err != nil || len(got) != 1 || got[0] != 0.7 {
		t.Errorf("single value: got %v, %v; want [0.7]", got, err)
	}
	// Reversed bounds are legal and descend: the grid preserves the
	// caller's axis order rather than silently sorting it.
	got, err = (AxisSpec{Lo: 0.9, Hi: 0.1, Steps: 3}).values("f")
	if err != nil || len(got) != 3 || got[0] != 0.9 || got[2] != 0.1 || got[1] >= got[0] {
		t.Errorf("reversed bounds: got %v, %v; want descending [0.9 0.5 0.1]", got, err)
	}
	if ax := unitAxis(nil); len(ax.Values) != 1 || ax.Values[0] != 1 {
		t.Errorf("unitAxis(nil) = %+v, want values [1]", ax)
	}
	if ax := unitAxis(&AxisSpec{Lo: 0.5, Hi: 2, Steps: 4}); ax.Steps != 4 || ax.Lo != 0.5 {
		t.Errorf("unitAxis(non-nil) = %+v, want passthrough", ax)
	}
}
