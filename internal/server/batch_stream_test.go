package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// streamSweepBody is the small two-axis sweep the stream tests share.
const streamSweepBody = `{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0.5,"hi":0.99,"steps":5},"areaScale":{"values":[0.5,1,2]}}`

// mustGolden reads a non-regenerable golden: these files pin wire
// contracts (the batch response shape, the NDJSON row schema) that
// clients parse, so there is deliberately no -update path — changing
// them is an API break and must be a conscious edit.
func mustGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("%v (this golden is the wire contract; there is no -update, edit it by hand)", err)
	}
	return b
}

// TestBatchShapeGolden pins the full /v1/batch response — envelope
// keys, item order, per-item status/cache/model/error fields — for a
// deterministic mixed batch: one cold optimize (miss), one unknown op,
// one invalid body.
func TestBatchShapeGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/batch", `{"items":[`+
		`{"op":"optimize","request":{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}},`+
		`{"op":"nosuch","request":{}},`+
		`{"op":"optimize","request":{"workload":"bogus","f":0.9,"design":{"kind":"sym"}}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	want := mustGolden(t, "batch_shape.golden")
	if got := rec.Body.Bytes(); !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Errorf("/v1/batch response drifted from the pinned wire shape:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSweepStreamGolden pins the complete NDJSON stream — header line
// schema, row schema and order, trailer line — for the shared sweep.
func TestSweepStreamGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/sweep?stream=ndjson", streamSweepBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if cc := rec.Header().Get("X-Heterosim-Cache"); cc != "stream" {
		t.Errorf("X-Heterosim-Cache = %q, want stream", cc)
	}
	want := mustGolden(t, "sweep_stream.golden")
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("streamed sweep drifted from the pinned NDJSON contract:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// rawSweepResponse splits a buffered sweep body into its raw parts for
// byte-level comparison with the stream.
type rawSweepResponse struct {
	Workload string            `json:"workload"`
	Node     string            `json:"node"`
	Design   string            `json:"design"`
	Axes     json.RawMessage   `json:"axes"`
	Points   []json.RawMessage `json:"points"`
	Feasible int               `json:"feasible"`
	Best     json.RawMessage   `json:"best"`
	Model    string            `json:"model"`
}

// TestSweepStreamMatchesBuffered is the streamed == buffered property,
// across every model backend: each NDJSON row must be byte-identical
// to the buffered response's corresponding points element, in order,
// and the trailer must carry the same best cell and feasible count.
func TestSweepStreamMatchesBuffered(t *testing.T) {
	for _, backend := range []string{"", "multiamdahl", "multiamdahl-thermal", "sqrtm"} {
		name := backend
		if name == "" {
			name = "default"
		}
		t.Run(name, func(t *testing.T) {
			body := streamSweepBody
			if backend != "" {
				body = strings.Replace(body, `{"workload"`, `{"model":"`+backend+`","workload"`, 1)
			}
			s := newTestServer(t, Config{})
			buf := do(t, s, http.MethodPost, "/v1/sweep", body)
			if buf.Code != http.StatusOK {
				t.Fatalf("buffered status = %d (body %s)", buf.Code, buf.Body)
			}
			var want rawSweepResponse
			if err := json.Unmarshal(buf.Body.Bytes(), &want); err != nil {
				t.Fatal(err)
			}

			st := do(t, s, http.MethodPost, "/v1/sweep?stream=ndjson", body)
			if st.Code != http.StatusOK {
				t.Fatalf("stream status = %d (body %s)", st.Code, st.Body)
			}
			lines := strings.Split(strings.TrimSuffix(st.Body.String(), "\n"), "\n")
			if len(lines) != len(want.Points)+2 {
				t.Fatalf("stream has %d lines, want %d rows + header + trailer", len(lines), len(want.Points))
			}
			var hdr SweepStreamHeader
			if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
				t.Fatal(err)
			}
			if hdr.Workload != want.Workload || hdr.Node != want.Node || hdr.Design != want.Design || hdr.Model != want.Model {
				t.Errorf("header identity = %+v, want %s/%s/%s model %q", hdr, want.Workload, want.Node, want.Design, want.Model)
			}
			for i, p := range want.Points {
				if lines[i+1] != string(p) {
					t.Fatalf("row %d differs from buffered points[%d]:\n got %s\nwant %s", i, i, lines[i+1], p)
				}
			}
			var trailer struct {
				Feasible int             `json:"feasible"`
				Best     json.RawMessage `json:"best"`
			}
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
				t.Fatal(err)
			}
			if trailer.Feasible != want.Feasible {
				t.Errorf("trailer feasible = %d, want %d", trailer.Feasible, want.Feasible)
			}
			if string(trailer.Best) != string(want.Best) {
				t.Errorf("trailer best = %s, want %s", trailer.Best, want.Best)
			}
		})
	}
}

// TestBatchItemMatchesStandalone: a batch item's response bytes are
// exactly the standalone endpoint's for the same body.
func TestBatchItemMatchesStandalone(t *testing.T) {
	s := newTestServer(t, Config{})
	opt := `{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`
	prj := `{"workload":"MMM","f":0.9}`
	standaloneOpt := do(t, s, http.MethodPost, "/v1/optimize", opt).Body.String()
	standalonePrj := do(t, s, http.MethodPost, "/v1/project", prj).Body.String()

	rec := do(t, s, http.MethodPost, "/v1/batch",
		`{"items":[{"op":"optimize","request":`+opt+`},{"op":"project","request":`+prj+`}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK != 2 || resp.Failed != 0 {
		t.Fatalf("ok/failed = %d/%d, want 2/0", resp.OK, resp.Failed)
	}
	if got := string(resp.Items[0].Response); got != strings.TrimSpace(standaloneOpt) {
		t.Errorf("optimize item bytes differ from standalone:\n got %s\nwant %s", got, standaloneOpt)
	}
	if got := string(resp.Items[1].Response); got != strings.TrimSpace(standalonePrj) {
		t.Errorf("project item bytes differ from standalone:\n got %s\nwant %s", got, standalonePrj)
	}
	// Both landed in the shared cache first, so the batch items are hits.
	for i, it := range resp.Items {
		if it.Cache != "hit" {
			t.Errorf("item %d cache = %q, want hit (standalone call warmed the key)", i, it.Cache)
		}
	}
}

// TestBatchComputesOnceForIdenticalItems: identical items in one batch
// share a single evaluation through the coalescing cache.
func TestBatchComputesOnceForIdenticalItems(t *testing.T) {
	s := newTestServer(t, Config{})
	var evals atomic.Int32
	s.onEvaluate = func(string) { evals.Add(1) }
	item := `{"op":"optimize","request":{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}}`
	items := item + strings.Repeat(","+item, 7)
	rec := do(t, s, http.MethodPost, "/v1/batch", `{"items":[`+items+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK != 8 {
		t.Fatalf("ok = %d, want 8", resp.OK)
	}
	if got := evals.Load(); got != 1 {
		t.Errorf("evaluations = %d, want 1 (identical items must coalesce)", got)
	}
	for i := 1; i < len(resp.Items); i++ {
		if !bytes.Equal(resp.Items[i].Response, resp.Items[0].Response) {
			t.Errorf("item %d bytes differ from item 0", i)
		}
	}
}

// TestBatchAdmittedOnce: a whole batch of cold distinct items occupies
// exactly one admission slot.
func TestBatchAdmittedOnce(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/batch", `{"items":[`+
		`{"op":"optimize","request":{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}},`+
		`{"op":"optimize","request":{"workload":"MMM","f":0.95,"design":{"kind":"sym"}}},`+
		`{"op":"optimize","request":{"workload":"MMM","f":0.99,"design":{"kind":"sym"}}},`+
		`{"op":"project","request":{"workload":"MMM","f":0.9}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if got := s.Snapshot().Admission.Accepted; got != 1 {
		t.Errorf("admission accepted = %d, want 1 (one slot per batch)", got)
	}
}

// TestBatchStructural: envelope failures are batch-level, not
// itemized.
func TestBatchStructural(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := do(t, s, http.MethodGet, "/v1/batch", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/v1/batch", `{"items":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty items status = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/v1/batch", `{bad`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed status = %d, want 400", rec.Code)
	}
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"op":"optimize","request":{}}`)
	}
	sb.WriteString(`]}`)
	if rec := do(t, s, http.MethodPost, "/v1/batch", sb.String()); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", rec.Code)
	}
}

// TestBatchCountsOneRequest: a batch is one request in /metrics
// regardless of item count.
func TestBatchCountsOneRequest(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, http.MethodPost, "/v1/batch", `{"items":[`+
		`{"op":"optimize","request":{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}},`+
		`{"op":"project","request":{"workload":"MMM","f":0.9}}]}`)
	m := s.Snapshot()
	if got := m.Requests["batch"]; got != 1 {
		t.Errorf("requests.batch = %d, want 1", got)
	}
	if got := m.Requests["optimize"]; got != 0 {
		t.Errorf("requests.optimize = %d, want 0 (batch items are not endpoint requests)", got)
	}
}

// TestSweepStreamBadParam: unknown stream formats fail loudly, and the
// buffered path is untouched when the parameter is absent.
func TestSweepStreamBadParam(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := do(t, s, http.MethodPost, "/v1/sweep?stream=xml", streamSweepBody); rec.Code != http.StatusBadRequest {
		t.Errorf("stream=xml status = %d, want 400", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/sweep?stream=ndjson", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET stream status = %d, want 405", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/v1/sweep", streamSweepBody); rec.Code != http.StatusOK ||
		rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("buffered sweep: status %d content-type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
}

// TestSweepStreamValidationFailsBeforeHeader: a bad request is a plain
// HTTP error — no stream ever starts.
func TestSweepStreamValidationFailsBeforeHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/sweep?stream=ndjson", `{"workload":"nope","design":{"kind":"sym"},"f":{"values":[0.9]}}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct == "application/x-ndjson" {
		t.Error("error response must not claim to be a stream")
	}
}

// TestSweepStreamDeadlineCancelsMidStream: a deadline expiring while
// rows are flowing ends the stream with an in-band error line instead
// of hanging or emitting a trailer, and the grid stops early.
func TestSweepStreamDeadlineCancelsMidStream(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: 3 * time.Millisecond})
	// 500 x 400 = 200k cells: far more than 3ms of evaluation.
	rec := do(t, s, http.MethodPost, "/v1/sweep?stream=ndjson",
		`{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0.01,"hi":0.99,"steps":500},"areaScale":{"lo":0.5,"hi":2,"steps":400}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (the stream commits to 200 before evaluating)", rec.Code)
	}
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	var e SweepStreamError
	if err := json.Unmarshal([]byte(last), &e); err != nil || e.Error == "" {
		t.Fatalf("last line = %q, want an in-band error line", last)
	}
	if !strings.Contains(e.Error, "deadline") {
		t.Errorf("error = %q, want a deadline error", e.Error)
	}
	if len(lines) >= 200_000+2 {
		t.Error("stream ran the whole grid despite the expired deadline")
	}
	if got := s.Snapshot().Responses["serverError"]; got != 1 {
		t.Errorf("responses.serverError = %d, want 1 (504-class in-band failure)", got)
	}
}

// FuzzBatch holds the batch envelope to the same contract as every
// other endpoint: no panics, no 5xx for malformed input, always valid
// JSON — with the added wrinkle that per-item garbage must be itemized
// rather than failing the envelope.
func FuzzBatch(f *testing.F) {
	fuzzEndpoint(f, "/v1/batch", []string{
		`{"items":[{"op":"optimize","request":{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}}]}`,
		`{"items":[{"op":"optimize","request":{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}},{"op":"project","request":{"workload":"MMM","f":0.9}}]}`,
		`{"items":[{"op":"nosuch","request":{}}]}`,
		`{"items":[{"op":"optimize","request":{"model":"multiamdahl","workload":"MMM","f":0.9,"design":{"kind":"sym"}}},{"op":"optimize","request":{"model":"sqrtm","workload":"MMM","f":0.9,"design":{"kind":"sym"}}}]}`,
		`{"items":[{"op":"optimize","request":{"model":"nope","workload":"MMM","f":0.9,"design":{"kind":"sym"}}}]}`,
		`{"items":[{"op":"optimize","request":{bad}}]}`,
		`{"items":[{"op":"optimize"}]}`,
		`{"items":[{"op":"","request":null}]}`,
		`{"items":[{"op":"sweep","request":{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0,"hi":1,"steps":2000000}}}]}`,
		`{"items":[{"op":"optimize","request":{"workload":"MMM","f":NaN,"design":{"kind":"sym"}}}]}`,
		`{"items":[]}`,
		`{"items":[{"op":"batch","request":{"items":[]}}]}`,
		`{"items":null}`,
		`{bad`,
		`[]`,
		``,
	})
}
