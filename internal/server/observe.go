package server

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"github.com/calcm/heterosim/internal/telemetry"
)

// Histogram family and stage names. Stages follow a model request
// through the pipeline: decode (read + validate + canonicalize), cache
// (lookup / coalesce wait), gate (admission wait), evaluate (model
// work; sweep additionally times its parallel grid), encode (response
// write).
const (
	famRequestDuration = "request_duration_seconds"
	famStageDuration   = "stage_duration_seconds"

	stageDecode   = "decode"
	stageEvaluate = "evaluate"
	stageEncode   = "encode"
)

// headerModel names the response header carrying the canonical model
// backend that answered a model request (set for every resolvable
// request, including defaulted ones, so logs can attribute load per
// backend without parsing bodies).
const headerModel = "X-Heterosim-Model"

// noopLogger swallows everything; it stands in when Config.Logger is
// nil so the serving path never nil-checks.
var noopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// observe is the outermost middleware: it assigns the request ID
// (accepted from X-Request-ID when well-formed, minted otherwise),
// attaches the ID and the stage-histogram family to the context,
// echoes the ID on the response, and emits exactly one structured log
// line per request — even when a downstream handler aborts the
// connection (the deferred log runs while the panic unwinds, then the
// panic continues to net/http untouched).
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := telemetry.SanitizeRequestID(r.Header.Get(telemetry.HeaderRequestID))
		if id == "" {
			id = telemetry.NewRequestID()
		}
		ctx := telemetry.WithRequestID(r.Context(), id)
		ctx = telemetry.WithStages(ctx, s.stageHist)
		r = r.WithContext(ctx)
		w.Header().Set(telemetry.HeaderRequestID, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Bool("aborted", sw.status == 0),
				slog.String("cache", sw.Header().Get("X-Heterosim-Cache")),
				slog.String("model", sw.Header().Get(headerModel)),
				slog.Float64("durMs", float64(time.Since(start))/float64(time.Millisecond)),
			)
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter records the response status and size for the access log.
// It forwards Flush so middleware beneath it (the fault injector's
// truncate path) keeps working.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// timeEndpoint starts the per-endpoint latency clock; the returned stop
// records into the request-duration family under the endpoint's name
// (i indexes Server.names). Call it where the endpoint's request
// counter increments, so histogram counts and the JSON counters always
// agree.
func (s *Server) timeEndpoint(i int) func() {
	start := time.Now()
	return func() {
		s.reqHist.Observe(s.names[i], time.Since(start))
	}
}

// wantsPrometheus decides the /metrics rendering: the explicit
// ?format= query wins (prometheus or json), otherwise an Accept header
// asking for text/plain or OpenMetrics selects the exposition format,
// and everything else keeps the JSON document — the PR 2/3 contract.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// writePrometheus renders the full metric surface — every counter the
// JSON document carries, plus the latency histograms — in Prometheus
// text exposition format under the heterosimd namespace.
func (s *Server) writePrometheus(w io.Writer) error {
	m := s.Snapshot()
	type counter struct {
		name       string
		kind       string
		labelKey   string
		labelValue string
		value      int64
	}
	samples := []counter{
		{"heterosimd_responses_total", "counter", "class", "ok", m.Responses["ok"]},
		{"heterosimd_responses_total", "", "class", "clientError", m.Responses["clientError"]},
		{"heterosimd_responses_total", "", "class", "serverError", m.Responses["serverError"]},
		{"heterosimd_cache_hits_total", "counter", "", "", m.Cache.Hits},
		{"heterosimd_cache_misses_total", "counter", "", "", m.Cache.Misses},
		{"heterosimd_cache_coalesced_total", "counter", "", "", m.Cache.Coalesced},
		{"heterosimd_cache_evictions_total", "counter", "", "", m.Cache.Evictions},
		{"heterosimd_cache_stale_served_total", "counter", "", "", m.Cache.StaleServed},
		{"heterosimd_cache_entries", "gauge", "", "", int64(m.Cache.Entries)},
		{"heterosimd_cache_stale_entries", "gauge", "", "", int64(m.Cache.StaleEntries)},
		{"heterosimd_cache_capacity", "gauge", "", "", int64(m.Cache.Capacity)},
		{"heterosimd_cache_inflight", "gauge", "", "", m.Cache.Inflight},
		{"heterosimd_admission_accepted_total", "counter", "", "", m.Admission.Accepted},
		{"heterosimd_admission_rejected_full_total", "counter", "", "", m.Admission.RejectedFull},
		{"heterosimd_admission_rejected_timeout_total", "counter", "", "", m.Admission.RejectedTimeout},
		{"heterosimd_admission_rejected_deadline_total", "counter", "", "", m.Admission.RejectedDeadline},
		{"heterosimd_admission_inflight", "gauge", "", "", int64(m.Admission.Inflight)},
		{"heterosimd_admission_queued", "gauge", "", "", m.Admission.Queued},
		{"heterosimd_admission_max_inflight", "gauge", "", "", int64(m.Admission.MaxInflight)},
		{"heterosimd_admission_max_queue", "gauge", "", "", m.Admission.MaxQueue},
		{"heterosimd_workers", "gauge", "", "", int64(m.Workers)},
	}
	if m.Peers != nil {
		samples = append(samples,
			counter{"heterosimd_peer_fetches_total", "counter", "", "", m.Peers.Fetches},
			counter{"heterosimd_peer_hits_total", "counter", "", "", m.Peers.Hits},
			counter{"heterosimd_peer_misses_total", "counter", "", "", m.Peers.Misses},
			counter{"heterosimd_peer_fetch_errors_total", "counter", "", "", m.Peers.FetchErrors},
			counter{"heterosimd_peer_local_fallbacks_total", "counter", "", "", m.Peers.LocalFallbacks},
		)
	}
	if err := telemetry.WriteType(w, "heterosimd_uptime_seconds", "gauge"); err != nil {
		return err
	}
	if err := telemetry.WriteGaugeFloat(w, "heterosimd_uptime_seconds", m.UptimeSeconds); err != nil {
		return err
	}
	if err := telemetry.WriteType(w, "heterosimd_requests_total", "counter"); err != nil {
		return err
	}
	for _, name := range s.names {
		if err := telemetry.WriteCounter(w, "heterosimd_requests_total", "endpoint", name, m.Requests[name]); err != nil {
			return err
		}
	}
	for _, c := range samples {
		if c.kind != "" {
			if err := telemetry.WriteType(w, c.name, c.kind); err != nil {
				return err
			}
		}
		if err := telemetry.WriteCounter(w, c.name, c.labelKey, c.labelValue, c.value); err != nil {
			return err
		}
	}
	return telemetry.WritePrometheus(w, "heterosimd", s.tel.Snapshot())
}

// Telemetry exposes the server's histogram registry, for tests and the
// measurement harness.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }
