// Package server is the serving layer of the reproduction: JSON-over-HTTP
// endpoints exposing the Chung et al. model — single design points,
// (f x budget) sweeps, ITRS trajectory projections, and the Section 6.2
// scenario studies — backed by a sharded result cache with request
// coalescing (internal/servecache) and a bounded-concurrency admission
// gate so overload degrades to 429/503 instead of collapsing.
//
// The model is a pure function of the request, which shapes the whole
// design: responses are cached as final bytes keyed by a canonical
// encoding of the request, identical concurrent requests coalesce onto
// one evaluation, and every response is byte-identical at any worker
// count (the engine's determinism guarantee carries through the wire).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/servecache"
	"github.com/calcm/heterosim/internal/telemetry"
	"github.com/calcm/heterosim/internal/version"
)

// Config parameterizes the serving layer. The zero value is usable:
// every field has a production default applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string

	// Workers sizes the evaluation worker pool used when a request does
	// not ask for a specific count; <= 0 means GOMAXPROCS. Responses are
	// byte-identical at every worker count.
	Workers int

	// CacheEntries bounds the result cache (default 4096 responses).
	// Any negative value disables storage but keeps request coalescing.
	CacheEntries int

	// MaxInflight bounds concurrent model evaluations admitted past the
	// gate (default 2 x GOMAXPROCS). Cache hits bypass the gate.
	MaxInflight int

	// MaxQueue bounds requests waiting for an evaluation slot; one more
	// is rejected immediately with 429 (default MaxInflight).
	MaxQueue int

	// QueueTimeout bounds how long a queued request waits for a slot
	// before a 503 (default 2s).
	QueueTimeout time.Duration

	// RequestTimeout bounds one model request end to end: queue wait plus
	// evaluation. Work still running at the deadline is cancelled through
	// the engine's context and the request gets 504 (or a stale cached
	// response, when one is retained). 0 means the default 30s; any
	// negative value disables per-request deadlines.
	RequestTimeout time.Duration

	// Middleware, when non-nil, wraps the root handler — the daemon uses
	// it to splice in fault injection behind its env guard. It must not
	// be changed after New. The observability middleware (request IDs,
	// access logging) wraps outside it, so injected faults are logged
	// like any other response.
	Middleware func(http.Handler) http.Handler

	// Peers, when non-empty, turns on the peer-aware cache tier: the
	// static cluster membership as base URLs (bare host:port accepted).
	// Every member must be given the same set — ownership of each
	// canonical cache key is consistent-hashed over the sorted
	// membership, so the lists must agree for the ring to agree.
	// PeerSelf is required alongside it.
	Peers []string

	// PeerSelf is this process's own base URL as it appears in Peers —
	// how the server recognizes the keys it owns.
	PeerSelf string

	// PeerTimeout bounds one owner fetch (default 10s). The request
	// deadline still applies on top; whichever is sooner wins.
	PeerTimeout time.Duration

	// Logger receives one structured line per request plus lifecycle
	// events. nil means discard (tests stay quiet by default).
	Logger *slog.Logger
}

// withDefaults normalizes the config: worker counts go through
// par.Normalize (the same helper the CLI flag uses) and unset fields get
// production defaults.
func (c Config) withDefaults() (Config, error) {
	c.Workers = par.Normalize(c.Workers)
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = -1 // canonical "coalescing only"
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 2 * par.Workers(0)
	}
	if c.MaxInflight < 1 {
		return c, errors.New("server: MaxInflight must be >= 1")
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = c.MaxInflight
	}
	if c.MaxQueue < 0 {
		return c, errors.New("server: MaxQueue must be >= 0")
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.QueueTimeout < 0 {
		return c, errors.New("server: QueueTimeout must be >= 0")
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = -1 // canonical "no per-request deadline"
	}
	if c.PeerTimeout == 0 {
		c.PeerTimeout = 10 * time.Second
	}
	if c.PeerTimeout < 0 {
		return c, errors.New("server: PeerTimeout must be >= 0")
	}
	if len(c.Peers) > 0 && c.PeerSelf == "" {
		return c, errors.New("server: Peers requires PeerSelf")
	}
	if len(c.Peers) == 0 && c.PeerSelf != "" {
		return c, errors.New("server: PeerSelf requires Peers")
	}
	return c, nil
}

// Server is the HTTP serving layer. Construct with New; it is safe for
// concurrent use.
type Server struct {
	cfg     Config
	cache   *servecache.Cache
	cluster *servecache.Cluster // nil when single-node
	gate    *gate
	mux     *http.ServeMux
	handler http.Handler // mux, possibly wrapped by cfg.Middleware, inside observe
	start   time.Time
	logger  *slog.Logger

	// tel holds the latency histograms: reqHist per endpoint, stageHist
	// per pipeline stage (decode/cache/gate/evaluate/encode/sweep).
	tel       *telemetry.Registry
	reqHist   *telemetry.Family
	stageHist *telemetry.Family

	// names and requests are the per-endpoint counters, indexed in
	// registry order with the GET endpoints appended — both derived from
	// the registry in New, so a new op gets its counter for free.
	names     []string
	requests  []atomic.Int64
	responses struct{ ok, clientErr, serverErr atomic.Int64 }

	// onEvaluate, when set (tests only), observes every actual model
	// evaluation — after admission, on misses only — keyed by endpoint.
	onEvaluate func(endpoint string)
}

// New builds a Server from the config (zero value = production
// defaults).
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	entries := cfg.CacheEntries
	if entries < 0 {
		entries = 0
	}
	cache, err := servecache.New(entries)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		cache:  cache,
		gate:   newGate(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueTimeout),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		logger: cfg.Logger,
		tel:    telemetry.NewRegistry(),
	}
	if s.logger == nil {
		s.logger = noopLogger
	}
	s.reqHist = s.tel.Family(famRequestDuration, "endpoint")
	s.stageHist = s.tel.Family(famStageDuration, "stage")
	if err := s.initCluster(); err != nil {
		return nil, err
	}
	ops := registry.Ops()
	s.names = append(append(s.names, registry.Names()...), extraEndpoints[:]...)
	s.requests = make([]atomic.Int64, len(s.names))
	for i, op := range ops {
		h := s.model(i, op)
		// An op with a streaming form shares its route and counter with
		// it, dispatched on `?stream=`; the rest reject the parameter
		// outright so it can never be silently ignored.
		if sop, ok := streamRegistry[op.Name()]; ok {
			h = s.streamRoute(i, sop, h)
		} else {
			h = s.rejectStreamParam(i, op.Name(), h)
		}
		s.mux.HandleFunc(op.Path(), h)
	}
	s.mux.HandleFunc(streamFrontier.Path(), s.streamRoute(idxFrontier, streamFrontier, nil))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/version", s.handleVersion)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.handler = http.Handler(s.mux)
	if cfg.Middleware != nil {
		s.handler = cfg.Middleware(s.handler)
	}
	s.handler = s.observe(s.handler)
	return s, nil
}

// Config returns the server's effective (default-applied) configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the root handler (middleware included), for mounting
// or httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on ln until ctx is cancelled, then drains
// in-flight requests for up to 5 seconds. It returns nil on a clean
// shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on cfg.Addr and calls Serve. ready, if non-nil,
// receives the bound address once listening (useful with ":0").
func (s *Server) ListenAndServe(ctx context.Context, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	return s.Serve(ctx, ln)
}

// model wraps a registry op with the serving pipeline — written once
// for every POST endpoint: method and body checks, strict decode +
// validation + canonical cache key (op.Prepare), coalescing lookup,
// admission gate (misses only — cached work is free and must stay
// admissible under overload), per-request deadline enforcement, stale
// fallback, and error-to-status mapping. i indexes the op's counter.
func (s *Server) model(i int, op engine.Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests[i].Add(1)
		defer s.timeEndpoint(i)()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Message: "use POST"})
			return
		}
		decode := telemetry.StartSpan(r.Context(), stageDecode)
		body, err := readBody(r)
		if err != nil {
			decode.End()
			s.writeError(w, err)
			return
		}
		// Env.Meta is per-request: Prepare reports the resolved model
		// backend through it, which the response header and the access
		// log carry (it never reaches cache keys or response bodies).
		meta := engine.Meta{}
		env := engine.Env{Workers: s.cfg.Workers, Meta: &meta}
		key, eval, err := op.Prepare(body, env)
		decode.End()
		if meta.Model != "" {
			w.Header().Set(headerModel, meta.Model)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		resp, outcome, err := s.lookup(r, ctx, key, func(ctx context.Context) ([]byte, error) {
			release, status := s.gate.acquire(ctx)
			if status != 0 {
				return nil, &apiError{Status: status, Message: "server saturated, retry later"}
			}
			defer release()
			if s.onEvaluate != nil {
				s.onEvaluate(op.Name())
			}
			defer telemetry.StartSpan(ctx, stageEvaluate).End()
			return eval(ctx)
		})
		if err != nil {
			s.writeError(w, err)
			return
		}
		encode := telemetry.StartSpan(ctx, stageEncode)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Heterosim-Cache", outcome.String())
		s.responses.ok.Add(1)
		w.Write(resp)
		encode.End()
	}
}

// maxBodyBytes bounds request bodies; the largest legitimate request (a
// dense sweep spec) is well under a kilobyte.
const maxBodyBytes = 1 << 20

// readBody slurps and bounds the request body.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return nil, badRequest("reading body: %v", err)
	}
	return body, nil
}

// writeError maps an error to a JSON error response; apiError carries
// its own status, an expired request deadline is 504, a disconnected
// client 503 (moot — nobody reads it), anything else a 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			ae = &apiError{Status: http.StatusGatewayTimeout, Message: "request deadline exceeded"}
		case errors.Is(err, context.Canceled):
			ae = &apiError{Status: http.StatusServiceUnavailable, Message: "request cancelled"}
		default:
			ae = &apiError{Status: http.StatusInternalServerError, Message: err.Error()}
		}
	}
	if ae.Status >= 500 {
		s.responses.serverErr.Add(1)
	} else {
		s.responses.clientErr.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	if ae.Status == http.StatusServiceUnavailable || ae.Status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(ae.Status)
	json.NewEncoder(w).Encode(ae)
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests[idxHealthz].Add(1)
	defer s.timeEndpoint(idxHealthz)()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleVersion reports the build identity, stamped with the model
// backends this build can serve.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.requests[idxVersion].Add(1)
	defer s.timeEndpoint(idxVersion)()
	w.Header().Set("Content-Type", "application/json")
	info := version.Get()
	info.Models = model.Names()
	json.NewEncoder(w).Encode(info)
}

// handleModels reports the model-backend registry: every backend's
// capabilities and parameters, plus the default answering requests
// that omit the model field.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.requests[idxModels].Add(1)
	defer s.timeEndpoint(idxModels)()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ModelsResponse{Default: model.DefaultName, Models: model.Infos()})
}

// Metrics is the /metrics document: expvar-style JSON with no external
// dependencies. Peers appears only when the peer tier is configured,
// so single-node documents keep their exact pre-cluster shape.
type Metrics struct {
	UptimeSeconds float64               `json:"uptimeSeconds"`
	Version       version.Info          `json:"version"`
	Cache         servecache.Stats      `json:"cache"`
	Peers         *servecache.PeerStats `json:"peers,omitempty"`
	Admission     gateStats             `json:"admission"`
	Requests      map[string]int64      `json:"requests"`
	Responses     map[string]int64      `json:"responses"`
	Workers       int                   `json:"workers"`
}

// Snapshot returns the current metrics document.
func (s *Server) Snapshot() Metrics {
	reqs := make(map[string]int64, len(s.names))
	for i, name := range s.names {
		reqs[name] = s.requests[i].Load()
	}
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Version:       version.Get(),
		Cache:         s.cache.Stats(),
		Admission:     s.gate.stats(),
		Requests:      reqs,
		Responses: map[string]int64{
			"ok":          s.responses.ok.Load(),
			"clientError": s.responses.clientErr.Load(),
			"serverError": s.responses.serverErr.Load(),
		},
		Workers: s.cfg.Workers,
	}
	if s.cluster != nil {
		ps := s.cluster.Stats()
		m.Peers = &ps
	}
	return m
}

// handleMetrics serves the counters: the PR 2/3 JSON document by
// default (byte-compatible — existing scrapers and goldens see no
// change), Prometheus text exposition when the client asks via
// ?format=prometheus or an Accept header (see wantsPrometheus).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests[idxMetrics].Add(1)
	defer s.timeEndpoint(idxMetrics)()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.writePrometheus(w); err != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "metrics write failed",
				slog.String("error", err.Error()))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
