package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/calcm/heterosim/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestProjectGolden pins the /v1/project response for the same study the
// CLI golden-tests (FFT-1024, f=0.999, baseline) in two ways: against
// this package's JSON golden, and — reconstructed as CSV — against the
// CLI's own project_fft_999.golden, so the HTTP path and the CLI path
// cannot drift apart without one of the tests failing.
func TestProjectGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s, http.MethodPost, "/v1/project", `{"workload":"FFT-1024","f":0.999}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	got := rec.Body.Bytes()

	goldenPath := filepath.Join("testdata", "project_fft_999.json")
	if *update {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, got, "", "  "); err != nil {
			t.Fatal(err)
		}
		pretty.WriteByte('\n')
		if err := os.WriteFile(goldenPath, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/server -run Golden -update)", err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, compact.Bytes()) {
		t.Errorf("/v1/project response drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, compact.Bytes())
	}

	// Cross-check against the CLI golden: rebuild the exact CSV the CLI
	// renders (same report helpers, same %g formatting) from the HTTP
	// response and compare bytes with cmd/heterosim's checked-in golden.
	var resp ProjectResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	var rows [][]string
	for _, tr := range resp.Trajectories {
		vals := make([]float64, len(tr.Points))
		for i, p := range tr.Points {
			if p.Valid {
				vals[i] = p.Speedup
			} else {
				vals[i] = math.NaN()
			}
		}
		rows = append(rows, report.FloatRow(tr.Label, vals...))
	}
	if err := report.WriteCSV(&csv, append([]string{"design"}, resp.Nodes...), rows); err != nil {
		t.Fatal(err)
	}
	cliGolden, err := os.ReadFile(filepath.Join("..", "..", "cmd", "heterosim", "testdata", "project_fft_999.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv.Bytes(), cliGolden) {
		t.Errorf("HTTP projection diverged from the CLI golden:\n--- http-as-csv ---\n%s\n--- cli golden ---\n%s",
			csv.Bytes(), cliGolden)
	}
}
