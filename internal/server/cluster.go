package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/calcm/heterosim/internal/servecache"
	"github.com/calcm/heterosim/internal/telemetry"
)

// This file is the serving side of the peer-aware cache tier: the HTTP
// fetch that servecache.Cluster uses to reach a key's owner, and the
// single-hop guard that keeps forwarding from ever chaining.
//
// The wire format is the serving API itself: a canonical cache key is
// "<path>\x00<canonical request JSON>" (engine.CanonicalKey), so the
// owner fetch is simply the same POST the client sent, re-issued
// against the owner's base URL with the canonical body. Canonical
// bodies re-canonicalize to themselves, so the owner derives the
// identical key and its singleflight collapses concurrent fetches from
// every non-owner into one compute — singleflight is preserved
// cluster-wide with no extra protocol.

// headerPeerHop marks a request as already forwarded once. A server
// seeing it always answers from its local cache/compute path — never
// the cluster path — so a request crosses at most one process
// boundary, even while peers briefly disagree about membership during
// a rolling restart.
const headerPeerHop = "X-Heterosim-Peer-Hop"

// initCluster wires the peer tier when Config.Peers is set; no-op
// (nil cluster) otherwise.
func (s *Server) initCluster() error {
	if len(s.cfg.Peers) == 0 {
		return nil
	}
	self, peers, err := servecache.ParsePeers(s.cfg.PeerSelf, strings.Join(s.cfg.Peers, ","))
	if err != nil {
		return err
	}
	// The fetch client carries no global timeout: each fetch is bounded
	// by its per-call context (PeerTimeout capped by the request
	// deadline).
	hc := &http.Client{}
	cluster, err := servecache.NewCluster(s.cache, self, peers, s.peerFetch(hc))
	if err != nil {
		return err
	}
	s.cluster = cluster
	return nil
}

// peerFetch builds the servecache.Fetch closure: re-issue the
// canonical request against the owner, marked as a peer hop, and
// return the response bytes plus the owner's cache outcome.
func (s *Server) peerFetch(hc *http.Client) servecache.Fetch {
	return func(ctx context.Context, owner, key string) ([]byte, string, error) {
		path, body, ok := splitKey(key)
		if !ok {
			return nil, "", fmt.Errorf("server: malformed cache key %q", key)
		}
		fctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(fctx, http.MethodPost, owner+path, strings.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(headerPeerHop, "1")
		// Propagate the request ID so the owner's access log joins this
		// fetch back to the originating request.
		if id := telemetry.RequestID(ctx); id != "" {
			req.Header.Set(telemetry.HeaderRequestID, id)
		}
		res, err := hc.Do(req)
		if err != nil {
			return nil, "", err
		}
		defer res.Body.Close()
		payload, err := io.ReadAll(io.LimitReader(res.Body, 64<<20))
		if err != nil {
			return nil, "", err
		}
		if res.StatusCode != http.StatusOK {
			// A non-200 from the owner (it is saturated, or the request
			// raced a config change) is a fetch failure: the caller
			// falls back to computing locally, which never makes the
			// response worse.
			return nil, "", fmt.Errorf("server: peer %s returned %d: %s",
				owner, res.StatusCode, strings.TrimSpace(string(payload)))
		}
		return payload, res.Header.Get("X-Heterosim-Cache"), nil
	}
}

// splitKey splits a canonical cache key back into (path, body).
func splitKey(key string) (path, body string, ok bool) {
	i := strings.IndexByte(key, 0)
	if i < 0 || !strings.HasPrefix(key, "/") {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}

// lookup routes one keyed model evaluation: the local cache when
// single-node or when this request already crossed a peer boundary
// (the single-hop guarantee), the cluster tier otherwise.
func (s *Server) lookup(r *http.Request, ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, servecache.Outcome, error) {
	if s.cluster == nil || r.Header.Get(headerPeerHop) != "" {
		return s.cache.Do(ctx, key, fn)
	}
	return s.cluster.Do(ctx, key, fn)
}

// Cluster exposes the peer tier (nil when single-node), for tests and
// the daemon's startup log.
func (s *Server) Cluster() *servecache.Cluster { return s.cluster }
