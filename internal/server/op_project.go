package server

import (
	"context"
	"encoding/json"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/scenario"
)

// POST /v1/project — ITRS trajectory projection.

// ProjectRequest mirrors the CLI `project` subcommand: a workload and
// parallel fraction under a scenario (0 = baseline), with optional
// physical-budget overrides.
type ProjectRequest struct {
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Scenario    int             `json:"scenario,omitempty"`
	Power       float64         `json:"power,omitempty"`     // watts; overrides the scenario default
	Bandwidth   float64         `json:"bandwidth,omitempty"` // GB/s at the first node
	AreaScale   float64         `json:"areaScale,omitempty"`
	Objective   string          `json:"objective,omitempty"`
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
	Workers     int             `json:"workers,omitempty"`
}

// ProjectResponse is the full design lineup's trajectories. Model names
// the backend only for non-default requests.
type ProjectResponse struct {
	Workload     string           `json:"workload"`
	F            float64          `json:"f"`
	Scenario     int              `json:"scenario"`
	ScenarioName string           `json:"scenarioName"`
	Objective    string           `json:"objective"`
	Nodes        []string         `json:"nodes"`
	Trajectories []TrajectoryJSON `json:"trajectories"`
	Model        string           `json:"model,omitempty"`
}

// projectConfig resolves a ProjectRequest into the engine configuration.
func projectConfig(req *ProjectRequest, env engine.Env) (project.Config, scenario.Scenario, error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	req.Workload = string(w)
	if err := engine.CheckF(req.F); err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	obj, err := engine.ParseObjective(req.Objective)
	if err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	req.Objective = obj
	sc, err := scenario.Get(scenario.ID(req.Scenario))
	if err != nil {
		return project.Config{}, scenario.Scenario{}, badRequest("%v", err)
	}
	if req.Power < 0 || req.Bandwidth < 0 || req.AreaScale < 0 {
		return project.Config{}, scenario.Scenario{}, badRequest("overrides must be positive (or omitted)")
	}
	cfg := sc.Apply(project.DefaultConfig(w))
	if req.Power > 0 {
		cfg.PowerBudgetW = req.Power
	}
	if req.Bandwidth > 0 {
		cfg.BaseBandwidthGBs = req.Bandwidth
	}
	if req.AreaScale > 0 {
		cfg.AreaScale = req.AreaScale
	}
	mk, err := resolveModelFactory(&req.Model, &req.ModelParams, env)
	if err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	cfg.Model = mk
	cfg.Workers = workersOr(&req.Workers, env)
	return cfg, sc, nil
}

var opProject = engine.New("project", buildProject)

func buildProject(req *ProjectRequest, env engine.Env) (func(context.Context) (ProjectResponse, error), error) {
	cfg, sc, err := projectConfig(req, env)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (ProjectResponse, error) {
		proj := project.ProjectCtx
		if req.Objective == "energy" {
			proj = project.ProjectEnergyCtx
		}
		ts, err := proj(ctx, cfg, req.F)
		if err != nil {
			return ProjectResponse{}, evalFailure(err, unprocessable)
		}
		resp := ProjectResponse{
			Workload:     req.Workload,
			F:            req.F,
			Scenario:     req.Scenario,
			ScenarioName: sc.Name,
			Objective:    req.Objective,
			Trajectories: trajectoryJSON(ts),
			Model:        req.Model,
		}
		for _, n := range cfg.Roadmap.Nodes() {
			resp.Nodes = append(resp.Nodes, n.Name)
		}
		return resp, nil
	}, nil
}
