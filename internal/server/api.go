package server

import (
	"strings"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/ucore"
)

// apiError is the engine's status-carrying error; handlers return it
// from validation and evaluation so the transport layer can map model
// errors to 4xx instead of a blanket 500.
type apiError = engine.Error

// badRequest and unprocessable are the engine's 400/422 constructors,
// aliased for the op definitions in this package.
var (
	badRequest    = engine.BadRequest
	unprocessable = engine.Unprocessable
	evalFailure   = engine.EvalFailure
)

// parseWorkload maps the HTTP spelling onto a catalog workload. It
// accepts the same spellings as the CLI.
func parseWorkload(s string) (paper.WorkloadID, error) {
	switch strings.ToLower(s) {
	case "mmm":
		return paper.MMM, nil
	case "bs", "blackscholes":
		return paper.BS, nil
	case "fft-64", "fft64":
		return paper.FFT64, nil
	case "fft-1024", "fft1024", "fft":
		return paper.FFT1024, nil
	case "fft-16384", "fft16384":
		return paper.FFT16384, nil
	default:
		return "", badRequest("unknown workload %q (want MMM, BS, FFT-64, FFT-1024, FFT-16384)", s)
	}
}

// parseDevice maps the HTTP spelling onto a catalog device.
func parseDevice(s string) (paper.DeviceID, error) {
	switch strings.ToLower(s) {
	case "corei7", "core i7", "core i7-960", "i7":
		return paper.CoreI7, nil
	case "gtx285":
		return paper.GTX285, nil
	case "gtx480":
		return paper.GTX480, nil
	case "r5870":
		return paper.R5870, nil
	case "lx760", "v6-lx760":
		return paper.LX760, nil
	case "asic":
		return paper.ASIC, nil
	default:
		return "", badRequest("unknown device %q (want CoreI7, GTX285, GTX480, R5870, LX760, ASIC)", s)
	}
}

// DesignSpec selects the chip organization for a request: "sym" and
// "asym" are the CMP baselines, "het" needs U-core parameters — either a
// catalog device (published Table 5 values) or explicit (mu, phi).
type DesignSpec struct {
	Kind            string  `json:"kind"`
	Device          string  `json:"device,omitempty"`
	Mu              float64 `json:"mu,omitempty"`
	Phi             float64 `json:"phi,omitempty"`
	ExemptBandwidth bool    `json:"exemptBandwidth,omitempty"`
}

// resolve turns the spec into an evaluable design for a workload. It
// also canonicalizes the spec in place (kind lowercased, device in
// catalog spelling) so spelling variants of the same request share one
// cache key.
func (ds *DesignSpec) resolve(w paper.WorkloadID) (core.Design, error) {
	switch strings.ToLower(ds.Kind) {
	case "sym", "symcmp":
		ds.Kind = "sym"
		return core.Design{Kind: core.SymCMP, Label: "(0) SymCMP"}, nil
	case "asym", "asymcmp":
		ds.Kind = "asym"
		return core.Design{Kind: core.AsymCMP, Label: "(1) AsymCMP"}, nil
	case "het":
		ds.Kind = "het"
	default:
		return core.Design{}, badRequest("unknown design kind %q (want sym, asym, het)", ds.Kind)
	}
	d := core.Design{Kind: core.Het, ExemptBandwidth: ds.ExemptBandwidth}
	switch {
	case ds.Device != "":
		if ds.Mu != 0 || ds.Phi != 0 {
			return core.Design{}, badRequest("give either device or explicit (mu, phi), not both")
		}
		dev, err := parseDevice(ds.Device)
		if err != nil {
			return core.Design{}, err
		}
		ds.Device = string(dev)
		p, ok := ucore.PublishedParams(dev, w)
		if !ok {
			return core.Design{}, unprocessable("the paper has no published (mu, phi) for %s on %s", dev, w)
		}
		d.Label = string(dev)
		d.UCore = bounds.UCore{Mu: p.Mu, Phi: p.Phi}
	case ds.Mu > 0 && ds.Phi > 0:
		d.Label = "custom"
		d.UCore = bounds.UCore{Mu: ds.Mu, Phi: ds.Phi}
	default:
		return core.Design{}, badRequest("het design needs a device or positive (mu, phi)")
	}
	if err := d.Validate(); err != nil {
		return core.Design{}, badRequest("%v", err)
	}
	return d, nil
}

// BudgetsSpec is an explicit BCE-relative budget triple.
type BudgetsSpec struct {
	Area      float64 `json:"area"`
	Power     float64 `json:"power"`
	Bandwidth float64 `json:"bandwidth"`
}

// PointJSON is one evaluated design point on the wire.
type PointJSON struct {
	Label      string  `json:"label"`
	Kind       string  `json:"kind"`
	F          float64 `json:"f"`
	R          int     `json:"r"`
	N          float64 `json:"n"`
	Speedup    float64 `json:"speedup"`
	Limit      string  `json:"limit"`
	EnergyNorm float64 `json:"energyNorm"`
}

func pointJSON(p core.Point) PointJSON {
	return PointJSON{
		Label:      p.Design.Label,
		Kind:       p.Design.Kind.String(),
		F:          p.F,
		R:          p.R,
		N:          p.N,
		Speedup:    p.Speedup,
		Limit:      p.Limit.String(),
		EnergyNorm: p.EnergyNorm,
	}
}

// NodePointJSON is one trajectory sample on the wire.
type NodePointJSON struct {
	Node       string  `json:"node"`
	Valid      bool    `json:"valid"`
	R          int     `json:"r,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Limit      string  `json:"limit,omitempty"`
	EnergyNode float64 `json:"energyNode,omitempty"`
}

// TrajectoryJSON is one design's roadmap evolution on the wire.
type TrajectoryJSON struct {
	Label  string          `json:"label"`
	Kind   string          `json:"kind"`
	Mu     float64         `json:"mu,omitempty"`
	Phi    float64         `json:"phi,omitempty"`
	F      float64         `json:"f"`
	Points []NodePointJSON `json:"points"`
}

func trajectoryJSON(ts []project.Trajectory) []TrajectoryJSON {
	out := make([]TrajectoryJSON, 0, len(ts))
	for _, t := range ts {
		tj := TrajectoryJSON{
			Label: t.Design.Label,
			Kind:  t.Design.Kind.String(),
			Mu:    t.Design.UCore.Mu,
			Phi:   t.Design.UCore.Phi,
			F:     t.F,
		}
		for _, p := range t.Points {
			np := NodePointJSON{Node: p.Node.Name, Valid: p.Valid}
			if p.Valid {
				np.R = p.Point.R
				np.Speedup = p.Point.Speedup
				np.Limit = p.Point.Limit.String()
				np.EnergyNode = p.EnergyNode
			}
			tj.Points = append(tj.Points, np)
		}
		out = append(out, tj)
	}
	return out
}
