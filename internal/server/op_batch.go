package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/telemetry"
)

// POST /v1/batch — a heterogeneous list of registry ops in one
// round-trip: decoded once, admitted once, fanned out through
// internal/par, with per-item status/cache/model metadata so a burst
// of N correlated design-space questions costs one HTTP exchange
// instead of N.
//
// Semantics: the batch itself answers 200 whenever its envelope was
// well-formed; each item carries its own status exactly as the
// standalone endpoint would have produced (200/400/422/429/...), so
// partial success is first-class. Structural problems — not JSON, no
// items, too many items — are batch-level 4xxs. Items flow through the
// same per-op Prepare, cache/coalescing/peer lookup, and error mapping
// as standalone requests: two identical items in one batch coalesce
// onto one evaluation, and a batch item's response bytes are
// byte-identical to the standalone endpoint's.
//
// "Admitted once" means the whole batch occupies at most one admission
// slot: the first item that actually needs to evaluate acquires the
// gate and every later evaluating item shares that slot (hits and
// coalesced items bypass the gate, exactly like standalone requests).
// A gate rejection surfaces as that item's status, not the batch's.

// maxBatchItems bounds one batch; bigger bursts should be split so the
// admission gate can interleave other traffic between them.
const maxBatchItems = 256

// BatchItemRequest is one operation in a batch: the registry op name
// and its request body, verbatim.
type BatchItemRequest struct {
	Op      string          `json:"op"`
	Request json.RawMessage `json:"request"`
}

// BatchRequest is the POST /v1/batch envelope.
type BatchRequest struct {
	Items []BatchItemRequest `json:"items"`
}

// BatchItemResponse is one item's outcome. Status is the HTTP status
// the standalone endpoint would have answered; Response carries the
// byte-identical standalone body on success, Error the message
// otherwise. Cache is the item's cache outcome
// (hit/miss/coalesced/stale/peer) and Model the canonical backend that
// answered, both mirroring the standalone response headers.
type BatchItemResponse struct {
	Op       string          `json:"op"`
	Status   int             `json:"status"`
	Cache    string          `json:"cache,omitempty"`
	Model    string          `json:"model,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchResponse is the batch envelope: items in request order plus the
// ok/failed tally.
type BatchResponse struct {
	Items  []BatchItemResponse `json:"items"`
	OK     int                 `json:"ok"`
	Failed int                 `json:"failed"`
}

// batchAdmission shares one gate slot across every evaluating item of
// a batch. The first evaluation acquires; the batch handler releases
// after the fan-out drains. Acquisition failures are remembered so
// later items fail fast with the same status instead of re-queueing.
type batchAdmission struct {
	gate *gate

	mu       sync.Mutex
	acquired bool
	release  func()
	status   int // non-zero: admission failed with this HTTP status
}

// admit returns 0 once the batch holds its slot, or the gate's
// rejection status. Safe for concurrent use by the fan-out workers.
func (a *batchAdmission) admit(ctx context.Context) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.acquired {
		return 0
	}
	if a.status != 0 {
		return a.status
	}
	release, status := a.gate.acquire(ctx)
	if status != 0 {
		a.status = status
		return status
	}
	a.acquired = true
	a.release = release
	return 0
}

// done releases the batch's slot, if one was acquired.
func (a *batchAdmission) done() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.acquired {
		a.release()
		a.acquired = false
	}
}

// handleBatch serves POST /v1/batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests[idxBatch].Add(1)
	defer s.timeEndpoint(idxBatch)()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Message: "use POST"})
		return
	}
	decode := telemetry.StartSpan(r.Context(), stageDecode)
	body, err := readBody(r)
	if err != nil {
		decode.End()
		s.writeError(w, err)
		return
	}
	var req BatchRequest
	if err := engine.DecodeStrict(body, &req); err != nil {
		decode.End()
		s.writeError(w, err)
		return
	}
	if len(req.Items) == 0 {
		decode.End()
		s.writeError(w, badRequest("batch needs at least one item"))
		return
	}
	if len(req.Items) > maxBatchItems {
		decode.End()
		s.writeError(w, badRequest("batch has %d items, limit %d: split the request", len(req.Items), maxBatchItems))
		return
	}

	// Prepare every item up front — decode once, before any evaluation —
	// so validation failures are itemized without costing a gate slot.
	type prepared struct {
		key  string
		eval func(context.Context) ([]byte, error)
	}
	items := make([]BatchItemResponse, len(req.Items))
	preps := make([]prepared, len(req.Items))
	for i, it := range req.Items {
		items[i].Op = it.Op
		op, ok := registryOps[it.Op]
		if !ok {
			items[i].Status = http.StatusBadRequest
			items[i].Error = "unknown op " + strconv.Quote(it.Op)
			continue
		}
		meta := engine.Meta{}
		key, eval, err := op.Prepare(it.Request, engine.Env{Workers: s.cfg.Workers, Meta: &meta})
		items[i].Model = meta.Model
		if err != nil {
			items[i].Status, items[i].Error = itemError(err)
			continue
		}
		preps[i] = prepared{key: key, eval: eval}
	}
	decode.End()

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		// One deadline bounds the whole batch, mirroring one request.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	adm := &batchAdmission{gate: s.gate}
	defer adm.done()
	// Fan out through the bounded pool. Errors never propagate to
	// ForEach — each item keeps its own — so one failing item cannot
	// cancel its siblings.
	par.ForEach(ctx, len(req.Items), s.cfg.Workers, func(ctx context.Context, i int) error {
		if preps[i].eval == nil {
			return nil // already itemized as an error
		}
		resp, outcome, err := s.lookup(r, ctx, preps[i].key, func(ctx context.Context) ([]byte, error) {
			if status := adm.admit(ctx); status != 0 {
				return nil, &apiError{Status: status, Message: "server saturated, retry later"}
			}
			if s.onEvaluate != nil {
				s.onEvaluate(items[i].Op)
			}
			defer telemetry.StartSpan(ctx, stageEvaluate).End()
			return preps[i].eval(ctx)
		})
		if err != nil {
			items[i].Status, items[i].Error = itemError(err)
			return nil
		}
		items[i].Status = http.StatusOK
		items[i].Cache = outcome.String()
		items[i].Response = resp
		return nil
	})

	out := BatchResponse{Items: items}
	for i := range items {
		if items[i].Status == http.StatusOK {
			out.OK++
		} else {
			out.Failed++
		}
	}
	encode := telemetry.StartSpan(ctx, stageEncode)
	w.Header().Set("Content-Type", "application/json")
	s.responses.ok.Add(1)
	json.NewEncoder(w).Encode(out)
	encode.End()
}

// itemError maps one item's failure to its (status, message) pair
// using the same classification writeError applies to standalone
// requests.
func itemError(err error) (int, string) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.Status, ae.Message
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "request deadline exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "request cancelled"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}
