package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/telemetry"
)

// POST /v1/sweep?stream=ndjson — the sweep surface as NDJSON: one
// header line (the sweep's identity and axes), one line per grid cell
// in flat row-major order, one trailer line (feasible count + best
// cell). Rows are emitted as evaluation windows complete, so a
// million-cell sweep never buffers a whole response and a mid-stream
// deadline stops the grid between cells; memory is O(window), not
// O(cells), which is why the streaming cell limit is 20x the buffered
// one.
//
// Each cell line is encoded by the same sweepEnc.appendPoint the
// buffered response uses, so the concatenated rows are byte-identical
// to the buffered Points array for the same request
// (TestSweepStreamMatchesBuffered pins this across all model
// backends). Streams always evaluate: the response never enters the
// result cache or the peer tier — a stream is a bulk export, not a
// cacheable unit — and the X-Heterosim-Cache header says "stream" so
// clients can tell.

const (
	// maxStreamSweepCells bounds one streamed sweep. The stream holds
	// only one evaluation window in memory, so the bound is about
	// tying up evaluation workers, not memory.
	maxStreamSweepCells = 2_000_000

	// sweepStreamChunk is the evaluation window: cells per parallel
	// CellsRange call, and the flush granularity. Large enough to keep
	// the worker pool busy, small enough that rows appear promptly and
	// cancellation is honored quickly.
	sweepStreamChunk = 2048
)

// SweepStreamHeader is the first NDJSON line: the sweep's identity —
// everything SweepResponse carries before its points. Model names the
// backend only for non-default requests, mirroring the buffered shape.
type SweepStreamHeader struct {
	Workload string     `json:"workload"`
	Node     string     `json:"node"`
	Design   string     `json:"design"`
	Axes     []AxisJSON `json:"axes"`
	Model    string     `json:"model,omitempty"`
}

// SweepStreamTrailer is the last NDJSON line: the reduction the
// buffered response carries after its points.
type SweepStreamTrailer struct {
	Feasible int             `json:"feasible"`
	Best     *SweepPointJSON `json:"best,omitempty"`
}

// SweepStreamError is an NDJSON error line: emitted in-band when the
// evaluation fails after the 200 header is already on the wire. A
// stream ending without a trailer always ends with one of these (or a
// broken connection).
type SweepStreamError struct {
	Error string `json:"error"`
}

// wantsStream classifies the sweep route's stream parameter: absent
// means the buffered JSON response, "ndjson" the stream; anything else
// is a 400 so typos fail loudly instead of silently buffering.
func wantsStream(r *http.Request) (bool, error) {
	switch v := r.URL.Query().Get("stream"); v {
	case "":
		return false, nil
	case "ndjson":
		return true, nil
	default:
		return false, badRequest("unknown stream format %q (want ndjson)", v)
	}
}

// sweepRoute dispatches /v1/sweep on its stream parameter: the generic
// buffered pipeline (untouched — its bytes, caching, and counters are
// the pre-stream contract) or the NDJSON stream. i indexes the sweep
// op's counter, shared by both forms.
func (s *Server) sweepRoute(i int, buffered http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		stream, err := wantsStream(r)
		if err != nil {
			s.requests[i].Add(1)
			defer s.timeEndpoint(i)()
			s.writeError(w, err)
			return
		}
		if !stream {
			buffered(w, r)
			return
		}
		s.requests[i].Add(1)
		defer s.timeEndpoint(i)()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Message: "use POST"})
			return
		}
		s.handleSweepStream(w, r)
	}
}

// handleSweepStream serves one streamed sweep; the sweep route has
// already counted the request and checked the method.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	decode := telemetry.StartSpan(r.Context(), stageDecode)
	body, err := readBody(r)
	if err != nil {
		decode.End()
		s.writeError(w, err)
		return
	}
	var req SweepRequest
	if err := engine.DecodeStrict(body, &req); err != nil {
		decode.End()
		s.writeError(w, err)
		return
	}
	meta := engine.Meta{}
	plan, err := planSweep(&req, engine.Env{Workers: s.cfg.Workers, Meta: &meta}, maxStreamSweepCells)
	decode.End()
	if meta.Model != "" {
		w.Header().Set(headerModel, meta.Model)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	// Streams always evaluate, so they are admitted like any miss — one
	// slot for the whole stream.
	release, status := s.gate.acquire(ctx)
	if status != 0 {
		s.writeError(w, &apiError{Status: status, Message: "server saturated, retry later"})
		return
	}
	defer release()
	if s.onEvaluate != nil {
		s.onEvaluate("sweep")
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Heterosim-Cache", "stream")
	hdr, err := json.Marshal(SweepStreamHeader{
		Workload: plan.req.Workload,
		Node:     plan.req.Node,
		Design:   plan.design.Label,
		Axes:     plan.axesJSON(),
		Model:    plan.req.Model,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return // client gone; nothing to clean up
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	evalSpan := telemetry.StartSpan(ctx, stageEvaluate)
	defer evalSpan.End()
	size := plan.grid.Size()
	window := make([]SweepPointJSON, sweepStreamChunk)
	var enc sweepEnc
	var buf []byte
	red := bestReducer{energy: plan.energy}
	for lo := 0; lo < size; lo += sweepStreamChunk {
		hi := min(lo+sweepStreamChunk, size)
		cells := window[:hi-lo]
		err := plan.grid.CellsRange(ctx, plan.workers, lo, hi, func(flat int, v []float64) error {
			cell, err := plan.evalCell(v)
			if err != nil {
				return err
			}
			cells[flat-lo] = cell
			return nil
		})
		if err != nil {
			s.streamError(w, evalFailure(err, badRequest))
			return
		}
		buf = buf[:0]
		for j := range cells {
			if buf, err = enc.appendPoint(buf, &cells[j]); err != nil {
				s.streamError(w, err)
				return
			}
			buf = append(buf, '\n')
			red.observe(&cells[j])
		}
		if _, err := w.Write(buf); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	trailer, err := json.Marshal(SweepStreamTrailer{Feasible: red.feasible, Best: red.bestPtr()})
	if err != nil {
		s.streamError(w, err)
		return
	}
	if _, err := w.Write(append(trailer, '\n')); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	s.responses.ok.Add(1)
}

// streamError reports a failure after the 200 header is on the wire:
// an in-band NDJSON error line, counted under the same response class
// writeError would have used.
func (s *Server) streamError(w http.ResponseWriter, err error) {
	var ae *apiError
	status := http.StatusInternalServerError
	if errors.As(err, &ae) {
		status = ae.Status
	} else if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	} else if errors.Is(err, context.Canceled) {
		status = http.StatusServiceUnavailable
	}
	if status >= 500 {
		s.responses.serverErr.Add(1)
	} else {
		s.responses.clientErr.Add(1)
	}
	line, merr := json.Marshal(SweepStreamError{Error: err.Error()})
	if merr != nil {
		return
	}
	w.Write(append(line, '\n'))
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
