package server

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// hold fills every inflight slot of g and returns a func releasing them.
func hold(t *testing.T, g *gate) func() {
	t.Helper()
	releases := make([]func(), 0, cap(g.sem))
	for i := 0; i < cap(g.sem); i++ {
		release, status := g.acquire(context.Background())
		if status != 0 {
			t.Fatalf("filling slot %d: status %d", i, status)
		}
		releases = append(releases, release)
	}
	return func() {
		for _, r := range releases {
			r()
		}
	}
}

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := newGate(2, 2, time.Second)
	release := hold(t, g)
	st := g.stats()
	if st.Inflight != 2 || st.Accepted != 2 {
		t.Errorf("stats after filling = %+v", st)
	}
	release()
	if st := g.stats(); st.Inflight != 0 {
		t.Errorf("Inflight after release = %d, want 0", st.Inflight)
	}
}

// TestGateQueueOverflowIs429: one request past the queue bound is
// rejected immediately — no waiting, no timer.
func TestGateQueueOverflowIs429(t *testing.T) {
	g := newGate(1, 1, 10*time.Second)
	defer hold(t, g)()

	// Park one waiter to occupy the single queue slot.
	parked := make(chan int, 1)
	go func() {
		_, status := g.acquire(context.Background())
		parked <- status
	}()
	for g.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	release, status := g.acquire(context.Background())
	if release != nil || status != http.StatusTooManyRequests {
		t.Fatalf("overflow acquire = (release=%t, %d), want (nil, 429)", release != nil, status)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("429 took %v, want immediate rejection", took)
	}
	if st := g.stats(); st.RejectedFull != 1 {
		t.Errorf("RejectedFull = %d, want 1", st.RejectedFull)
	}

	// Unblock the parked waiter by cancelling nothing — it still waits on
	// the 10s timer, so free a slot for it instead.
	<-g.sem
	if status := <-parked; status != 0 {
		t.Fatalf("parked waiter got status %d, want admission", status)
	}
}

// TestGateQueueTimeoutIs503: a queued request that never gets a slot is
// rejected with 503 once the queue timeout elapses.
func TestGateQueueTimeoutIs503(t *testing.T) {
	g := newGate(1, 4, 30*time.Millisecond)
	defer hold(t, g)()

	start := time.Now()
	release, status := g.acquire(context.Background())
	took := time.Since(start)
	if release != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("acquire = (release=%t, %d), want (nil, 503)", release != nil, status)
	}
	if took < 30*time.Millisecond {
		t.Errorf("rejected after %v, before the 30ms queue timeout", took)
	}
	if st := g.stats(); st.RejectedTimeout != 1 {
		t.Errorf("RejectedTimeout = %d, want 1", st.RejectedTimeout)
	}
	if g.queued.Load() != 0 {
		t.Errorf("queued gauge = %d after rejection, want 0", g.queued.Load())
	}
}

// TestGateDeadlineInQueueIs504: the request's own deadline expiring
// while queued is distinguished from queue saturation — the caller spent
// its whole budget waiting, so it gets 504, not 503.
func TestGateDeadlineInQueueIs504(t *testing.T) {
	g := newGate(1, 4, 10*time.Second)
	defer hold(t, g)()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	release, status := g.acquire(ctx)
	if release != nil || status != http.StatusGatewayTimeout {
		t.Fatalf("acquire = (release=%t, %d), want (nil, 504)", release != nil, status)
	}
	if st := g.stats(); st.RejectedDeadline != 1 {
		t.Errorf("RejectedDeadline = %d, want 1", st.RejectedDeadline)
	}
}

// TestGateCancelInQueueIs503: plain cancellation (client disconnect) in
// the queue maps to 503, counted as a timeout-class rejection.
func TestGateCancelInQueueIs503(t *testing.T) {
	g := newGate(1, 4, 10*time.Second)
	defer hold(t, g)()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	release, status := g.acquire(ctx)
	if release != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("acquire = (release=%t, %d), want (nil, 503)", release != nil, status)
	}
	if st := g.stats(); st.RejectedTimeout != 1 {
		t.Errorf("RejectedTimeout = %d, want 1", st.RejectedTimeout)
	}
}
