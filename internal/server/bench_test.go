package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchPost drives one request through the full handler stack.
func benchPost(b *testing.B, s *Server, path, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
	}
}

func newBenchServer(b *testing.B, entries int) *Server {
	b.Helper()
	s, err := New(Config{CacheEntries: entries})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const (
	benchOptimizeBody = `{"workload":"FFT-1024","f":0.99,"node":"22nm","design":{"kind":"het","device":"ASIC"}}`
	benchSweepBody    = `{"workload":"FFT-1024","design":{"kind":"het","device":"GTX480"},
		"f":{"lo":0.5,"hi":0.999,"steps":16},"bandwidthScale":{"lo":0.25,"hi":4,"steps":16}}`
	benchProjectBody     = `{"workload":"FFT-1024","f":0.999}`
	benchSensitivityBody = `{"workload":"FFT-1024","f":0.99,"node":"22nm","design":{"kind":"het","device":"ASIC"}}`
	benchAblationBody    = `{"workload":"FFT-1024","f":0.999,"node":"11nm"}`
)

// Cold benchmarks disable cache storage, so every request pays the full
// evaluation; cached benchmarks hit one warm entry. The ratio is the
// point of the serving layer.

func BenchmarkOptimizeCold(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/optimize", benchOptimizeBody)
	}
}

func BenchmarkOptimizeCached(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/optimize", benchOptimizeBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/optimize", benchOptimizeBody)
	}
}

func BenchmarkSweepCold(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/sweep", benchSweepBody)
	}
}

func BenchmarkSweepCached(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/sweep", benchSweepBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/sweep", benchSweepBody)
	}
}

func BenchmarkProjectCold(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/project", benchProjectBody)
	}
}

func BenchmarkProjectCached(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/project", benchProjectBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/project", benchProjectBody)
	}
}

func BenchmarkSensitivityCold(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/sensitivity", benchSensitivityBody)
	}
}

func BenchmarkSensitivityCached(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/sensitivity", benchSensitivityBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/sensitivity", benchSensitivityBody)
	}
}

func BenchmarkAblationCold(b *testing.B) {
	s := newBenchServer(b, -1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/ablation", benchAblationBody)
	}
}

func BenchmarkAblationCached(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/ablation", benchAblationBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, s, "/v1/ablation", benchAblationBody)
	}
}

// BenchmarkCachedParallel measures the hot path under client
// concurrency: all goroutines hammer one warm entry.
func BenchmarkCachedParallel(b *testing.B) {
	s := newBenchServer(b, 4096)
	benchPost(b, s, "/v1/optimize", benchOptimizeBody)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(benchOptimizeBody))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
