package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// shadowSweepResponse mirrors SweepResponse field-for-field but has no
// AppendJSON method, so json.Marshal takes the reflection path — the
// oracle the hand-written encoder must match byte for byte.
type shadowSweepResponse struct {
	Workload string           `json:"workload"`
	Node     string           `json:"node"`
	Design   string           `json:"design"`
	Axes     []AxisJSON       `json:"axes"`
	Points   []SweepPointJSON `json:"points"`
	Feasible int              `json:"feasible"`
	Best     *SweepPointJSON  `json:"best,omitempty"`
	Model    string           `json:"model,omitempty"`
}

// fuzzFloat draws floats across the regimes json formats differently:
// zero, plain 'f' range, and the tiny/huge magnitudes that switch the
// encoder to 'e' form with exponent cleanup.
func fuzzFloat(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return rng.Float64() // (0,1): typical f and energy values
	case 2:
		return rng.Float64() * 1e3 // typical speedups and scales
	case 3:
		return math.Ldexp(rng.Float64(), -rng.Intn(80)) // down past 1e-6
	case 4:
		return math.Ldexp(1+rng.Float64(), rng.Intn(90)) // up past 1e21
	default:
		return -rng.Float64() * math.Ldexp(1, rng.Intn(40)-20)
	}
}

func fuzzPoint(rng *rand.Rand) SweepPointJSON {
	p := SweepPointJSON{
		F:              fuzzFloat(rng),
		AreaScale:      fuzzFloat(rng),
		PowerScale:     fuzzFloat(rng),
		BandwidthScale: fuzzFloat(rng),
	}
	if rng.Intn(2) == 0 {
		p.Valid = true
		p.R = rng.Intn(17) // 0 exercises omitempty
		p.Speedup = fuzzFloat(rng)
		p.EnergyNorm = fuzzFloat(rng)
		p.Limit = []string{"", "area", "power", "bandwidth", "serial"}[rng.Intn(5)]
	}
	return p
}

// TestSweepResponseAppendJSON fuzzes the reflection-free sweep encoder
// against json.Marshal: every response — including nil slices, empty
// points, omitempty zeros, non-ASCII strings, and floats spanning the
// 'f'/'e' format switch — must serialize to identical bytes, because
// cache entries and golden fixtures compare them.
func TestSweepResponseAppendJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	names := []string{"FFT-1024", "plain", "weird \"quoted\" <&> name", "unicode µφ 💡", "ctrl\x01\n"}
	for i := 0; i < 2000; i++ {
		r := SweepResponse{
			Workload: names[rng.Intn(len(names))],
			Node:     "40nm",
			Design:   names[rng.Intn(len(names))],
			Feasible: rng.Intn(100),
		}
		if rng.Intn(10) > 0 {
			r.Axes = make([]AxisJSON, rng.Intn(3))
			for a := range r.Axes {
				r.Axes[a].Name = names[rng.Intn(len(names))]
				if rng.Intn(8) > 0 {
					r.Axes[a].Values = make([]float64, rng.Intn(4))
					for v := range r.Axes[a].Values {
						r.Axes[a].Values[v] = fuzzFloat(rng)
					}
				}
			}
		}
		if rng.Intn(10) > 0 {
			r.Points = make([]SweepPointJSON, rng.Intn(8))
			for p := range r.Points {
				r.Points[p] = fuzzPoint(rng)
			}
		}
		if rng.Intn(2) == 0 {
			bp := fuzzPoint(rng)
			r.Best = &bp
		}
		if rng.Intn(3) == 0 {
			r.Model = []string{"multiamdahl", "sqrtm", names[rng.Intn(len(names))]}[rng.Intn(3)]
		}
		want, err := json.Marshal(shadowSweepResponse(r))
		if err != nil {
			t.Fatalf("case %d: oracle marshal: %v", i, err)
		}
		got, err := r.AppendJSON(nil)
		if err != nil {
			t.Fatalf("case %d: AppendJSON: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: encoder mismatch\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestSweepResponseAppendJSONNonFinite checks non-finite floats error
// instead of emitting invalid JSON, matching json.Marshal's refusal.
func TestSweepResponseAppendJSONNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := SweepResponse{Points: []SweepPointJSON{{F: bad}}}
		if _, err := r.AppendJSON(nil); err == nil {
			t.Errorf("AppendJSON(%v) = nil error, want non-finite rejection", bad)
		}
	}
}
