package server

import (
	"encoding/json"
	"os"
	"testing"
)

// bench6Stat is one benchmark measurement in BENCH_6.json.
type bench6Stat struct {
	NsPerOp     int64 `json:"nsPerOp"`
	BytesPerOp  int64 `json:"bytesPerOp"`
	AllocsPerOp int64 `json:"allocsPerOp"`
}

// bench6Entry pairs the pre-optimization baseline with a fresh
// measurement and the resulting latency ratio.
type bench6Entry struct {
	Before   bench6Stat `json:"before"`
	After    bench6Stat `json:"after"`
	SpeedupX float64    `json:"speedupX"`
}

// bench6Before is the seed baseline for this machine, measured at
// -benchtime 200ms immediately before the analytic-optimizer change
// (grid-scan Optimize, per-request roadmap/budget rebuilds, Point-map
// sweep loop). The regeneration test keeps these numbers verbatim and
// refreshes only the "after" column.
var bench6Before = map[string]bench6Stat{
	"OptimizeCold":      {20822, 10611, 66},
	"OptimizeCached":    {14596, 10001, 61},
	"SweepCold":         {2213031, 322133, 5731},
	"SweepCached":       {29326, 61638, 85},
	"ProjectCold":       {167024, 37765, 221},
	"ProjectCached":     {11588, 14809, 55},
	"SensitivityCold":   {17323367, 5491561, 2218},
	"SensitivityCached": {15129, 10177, 61},
	"AblationCold":      {849078, 78927, 644},
	"AblationCached":    {11652, 11745, 56},
}

// TestMeasureBench6 regenerates BENCH_6.json at the repo root: the
// before column is the recorded seed baseline above, the after column
// is re-measured on this machine through the same full-handler
// benchmarks. Gated behind HETEROSIM_MEASURE=1 because it is a
// measurement, not a regression check; honors -benchtime, so match the
// baseline with:
//
//	HETEROSIM_MEASURE=1 go test -run MeasureBench6 -benchtime 200ms -v ./internal/server/
func TestMeasureBench6(t *testing.T) {
	if os.Getenv("HETEROSIM_MEASURE") == "" {
		t.Skip("set HETEROSIM_MEASURE=1 to regenerate BENCH_6.json")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"OptimizeCold", BenchmarkOptimizeCold},
		{"OptimizeCached", BenchmarkOptimizeCached},
		{"SweepCold", BenchmarkSweepCold},
		{"SweepCached", BenchmarkSweepCached},
		{"ProjectCold", BenchmarkProjectCold},
		{"ProjectCached", BenchmarkProjectCached},
		{"SensitivityCold", BenchmarkSensitivityCold},
		{"SensitivityCached", BenchmarkSensitivityCached},
		{"AblationCold", BenchmarkAblationCold},
		{"AblationCached", BenchmarkAblationCached},
	}
	out := struct {
		Note       string                 `json:"note"`
		Benchtime  string                 `json:"benchtime"`
		Benchmarks map[string]bench6Entry `json:"benchmarks"`
	}{
		Note: "Full-handler latency before/after the PR-6 analytic optimizer " +
			"(closed-form argmax over r, precomputed roadmap/budget tables, " +
			"allocation-free sweep cells). Before column: seed baseline on this " +
			"machine at -benchtime 200ms. After column: minimum of three runs. " +
			"Regenerate: HETEROSIM_MEASURE=1 " +
			"go test -run MeasureBench6 -benchtime 200ms ./internal/server/",
		Benchtime:  "200ms",
		Benchmarks: make(map[string]bench6Entry, len(benches)),
	}
	for _, bm := range benches {
		// Minimum of three runs: the latencies here are pure CPU, so the
		// fastest run is the one least disturbed by whatever else the
		// machine was doing — the standard estimator for noisy boxes.
		r := testing.Benchmark(bm.fn)
		for extra := 0; extra < 2; extra++ {
			if rr := testing.Benchmark(bm.fn); rr.NsPerOp() < r.NsPerOp() {
				r = rr
			}
		}
		before, ok := bench6Before[bm.name]
		if !ok {
			t.Fatalf("no baseline recorded for %s", bm.name)
		}
		e := bench6Entry{
			Before: before,
			After: bench6Stat{
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			},
		}
		if e.After.NsPerOp > 0 {
			// One decimal place keeps the file diff-stable across runs.
			e.SpeedupX = float64(int64(float64(e.Before.NsPerOp)/float64(e.After.NsPerOp)*10+0.5)) / 10
		}
		out.Benchmarks[bm.name] = e
		t.Logf("%-18s before %10d ns/op  after %10d ns/op  (%.1fx)",
			bm.name, e.Before.NsPerOp, e.After.NsPerOp, e.SpeedupX)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_6.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
