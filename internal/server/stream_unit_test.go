package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// brokenWriter is an http.ResponseWriter whose Write starts failing
// after okWrites successes — a client that went away mid-stream.
type brokenWriter struct {
	header   http.Header
	okWrites int
	writes   int
	status   int
}

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *brokenWriter) WriteHeader(status int) { w.status = status }

func (w *brokenWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, errors.New("broken pipe")
	}
	return len(p), nil
}

// TestStreamEmitterClientGone pins the emitter's client-gone
// discipline: the write that fails marks the emitter dead, and every
// later Emit/Flush reports errStreamClientGone instead of touching the
// connection again.
func TestStreamEmitterClientGone(t *testing.T) {
	e := &streamEmitter{w: &brokenWriter{okWrites: 0}}
	if err := e.Emit([]byte(`{"a":1}`)); err != nil {
		t.Fatalf("Emit into the buffer should not fail: %v", err)
	}
	if err := e.Flush(); !errors.Is(err, errStreamClientGone) {
		t.Fatalf("Flush over a broken writer = %v, want errStreamClientGone", err)
	}
	if !e.dead {
		t.Fatal("a failed write must mark the emitter dead")
	}
	if err := e.Emit([]byte(`{"b":2}`)); !errors.Is(err, errStreamClientGone) {
		t.Errorf("Emit after death = %v, want errStreamClientGone", err)
	}
	if err := e.write(); !errors.Is(err, errStreamClientGone) {
		t.Errorf("write after death = %v, want errStreamClientGone", err)
	}
}

// TestStreamEmitterEmptyFlush: flushing with nothing buffered is a
// no-op, not a zero-byte write (which would force the 200 header early
// on a stream that then wants to fail with a real HTTP status).
func TestStreamEmitterEmptyFlush(t *testing.T) {
	w := &brokenWriter{okWrites: 0}
	e := &streamEmitter{w: w}
	if err := e.Flush(); err != nil {
		t.Fatalf("empty Flush = %v, want nil", err)
	}
	if w.writes != 0 {
		t.Errorf("empty Flush performed %d writes, want 0", w.writes)
	}
}

// TestStreamErrorClassification pins how in-band failures are counted
// and what reaches the wire: the status class writeError would have
// used decides the error counter, and the emitted line is always a
// decodable error object.
func TestStreamErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		wantClass string
	}{
		{"unclassified is 500-class", errors.New("boom"), "serverError"},
		{"apiError keeps its status", &apiError{Status: http.StatusUnprocessableEntity, Message: "infeasible"}, "clientError"},
		{"deadline is 504-class", context.DeadlineExceeded, "serverError"},
		{"cancel is 503-class", context.Canceled, "serverError"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, Config{})
			rec := httptest.NewRecorder()
			e := &streamEmitter{w: rec, started: true}
			s.streamError(context.Background(), "frontier", e, tc.err)
			if got := s.Snapshot().Responses[tc.wantClass]; got != 1 {
				t.Errorf("responses.%s = %d, want 1", tc.wantClass, got)
			}
			var line SweepStreamError
			if err := json.Unmarshal(rec.Body.Bytes(), &line); err != nil || line.Error == "" {
				t.Errorf("in-band line %q is not an error object: %v", rec.Body.String(), err)
			}
		})
	}
}

// TestStreamErrorDeadEmitter: when the client is gone the in-band line
// has nowhere to go; streamError must still count and log the failure
// without touching the connection again.
func TestStreamErrorDeadEmitter(t *testing.T) {
	s := newTestServer(t, Config{})
	w := &brokenWriter{okWrites: 0}
	e := &streamEmitter{w: w, started: true, dead: true}
	s.streamError(context.Background(), "frontier", e, errors.New("boom"))
	if got := s.Snapshot().Responses["serverError"]; got != 1 {
		t.Errorf("responses.serverError = %d, want 1", got)
	}
	if w.writes != 0 {
		t.Errorf("dead emitter saw %d writes, want 0", w.writes)
	}
}

// TestFrontierStreamClientGoneMidStream drives the whole pipeline into
// a client that dies after the header frame: the handler must return
// without emitting further frames, counting a success, or panicking.
func TestFrontierStreamClientGoneMidStream(t *testing.T) {
	s := newTestServer(t, Config{})
	w := &brokenWriter{okWrites: 1} // header flush lands, first row write fails
	req := httptest.NewRequest(http.MethodPost, "/v1/frontier/stream",
		strings.NewReader(`{"workload":"MMM","f":0.9,"scenario":1}`))
	s.Handler().ServeHTTP(w, req)
	snap := s.Snapshot().Responses
	if snap["ok"] != 0 {
		t.Errorf("responses.ok = %d, want 0 (the stream never finished)", snap["ok"])
	}
	if snap["serverError"] != 0 || snap["clientError"] != 0 {
		t.Errorf("error counters = (%d, %d), want (0, 0): a vanished client is not a server failure",
			snap["serverError"], snap["clientError"])
	}
	if w.writes < 2 {
		t.Errorf("writer saw %d writes, want at least the header and the failed row", w.writes)
	}
}

// TestFrontierStreamSaturated503: streams always evaluate, so they
// queue at the admission gate like any miss — with the only slot held
// and no queue patience, the stream is refused with a plain HTTP 503
// before any NDJSON starts.
func TestFrontierStreamSaturated503(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInflight:  1,
		MaxQueue:     4,
		QueueTimeout: 5 * time.Millisecond,
	})
	release, status := s.gate.acquire(context.Background())
	if status != 0 {
		t.Fatalf("holding the only slot: status %d", status)
	}
	defer release()
	rec := do(t, s, http.MethodPost, "/v1/frontier/stream", `{"workload":"MMM","f":0.9}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct == "application/x-ndjson" {
		t.Error("a refused stream must not claim to be NDJSON")
	}
}

// TestFrontierStreamDeadlineBeforeHeader: a deadline that expires
// while the evaluation is still running — before any frame is on the
// wire — is a plain HTTP 504, not a 200 with an in-band error.
func TestFrontierStreamDeadlineBeforeHeader(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	rec := do(t, s, http.MethodPost, "/v1/frontier/stream", `{"workload":"MMM","f":0.9,"scenario":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", rec.Code, rec.Body.String())
	}
}
