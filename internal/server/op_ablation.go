package server

import (
	"context"
	"encoding/json"

	"github.com/calcm/heterosim/internal/ablation"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/itrs"
)

// POST /v1/ablation — the three configuration ablations at one node.

// AblationRequest runs the bandwidth-bound, power-bound, and
// sequential-sizing ablations for a workload's design lineup at one
// roadmap node.
type AblationRequest struct {
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Node        string          `json:"node,omitempty"` // default "11nm", the CLI's far-node default
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
	Workers     int             `json:"workers,omitempty"`
}

// AblationResultJSON compares one design with and without an
// ingredient.
type AblationResultJSON struct {
	Design   string  `json:"design"`
	Baseline float64 `json:"baseline"`
	Ablated  float64 `json:"ablated"`
	Ratio    float64 `json:"ratio"`
}

// AblationStudyJSON is one named ablation across the design lineup.
type AblationStudyJSON struct {
	Study   string               `json:"study"`
	Results []AblationResultJSON `json:"results"`
}

// AblationResponse carries the three studies in fixed order. Model
// names the backend only for non-default requests.
type AblationResponse struct {
	Workload string              `json:"workload"`
	F        float64             `json:"f"`
	Node     string              `json:"node"`
	Studies  []AblationStudyJSON `json:"studies"`
	Model    string              `json:"model,omitempty"`
}

// ablationStudyNames names ablation.StudiesCtx's fixed return order.
var ablationStudyNames = [...]string{"bandwidthBound", "powerBound", "sequentialSizing"}

var opAblation = engine.New("ablation", buildAblation)

func buildAblation(req *AblationRequest, env engine.Env) (func(context.Context) (AblationResponse, error), error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if err := engine.CheckF(req.F); err != nil {
		return nil, err
	}
	if req.Node == "" {
		req.Node = "11nm"
	}
	nodeIdx, err := itrs.Default().Index(req.Node)
	if err != nil {
		return nil, badRequest("unknown node %q", req.Node)
	}
	mk, err := resolveModelFactory(&req.Model, &req.ModelParams, env)
	if err != nil {
		return nil, err
	}
	workers := workersOr(&req.Workers, env)
	return func(ctx context.Context) (AblationResponse, error) {
		studies, err := ablation.StudiesModelCtx(ctx, w, req.F, nodeIdx, workers, mk)
		if err != nil {
			return AblationResponse{}, evalFailure(err, unprocessable)
		}
		resp := AblationResponse{Workload: req.Workload, F: req.F, Node: req.Node, Model: req.Model}
		for i, rs := range studies {
			st := AblationStudyJSON{Study: ablationStudyNames[i]}
			for _, r := range rs {
				st.Results = append(st.Results, AblationResultJSON{
					Design:   r.Design,
					Baseline: r.Baseline,
					Ablated:  r.Ablated,
					Ratio:    r.Ratio,
				})
			}
			resp.Studies = append(resp.Studies, st)
		}
		return resp, nil
	}, nil
}
