package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/calcm/heterosim/internal/telemetry"
)

// newRequest builds a request the caller can decorate with headers
// before handing it to serve.
func newRequest(t *testing.T, method, path, body string) *http.Request {
	t.Helper()
	if body == "" {
		return httptest.NewRequest(method, path, nil)
	}
	return httptest.NewRequest(method, path, strings.NewReader(body))
}

// serve runs one decorated request through the full handler stack.
func serve(s *Server, req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// warmObservability drives a representative request mix so every metric
// family has series: a cold optimize (miss), the same optimize again
// (hit), a small sweep (exercises the sweep stage), healthz, version,
// and one client error.
func warmObservability(t *testing.T, s *Server) {
	t.Helper()
	opt := `{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`
	for _, req := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/optimize", opt},
		{http.MethodPost, "/v1/optimize", opt},
		{http.MethodPost, "/v1/sweep", `{"workload":"MMM","design":{"kind":"sym"},"f":{"lo":0.1,"hi":0.9,"steps":3}}`},
		{http.MethodGet, "/healthz", ""},
		{http.MethodGet, "/v1/version", ""},
		{http.MethodPost, "/v1/optimize", `{not json`},
	} {
		do(t, s, req.method, req.path, req.body)
	}
}

// promSeries parses Prometheus text exposition into sample-name ->
// value, keyed by the full "name{labels}" series identity.
func promSeries(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// seriesShape reduces a series identity to its stable shape: the metric
// name plus sorted label KEYS (values like le bounds and request counts
// vary run to run, names and label keys must not).
func seriesShape(series string) string {
	name, rest, ok := strings.Cut(series, "{")
	if !ok {
		return series
	}
	rest = strings.TrimSuffix(rest, "}")
	keys := make([]string, 0, 2)
	for _, kv := range strings.Split(rest, ",") {
		k, _, _ := strings.Cut(kv, "=")
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return name + "{" + strings.Join(keys, ",") + "}"
}

func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	body := strings.Join(got, "\n") + "\n"
	if *update {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/server -run %s -update)", err, t.Name())
	}
	if body != string(want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", name, body, want)
	}
}

// TestMetricsPrometheusGolden pins the exposition's metric names and
// label keys: dashboards and scrape configs depend on them, so any
// rename must show up as a golden diff.
func TestMetricsPrometheusGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	warmObservability(t, s)
	rec := do(t, s, http.MethodGet, "/metrics?format=prometheus", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	shapes := make(map[string]bool)
	for series := range promSeries(t, rec.Body.String()) {
		shapes[seriesShape(series)] = true
	}
	got := make([]string, 0, len(shapes))
	for sh := range shapes {
		got = append(got, sh)
	}
	sort.Strings(got)
	checkGolden(t, "metrics_prometheus_shape.golden", got)
}

// keyTree flattens a decoded JSON document into sorted dotted key
// paths. Map values under volatile keys (per-endpoint counts keep their
// keys; everything else keeps structure) are walked recursively.
func keyTree(prefix string, v any, out *[]string) {
	m, ok := v.(map[string]any)
	if !ok {
		*out = append(*out, prefix)
		return
	}
	for k, child := range m {
		p := k
		if prefix != "" {
			p = prefix + "." + k
		}
		keyTree(p, child, out)
	}
}

// TestMetricsJSONShapeGolden locks the JSON /metrics document to the
// key tree it has had since the cache/admission PRs: the observability
// layer must not add, rename, or remove fields there (new telemetry is
// Prometheus-only).
func TestMetricsJSONShapeGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	warmObservability(t, s)
	rec := do(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var paths []string
	keyTree("", doc, &paths)
	sort.Strings(paths)
	checkGolden(t, "metrics_json_shape.golden", paths)
}

// TestPrometheusSumsMatchJSON is the acceptance criterion: per-endpoint
// histogram counts in the exposition equal the JSON request counters,
// and requests_total agrees between the two renderings. Both snapshots
// are taken with no traffic in flight, so they must agree exactly.
func TestPrometheusSumsMatchJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	warmObservability(t, s)

	prom := promSeries(t, do(t, s, http.MethodGet, "/metrics?format=prometheus", "").Body.String())
	var doc struct {
		Requests map[string]int64 `json:"requests"`
	}
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/metrics", "").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	for ep, jsonCount := range doc.Requests {
		series := fmt.Sprintf(`heterosimd_requests_total{endpoint="%s"}`, ep)
		got, ok := prom[series]
		if !ok {
			t.Errorf("exposition missing %s", series)
			continue
		}
		// The prometheus fetch itself bumped the metrics counter once
		// between the two snapshots; the JSON fetch bumped it once more
		// before its own snapshot, so at JSON-snapshot time the counter
		// is one ahead of what the exposition saw.
		want := float64(jsonCount)
		if ep == "metrics" {
			want--
		}
		if got != want {
			t.Errorf("%s = %v, JSON counter = %v", series, got, want)
		}
		// Histogram count for the endpoint must match its request
		// counter — recorded at the same place in the handler.
		hist := fmt.Sprintf(`heterosimd_request_duration_seconds_count{endpoint="%s"}`, ep)
		if hc, ok := prom[hist]; ok && hc != want {
			t.Errorf("%s = %v, want %v (must equal requests_total)", hist, hc, want)
		}
	}

	// Every stage the request mix exercises must have recorded spans.
	for _, stage := range []string{"decode", "cache", "gate", "evaluate", "encode", "sweep"} {
		series := fmt.Sprintf(`heterosimd_stage_duration_seconds_count{stage="%s"}`, stage)
		if prom[series] <= 0 {
			t.Errorf("stage %q recorded no spans (%s = %v)", stage, series, prom[series])
		}
	}
}

// TestPrometheusNegotiation covers the three selection paths: explicit
// query (wins over Accept), Accept sniffing, and the JSON default.
func TestPrometheusNegotiation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		query, accept string
		wantProm      bool
	}{
		{"", "", false},
		{"format=prometheus", "", true},
		{"format=json", "text/plain", false},
		{"", "text/plain", true},
		{"", "application/openmetrics-text; version=1.0.0", true},
		{"", "application/json", false},
	}
	for _, c := range cases {
		path := "/metrics"
		if c.query != "" {
			path += "?" + c.query
		}
		req := newRequest(t, http.MethodGet, path, "")
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		rec := serve(s, req)
		isProm := strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain")
		if isProm != c.wantProm {
			t.Errorf("query=%q accept=%q: prometheus=%v, want %v", c.query, c.accept, isProm, c.wantProm)
		}
	}
}

// TestRequestIDEcho checks the header contract: a well-formed caller ID
// is kept and echoed; a malformed one is replaced by a minted ID; no
// header gets a minted ID.
func TestRequestIDEcho(t *testing.T) {
	s := newTestServer(t, Config{})

	req := newRequest(t, http.MethodGet, "/healthz", "")
	req.Header.Set(telemetry.HeaderRequestID, "caller-supplied-42")
	if got := serve(s, req).Header().Get(telemetry.HeaderRequestID); got != "caller-supplied-42" {
		t.Errorf("valid ID not echoed: got %q", got)
	}

	req = newRequest(t, http.MethodGet, "/healthz", "")
	req.Header.Set(telemetry.HeaderRequestID, "has space\x7f")
	got := serve(s, req).Header().Get(telemetry.HeaderRequestID)
	if got == "" || got == "has space\x7f" {
		t.Errorf("malformed ID must be replaced with a minted one, got %q", got)
	}

	if got := serve(s, newRequest(t, http.MethodGet, "/healthz", "")).Header().Get(telemetry.HeaderRequestID); got == "" {
		t.Error("missing ID must be minted")
	}
}

// TestAccessLog asserts exactly one structured line per request, with
// the request ID, status, and cache outcome the response carried.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := newTestServer(t, Config{Logger: logger})

	req := newRequest(t, http.MethodPost, "/v1/optimize", `{"workload":"MMM","f":0.5,"design":{"kind":"sym"}}`)
	req.Header.Set(telemetry.HeaderRequestID, "log-test-1")
	serve(s, req)

	lines := buf.Lines()
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), lines)
	}
	var entry struct {
		Msg    string  `json:"msg"`
		ID     string  `json:"id"`
		Status int     `json:"status"`
		Cache  string  `json:"cache"`
		DurMs  float64 `json:"durMs"`
		Path   string  `json:"path"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Msg != "request" || entry.ID != "log-test-1" || entry.Status != 200 ||
		entry.Cache != "miss" || entry.Path != "/v1/optimize" || entry.DurMs < 0 {
		t.Errorf("unexpected access-log entry: %+v", entry)
	}
}

// syncBuffer is a mutex-guarded buffer slog handlers can share with the
// test goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
