package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/scenario"
	"github.com/calcm/heterosim/internal/sweep"
)

// maxSweepCells bounds one sweep request: a 100k-cell grid evaluates in
// well under a second, anything larger should be split by the client.
const maxSweepCells = 100_000

// objective selects what Optimize maximizes (or minimizes, for energy).
func parseObjective(s string) (string, error) {
	switch s {
	case "", "speedup":
		return "speedup", nil
	case "energy":
		return "energy", nil
	default:
		return "", badRequest("unknown objective %q (want speedup or energy)", s)
	}
}

// evaluatorFor builds the core evaluator, honoring an alpha override
// (0 means the paper default of 1.75).
func evaluatorFor(alpha float64) (core.Evaluator, error) {
	if alpha == 0 {
		return core.NewEvaluator(), nil
	}
	law, err := pollack.New(alpha)
	if err != nil {
		return core.Evaluator{}, badRequest("%v", err)
	}
	return core.Evaluator{Law: law, MaxR: core.NewEvaluator().MaxR}, nil
}

// checkF validates a parallel fraction.
func checkF(f float64) error {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return badRequest("f must be in [0, 1], got %v", f)
	}
	return nil
}

// evalFailure classifies an evaluation error: context cancellation and
// deadline errors pass through untouched so the transport can map them
// to 503/504, anything else is wrapped with mk (badRequest or
// unprocessable).
func evalFailure(err error, mk func(string, ...any) *apiError) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return mk("%v", err)
}

// ---------------------------------------------------------------------
// POST /v1/optimize — one design point.

// OptimizeRequest asks for the optimal sequential-core size of one
// design under one budget triple. Budgets come either from a roadmap
// node name (converted for the workload, as the projections do) or as an
// explicit BCE-relative triple.
type OptimizeRequest struct {
	Workload  string       `json:"workload"`
	F         float64      `json:"f"`
	Node      string       `json:"node,omitempty"`
	Budgets   *BudgetsSpec `json:"budgets,omitempty"`
	Alpha     float64      `json:"alpha,omitempty"`
	Objective string       `json:"objective,omitempty"`
	Design    DesignSpec   `json:"design"`
}

// OptimizeResponse is the evaluated point plus the budgets it ran under.
type OptimizeResponse struct {
	Workload string      `json:"workload"`
	Node     string      `json:"node,omitempty"`
	Budgets  BudgetsSpec `json:"budgets"`
	Point    PointJSON   `json:"point"`
}

func (s *Server) evalOptimize(body []byte) (string, func(context.Context) ([]byte, error), error) {
	var req OptimizeRequest
	if err := decodeStrict(body, &req); err != nil {
		return "", nil, err
	}
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return "", nil, err
	}
	req.Workload = string(w) // canonical spelling for the cache key
	if err := checkF(req.F); err != nil {
		return "", nil, err
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return "", nil, err
	}
	req.Objective = obj
	d, err := req.Design.resolve(w)
	if err != nil {
		return "", nil, err
	}
	ev, err := evaluatorFor(req.Alpha)
	if err != nil {
		return "", nil, err
	}
	var b bounds.Budgets
	switch {
	case req.Budgets != nil:
		if req.Node != "" {
			return "", nil, badRequest("give either node or budgets, not both")
		}
		if req.Budgets.Area <= 0 || req.Budgets.Power <= 0 || req.Budgets.Bandwidth <= 0 {
			return "", nil, badRequest("budgets must be positive")
		}
		b = bounds.Budgets{Area: req.Budgets.Area, Power: req.Budgets.Power, Bandwidth: req.Budgets.Bandwidth}
	default:
		if req.Node == "" {
			req.Node = "40nm"
		}
		cfg := project.DefaultConfig(w)
		node, err := cfg.Roadmap.ByName(req.Node)
		if err != nil {
			return "", nil, badRequest("%v", err)
		}
		b, err = cfg.BudgetsAt(node)
		if err != nil {
			return "", nil, badRequest("%v", err)
		}
	}
	key, err := canonicalKey("/v1/optimize", req)
	if err != nil {
		return "", nil, err
	}
	return key, func(context.Context) ([]byte, error) {
		opt := ev.Optimize
		if req.Objective == "energy" {
			opt = ev.OptimizeEnergy
		}
		pt, err := opt(d, req.F, b)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				return nil, unprocessable("%v", err)
			}
			return nil, badRequest("%v", err)
		}
		return json.Marshal(OptimizeResponse{
			Workload: req.Workload,
			Node:     req.Node,
			Budgets:  BudgetsSpec{Area: b.Area, Power: b.Power, Bandwidth: b.Bandwidth},
			Point:    pointJSON(pt),
		})
	}, nil
}

// ---------------------------------------------------------------------
// POST /v1/sweep — an (f x budget-scale) grid of design points.

// AxisSpec is one sweep dimension: either explicit values or an
// inclusive [lo, hi] range sampled at steps points.
type AxisSpec struct {
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	Steps  int       `json:"steps,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// values materializes the axis.
func (a AxisSpec) values(name string) ([]float64, error) {
	if len(a.Values) > 0 {
		if a.Lo != 0 || a.Hi != 0 || a.Steps != 0 {
			return nil, badRequest("axis %s: give either values or lo/hi/steps, not both", name)
		}
		return a.Values, nil
	}
	vals, err := sweep.Range(a.Lo, a.Hi, a.Steps)
	if err != nil {
		return nil, badRequest("axis %s: %v", name, err)
	}
	return vals, nil
}

// unitAxis is the default for omitted budget-scale axes.
func unitAxis(a *AxisSpec) AxisSpec {
	if a == nil {
		return AxisSpec{Values: []float64{1}}
	}
	return *a
}

// SweepRequest evaluates one design across an f x budget-scale grid at a
// roadmap node. Scale axes multiply the node's converted budgets, so
// {f: {values: [0.9, 0.99]}, bandwidthScale: {lo: 0.5, hi: 2, steps: 4}}
// explores the bandwidth wall interactively.
type SweepRequest struct {
	Workload       string     `json:"workload"`
	Node           string     `json:"node,omitempty"`
	Design         DesignSpec `json:"design"`
	Alpha          float64    `json:"alpha,omitempty"`
	Objective      string     `json:"objective,omitempty"`
	F              AxisSpec   `json:"f"`
	AreaScale      *AxisSpec  `json:"areaScale,omitempty"`
	PowerScale     *AxisSpec  `json:"powerScale,omitempty"`
	BandwidthScale *AxisSpec  `json:"bandwidthScale,omitempty"`
	Workers        int        `json:"workers,omitempty"`
}

// SweepPointJSON is one evaluated grid cell. Infeasible cells are
// reported with Valid=false rather than failing the sweep.
type SweepPointJSON struct {
	F              float64 `json:"f"`
	AreaScale      float64 `json:"areaScale"`
	PowerScale     float64 `json:"powerScale"`
	BandwidthScale float64 `json:"bandwidthScale"`
	Valid          bool    `json:"valid"`
	R              int     `json:"r,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	Limit          string  `json:"limit,omitempty"`
	EnergyNorm     float64 `json:"energyNorm,omitempty"`
}

// SweepResponse carries the full surface in row-major order (axes in
// the listed order, last axis fastest) plus the best feasible cell.
type SweepResponse struct {
	Workload string           `json:"workload"`
	Node     string           `json:"node"`
	Design   string           `json:"design"`
	Axes     []AxisJSON       `json:"axes"`
	Points   []SweepPointJSON `json:"points"`
	Feasible int              `json:"feasible"`
	Best     *SweepPointJSON  `json:"best,omitempty"`
}

// AxisJSON names one grid dimension and its values.
type AxisJSON struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func (s *Server) evalSweep(body []byte) (string, func(context.Context) ([]byte, error), error) {
	var req SweepRequest
	if err := decodeStrict(body, &req); err != nil {
		return "", nil, err
	}
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return "", nil, err
	}
	req.Workload = string(w)
	if req.Node == "" {
		req.Node = "40nm"
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return "", nil, err
	}
	req.Objective = obj
	d, err := req.Design.resolve(w)
	if err != nil {
		return "", nil, err
	}
	ev, err := evaluatorFor(req.Alpha)
	if err != nil {
		return "", nil, err
	}
	cfg := project.DefaultConfig(w)
	node, err := cfg.Roadmap.ByName(req.Node)
	if err != nil {
		return "", nil, badRequest("%v", err)
	}
	base, err := cfg.BudgetsAt(node)
	if err != nil {
		return "", nil, badRequest("%v", err)
	}
	fVals, err := req.F.values("f")
	if err != nil {
		return "", nil, err
	}
	for _, f := range fVals {
		if err := checkF(f); err != nil {
			return "", nil, err
		}
	}
	axes := []sweep.Axis{{Name: "f", Values: fVals}}
	for _, sc := range []struct {
		name string
		spec AxisSpec
	}{
		{"area", unitAxis(req.AreaScale)},
		{"power", unitAxis(req.PowerScale)},
		{"bandwidth", unitAxis(req.BandwidthScale)},
	} {
		vals, err := sc.spec.values(sc.name + "Scale")
		if err != nil {
			return "", nil, err
		}
		for _, v := range vals {
			if v <= 0 || math.IsNaN(v) {
				return "", nil, badRequest("axis %sScale: scales must be positive", sc.name)
			}
		}
		axes = append(axes, sweep.Axis{Name: sc.name, Values: vals})
	}
	grid, err := sweep.NewGrid(axes...)
	if err != nil {
		return "", nil, badRequest("%v", err)
	}
	if grid.Size() > maxSweepCells {
		return "", nil, badRequest("sweep has %d cells, limit %d: split the request", grid.Size(), maxSweepCells)
	}
	workers := par.Normalize(req.Workers)
	if workers == 0 {
		workers = s.cfg.Workers
	}
	req.Workers = 0 // responses are identical at every worker count
	key, err := canonicalKey("/v1/sweep", req)
	if err != nil {
		return "", nil, err
	}

	// Per-axis value -> index tables recover each cell's flat row-major
	// index from the Point EachParallel hands us (the values are exact
	// copies of the axis slices, so float equality is reliable).
	index := make([]map[float64]int, len(axes))
	for i, ax := range axes {
		index[i] = make(map[float64]int, len(ax.Values))
		for j, v := range ax.Values {
			index[i][v] = j
		}
	}
	return key, func(ctx context.Context) ([]byte, error) {
		points := make([]SweepPointJSON, grid.Size())
		err := grid.EachParallel(ctx, workers, func(p sweep.Point) error {
			flat := 0
			for i, ax := range axes {
				flat = flat*len(ax.Values) + index[i][p[ax.Name]]
			}
			f, as, ps, bs := p["f"], p["area"], p["power"], p["bandwidth"]
			cell := SweepPointJSON{F: f, AreaScale: as, PowerScale: ps, BandwidthScale: bs}
			b := bounds.Budgets{Area: base.Area * as, Power: base.Power * ps, Bandwidth: base.Bandwidth * bs}
			opt := ev.Optimize
			if req.Objective == "energy" {
				opt = ev.OptimizeEnergy
			}
			pt, err := opt(d, f, b)
			if err == nil {
				cell.Valid = true
				cell.R = pt.R
				cell.Speedup = pt.Speedup
				cell.Limit = pt.Limit.String()
				cell.EnergyNorm = pt.EnergyNorm
			} else if !errors.Is(err, core.ErrInfeasible) {
				return err
			}
			points[flat] = cell
			return nil
		})
		if err != nil {
			return nil, evalFailure(err, badRequest)
		}
		resp := SweepResponse{
			Workload: req.Workload,
			Node:     req.Node,
			Design:   d.Label,
		}
		for _, ax := range axes {
			resp.Axes = append(resp.Axes, AxisJSON{Name: ax.Name, Values: ax.Values})
		}
		resp.Points = points
		// The best cell is reduced serially in index order (strict >), so
		// ties break to the lowest index at every worker count.
		for i := range points {
			if !points[i].Valid {
				continue
			}
			resp.Feasible++
			better := resp.Best == nil
			if !better {
				if req.Objective == "energy" {
					better = points[i].EnergyNorm < resp.Best.EnergyNorm
				} else {
					better = points[i].Speedup > resp.Best.Speedup
				}
			}
			if better {
				resp.Best = &points[i]
			}
		}
		return json.Marshal(resp)
	}, nil
}

// ---------------------------------------------------------------------
// POST /v1/project — ITRS trajectory projection.

// ProjectRequest mirrors the CLI `project` subcommand: a workload and
// parallel fraction under a scenario (0 = baseline), with optional
// physical-budget overrides.
type ProjectRequest struct {
	Workload  string  `json:"workload"`
	F         float64 `json:"f"`
	Scenario  int     `json:"scenario,omitempty"`
	Power     float64 `json:"power,omitempty"`     // watts; overrides the scenario default
	Bandwidth float64 `json:"bandwidth,omitempty"` // GB/s at the first node
	AreaScale float64 `json:"areaScale,omitempty"`
	Objective string  `json:"objective,omitempty"`
	Workers   int     `json:"workers,omitempty"`
}

// ProjectResponse is the full design lineup's trajectories.
type ProjectResponse struct {
	Workload     string           `json:"workload"`
	F            float64          `json:"f"`
	Scenario     int              `json:"scenario"`
	ScenarioName string           `json:"scenarioName"`
	Objective    string           `json:"objective"`
	Nodes        []string         `json:"nodes"`
	Trajectories []TrajectoryJSON `json:"trajectories"`
}

// projectConfig resolves a ProjectRequest into the engine configuration,
// shared by the project and scenario endpoints.
func (s *Server) projectConfig(req *ProjectRequest) (project.Config, scenario.Scenario, error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	req.Workload = string(w)
	if err := checkF(req.F); err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return project.Config{}, scenario.Scenario{}, err
	}
	req.Objective = obj
	sc, err := scenario.Get(scenario.ID(req.Scenario))
	if err != nil {
		return project.Config{}, scenario.Scenario{}, badRequest("%v", err)
	}
	if req.Power < 0 || req.Bandwidth < 0 || req.AreaScale < 0 {
		return project.Config{}, scenario.Scenario{}, badRequest("overrides must be positive (or omitted)")
	}
	cfg := sc.Apply(project.DefaultConfig(w))
	if req.Power > 0 {
		cfg.PowerBudgetW = req.Power
	}
	if req.Bandwidth > 0 {
		cfg.BaseBandwidthGBs = req.Bandwidth
	}
	if req.AreaScale > 0 {
		cfg.AreaScale = req.AreaScale
	}
	workers := par.Normalize(req.Workers)
	if workers == 0 {
		workers = s.cfg.Workers
	}
	cfg.Workers = workers
	req.Workers = 0 // responses are identical at every worker count
	return cfg, sc, nil
}

func (s *Server) evalProject(body []byte) (string, func(context.Context) ([]byte, error), error) {
	var req ProjectRequest
	if err := decodeStrict(body, &req); err != nil {
		return "", nil, err
	}
	cfg, sc, err := s.projectConfig(&req)
	if err != nil {
		return "", nil, err
	}
	key, err := canonicalKey("/v1/project", req)
	if err != nil {
		return "", nil, err
	}
	return key, func(ctx context.Context) ([]byte, error) {
		proj := project.ProjectCtx
		if req.Objective == "energy" {
			proj = project.ProjectEnergyCtx
		}
		ts, err := proj(ctx, cfg, req.F)
		if err != nil {
			return nil, evalFailure(err, unprocessable)
		}
		resp := ProjectResponse{
			Workload:     req.Workload,
			F:            req.F,
			Scenario:     req.Scenario,
			ScenarioName: sc.Name,
			Objective:    req.Objective,
			Trajectories: trajectoryJSON(ts),
		}
		for _, n := range cfg.Roadmap.Nodes() {
			resp.Nodes = append(resp.Nodes, n.Name)
		}
		return json.Marshal(resp)
	}, nil
}

// ---------------------------------------------------------------------
// POST /v1/scenario — a Section 6.2 study: baseline vs alternative.

// ScenarioRequest runs one of the six alternative-assumption studies
// side by side with the baseline.
type ScenarioRequest struct {
	Scenario int     `json:"scenario"` // 1-6
	Workload string  `json:"workload"`
	F        float64 `json:"f"`
	Workers  int     `json:"workers,omitempty"`
}

// ScenarioResponse pairs the baseline and alternative trajectory sets
// with the scenario's metadata.
type ScenarioResponse struct {
	Scenario    int              `json:"scenario"`
	Name        string           `json:"name"`
	Rationale   string           `json:"rationale"`
	Expectation string           `json:"expectation"`
	Workload    string           `json:"workload"`
	F           float64          `json:"f"`
	Nodes       []string         `json:"nodes"`
	Baseline    []TrajectoryJSON `json:"baseline"`
	Alternative []TrajectoryJSON `json:"alternative"`
}

func (s *Server) evalScenario(body []byte) (string, func(context.Context) ([]byte, error), error) {
	var req ScenarioRequest
	if err := decodeStrict(body, &req); err != nil {
		return "", nil, err
	}
	if req.Scenario < 1 || req.Scenario > 6 {
		return "", nil, badRequest("scenario must be 1-6, got %d", req.Scenario)
	}
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return "", nil, err
	}
	req.Workload = string(w)
	if err := checkF(req.F); err != nil {
		return "", nil, err
	}
	sc, err := scenario.Get(scenario.ID(req.Scenario))
	if err != nil {
		return "", nil, badRequest("%v", err)
	}
	workers := par.Normalize(req.Workers)
	if workers == 0 {
		workers = s.cfg.Workers
	}
	req.Workers = 0 // responses are identical at every worker count
	key, err := canonicalKey("/v1/scenario", req)
	if err != nil {
		return "", nil, err
	}
	return key, func(ctx context.Context) ([]byte, error) {
		base, alt, err := scenario.CompareCtx(ctx, sc, w, req.F, workers)
		if err != nil {
			return nil, evalFailure(err, unprocessable)
		}
		resp := ScenarioResponse{
			Scenario:    req.Scenario,
			Name:        sc.Name,
			Rationale:   sc.Rationale,
			Expectation: sc.Expectation,
			Workload:    req.Workload,
			F:           req.F,
			Baseline:    trajectoryJSON(base),
			Alternative: trajectoryJSON(alt),
		}
		for _, n := range project.DefaultConfig(w).Roadmap.Nodes() {
			resp.Nodes = append(resp.Nodes, n.Name)
		}
		return json.Marshal(resp)
	}, nil
}

// Endpoints lists the serving surface, for startup logs and smoke
// checks.
func Endpoints() []string {
	return []string{
		"POST /v1/optimize",
		"POST /v1/sweep",
		"POST /v1/project",
		"POST /v1/scenario",
		"GET /v1/version",
		"GET /healthz",
		"GET /metrics",
	}
}
