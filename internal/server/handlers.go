package server

import (
	"encoding/json"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/project"
)

// registry is the model-serving surface: every POST /v1 endpoint is one
// engine.Op built from a request type, a validation/canonicalization
// step, and a ctx-aware evaluation closure (see the op_*.go files). The
// serving pipeline — strict decode, canonical cache key, coalescing,
// admission, deadlines, telemetry, error mapping — is written once in
// model(); adding an endpoint is one entry here plus its op file.
var registry = engine.NewRegistry(
	opOptimize,
	opSweep,
	opProject,
	opScenario,
	opSensitivity,
	opAblation,
	opCompare,
)

// extraEndpoints are the hand-rolled routes counted beside the
// registry ops in /metrics, in their fixed counter order: the GET
// surface plus the batch fan-out (POST, but not a registry op — one
// batch carries many per-item cache keys, so it cannot ride the
// one-key pipeline).
var extraEndpoints = [...]string{"healthz", "metrics", "version", "models", "batch", "frontier"}

// Counter indices of the hand-rolled endpoints: they follow the
// registry ops. frontier is a stream-only op (no buffered form, so not
// a registry entry) routed through the generic stream pipeline.
var (
	idxHealthz  = len(registry.Names())
	idxMetrics  = idxHealthz + 1
	idxVersion  = idxHealthz + 2
	idxModels   = idxHealthz + 3
	idxBatch    = idxHealthz + 4
	idxFrontier = idxHealthz + 5
)

// registryOps resolves a batch item's op field against the registry.
var registryOps = func() map[string]engine.Op {
	m := make(map[string]engine.Op, len(registry.Ops()))
	for _, op := range registry.Ops() {
		m[op.Name()] = op
	}
	return m
}()

// defaultEvaluator is the shared paper-default evaluator: Evaluator is
// an immutable value, so every request using the default (or explicit
// paper) alpha reuses this one instead of revalidating the law.
var defaultEvaluator = core.NewEvaluator()

// evaluatorFor builds the core evaluator, honoring an alpha override
// (0 means the paper default of 1.75).
func evaluatorFor(alpha float64) (core.Evaluator, error) {
	if alpha == 0 || alpha == pollack.DefaultAlpha {
		return defaultEvaluator, nil
	}
	law, err := pollack.New(alpha)
	if err != nil {
		return core.Evaluator{}, badRequest("%v", err)
	}
	return core.Evaluator{Law: law, MaxR: defaultEvaluator.MaxR}, nil
}

// nodeBudgets resolves a request's (workload, node-name) pair to its
// default-configuration budgets via the precomputed project tables,
// mapping failures (unknown node names) to 400s.
func nodeBudgets(w paper.WorkloadID, nodeName string) (bounds.Budgets, error) {
	b, err := project.DefaultBudgets(w, nodeName)
	if err != nil {
		return bounds.Budgets{}, badRequest("%v", err)
	}
	return b, nil
}

// workersOr resolves a request's worker count: normalized like the CLI
// flag, falling back to the serving default, and cleared in place so a
// worker count never fragments the cache (responses are byte-identical
// at every worker count).
func workersOr(reqWorkers *int, env engine.Env) int {
	w := par.Normalize(*reqWorkers)
	if w == 0 {
		w = env.Workers
	}
	*reqWorkers = 0
	return w
}

// resolveModel canonicalizes a request's (model, modelParams) pair in
// place, reports the resolved backend to the serving layer, and
// constructs it. The default backend returns a nil Model: the legacy
// Chung evaluator answers those requests, so default responses stay
// byte-identical to the pre-backend contract. Canonicalization also
// clears every spelling of the default ("", "chung", "CHUNG") back to
// the omitted form and re-marshals other backends' params with their
// defaults filled, so equivalent requests share one cache entry.
// alpha <= 0 means the paper default; maxR is always the serving
// default sweep bound.
func resolveModel(name *string, params *json.RawMessage, alpha float64, env engine.Env) (model.Model, error) {
	canon, err := model.Canonical(*name)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	env.ReportModel(canon)
	m, cp, err := model.New(canon, alpha, defaultEvaluator.MaxR, *params)
	if err != nil {
		return nil, badRequest("model %s: %v", canon, err)
	}
	if canon == model.DefaultName {
		*name, *params = "", nil
		return nil, nil
	}
	*name, *params = canon, cp
	return m, nil
}

// resolveModelFactory is resolveModel for the projection operations
// (project, scenario, ablation): construction is deferred behind a
// model.Factory so configuration transforms applied later — scenario
// 6's alpha override, the ablation's MaxR pinning — reach the backend.
// The pair is still validated and canonicalized here, at request
// decode time; a nil factory keeps the projection's analytic Chung
// path.
func resolveModelFactory(name *string, params *json.RawMessage, env engine.Env) (model.Factory, error) {
	if _, err := resolveModel(name, params, 0, env); err != nil {
		return nil, err
	}
	if *name == "" {
		return nil, nil
	}
	return model.NewFactory(*name, *params), nil
}

// ModelsResponse is the GET /v1/models document: the registry's
// backends in registration order plus the name answering defaulted
// requests.
type ModelsResponse struct {
	Default string       `json:"default"`
	Models  []model.Info `json:"models"`
}

// Endpoints lists the serving surface — derived from the registry so
// startup logs and smoke checks can never drift from what is actually
// routed.
func Endpoints() []string {
	out := make([]string, 0, len(registry.Ops())+6)
	for _, op := range registry.Ops() {
		out = append(out, "POST "+op.Path())
	}
	return append(out, "POST "+streamFrontier.Path(), "POST /v1/batch",
		"GET /v1/version", "GET /v1/models", "GET /healthz", "GET /metrics")
}
