package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strconv"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/sweep"
)

// POST /v1/sweep — an (f x budget-scale) grid of design points.

// maxSweepCells bounds one sweep request: a 100k-cell grid evaluates in
// well under a second, anything larger should be split by the client.
const maxSweepCells = 100_000

// AxisSpec is one sweep dimension: either explicit values or an
// inclusive [lo, hi] range sampled at steps points.
type AxisSpec struct {
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	Steps  int       `json:"steps,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// values materializes the axis.
func (a AxisSpec) values(name string) ([]float64, error) {
	if len(a.Values) > 0 {
		if a.Lo != 0 || a.Hi != 0 || a.Steps != 0 {
			return nil, badRequest("axis %s: give either values or lo/hi/steps, not both", name)
		}
		return a.Values, nil
	}
	vals, err := sweep.Range(a.Lo, a.Hi, a.Steps)
	if err != nil {
		return nil, badRequest("axis %s: %v", name, err)
	}
	return vals, nil
}

// unitAxis is the default for omitted budget-scale axes.
func unitAxis(a *AxisSpec) AxisSpec {
	if a == nil {
		return AxisSpec{Values: []float64{1}}
	}
	return *a
}

// SweepRequest evaluates one design across an f x budget-scale grid at a
// roadmap node. Scale axes multiply the node's converted budgets, so
// {f: {values: [0.9, 0.99]}, bandwidthScale: {lo: 0.5, hi: 2, steps: 4}}
// explores the bandwidth wall interactively.
type SweepRequest struct {
	Workload       string          `json:"workload"`
	Node           string          `json:"node,omitempty"`
	Design         DesignSpec      `json:"design"`
	Alpha          float64         `json:"alpha,omitempty"`
	Objective      string          `json:"objective,omitempty"`
	F              AxisSpec        `json:"f"`
	AreaScale      *AxisSpec       `json:"areaScale,omitempty"`
	PowerScale     *AxisSpec       `json:"powerScale,omitempty"`
	BandwidthScale *AxisSpec       `json:"bandwidthScale,omitempty"`
	Model          string          `json:"model,omitempty"`
	ModelParams    json.RawMessage `json:"modelParams,omitempty"`
	Workers        int             `json:"workers,omitempty"`
}

// SweepPointJSON is one evaluated grid cell. Infeasible cells are
// reported with Valid=false rather than failing the sweep.
type SweepPointJSON struct {
	F              float64 `json:"f"`
	AreaScale      float64 `json:"areaScale"`
	PowerScale     float64 `json:"powerScale"`
	BandwidthScale float64 `json:"bandwidthScale"`
	Valid          bool    `json:"valid"`
	R              int     `json:"r,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	Limit          string  `json:"limit,omitempty"`
	EnergyNorm     float64 `json:"energyNorm,omitempty"`
}

// SweepResponse carries the full surface in row-major order (axes in
// the listed order, last axis fastest) plus the best feasible cell.
// Model names the backend only for non-default requests.
type SweepResponse struct {
	Workload string           `json:"workload"`
	Node     string           `json:"node"`
	Design   string           `json:"design"`
	Axes     []AxisJSON       `json:"axes"`
	Points   []SweepPointJSON `json:"points"`
	Feasible int              `json:"feasible"`
	Best     *SweepPointJSON  `json:"best,omitempty"`
	Model    string           `json:"model,omitempty"`
}

// AxisJSON names one grid dimension and its values.
type AxisJSON struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// coordCache memoizes the formatted text of one point field's values in
// a most-recently-inserted-first ring. A sweep's coordinates are drawn
// from its (small) axes, and the model outputs repeat row-locally —
// EnergyNorm depends only on (f, r), never on bandwidth, and Speedup
// repeats across cells whose binding budget isn't the swept one — so
// each point tends to repeat values the encoder formatted moments ago.
// The backward scan from the insertion point finds those in a few
// probes, trading them against the much costlier shortest-float
// formatting. Zero is excluded (so a -0 can never alias the "0" text of
// a +0), as is any rendering wider than a slot (impossible for float64,
// but the guard keeps correctness local). The ring overwrites its
// oldest entry when full, which keeps high-cardinality fields cheap:
// they cost a bounded scan, never an unbounded table.
type coordCache struct {
	n      int // entries in use
	next   int // ring insertion position
	vals   [maxCoordCache]float64
	length [maxCoordCache]uint8
	text   [maxCoordCache][28]byte
}

const maxCoordCache = 64

// appendVal appends the json encoding of v, from cache when possible.
func (c *coordCache) appendVal(b []byte, v float64) ([]byte, error) {
	if v != 0 {
		// Repeats are row-local, so they sit near the insertion point;
		// probing half the ring keeps a high-cardinality field's misses
		// (which would scan everything for nothing) at half price. A
		// value evicted or beyond the probe horizon is simply formatted
		// and re-inserted.
		probe := c.n
		if probe > maxCoordCache/2 {
			probe = maxCoordCache / 2
		}
		for k := 1; k <= probe; k++ {
			i := c.next - k
			if i < 0 {
				i += maxCoordCache
			}
			if c.vals[i] == v {
				return append(b, c.text[i][:c.length[i]]...), nil
			}
		}
	}
	start := len(b)
	b, err := engine.AppendFloat(b, v)
	if err != nil {
		return nil, err
	}
	if t := b[start:]; v != 0 && len(t) <= len(c.text[0]) {
		i := c.next
		c.vals[i] = v
		c.length[i] = uint8(len(t))
		copy(c.text[i][:], t)
		c.next = (i + 1) % maxCoordCache
		if c.n < maxCoordCache {
			c.n++
		}
	}
	return b, nil
}

// sweepEnc carries one value cache per float point field for the
// duration of a response encoding: the four grid coordinates, Speedup,
// and EnergyNorm.
type sweepEnc struct {
	coords [6]coordCache
}

// appendPoint appends one cell exactly as encoding/json encodes
// SweepPointJSON, including the omitempty suppression of the zero R,
// Speedup, Limit, and EnergyNorm of infeasible cells.
func (e *sweepEnc) appendPoint(b []byte, p *SweepPointJSON) ([]byte, error) {
	var err error
	b = append(b, `{"f":`...)
	if b, err = e.coords[0].appendVal(b, p.F); err != nil {
		return nil, err
	}
	b = append(b, `,"areaScale":`...)
	if b, err = e.coords[1].appendVal(b, p.AreaScale); err != nil {
		return nil, err
	}
	b = append(b, `,"powerScale":`...)
	if b, err = e.coords[2].appendVal(b, p.PowerScale); err != nil {
		return nil, err
	}
	b = append(b, `,"bandwidthScale":`...)
	if b, err = e.coords[3].appendVal(b, p.BandwidthScale); err != nil {
		return nil, err
	}
	b = append(b, `,"valid":`...)
	b = strconv.AppendBool(b, p.Valid)
	if p.R != 0 {
		b = append(b, `,"r":`...)
		b = strconv.AppendInt(b, int64(p.R), 10)
	}
	if p.Speedup != 0 {
		b = append(b, `,"speedup":`...)
		if b, err = e.coords[4].appendVal(b, p.Speedup); err != nil {
			return nil, err
		}
	}
	if p.Limit != "" {
		b = append(b, `,"limit":`...)
		b = engine.AppendString(b, p.Limit)
	}
	if p.EnergyNorm != 0 {
		b = append(b, `,"energyNorm":`...)
		if b, err = e.coords[5].appendVal(b, p.EnergyNorm); err != nil {
			return nil, err
		}
	}
	return append(b, '}'), nil
}

// AppendJSON implements engine.Appender: a sweep response is one point
// per grid cell, and encoding a few thousand cells through reflection
// costs more than evaluating them, so the surface writes itself. The
// bytes are exactly json.Marshal's (TestSweepResponseAppendJSON fuzzes
// the equivalence); keep both in sync when fields change.
func (r SweepResponse) AppendJSON(b []byte) ([]byte, error) {
	var err error
	// ~176 bytes covers a fully populated point, so a normal response
	// encodes without growing the buffer.
	if need := 512 + 176*len(r.Points); cap(b)-len(b) < need {
		nb := make([]byte, len(b), len(b)+need)
		copy(nb, b)
		b = nb
	}
	var enc sweepEnc
	b = append(b, `{"workload":`...)
	b = engine.AppendString(b, r.Workload)
	b = append(b, `,"node":`...)
	b = engine.AppendString(b, r.Node)
	b = append(b, `,"design":`...)
	b = engine.AppendString(b, r.Design)
	b = append(b, `,"axes":`...)
	if r.Axes == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range r.Axes {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"name":`...)
			b = engine.AppendString(b, r.Axes[i].Name)
			b = append(b, `,"values":`...)
			if b, err = engine.AppendFloats(b, r.Axes[i].Values); err != nil {
				return nil, err
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"points":`...)
	if r.Points == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range r.Points {
			if i > 0 {
				b = append(b, ',')
			}
			if b, err = enc.appendPoint(b, &r.Points[i]); err != nil {
				return nil, err
			}
		}
		b = append(b, ']')
	}
	b = append(b, `,"feasible":`...)
	b = strconv.AppendInt(b, int64(r.Feasible), 10)
	if r.Best != nil {
		b = append(b, `,"best":`...)
		if b, err = enc.appendPoint(b, r.Best); err != nil {
			return nil, err
		}
	}
	if r.Model != "" {
		b = append(b, `,"model":`...)
		b = engine.AppendString(b, r.Model)
	}
	return append(b, '}'), nil
}

var opSweep = engine.New("sweep", buildSweep)

// sweepPlan is a validated, canonicalized sweep ready to evaluate: the
// shared prepare step behind both the buffered /v1/sweep response and
// the ?stream=ndjson row emitter, so the two paths can never disagree
// about validation, axis construction, or per-cell evaluation.
type sweepPlan struct {
	req     *SweepRequest
	grid    *sweep.Grid
	axes    []sweep.Axis
	base    bounds.Budgets
	design  core.Design
	workers int
	energy  bool
	opt     func(core.Design, float64, bounds.Budgets) (core.Point, error)
}

// planSweep validates and canonicalizes req (in place, exactly like
// every other op's build step) and assembles the evaluation plan.
// maxCells bounds the grid: the buffered path pays O(cells) response
// memory, the streaming path only O(chunk), so they pass different
// limits.
func planSweep(req *SweepRequest, env engine.Env, maxCells int) (*sweepPlan, error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if req.Node == "" {
		req.Node = "40nm"
	}
	obj, err := engine.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	req.Objective = obj
	d, err := req.Design.resolve(w)
	if err != nil {
		return nil, err
	}
	ev, err := evaluatorFor(req.Alpha)
	if err != nil {
		return nil, err
	}
	mdl, err := resolveModel(&req.Model, &req.ModelParams, req.Alpha, env)
	if err != nil {
		return nil, err
	}
	base, err := nodeBudgets(w, req.Node)
	if err != nil {
		return nil, err
	}
	fVals, err := req.F.values("f")
	if err != nil {
		return nil, err
	}
	for _, f := range fVals {
		if err := engine.CheckF(f); err != nil {
			return nil, err
		}
	}
	axes := []sweep.Axis{{Name: "f", Values: fVals}}
	for _, sc := range []struct {
		name string
		spec AxisSpec
	}{
		{"area", unitAxis(req.AreaScale)},
		{"power", unitAxis(req.PowerScale)},
		{"bandwidth", unitAxis(req.BandwidthScale)},
	} {
		vals, err := sc.spec.values(sc.name + "Scale")
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			if v <= 0 || math.IsNaN(v) {
				return nil, badRequest("axis %sScale: scales must be positive", sc.name)
			}
		}
		axes = append(axes, sweep.Axis{Name: sc.name, Values: vals})
	}
	grid, err := sweep.NewGrid(axes...)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if grid.Size() > maxCells {
		return nil, badRequest("sweep has %d cells, limit %d: split the request", grid.Size(), maxCells)
	}
	workers := workersOr(&req.Workers, env)

	var o model.Optimizer = ev
	if mdl != nil {
		o = mdl
	}
	opt := o.Optimize
	if req.Objective == "energy" {
		opt = o.OptimizeEnergy
	}
	return &sweepPlan{
		req:     req,
		grid:    grid,
		axes:    axes,
		base:    base,
		design:  d,
		workers: workers,
		energy:  req.Objective == "energy",
		opt:     opt,
	}, nil
}

// evalCell evaluates one grid cell from its axis values by position
// (0 f, 1 area, 2 power, 3 bandwidth — the declared axis order).
// Infeasible cells come back Valid=false; only genuine model errors
// propagate.
func (p *sweepPlan) evalCell(v []float64) (SweepPointJSON, error) {
	f, as, ps, bs := v[0], v[1], v[2], v[3]
	cell := SweepPointJSON{F: f, AreaScale: as, PowerScale: ps, BandwidthScale: bs}
	b := bounds.Budgets{Area: p.base.Area * as, Power: p.base.Power * ps, Bandwidth: p.base.Bandwidth * bs}
	pt, err := p.opt(p.design, f, b)
	if err == nil {
		cell.Valid = true
		cell.R = pt.R
		cell.Speedup = pt.Speedup
		cell.Limit = pt.Limit.String()
		cell.EnergyNorm = pt.EnergyNorm
	} else if !errors.Is(err, core.ErrInfeasible) {
		return cell, err
	}
	return cell, nil
}

// axesJSON materializes the response axes.
func (p *sweepPlan) axesJSON() []AxisJSON {
	out := make([]AxisJSON, 0, len(p.axes))
	for _, ax := range p.axes {
		out = append(out, AxisJSON{Name: ax.Name, Values: ax.Values})
	}
	return out
}

// bestReducer folds cells into (feasible count, best cell). Cells must
// be observed in flat row-major order with strict comparisons, so ties
// break to the lowest index at every worker count — the contract both
// the buffered response and the streamed trailer inherit.
type bestReducer struct {
	energy   bool
	feasible int
	has      bool
	best     SweepPointJSON
}

// observe folds one cell, in index order.
func (r *bestReducer) observe(p *SweepPointJSON) {
	if !p.Valid {
		return
	}
	r.feasible++
	better := !r.has
	if !better {
		if r.energy {
			better = p.EnergyNorm < r.best.EnergyNorm
		} else {
			better = p.Speedup > r.best.Speedup
		}
	}
	if better {
		r.has = true
		r.best = *p
	}
}

// bestPtr returns the best cell, nil when nothing was feasible.
func (r *bestReducer) bestPtr() *SweepPointJSON {
	if !r.has {
		return nil
	}
	return &r.best
}

func buildSweep(req *SweepRequest, env engine.Env) (func(context.Context) (SweepResponse, error), error) {
	p, err := planSweep(req, env, maxSweepCells)
	if err != nil {
		return nil, err
	}
	// The evaluation loop runs on Cells: each worker gets the flat
	// row-major index directly plus the axis values by position, so the
	// hot path writes points[flat] with no per-cell Point map or
	// value->index lookups.
	return func(ctx context.Context) (SweepResponse, error) {
		points := make([]SweepPointJSON, p.grid.Size())
		err := p.grid.Cells(ctx, p.workers, func(flat int, v []float64) error {
			cell, err := p.evalCell(v)
			if err != nil {
				return err
			}
			points[flat] = cell
			return nil
		})
		if err != nil {
			return SweepResponse{}, evalFailure(err, badRequest)
		}
		resp := SweepResponse{
			Workload: p.req.Workload,
			Node:     p.req.Node,
			Design:   p.design.Label,
			Model:    p.req.Model,
			Axes:     p.axesJSON(),
			Points:   points,
		}
		// The best cell is reduced serially in index order (strict >), so
		// ties break to the lowest index at every worker count.
		red := bestReducer{energy: p.energy}
		for i := range points {
			red.observe(&points[i])
		}
		resp.Feasible = red.feasible
		resp.Best = red.bestPtr()
		return resp, nil
	}, nil
}
