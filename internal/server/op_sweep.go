package server

import (
	"context"
	"errors"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/project"
	"github.com/calcm/heterosim/internal/sweep"
)

// POST /v1/sweep — an (f x budget-scale) grid of design points.

// maxSweepCells bounds one sweep request: a 100k-cell grid evaluates in
// well under a second, anything larger should be split by the client.
const maxSweepCells = 100_000

// AxisSpec is one sweep dimension: either explicit values or an
// inclusive [lo, hi] range sampled at steps points.
type AxisSpec struct {
	Lo     float64   `json:"lo,omitempty"`
	Hi     float64   `json:"hi,omitempty"`
	Steps  int       `json:"steps,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// values materializes the axis.
func (a AxisSpec) values(name string) ([]float64, error) {
	if len(a.Values) > 0 {
		if a.Lo != 0 || a.Hi != 0 || a.Steps != 0 {
			return nil, badRequest("axis %s: give either values or lo/hi/steps, not both", name)
		}
		return a.Values, nil
	}
	vals, err := sweep.Range(a.Lo, a.Hi, a.Steps)
	if err != nil {
		return nil, badRequest("axis %s: %v", name, err)
	}
	return vals, nil
}

// unitAxis is the default for omitted budget-scale axes.
func unitAxis(a *AxisSpec) AxisSpec {
	if a == nil {
		return AxisSpec{Values: []float64{1}}
	}
	return *a
}

// SweepRequest evaluates one design across an f x budget-scale grid at a
// roadmap node. Scale axes multiply the node's converted budgets, so
// {f: {values: [0.9, 0.99]}, bandwidthScale: {lo: 0.5, hi: 2, steps: 4}}
// explores the bandwidth wall interactively.
type SweepRequest struct {
	Workload       string     `json:"workload"`
	Node           string     `json:"node,omitempty"`
	Design         DesignSpec `json:"design"`
	Alpha          float64    `json:"alpha,omitempty"`
	Objective      string     `json:"objective,omitempty"`
	F              AxisSpec   `json:"f"`
	AreaScale      *AxisSpec  `json:"areaScale,omitempty"`
	PowerScale     *AxisSpec  `json:"powerScale,omitempty"`
	BandwidthScale *AxisSpec  `json:"bandwidthScale,omitempty"`
	Workers        int        `json:"workers,omitempty"`
}

// SweepPointJSON is one evaluated grid cell. Infeasible cells are
// reported with Valid=false rather than failing the sweep.
type SweepPointJSON struct {
	F              float64 `json:"f"`
	AreaScale      float64 `json:"areaScale"`
	PowerScale     float64 `json:"powerScale"`
	BandwidthScale float64 `json:"bandwidthScale"`
	Valid          bool    `json:"valid"`
	R              int     `json:"r,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	Limit          string  `json:"limit,omitempty"`
	EnergyNorm     float64 `json:"energyNorm,omitempty"`
}

// SweepResponse carries the full surface in row-major order (axes in
// the listed order, last axis fastest) plus the best feasible cell.
type SweepResponse struct {
	Workload string           `json:"workload"`
	Node     string           `json:"node"`
	Design   string           `json:"design"`
	Axes     []AxisJSON       `json:"axes"`
	Points   []SweepPointJSON `json:"points"`
	Feasible int              `json:"feasible"`
	Best     *SweepPointJSON  `json:"best,omitempty"`
}

// AxisJSON names one grid dimension and its values.
type AxisJSON struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

var opSweep = engine.New("sweep", buildSweep)

func buildSweep(req *SweepRequest, env engine.Env) (func(context.Context) (SweepResponse, error), error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if req.Node == "" {
		req.Node = "40nm"
	}
	obj, err := engine.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	req.Objective = obj
	d, err := req.Design.resolve(w)
	if err != nil {
		return nil, err
	}
	ev, err := evaluatorFor(req.Alpha)
	if err != nil {
		return nil, err
	}
	cfg := project.DefaultConfig(w)
	node, err := cfg.Roadmap.ByName(req.Node)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	base, err := cfg.BudgetsAt(node)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	fVals, err := req.F.values("f")
	if err != nil {
		return nil, err
	}
	for _, f := range fVals {
		if err := engine.CheckF(f); err != nil {
			return nil, err
		}
	}
	axes := []sweep.Axis{{Name: "f", Values: fVals}}
	for _, sc := range []struct {
		name string
		spec AxisSpec
	}{
		{"area", unitAxis(req.AreaScale)},
		{"power", unitAxis(req.PowerScale)},
		{"bandwidth", unitAxis(req.BandwidthScale)},
	} {
		vals, err := sc.spec.values(sc.name + "Scale")
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			if v <= 0 || math.IsNaN(v) {
				return nil, badRequest("axis %sScale: scales must be positive", sc.name)
			}
		}
		axes = append(axes, sweep.Axis{Name: sc.name, Values: vals})
	}
	grid, err := sweep.NewGrid(axes...)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if grid.Size() > maxSweepCells {
		return nil, badRequest("sweep has %d cells, limit %d: split the request", grid.Size(), maxSweepCells)
	}
	workers := workersOr(&req.Workers, env)

	// Per-axis value -> index tables recover each cell's flat row-major
	// index from the Point EachParallel hands us (the values are exact
	// copies of the axis slices, so float equality is reliable).
	index := make([]map[float64]int, len(axes))
	for i, ax := range axes {
		index[i] = make(map[float64]int, len(ax.Values))
		for j, v := range ax.Values {
			index[i][v] = j
		}
	}
	return func(ctx context.Context) (SweepResponse, error) {
		points := make([]SweepPointJSON, grid.Size())
		err := grid.EachParallel(ctx, workers, func(p sweep.Point) error {
			flat := 0
			for i, ax := range axes {
				flat = flat*len(ax.Values) + index[i][p[ax.Name]]
			}
			f, as, ps, bs := p["f"], p["area"], p["power"], p["bandwidth"]
			cell := SweepPointJSON{F: f, AreaScale: as, PowerScale: ps, BandwidthScale: bs}
			b := bounds.Budgets{Area: base.Area * as, Power: base.Power * ps, Bandwidth: base.Bandwidth * bs}
			opt := ev.Optimize
			if req.Objective == "energy" {
				opt = ev.OptimizeEnergy
			}
			pt, err := opt(d, f, b)
			if err == nil {
				cell.Valid = true
				cell.R = pt.R
				cell.Speedup = pt.Speedup
				cell.Limit = pt.Limit.String()
				cell.EnergyNorm = pt.EnergyNorm
			} else if !errors.Is(err, core.ErrInfeasible) {
				return err
			}
			points[flat] = cell
			return nil
		})
		if err != nil {
			return SweepResponse{}, evalFailure(err, badRequest)
		}
		resp := SweepResponse{
			Workload: req.Workload,
			Node:     req.Node,
			Design:   d.Label,
		}
		for _, ax := range axes {
			resp.Axes = append(resp.Axes, AxisJSON{Name: ax.Name, Values: ax.Values})
		}
		resp.Points = points
		// The best cell is reduced serially in index order (strict >), so
		// ties break to the lowest index at every worker count.
		for i := range points {
			if !points[i].Valid {
				continue
			}
			resp.Feasible++
			better := resp.Best == nil
			if !better {
				if req.Objective == "energy" {
					better = points[i].EnergyNorm < resp.Best.EnergyNorm
				} else {
					better = points[i].Speedup > resp.Best.Speedup
				}
			}
			if better {
				resp.Best = &points[i]
			}
		}
		return resp, nil
	}, nil
}
