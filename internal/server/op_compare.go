package server

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/calcm/heterosim/internal/engine"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/scenario"
)

// POST /v1/compare — k scenario x model pairs evaluated server-side in
// one exchange: each pair runs its Section 6.2 scenario against the
// baseline on its model backend (scenario.CompareModelCtx), and the
// response carries the derived quantities an interactive frontend
// would otherwise compute from k /v1/scenario calls — per-node speedup
// deltas and the crossover table ("at which node does the FPGA
// overtake the asymmetric CMP under model X?"). Pairs fan out through
// internal/par; the response assembles in request order, so bytes are
// identical at every worker count. Each pair's Rows are the same
// node-major frames /v1/frontier/stream emits for that (scenario,
// model), byte-for-byte (TestFrontierMatchesCompareRows).

// maxComparePairs bounds one compare: each pair is two full roadmap
// projections, so the cap is about evaluation cost, not memory.
const maxComparePairs = 16

// ComparePair selects one (scenario, model) combination. Scenario 0 is
// the baseline configuration — its deltas are zero by construction,
// but its crossovers still answer the baseline question.
type ComparePair struct {
	Scenario    int             `json:"scenario"` // 0-6
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
}

// CompareRequest runs k scenario x model pairs for one workload at one
// parallel fraction. The top-level model fields are a convenience
// default for uniform-model compares: they are pushed down into every
// pair that names no backend of its own, then cleared, so the pushed
// and fully-explicit spellings share one cache key.
type CompareRequest struct {
	Workload    string          `json:"workload"`
	F           float64         `json:"f"`
	Pairs       []ComparePair   `json:"pairs"`
	Model       string          `json:"model,omitempty"`
	ModelParams json.RawMessage `json:"modelParams,omitempty"`
	Workers     int             `json:"workers,omitempty"`
}

// CompareDeltaJSON is one design's speedup delta at one node:
// alternative minus baseline, under the pair's scenario. Valid
// requires feasibility in both configurations.
type CompareDeltaJSON struct {
	Label string  `json:"label"`
	Valid bool    `json:"valid"`
	Base  float64 `json:"base,omitempty"`
	Alt   float64 `json:"alt,omitempty"`
	Delta float64 `json:"delta"`
}

// CompareNodeJSON is one roadmap node's delta row.
type CompareNodeJSON struct {
	Node   string             `json:"node"`
	Deltas []CompareDeltaJSON `json:"deltas"`
}

// ComparePairJSON is one pair's result: the alternative set's
// node-major frontier rows (byte-identical to /v1/frontier/stream for
// the same scenario and model), the per-node deltas against the
// baseline, and the crossover table over the alternative set.
type ComparePairJSON struct {
	Scenario   int               `json:"scenario"`
	Name       string            `json:"name"`
	Model      string            `json:"model,omitempty"`
	Rows       []FrontierRowJSON `json:"rows"`
	Deltas     []CompareNodeJSON `json:"deltas"`
	Crossovers []CrossoverJSON   `json:"crossovers"`
}

// CompareResponse is the /v1/compare document.
type CompareResponse struct {
	Workload string            `json:"workload"`
	F        float64           `json:"f"`
	Nodes    []string          `json:"nodes"`
	Pairs    []ComparePairJSON `json:"pairs"`
}

var opCompare = engine.New("compare", buildCompare)

func buildCompare(req *CompareRequest, env engine.Env) (func(context.Context) (CompareResponse, error), error) {
	w, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	req.Workload = string(w)
	if err := engine.CheckF(req.F); err != nil {
		return nil, err
	}
	if len(req.Pairs) == 0 {
		return nil, badRequest("compare needs at least one (scenario, model) pair")
	}
	if len(req.Pairs) > maxComparePairs {
		return nil, badRequest("compare has %d pairs, limit %d: split the request", len(req.Pairs), maxComparePairs)
	}
	type prepared struct {
		sc scenario.Scenario
		mk model.Factory
	}
	for i := range req.Pairs {
		if p := &req.Pairs[i]; p.Model == "" && p.ModelParams == nil {
			p.Model, p.ModelParams = req.Model, req.ModelParams
		}
	}
	req.Model, req.ModelParams = "", nil
	pairs := make([]prepared, len(req.Pairs))
	// Each pair resolves its own backend; metas stay per-pair so a
	// mixed-model compare does not claim one backend in the response
	// header. When every pair agrees, that one backend is reported.
	metas := make([]engine.Meta, len(req.Pairs))
	for i := range req.Pairs {
		p := &req.Pairs[i]
		if p.Scenario < 0 || p.Scenario > 6 {
			return nil, badRequest("pair %d: scenario must be 0-6, got %d", i, p.Scenario)
		}
		sc, err := scenario.Get(scenario.ID(p.Scenario))
		if err != nil {
			return nil, badRequest("pair %d: %v", i, err)
		}
		penv := engine.Env{Workers: env.Workers, Meta: &metas[i]}
		mk, err := resolveModelFactory(&p.Model, &p.ModelParams, penv)
		if err != nil {
			return nil, badRequest("pair %d: %v", i, err)
		}
		pairs[i] = prepared{sc: sc, mk: mk}
	}
	uniform := true
	for i := 1; i < len(metas); i++ {
		if metas[i].Model != metas[0].Model {
			uniform = false
			break
		}
	}
	if uniform {
		env.ReportModel(metas[0].Model)
	}
	// Duplicate pairs after canonicalization are a request bug: the
	// second copy could only burn two projections to repeat the first.
	seen := make(map[string]int, len(req.Pairs))
	for i, p := range req.Pairs {
		key := fmt.Sprintf("%d\x00%s\x00%s", p.Scenario, p.Model, p.ModelParams)
		if j, dup := seen[key]; dup {
			return nil, badRequest("pair %d duplicates pair %d (scenario %d, model %s)", i, j, p.Scenario, metas[i].Model)
		}
		seen[key] = i
	}
	workers := workersOr(&req.Workers, env)
	return func(ctx context.Context) (CompareResponse, error) {
		out, err := par.Map(ctx, len(pairs), min(workers, len(pairs)), func(ctx context.Context, i int) (ComparePairJSON, error) {
			base, alt, err := scenario.CompareModelCtx(ctx, pairs[i].sc, w, req.F, workers, pairs[i].mk)
			if err != nil {
				return ComparePairJSON{}, err
			}
			pj := ComparePairJSON{
				Scenario:   req.Pairs[i].Scenario,
				Name:       pairs[i].sc.Name,
				Model:      req.Pairs[i].Model,
				Rows:       frontierRows(alt),
				Crossovers: crossoverJSON(scenario.Crossovers(alt)),
			}
			for n, row := range scenario.Deltas(base, alt) {
				nj := CompareNodeJSON{Node: pj.Rows[n].Node}
				for _, d := range row {
					nj.Deltas = append(nj.Deltas, CompareDeltaJSON{
						Label: d.Label, Valid: d.Valid, Base: d.Base, Alt: d.Alt, Delta: d.Delta,
					})
				}
				pj.Deltas = append(pj.Deltas, nj)
			}
			return pj, nil
		})
		if err != nil {
			return CompareResponse{}, evalFailure(err, unprocessable)
		}
		resp := CompareResponse{Workload: req.Workload, F: req.F, Pairs: out}
		for _, n := range itrs.Default().Nodes() {
			resp.Nodes = append(resp.Nodes, n.Name)
		}
		return resp, nil
	}, nil
}
