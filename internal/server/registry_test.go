package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/engine"
)

// sampleBodies holds one known-good request per registered op. The
// invariant tests below range over the registry, so registering a new
// op without a sample here fails TestRegistrySampleCompleteness — the
// price of admission to the serving surface is one line in this map.
var sampleBodies = map[string]string{
	"optimize":    `{"workload":"MMM","f":0.9,"design":{"kind":"sym"}}`,
	"sweep":       `{"workload":"MMM","design":{"kind":"sym"},"f":{"values":[0.9]}}`,
	"project":     `{"workload":"MMM","f":0.9}`,
	"scenario":    `{"scenario":1,"workload":"MMM","f":0.9}`,
	"sensitivity": `{"workload":"MMM","f":0.9,"design":{"kind":"sym"},"samples":50}`,
	"ablation":    `{"workload":"MMM","f":0.9,"node":"40nm"}`,
	"compare":     `{"workload":"MMM","f":0.9,"pairs":[{"scenario":1},{"scenario":2}]}`,
}

func TestRegistrySampleCompleteness(t *testing.T) {
	for _, op := range registry.Ops() {
		body, ok := sampleBodies[op.Name()]
		if !ok {
			t.Errorf("op %q has no sample body in sampleBodies", op.Name())
			continue
		}
		if _, _, err := op.Prepare([]byte(body), engine.Env{}); err != nil {
			t.Errorf("op %q: sample body rejected: %v", op.Name(), err)
		}
	}
	registered := make(map[string]bool)
	for _, name := range registry.Names() {
		registered[name] = true
	}
	for name := range sampleBodies {
		if !registered[name] {
			t.Errorf("sampleBodies entry %q matches no registered op", name)
		}
	}
}

// TestEndpointsCoverRegistry asserts Endpoints() lists every registered
// op (as POST) plus the four GET routes — derived, so this can only
// fail if Endpoints() stops deriving.
func TestEndpointsCoverRegistry(t *testing.T) {
	eps := Endpoints()
	listed := make(map[string]bool, len(eps))
	for _, e := range eps {
		listed[e] = true
	}
	for _, op := range registry.Ops() {
		if !listed["POST "+op.Path()] {
			t.Errorf("Endpoints() is missing POST %s", op.Path())
		}
	}
	for _, e := range []string{"POST /v1/frontier/stream", "POST /v1/batch", "GET /v1/version", "GET /v1/models", "GET /healthz", "GET /metrics"} {
		if !listed[e] {
			t.Errorf("Endpoints() is missing %s", e)
		}
	}
	if want := len(registry.Ops()) + 6; len(eps) != want {
		t.Errorf("Endpoints() has %d entries, want %d", len(eps), want)
	}
}

// TestMetricsCoverRegistry drives one successful request through every
// registered op and asserts both /metrics renderings emit per-endpoint
// families for it: the JSON requests counter, the Prometheus
// requests_total sample, and the request-duration histogram series.
func TestMetricsCoverRegistry(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, op := range registry.Ops() {
		rec := do(t, s, http.MethodPost, op.Path(), sampleBodies[op.Name()])
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d (body %s)", op.Path(), rec.Code, rec.Body)
		}
	}

	var m Metrics
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/metrics", "").Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	prom := do(t, s, http.MethodGet, "/metrics?format=prometheus", "").Body.String()
	durSeries := make(map[string]bool)
	for _, fam := range s.Telemetry().Snapshot() {
		if fam.Name == famRequestDuration {
			for _, series := range fam.Series {
				durSeries[series.Label] = true
			}
		}
	}
	for _, op := range registry.Ops() {
		name := op.Name()
		if m.Requests[name] != 1 {
			t.Errorf("JSON metrics: requests[%q] = %d, want 1", name, m.Requests[name])
		}
		if want := `heterosimd_requests_total{endpoint="` + name + `"} 1`; !strings.Contains(prom, want) {
			t.Errorf("Prometheus metrics: missing %q", want)
		}
		if !durSeries[name] {
			t.Errorf("request-duration histogram has no series for %q", name)
		}
	}
}

// TestCacheKeyIgnoresWorkers asserts, generically over the registry,
// that a request's worker count never reaches its cache key: the same
// body with "workers" injected must produce an identical key, so two
// clients asking for different parallelism share one cached response.
// Ops whose request type has no workers field reject the injected
// body's unknown field under strict decode, which equally keeps workers
// out of the key.
func TestCacheKeyIgnoresWorkers(t *testing.T) {
	for _, op := range registry.Ops() {
		base, _, err := op.Prepare([]byte(sampleBodies[op.Name()]), engine.Env{})
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		var decoded map[string]json.RawMessage
		if err := json.Unmarshal([]byte(sampleBodies[op.Name()]), &decoded); err != nil {
			t.Fatal(err)
		}
		decoded["workers"] = json.RawMessage("7")
		withWorkers, err := json.Marshal(decoded)
		if err != nil {
			t.Fatal(err)
		}
		key, _, err := op.Prepare(withWorkers, engine.Env{})
		if err != nil {
			if strings.Contains(err.Error(), "unknown field") {
				continue // no workers field at all: trivially key-invariant
			}
			t.Fatalf("%s: Prepare with workers failed: %v", op.Name(), err)
		}
		if key != base {
			t.Errorf("%s: workers leaked into the cache key:\n--- without ---\n%q\n--- with ---\n%q",
				op.Name(), base, key)
		}
	}
}

// TestRegistryDuplicateNamePanics pins the registry's construction
// invariant: two ops with one name cannot coexist.
func TestRegistryDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegistry accepted a duplicate op name")
		}
	}()
	engine.NewRegistry(opOptimize, opOptimize)
}

// TestWorkersDoNotChangeResponses runs every op's sample at two worker
// counts and compares response bytes — the engine determinism guarantee
// holds across the whole registry, new ops included.
func TestWorkersDoNotChangeResponses(t *testing.T) {
	for _, op := range registry.Ops() {
		var got []string
		for _, env := range []engine.Env{{Workers: 1}, {Workers: 4}} {
			_, eval, err := op.Prepare([]byte(sampleBodies[op.Name()]), env)
			if err != nil {
				t.Fatalf("%s: %v", op.Name(), err)
			}
			resp, err := eval(context.Background())
			if err != nil {
				t.Fatalf("%s: eval: %v", op.Name(), err)
			}
			got = append(got, string(resp))
		}
		if got[0] != got[1] {
			t.Errorf("%s: response depends on worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s",
				op.Name(), got[0], got[1])
		}
	}
}
