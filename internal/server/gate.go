package server

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/calcm/heterosim/internal/telemetry"
)

// gate is the admission controller: a semaphore bounding concurrent
// evaluations plus a bounded wait queue. Under overload it degrades
// deterministically instead of collapsing — a request past the queue
// bound is rejected immediately with 429 (the queue is full, retrying
// now is pointless), and a queued request that cannot get a slot within
// the timeout gets 503 (the service is saturated, retry later). Cache
// hits and coalesced waiters never pass through the gate; only work that
// would actually evaluate the model is admitted.
type gate struct {
	sem      chan struct{}
	maxQueue int64
	timeout  time.Duration

	queued           atomic.Int64 // current gauge
	accepted         atomic.Int64
	rejectedFull     atomic.Int64 // queue overflow -> 429
	rejectedTimeout  atomic.Int64 // queue wait expired -> 503
	rejectedDeadline atomic.Int64 // request deadline expired in queue -> 504
}

// newGate builds a gate admitting maxInflight concurrent evaluations
// with at most maxQueue waiters, each waiting up to timeout.
func newGate(maxInflight, maxQueue int, timeout time.Duration) *gate {
	return &gate{
		sem:      make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
		timeout:  timeout,
	}
}

// acquire admits the caller or rejects with an HTTP status. On admission
// it returns a release func and a zero status. A request deadline
// expiring in the queue surfaces as 504 — the caller waited its full
// budget, the gate never let it run; plain cancellation (client
// disconnect) surfaces as 503, a moot distinction because nobody is left
// to read the response.
func (g *gate) acquire(ctx context.Context) (release func(), status int) {
	// The "gate" stage records admission wait — near zero on the fast
	// path, the full queue delay under load, and the whole timeout on a
	// rejection — so a saturated gate is visible in the p99 before it
	// shows up as 429s.
	defer telemetry.StartSpan(ctx, "gate").End()
	select {
	case g.sem <- struct{}{}:
		g.accepted.Add(1)
		return func() { <-g.sem }, 0
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.rejectedFull.Add(1)
		return nil, http.StatusTooManyRequests
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		g.accepted.Add(1)
		return func() { <-g.sem }, 0
	case <-timer.C:
		g.rejectedTimeout.Add(1)
		return nil, http.StatusServiceUnavailable
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			g.rejectedDeadline.Add(1)
			return nil, http.StatusGatewayTimeout
		}
		g.rejectedTimeout.Add(1)
		return nil, http.StatusServiceUnavailable
	}
}

// gateStats is the admission section of /metrics.
type gateStats struct {
	MaxInflight      int   `json:"maxInflight"`
	MaxQueue         int64 `json:"maxQueue"`
	QueueTimeoutMS   int64 `json:"queueTimeoutMs"`
	Inflight         int   `json:"inflight"`
	Queued           int64 `json:"queued"`
	Accepted         int64 `json:"accepted"`
	RejectedFull     int64 `json:"rejectedFull"`
	RejectedTimeout  int64 `json:"rejectedTimeout"`
	RejectedDeadline int64 `json:"rejectedDeadline"`
}

// stats snapshots the gate counters.
func (g *gate) stats() gateStats {
	return gateStats{
		MaxInflight:      cap(g.sem),
		MaxQueue:         g.maxQueue,
		QueueTimeoutMS:   g.timeout.Milliseconds(),
		Inflight:         len(g.sem),
		Queued:           g.queued.Load(),
		Accepted:         g.accepted.Load(),
		RejectedFull:     g.rejectedFull.Load(),
		RejectedTimeout:  g.rejectedTimeout.Load(),
		RejectedDeadline: g.rejectedDeadline.Load(),
	}
}
