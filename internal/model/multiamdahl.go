package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/amdahl"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/pollack"
)

// Segment is one program execution segment in the Multi-Amdahl model of
// Zidenberg, Keslassy & Weiser ("MultiAmdahl: How Should I Divide My
// Heterogeneous Chip?"). Share is the segment's share of the parallel
// fraction f (shares sum to 1); Mu and Phi scale the performance and
// active-power density of the accelerator fabric the segment runs on,
// relative to the design's baseline parallel fabric (the design's
// U-core for HET chips, plain BCEs for the CMPs).
type Segment struct {
	Share float64 `json:"share"`
	Mu    float64 `json:"mu"`
	Phi   float64 `json:"phi"`
}

// maParams configures the multiamdahl backend. The default single
// segment {share:1, mu:1, phi:1} reduces the model to the paper's
// single-f form.
type maParams struct {
	Segments []Segment `json:"segments"`
}

func defaultSegments() []Segment { return []Segment{{Share: 1, Mu: 1, Phi: 1}} }

// normalize fills per-segment defaults and validates the partition.
func (p *maParams) normalize() error {
	if len(p.Segments) == 0 {
		p.Segments = defaultSegments()
		return nil
	}
	if len(p.Segments) > 64 {
		return fmt.Errorf("model: at most 64 segments, got %d", len(p.Segments))
	}
	sum := 0.0
	for i := range p.Segments {
		s := &p.Segments[i]
		if s.Mu == 0 {
			s.Mu = 1
		}
		if s.Phi == 0 {
			s.Phi = 1
		}
		if s.Share < 0 || math.IsNaN(s.Share) || math.IsInf(s.Share, 0) {
			return fmt.Errorf("model: segment %d share must be a finite non-negative number", i)
		}
		if s.Mu <= 0 || math.IsNaN(s.Mu) || math.IsInf(s.Mu, 0) {
			return fmt.Errorf("model: segment %d mu must be a positive finite number", i)
		}
		if s.Phi <= 0 || math.IsNaN(s.Phi) || math.IsInf(s.Phi, 0) {
			return fmt.Errorf("model: segment %d phi must be a positive finite number", i)
		}
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("model: segment shares must sum to 1, got %.12g", sum)
	}
	return nil
}

type multiAmdahlBackend struct{}

func (multiAmdahlBackend) Info() Info {
	return Info{
		Name: "multiamdahl",
		Description: "Multi-Amdahl (Zidenberg/Keslassy/Weiser): the parallel fraction splits " +
			"into segments, each on its own accelerator; parallel area is divided by the " +
			"closed-form Lagrange optimum a_i proportional to sqrt(t_i/mu_i).",
		Capabilities: []string{"optimize", "optimize-energy", "evaluate", "segments"},
		Params: []ParamSpec{{
			Name: "segments", Type: "array of {share, mu, phi}",
			Default: `[{"share":1,"mu":1,"phi":1}]`,
			Description: "Partition of the parallel fraction; shares sum to 1, mu/phi scale " +
				"each segment's accelerator perf/power density relative to the design's fabric.",
		}},
	}
}

func (multiAmdahlBackend) New(alpha float64, maxR int, params json.RawMessage) (Model, json.RawMessage, error) {
	var p maParams
	if err := decodeParams(params, &p); err != nil {
		return nil, nil, err
	}
	if err := p.normalize(); err != nil {
		return nil, nil, err
	}
	law, err := pollack.New(alpha)
	if err != nil {
		return nil, nil, err
	}
	canon, err := canonicalParams(p)
	if err != nil {
		return nil, nil, err
	}
	return multiAmdahlModel{law: law, maxR: maxR, segs: p.Segments}, canon, nil
}

// multiAmdahlModel evaluates a design with the parallel phase split
// across per-segment accelerators. The serial phase and the Table 1
// serial bounds are the paper's; the parallel area A_par is bounded by
// area, by parallel power Sum(phi_i·a_i) <= P, and by parallel
// bandwidth Sum(mu_i·a_i·bw) <= B, each evaluated at the Lagrange
// allocation shape a_i proportional to sqrt(t_i/mu_i).
type multiAmdahlModel struct {
	law  pollack.Law
	maxR int
	segs []Segment
}

func (m multiAmdahlModel) Name() string { return "multiamdahl" }

func (m multiAmdahlModel) Space() Space { return Space{MaxR: m.maxR, Kinds: allKinds()} }

func (m multiAmdahlModel) Evaluate(d core.Design, f float64, b bounds.Budgets, r int) (core.Point, error) {
	if err := d.Validate(); err != nil {
		return core.Point{}, err
	}
	if r < 1 {
		return core.Point{}, errors.New("model: r must be >= 1")
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return core.Point{}, amdahl.ErrFraction
	}
	eb := b
	if d.ExemptBandwidth {
		eb.Bandwidth = math.Inf(1)
	}
	rf := float64(r)
	if err := bounds.SerialFeasible(m.law, eb, rf); err != nil {
		return core.Point{}, err
	}
	pf := math.Sqrt(rf)
	pwr, err := m.law.Power(rf)
	if err != nil {
		return core.Point{}, err
	}

	// Baseline parallel-fabric densities per BCE of area — perf q, power
	// w, bandwidth demand bw — and the area available to the parallel
	// phase. The symmetric CMP runs parallel phases on the whole chip
	// (the serial core is one of the parallel cores); the offload and
	// heterogeneous chips spend r on a dark serial core first.
	var q, w, bw, areaCap float64
	switch d.Kind {
	case core.SymCMP:
		q, w, bw = pf/rf, pwr/rf, 1/pf
		areaCap = eb.Area
	case core.AsymCMP:
		q, w, bw = 1, 1, 1
		areaCap = eb.Area - rf
	case core.Het:
		q, w, bw = d.UCore.Mu, d.UCore.Phi, d.UCore.Mu
		areaCap = eb.Area - rf
	}

	// Lagrange allocation shape over the active segments: minimizing
	// Sum(t_i/(q·mu_i·a_i)) subject to Sum(a_i) = A_par gives
	// a_i proportional to sqrt(t_i/(q·mu_i)). With f == 0 no parallel
	// work exists; budget attribution then uses the unit fabric.
	type alloc struct {
		seg  Segment
		frac float64 // a_i / A_par
	}
	var (
		active []alloc
		muBar  float64 // Sum frac_i·mu_i
		phiBar float64 // Sum frac_i·phi_i
	)
	if f > 0 {
		total := 0.0
		for _, s := range m.segs {
			if s.Share == 0 {
				continue
			}
			wt := math.Sqrt(f * s.Share / (q * s.Mu))
			active = append(active, alloc{seg: s, frac: wt})
			total += wt
		}
		for i := range active {
			active[i].frac /= total
			muBar += active[i].frac * active[i].seg.Mu
			phiBar += active[i].frac * active[i].seg.Phi
		}
	} else {
		muBar, phiBar = 1, 1
	}

	// Parallel-area bound under each budget, attributed with the same
	// tie preferences as bounds.Attribute (power beats bandwidth beats
	// area on equality against area; bandwidth must strictly beat power).
	aPar, lim := areaCap, bounds.AreaLimited
	aPow := eb.Power / (w * phiBar)
	aBW := eb.Bandwidth / (bw * muBar)
	if aPow < aPar && aPow <= aBW {
		aPar, lim = aPow, bounds.PowerLimited
	} else if aBW < aPar && aBW < aPow {
		aPar, lim = aBW, bounds.BandwidthLimited
	}

	// Usable resources n mirrors the paper's accounting: the whole chip
	// for the symmetric CMP, serial core plus parallel fabric otherwise.
	var n float64
	if d.Kind == core.SymCMP {
		n = aPar
		if n < rf {
			n = rf
		}
		aPar = n
	} else {
		if f > 0 && aPar <= 0 {
			return core.Point{}, amdahl.ErrNoProgram
		}
		if aPar < 0 {
			aPar = 0
		}
		n = rf + aPar
	}

	// Speedup: serial time on the fast core plus each segment on its
	// allocated accelerator area. Energy mirrors core.energyNorm: each
	// segment contributes time · power at its own density ratio.
	speedup := pf
	energy := (1 - f) * pwr / pf
	if f > 0 {
		parTime := 0.0
		for _, a := range active {
			parTime += (f * a.seg.Share) / (q * a.seg.Mu * (a.frac * aPar))
			energy += (f * a.seg.Share) * (w * a.seg.Phi) / (q * a.seg.Mu)
		}
		speedup = 1 / ((1-f)/pf + parTime)
	}
	return core.Point{
		Design: d, F: f, R: r, N: n,
		Speedup: speedup, Limit: lim, EnergyNorm: energy,
	}, nil
}

func (m multiAmdahlModel) Optimize(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return optimizeSweep(m.maxR, false, func(r int) (core.Point, error) {
		return m.Evaluate(d, f, b, r)
	})
}

func (m multiAmdahlModel) OptimizeEnergy(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return optimizeSweep(m.maxR, true, func(r int) (core.Point, error) {
		return m.Evaluate(d, f, b, r)
	})
}
