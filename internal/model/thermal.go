package model

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/pollack"
)

// thermalParams configures the multiamdahl-thermal backend: the
// Multi-Amdahl segment model plus the temperature budget of Yavits,
// Morad & Ginosar's thermal extension. With junction-to-ambient
// resistance thetaJA (kelvin per BCE power unit), steady state gives
// T = T_ambient + thetaJA · P, so the temperature budget is the power
// cap P_th = (tMaxC - tAmbientC) / thetaJA, applied alongside the
// nominal power budget.
type thermalParams struct {
	TMaxC     float64   `json:"tMaxC"`
	TAmbientC float64   `json:"tAmbientC"`
	ThetaJA   float64   `json:"thetaJA"`
	Segments  []Segment `json:"segments"`
}

const (
	defaultTMaxC     = 100.0
	defaultTAmbientC = 45.0
	defaultThetaJA   = 0.05
)

func (p *thermalParams) normalize() error {
	if p.TMaxC == 0 {
		p.TMaxC = defaultTMaxC
	}
	if p.TAmbientC == 0 {
		p.TAmbientC = defaultTAmbientC
	}
	if p.ThetaJA == 0 {
		p.ThetaJA = defaultThetaJA
	}
	if math.IsNaN(p.TMaxC) || math.IsNaN(p.TAmbientC) || p.TMaxC <= p.TAmbientC {
		return fmt.Errorf("model: tMaxC (%v) must exceed tAmbientC (%v)", p.TMaxC, p.TAmbientC)
	}
	if p.ThetaJA <= 0 || math.IsNaN(p.ThetaJA) || math.IsInf(p.ThetaJA, 0) {
		return fmt.Errorf("model: thetaJA must be a positive finite number, got %v", p.ThetaJA)
	}
	ma := maParams{Segments: p.Segments}
	if err := ma.normalize(); err != nil {
		return err
	}
	p.Segments = ma.Segments
	return nil
}

// powerCap is the thermally admissible power in BCE units.
func (p thermalParams) powerCap() float64 { return (p.TMaxC - p.TAmbientC) / p.ThetaJA }

type thermalBackend struct{}

func (thermalBackend) Info() Info {
	return Info{
		Name: "multiamdahl-thermal",
		Description: "MultiAmdahl-thermal (Yavits/Morad/Ginosar): the Multi-Amdahl segment model " +
			"with a temperature budget as a fourth constraint — steady-state junction " +
			"temperature caps usable power at (tMaxC - tAmbientC)/thetaJA.",
		Capabilities: []string{"optimize", "optimize-energy", "evaluate", "segments", "thermal-budget"},
		Params: []ParamSpec{
			{Name: "tMaxC", Type: "number", Default: "100",
				Description: "Maximum junction temperature, degrees Celsius."},
			{Name: "tAmbientC", Type: "number", Default: "45",
				Description: "Ambient (heatsink inlet) temperature, degrees Celsius."},
			{Name: "thetaJA", Type: "number", Default: "0.05",
				Description: "Junction-to-ambient thermal resistance, kelvin per BCE power unit."},
			{Name: "segments", Type: "array of {share, mu, phi}",
				Default:     `[{"share":1,"mu":1,"phi":1}]`,
				Description: "Multi-Amdahl segment partition; see the multiamdahl backend."},
		},
	}
}

func (thermalBackend) New(alpha float64, maxR int, params json.RawMessage) (Model, json.RawMessage, error) {
	var p thermalParams
	if err := decodeParams(params, &p); err != nil {
		return nil, nil, err
	}
	if err := p.normalize(); err != nil {
		return nil, nil, err
	}
	law, err := pollack.New(alpha)
	if err != nil {
		return nil, nil, err
	}
	canon, err := canonicalParams(p)
	if err != nil {
		return nil, nil, err
	}
	inner := multiAmdahlModel{law: law, maxR: maxR, segs: p.Segments}
	return thermalModel{inner: inner, maxR: maxR, cap: p.powerCap()}, canon, nil
}

// thermalModel wraps the Multi-Amdahl evaluation with the thermal power
// cap: the effective power budget is min(P, P_th), and when the cap is
// what lowered the budget and power is what binds the design point, the
// limit is reported as thermal-limited.
type thermalModel struct {
	inner multiAmdahlModel
	maxR  int
	cap   float64
}

func (m thermalModel) Name() string { return "multiamdahl-thermal" }

func (m thermalModel) Space() Space { return Space{MaxR: m.maxR, Kinds: allKinds()} }

func (m thermalModel) Evaluate(d core.Design, f float64, b bounds.Budgets, r int) (core.Point, error) {
	eb, capped := b, false
	if m.cap < b.Power {
		eb.Power, capped = m.cap, true
	}
	p, err := m.inner.Evaluate(d, f, eb, r)
	if err != nil {
		return core.Point{}, err
	}
	if capped && p.Limit == bounds.PowerLimited {
		p.Limit = bounds.ThermalLimited
	}
	return p, nil
}

func (m thermalModel) Optimize(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return optimizeSweep(m.maxR, false, func(r int) (core.Point, error) {
		return m.Evaluate(d, f, b, r)
	})
}

func (m thermalModel) OptimizeEnergy(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return optimizeSweep(m.maxR, true, func(r int) (core.Point, error) {
		return m.Evaluate(d, f, b, r)
	})
}
