package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/amdahl"
	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/pollack"
)

// sqrtmParams configures the sqrtm backend: theta is the area-to-
// performance exponent of the generalized sequential law
// perf_seq(r) = r^theta. Ginosar's sqrt(m) complexity argument — a core
// of m resources can usefully exploit about sqrt(m) of them — derives
// theta = 1/2 analytically, which is exactly Pollack's empirical rule;
// other exponents in (0, 1] explore how the paper's conclusions depend
// on that assumption.
type sqrtmParams struct {
	Theta float64 `json:"theta"`
}

type sqrtmBackend struct{}

func (sqrtmBackend) Info() Info {
	return Info{
		Name: "sqrtm",
		Description: "Ginosar's sqrt(m) complexity scaling generalized to perf_seq(r) = r^theta " +
			"with power_seq = r^(alpha*theta); theta = 0.5 reproduces Pollack's rule and the " +
			"chung baseline exactly.",
		Capabilities: []string{"optimize", "optimize-energy", "evaluate", "scaling-exponent"},
		Params: []ParamSpec{{
			Name: "theta", Type: "number", Default: "0.5",
			Description: "Area-to-performance exponent in (0, 1]; 0.5 is Pollack/sqrt(m).",
		}},
	}
}

func (sqrtmBackend) New(alpha float64, maxR int, params json.RawMessage) (Model, json.RawMessage, error) {
	p := sqrtmParams{Theta: pollack.DefaultTheta}
	if err := decodeParams(params, &p); err != nil {
		return nil, nil, err
	}
	scal, err := pollack.NewScaling(alpha, p.Theta)
	if err != nil {
		return nil, nil, err
	}
	canon, err := canonicalParams(p)
	if err != nil {
		return nil, nil, err
	}
	return sqrtmModel{scal: scal, maxR: maxR}, canon, nil
}

// sqrtmModel re-derives the whole Chung framework — Table 1 bounds,
// speedup, normalized energy — under the generalized sequential law.
// Every expression keeps the baseline's exact float64 form when
// theta = 1/2 (math.Sqrt fast paths; alpha*0.5 is the same float64 as
// alpha/2), so the backend degrades to chung bit for bit at the
// default exponent.
type sqrtmModel struct {
	scal pollack.Scaling
	maxR int
}

func (m sqrtmModel) Name() string { return "sqrtm" }

func (m sqrtmModel) Space() Space { return Space{MaxR: m.maxR, Kinds: allKinds()} }

// serialFeasible is bounds.SerialFeasible under the generalized law:
// r <= A, r^(alpha*theta) <= P, and serial bandwidth perf(r) <= B. At
// theta = 1/2 the bandwidth check keeps the baseline's exact r > B*B
// comparison rather than the algebraically equal sqrt(r) > B.
func (m sqrtmModel) serialFeasible(b bounds.Budgets, r float64) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if r < 1 || math.IsNaN(r) {
		return errors.New("bounds: r must be >= 1")
	}
	if r > b.Area {
		return fmt.Errorf("bounds: serial area bound violated: r=%.3g > A=%.3g", r, b.Area)
	}
	pw, err := m.scal.Power(r)
	if err != nil {
		return err
	}
	if pw > b.Power {
		return fmt.Errorf("bounds: serial power bound violated: r^(a*theta)=%.3g > P=%.3g", pw, b.Power)
	}
	if m.scal.Theta() == pollack.DefaultTheta {
		if r > b.Bandwidth*b.Bandwidth {
			return fmt.Errorf("bounds: serial bandwidth bound violated: r=%.3g > B^2=%.3g", r, b.Bandwidth*b.Bandwidth)
		}
	} else {
		pf, err := m.scal.Perf(r)
		if err != nil {
			return err
		}
		if pf > b.Bandwidth {
			return fmt.Errorf("bounds: serial bandwidth bound violated: r^theta=%.3g > B=%.3g", pf, b.Bandwidth)
		}
	}
	return nil
}

func (m sqrtmModel) Evaluate(d core.Design, f float64, b bounds.Budgets, r int) (core.Point, error) {
	if err := d.Validate(); err != nil {
		return core.Point{}, err
	}
	if r < 1 {
		return core.Point{}, errors.New("model: r must be >= 1")
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return core.Point{}, amdahl.ErrFraction
	}
	eb := b
	if d.ExemptBandwidth {
		eb.Bandwidth = math.Inf(1)
	}
	rf := float64(r)
	if err := m.serialFeasible(eb, rf); err != nil {
		return core.Point{}, err
	}
	pf, err := m.scal.Perf(rf)
	if err != nil {
		return core.Point{}, err
	}
	pw, err := m.scal.Power(rf)
	if err != nil {
		return core.Point{}, err
	}

	// Table 1 bounds with the generalized exponents: the symmetric power
	// column's r^(alpha/2 - 1) becomes r^(alpha*theta - 1) and its
	// bandwidth column's sqrt(r) becomes perf(r); the offload and
	// heterogeneous columns are exponent-free and carry over unchanged.
	var bd bounds.Bound
	switch d.Kind {
	case core.SymCMP:
		nPow := eb.Power / math.Pow(rf, m.scal.PowExp()-1)
		nBW := eb.Bandwidth * pf
		bd = bounds.Attribute(rf, eb.Area, nPow, nBW)
	case core.AsymCMP:
		bd = bounds.Attribute(rf, eb.Area, eb.Power+rf, eb.Bandwidth+rf)
	case core.Het:
		bd = bounds.Attribute(rf, eb.Area, eb.Power/d.UCore.Phi+rf, eb.Bandwidth/d.UCore.Mu+rf)
	}

	n := bd.N
	if n < rf {
		n = rf
	}
	var speedup float64
	switch d.Kind {
	case core.SymCMP:
		speedup = 1 / ((1-f)/pf + f*rf/(n*pf))
	case core.AsymCMP:
		if f == 0 {
			speedup = pf
			break
		}
		if n == rf {
			return core.Point{}, amdahl.ErrNoProgram
		}
		speedup = 1 / ((1-f)/pf + f/(n-rf))
	case core.Het:
		if f == 0 {
			speedup = pf
			break
		}
		if n == rf {
			return core.Point{}, amdahl.ErrNoProgram
		}
		speedup = 1 / ((1-f)/pf + f/(d.UCore.Mu*(n-rf)))
	}

	// Normalized energy mirrors core.energyNorm — same expression shape
	// (serial + f·ratio, ratio formed first) so theta = 1/2 rounds
	// identically; the symmetric parallel ratio power/perf per BCE
	// generalizes from r^((alpha-1)/2) to r^(theta*(alpha-1)).
	serial := (1 - f) * pw / pf
	var parallelRatio float64
	switch d.Kind {
	case core.SymCMP:
		parallelRatio = math.Pow(rf, m.scal.Theta()*(m.scal.Alpha()-1))
	case core.AsymCMP:
		parallelRatio = 1
	case core.Het:
		parallelRatio = d.UCore.Phi / d.UCore.Mu
	}
	energy := serial + f*parallelRatio
	return core.Point{
		Design: d, F: f, R: r, N: bd.N,
		Speedup: speedup, Limit: bd.Limit, EnergyNorm: energy,
	}, nil
}

func (m sqrtmModel) Optimize(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return optimizeSweep(m.maxR, false, func(r int) (core.Point, error) {
		return m.Evaluate(d, f, b, r)
	})
}

func (m sqrtmModel) OptimizeEnergy(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return optimizeSweep(m.maxR, true, func(r int) (core.Point, error) {
		return m.Evaluate(d, f, b, r)
	})
}
