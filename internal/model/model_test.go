package model

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/pollack"
)

var testDesigns = []core.Design{
	{Kind: core.SymCMP, Label: "(0) SymCMP"},
	{Kind: core.AsymCMP, Label: "(1) AsymCMP"},
	{Kind: core.Het, Label: "(2) GPU", UCore: bounds.UCore{Mu: 0.75, Phi: 0.5}},
	{Kind: core.Het, Label: "(6) ASIC", UCore: bounds.UCore{Mu: 40, Phi: 0.01}, ExemptBandwidth: true},
}

var testBudgets = []bounds.Budgets{
	{Area: 64, Power: 32, Bandwidth: 16},
	{Area: 128, Power: 24, Bandwidth: 8},
	{Area: 32, Power: 128, Bandwidth: 4},
	{Area: 256, Power: 96, Bandwidth: 64},
}

var testFractions = []float64{0, 0.1, 0.5, 0.9, 0.975, 0.999, 1}

func TestRegistryOrderAndCanonical(t *testing.T) {
	want := []string{"chung", "multiamdahl", "multiamdahl-thermal", "sqrtm"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for spelling, canon := range map[string]string{
		"": "chung", "chung": "chung", "CHUNG": "chung", "  Chung ": "chung",
		"MultiAmdahl": "multiamdahl", "SQRTM": "sqrtm",
	} {
		got, err := Canonical(spelling)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", spelling, err)
		}
		if got != canon {
			t.Errorf("Canonical(%q) = %q, want %q", spelling, got, canon)
		}
	}
	if _, err := Canonical("no-such-model"); err == nil {
		t.Fatal("Canonical accepted an unknown model")
	}
	infos := Infos()
	if len(infos) != 4 || !infos[0].Default || infos[1].Default {
		t.Fatalf("Infos() default flags wrong: %+v", infos)
	}
}

func TestChungBackendMatchesEvaluatorExactly(t *testing.T) {
	m, canon, err := New("chung", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if canon != nil {
		t.Fatalf("chung canonical params = %s, want nil", canon)
	}
	ev := core.NewEvaluator()
	for _, d := range testDesigns {
		for _, b := range testBudgets {
			for _, f := range testFractions {
				want, werr := ev.Optimize(d, f, b)
				got, gerr := m.Optimize(d, f, b)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s f=%v %+v: err mismatch %v vs %v", d.Label, f, b, werr, gerr)
				}
				if werr == nil && got != want {
					t.Fatalf("%s f=%v %+v: %+v != %+v", d.Label, f, b, got, want)
				}
			}
		}
	}
}

// TestMultiAmdahlSingleSegmentReducesToAmdahl pins the ISSUE property:
// one segment with unit multipliers is the single-f Amdahl model within
// 1e-12, point by point across kinds, budgets, fractions, and r.
func TestMultiAmdahlSingleSegmentReducesToAmdahl(t *testing.T) {
	m, _, err := New("multiamdahl", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator()
	for _, d := range testDesigns {
		for _, b := range testBudgets {
			for _, f := range testFractions {
				for r := 1; r <= 16; r++ {
					want, werr := ev.Evaluate(d, f, b, r)
					got, gerr := m.Evaluate(d, f, b, r)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s f=%v r=%d %+v: err mismatch %v vs %v", d.Label, f, r, b, werr, gerr)
					}
					if werr != nil {
						continue
					}
					if !close12(got.Speedup, want.Speedup) || !close12(got.EnergyNorm, want.EnergyNorm) || !close12(got.N, want.N) {
						t.Fatalf("%s f=%v r=%d %+v:\n got %+v\nwant %+v", d.Label, f, r, b, got, want)
					}
					if got.Limit != want.Limit {
						t.Fatalf("%s f=%v r=%d %+v: limit %v != %v", d.Label, f, r, b, got.Limit, want.Limit)
					}
				}
			}
		}
	}
}

// TestMultiAmdahlLagrangeBeatsNaiveSplit checks the allocation is doing
// work: with two asymmetric segments the Lagrange split must weakly beat
// an equal-area split, and uneven accelerators must shift speedup.
func TestMultiAmdahlLagrangeBeatsNaiveSplit(t *testing.T) {
	params := json.RawMessage(`{"segments":[{"share":0.8,"mu":4},{"share":0.2,"mu":0.5,"phi":0.25}]}`)
	m, _, err := New("multiamdahl", 0, 0, params)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Design{Kind: core.Het, Label: "het", UCore: bounds.UCore{Mu: 2, Phi: 0.5}}
	b := bounds.Budgets{Area: 64, Power: 1e6, Bandwidth: 1e6} // area-limited on purpose
	f, r := 0.95, 4
	got, err := m.Evaluate(d, f, b, r)
	if err != nil {
		t.Fatal(err)
	}
	// Naive equal split of the parallel area across the two segments.
	aPar := b.Area - float64(r)
	p := math.Sqrt(float64(r))
	naiveTime := (1-f)/p +
		(f*0.8)/(d.UCore.Mu*4*(aPar/2)) +
		(f*0.2)/(d.UCore.Mu*0.5*(aPar/2))
	naive := 1 / naiveTime
	if got.Speedup < naive {
		t.Fatalf("Lagrange allocation (%v) worse than equal split (%v)", got.Speedup, naive)
	}
	if got.Limit != bounds.AreaLimited {
		t.Fatalf("limit = %v, want area-limited", got.Limit)
	}
}

// TestSqrtmDefaultThetaMatchesChungExactly pins the equivalence path:
// at theta = 1/2 the generalized law is the baseline bit for bit.
func TestSqrtmDefaultThetaMatchesChungExactly(t *testing.T) {
	m, canon, err := New("sqrtm", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(canon) != `{"theta":0.5}` {
		t.Fatalf("canonical params = %s", canon)
	}
	ev := core.NewEvaluator()
	for _, d := range testDesigns {
		for _, b := range testBudgets {
			for _, f := range testFractions {
				for r := 1; r <= 16; r++ {
					want, werr := ev.Evaluate(d, f, b, r)
					got, gerr := m.Evaluate(d, f, b, r)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s f=%v r=%d %+v: err mismatch %v vs %v", d.Label, f, r, b, werr, gerr)
					}
					if werr == nil && got != want {
						t.Fatalf("%s f=%v r=%d %+v:\n got %+v\nwant %+v", d.Label, f, r, b, got, want)
					}
				}
				want, werr := ev.Optimize(d, f, b)
				got, gerr := m.Optimize(d, f, b)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("optimize %s f=%v %+v: err mismatch %v vs %v", d.Label, f, b, werr, gerr)
				}
				if werr == nil && got != want {
					t.Fatalf("optimize %s f=%v %+v: %+v != %+v", d.Label, f, b, got, want)
				}
			}
		}
	}
}

// TestSqrtmMatchesPollackAtUnitCore pins the second ISSUE property: at
// m = 1 (a one-BCE core) r^theta = 1 for every theta, so any exponent
// agrees with Pollack's rule exactly.
func TestSqrtmMatchesPollackAtUnitCore(t *testing.T) {
	base, _, err := New("sqrtm", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.25, 0.4, 0.6, 0.8, 1} {
		params, _ := json.Marshal(sqrtmParams{Theta: theta})
		m, _, err := New("sqrtm", 0, 0, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range testDesigns {
			for _, f := range testFractions {
				b := testBudgets[0]
				want, werr := base.Evaluate(d, f, b, 1)
				got, gerr := m.Evaluate(d, f, b, 1)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("theta=%v %s f=%v: err mismatch %v vs %v", theta, d.Label, f, werr, gerr)
				}
				if werr == nil && got != want {
					t.Fatalf("theta=%v %s f=%v: %+v != %+v", theta, d.Label, f, got, want)
				}
			}
		}
	}
	if _, _, err := New("sqrtm", 0, 0, json.RawMessage(`{"theta":1.5}`)); err == nil {
		t.Fatal("accepted theta > 1")
	}
}

// TestSqrtmThetaChangesResults guards against the exponent silently not
// being threaded: a lower theta must reduce serial performance.
func TestSqrtmThetaChangesResults(t *testing.T) {
	lo, _, err := New("sqrtm", 0, 0, json.RawMessage(`{"theta":0.3}`))
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := New("sqrtm", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Design{Kind: core.AsymCMP, Label: "asym"}
	b := testBudgets[0]
	pLo, err := lo.Evaluate(d, 0, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	pHi, err := hi.Evaluate(d, 0, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(pLo.Speedup < pHi.Speedup) {
		t.Fatalf("theta=0.3 speedup %v not below theta=0.5 speedup %v", pLo.Speedup, pHi.Speedup)
	}
}

func TestThermalGenerousCapMatchesMultiAmdahl(t *testing.T) {
	th, _, err := New("multiamdahl-thermal", 0, 0, json.RawMessage(`{"thetaJA":1e-9}`))
	if err != nil {
		t.Fatal(err)
	}
	ma, _, err := New("multiamdahl", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range testDesigns {
		for _, b := range testBudgets {
			for _, f := range testFractions {
				want, werr := ma.Optimize(d, f, b)
				got, gerr := th.Optimize(d, f, b)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s f=%v %+v: err mismatch %v vs %v", d.Label, f, b, werr, gerr)
				}
				if werr == nil && got != want {
					t.Fatalf("%s f=%v %+v: %+v != %+v", d.Label, f, b, got, want)
				}
			}
		}
	}
}

func TestThermalBindingCapReportsThermalLimited(t *testing.T) {
	// Cap power at (100-45)/5 = 11 BCE units, below the nominal 32:
	// designs the nominal budget leaves power-limited become
	// thermal-limited, and speedup must not exceed the uncapped model's.
	th, _, err := New("multiamdahl-thermal", 0, 0, json.RawMessage(`{"thetaJA":5}`))
	if err != nil {
		t.Fatal(err)
	}
	ma, _, err := New("multiamdahl", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Design{Kind: core.SymCMP, Label: "sym"}
	b := bounds.Budgets{Area: 256, Power: 32, Bandwidth: 1e6}
	f := 0.99
	got, err := th.Optimize(d, f, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Limit != bounds.ThermalLimited {
		t.Fatalf("limit = %v, want thermal-limited", got.Limit)
	}
	free, err := ma.Optimize(d, f, b)
	if err != nil {
		t.Fatal(err)
	}
	if !(got.Speedup < free.Speedup) {
		t.Fatalf("thermal cap did not reduce speedup: %v vs %v", got.Speedup, free.Speedup)
	}
	if bounds.ThermalLimited.String() != "thermal-limited" {
		t.Fatalf("ThermalLimited string = %q", bounds.ThermalLimited)
	}
}

// TestParamCanonicalization: omitted parameters and explicit defaults
// must produce identical canonical bytes, so the serving cache
// coalesces equivalent spellings.
func TestParamCanonicalization(t *testing.T) {
	cases := []struct{ name, sparse, explicit string }{
		{"multiamdahl", `{"segments":[{"share":1}]}`, `{"segments":[{"share":1,"mu":1,"phi":1}]}`},
		{"multiamdahl-thermal", `{}`, `{"tMaxC":100,"tAmbientC":45,"thetaJA":0.05,"segments":[{"share":1,"mu":1,"phi":1}]}`},
		{"sqrtm", `{}`, `{"theta":0.5}`},
	}
	for _, tc := range cases {
		_, a, err := New(tc.name, 0, 0, json.RawMessage(tc.sparse))
		if err != nil {
			t.Fatalf("%s sparse: %v", tc.name, err)
		}
		_, b, err := New(tc.name, 0, 0, json.RawMessage(tc.explicit))
		if err != nil {
			t.Fatalf("%s explicit: %v", tc.name, err)
		}
		_, c, err := New(tc.name, 0, 0, nil)
		if err != nil {
			t.Fatalf("%s nil: %v", tc.name, err)
		}
		if string(a) != string(b) || string(a) != string(c) {
			t.Fatalf("%s canonical params differ:\n sparse   %s\n explicit %s\n nil      %s", tc.name, a, b, c)
		}
	}
	if _, _, err := New("multiamdahl", 0, 0, json.RawMessage(`{"segments":[{"share":0.5}]}`)); err == nil {
		t.Fatal("accepted shares not summing to 1")
	}
	if _, _, err := New("sqrtm", 0, 0, json.RawMessage(`{"bogus":1}`)); err == nil {
		t.Fatal("accepted unknown param field")
	}
	if _, _, err := New("chung", 0, 0, json.RawMessage(`{"theta":0.5}`)); err == nil {
		t.Fatal("chung accepted params")
	}
}

func TestOptimizeSweepInfeasibleWrapsErrInfeasible(t *testing.T) {
	m, _, err := New("multiamdahl", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Power budget below even r = 1's serial draw.
	_, err = m.Optimize(core.Design{Kind: core.AsymCMP}, 0.5, bounds.Budgets{Area: 64, Power: 0.5, Bandwidth: 16})
	if err == nil || !strings.Contains(err.Error(), "no feasible design point") {
		t.Fatalf("err = %v, want wrapped core.ErrInfeasible", err)
	}
}

func TestFactoryThreadsAlphaAndMaxR(t *testing.T) {
	mk := NewFactory("sqrtm", nil)
	m, err := mk(pollack.ScenarioSixAlpha, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp := m.Space(); sp.MaxR != 4 {
		t.Fatalf("MaxR = %d, want 4", sp.MaxR)
	}
	ev := core.Evaluator{MaxR: 4}
	if law, err := pollack.New(pollack.ScenarioSixAlpha); err == nil {
		ev.Law = law
	} else {
		t.Fatal(err)
	}
	d := core.Design{Kind: core.SymCMP}
	b := testBudgets[0]
	want, werr := ev.Optimize(d, 0.9, b)
	got, gerr := m.Optimize(d, 0.9, b)
	if werr != nil || gerr != nil {
		t.Fatalf("errs: %v %v", werr, gerr)
	}
	if got != want {
		t.Fatalf("alpha=2.25 maxR=4: %+v != %+v", got, want)
	}
}

func close12(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*math.Max(scale, 1)
}
