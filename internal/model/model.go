// Package model is the pluggable model-backend layer: where package
// engine abstracts how an operation is *served*, this package abstracts
// which member of the Amdahl-extension family *answers* it. A Model
// evaluates speedup and energy for a design point under budgets,
// optimizes over its design space (the sequential-core size r), and
// reports its capabilities and parameter schema for discovery
// (GET /v1/models).
//
// Four backends register at init:
//
//   - chung: the paper's U-core model (the default), delegating to
//     internal/core bit for bit.
//   - multiamdahl: Zidenberg/Keslassy/Weiser's Multi-Amdahl — multiple
//     program execution segments with closed-form Lagrange-optimal area
//     allocation across accelerators.
//   - multiamdahl-thermal: Yavits/Morad/Ginosar's thermal extension — a
//     temperature budget as a fourth constraint next to area, power,
//     and bandwidth.
//   - sqrtm: Ginosar's sqrt(m) complexity scaling as a generalized
//     alternative to Pollack's rule (perf_seq = r^theta).
//
// Backends are immutable once constructed, so one instance may serve
// concurrent requests; construction canonicalizes the caller's raw
// parameters so equivalent spellings share one serving-cache entry.
package model

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/pollack"
)

// Optimizer is the minimal evaluation surface the projection,
// sensitivity, and serving fan-outs consume: optimize the design point
// for one objective under one budget triple. core.Evaluator satisfies
// it, so the legacy path and every backend flow through one shape.
type Optimizer interface {
	Optimize(d core.Design, f float64, b bounds.Budgets) (core.Point, error)
	OptimizeEnergy(d core.Design, f float64, b bounds.Budgets) (core.Point, error)
}

// Model is one configured backend instance.
type Model interface {
	Optimizer

	// Name is the backend's canonical registry name, e.g. "chung".
	Name() string

	// Evaluate computes the design point at a fixed sequential-core
	// size r instead of optimizing over the design space.
	Evaluate(d core.Design, f float64, b bounds.Budgets, r int) (core.Point, error)

	// Space enumerates the design space Optimize searches.
	Space() Space
}

// Space describes a backend's design space: the sequential-core sizes
// swept and the chip organizations it can evaluate.
type Space struct {
	MaxR  int      `json:"maxR"`
	Kinds []string `json:"kinds"`
}

// allKinds is the design-kind lineup every current backend evaluates.
func allKinds() []string { return []string{"sym", "asym", "het"} }

// ParamSpec documents one backend parameter for discovery clients.
type ParamSpec struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Default     string `json:"default,omitempty"`
	Description string `json:"description"`
}

// Info is one backend's discovery document.
type Info struct {
	Name         string      `json:"name"`
	Default      bool        `json:"default,omitempty"`
	Description  string      `json:"description"`
	Capabilities []string    `json:"capabilities"`
	Params       []ParamSpec `json:"params,omitempty"`
}

// Backend constructs configured instances of one model family.
type Backend interface {
	// Info returns the discovery document.
	Info() Info

	// New builds an immutable instance for (alpha, maxR), decoding
	// params strictly (unknown fields are errors) and returning their
	// canonical encoding — fully defaulted, so every spelling of the
	// same configuration produces identical bytes and therefore one
	// serving-cache entry.
	New(alpha float64, maxR int, params json.RawMessage) (Model, json.RawMessage, error)
}

// DefaultName is the backend behind requests that do not name one.
const DefaultName = "chung"

// The registry. Backends register in the package init below; the set is
// immutable afterwards, so lookups need no locking.
var (
	backends     = map[string]Backend{}
	backendOrder []string
)

// Register adds a backend under its Info().Name, panicking on
// duplicates — like engine.NewRegistry, a duplicate is a programming
// error caught at init.
func Register(b Backend) {
	name := b.Info().Name
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("model: backend name %q must be non-empty lowercase", name))
	}
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("model: duplicate backend %q", name))
	}
	backends[name] = b
	backendOrder = append(backendOrder, name)
}

// init registers the built-in family in one place so the listing order
// is fixed by this file, not by file-name init order.
func init() {
	Register(chungBackend{})
	Register(multiAmdahlBackend{})
	Register(thermalBackend{})
	Register(sqrtmBackend{})
}

// Names lists the registered backends in registration order.
func Names() []string {
	out := make([]string, len(backendOrder))
	copy(out, backendOrder)
	return out
}

// Infos lists every backend's discovery document in registration order.
func Infos() []Info {
	out := make([]Info, 0, len(backendOrder))
	for _, name := range backendOrder {
		out = append(out, backends[name].Info())
	}
	return out
}

// Canonical maps a request's model spelling onto the registry: names
// are case-insensitive and the empty string means the default backend.
func Canonical(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		n = DefaultName
	}
	if _, ok := backends[n]; !ok {
		return "", fmt.Errorf("model: unknown model %q (want one of %s)", name, strings.Join(Names(), ", "))
	}
	return n, nil
}

// Lookup returns the backend registered under the canonicalized name.
func Lookup(name string) (Backend, error) {
	canon, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	return backends[canon], nil
}

// New canonicalizes the name and builds a configured instance.
// alpha <= 0 means the paper default (1.75); maxR <= 0 means the
// paper's sweep bound (16). The returned RawMessage is the canonical
// parameter encoding (nil when the backend takes none).
func New(name string, alpha float64, maxR int, params json.RawMessage) (Model, json.RawMessage, error) {
	b, err := Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	if alpha <= 0 {
		alpha = pollack.DefaultAlpha
	}
	if maxR <= 0 {
		maxR = 16
	}
	return b.New(alpha, maxR, params)
}

// Factory defers instance construction until the projection layer knows
// its (alpha, maxR): Scenario 6 rewrites alpha and the sequential-sizing
// ablation pins maxR, and those configuration transforms must reach the
// backend. A nil Factory means the legacy Chung evaluator path.
type Factory func(alpha float64, maxR int) (Model, error)

// NewFactory returns a Factory closing over a validated (name, params)
// pair. params should already be canonical (from a prior New call);
// construction errors surface when the factory runs.
func NewFactory(name string, params json.RawMessage) Factory {
	return func(alpha float64, maxR int) (Model, error) {
		m, _, err := New(name, alpha, maxR, params)
		return m, err
	}
}

// decodeParams strictly decodes raw backend parameters: unknown fields
// and trailing data are errors, and an absent or null document leaves
// the defaults untouched.
func decodeParams(raw json.RawMessage, into any) error {
	if len(raw) == 0 || string(raw) == "null" {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("model: invalid params: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("model: invalid params: trailing data")
	}
	return nil
}

// canonicalParams re-marshals the fully defaulted typed params so every
// spelling of one configuration (omitted fields, reordered keys,
// whitespace) shares one canonical byte encoding.
func canonicalParams(p any) (json.RawMessage, error) {
	out, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("model: encoding params: %v", err)
	}
	return out, nil
}

// optimizeSweep is the shared integer-r design-space search: argmax of
// speedup (or argmin of energy), ties broken toward smaller r exactly
// as core.OptimizeGrid breaks them. Infeasible r values are skipped; if
// every r fails, core.ErrInfeasible wraps the last cause so the serving
// layer's 422 mapping works for every backend.
func optimizeSweep(maxR int, energy bool, eval func(r int) (core.Point, error)) (core.Point, error) {
	if maxR < 1 {
		maxR = 16
	}
	var (
		best    core.Point
		found   bool
		lastErr error
	)
	for r := 1; r <= maxR; r++ {
		p, err := eval(r)
		if err != nil {
			lastErr = err
			continue
		}
		better := !found
		if !better {
			if energy {
				better = p.EnergyNorm < best.EnergyNorm
			} else {
				better = p.Speedup > best.Speedup
			}
		}
		if better {
			best, found = p, true
		}
	}
	if !found {
		return core.Point{}, fmt.Errorf("%w: %v", core.ErrInfeasible, lastErr)
	}
	return best, nil
}
