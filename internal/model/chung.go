package model

import (
	"encoding/json"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/pollack"
)

// chungBackend serves the paper's own U-core model by delegating to
// internal/core — including its analytic optimizer fast path — so the
// default backend is the pre-existing code path bit for bit.
type chungBackend struct{}

func (chungBackend) Info() Info {
	return Info{
		Name:    "chung",
		Default: true,
		Description: "Chung et al. (MICRO 2010) U-core model: single parallel fraction, " +
			"Pollack-rule sequential core, Table 1 area/power/bandwidth bounds.",
		Capabilities: []string{"optimize", "optimize-energy", "evaluate", "analytic-optimizer"},
	}
}

func (chungBackend) New(alpha float64, maxR int, params json.RawMessage) (Model, json.RawMessage, error) {
	// The baseline takes no parameters; strict decode rejects any.
	var none struct{}
	if err := decodeParams(params, &none); err != nil {
		return nil, nil, err
	}
	law, err := pollack.New(alpha)
	if err != nil {
		return nil, nil, err
	}
	return chungModel{ev: core.Evaluator{Law: law, MaxR: maxR}}, nil, nil
}

type chungModel struct {
	ev core.Evaluator
}

func (m chungModel) Name() string { return "chung" }

func (m chungModel) Space() Space { return Space{MaxR: m.ev.MaxR, Kinds: allKinds()} }

func (m chungModel) Evaluate(d core.Design, f float64, b bounds.Budgets, r int) (core.Point, error) {
	return m.ev.Evaluate(d, f, b, r)
}

func (m chungModel) Optimize(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return m.ev.Optimize(d, f, b)
}

func (m chungModel) OptimizeEnergy(d core.Design, f float64, b bounds.Budgets) (core.Point, error) {
	return m.ev.OptimizeEnergy(d, f, b)
}
