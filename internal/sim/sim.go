// Package sim is the device execution simulator: it runs the repository's
// real kernel implementations (FFT, MMM, Black-Scholes), verifies their
// outputs against independent references, accounts their nominal work, and
// maps that work through the analytic device models to produce simulated
// wall time, power, and off-chip bandwidth — the raw material the
// measurement rig (package measure) turns into the paper's Section 5 data.
//
// Simulated time for a run is nominal work divided by the device model's
// throughput at that operating point; simulated off-chip traffic is the
// compulsory traffic, inflated by the device's out-of-core excess factor
// once the working set exceeds on-chip capacity (Figure 4 bottom).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/calcm/heterosim/internal/device"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/workload"
	"github.com/calcm/heterosim/internal/workload/blackscholes"
	"github.com/calcm/heterosim/internal/workload/fft"
	"github.com/calcm/heterosim/internal/workload/mmm"
)

// Record is one simulated kernel execution on one device.
type Record struct {
	Device   paper.DeviceID
	Workload paper.WorkloadID
	Size     int // FFT length, MMM dimension, or option count

	Counts     workload.Counts
	Seconds    float64 // simulated steady-state time for Counts
	Throughput float64 // work units per second (GFLOP/s-family or Mopt/s)

	Power device.PowerBreakdown // simulated wall decomposition

	CompulsoryGBs float64 // compulsory off-chip bandwidth during the run
	MeasuredGBs   float64 // simulated observed bandwidth (>= compulsory)

	Executed bool // the real Go kernel ran and was verified
}

// EnergyJ returns compute energy (compute power x time).
func (r Record) EnergyJ() float64 { return r.Power.Compute() * r.Seconds }

// Simulator owns the calibrated device models.
type Simulator struct {
	models map[paper.DeviceID]map[paper.WorkloadID]device.Model
}

// New builds a simulator over the full calibrated model set.
func New() (*Simulator, error) {
	models, err := device.BuildModels()
	if err != nil {
		return nil, err
	}
	return &Simulator{models: models}, nil
}

// Model returns the model for a device/workload pair.
func (s *Simulator) Model(d paper.DeviceID, w paper.WorkloadID) (device.Model, error) {
	m, ok := s.models[d][w]
	if !ok {
		return device.Model{}, fmt.Errorf("sim: no model for %s/%s (the paper could not measure it)", d, w)
	}
	return m, nil
}

// HasModel reports whether the pair was measurable in the paper.
func (s *Simulator) HasModel(d paper.DeviceID, w paper.WorkloadID) bool {
	_, ok := s.models[d][w]
	return ok
}

// RunFFT simulates a size-n FFT on the device. When execute is true the
// real Go kernel runs on a deterministic random signal and its output is
// verified against the recursive implementation before the record is
// produced; an unverified kernel aborts the measurement.
func (s *Simulator) RunFFT(d paper.DeviceID, n int, execute bool) (Record, error) {
	m, err := s.Model(d, device.FFTFamily)
	if err != nil {
		return Record{}, err
	}
	counts, err := workload.FFTCounts(n)
	if err != nil {
		return Record{}, err
	}
	executed := false
	if execute {
		if err := executeFFT(n); err != nil {
			return Record{}, err
		}
		executed = true
	}
	return s.finish(m, workloadIDForFFT(n), n, counts, executed)
}

// RunMMM simulates an n x n x n matrix multiplication. When execute is
// true, the blocked kernel runs on random matrices and is verified against
// the naive product (bounded to modest sizes to keep test times sane).
func (s *Simulator) RunMMM(d paper.DeviceID, n, block int, execute bool) (Record, error) {
	m, err := s.Model(d, paper.MMM)
	if err != nil {
		return Record{}, err
	}
	counts, err := workload.MMMCounts(n, float64(block))
	if err != nil {
		return Record{}, err
	}
	executed := false
	if execute {
		if err := executeMMM(n, block); err != nil {
			return Record{}, err
		}
		executed = true
	}
	return s.finish(m, paper.MMM, n, counts, executed)
}

// RunBS simulates pricing count options. When execute is true a random
// portfolio is priced in parallel and spot-checked against serial pricing
// and put-call parity.
func (s *Simulator) RunBS(d paper.DeviceID, count int, execute bool) (Record, error) {
	m, err := s.Model(d, paper.BS)
	if err != nil {
		return Record{}, err
	}
	counts, err := workload.BSCounts(count)
	if err != nil {
		return Record{}, err
	}
	executed := false
	if execute {
		if err := executeBS(count); err != nil {
			return Record{}, err
		}
		executed = true
	}
	return s.finish(m, paper.BS, count, counts, executed)
}

// finish maps verified work through the device model into a Record.
func (s *Simulator) finish(m device.Model, w paper.WorkloadID, size int, counts workload.Counts, executed bool) (Record, error) {
	thr := m.ThroughputAt(size)
	if thr <= 0 {
		return Record{}, fmt.Errorf("sim: model %s/%s has no throughput at size %d", m.Device.ID, w, size)
	}
	// Work units: GFLOP for FLOP-counted kernels, Mopt for Black-Scholes.
	var unitsOfWork float64
	var bytesPerUnit float64
	if w == paper.BS {
		unitsOfWork = counts.Items / 1e6 // Mopt
		bytesPerUnit = counts.Bytes / counts.Items * 1e6
	} else {
		unitsOfWork = counts.FLOPs / 1e9 // GFLOP
		bytesPerUnit = counts.Bytes / counts.FLOPs * 1e9
	}
	seconds := unitsOfWork / thr
	// Bandwidth in GB/s: units/s x bytes-per-unit / 1e9.
	compulsory := thr * bytesPerUnit / 1e9
	measured := compulsory
	if knee := m.Device.OnChipKneeLog2N(); knee > 0 && sizeLog2(size) > float64(knee) {
		measured *= m.ExcessTrafficFactor
	}
	if m.Device.PeakBandwidthGBs > 0 && measured > 0.92*m.Device.PeakBandwidthGBs {
		measured = 0.92 * m.Device.PeakBandwidthGBs
	}
	return Record{
		Device:        m.Device.ID,
		Workload:      w,
		Size:          size,
		Counts:        counts,
		Seconds:       seconds,
		Throughput:    thr,
		Power:         m.BreakdownAt(size),
		CompulsoryGBs: compulsory,
		MeasuredGBs:   measured,
		Executed:      executed,
	}, nil
}

// SweepFFT simulates FFTs for log2 sizes [lo2, hi2] on one device,
// executing (and verifying) the real kernel at every size when execute is
// set. Sizes the device has no model for return an error.
func (s *Simulator) SweepFFT(d paper.DeviceID, lo2, hi2 int, execute bool) ([]Record, error) {
	if lo2 < 1 || hi2 < lo2 {
		return nil, fmt.Errorf("sim: bad sweep range [%d, %d]", lo2, hi2)
	}
	out := make([]Record, 0, hi2-lo2+1)
	for l2 := lo2; l2 <= hi2; l2++ {
		rec, err := s.RunFFT(d, 1<<uint(l2), execute)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// CompulsoryOnly returns what the record's bandwidth would be if the
// device achieved exactly compulsory traffic — Figure 4's reference line.
func CompulsoryOnly(r Record) float64 { return r.CompulsoryGBs }

// --- kernel execution & verification ---------------------------------------

const maxExecFFT = 1 << 16 // cap real execution size to keep sweeps fast

func executeFFT(n int) error {
	if n > maxExecFFT {
		// Verify a congruent smaller transform instead; the device model,
		// not the Go runtime, determines simulated performance.
		n = maxExecFFT
	}
	rng := rand.New(rand.NewSource(int64(n)))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want, err := fft.ForwardRecursive(x)
	if err != nil {
		return err
	}
	// Execute through the planned path (the production transform shape)
	// and cross-check against the recursive reference. The package-level
	// plan cache makes repeated sweeps at the same sizes setup-free.
	plan, err := fft.PlanFor(n)
	if err != nil {
		return err
	}
	got := make([]complex128, n)
	copy(got, x)
	if err := plan.Execute(got); err != nil {
		return err
	}
	diff, err := fft.MaxAbsDiff(got, want)
	if err != nil {
		return err
	}
	if diff > 1e-8*float64(n) {
		return fmt.Errorf("sim: FFT verification failed at n=%d (diff %g)", n, diff)
	}
	return nil
}

func executeMMM(n, block int) error {
	const maxExecMMM = 192
	if n > maxExecMMM {
		n = maxExecMMM
	}
	if block > n {
		block = n
	}
	rng := rand.New(rand.NewSource(int64(n)))
	a, err := mmm.New(n, n)
	if err != nil {
		return err
	}
	b, err := mmm.New(n, n)
	if err != nil {
		return err
	}
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		b.Data[i] = rng.NormFloat64()
	}
	want, err := mmm.Naive(a, b)
	if err != nil {
		return err
	}
	got, err := mmm.Parallel(a, b, block, 0)
	if err != nil {
		return err
	}
	if !got.Equalish(want, 1e-8*float64(n)) {
		return errors.New("sim: MMM verification failed")
	}
	return nil
}

func executeBS(count int) error {
	const maxExecBS = 1 << 15
	if count > maxExecBS {
		count = maxExecBS
	}
	opts, err := blackscholes.RandomPortfolio(count, int64(count))
	if err != nil {
		return err
	}
	par, err := blackscholes.PriceBatchParallel(opts, 0)
	if err != nil {
		return err
	}
	ser, err := blackscholes.PriceBatch(opts, nil)
	if err != nil {
		return err
	}
	for i := range ser {
		if ser[i] != par[i] {
			return fmt.Errorf("sim: BS verification failed at option %d", i)
		}
	}
	// Parity spot-check on the first option.
	o := opts[0]
	co, po := o, o
	co.Kind, po.Kind = blackscholes.Call, blackscholes.Put
	c, err := blackscholes.Price(co)
	if err != nil {
		return err
	}
	p, err := blackscholes.Price(po)
	if err != nil {
		return err
	}
	if resid := blackscholes.Parity(c, p, o); math.Abs(resid) > 1e-8*o.Spot {
		return fmt.Errorf("sim: put-call parity violated: %g", resid)
	}
	return nil
}

func workloadIDForFFT(n int) paper.WorkloadID {
	switch n {
	case 64:
		return paper.FFT64
	case 1024:
		return paper.FFT1024
	case 16384:
		return paper.FFT16384
	default:
		return paper.WorkloadID(fmt.Sprintf("FFT-%d", n))
	}
}

func sizeLog2(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}
