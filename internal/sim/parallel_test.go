package sim

import (
	"testing"

	"github.com/calcm/heterosim/internal/paper"
)

func TestSweepAllFFTMatchesSequential(t *testing.T) {
	s := newSim(t)
	all, err := s.SweepAllFFT(4, 14, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("swept %d devices, want 5", len(all))
	}
	for _, id := range []paper.DeviceID{paper.CoreI7, paper.GTX285, paper.GTX480, paper.LX760, paper.ASIC} {
		seq, err := s.SweepFFT(id, 4, 14, false)
		if err != nil {
			t.Fatal(err)
		}
		par := all[id]
		if len(par) != len(seq) {
			t.Fatalf("%s: %d vs %d records", id, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Errorf("%s record %d differs between parallel and sequential", id, i)
			}
		}
	}
	// R5870 has no FFT model and must be absent.
	if _, ok := all[paper.R5870]; ok {
		t.Error("R5870 should not appear")
	}
}

func TestSweepAllFFTWithExecution(t *testing.T) {
	s := newSim(t)
	all, err := s.SweepAllFFT(4, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	for id, recs := range all {
		for _, r := range recs {
			if !r.Executed {
				t.Errorf("%s size %d not executed", id, r.Size)
			}
		}
	}
}

func TestSweepAllFFTPropagatesErrors(t *testing.T) {
	s := newSim(t)
	if _, err := s.SweepAllFFT(10, 4, false); err == nil {
		t.Error("reversed range must fail")
	}
}

func BenchmarkSweepAllFFTConcurrent(b *testing.B) {
	s, err := New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.SweepAllFFT(4, 20, true); err != nil {
			b.Fatal(err)
		}
	}
}
