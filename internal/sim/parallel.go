package sim

import (
	"context"
	"fmt"
	"sort"

	"github.com/calcm/heterosim/internal/device"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/par"
)

// SweepAllFFT runs the FFT sweep for every FFT-capable device across the
// shared worker pool (par package, GOMAXPROCS workers). Results are keyed
// by device and identical to sequential SweepFFT calls; the first error
// cancels the sweep. The concurrency matters for the execute=true path,
// where every size runs and verifies the real kernel.
func (s *Simulator) SweepAllFFT(lo2, hi2 int, execute bool) (map[paper.DeviceID][]Record, error) {
	var devices []paper.DeviceID
	for _, d := range device.Catalog() {
		if s.HasModel(d.ID, device.FFTFamily) {
			devices = append(devices, d.ID)
		}
	}
	sort.Slice(devices, func(i, j int) bool { return devices[i] < devices[j] })

	sweeps, err := par.Map(context.Background(), len(devices), 0,
		func(_ context.Context, i int) ([]Record, error) {
			recs, err := s.SweepFFT(devices[i], lo2, hi2, execute)
			if err != nil {
				return nil, fmt.Errorf("sim: %s: %w", devices[i], err)
			}
			return recs, nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[paper.DeviceID][]Record, len(devices))
	for i, id := range devices {
		out[id] = sweeps[i]
	}
	return out, nil
}
