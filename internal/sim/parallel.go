package sim

import (
	"fmt"
	"sort"
	"sync"

	"github.com/calcm/heterosim/internal/device"
	"github.com/calcm/heterosim/internal/paper"
)

// SweepAllFFT runs the FFT sweep for every FFT-capable device
// concurrently, one goroutine per device. Results are keyed by device and
// identical to sequential SweepFFT calls; the first error aborts the
// whole sweep. The concurrency matters for the execute=true path, where
// every size runs and verifies the real kernel.
func (s *Simulator) SweepAllFFT(lo2, hi2 int, execute bool) (map[paper.DeviceID][]Record, error) {
	var devices []paper.DeviceID
	for _, d := range device.Catalog() {
		if s.HasModel(d.ID, device.FFTFamily) {
			devices = append(devices, d.ID)
		}
	}
	sort.Slice(devices, func(i, j int) bool { return devices[i] < devices[j] })

	type result struct {
		id   paper.DeviceID
		recs []Record
		err  error
	}
	results := make(chan result, len(devices))
	var wg sync.WaitGroup
	for _, id := range devices {
		wg.Add(1)
		go func(id paper.DeviceID) {
			defer wg.Done()
			recs, err := s.SweepFFT(id, lo2, hi2, execute)
			results <- result{id: id, recs: recs, err: err}
		}(id)
	}
	wg.Wait()
	close(results)

	out := make(map[paper.DeviceID][]Record, len(devices))
	for r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("sim: %s: %w", r.id, r.err)
		}
		out[r.id] = r.recs
	}
	return out, nil
}
