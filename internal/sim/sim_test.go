package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/paper"
)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunFFTProducesConsistentRecord(t *testing.T) {
	s := newSim(t)
	rec, err := s.RunFFT(paper.GTX285, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Executed {
		t.Error("kernel should have executed")
	}
	if rec.Workload != paper.FFT1024 {
		t.Errorf("workload = %s", rec.Workload)
	}
	// Throughput x seconds == GFLOPs of work.
	gflops := rec.Counts.FLOPs / 1e9
	if math.Abs(rec.Throughput*rec.Seconds-gflops) > 1e-9*gflops {
		t.Errorf("time/throughput inconsistent: %g * %g != %g",
			rec.Throughput, rec.Seconds, gflops)
	}
	// Compulsory bandwidth = throughput x bytes/flop.
	wantBW := rec.Throughput * (rec.Counts.Bytes / rec.Counts.FLOPs)
	if math.Abs(rec.CompulsoryGBs-wantBW) > 1e-9*wantBW {
		t.Errorf("compulsory = %g, want %g", rec.CompulsoryGBs, wantBW)
	}
	if rec.EnergyJ() <= 0 {
		t.Error("energy must be positive")
	}
}

func TestRunFFTUnknownDevice(t *testing.T) {
	s := newSim(t)
	if _, err := s.RunFFT(paper.R5870, 1024, false); err == nil {
		t.Error("R5870 has no FFT model; must fail")
	}
	if _, err := s.RunFFT(paper.GTX285, 1000, false); err == nil {
		t.Error("non-power-of-two FFT must fail")
	}
}

func TestBandwidthKnee(t *testing.T) {
	s := newSim(t)
	// Below the GTX285 knee (2^12): measured == compulsory.
	small, err := s.RunFFT(paper.GTX285, 1<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(small.MeasuredGBs-small.CompulsoryGBs) > 1e-12 {
		t.Errorf("below knee, measured %g != compulsory %g",
			small.MeasuredGBs, small.CompulsoryGBs)
	}
	// Above the knee: measured exceeds compulsory (out-of-core traffic)...
	big, err := s.RunFFT(paper.GTX285, 1<<16, false)
	if err != nil {
		t.Fatal(err)
	}
	if big.MeasuredGBs <= big.CompulsoryGBs {
		t.Errorf("above knee, measured %g should exceed compulsory %g",
			big.MeasuredGBs, big.CompulsoryGBs)
	}
	// ...but stays below the board peak (compute-bound, the Section 5
	// verification step).
	if big.MeasuredGBs >= 159 {
		t.Errorf("measured %g must stay below the 159 GB/s peak", big.MeasuredGBs)
	}
}

func TestRunMMMVerifiedAndCalibrated(t *testing.T) {
	s := newSim(t)
	rec, err := s.RunMMM(paper.ASIC, 1024, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Executed {
		t.Error("MMM kernel should have executed")
	}
	// Table 4: ASIC MMM = 694 GFLOP/s.
	if math.Abs(rec.Throughput-694) > 1e-9 {
		t.Errorf("ASIC MMM throughput = %g, want 694", rec.Throughput)
	}
	// Energy efficiency matches Table 4: 50.73 GFLOP/J.
	eff := (rec.Counts.FLOPs / 1e9) / rec.EnergyJ()
	if math.Abs(eff/50.73-1) > 1e-6 {
		t.Errorf("ASIC MMM GFLOP/J = %g, want 50.73", eff)
	}
}

func TestRunBSVerifiedAndCalibrated(t *testing.T) {
	s := newSim(t)
	rec, err := s.RunBS(paper.GTX285, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Executed {
		t.Error("BS kernel should have executed")
	}
	// Table 4: GTX285 BS = 10756 Mopt/s.
	if math.Abs(rec.Throughput-10756) > 1e-9 {
		t.Errorf("GTX285 BS throughput = %g, want 10756", rec.Throughput)
	}
	// 10 bytes per option: compulsory GB/s = Mopt/s * 10 / 1000.
	want := 10756.0 * 10 / 1000
	if math.Abs(rec.CompulsoryGBs-want) > 1e-6 {
		t.Errorf("BS compulsory = %g, want %g", rec.CompulsoryGBs, want)
	}
}

func TestMissingModels(t *testing.T) {
	s := newSim(t)
	// GTX480 BS and R5870 BS/FFT were not obtained in the paper.
	if _, err := s.RunBS(paper.GTX480, 1000, false); err == nil {
		t.Error("GTX480 BS must fail")
	}
	if _, err := s.RunBS(paper.R5870, 1000, false); err == nil {
		t.Error("R5870 BS must fail")
	}
	if s.HasModel(paper.R5870, paper.MMM) != true {
		t.Error("R5870 MMM should exist")
	}
	if s.HasModel(paper.GTX480, paper.BS) {
		t.Error("GTX480 BS should not exist")
	}
}

func TestSweepFFT(t *testing.T) {
	s := newSim(t)
	recs, err := s.SweepFFT(paper.CoreI7, 4, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 17 {
		t.Fatalf("sweep length = %d, want 17", len(recs))
	}
	for i, r := range recs {
		if r.Size != 1<<uint(4+i) {
			t.Errorf("sweep[%d] size = %d", i, r.Size)
		}
		if r.Throughput <= 0 || r.Seconds <= 0 {
			t.Errorf("sweep[%d] non-positive values: %+v", i, r)
		}
	}
	if _, err := s.SweepFFT(paper.CoreI7, 10, 4, false); err == nil {
		t.Error("reversed range must fail")
	}
}

func TestSweepWithExecution(t *testing.T) {
	s := newSim(t)
	recs, err := s.SweepFFT(paper.ASIC, 4, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if !r.Executed {
			t.Errorf("size %d not executed", r.Size)
		}
	}
}

func TestWorkloadIDForFFT(t *testing.T) {
	if got := workloadIDForFFT(64); got != paper.FFT64 {
		t.Errorf("64 -> %s", got)
	}
	if got := workloadIDForFFT(2048); !strings.HasPrefix(string(got), "FFT-") {
		t.Errorf("2048 -> %s", got)
	}
}

func TestCompulsoryOnly(t *testing.T) {
	s := newSim(t)
	rec, _ := s.RunFFT(paper.GTX285, 4096, false)
	if CompulsoryOnly(rec) != rec.CompulsoryGBs {
		t.Error("CompulsoryOnly mismatch")
	}
}

// The Section 5 compute-bound check: at every size the GTX285's measured
// bandwidth stays below the board peak, so FFT performance is
// compute-bound, satisfying the model's linear-scaling assumption.
func TestGTX285FFTComputeBoundEverywhere(t *testing.T) {
	s := newSim(t)
	recs, err := s.SweepFFT(paper.GTX285, 4, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.MeasuredGBs >= 159 {
			t.Errorf("N=2^%d: measured %g GB/s >= peak", int(math.Log2(float64(r.Size))), r.MeasuredGBs)
		}
	}
}

func BenchmarkRunFFT1024(b *testing.B) {
	s, err := New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunFFT(paper.GTX480, 1024, false); err != nil {
			b.Fatal(err)
		}
	}
}
