// Package mix implements the "mixing and matching" design the paper's
// discussion (Section 6.3) proposes: fabricating several different U-core
// fabrics on one die and powering each on-demand for the kernel that
// suits it — e.g. a custom MMM core next to a GPU fabric for
// bandwidth-limited FFTs. Area must be provisioned for every fabric, but
// power and bandwidth are consumed only by the fabric that is active
// (dark silicon working as intended).
//
// Given a kernel mix (time-weighted workloads with per-fabric U-core
// parameters), the allocator splits the parallel area among fabrics to
// maximize overall speedup, respecting each kernel's own power and
// bandwidth ceilings while active.
package mix

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
)

// Kernel is one workload in the mix.
type Kernel struct {
	Name string
	// Weight is the fraction of baseline execution time spent in this
	// kernel's parallel section. Weights plus the serial fraction sum to 1.
	Weight float64
	// UCore is the fabric fabricated for this kernel.
	UCore bounds.UCore
	// BandwidthBCE is the off-chip bandwidth budget in this kernel's BCE
	// compulsory-bandwidth units (workload-specific, like Table 1's B).
	BandwidthBCE float64
	// ExemptBandwidth lifts the bandwidth ceiling (ASIC MMM case).
	ExemptBandwidth bool
}

// Chip is a mixed-fabric design problem.
type Chip struct {
	Law pollack.Law
	// SerialFraction is the weight of the sequential section.
	SerialFraction float64
	Kernels        []Kernel
	// AreaBCE and PowerBCE are the chip budgets in BCE units. Power
	// applies per active fabric (only one fabric runs at a time).
	AreaBCE  float64
	PowerBCE float64
	// MaxR bounds the sequential-core sweep.
	MaxR int
}

// Validate reports an error for malformed problems.
func (c Chip) Validate() error {
	if c.SerialFraction < 0 || c.SerialFraction >= 1 {
		return errors.New("mix: serial fraction must be in [0, 1)")
	}
	if len(c.Kernels) == 0 {
		return errors.New("mix: at least one kernel required")
	}
	sum := c.SerialFraction
	for i, k := range c.Kernels {
		if k.Weight <= 0 {
			return fmt.Errorf("mix: kernel %d weight must be positive", i)
		}
		if err := k.UCore.Validate(); err != nil {
			return fmt.Errorf("mix: kernel %d: %w", i, err)
		}
		if !k.ExemptBandwidth && k.BandwidthBCE <= 0 {
			return fmt.Errorf("mix: kernel %d needs a bandwidth budget", i)
		}
		sum += k.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("mix: weights sum to %g, want 1", sum)
	}
	if c.AreaBCE <= 0 || c.PowerBCE <= 0 {
		return errors.New("mix: budgets must be positive")
	}
	if c.MaxR < 1 {
		return errors.New("mix: MaxR must be >= 1")
	}
	return nil
}

// Allocation is the optimizer's answer.
type Allocation struct {
	R       int       // sequential core size
	AreaBCE []float64 // fabric area per kernel (BCE units)
	Speedup float64
	// EffectiveN is min(area, power cap, bandwidth cap) per kernel — the
	// resources that actually contribute while that kernel runs.
	EffectiveN []float64
}

// capFor returns the largest useful fabric size for kernel k given the
// active-power and bandwidth ceilings (area excluded).
func (c Chip) capFor(k Kernel) float64 {
	cap := c.PowerBCE / k.UCore.Phi
	if !k.ExemptBandwidth {
		if bw := k.BandwidthBCE / k.UCore.Mu; bw < cap {
			cap = bw
		}
	}
	return cap
}

// Optimize splits the parallel area among fabrics for each candidate r
// and returns the best allocation. For a fixed r the optimal split of
// area A among fabrics minimizing sum w_i/(mu_i n_i) subject to
// sum n_i <= A and n_i <= cap_i follows the Lagrange condition
// n_i ∝ sqrt(w_i/mu_i), water-filled against the caps.
func (c Chip) Optimize() (Allocation, error) {
	if err := c.Validate(); err != nil {
		return Allocation{}, err
	}
	var (
		best  Allocation
		found bool
	)
	for r := 1; r <= c.MaxR && float64(r) < c.AreaBCE; r++ {
		// Serial bounds: the sequential core must fit the power budget.
		pw, err := c.Law.Power(float64(r))
		if err != nil {
			return Allocation{}, err
		}
		if pw > c.PowerBCE {
			break
		}
		areas, err := waterfill(c, c.AreaBCE-float64(r))
		if err != nil {
			continue
		}
		sp, eff, err := c.speedup(r, areas)
		if err != nil {
			continue
		}
		if !found || sp > best.Speedup {
			best = Allocation{R: r, AreaBCE: areas, Speedup: sp, EffectiveN: eff}
			found = true
		}
	}
	if !found {
		return Allocation{}, errors.New("mix: no feasible allocation")
	}
	return best, nil
}

// waterfill distributes parallel area by the sqrt(w/mu) rule, iteratively
// clamping fabrics at their power/bandwidth caps and redistributing the
// remainder.
func waterfill(c Chip, area float64) ([]float64, error) {
	if area <= 0 {
		return nil, errors.New("mix: no parallel area")
	}
	n := len(c.Kernels)
	alloc := make([]float64, n)
	capped := make([]bool, n)
	remaining := area
	for iter := 0; iter < n+1; iter++ {
		var denom float64
		for i, k := range c.Kernels {
			if !capped[i] {
				denom += math.Sqrt(k.Weight / k.UCore.Mu)
			}
		}
		if denom == 0 {
			break
		}
		progressed := false
		for i, k := range c.Kernels {
			if capped[i] {
				continue
			}
			share := remaining * math.Sqrt(k.Weight/k.UCore.Mu) / denom
			if cap := c.capFor(k); share > cap {
				alloc[i] = cap
				capped[i] = true
				remaining -= cap
				progressed = true
			} else {
				alloc[i] = share
			}
		}
		if !progressed {
			break
		}
		// Recompute uncapped shares against the reduced remainder.
		for i := range alloc {
			if !capped[i] {
				alloc[i] = 0
			}
		}
	}
	for i := range alloc {
		if alloc[i] <= 0 && !capped[i] {
			return nil, fmt.Errorf("mix: kernel %d starved of area", i)
		}
	}
	return alloc, nil
}

// speedup evaluates the allocation: serial phase at sqrt(r), each kernel
// at mu_i x effective n_i, where effective n_i re-applies the active
// power/bandwidth caps.
func (c Chip) speedup(r int, areas []float64) (float64, []float64, error) {
	perfSeq, err := c.Law.Perf(float64(r))
	if err != nil {
		return 0, nil, err
	}
	time := c.SerialFraction / perfSeq
	eff := make([]float64, len(areas))
	for i, k := range c.Kernels {
		n := math.Min(areas[i], c.capFor(k))
		if n <= 0 {
			return 0, nil, fmt.Errorf("mix: kernel %s has no usable fabric", k.Name)
		}
		eff[i] = n
		time += k.Weight / (k.UCore.Mu * n)
	}
	return 1 / time, eff, nil
}

// SingleFabricSpeedup evaluates the alternative of building only kernel
// j's fabric and running every kernel on it — using each kernel's own
// (mu, phi) on that fabric is not possible, so foreign kernels run at the
// CMP baseline rate (BCE cores are always implementable in any fabric's
// place is not assumed; they run at throughput min(area, caps) x 1).
// This quantifies the value of mixing versus specializing.
func (c Chip) SingleFabricSpeedup(j int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if j < 0 || j >= len(c.Kernels) {
		return 0, errors.New("mix: fabric index out of range")
	}
	var best float64
	for r := 1; r <= c.MaxR && float64(r) < c.AreaBCE; r++ {
		pw, err := c.Law.Power(float64(r))
		if err != nil {
			return 0, err
		}
		if pw > c.PowerBCE {
			break
		}
		area := c.AreaBCE - float64(r)
		perfSeq := math.Sqrt(float64(r))
		time := c.SerialFraction / perfSeq
		feasible := true
		for i, k := range c.Kernels {
			var thr float64
			if i == j {
				thr = k.UCore.Mu * math.Min(area, c.capFor(k))
			} else {
				// Foreign kernel: the specialized fabric is useless; fall
				// back to BCE-equivalent throughput under the same budgets.
				n := math.Min(area, c.PowerBCE)
				if !k.ExemptBandwidth {
					n = math.Min(n, k.BandwidthBCE)
				}
				thr = n
			}
			if thr <= 0 {
				feasible = false
				break
			}
			time += k.Weight / thr
		}
		if !feasible {
			continue
		}
		if sp := 1 / time; sp > best {
			best = sp
		}
	}
	if best == 0 {
		return 0, errors.New("mix: no feasible single-fabric design")
	}
	return best, nil
}
