package mix

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
)

// The paper's own example: a custom MMM core alongside a GPU fabric for
// bandwidth-limited FFTs (Section 6.3).
func paperExample() Chip {
	return Chip{
		Law:            pollack.Default(),
		SerialFraction: 0.10,
		Kernels: []Kernel{
			{
				Name: "MMM-ASIC", Weight: 0.45,
				UCore:           bounds.UCore{Mu: 27.4, Phi: 0.79},
				ExemptBandwidth: true,
			},
			{
				Name: "FFT-GPU", Weight: 0.45,
				UCore:        bounds.UCore{Mu: 2.88, Phi: 0.63},
				BandwidthBCE: 57.9,
			},
		},
		AreaBCE:  75, // 22nm
		PowerBCE: 17.3,
		MaxR:     16,
	}
}

func TestValidate(t *testing.T) {
	if err := paperExample().Validate(); err != nil {
		t.Fatal(err)
	}
	c := paperExample()
	c.SerialFraction = 1
	if err := c.Validate(); err == nil {
		t.Error("serial fraction 1 must fail")
	}
	c = paperExample()
	c.Kernels[0].Weight = 0.5
	if err := c.Validate(); err == nil {
		t.Error("weights not summing to 1 must fail")
	}
	c = paperExample()
	c.Kernels = nil
	if err := c.Validate(); err == nil {
		t.Error("no kernels must fail")
	}
	c = paperExample()
	c.Kernels[1].BandwidthBCE = 0
	if err := c.Validate(); err == nil {
		t.Error("missing bandwidth budget must fail")
	}
	c = paperExample()
	c.PowerBCE = 0
	if err := c.Validate(); err == nil {
		t.Error("zero power must fail")
	}
	c = paperExample()
	c.MaxR = 0
	if err := c.Validate(); err == nil {
		t.Error("MaxR=0 must fail")
	}
}

func TestOptimizeProducesFeasibleAllocation(t *testing.T) {
	c := paperExample()
	a, err := c.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if a.R < 1 || a.R > c.MaxR {
		t.Errorf("r = %d out of range", a.R)
	}
	var total float64
	for i, area := range a.AreaBCE {
		if area <= 0 {
			t.Errorf("kernel %d got no area", i)
		}
		total += area
	}
	if total > c.AreaBCE-float64(a.R)+1e-9 {
		t.Errorf("allocated %g BCE exceeds parallel area %g", total, c.AreaBCE-float64(a.R))
	}
	if a.Speedup <= 1 {
		t.Errorf("speedup = %g", a.Speedup)
	}
	// Effective n respects the per-kernel caps.
	for i, k := range c.Kernels {
		if a.EffectiveN[i] > c.capFor(k)+1e-9 {
			t.Errorf("kernel %d effective n %g exceeds cap %g", i, a.EffectiveN[i], c.capFor(k))
		}
	}
}

// The FFT fabric must stop growing at its bandwidth cap; surplus area
// should flow to the exempt MMM fabric.
func TestWaterfillRespectsCaps(t *testing.T) {
	c := paperExample()
	c.AreaBCE = 298 // 11nm: plenty of area
	c.PowerBCE = 34.5
	a, err := c.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	fftCap := c.kernelCapForTest(1)
	if a.EffectiveN[1] > fftCap+1e-9 {
		t.Errorf("FFT fabric %g exceeds bandwidth cap %g", a.EffectiveN[1], fftCap)
	}
	// MMM (exempt, power-capped only) should receive the surplus up to
	// its power cap.
	mmmCap := c.kernelCapForTest(0)
	if a.EffectiveN[0] < 0.9*math.Min(mmmCap, c.AreaBCE-float64(a.R)-fftCap) {
		t.Errorf("MMM fabric %g did not absorb surplus (cap %g)", a.EffectiveN[0], mmmCap)
	}
}

// Expose capFor for tests without exporting it generally.
func (c Chip) kernelCapForTest(i int) float64 { return c.capFor(c.Kernels[i]) }

// Mixing beats specializing when the workload genuinely mixes kernels.
func TestMixBeatsSingleFabric(t *testing.T) {
	c := paperExample()
	mixAlloc, err := c.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	for j := range c.Kernels {
		single, err := c.SingleFabricSpeedup(j)
		if err != nil {
			t.Fatal(err)
		}
		if single >= mixAlloc.Speedup {
			t.Errorf("single fabric %d (%g) should not beat the mix (%g)",
				j, single, mixAlloc.Speedup)
		}
	}
}

func TestSingleFabricValidation(t *testing.T) {
	c := paperExample()
	if _, err := c.SingleFabricSpeedup(-1); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := c.SingleFabricSpeedup(5); err == nil {
		t.Error("out-of-range index must fail")
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	c := paperExample()
	c.AreaBCE = 1 // no room for core + fabric
	if _, err := c.Optimize(); err == nil {
		t.Error("area=1 must be infeasible")
	}
}

// Allocation follows the sqrt(w/mu) rule when no caps bind: the kernel
// with lower mu gets more area (it needs it more).
func TestAllocationProportions(t *testing.T) {
	c := Chip{
		Law:            pollack.Default(),
		SerialFraction: 0.2,
		Kernels: []Kernel{
			{Name: "fast", Weight: 0.4, UCore: bounds.UCore{Mu: 16, Phi: 0.5}, BandwidthBCE: 1e9},
			{Name: "slow", Weight: 0.4, UCore: bounds.UCore{Mu: 1, Phi: 0.5}, BandwidthBCE: 1e9},
		},
		AreaBCE:  40,
		PowerBCE: 1e9, // no power cap
		MaxR:     4,
	}
	a, err := c.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// n_slow/n_fast = sqrt(mu_fast/mu_slow) = 4.
	ratio := a.AreaBCE[1] / a.AreaBCE[0]
	if math.Abs(ratio-4) > 1e-6 {
		t.Errorf("area ratio = %g, want 4 (sqrt rule)", ratio)
	}
}

// A serial-only-power-feasible chip: sequential power bound caps r.
func TestSerialPowerBoundsR(t *testing.T) {
	c := paperExample()
	c.PowerBCE = 2 // r^0.875 <= 2 -> r <= 2
	a, err := c.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if a.R > 2 {
		t.Errorf("r = %d violates serial power bound", a.R)
	}
}
