// Package baseline regenerates the paper's Section 5 measurement results:
// the FFT performance sweep of Figure 2 (raw and area-normalized), the
// power-breakdown stacks of Figure 3, the energy-efficiency and bandwidth
// plots of Figure 4, and the MMM/Black-Scholes summary of Table 4 together
// with the derived U-core parameters of Table 5.
package baseline

import (
	"fmt"
	"sort"

	"github.com/calcm/heterosim/internal/device"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/sim"
	"github.com/calcm/heterosim/internal/ucore"
)

// FFTDevices lists the devices with FFT implementations, in figure order.
var FFTDevices = []paper.DeviceID{paper.CoreI7, paper.LX760, paper.GTX285, paper.GTX480, paper.ASIC}

// FFT sweep bounds (Figure 2 plots log2 N from 4 to 20).
const (
	FFTSweepLo = 4
	FFTSweepHi = 20
)

// Figure2 is the FFT performance dataset: pseudo-GFLOP/s per device per
// size, raw and normalized to 40nm-equivalent area.
type Figure2 struct {
	Log2N      []int
	Raw        map[paper.DeviceID][]float64 // pseudo-GFLOP/s
	Normalized map[paper.DeviceID][]float64 // pseudo-GFLOP/s per mm² (40nm)
}

// Figure3 is the power-breakdown dataset: one stack per (device, size).
type Figure3 struct {
	Log2N  []int
	Stacks map[paper.DeviceID][]device.PowerBreakdown
}

// Figure4 is the efficiency + bandwidth dataset.
type Figure4 struct {
	Log2N      []int
	Efficiency map[paper.DeviceID][]float64 // pseudo-GFLOPs per joule
	// Bandwidth series for the GPUs the paper instruments.
	CompulsoryGTX285 []float64
	MeasuredGTX285   []float64
	CompulsoryGTX480 []float64
}

// BuildFigure2 sweeps the FFT on every FFT-capable device, executing and
// verifying the real kernel at each size.
func BuildFigure2(s *sim.Simulator) (Figure2, error) {
	fig := Figure2{
		Raw:        make(map[paper.DeviceID][]float64),
		Normalized: make(map[paper.DeviceID][]float64),
	}
	for l2 := FFTSweepLo; l2 <= FFTSweepHi; l2++ {
		fig.Log2N = append(fig.Log2N, l2)
	}
	sweeps, err := s.SweepAllFFT(FFTSweepLo, FFTSweepHi, true)
	if err != nil {
		return Figure2{}, fmt.Errorf("baseline: FFT sweep: %w", err)
	}
	for _, id := range FFTDevices {
		d, err := device.ByID(id)
		if err != nil {
			return Figure2{}, err
		}
		for _, rec := range sweeps[id] {
			fig.Raw[id] = append(fig.Raw[id], rec.Throughput)
			area, err := normalizedFFTAreaMM2(d, rec.Size)
			if err != nil {
				return Figure2{}, err
			}
			fig.Normalized[id] = append(fig.Normalized[id], rec.Throughput/area)
		}
	}
	return fig, nil
}

// normalizedFFTAreaMM2 returns the 40nm-equivalent area the FFT design
// occupies on the device. ASIC cores have per-anchor-size areas; between
// anchors the nearest anchor's area is used.
func normalizedFFTAreaMM2(d device.Device, n int) (float64, error) {
	w := nearestFFTAnchor(n)
	native, err := device.NativeAreaMM2(d, w)
	if err != nil {
		return 0, err
	}
	return itrs.NormalizeAreaTo40nm(native, d.Table2.Nm)
}

func nearestFFTAnchor(n int) paper.WorkloadID {
	switch {
	case n <= 256:
		return paper.FFT64
	case n <= 4096:
		return paper.FFT1024
	default:
		return paper.FFT16384
	}
}

// BuildFigure3 collects the simulated power decomposition for every
// FFT-capable device across the sweep.
func BuildFigure3(s *sim.Simulator) (Figure3, error) {
	fig := Figure3{Stacks: make(map[paper.DeviceID][]device.PowerBreakdown)}
	for l2 := FFTSweepLo; l2 <= FFTSweepHi; l2++ {
		fig.Log2N = append(fig.Log2N, l2)
	}
	sweeps, err := s.SweepAllFFT(FFTSweepLo, FFTSweepHi, false)
	if err != nil {
		return Figure3{}, err
	}
	for _, id := range FFTDevices {
		for _, rec := range sweeps[id] {
			fig.Stacks[id] = append(fig.Stacks[id], rec.Power)
		}
	}
	return fig, nil
}

// BuildFigure4 collects energy efficiency for every device and the
// bandwidth-verification series for the GPUs.
func BuildFigure4(s *sim.Simulator) (Figure4, error) {
	fig := Figure4{Efficiency: make(map[paper.DeviceID][]float64)}
	for l2 := FFTSweepLo; l2 <= FFTSweepHi; l2++ {
		fig.Log2N = append(fig.Log2N, l2)
	}
	sweeps, err := s.SweepAllFFT(FFTSweepLo, FFTSweepHi, false)
	if err != nil {
		return Figure4{}, err
	}
	for _, id := range FFTDevices {
		for _, rec := range sweeps[id] {
			gflops := rec.Counts.FLOPs / 1e9
			fig.Efficiency[id] = append(fig.Efficiency[id], gflops/rec.EnergyJ())
			switch id {
			case paper.GTX285:
				fig.CompulsoryGTX285 = append(fig.CompulsoryGTX285, rec.CompulsoryGBs)
				fig.MeasuredGTX285 = append(fig.MeasuredGTX285, rec.MeasuredGBs)
			case paper.GTX480:
				fig.CompulsoryGTX480 = append(fig.CompulsoryGTX480, rec.CompulsoryGBs)
			}
		}
	}
	return fig, nil
}

// Table4Row mirrors the published Table 4 structure with regenerated
// values from the measurement pipeline.
type Table4Row struct {
	Device     paper.DeviceID
	Throughput float64
	PerMM2     float64
	PerJoule   float64
}

// BuildTable4 regenerates the MMM and Black-Scholes summary from a full
// measurement-database build.
func BuildTable4(rig *measure.Rig) (map[paper.WorkloadID][]Table4Row, error) {
	db, err := rig.BuildDatabase()
	if err != nil {
		return nil, err
	}
	out := make(map[paper.WorkloadID][]Table4Row)
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		for _, id := range paper.AllDevices {
			m, ok := db.Lookup(id, w)
			if !ok {
				continue
			}
			perMM2, err := m.PerMM2()
			if err != nil {
				return nil, err
			}
			perJ, err := m.PerJoule()
			if err != nil {
				return nil, err
			}
			out[w] = append(out[w], Table4Row{
				Device: id, Throughput: m.Throughput, PerMM2: perMM2, PerJoule: perJ,
			})
		}
	}
	return out, nil
}

// Table5Cell is one regenerated (device, workload) parameter pair plus
// the published reference for comparison.
type Table5Cell struct {
	Device    paper.DeviceID
	Workload  paper.WorkloadID
	Derived   ucore.Params
	Published ucore.Params
	HasRef    bool
}

// BuildTable5 runs the full calibration pipeline and pairs every derived
// cell with its published value, sorted by device then workload order.
func BuildTable5(rig *measure.Rig) ([]Table5Cell, error) {
	db, err := rig.BuildDatabase()
	if err != nil {
		return nil, err
	}
	derived, err := db.DeriveTable5()
	if err != nil {
		return nil, err
	}
	var cells []Table5Cell
	for dev, row := range derived {
		for w, p := range row {
			cell := Table5Cell{Device: dev, Workload: w, Derived: p}
			if pub, ok := ucore.PublishedParams(dev, w); ok {
				cell.Published = pub
				cell.HasRef = true
			}
			cells = append(cells, cell)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		di, dj := deviceRank(cells[i].Device), deviceRank(cells[j].Device)
		if di != dj {
			return di < dj
		}
		return workloadRank(cells[i].Workload) < workloadRank(cells[j].Workload)
	})
	return cells, nil
}

func deviceRank(d paper.DeviceID) int {
	for i, id := range paper.AllDevices {
		if id == d {
			return i
		}
	}
	return len(paper.AllDevices)
}

func workloadRank(w paper.WorkloadID) int {
	for i, id := range paper.AllWorkloads {
		if id == w {
			return i
		}
	}
	return len(paper.AllWorkloads)
}
