package baseline

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/measure"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/sim"
)

func newSim(t *testing.T) *sim.Simulator {
	t.Helper()
	s, err := sim.New()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildFigure2(t *testing.T) {
	fig, err := BuildFigure2(newSim(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Log2N) != 17 {
		t.Fatalf("sizes = %d, want 17 (2^4..2^20)", len(fig.Log2N))
	}
	for _, id := range FFTDevices {
		if len(fig.Raw[id]) != 17 || len(fig.Normalized[id]) != 17 {
			t.Errorf("%s: incomplete series", id)
		}
	}
	// Paper: ASIC ~100x over flexible devices and ~1000x over the i7 in
	// area-normalized performance (at the anchor sizes).
	idx := 10 - 4 // N = 1024
	asic := fig.Normalized[paper.ASIC][idx]
	i7 := fig.Normalized[paper.CoreI7][idx]
	gtx := fig.Normalized[paper.GTX285][idx]
	if r := asic / i7; r < 300 || r > 3000 {
		t.Errorf("ASIC/i7 normalized = %g, want ~1000x ballpark", r)
	}
	if r := asic / gtx; r < 50 || r > 500 {
		t.Errorf("ASIC/GTX285 normalized = %g, want ~100x ballpark", r)
	}
	// Raw i7 curve matches the published anchors where defined.
	for i, l2 := range fig.Log2N {
		if want, ok := paper.CoreI7FFTAnchors[1<<uint(l2)]; ok {
			if got := fig.Raw[paper.CoreI7][i]; math.Abs(got-want) > 1e-9 {
				t.Errorf("i7 raw at 2^%d = %g, want %g", l2, got, want)
			}
		}
	}
}

func TestBuildFigure3(t *testing.T) {
	fig, err := BuildFigure3(newSim(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range FFTDevices {
		stacks := fig.Stacks[id]
		if len(stacks) != len(fig.Log2N) {
			t.Fatalf("%s: %d stacks", id, len(stacks))
		}
		for i, st := range stacks {
			if st.Total() <= 0 {
				t.Errorf("%s stack %d non-positive total", id, i)
			}
			if st.Compute() > st.Total() {
				t.Errorf("%s stack %d compute exceeds total", id, i)
			}
		}
	}
	// GPUs dissipate substantial uncore power; ASIC does not.
	gtx := fig.Stacks[paper.GTX285][6]
	if gtx.UncoreStatic+gtx.UncoreDynamic < 20 {
		t.Error("GTX285 uncore power should be substantial")
	}
	asic := fig.Stacks[paper.ASIC][6]
	if asic.UncoreStatic+asic.UncoreDynamic > 1e-6 {
		t.Error("ASIC uncore power should be ~0")
	}
}

func TestBuildFigure4(t *testing.T) {
	fig, err := BuildFigure4(newSim(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ASIC ~two orders of magnitude over the i7 in energy
	// efficiency and ~10x over GPUs/FPGA.
	idx := 10 - 4
	asic := fig.Efficiency[paper.ASIC][idx]
	i7 := fig.Efficiency[paper.CoreI7][idx]
	gtx := fig.Efficiency[paper.GTX285][idx]
	if r := asic / i7; r < 30 || r > 1000 {
		t.Errorf("ASIC/i7 efficiency = %g, want ~100x ballpark", r)
	}
	if r := asic / gtx; r < 3 || r > 100 {
		t.Errorf("ASIC/GTX efficiency = %g, want ~10x ballpark", r)
	}
	// Bandwidth verification series: measured == compulsory below the
	// knee (2^12), diverges above, and never hits the 159 GB/s peak.
	if len(fig.MeasuredGTX285) != len(fig.Log2N) {
		t.Fatal("incomplete GTX285 bandwidth series")
	}
	for i, l2 := range fig.Log2N {
		comp, meas := fig.CompulsoryGTX285[i], fig.MeasuredGTX285[i]
		if l2 <= 12 && math.Abs(comp-meas) > 1e-9 {
			t.Errorf("2^%d: measured %g != compulsory %g below knee", l2, meas, comp)
		}
		if l2 > 12 && meas <= comp {
			t.Errorf("2^%d: measured %g should exceed compulsory %g above knee", l2, meas, comp)
		}
		if meas >= 159 {
			t.Errorf("2^%d: measured %g must stay below peak", l2, meas)
		}
	}
	if len(fig.CompulsoryGTX480) != len(fig.Log2N) {
		t.Error("missing GTX480 compulsory series")
	}
}

func TestBuildTable4MatchesPublished(t *testing.T) {
	rig, err := measure.IdealRig()
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTable4(rig)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		rows := table[w]
		if len(rows) != len(paper.Table4[w]) {
			t.Errorf("%s: %d rows, want %d", w, len(rows), len(paper.Table4[w]))
		}
		for _, row := range rows {
			want := paper.Table4[w][row.Device]
			if math.Abs(row.Throughput/want.Throughput-1) > 1e-9 {
				t.Errorf("%s/%s throughput = %g, want %g", row.Device, w, row.Throughput, want.Throughput)
			}
			if math.Abs(row.PerMM2/want.PerMM2-1) > 0.02 {
				t.Errorf("%s/%s per-mm² = %g, want %g", row.Device, w, row.PerMM2, want.PerMM2)
			}
			if math.Abs(row.PerJoule/want.PerJoule-1) > 0.02 {
				t.Errorf("%s/%s per-joule = %g, want %g", row.Device, w, row.PerJoule, want.PerJoule)
			}
		}
	}
}

func TestBuildTable5MatchesPublished(t *testing.T) {
	rig, err := measure.IdealRig()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := BuildTable5(rig)
	if err != nil {
		t.Fatal(err)
	}
	// Every published cell appears, with matching values.
	published := 0
	for _, c := range cells {
		if !c.HasRef {
			t.Errorf("%s/%s derived without published reference", c.Device, c.Workload)
			continue
		}
		published++
		if math.Abs(c.Derived.Mu/c.Published.Mu-1) > 0.02 {
			t.Errorf("%s/%s mu = %g, published %g", c.Device, c.Workload, c.Derived.Mu, c.Published.Mu)
		}
		if math.Abs(c.Derived.Phi/c.Published.Phi-1) > 0.02 {
			t.Errorf("%s/%s phi = %g, published %g", c.Device, c.Workload, c.Derived.Phi, c.Published.Phi)
		}
	}
	want := 0
	for _, row := range paper.Table5 {
		want += len(row)
	}
	if published != want {
		t.Errorf("checked %d cells, want %d", published, want)
	}
	// Sorted by device then workload.
	for i := 1; i < len(cells); i++ {
		di, dj := deviceRank(cells[i-1].Device), deviceRank(cells[i].Device)
		if di > dj {
			t.Errorf("cells out of device order at %d", i)
		}
	}
}
