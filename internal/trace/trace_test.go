package trace

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/mix"
	"github.com/calcm/heterosim/internal/pollack"
)

func testChip() Chip {
	return Chip{
		Law: pollack.Default(),
		R:   4,
		Fabrics: map[string]Fabric{
			"mmm": {UCore: bounds.UCore{Mu: 27.4, Phi: 0.79}, AreaBCE: 20},
			"fft": {UCore: bounds.UCore{Mu: 2.88, Phi: 0.63}, AreaBCE: 30},
		},
	}
}

func TestChipValidate(t *testing.T) {
	if err := testChip().Validate(); err != nil {
		t.Fatal(err)
	}
	c := testChip()
	c.R = 0.5
	if err := c.Validate(); err == nil {
		t.Error("r < 1 must fail")
	}
	c = testChip()
	c.IdleFraction = 2
	if err := c.Validate(); err == nil {
		t.Error("idle fraction > 1 must fail")
	}
	c = testChip()
	c.Fabrics = nil
	if err := c.Validate(); err == nil {
		t.Error("no fabrics must fail")
	}
	c = testChip()
	c.Fabrics["bad"] = Fabric{UCore: bounds.UCore{Mu: -1, Phi: 1}, AreaBCE: 5}
	if err := c.Validate(); err == nil {
		t.Error("invalid U-core must fail")
	}
}

func TestReplaySingleJobArithmetic(t *testing.T) {
	c := testChip()
	// Serial 2 BCE-seconds at perf sqrt(4)=2 -> 1 s; power r^0.875 = 3.36.
	// Parallel 54.8 BCE-seconds on mmm at 27.4*20 = 548 -> 0.1 s;
	// power 0.79*20 = 15.8.
	jobs := []Job{{Kernel: "mmm", Serial: 2, Work: 54.8}}
	res, err := Replay(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Seconds-1.1) > 1e-12 {
		t.Errorf("seconds = %g, want 1.1", res.Seconds)
	}
	wantE := 1*math.Pow(4, 0.875) + 0.1*15.8
	if math.Abs(res.EnergyBCEs-wantE) > 1e-9 {
		t.Errorf("energy = %g, want %g", res.EnergyBCEs, wantE)
	}
	if res.SerialBusy != 1 || math.Abs(res.FabricBusy["mmm"]-0.1) > 1e-12 {
		t.Errorf("busy accounting wrong: %+v", res)
	}
	if res.FabricBusy["fft"] != 0 {
		t.Error("fft fabric should be idle")
	}
	// Speedup vs one BCE: baseline 56.8 s over 1.1 s.
	sp, err := Speedup(jobs, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-56.8/1.1) > 1e-9 {
		t.Errorf("speedup = %g", sp)
	}
}

func TestIdleFractionCostsEnergyNotTime(t *testing.T) {
	gated := testChip()
	leaky := testChip()
	leaky.IdleFraction = 0.3
	jobs := []Job{{Kernel: "fft", Serial: 1, Work: 10}}
	rg, err := Replay(jobs, gated)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Replay(jobs, leaky)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Seconds != rg.Seconds {
		t.Error("idle power must not change timing")
	}
	if rl.EnergyBCEs <= rg.EnergyBCEs {
		t.Errorf("leaky idle should cost energy: %g vs %g", rl.EnergyBCEs, rg.EnergyBCEs)
	}
}

func TestReplayValidation(t *testing.T) {
	c := testChip()
	if _, err := Replay(nil, c); err == nil {
		t.Error("no jobs must fail")
	}
	if _, err := Replay([]Job{{Kernel: "gpu", Work: 1}}, c); err == nil {
		t.Error("unknown fabric must fail")
	}
	if _, err := Replay([]Job{{Kernel: "mmm", Work: -1}}, c); err == nil {
		t.Error("negative work must fail")
	}
	if _, err := Replay([]Job{{Kernel: "mmm"}}, c); err == nil {
		t.Error("all-empty jobs must fail")
	}
}

func TestGenerateDeterministicAndMixed(t *testing.T) {
	mixW := map[string]float64{"mmm": 1, "fft": 3}
	a, err := Generate(2000, mixW, 5, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(2000, mixW, 5, 0.1, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
	counts := map[string]int{}
	for _, j := range a {
		counts[j.Kernel]++
		if j.Work < 0 || j.Serial < 0 {
			t.Fatal("negative work generated")
		}
	}
	// fft should dominate ~3:1.
	ratio := float64(counts["fft"]) / float64(counts["mmm"])
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("kernel mix ratio = %g, want ~3", ratio)
	}
	if _, err := Generate(0, mixW, 5, 0.1, 9); err == nil {
		t.Error("zero count must fail")
	}
	if _, err := Generate(5, nil, 5, 0.1, 9); err == nil {
		t.Error("empty mix must fail")
	}
	if _, err := Generate(5, map[string]float64{"x": -1}, 5, 0.1, 9); err == nil {
		t.Error("negative weight must fail")
	}
}

// The fluid allocator (package mix) and the trace replayer must agree:
// replaying a large balanced trace on the optimizer's allocation yields
// the speedup the fluid model predicted, within sampling noise.
func TestReplayMatchesFluidMixModel(t *testing.T) {
	chipProblem := mix.Chip{
		Law:            pollack.Default(),
		SerialFraction: 0.10,
		Kernels: []mix.Kernel{
			{Name: "mmm", Weight: 0.45, UCore: bounds.UCore{Mu: 27.4, Phi: 0.79}, ExemptBandwidth: true},
			{Name: "fft", Weight: 0.45, UCore: bounds.UCore{Mu: 2.88, Phi: 0.63}, BandwidthBCE: 1e9},
		},
		AreaBCE:  75,
		PowerBCE: 1e9, // uncapped: the trace replayer has no power bound
		MaxR:     16,
	}
	alloc, err := chipProblem.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// Build the replay chip from the allocation.
	chip := Chip{
		Law: pollack.Default(),
		R:   float64(alloc.R),
		Fabrics: map[string]Fabric{
			"mmm": {UCore: chipProblem.Kernels[0].UCore, AreaBCE: alloc.AreaBCE[0]},
			"fft": {UCore: chipProblem.Kernels[1].UCore, AreaBCE: alloc.AreaBCE[1]},
		},
	}
	// A trace matching the fluid weights exactly: per unit of baseline
	// time, 0.1 serial, 0.45 mmm, 0.45 fft.
	var jobs []Job
	for i := 0; i < 200; i++ {
		jobs = append(jobs,
			Job{Kernel: "mmm", Serial: 0.05, Work: 0.45},
			Job{Kernel: "fft", Serial: 0.05, Work: 0.45},
		)
	}
	res, err := Replay(jobs, chip)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Speedup(jobs, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp/alloc.Speedup-1) > 1e-9 {
		t.Errorf("replay speedup %g != fluid model %g", sp, alloc.Speedup)
	}
}

// TestReplayHandComputedStreams checks the full Result surface —
// seconds, energy, per-fabric busy time, utilization, average power —
// against streams small enough to work out by hand on a two-fabric
// chip: R=4 (seq perf sqrt(4)=2, seq power 4^0.875), fabric A with
// mu=2 phi=0.5 over 10 BCE (throughput 20, active power 5), fabric B
// with mu=4 phi=1 over 5 BCE (throughput 20, active power 5).
func TestReplayHandComputedStreams(t *testing.T) {
	seqPower := math.Pow(4, 0.875)
	newChip := func(idle float64) Chip {
		return Chip{
			Law:          pollack.Default(),
			R:            4,
			IdleFraction: idle,
			Fabrics: map[string]Fabric{
				"A": {UCore: bounds.UCore{Mu: 2, Phi: 0.5}, AreaBCE: 10},
				"B": {UCore: bounds.UCore{Mu: 4, Phi: 1}, AreaBCE: 5},
			},
		}
	}
	cases := []struct {
		name       string
		idle       float64
		jobs       []Job
		seconds    float64
		energy     float64
		serialBusy float64
		busyA      float64
		busyB      float64
		jobsRun    int
	}{
		{
			// job1 serial: 2 BCE-s at perf 2 -> 1 s, both fabrics leak
			// 0.2*(5+5)=2 alongside the core. job1 parallel: 40 BCE-s on
			// A's throughput 20 -> 2 s at power 5 + 0.2*5 (B leaks) = 6.
			// job2: 12 BCE-s on B -> 0.6 s at 5 + 0.2*5 (A leaks) = 6.
			name: "two fabrics, leaky idle",
			idle: 0.2,
			jobs: []Job{
				{Kernel: "A", Serial: 2, Work: 40},
				{Kernel: "B", Work: 12},
			},
			seconds:    3.6,
			energy:     1*(seqPower+2) + 2*6 + 0.6*6,
			serialBusy: 1,
			busyA:      2,
			busyB:      0.6,
			jobsRun:    2,
		},
		{
			// Perfect gating (the paper's assumption): same timing, idle
			// terms vanish from every phase.
			name: "two fabrics, perfect gating",
			idle: 0,
			jobs: []Job{
				{Kernel: "A", Serial: 2, Work: 40},
				{Kernel: "B", Work: 12},
			},
			seconds:    3.6,
			energy:     1*seqPower + 2*5 + 0.6*5,
			serialBusy: 1,
			busyA:      2,
			busyB:      0.6,
			jobsRun:    2,
		},
		{
			// Serial-only stream: fabrics never fire but still leak a
			// quarter of their combined 10 BCE active power for the whole
			// (3+1)/2 = 2 s run.
			name: "serial-only stream, leaky idle",
			idle: 0.25,
			jobs: []Job{
				{Kernel: "A", Serial: 3},
				{Kernel: "B", Serial: 1},
			},
			seconds:    2,
			energy:     2 * (seqPower + 2.5),
			serialBusy: 2,
			jobsRun:    2,
		},
		{
			// Empty jobs are skipped entirely: no time, no energy, not
			// counted in Jobs.
			name: "empty job skipped",
			idle: 0.2,
			jobs: []Job{
				{Kernel: "A", Work: 20},
				{Kernel: "B"},
			},
			seconds:    1,
			energy:     1 * 6,
			serialBusy: 0,
			busyA:      1,
			jobsRun:    1,
		},
	}
	const tol = 1e-12
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Replay(c.jobs, newChip(c.idle))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Seconds-c.seconds) > tol {
				t.Errorf("Seconds = %g, want %g", res.Seconds, c.seconds)
			}
			if math.Abs(res.EnergyBCEs-c.energy) > 1e-9 {
				t.Errorf("EnergyBCEs = %g, want %g", res.EnergyBCEs, c.energy)
			}
			if math.Abs(res.SerialBusy-c.serialBusy) > tol {
				t.Errorf("SerialBusy = %g, want %g", res.SerialBusy, c.serialBusy)
			}
			if math.Abs(res.FabricBusy["A"]-c.busyA) > tol ||
				math.Abs(res.FabricBusy["B"]-c.busyB) > tol {
				t.Errorf("FabricBusy = %v, want A=%g B=%g", res.FabricBusy, c.busyA, c.busyB)
			}
			if math.Abs(res.Utilization["A"]-c.busyA/c.seconds) > tol ||
				math.Abs(res.Utilization["B"]-c.busyB/c.seconds) > tol {
				t.Errorf("Utilization = %v, want A=%g B=%g",
					res.Utilization, c.busyA/c.seconds, c.busyB/c.seconds)
			}
			if want := c.energy / c.seconds; math.Abs(res.AvgPowerBCE-want) > 1e-9 {
				t.Errorf("AvgPowerBCE = %g, want %g", res.AvgPowerBCE, want)
			}
			if res.Jobs != c.jobsRun {
				t.Errorf("Jobs = %d, want %d", res.Jobs, c.jobsRun)
			}
		})
	}
}

// Dark-silicon bookkeeping: average power stays far below the sum of all
// fabrics' peak power because only one is on at a time.
func TestAveragePowerReflectsGating(t *testing.T) {
	c := testChip()
	jobs, err := Generate(500, map[string]float64{"mmm": 1, "fft": 1}, 2, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	peakSum := 27.4*0 + 0.79*20 + 0.63*30 // both fabrics active would be 34.7
	if res.AvgPowerBCE >= peakSum {
		t.Errorf("average power %g should sit below all-fabrics-on %g", res.AvgPowerBCE, peakSum)
	}
	// Utilizations sum to <= 1 (plus serial time).
	var u float64
	for _, v := range res.Utilization {
		u += v
	}
	if u > 1+1e-9 {
		t.Errorf("fabric utilizations sum to %g > 1", u)
	}
}
