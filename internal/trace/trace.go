// Package trace replays synthetic kernel-invocation streams on a
// mixed-fabric chip, simulating the paper's Section 6.3 proposal in the
// time domain: several U-core fabrics share one die, each is powered
// only while a job of its kind runs, and the sequential core handles the
// serial prologue of every job. Where package mix answers "how should I
// split the area?" with a fluid model, trace answers "what actually
// happens over a concrete run" — per-fabric busy time, utilization, and
// energy — and the two must agree on balanced streams (tested).
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/pollack"
)

// Job is one kernel invocation: a serial prologue (BCE-seconds executed
// on the sequential core) followed by a parallel body (BCE-seconds
// executed on the job's fabric).
type Job struct {
	Kernel string
	Serial float64
	Work   float64
}

// Fabric is one on-die U-core pool.
type Fabric struct {
	UCore   bounds.UCore
	AreaBCE float64
}

// Chip is the replay target.
type Chip struct {
	Law pollack.Law
	R   float64 // sequential core size (BCE)
	// IdleFraction is the power an idle fabric draws relative to its
	// active power (0 = perfect gating, the paper's assumption).
	IdleFraction float64
	Fabrics      map[string]Fabric
}

// Validate reports an error for malformed chips.
func (c Chip) Validate() error {
	if c.R < 1 || math.IsNaN(c.R) {
		return errors.New("trace: sequential core must be >= 1 BCE")
	}
	if c.IdleFraction < 0 || c.IdleFraction > 1 {
		return errors.New("trace: idle fraction must be in [0, 1]")
	}
	if len(c.Fabrics) == 0 {
		return errors.New("trace: at least one fabric required")
	}
	for name, f := range c.Fabrics {
		if err := f.UCore.Validate(); err != nil {
			return fmt.Errorf("trace: fabric %s: %w", name, err)
		}
		if f.AreaBCE <= 0 || math.IsNaN(f.AreaBCE) {
			return fmt.Errorf("trace: fabric %s needs positive area", name)
		}
	}
	return nil
}

// Result summarizes one replay.
type Result struct {
	Seconds     float64            // total wall time
	EnergyBCEs  float64            // energy in BCE-power-seconds
	SerialBusy  float64            // sequential core active seconds
	FabricBusy  map[string]float64 // active seconds per fabric
	Utilization map[string]float64 // busy / total per fabric
	AvgPowerBCE float64            // EnergyBCEs / Seconds
	Jobs        int
}

// Replay executes the jobs in order. Jobs run serially (the paper's
// single-program model): the sequential core executes the prologue at
// sqrt(r) while every fabric idles, then the job's fabric executes the
// body at mu x area while the core and the other fabrics idle (gated to
// IdleFraction of their active power).
func Replay(jobs []Job, c Chip) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if len(jobs) == 0 {
		return Result{}, errors.New("trace: no jobs")
	}
	seqPerf, err := c.Law.Perf(c.R)
	if err != nil {
		return Result{}, err
	}
	seqPower, err := c.Law.Power(c.R)
	if err != nil {
		return Result{}, err
	}
	idleFabricPower := func(except string) float64 {
		var p float64
		for name, f := range c.Fabrics {
			if name == except {
				continue
			}
			p += c.IdleFraction * f.UCore.Phi * f.AreaBCE
		}
		return p
	}
	res := Result{
		FabricBusy:  make(map[string]float64, len(c.Fabrics)),
		Utilization: make(map[string]float64, len(c.Fabrics)),
	}
	for i, j := range jobs {
		if j.Serial < 0 || j.Work < 0 || math.IsNaN(j.Serial) || math.IsNaN(j.Work) {
			return Result{}, fmt.Errorf("trace: job %d has negative work", i)
		}
		if j.Serial == 0 && j.Work == 0 {
			continue
		}
		if j.Serial > 0 {
			dt := j.Serial / seqPerf
			res.Seconds += dt
			res.SerialBusy += dt
			res.EnergyBCEs += dt * (seqPower + idleFabricPower(""))
		}
		if j.Work > 0 {
			f, ok := c.Fabrics[j.Kernel]
			if !ok {
				return Result{}, fmt.Errorf("trace: job %d targets unknown fabric %q", i, j.Kernel)
			}
			thr := f.UCore.Mu * f.AreaBCE
			dt := j.Work / thr
			res.Seconds += dt
			res.FabricBusy[j.Kernel] += dt
			// Active fabric at full power, sequential core gated off,
			// other fabrics at idle power.
			res.EnergyBCEs += dt * (f.UCore.Phi*f.AreaBCE + idleFabricPower(j.Kernel))
		}
		res.Jobs++
	}
	if res.Seconds == 0 {
		return Result{}, errors.New("trace: all jobs were empty")
	}
	for name := range c.Fabrics {
		res.Utilization[name] = res.FabricBusy[name] / res.Seconds
	}
	res.AvgPowerBCE = res.EnergyBCEs / res.Seconds
	return res, nil
}

// BaselineSeconds returns the time one BCE core would need for the whole
// trace (serial and parallel work alike) — the denominator for speedup.
func BaselineSeconds(jobs []Job) float64 {
	var s float64
	for _, j := range jobs {
		s += j.Serial + j.Work
	}
	return s
}

// Speedup returns baseline time over replay time.
func Speedup(jobs []Job, res Result) (float64, error) {
	if res.Seconds <= 0 {
		return 0, errors.New("trace: empty result")
	}
	return BaselineSeconds(jobs) / res.Seconds, nil
}

// Generate builds a deterministic random trace: count jobs whose kernels
// are drawn according to mix (weights need not sum to 1), each with
// exponentially distributed parallel work around meanWork and a serial
// prologue of serialFraction x meanWork on average.
func Generate(count int, mix map[string]float64, meanWork, serialFraction float64, seed int64) ([]Job, error) {
	if count <= 0 {
		return nil, errors.New("trace: count must be positive")
	}
	if meanWork <= 0 || serialFraction < 0 {
		return nil, errors.New("trace: meanWork must be positive and serialFraction non-negative")
	}
	if len(mix) == 0 {
		return nil, errors.New("trace: empty kernel mix")
	}
	type entry struct {
		name   string
		weight float64
	}
	var entries []entry
	var total float64
	for name, w := range mix {
		if w <= 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("trace: kernel %s needs positive weight", name)
		}
		entries = append(entries, entry{name, w})
		total += w
	}
	// Deterministic iteration order for reproducibility.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].name > entries[j].name; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, count)
	for i := range jobs {
		pick := rng.Float64() * total
		name := entries[len(entries)-1].name
		for _, e := range entries {
			if pick < e.weight {
				name = e.name
				break
			}
			pick -= e.weight
		}
		jobs[i] = Job{
			Kernel: name,
			Work:   rng.ExpFloat64() * meanWork,
			Serial: rng.ExpFloat64() * meanWork * serialFraction,
		}
	}
	return jobs, nil
}
