// Package roofline implements the roofline performance model used to
// position the paper's workloads against device limits: attainable
// throughput is the minimum of peak compute and arithmetic intensity
// times peak memory bandwidth. The measurement rig's compute-bound
// verification (Section 5) is a roofline statement — a kernel is
// compute-bound exactly when its intensity puts it right of the ridge.
package roofline

import (
	"errors"
	"fmt"
	"math"
)

// Device is a roofline machine: peak compute throughput (work units/s,
// e.g. GFLOP/s) and peak off-chip bandwidth (bytes/s in the same scale,
// e.g. GB/s).
type Device struct {
	Name          string
	PeakCompute   float64
	PeakBandwidth float64
}

// Validate reports an error for non-physical parameters.
func (d Device) Validate() error {
	if d.PeakCompute <= 0 || math.IsNaN(d.PeakCompute) {
		return errors.New("roofline: peak compute must be positive")
	}
	if d.PeakBandwidth <= 0 || math.IsNaN(d.PeakBandwidth) {
		return errors.New("roofline: peak bandwidth must be positive")
	}
	return nil
}

// Ridge returns the arithmetic intensity (work per byte) at which the
// compute and bandwidth ceilings meet. Kernels with intensity above the
// ridge are compute-bound on this device.
func (d Device) Ridge() (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	return d.PeakCompute / d.PeakBandwidth, nil
}

// Attainable returns the roofline ceiling at arithmetic intensity ai:
// min(PeakCompute, ai x PeakBandwidth).
func (d Device) Attainable(ai float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if ai <= 0 || math.IsNaN(ai) {
		return 0, errors.New("roofline: arithmetic intensity must be positive")
	}
	return math.Min(d.PeakCompute, ai*d.PeakBandwidth), nil
}

// Bound classifies a kernel on a device.
type Bound int

const (
	// ComputeBound kernels sit right of the ridge.
	ComputeBound Bound = iota
	// BandwidthBound kernels sit left of the ridge.
	BandwidthBound
)

// String names the bound.
func (b Bound) String() string {
	if b == ComputeBound {
		return "compute-bound"
	}
	return "bandwidth-bound"
}

// Classify reports whether a kernel of the given intensity is compute- or
// bandwidth-bound on the device.
func (d Device) Classify(ai float64) (Bound, error) {
	ridge, err := d.Ridge()
	if err != nil {
		return 0, err
	}
	if ai <= 0 || math.IsNaN(ai) {
		return 0, errors.New("roofline: arithmetic intensity must be positive")
	}
	if ai >= ridge {
		return ComputeBound, nil
	}
	return BandwidthBound, nil
}

// Utilization returns achieved/attainable in [0, 1]; >1 achieved values
// are an error (they contradict the model's ceilings).
func (d Device) Utilization(ai, achieved float64) (float64, error) {
	ceil, err := d.Attainable(ai)
	if err != nil {
		return 0, err
	}
	if achieved <= 0 || math.IsNaN(achieved) {
		return 0, errors.New("roofline: achieved throughput must be positive")
	}
	u := achieved / ceil
	if u > 1+1e-9 {
		return 0, fmt.Errorf("roofline: achieved %g exceeds attainable %g", achieved, ceil)
	}
	if u > 1 {
		u = 1
	}
	return u, nil
}

// Point is one kernel placed on a device's roofline.
type Point struct {
	Kernel      string
	Intensity   float64
	Achieved    float64
	Attainable  float64
	Bound       Bound
	Utilization float64
}

// Place positions a kernel on the device's roofline.
func (d Device) Place(kernel string, ai, achieved float64) (Point, error) {
	att, err := d.Attainable(ai)
	if err != nil {
		return Point{}, err
	}
	b, err := d.Classify(ai)
	if err != nil {
		return Point{}, err
	}
	u, err := d.Utilization(ai, achieved)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Kernel: kernel, Intensity: ai, Achieved: achieved,
		Attainable: att, Bound: b, Utilization: u,
	}, nil
}

// BandwidthNeeded returns the off-chip bandwidth a kernel of intensity ai
// needs to sustain the given throughput — the quantity the heterosim
// bandwidth bounds are built from.
func BandwidthNeeded(ai, throughput float64) (float64, error) {
	if ai <= 0 || throughput <= 0 || math.IsNaN(ai) || math.IsNaN(throughput) {
		return 0, errors.New("roofline: intensity and throughput must be positive")
	}
	return throughput / ai, nil
}
