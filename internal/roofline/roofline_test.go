package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/calcm/heterosim/internal/paper"
)

// gtx285 is the paper's GTX285: ~700 GFLOP/s single-precision class peak
// for tuned kernels, 159 GB/s.
var gtx285 = Device{Name: "GTX285", PeakCompute: 700, PeakBandwidth: 159}

func TestValidate(t *testing.T) {
	if err := gtx285.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Device{PeakCompute: 0, PeakBandwidth: 1}).Validate(); err == nil {
		t.Error("zero compute must fail")
	}
	if err := (Device{PeakCompute: 1, PeakBandwidth: -1}).Validate(); err == nil {
		t.Error("negative bandwidth must fail")
	}
}

func TestRidge(t *testing.T) {
	r, err := gtx285.Ridge()
	if err != nil {
		t.Fatal(err)
	}
	want := 700.0 / 159
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("ridge = %g, want %g", r, want)
	}
}

func TestAttainable(t *testing.T) {
	// Left of the ridge: bandwidth line.
	got, err := gtx285.Attainable(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 159 {
		t.Errorf("attainable(1) = %g, want 159", got)
	}
	// Right of the ridge: flat compute roof.
	got, _ = gtx285.Attainable(100)
	if got != 700 {
		t.Errorf("attainable(100) = %g, want 700", got)
	}
	if _, err := gtx285.Attainable(0); err == nil {
		t.Error("zero intensity must fail")
	}
}

func TestClassifyPaperWorkloads(t *testing.T) {
	// MMM blocked at N=128: AI = 32 flop/B — comfortably compute-bound.
	b, err := gtx285.Classify(paper.MMMArithmeticIntensity(paper.MMMBlockN))
	if err != nil {
		t.Fatal(err)
	}
	if b != ComputeBound {
		t.Errorf("MMM should be compute-bound, got %v", b)
	}
	// FFT-1024: AI = 3.125 — also right of GTX285's ridge (~4.4)? No:
	// 3.125 < 4.4, so on the raw roofline it is bandwidth-bound at peak;
	// the paper's kernels are compute-bound only because they run far
	// below peak compute (Figure 4's point).
	b, _ = gtx285.Classify(paper.FFTArithmeticIntensity(1024))
	if b != BandwidthBound {
		t.Errorf("FFT-1024 at full peak would be bandwidth-bound, got %v", b)
	}
	// The measured FFT throughput (~392 pseudo-GFLOP/s) needs only
	// 392/3.125 = 125 GB/s < 159: achievable, hence compute-bound in
	// practice.
	need, err := BandwidthNeeded(paper.FFTArithmeticIntensity(1024), 392)
	if err != nil {
		t.Fatal(err)
	}
	if need >= 159 {
		t.Errorf("FFT-1024 at 392 GFLOP/s needs %g GB/s, must fit under 159", need)
	}
}

func TestUtilization(t *testing.T) {
	u, err := gtx285.Utilization(32, 350)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization = %g, want 0.5", u)
	}
	if _, err := gtx285.Utilization(32, 1400); err == nil {
		t.Error("achieved above the roof must fail")
	}
	if _, err := gtx285.Utilization(32, 0); err == nil {
		t.Error("zero achieved must fail")
	}
}

func TestPlace(t *testing.T) {
	p, err := gtx285.Place("MMM", 32, 425)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound != ComputeBound || p.Attainable != 700 {
		t.Errorf("place = %+v", p)
	}
	if math.Abs(p.Utilization-425.0/700) > 1e-12 {
		t.Errorf("utilization = %g", p.Utilization)
	}
	if _, err := gtx285.Place("bad", -1, 10); err == nil {
		t.Error("bad intensity must fail")
	}
}

func TestBoundString(t *testing.T) {
	if ComputeBound.String() != "compute-bound" || BandwidthBound.String() != "bandwidth-bound" {
		t.Error("Bound.String mismatch")
	}
}

func TestBandwidthNeeded(t *testing.T) {
	// Throughput / intensity.
	got, err := BandwidthNeeded(0.5, 100)
	if err != nil || got != 200 {
		t.Errorf("BandwidthNeeded = %g, %v", got, err)
	}
	if _, err := BandwidthNeeded(0, 1); err == nil {
		t.Error("zero intensity must fail")
	}
}

// Property: attainable is non-decreasing in intensity and capped by peak.
func TestPropAttainableMonotone(t *testing.T) {
	prop := func(a, b float64) bool {
		ai := 0.01 + math.Mod(math.Abs(a), 100)
		d := Device{PeakCompute: 1 + math.Mod(math.Abs(b), 1000), PeakBandwidth: 50}
		v1, err1 := d.Attainable(ai)
		v2, err2 := d.Attainable(ai * 2)
		if err1 != nil || err2 != nil {
			return false
		}
		return v2 >= v1 && v2 <= d.PeakCompute+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the ridge is the exact crossover of Classify.
func TestPropRidgeIsCrossover(t *testing.T) {
	prop := func(a, b float64) bool {
		d := Device{
			PeakCompute:   1 + math.Mod(math.Abs(a), 1000),
			PeakBandwidth: 1 + math.Mod(math.Abs(b), 500),
		}
		ridge, err := d.Ridge()
		if err != nil {
			return false
		}
		below, err1 := d.Classify(ridge * 0.99)
		above, err2 := d.Classify(ridge * 1.01)
		return err1 == nil && err2 == nil &&
			below == BandwidthBound && above == ComputeBound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
