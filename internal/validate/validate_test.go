package validate

import (
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/itrs"
)

func TestBackcastRoadmapValid(t *testing.T) {
	if err := BackcastRoadmap().Validate(); err != nil {
		t.Fatalf("backcast roadmap must validate: %v", err)
	}
	nodes := BackcastRoadmap().Nodes()
	if nodes[0].Name != "65nm" || nodes[len(nodes)-1].Name != "40nm" {
		t.Error("backcast roadmap should run 65nm -> 40nm")
	}
	// Older nodes: less area, more power per transistor, less bandwidth.
	if nodes[0].MaxAreaBCE >= nodes[3].MaxAreaBCE {
		t.Error("area must grow toward 40nm")
	}
	if nodes[0].RelPowerPerXtor <= nodes[3].RelPowerPerXtor {
		t.Error("power per transistor must fall toward 40nm")
	}
	if nodes[0].RelBandwidth >= nodes[3].RelBandwidth {
		t.Error("bandwidth must grow toward 40nm")
	}
}

// The centerpiece: all four published conclusions hold on the forward
// ITRS 2009 roadmap.
func TestConclusionsHoldForward(t *testing.T) {
	rep, err := CheckConclusions("ITRS-2009", itrs.ITRS2009())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("expected 4 findings, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Holds {
			t.Errorf("forward roadmap: %v failed: %s", r.Finding, r.Evidence)
		}
		if r.Evidence == "" {
			t.Errorf("%v: missing evidence", r.Finding)
		}
	}
	if !rep.AllHold() {
		t.Error("AllHold should be true")
	}
}

// The paper's own validity check: the same conclusions hold when the
// study is back-cast onto 65nm-era technology.
func TestConclusionsHoldBackcast(t *testing.T) {
	rep, err := CheckConclusions("backcast-65nm", BackcastRoadmap())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if !r.Holds {
			t.Errorf("backcast roadmap: %v failed: %s", r.Finding, r.Evidence)
		}
	}
}

func TestCheckConclusionsRejectsBadRoadmap(t *testing.T) {
	if _, err := CheckConclusions("empty", itrs.CustomRoadmap(nil)); err == nil {
		t.Error("empty roadmap must fail")
	}
	// Inconsistent roadmap (Figure-5 violation).
	bad := itrs.CustomRoadmap([]itrs.Node{{
		Year: 2011, Name: "40nm", Nm: 40, MaxAreaBCE: 19,
		RelPowerPerXtor: 1, RelBandwidth: 1,
		RelPins: 1, RelVdd: 0.5, RelGateCap: 1,
	}})
	if _, err := CheckConclusions("bad", bad); err == nil {
		t.Error("inconsistent roadmap must fail")
	}
}

func TestFindingString(t *testing.T) {
	names := map[Finding]string{
		ParallelismGate:     "parallelism-gate",
		BandwidthFirstOrder: "bandwidth-first-order",
		FlexibleCompetitive: "flexible-competitive",
		EnergyBroaderWin:    "energy-broader-win",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q", int(f), f.String())
		}
	}
	if !strings.HasPrefix(Finding(9).String(), "Finding(") {
		t.Error("unknown finding should print its number")
	}
}

func TestAllHoldEmptyReport(t *testing.T) {
	if (Report{}).AllHold() {
		t.Error("empty report must not claim success")
	}
}

// A hostile roadmap where bandwidth explodes (so the ASIC is never
// bandwidth-limited) must fail the bandwidth-first-order finding — the
// check has teeth.
func TestConclusionsCanFail(t *testing.T) {
	nodes := itrs.ITRS2009().Nodes()
	for i := range nodes {
		nodes[i].RelBandwidth *= 1000
		nodes[i].RelPins *= 1000
	}
	rep, err := CheckConclusions("infinite-bandwidth", itrs.CustomRoadmap(nodes))
	if err != nil {
		t.Fatal(err)
	}
	var bw Result
	for _, r := range rep.Results {
		if r.Finding == BandwidthFirstOrder {
			bw = r
		}
	}
	if bw.Holds {
		t.Errorf("with unlimited bandwidth the finding should fail: %s", bw.Evidence)
	}
	if rep.AllHold() {
		t.Error("report must reflect the failure")
	}
}
