// Package validate implements the paper's model-validity check
// (Section 6.3): "to check the quality of our predictions, we are
// pursuing further studies using older devices; data already collected
// from 55nm/65nm devices support the same conclusions."
//
// It encodes the paper's four conclusions as machine-checkable findings
// and evaluates them over any roadmap — the forward ITRS 2009 roadmap or
// a back-cast roadmap anchored at 65 nm. A reproduction whose conclusions
// flip when the technology window shifts would be curve-fitting, not
// modeling; this package is the guard against that.
package validate

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/project"
)

// Finding identifies one of the paper's four conclusions.
type Finding int

const (
	// ParallelismGate: U-cores need f >= 0.9 to offer significant gains.
	ParallelismGate Finding = iota
	// BandwidthFirstOrder: flexible U-cores reach the same bandwidth
	// ceiling as custom logic on low-intensity kernels.
	BandwidthFirstOrder
	// FlexibleCompetitive: GPUs/FPGAs stay within a small factor of
	// custom logic at moderate-to-high parallelism even without a
	// bandwidth wall.
	FlexibleCompetitive
	// EnergyBroaderWin: custom logic's advantage is larger for energy
	// than for speed.
	EnergyBroaderWin
)

// String names the finding.
func (f Finding) String() string {
	switch f {
	case ParallelismGate:
		return "parallelism-gate"
	case BandwidthFirstOrder:
		return "bandwidth-first-order"
	case FlexibleCompetitive:
		return "flexible-competitive"
	case EnergyBroaderWin:
		return "energy-broader-win"
	default:
		return fmt.Sprintf("Finding(%d)", int(f))
	}
}

// Result is one evaluated finding.
type Result struct {
	Finding  Finding
	Holds    bool
	Evidence string // human-readable supporting numbers
}

// Report is the full conclusion check over one roadmap.
type Report struct {
	RoadmapName string
	Results     []Result
}

// AllHold reports whether every conclusion held.
func (r Report) AllHold() bool {
	for _, res := range r.Results {
		if !res.Holds {
			return false
		}
	}
	return len(r.Results) > 0
}

// BackcastRoadmap returns a four-node roadmap anchored at 65 nm
// (2008-2011) with the calibration node (40 nm) last: smaller area
// budgets, higher power per transistor, and lower off-chip bandwidth at
// the older nodes, all expressed relative to the 40 nm calibration point
// like the forward roadmap.
func BackcastRoadmap() itrs.Roadmap {
	return itrs.CustomRoadmap([]itrs.Node{
		{Year: 2008, Name: "65nm", Nm: 65, MaxAreaBCE: 7.2,
			RelPowerPerXtor: 1.80, RelBandwidth: 0.60,
			RelPins: 0.60, RelVdd: 1.150, RelGateCap: 1.361},
		{Year: 2009, Name: "55nm", Nm: 55, MaxAreaBCE: 10.0,
			RelPowerPerXtor: 1.40, RelBandwidth: 0.75,
			RelPins: 0.75, RelVdd: 1.080, RelGateCap: 1.200},
		{Year: 2010, Name: "45nm", Nm: 45, MaxAreaBCE: 15.0,
			RelPowerPerXtor: 1.10, RelBandwidth: 0.90,
			RelPins: 0.90, RelVdd: 1.020, RelGateCap: 1.057},
		{Year: 2011, Name: "40nm", Nm: 40, MaxAreaBCE: 19.0,
			RelPowerPerXtor: 1.00, RelBandwidth: 1.00,
			RelPins: 1.00, RelVdd: 1.000, RelGateCap: 1.000},
	})
}

// CheckConclusions evaluates the four findings over the given roadmap.
func CheckConclusions(name string, roadmap itrs.Roadmap) (Report, error) {
	if err := roadmap.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{RoadmapName: name}

	cfgFFT := project.DefaultConfig(paper.FFT1024)
	cfgFFT.Roadmap = roadmap
	cfgMMM := project.DefaultConfig(paper.MMM)
	cfgMMM.Roadmap = roadmap

	last := roadmap.Len() - 1
	if last < 0 {
		return Report{}, errors.New("validate: empty roadmap")
	}

	// 1. Parallelism gate: best-HET/best-CMP gain at f=0.5 vs f=0.99 on
	// FFT at the final node.
	gain := func(f float64) (float64, error) {
		ts, err := project.Project(cfgFFT, f)
		if err != nil {
			return 0, err
		}
		bestHET, bestCMP := 0.0, 0.0
		for _, tr := range ts {
			p := tr.Points[last]
			if !p.Valid {
				continue
			}
			if tr.Design.Label == "(0) SymCMP" || tr.Design.Label == "(1) AsymCMP" {
				bestCMP = math.Max(bestCMP, p.Point.Speedup)
			} else {
				bestHET = math.Max(bestHET, p.Point.Speedup)
			}
		}
		if bestCMP == 0 {
			return 0, errors.New("validate: no feasible CMP point")
		}
		return bestHET / bestCMP, nil
	}
	lowGain, err := gain(0.5)
	if err != nil {
		return Report{}, err
	}
	highGain, err := gain(0.99)
	if err != nil {
		return Report{}, err
	}
	rep.Results = append(rep.Results, Result{
		Finding: ParallelismGate,
		Holds:   lowGain < 1.6 && highGain > 1.6 && highGain > lowGain,
		Evidence: fmt.Sprintf("HET/CMP gain %.2fx at f=0.5 vs %.2fx at f=0.99",
			lowGain, highGain),
	})

	// 2. Bandwidth first-order: the ASIC hits the bandwidth ceiling on
	// FFT at every node, and the flexible U-cores close on it across the
	// roadmap (ratio to the ASIC improves and ends >= 0.6).
	ts, err := project.Project(cfgFFT, 0.999)
	if err != nil {
		return Report{}, err
	}
	asic, err := project.FindTrajectory(ts, "(6) ASIC")
	if err != nil {
		return Report{}, err
	}
	asicBandwidthLimited := true
	for _, p := range asic.Points {
		if !p.Valid || p.Point.Limit != bounds.BandwidthLimited {
			asicBandwidthLimited = false
		}
	}
	flexRatioAt := func(idx int) float64 {
		best := 0.0
		for _, label := range []string{"(2) LX760", "(3) GTX285", "(4) GTX480"} {
			tr, err := project.FindTrajectory(ts, label)
			if err != nil {
				continue
			}
			if p := tr.Points[idx]; p.Valid {
				best = math.Max(best, p.Point.Speedup)
			}
		}
		if !asic.Points[idx].Valid || asic.Points[idx].Point.Speedup == 0 {
			return 0
		}
		return best / asic.Points[idx].Point.Speedup
	}
	firstRatio, lastRatio := flexRatioAt(0), flexRatioAt(last)
	holds2 := asicBandwidthLimited && lastRatio >= 0.6 && lastRatio > firstRatio
	rep.Results = append(rep.Results, Result{
		Finding: BandwidthFirstOrder,
		Holds:   holds2,
		Evidence: fmt.Sprintf("FFT f=0.999: ASIC bandwidth-limited throughout=%v; flexible/ASIC ratio %.2f -> %.2f",
			asicBandwidthLimited, firstRatio, lastRatio),
	})

	// 3. Flexible competitive on MMM (no bandwidth wall): ASIC within 5x
	// of the best flexible U-core at f = 0.99.
	ts, err = project.Project(cfgMMM, 0.99)
	if err != nil {
		return Report{}, err
	}
	asicTr, err := project.FindTrajectory(ts, "(6) ASIC")
	if err != nil {
		return Report{}, err
	}
	bestFlexMMM := 0.0
	for _, label := range []string{"(2) LX760", "(3) GTX285", "(4) GTX480", "(5) R5870"} {
		tr, err := project.FindTrajectory(ts, label)
		if err != nil {
			continue
		}
		if p := tr.Points[last]; p.Valid {
			bestFlexMMM = math.Max(bestFlexMMM, p.Point.Speedup)
		}
	}
	ratio := math.Inf(1)
	if bestFlexMMM > 0 && asicTr.Points[last].Valid {
		ratio = asicTr.Points[last].Point.Speedup / bestFlexMMM
	}
	rep.Results = append(rep.Results, Result{
		Finding:  FlexibleCompetitive,
		Holds:    ratio <= 5,
		Evidence: fmt.Sprintf("MMM f=0.99 final node: ASIC/best-flexible = %.2fx", ratio),
	})

	// 4. Energy broader win: at LOW parallelism (f=0.5), where the
	// speedup advantage has largely evaporated, the ASIC's energy
	// advantage over the CMP persists and exceeds the speedup advantage
	// — "more broadly useful when energy is the goal".
	es, err := project.ProjectEnergy(cfgMMM, 0.5)
	if err != nil {
		return Report{}, err
	}
	ss, err := project.Project(cfgMMM, 0.5)
	if err != nil {
		return Report{}, err
	}
	eASIC, err := project.FindTrajectory(es, "(6) ASIC")
	if err != nil {
		return Report{}, err
	}
	eCMP, err := project.FindTrajectory(es, "(1) AsymCMP")
	if err != nil {
		return Report{}, err
	}
	sASIC, err := project.FindTrajectory(ss, "(6) ASIC")
	if err != nil {
		return Report{}, err
	}
	sCMP, err := project.FindTrajectory(ss, "(1) AsymCMP")
	if err != nil {
		return Report{}, err
	}
	energyAdv := eCMP.Points[last].EnergyNode / eASIC.Points[last].EnergyNode
	speedAdv := sASIC.Points[last].Point.Speedup / sCMP.Points[last].Point.Speedup
	rep.Results = append(rep.Results, Result{
		Finding: EnergyBroaderWin,
		Holds:   energyAdv > 1 && energyAdv > speedAdv,
		Evidence: fmt.Sprintf("MMM f=0.5 final node: energy advantage %.2fx vs speedup advantage %.2fx",
			energyAdv, speedAdv),
	})
	return rep, nil
}
