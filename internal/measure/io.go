package measure

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/ucore"
)

// measurementJSON is the on-disk form of one calibration measurement.
// Users bring their own devices by writing these records; see
// cmd/heterosim derive.
type measurementJSON struct {
	Device     string  `json:"device"`
	Workload   string  `json:"workload"`
	Throughput float64 `json:"throughput"` // work units per second
	AreaMM2    float64 `json:"area_mm2"`   // compute-only area, native node
	Nm         int     `json:"nm"`         // native feature size
	PowerW     float64 `json:"power_w"`    // compute power
}

// SaveMeasurements writes a database as pretty-printed JSON.
func SaveMeasurements(w io.Writer, db Database) error {
	out := make([]measurementJSON, 0, len(db.Measurements))
	for _, m := range db.Measurements {
		out = append(out, measurementJSON{
			Device:     string(m.Device),
			Workload:   string(m.Workload),
			Throughput: m.Throughput,
			AreaMM2:    m.AreaMM2,
			Nm:         m.Nm,
			PowerW:     m.PowerW,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadMeasurements reads a JSON measurement set and validates every
// record. Unknown devices and workloads are allowed — that is the point
// of user-supplied measurements — but each record must be physically
// sane and the set must include a "Core i7-960" reference row for every
// workload it wants calibrated.
func LoadMeasurements(r io.Reader) (Database, error) {
	var raw []measurementJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return Database{}, fmt.Errorf("measure: parsing measurements: %w", err)
	}
	if len(raw) == 0 {
		return Database{}, fmt.Errorf("measure: no measurements in input")
	}
	var db Database
	for i, rm := range raw {
		m := ucore.Measurement{
			Device:     paper.DeviceID(rm.Device),
			Workload:   paper.WorkloadID(rm.Workload),
			Throughput: rm.Throughput,
			AreaMM2:    rm.AreaMM2,
			Nm:         rm.Nm,
			PowerW:     rm.PowerW,
		}
		if err := m.Validate(); err != nil {
			return Database{}, fmt.Errorf("measure: record %d: %w", i, err)
		}
		db.Measurements = append(db.Measurements, m)
	}
	return db, nil
}
