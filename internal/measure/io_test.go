package measure

import (
	"bytes"
	"strings"
	"testing"

	"github.com/calcm/heterosim/internal/paper"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rig, err := IdealRig()
	if err != nil {
		t.Fatal(err)
	}
	db, err := rig.BuildDatabase()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveMeasurements(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMeasurements(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Measurements) != len(db.Measurements) {
		t.Fatalf("round trip lost records: %d vs %d",
			len(back.Measurements), len(db.Measurements))
	}
	for i := range db.Measurements {
		if back.Measurements[i] != db.Measurements[i] {
			t.Fatalf("record %d changed: %+v vs %+v",
				i, back.Measurements[i], db.Measurements[i])
		}
	}
	// The reloaded database calibrates identically.
	derived, err := back.DeriveTable5()
	if err != nil {
		t.Fatal(err)
	}
	if got := derived[paper.ASIC][paper.FFT1024]; got.Mu < 488 || got.Mu > 490 {
		t.Errorf("reloaded calibration ASIC FFT-1024 mu = %g", got.Mu)
	}
}

func TestLoadUserSuppliedDevice(t *testing.T) {
	// A downstream user's hypothetical accelerator measured on MMM,
	// with the required Core i7 reference row.
	input := `[
	  {"device": "Core i7-960", "workload": "MMM",
	   "throughput": 96, "area_mm2": 193, "nm": 45, "power_w": 84.2},
	  {"device": "MyNPU", "workload": "MMM",
	   "throughput": 2000, "area_mm2": 100, "nm": 40, "power_w": 50}
	]`
	db, err := LoadMeasurements(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	derived, err := db.DeriveTable5()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := derived["MyNPU"][paper.MMM]
	if !ok {
		t.Fatal("user device not calibrated")
	}
	// mu = (2000/100) / (0.4974 * sqrt(2)) ~ 28.4.
	if p.Mu < 27 || p.Mu > 30 {
		t.Errorf("MyNPU mu = %g, want ~28", p.Mu)
	}
	if p.Phi <= 0 {
		t.Errorf("MyNPU phi = %g", p.Phi)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty list":    `[]`,
		"not json":      `{nope`,
		"unknown field": `[{"device": "x", "workload": "MMM", "throughput": 1, "area_mm2": 1, "nm": 40, "power_w": 1, "frequency": 3}]`,
		"bad record":    `[{"device": "x", "workload": "MMM", "throughput": -1, "area_mm2": 1, "nm": 40, "power_w": 1}]`,
	}
	for name, in := range cases {
		if _, err := LoadMeasurements(strings.NewReader(in)); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}
