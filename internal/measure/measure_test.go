package measure

import (
	"math"
	"testing"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/sim"
	"github.com/calcm/heterosim/internal/ucore"
)

func idealRig(t *testing.T) *Rig {
	t.Helper()
	r, err := IdealRig()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestProbeValidation(t *testing.T) {
	if _, err := NewProbe(-0.1, 1); err == nil {
		t.Error("negative noise must fail")
	}
	p, err := NewProbe(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sample(-5, 3); err == nil {
		t.Error("negative power must fail")
	}
	if _, err := p.Sample(5, 0); err == nil {
		t.Error("zero samples must fail")
	}
}

func TestIdealProbeIsExact(t *testing.T) {
	p, _ := NewProbe(0, 42)
	xs, err := p.Sample(73.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if x != 73.5 {
			t.Errorf("ideal probe read %g", x)
		}
	}
}

func TestNoisyProbeConverges(t *testing.T) {
	p, _ := NewProbe(0.05, 7)
	mean, err := p.Mean(100, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-100) > 0.5 {
		t.Errorf("noisy mean = %g, want ~100 +- 0.5", mean)
	}
}

func TestNewRigValidation(t *testing.T) {
	s, err := sim.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRig(nil, 0, 1, 1); err == nil {
		t.Error("nil simulator must fail")
	}
	if _, err := NewRig(s, 0, 1, 0); err == nil {
		t.Error("zero samples must fail")
	}
	if _, err := NewRig(s, -1, 1, 1); err == nil {
		t.Error("negative noise must fail")
	}
}

func TestSubtractionRecoversComputePower(t *testing.T) {
	r := idealRig(t)
	rec, err := r.Sim.RunFFT(paper.GTX285, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.MeasureComputePower(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Power.Compute()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("measured compute = %g, model = %g", got, want)
	}
	// The subtraction matters: total wall power is well above compute for
	// a GPU (uncore static + dynamic + unknown).
	if rec.Power.Total() < want+20 {
		t.Errorf("GPU uncore should be substantial: total %g vs compute %g",
			rec.Power.Total(), want)
	}
}

func TestNoisySubtractionConverges(t *testing.T) {
	s, err := sim.New()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRig(s, 0.03, 99, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.RunFFT(paper.GTX480, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.MeasureComputePower(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Power.Compute()
	if math.Abs(got/want-1) > 0.02 {
		t.Errorf("noisy compute = %g, want within 2%% of %g", got, want)
	}
}

func TestMeasurementFields(t *testing.T) {
	r := idealRig(t)
	rec, err := r.Sim.RunMMM(paper.LX760, 1024, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Measurement(rec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Device != paper.LX760 || m.Workload != paper.MMM {
		t.Errorf("identity mismatch: %+v", m)
	}
	if m.AreaMM2 != 385 {
		t.Errorf("FPGA area = %g, want 385 (effective fabric)", m.AreaMM2)
	}
	if m.Nm != 40 {
		t.Errorf("nm = %d", m.Nm)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVerifyComputeBound(t *testing.T) {
	r := idealRig(t)
	rec, err := r.Sim.RunFFT(paper.GTX285, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyComputeBound(rec, 0.95); err != nil {
		t.Errorf("FFT-1024 on GTX285 is compute-bound: %v", err)
	}
	// Force a bandwidth-bound record.
	bound := rec
	bound.MeasuredGBs = 158
	if err := VerifyComputeBound(bound, 0.95); err == nil {
		t.Error("158 of 159 GB/s must be flagged bandwidth-bound")
	}
	if err := VerifyComputeBound(rec, 0); err == nil {
		t.Error("bad headroom must fail")
	}
	// Devices without a published peak pass trivially.
	asic, err := r.Sim.RunFFT(paper.ASIC, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyComputeBound(asic, 0.95); err != nil {
		t.Errorf("ASIC has no peak; should pass: %v", err)
	}
}

// Failure injection: a record whose decomposition leaves no positive
// compute power after the uncore subtraction (a broken device model or a
// mis-attributed rail) must be rejected, not silently calibrated.
func TestSubtractionRejectsNegativeCompute(t *testing.T) {
	r := idealRig(t)
	rec, err := r.Sim.RunFFT(paper.GTX285, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the decomposition: the compute components cancel out, so
	// wall - idle - memory-bench <= 0.
	rec.Power.CoreDynamic = -rec.Power.CoreLeakage
	if _, err := r.MeasureComputePower(rec); err == nil {
		t.Error("non-positive compute power must be rejected")
	}
	if _, err := r.Measurement(rec); err == nil {
		t.Error("Measurement must propagate the rejection")
	}
}

func TestBuildDatabaseCoverage(t *testing.T) {
	r := idealRig(t)
	db, err := r.BuildDatabase()
	if err != nil {
		t.Fatal(err)
	}
	// 6 MMM + 4 BS + 5 devices x 3 FFT sizes = 25 measurements.
	if len(db.Measurements) != 25 {
		t.Fatalf("database has %d measurements, want 25", len(db.Measurements))
	}
	if _, ok := db.Lookup(paper.ASIC, paper.FFT16384); !ok {
		t.Error("missing ASIC FFT-16384")
	}
	if _, ok := db.Lookup(paper.R5870, paper.BS); ok {
		t.Error("R5870 BS should be absent")
	}
}

// End-to-end calibration: simulate -> probe -> subtract -> derive, and the
// result is Table 5 within rounding of the published values.
func TestEndToEndTable5Reproduction(t *testing.T) {
	r := idealRig(t)
	db, err := r.BuildDatabase()
	if err != nil {
		t.Fatal(err)
	}
	derived, err := db.DeriveTable5()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for dev, wants := range paper.Table5 {
		for w, want := range wants {
			got, ok := derived[dev][w]
			if !ok {
				t.Errorf("calibration missing %s/%s", dev, w)
				continue
			}
			tol := 0.02 // MMM/BS come through Table 4 rounding
			if w == paper.FFT64 || w == paper.FFT1024 || w == paper.FFT16384 {
				tol = 1e-6 // FFT models are constructed by exact inversion
			}
			if math.Abs(got.Mu/want.Mu-1) > tol {
				t.Errorf("%s/%s mu = %.4f, published %.4f", dev, w, got.Mu, want.Mu)
			}
			if math.Abs(got.Phi/want.Phi-1) > tol {
				t.Errorf("%s/%s phi = %.4f, published %.4f", dev, w, got.Phi, want.Phi)
			}
			checked++
		}
	}
	if checked < 15 {
		t.Errorf("only %d Table 5 cells checked", checked)
	}
}

// The same pipeline with a realistically noisy probe still lands within a
// few percent — the methodology is robust, not knife-edge.
func TestNoisyEndToEndStillClose(t *testing.T) {
	s, err := sim.New()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRig(s, 0.02, 1234, 5000)
	if err != nil {
		t.Fatal(err)
	}
	db, err := r.BuildDatabase()
	if err != nil {
		t.Fatal(err)
	}
	derived, err := db.DeriveTable5()
	if err != nil {
		t.Fatal(err)
	}
	var params ucore.Params
	params, ok := derived[paper.ASIC][paper.FFT1024], true
	if !ok {
		t.Fatal("missing ASIC FFT-1024")
	}
	want := paper.Table5[paper.ASIC][paper.FFT1024]
	if math.Abs(params.Mu/want.Mu-1) > 0.05 {
		t.Errorf("noisy mu = %g, want within 5%% of %g", params.Mu, want.Mu)
	}
	if math.Abs(params.Phi/want.Phi-1) > 0.05 {
		t.Errorf("noisy phi = %g, want within 5%% of %g", params.Phi, want.Phi)
	}
}
