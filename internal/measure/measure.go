// Package measure simulates the paper's Section 4 measurement
// methodology: a current probe sampling device power in steady state,
// micro-benchmarks that isolate non-compute (uncore) power so it can be
// subtracted — the significant effort the paper describes for GPUs — and
// bandwidth counters used to verify workloads are compute-bound.
//
// The rig consumes execution records from the device simulator (package
// sim) and produces ucore.Measurement values, the inputs to the Table 5
// calibration. With a noiseless probe the pipeline recovers the device
// models' compute power exactly; with probe noise enabled, averaging over
// many samples converges to it, demonstrating the methodology rather than
// assuming it.
package measure

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/calcm/heterosim/internal/device"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/sim"
	"github.com/calcm/heterosim/internal/stats"
	"github.com/calcm/heterosim/internal/ucore"
)

// Probe is a simulated current probe: it reads a true wattage corrupted
// by zero-mean Gaussian noise with relative standard deviation noiseRel.
type Probe struct {
	noiseRel float64
	rng      *rand.Rand
}

// NewProbe builds a probe. noiseRel is the per-sample relative noise
// (0 for an ideal probe); seed makes runs reproducible.
func NewProbe(noiseRel float64, seed int64) (*Probe, error) {
	if noiseRel < 0 {
		return nil, errors.New("measure: noise must be non-negative")
	}
	return &Probe{noiseRel: noiseRel, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample returns n probe readings of a true power.
func (p *Probe) Sample(truthW float64, n int) ([]float64, error) {
	if truthW < 0 {
		return nil, errors.New("measure: power cannot be negative")
	}
	if n <= 0 {
		return nil, errors.New("measure: sample count must be positive")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = truthW * (1 + p.noiseRel*p.rng.NormFloat64())
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out, nil
}

// Mean returns the average of n probe readings.
func (p *Probe) Mean(truthW float64, n int) (float64, error) {
	xs, err := p.Sample(truthW, n)
	if err != nil {
		return 0, err
	}
	return stats.Mean(xs)
}

// Rig bundles the simulator, the probe, and the sampling policy.
type Rig struct {
	Sim     *sim.Simulator
	probe   *Probe
	samples int
}

// NewRig builds a measurement rig. samples is the number of probe
// readings averaged per measurement (the paper measured "in steady
// state"); must be positive.
func NewRig(s *sim.Simulator, noiseRel float64, seed int64, samples int) (*Rig, error) {
	if s == nil {
		return nil, errors.New("measure: nil simulator")
	}
	if samples <= 0 {
		return nil, errors.New("measure: samples must be positive")
	}
	p, err := NewProbe(noiseRel, seed)
	if err != nil {
		return nil, err
	}
	return &Rig{Sim: s, probe: p, samples: samples}, nil
}

// IdealRig returns a noiseless rig — the configuration used to build the
// canonical measurement database.
func IdealRig() (*Rig, error) {
	s, err := sim.New()
	if err != nil {
		return nil, err
	}
	return NewRig(s, 0, 1, 1)
}

// MeasureComputePower runs the full GPU-style subtraction methodology on
// one execution record:
//
//  1. probe total wall power with the kernel in steady state;
//  2. probe an idle micro-benchmark to estimate static uncore + residual;
//  3. probe a memory-stress micro-benchmark at the same operating point to
//     estimate traffic-proportional uncore power;
//  4. subtract (2) and (3) from (1).
func (r *Rig) MeasureComputePower(rec sim.Record) (float64, error) {
	b := rec.Power
	total, err := r.probe.Mean(b.Total(), r.samples)
	if err != nil {
		return 0, err
	}
	idle, err := r.probe.Mean(b.UncoreStatic+b.Unknown, r.samples)
	if err != nil {
		return 0, err
	}
	memBench, err := r.probe.Mean(b.UncoreDynamic, r.samples)
	if err != nil {
		return 0, err
	}
	compute := total - idle - memBench
	if compute <= 0 {
		return 0, fmt.Errorf("measure: subtraction produced non-positive compute power (%g W) for %s/%s",
			compute, rec.Device, rec.Workload)
	}
	return compute, nil
}

// Measurement converts an execution record into a calibration measurement
// using the rig's measured compute power and the device's native area for
// the workload.
func (r *Rig) Measurement(rec sim.Record) (ucore.Measurement, error) {
	d, err := device.ByID(rec.Device)
	if err != nil {
		return ucore.Measurement{}, err
	}
	area, err := device.NativeAreaMM2(d, rec.Workload)
	if err != nil {
		return ucore.Measurement{}, err
	}
	power, err := r.MeasureComputePower(rec)
	if err != nil {
		return ucore.Measurement{}, err
	}
	return ucore.Measurement{
		Device:     rec.Device,
		Workload:   rec.Workload,
		Throughput: rec.Throughput,
		AreaMM2:    area,
		Nm:         d.Table2.Nm,
		PowerW:     power,
	}, nil
}

// VerifyComputeBound checks the Section 5 requirement that a record's
// observed bandwidth stays below the device's board peak (with headroom
// fraction, e.g. 0.95), i.e. the kernel is compute-bound and performance
// scales with area as the model assumes. Devices without a published
// peak (FPGA/ASIC estimates) pass trivially.
func VerifyComputeBound(rec sim.Record, headroom float64) error {
	if headroom <= 0 || headroom > 1 {
		return errors.New("measure: headroom must be in (0, 1]")
	}
	d, err := device.ByID(rec.Device)
	if err != nil {
		return err
	}
	if d.PeakBandwidthGBs == 0 {
		return nil
	}
	if rec.MeasuredGBs >= headroom*d.PeakBandwidthGBs {
		return fmt.Errorf("measure: %s/%s at size %d is bandwidth-bound (%.1f of %.1f GB/s)",
			rec.Device, rec.Workload, rec.Size, rec.MeasuredGBs, d.PeakBandwidthGBs)
	}
	return nil
}

// Database is the set of calibration measurements — the reproduction's
// stand-in for the paper's lab notebook.
type Database struct {
	Measurements []ucore.Measurement
}

// BuildDatabase measures every (device, workload) pair the paper could
// obtain: MMM and BS at their Table 4 operating points and the three FFT
// anchor sizes, each verified compute-bound first. The kernels really
// execute (execute=true) so a broken kernel poisons calibration, exactly
// as a broken benchmark would have in the lab.
func (r *Rig) BuildDatabase() (Database, error) {
	var db Database
	add := func(rec sim.Record, err error) error {
		if err != nil {
			return err
		}
		if err := VerifyComputeBound(rec, 0.95); err != nil {
			return err
		}
		m, err := r.Measurement(rec)
		if err != nil {
			return err
		}
		db.Measurements = append(db.Measurements, m)
		return nil
	}
	for _, d := range device.Catalog() {
		if r.Sim.HasModel(d.ID, paper.MMM) {
			if err := add(r.Sim.RunMMM(d.ID, 1024, int(paper.MMMBlockN), true)); err != nil {
				return Database{}, err
			}
		}
		if r.Sim.HasModel(d.ID, paper.BS) {
			if err := add(r.Sim.RunBS(d.ID, 1<<20, true)); err != nil {
				return Database{}, err
			}
		}
		if r.Sim.HasModel(d.ID, device.FFTFamily) {
			for _, n := range []int{64, 1024, 16384} {
				if err := add(r.Sim.RunFFT(d.ID, n, true)); err != nil {
					return Database{}, err
				}
			}
		}
	}
	return db, nil
}

// DeriveTable5 runs the Section 5.1 calibration over the database.
func (db Database) DeriveTable5() (map[paper.DeviceID]map[paper.WorkloadID]ucore.Params, error) {
	return ucore.DeriveTable5(db.Measurements)
}

// Lookup returns the measurement for a device/workload pair.
func (db Database) Lookup(d paper.DeviceID, w paper.WorkloadID) (ucore.Measurement, bool) {
	for _, m := range db.Measurements {
		if m.Device == d && m.Workload == w {
			return m, true
		}
	}
	return ucore.Measurement{}, false
}
