package ucore

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/pollack"
)

// table4Measurement reconstructs a U-core measurement from Table 4.
func table4Measurement(t *testing.T, d paper.DeviceID, w paper.WorkloadID) Measurement {
	t.Helper()
	row, ok := paper.Table4[w][d]
	if !ok {
		t.Fatalf("no Table 4 entry for %s/%s", d, w)
	}
	dev := paper.Table2[d]
	// Recover native area from the published normalized per-mm² metric.
	a40 := row.Throughput / row.PerMM2
	scale := 1.0
	if dev.Nm != 40 && dev.Nm != 45 {
		s := 40.0 / float64(dev.Nm)
		scale = s * s
	}
	return Measurement{
		Device: d, Workload: w,
		Throughput: row.Throughput,
		AreaMM2:    a40 / scale,
		Nm:         dev.Nm,
		PowerW:     row.Throughput / row.PerJoule,
	}
}

func TestMeasurementValidate(t *testing.T) {
	good := Measurement{Device: paper.GTX285, Workload: paper.MMM, Throughput: 425, AreaMM2: 338, Nm: 55, PowerW: 60}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Measurement{
		{Device: paper.GTX285, Throughput: 0, AreaMM2: 1, Nm: 55, PowerW: 1},
		{Device: paper.GTX285, Throughput: 1, AreaMM2: -1, Nm: 55, PowerW: 1},
		{Device: paper.GTX285, Throughput: 1, AreaMM2: 1, Nm: 0, PowerW: 1},
		{Device: paper.GTX285, Throughput: 1, AreaMM2: 1, Nm: 55, PowerW: math.NaN()},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPerMM2NormalizesNode(t *testing.T) {
	// GTX285 at 55nm: 425 GFLOP/s over 338 mm² native = 2.40 per
	// 40nm-equivalent mm² (Table 4).
	m := Measurement{Device: paper.GTX285, Workload: paper.MMM,
		Throughput: 425, AreaMM2: 338, Nm: 55, PowerW: 62.7}
	x, err := m.PerMM2()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.40) > 0.03 {
		t.Errorf("GTX285 MMM per-mm² = %g, want ~2.40", x)
	}
}

func TestCalibrateBCEFromTable4MMM(t *testing.T) {
	m, err := CoreI7Measurement(paper.MMM)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CalibrateBCE(m, 4, 2, pollack.Default())
	if err != nil {
		t.Fatal(err)
	}
	// x_i7 = 96/193 ~ 0.4974; BCE perf = 24/sqrt(2) ~ 16.97 GFLOP/s.
	if math.Abs(ref.XRef-96.0/193) > 1e-9 {
		t.Errorf("XRef = %g", ref.XRef)
	}
	if math.Abs(ref.PerfUnits-16.97) > 0.01 {
		t.Errorf("BCE perf = %g, want ~16.97", ref.PerfUnits)
	}
	// BCE watts = 16.97 * 2^(-0.375) / 1.14 ~ 11.48 W.
	if math.Abs(ref.Watts-11.48) > 0.05 {
		t.Errorf("BCE watts = %g, want ~11.48", ref.Watts)
	}
	// BCE area = 193/4/2 ~ 24.1 mm², consistent with the Atom-based
	// sizing (26 mm² less 10% non-compute = 23.4).
	if math.Abs(ref.AreaMM2-24.125) > 1e-9 {
		t.Errorf("BCE area = %g, want 24.125", ref.AreaMM2)
	}
}

func TestCalibrateBCERejectsBadInput(t *testing.T) {
	m, _ := CoreI7Measurement(paper.MMM)
	if _, err := CalibrateBCE(m, 0, 2, pollack.Default()); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := CalibrateBCE(m, 4, 0.5, pollack.Default()); err == nil {
		t.Error("r < 1 must fail")
	}
	m.Device = paper.GTX285
	if _, err := CalibrateBCE(m, 4, 2, pollack.Default()); err == nil {
		t.Error("non-i7 reference must fail")
	}
}

// The centerpiece: re-deriving Table 5 from Table 4 reproduces the
// published (mu, phi) for every MMM and BS entry within rounding.
func TestDeriveReproducesTable5FromTable4(t *testing.T) {
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS} {
		ref, err := DefaultBCE(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range paper.AllDevices {
			if d == paper.CoreI7 {
				continue
			}
			want, ok := PublishedParams(d, w)
			if !ok {
				continue // paper dash
			}
			if _, measured := paper.Table4[w][d]; !measured {
				continue
			}
			m := table4Measurement(t, d, w)
			got, err := Derive(m, ref)
			if err != nil {
				t.Fatalf("%s/%s: %v", d, w, err)
			}
			if math.Abs(got.Mu/want.Mu-1) > 0.02 {
				t.Errorf("%s/%s mu = %.3f, published %.3f", d, w, got.Mu, want.Mu)
			}
			if math.Abs(got.Phi/want.Phi-1) > 0.02 {
				t.Errorf("%s/%s phi = %.3f, published %.3f", d, w, got.Phi, want.Phi)
			}
		}
	}
}

func TestDeriveRejectsMismatches(t *testing.T) {
	ref, _ := DefaultBCE(paper.MMM)
	i7, _ := CoreI7Measurement(paper.MMM)
	if _, err := Derive(i7, ref); err == nil {
		t.Error("deriving the reference CPU as a U-core must fail")
	}
	m := table4Measurement(t, paper.GTX285, paper.MMM)
	refBS, _ := DefaultBCE(paper.BS)
	if _, err := Derive(m, refBS); err == nil {
		t.Error("workload mismatch must fail")
	}
}

// Invert is the exact inverse of Derive.
func TestInvertRoundTrip(t *testing.T) {
	ref, err := DefaultBCE(paper.FFT1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []paper.DeviceID{paper.GTX285, paper.GTX480, paper.LX760, paper.ASIC} {
		want, ok := PublishedParams(d, paper.FFT1024)
		if !ok {
			t.Fatalf("missing published params for %s", d)
		}
		area, nm := 100.0, 40
		thr, pw, err := Invert(want, area, nm, ref)
		if err != nil {
			t.Fatal(err)
		}
		m := Measurement{Device: d, Workload: paper.FFT1024,
			Throughput: thr, AreaMM2: area, Nm: nm, PowerW: pw}
		got, err := Derive(m, ref)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Mu/want.Mu-1) > 1e-9 || math.Abs(got.Phi/want.Phi-1) > 1e-9 {
			t.Errorf("%s: round trip (%.4f, %.4f) != (%.4f, %.4f)",
				d, got.Mu, got.Phi, want.Mu, want.Phi)
		}
	}
	if _, _, err := Invert(Params{Mu: -1, Phi: 1}, 10, 40, ref); err == nil {
		t.Error("negative mu must fail")
	}
}

func TestDeriveTable5EndToEnd(t *testing.T) {
	// Build a measurement set for MMM from published data and run the
	// batch derivation.
	ms := []Measurement{}
	i7, _ := CoreI7Measurement(paper.MMM)
	ms = append(ms, i7)
	for _, d := range []paper.DeviceID{paper.GTX285, paper.GTX480, paper.R5870, paper.LX760, paper.ASIC} {
		ms = append(ms, table4Measurement(t, d, paper.MMM))
	}
	table, err := DeriveTable5(ms)
	if err != nil {
		t.Fatal(err)
	}
	for d, row := range table {
		want, _ := PublishedParams(d, paper.MMM)
		got := row[paper.MMM]
		if math.Abs(got.Mu/want.Mu-1) > 0.02 {
			t.Errorf("%s mu = %g, want %g", d, got.Mu, want.Mu)
		}
	}
	// Missing reference must fail.
	if _, err := DeriveTable5(ms[1:]); err == nil {
		t.Error("missing i7 reference must fail")
	}
}

func TestPublishedParams(t *testing.T) {
	p, ok := PublishedParams(paper.ASIC, paper.FFT1024)
	if !ok || p.Mu != 489 || p.Phi != 4.96 {
		t.Errorf("ASIC FFT-1024 = %+v, %v", p, ok)
	}
	if _, ok := PublishedParams(paper.R5870, paper.BS); ok {
		t.Error("R5870 BS is a dash in the paper")
	}
	if _, ok := PublishedParams(paper.CoreI7, paper.MMM); ok {
		t.Error("i7 has no U-core params")
	}
}

func TestFFTSize(t *testing.T) {
	for w, want := range map[paper.WorkloadID]int{
		paper.FFT64: 64, paper.FFT1024: 1024, paper.FFT16384: 16384,
	} {
		n, err := FFTSize(w)
		if err != nil || n != want {
			t.Errorf("FFTSize(%s) = %d, %v", w, n, err)
		}
	}
	if _, err := FFTSize(paper.MMM); err == nil {
		t.Error("MMM is not an FFT workload")
	}
}

func TestCoreI7MeasurementFFTUsesAnchors(t *testing.T) {
	m, err := CoreI7Measurement(paper.FFT1024)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput != paper.CoreI7FFTAnchors[1024] {
		t.Errorf("throughput = %g", m.Throughput)
	}
	if m.PowerW != paper.CoreI7FFTCorePowerW {
		t.Errorf("power = %g", m.PowerW)
	}
	if _, err := CoreI7Measurement("nope"); err == nil {
		t.Error("unknown workload must fail")
	}
}

// The paper sizes the BCE from an Atom estimate (r = 2) and takes
// alpha = 1.75 from Grochowski. Neither is exact; the derivation must
// respond to them in the analytically predicted way, and the Table 5
// *ordering* must survive plausible mis-estimates — the calibration
// analogue of Section 6.3's "predictions may go askew".
func TestCalibrationAssumptionRobustness(t *testing.T) {
	i7, err := CoreI7Measurement(paper.MMM)
	if err != nil {
		t.Fatal(err)
	}
	gtx := table4Measurement(t, paper.GTX285, paper.MMM)
	asic := table4Measurement(t, paper.ASIC, paper.MMM)

	derive := func(r, alpha float64) (Params, Params) {
		law, err := pollack.New(alpha)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := CalibrateBCE(i7, 4, r, law)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := Derive(gtx, ref)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := Derive(asic, ref)
		if err != nil {
			t.Fatal(err)
		}
		return pg, pa
	}

	baseG, baseA := derive(2, 1.75)
	// mu scales as 1/sqrt(r): r=3 shrinks every mu by sqrt(2/3).
	g3, a3 := derive(3, 1.75)
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(g3.Mu/baseG.Mu-want) > 1e-9 || math.Abs(a3.Mu/baseA.Mu-want) > 1e-9 {
		t.Errorf("mu should scale by sqrt(2/3): GTX %g, ASIC %g, want %g",
			g3.Mu/baseG.Mu, a3.Mu/baseA.Mu, want)
	}
	// Ordering (ASIC above GPU in mu, below in... phi ordering) is
	// preserved across r in [1.5, 3] and alpha in [1.5, 2.25].
	for _, r := range []float64{1.5, 2, 3} {
		for _, alpha := range []float64{1.5, 1.75, 2.25} {
			pg, pa := derive(r, alpha)
			if pa.Mu <= pg.Mu {
				t.Errorf("r=%g alpha=%g: ASIC mu %g should exceed GTX mu %g",
					r, alpha, pa.Mu, pg.Mu)
			}
			if pa.Phi/pa.Mu >= pg.Phi/pg.Mu {
				t.Errorf("r=%g alpha=%g: ASIC energy-per-work should stay below the GPU's",
					r, alpha)
			}
		}
	}
}

// Property: mu scales linearly with device throughput; phi is invariant
// to throughput when efficiency moves with it.
func TestPropDeriveScaling(t *testing.T) {
	ref, _ := DefaultBCE(paper.MMM)
	prop := func(seed float64) bool {
		k := 0.5 + math.Mod(math.Abs(seed), 4)
		base := Measurement{Device: paper.ASIC, Workload: paper.MMM,
			Throughput: 694, AreaMM2: 36, Nm: 40, PowerW: 13.7}
		scaled := base
		scaled.Throughput *= k
		scaled.PowerW *= k // efficiency unchanged
		p0, err0 := Derive(base, ref)
		p1, err1 := Derive(scaled, ref)
		if err0 != nil || err1 != nil {
			return false
		}
		return math.Abs(p1.Mu/(p0.Mu*k)-1) < 1e-9 &&
			math.Abs(p1.Phi/(p0.Phi*k)-1) < 1e-9 // phi = mu/e ratio scales with mu at fixed e
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: doubling efficiency (same throughput, half power) halves phi
// and leaves mu unchanged.
func TestPropPhiTracksEfficiency(t *testing.T) {
	ref, _ := DefaultBCE(paper.MMM)
	base := Measurement{Device: paper.LX760, Workload: paper.MMM,
		Throughput: 204, AreaMM2: 385, Nm: 40, PowerW: 56.4}
	eff := base
	eff.PowerW /= 2
	p0, err0 := Derive(base, ref)
	p1, err1 := Derive(eff, ref)
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	if math.Abs(p1.Mu-p0.Mu) > 1e-12 {
		t.Errorf("mu changed with power: %g vs %g", p0.Mu, p1.Mu)
	}
	if math.Abs(p1.Phi-p0.Phi/2) > 1e-12 {
		t.Errorf("phi = %g, want %g", p1.Phi, p0.Phi/2)
	}
}
