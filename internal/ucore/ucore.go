// Package ucore implements Section 5.1 of the paper: deriving the U-core
// parameters (mu, phi) that characterize a BCE-sized unconventional core
// from measured device performance and power, and calibrating the
// Base-Core-Equivalent (BCE) reference from Core i7 measurements.
//
// The derivation (footnote 1 of the paper):
//
//	mu  = x_ucore / (x_i7 · sqrt(r))          x = perf / mm²  (40nm-normalized)
//	phi = mu · e_i7 / (r^((1-alpha)/2) · e_ucore)   e = perf / W
//
// where r = 2 is the Core i7 core size in BCE units (sized against an
// Intel Atom) and alpha = 1.75 is the sequential power-law exponent.
//
// The package also provides the inverse mapping — synthesizing absolute
// device throughput and power from published (mu, phi) — which the
// measurement simulator uses to construct FFT device models whose derived
// parameters land exactly on Table 5.
package ucore

import (
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/pollack"
)

// Measurement is one (device, workload) observation: absolute throughput
// in the workload's reporting unit (GFLOP/s, pseudo-GFLOP/s, or Mopt/s),
// the compute-only silicon area at the device's native node, and the
// steady-state compute power.
type Measurement struct {
	Device     paper.DeviceID
	Workload   paper.WorkloadID
	Throughput float64 // work units per second
	AreaMM2    float64 // core/cache-only area at native node
	Nm         int     // native feature size
	PowerW     float64 // compute power in watts
}

// Validate reports an error for non-physical measurements.
func (m Measurement) Validate() error {
	switch {
	case m.Throughput <= 0 || math.IsNaN(m.Throughput):
		return fmt.Errorf("ucore: %s/%s throughput must be positive", m.Device, m.Workload)
	case m.AreaMM2 <= 0 || math.IsNaN(m.AreaMM2):
		return fmt.Errorf("ucore: %s/%s area must be positive", m.Device, m.Workload)
	case m.Nm <= 0:
		return fmt.Errorf("ucore: %s/%s feature size must be positive", m.Device, m.Workload)
	case m.PowerW <= 0 || math.IsNaN(m.PowerW):
		return fmt.Errorf("ucore: %s/%s power must be positive", m.Device, m.Workload)
	}
	return nil
}

// PerMM2 returns throughput per 40nm-equivalent mm² (the paper's
// area-normalization step before any cross-device comparison).
func (m Measurement) PerMM2() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	a40, err := itrs.NormalizeAreaTo40nm(m.AreaMM2, m.Nm)
	if err != nil {
		return 0, err
	}
	return m.Throughput / a40, nil
}

// PerJoule returns throughput per watt (equivalently work per joule).
func (m Measurement) PerJoule() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return m.Throughput / m.PowerW, nil
}

// BCE is the calibrated Base-Core-Equivalent reference for one workload.
// All model quantities (budgets, bandwidths) are expressed relative to it.
type BCE struct {
	Workload paper.WorkloadID
	Law      pollack.Law
	R        float64 // fast-core size in BCE units (paper: 2)

	// Reference (Core i7) normalized metrics.
	XRef float64 // i7 throughput per 40nm-equivalent mm²
	ERef float64 // i7 throughput per watt

	// Absolute BCE anchors derived from the reference.
	PerfUnits float64 // BCE throughput in workload units/s
	Watts     float64 // BCE active power in watts
	AreaMM2   float64 // BCE area in mm² (at the reference node)
}

// CalibrateBCE derives the BCE reference from a Core i7 measurement. The
// i7 package-level throughput covers cores identical cores; each core is
// r BCE in size, so:
//
//	BCE perf  = (throughput/cores) / sqrt(r)         (Pollack)
//	BCE watts = BCE perf · r^((1-alpha)/2) / e_i7    (power law)
//	BCE area  = coreArea/cores/r
func CalibrateBCE(m Measurement, cores int, r float64, law pollack.Law) (BCE, error) {
	if err := m.Validate(); err != nil {
		return BCE{}, err
	}
	if m.Device != paper.CoreI7 {
		return BCE{}, fmt.Errorf("ucore: BCE calibration requires the Core i7 reference, got %s", m.Device)
	}
	if cores <= 0 {
		return BCE{}, errors.New("ucore: core count must be positive")
	}
	if r < 1 || math.IsNaN(r) {
		return BCE{}, errors.New("ucore: r must be >= 1")
	}
	x, err := m.PerMM2()
	if err != nil {
		return BCE{}, err
	}
	e, err := m.PerJoule()
	if err != nil {
		return BCE{}, err
	}
	perCore := m.Throughput / float64(cores)
	bcePerf := perCore / math.Sqrt(r)
	bceWatts := bcePerf * math.Pow(r, (1-law.Alpha())/2) / e
	return BCE{
		Workload:  m.Workload,
		Law:       law,
		R:         r,
		XRef:      x,
		ERef:      e,
		PerfUnits: bcePerf,
		Watts:     bceWatts,
		AreaMM2:   m.AreaMM2 / float64(cores) / r,
	}, nil
}

// DefaultBCE calibrates the BCE for a workload from the published Table 4
// Core i7 row (or the FFT anchor curve), using r = 2 and alpha = 1.75.
func DefaultBCE(w paper.WorkloadID) (BCE, error) {
	m, err := CoreI7Measurement(w)
	if err != nil {
		return BCE{}, err
	}
	return CalibrateBCE(m, 4, paper.SeqCoreBCE, pollack.Default())
}

// CoreI7Measurement reconstructs the Core i7 measurement for a workload
// from published data: Table 4 for MMM and BS, and the Figure 2/3 anchor
// curve for the FFT sizes.
func CoreI7Measurement(w paper.WorkloadID) (Measurement, error) {
	dev := paper.Table2[paper.CoreI7]
	switch w {
	case paper.MMM, paper.BS:
		row, ok := paper.Table4[w][paper.CoreI7]
		if !ok {
			return Measurement{}, fmt.Errorf("ucore: no Table 4 entry for i7/%s", w)
		}
		return Measurement{
			Device: paper.CoreI7, Workload: w,
			Throughput: row.Throughput,
			AreaMM2:    dev.CoreAreaMM2,
			Nm:         dev.Nm,
			PowerW:     row.Throughput / row.PerJoule,
		}, nil
	case paper.FFT64, paper.FFT1024, paper.FFT16384:
		n, err := fftSize(w)
		if err != nil {
			return Measurement{}, err
		}
		gflops, ok := paper.CoreI7FFTAnchors[n]
		if !ok {
			return Measurement{}, fmt.Errorf("ucore: no i7 FFT anchor for N=%d", n)
		}
		return Measurement{
			Device: paper.CoreI7, Workload: w,
			Throughput: gflops,
			AreaMM2:    dev.CoreAreaMM2,
			Nm:         dev.Nm,
			PowerW:     paper.CoreI7FFTCorePowerW,
		}, nil
	default:
		return Measurement{}, fmt.Errorf("ucore: unknown workload %q", w)
	}
}

// Params holds a derived (mu, phi) pair.
type Params struct {
	Mu  float64
	Phi float64
}

// Derive computes (mu, phi) for a U-core device measurement against the
// calibrated BCE (footnote 1 of the paper).
func Derive(m Measurement, ref BCE) (Params, error) {
	if m.Device == paper.CoreI7 {
		return Params{}, errors.New("ucore: the reference CPU is not a U-core")
	}
	if m.Workload != ref.Workload {
		return Params{}, fmt.Errorf("ucore: workload mismatch: measurement %s vs BCE %s", m.Workload, ref.Workload)
	}
	x, err := m.PerMM2()
	if err != nil {
		return Params{}, err
	}
	e, err := m.PerJoule()
	if err != nil {
		return Params{}, err
	}
	mu := x / (ref.XRef * math.Sqrt(ref.R))
	phi := mu * ref.ERef / (math.Pow(ref.R, (1-ref.Law.Alpha())/2) * e)
	return Params{Mu: mu, Phi: phi}, nil
}

// Invert synthesizes the absolute throughput and power a device must
// exhibit for Derive to return exactly p, given the device's compute area
// and native node. It is the exact inverse of Derive and is used to
// construct the FFT measurement database from published Table 5 values.
func Invert(p Params, areaMM2 float64, nm int, ref BCE) (throughput, powerW float64, err error) {
	if p.Mu <= 0 || p.Phi <= 0 {
		return 0, 0, errors.New("ucore: mu and phi must be positive")
	}
	a40, err := itrs.NormalizeAreaTo40nm(areaMM2, nm)
	if err != nil {
		return 0, 0, err
	}
	x := p.Mu * ref.XRef * math.Sqrt(ref.R)
	throughput = x * a40
	e := p.Mu * ref.ERef / (math.Pow(ref.R, (1-ref.Law.Alpha())/2) * p.Phi)
	powerW = throughput / e
	return throughput, powerW, nil
}

// DeriveTable5 recomputes the full Table 5 from a set of measurements
// (one Core i7 reference plus U-core rows per workload). Results are
// keyed like paper.Table5. Measurements for the i7 are used to calibrate
// the per-workload BCE.
func DeriveTable5(ms []Measurement) (map[paper.DeviceID]map[paper.WorkloadID]Params, error) {
	refs := make(map[paper.WorkloadID]BCE)
	for _, m := range ms {
		if m.Device != paper.CoreI7 {
			continue
		}
		ref, err := CalibrateBCE(m, 4, paper.SeqCoreBCE, pollack.Default())
		if err != nil {
			return nil, err
		}
		refs[m.Workload] = ref
	}
	out := make(map[paper.DeviceID]map[paper.WorkloadID]Params)
	for _, m := range ms {
		if m.Device == paper.CoreI7 {
			continue
		}
		ref, ok := refs[m.Workload]
		if !ok {
			return nil, fmt.Errorf("ucore: no Core i7 reference for workload %s", m.Workload)
		}
		p, err := Derive(m, ref)
		if err != nil {
			return nil, err
		}
		if out[m.Device] == nil {
			out[m.Device] = make(map[paper.WorkloadID]Params)
		}
		out[m.Device][m.Workload] = p
	}
	return out, nil
}

// PublishedParams returns the Table 5 (mu, phi) for a device/workload
// pair, with ok=false for the paper's dashes.
func PublishedParams(d paper.DeviceID, w paper.WorkloadID) (Params, bool) {
	row, ok := paper.Table5[d]
	if !ok {
		return Params{}, false
	}
	p, ok := row[w]
	if !ok {
		return Params{}, false
	}
	return Params{Mu: p.Mu, Phi: p.Phi}, true
}

func fftSize(w paper.WorkloadID) (int, error) {
	switch w {
	case paper.FFT64:
		return 64, nil
	case paper.FFT1024:
		return 1024, nil
	case paper.FFT16384:
		return 16384, nil
	default:
		return 0, fmt.Errorf("ucore: %s is not an FFT workload", w)
	}
}

// FFTSize exposes the input size behind an FFT workload ID.
func FFTSize(w paper.WorkloadID) (int, error) { return fftSize(w) }
