package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPlainAmdahlKnownValues(t *testing.T) {
	cases := []struct{ f, s, want float64 }{
		{0, 10, 1},          // nothing to speed up
		{1, 10, 10},         // everything sped up
		{0.5, 2, 4.0 / 3.0}, // classic
		{0.9, 10, 1 / (0.9/10 + 0.1)},
	}
	for _, c := range cases {
		got, err := Speedup(c.f, c.s)
		if err != nil {
			t.Fatalf("Speedup(%g,%g): %v", c.f, c.s, err)
		}
		if !almost(got, c.want) {
			t.Errorf("Speedup(%g,%g) = %g, want %g", c.f, c.s, got, c.want)
		}
	}
}

func TestLimit(t *testing.T) {
	got, err := Limit(0.99)
	if err != nil || !almost(got, 100) {
		t.Errorf("Limit(0.99) = %g, %v; want 100", got, err)
	}
	inf, err := Limit(1)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("Limit(1) = %g, want +Inf", inf)
	}
}

func TestGustafson(t *testing.T) {
	// f=1: S = n. f=0: S = 1.
	if s, _ := Gustafson(1, 64); !almost(s, 64) {
		t.Errorf("Gustafson(1,64) = %g, want 64", s)
	}
	if s, _ := Gustafson(0, 64); !almost(s, 1) {
		t.Errorf("Gustafson(0,64) = %g, want 1", s)
	}
}

func TestSymmetricMatchesHillMartyExamples(t *testing.T) {
	// With r = n (one big core), symmetric reduces to sqrt(n) regardless
	// of f (a single core runs both phases at sqrt(n)).
	for _, f := range []float64{0, 0.5, 0.9, 1} {
		got, err := SpeedupSymmetric(f, 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, 4) {
			t.Errorf("sym(f=%g, n=16, r=16) = %g, want 4", f, got)
		}
	}
	// With r = 1 (all BCEs), symmetric is plain Amdahl with s = n.
	got, _ := SpeedupSymmetric(0.9, 256, 1)
	want, _ := Speedup(0.9, 256)
	if !almost(got, want) {
		t.Errorf("sym(r=1) = %g, want Amdahl %g", got, want)
	}
}

func TestAsymmetricBeatsSymmetricAtHighF(t *testing.T) {
	// Hill & Marty's headline: asymmetric >= symmetric for the same n
	// when choosing the same r, because the fast core also helps in
	// parallel and BCEs are more area-efficient.
	for _, f := range []float64{0.5, 0.9, 0.975, 0.99} {
		sym, err1 := SpeedupSymmetric(f, 256, 4)
		asym, err2 := SpeedupAsymmetric(f, 256, 4)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if asym < sym {
			t.Errorf("f=%g: asym %g < sym %g", f, asym, sym)
		}
	}
}

func TestAsymmetricOffloadRelations(t *testing.T) {
	// Offload <= asymmetric always (the fast core's parallel help is lost).
	for _, f := range []float64{0.1, 0.5, 0.9, 0.999} {
		a, err1 := SpeedupAsymmetric(f, 64, 4)
		o, err2 := SpeedupAsymmetricOffload(f, 64, 4)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if o > a {
			t.Errorf("f=%g: offload %g > asym %g", f, o, a)
		}
	}
	// f = 0 returns pure sequential performance sqrt(r).
	if s, _ := SpeedupAsymmetricOffload(0, 64, 9); !almost(s, 3) {
		t.Errorf("offload(f=0, r=9) = %g, want 3", s)
	}
	// n == r with parallel work is an error.
	if _, err := SpeedupAsymmetricOffload(0.5, 4, 4); err != ErrNoProgram {
		t.Errorf("offload(n==r) err = %v, want ErrNoProgram", err)
	}
}

func TestHeterogeneousReducesToOffloadAtMuOne(t *testing.T) {
	for _, f := range []float64{0.3, 0.9, 0.99} {
		h, err1 := SpeedupHeterogeneous(f, 64, 4, 1)
		o, err2 := SpeedupAsymmetricOffload(f, 64, 4)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !almost(h, o) {
			t.Errorf("f=%g: het(mu=1) %g != offload %g", f, h, o)
		}
	}
}

func TestHeterogeneousScalesWithMu(t *testing.T) {
	// At f = 1 and r fixed, speedup = mu * (n - r): linear in mu.
	h1, _ := SpeedupHeterogeneous(1, 17, 1, 10)
	if !almost(h1, 160) {
		t.Errorf("het(f=1, n=17, r=1, mu=10) = %g, want 160", h1)
	}
	// Paper example shape: ASIC with mu=489 at f=0.999, n=19, r=2.
	h2, err := SpeedupHeterogeneous(0.999, 19, 2, 489)
	if err != nil {
		t.Fatal(err)
	}
	// Serial-bounded limit is sqrt(2)/0.001 = 1414; parallel term caps at
	// 489*17 = 8313; combined ~ 1183.
	want := 1 / (0.001/math.Sqrt2 + 0.999/(489*17))
	if !almost(h2, want) {
		t.Errorf("het ASIC example = %g, want %g", h2, want)
	}
}

func TestDynamic(t *testing.T) {
	// f=1: speedup n; f=0: sqrt(n).
	if s, _ := SpeedupDynamic(1, 64); !almost(s, 64) {
		t.Errorf("dynamic(f=1) = %g, want 64", s)
	}
	if s, _ := SpeedupDynamic(0, 64); !almost(s, 8) {
		t.Errorf("dynamic(f=0) = %g, want 8", s)
	}
	// Dynamic dominates symmetric and asymmetric for same n.
	for _, f := range []float64{0.2, 0.7, 0.95} {
		d, _ := SpeedupDynamic(f, 64)
		s, _ := SpeedupSymmetric(f, 64, 4)
		a, _ := SpeedupAsymmetric(f, 64, 4)
		if d < s || d < a {
			t.Errorf("f=%g: dynamic %g must dominate sym %g and asym %g", f, d, s, a)
		}
	}
}

func TestEvalDispatch(t *testing.T) {
	for _, m := range []Model{PlainAmdahl, Symmetric, Asymmetric, AsymmetricOffload, Heterogeneous, Dynamic} {
		got, err := Eval(m, 0.9, 64, 4, 2)
		if err != nil {
			t.Errorf("Eval(%v): %v", m, err)
		}
		if got <= 0 {
			t.Errorf("Eval(%v) = %g, want positive", m, got)
		}
	}
	if _, err := Eval(Model(99), 0.5, 4, 1, 1); err == nil {
		t.Error("unknown model must error")
	}
}

func TestModelString(t *testing.T) {
	names := map[Model]string{
		PlainAmdahl:       "amdahl",
		Symmetric:         "symmetric",
		Asymmetric:        "asymmetric",
		AsymmetricOffload: "asymmetric-offload",
		Heterogeneous:     "heterogeneous",
		Dynamic:           "dynamic",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Model(42).String() == "" {
		t.Error("unknown model should still print something")
	}
}

func TestSerialBoundedLimit(t *testing.T) {
	// Any heterogeneous speedup must respect the serial-bounded limit.
	lim, err := SerialBoundedLimit(0.99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lim, 200) {
		t.Errorf("SerialBoundedLimit(0.99, 4) = %g, want 200", lim)
	}
	h, _ := SpeedupHeterogeneous(0.99, 1e9, 4, 1e9)
	if h > lim {
		t.Errorf("het %g exceeded serial bound %g", h, lim)
	}
	if l, _ := SerialBoundedLimit(1, 4); !math.IsInf(l, 1) {
		t.Error("f=1 limit should be +Inf")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Speedup(-0.1, 2); err != ErrFraction {
		t.Errorf("want ErrFraction, got %v", err)
	}
	if _, err := Speedup(1.1, 2); err != ErrFraction {
		t.Errorf("want ErrFraction, got %v", err)
	}
	if _, err := Speedup(0.5, 0); err != ErrSpeedupS {
		t.Errorf("want ErrSpeedupS, got %v", err)
	}
	if _, err := SpeedupSymmetric(0.5, 0, 1); err != ErrResources {
		t.Errorf("want ErrResources, got %v", err)
	}
	if _, err := SpeedupSymmetric(0.5, 4, 0.5); err != ErrSeqCore {
		t.Errorf("want ErrSeqCore, got %v", err)
	}
	if _, err := SpeedupSymmetric(0.5, 4, 8); err != ErrSeqCore {
		t.Errorf("r > n: want ErrSeqCore, got %v", err)
	}
	if _, err := SpeedupHeterogeneous(0.5, 8, 2, -1); err != ErrMu {
		t.Errorf("want ErrMu, got %v", err)
	}
	if _, err := SpeedupDynamic(math.NaN(), 4); err != ErrFraction {
		t.Errorf("want ErrFraction, got %v", err)
	}
}

// ---- Property-based tests -------------------------------------------------

type amdahlArgs struct {
	f, n, r, mu float64
}

// genArgs maps arbitrary floats into valid model parameter space.
func genArgs(a, b, c, d float64) amdahlArgs {
	f := math.Mod(math.Abs(a), 1)
	n := 2 + math.Mod(math.Abs(b), 1000)
	r := 1 + math.Mod(math.Abs(c), n-1)
	mu := 0.01 + math.Mod(math.Abs(d), 1000)
	return amdahlArgs{f, n, r, mu}
}

func TestPropHeterogeneousMonotoneInN(t *testing.T) {
	prop := func(a, b, c, d float64) bool {
		x := genArgs(a, b, c, d)
		s1, err1 := SpeedupHeterogeneous(x.f, x.n, x.r, x.mu)
		s2, err2 := SpeedupHeterogeneous(x.f, x.n*2, x.r, x.mu)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 >= s1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropHeterogeneousMonotoneInMu(t *testing.T) {
	prop := func(a, b, c, d float64) bool {
		x := genArgs(a, b, c, d)
		s1, err1 := SpeedupHeterogeneous(x.f, x.n, x.r, x.mu)
		s2, err2 := SpeedupHeterogeneous(x.f, x.n, x.r, x.mu*3)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 >= s1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropSpeedupsRespectSerialBound(t *testing.T) {
	prop := func(a, b, c, d float64) bool {
		x := genArgs(a, b, c, d)
		if x.f == 1 {
			return true
		}
		lim, err := SerialBoundedLimit(x.f, x.r)
		if err != nil {
			return false
		}
		for _, m := range []Model{Symmetric, Asymmetric, AsymmetricOffload, Heterogeneous} {
			s, err := Eval(m, x.f, x.n, x.r, x.mu)
			if err != nil {
				return false
			}
			// Asymmetric's parallel phase includes the fast core, but its
			// serial phase is the same; the serial-bounded limit holds for
			// every model.
			if s > lim*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropAmdahlBetweenOneAndS(t *testing.T) {
	prop := func(a, b float64) bool {
		f := math.Mod(math.Abs(a), 1)
		s := 1 + math.Mod(math.Abs(b), 1e6)
		got, err := Speedup(f, s)
		if err != nil {
			return false
		}
		return got >= 1-1e-12 && got <= s+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropSymmetricOptimalRShifts(t *testing.T) {
	// At very high f, small r wins; at very low f, large r wins. This is
	// the Hill-Marty tension the paper builds on.
	bestR := func(f float64) float64 {
		best, bestS := 1.0, 0.0
		for r := 1.0; r <= 64; r *= 2 {
			s, err := SpeedupSymmetric(f, 64, r)
			if err != nil {
				continue
			}
			if s > bestS {
				bestS, best = s, r
			}
		}
		return best
	}
	if rLow, rHigh := bestR(0.1), bestR(0.999); rLow <= rHigh {
		t.Errorf("optimal r at f=0.1 (%g) should exceed optimal r at f=0.999 (%g)", rLow, rHigh)
	}
}
