// Package amdahl implements Amdahl's law and the multicore speedup models
// of Hill & Marty extended with U-cores by Chung et al. (MICRO 2010).
//
// All speedups are relative to the performance of a single Base-Core-
// Equivalent (BCE) core. A chip has n BCE units of compute resources in
// total, of which r are spent on one sequential ("fast") core whose
// performance follows Pollack's rule perf_seq(r) = sqrt(r). The parallel
// fraction f of the workload is assumed uniform, infinitely divisible, and
// perfectly scheduled (the paper's Section 2.1 assumptions).
//
// Five chip organizations are modeled:
//
//   - Symmetric: n/r identical cores of size r each; the sequential phase
//     runs on one of them.
//   - Asymmetric: one fast core of size r plus n-r BCE cores; in parallel
//     phases the fast core helps (perf_seq(r) + n - r).
//   - Asymmetric-offload: as asymmetric, but the power-hungry fast core is
//     switched off during parallel phases, leaving only the n-r BCEs. This
//     is the CMP baseline used in the paper's projections.
//   - Heterogeneous: one fast core of size r plus n-r BCE units of U-core
//     fabric executing parallel phases at relative performance mu per BCE.
//   - Dynamic (Hill & Marty's hypothetical): all n BCEs fuse into a core of
//     perf sqrt(n) for sequential phases and n BCEs for parallel phases.
//     The paper omits it from measured results but we include it for
//     completeness of the model family.
package amdahl

import (
	"errors"
	"fmt"
	"math"
)

// Model identifies one of the speedup formulas.
type Model int

const (
	// PlainAmdahl is the original 1967 fixed-work law.
	PlainAmdahl Model = iota
	// Symmetric is Hill & Marty's symmetric multicore.
	Symmetric
	// Asymmetric is Hill & Marty's asymmetric multicore.
	Asymmetric
	// AsymmetricOffload powers the fast core off during parallel phases
	// (Chung et al., Section 3.1).
	AsymmetricOffload
	// Heterogeneous executes parallel phases on U-cores (Section 3.3).
	Heterogeneous
	// Dynamic is Hill & Marty's idealized fusion machine.
	Dynamic
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case PlainAmdahl:
		return "amdahl"
	case Symmetric:
		return "symmetric"
	case Asymmetric:
		return "asymmetric"
	case AsymmetricOffload:
		return "asymmetric-offload"
	case Heterogeneous:
		return "heterogeneous"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Errors returned by the speedup functions.
var (
	ErrFraction  = errors.New("amdahl: parallel fraction f must be in [0, 1]")
	ErrResources = errors.New("amdahl: total resources n must be positive")
	ErrSeqCore   = errors.New("amdahl: sequential core size r must be in [1, n]")
	ErrSpeedupS  = errors.New("amdahl: enhancement factor S must be positive")
	ErrMu        = errors.New("amdahl: U-core relative performance mu must be positive")
	ErrNoProgram = errors.New("amdahl: no parallel resources remain (n == r) while f > 0")
)

// Speedup is the original Amdahl's law: a fraction f of execution is sped
// up by a factor s. Speedup = 1 / (f/s + (1-f)).
func Speedup(f, s float64) (float64, error) {
	if err := checkFraction(f); err != nil {
		return 0, err
	}
	if s <= 0 || math.IsNaN(s) {
		return 0, ErrSpeedupS
	}
	return 1 / (f/s + (1 - f)), nil
}

// Limit returns the asymptotic speedup of Amdahl's law as the enhancement
// factor goes to infinity: 1/(1-f). It returns +Inf for f == 1.
func Limit(f float64) (float64, error) {
	if err := checkFraction(f); err != nil {
		return 0, err
	}
	if f == 1 {
		return math.Inf(1), nil
	}
	return 1 / (1 - f), nil
}

// Gustafson returns the scaled speedup of Gustafson's law for a parallel
// fraction f (measured on the parallel system) and n processors:
// S = n + (1-f)(1-n). Included as one of the model-family extensions the
// paper discusses in related work.
func Gustafson(f, n float64) (float64, error) {
	if err := checkFraction(f); err != nil {
		return 0, err
	}
	if n <= 0 || math.IsNaN(n) {
		return 0, ErrResources
	}
	return n + (1-f)*(1-n), nil
}

// PerfSeq is Pollack's rule: the performance of a sequential core of size
// r BCE units, relative to one BCE core.
func PerfSeq(r float64) float64 { return math.Sqrt(r) }

// SpeedupSymmetric evaluates Hill & Marty's symmetric model: n/r cores,
// each of size r and performance sqrt(r).
//
//	Speedup = 1 / ( (1-f)/perf_seq(r) + f·r/(n·perf_seq(r)) )
func SpeedupSymmetric(f, n, r float64) (float64, error) {
	if err := checkCommon(f, n, r); err != nil {
		return 0, err
	}
	p := PerfSeq(r)
	return 1 / ((1-f)/p + f*r/(n*p)), nil
}

// SpeedupAsymmetric evaluates Hill & Marty's asymmetric model: one core of
// size r plus n-r BCEs, all usable in parallel phases.
//
//	Speedup = 1 / ( (1-f)/perf_seq(r) + f/(perf_seq(r)+n-r) )
func SpeedupAsymmetric(f, n, r float64) (float64, error) {
	if err := checkCommon(f, n, r); err != nil {
		return 0, err
	}
	p := PerfSeq(r)
	return 1 / ((1-f)/p + f/(p+n-r)), nil
}

// SpeedupAsymmetricOffload evaluates the paper's modified asymmetric model
// in which the sequential core is powered off during parallel phases, so
// only the n-r BCE cores contribute:
//
//	Speedup = 1 / ( (1-f)/perf_seq(r) + f/(n-r) )
//
// It requires n > r whenever f > 0.
func SpeedupAsymmetricOffload(f, n, r float64) (float64, error) {
	if err := checkCommon(f, n, r); err != nil {
		return 0, err
	}
	if f == 0 {
		return PerfSeq(r), nil
	}
	if n == r {
		return 0, ErrNoProgram
	}
	p := PerfSeq(r)
	return 1 / ((1-f)/p + f/(n-r)), nil
}

// SpeedupHeterogeneous evaluates the U-core model of Section 3.3: parallel
// phases execute on n-r BCE units of U-core fabric with relative
// performance mu per BCE unit; the conventional core does not contribute
// during parallel sections.
//
//	Speedup = 1 / ( (1-f)/perf_seq(r) + f/(mu·(n-r)) )
func SpeedupHeterogeneous(f, n, r, mu float64) (float64, error) {
	if err := checkCommon(f, n, r); err != nil {
		return 0, err
	}
	if mu <= 0 || math.IsNaN(mu) {
		return 0, ErrMu
	}
	if f == 0 {
		return PerfSeq(r), nil
	}
	if n == r {
		return 0, ErrNoProgram
	}
	p := PerfSeq(r)
	return 1 / ((1-f)/p + f/(mu*(n-r))), nil
}

// SpeedupDynamic evaluates Hill & Marty's dynamic model: sequential phases
// run at sqrt(n), parallel phases at n.
func SpeedupDynamic(f, n float64) (float64, error) {
	if err := checkFraction(f); err != nil {
		return 0, err
	}
	if n <= 0 || math.IsNaN(n) {
		return 0, ErrResources
	}
	return 1 / ((1-f)/math.Sqrt(n) + f/n), nil
}

// Eval dispatches on the model. mu is only consulted for Heterogeneous;
// r is ignored for PlainAmdahl (which uses n as the enhancement factor)
// and Dynamic.
func Eval(m Model, f, n, r, mu float64) (float64, error) {
	switch m {
	case PlainAmdahl:
		return Speedup(f, n)
	case Symmetric:
		return SpeedupSymmetric(f, n, r)
	case Asymmetric:
		return SpeedupAsymmetric(f, n, r)
	case AsymmetricOffload:
		return SpeedupAsymmetricOffload(f, n, r)
	case Heterogeneous:
		return SpeedupHeterogeneous(f, n, r, mu)
	case Dynamic:
		return SpeedupDynamic(f, n)
	default:
		return 0, fmt.Errorf("amdahl: unknown model %v", m)
	}
}

// SerialBoundedLimit returns the upper bound on any of the multicore
// speedups at parallel fraction f with a sequential core of size r: even
// with infinite parallel throughput, speedup <= perf_seq(r)/(1-f).
// Returns +Inf for f == 1.
func SerialBoundedLimit(f, r float64) (float64, error) {
	if err := checkFraction(f); err != nil {
		return 0, err
	}
	if r < 1 || math.IsNaN(r) {
		return 0, ErrSeqCore
	}
	if f == 1 {
		return math.Inf(1), nil
	}
	return PerfSeq(r) / (1 - f), nil
}

func checkFraction(f float64) error {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return ErrFraction
	}
	return nil
}

func checkCommon(f, n, r float64) error {
	if err := checkFraction(f); err != nil {
		return err
	}
	if n <= 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return ErrResources
	}
	if r < 1 || r > n || math.IsNaN(r) {
		return ErrSeqCore
	}
	return nil
}
