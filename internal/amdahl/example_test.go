package amdahl_test

import (
	"fmt"

	"github.com/calcm/heterosim/internal/amdahl"
)

// The classic law: 90% parallel work sped up 10x.
func ExampleSpeedup() {
	s, _ := amdahl.Speedup(0.9, 10)
	fmt.Printf("%.2f\n", s)
	// Output: 5.26
}

// Hill & Marty's symmetric multicore: 256 BCE of area spent on cores of
// size 4 (performance 2 each).
func ExampleSpeedupSymmetric() {
	s, _ := amdahl.SpeedupSymmetric(0.9, 256, 4)
	fmt.Printf("%.1f\n", s)
	// Output: 17.5
}

// The paper's U-core model: the 40nm FFT ASIC (mu = 489) on a 19-BCE die
// with a 2-BCE sequential core, at three parallelism levels. The gains
// only open up at high f — the paper's first conclusion in miniature.
func ExampleSpeedupHeterogeneous() {
	for _, f := range []float64{0.5, 0.9, 0.99} {
		s, _ := amdahl.SpeedupHeterogeneous(f, 19, 2, 489)
		fmt.Printf("f=%.2f: %.1f\n", f, s)
	}
	// Output:
	// f=0.50: 2.8
	// f=0.90: 14.1
	// f=0.99: 139.1
}

// Powering the big core off during parallel phases (the paper's
// asymmetric-offload variant) versus keeping it on.
func ExampleSpeedupAsymmetricOffload() {
	on, _ := amdahl.SpeedupAsymmetric(0.95, 64, 9)
	off, _ := amdahl.SpeedupAsymmetricOffload(0.95, 64, 9)
	fmt.Printf("asymmetric %.2f, offload %.2f\n", on, off)
	// Output: asymmetric 30.26, offload 29.46
}
