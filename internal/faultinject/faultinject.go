// Package faultinject is a deterministic, seed-driven chaos middleware
// for the serving stack: it wraps an http.Handler and injects the
// failure modes real traffic meets — added latency, 5xx errors,
// connection resets, and truncated response bodies — with probabilities
// drawn from one seeded stream, so a test run with a fixed seed injects
// a reproducible fault mix.
//
// The package is compiled into tests (the chaos suite drives the full
// client -> server loop through it) and into the daemon only behind an
// explicit env guard: heterosimd enables it when HETEROSIMD_FAULTS is
// set, parsed by Parse, and logs loudly that it is serving faults.
package faultinject

import (
	"bytes"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/calcm/heterosim/internal/telemetry"
)

// Config parameterizes the injector. All probabilities are in [0, 1];
// ResetP + ErrorP + TruncateP must not exceed 1 (they partition one
// draw, so at most one terminal fault fires per request). Latency is
// drawn independently and can precede any outcome, including success.
type Config struct {
	// Seed drives the fault stream; the same seed injects the same
	// fault sequence across runs (up to goroutine interleaving when the
	// wrapped handler serves concurrent requests).
	Seed int64

	// LatencyP is the probability of sleeping Latency before serving.
	LatencyP float64
	// Latency is the injected delay (default 25ms when LatencyP > 0).
	Latency time.Duration

	// ErrorP is the probability of answering with an injected 5xx
	// (alternating 500/503 by a further draw) instead of serving.
	ErrorP float64

	// ResetP is the probability of aborting the connection with no
	// response at all — the client sees a reset/EOF.
	ResetP float64

	// TruncateP is the probability of serving the real response with a
	// full-length Content-Length but only half the body before aborting,
	// so the client sees an unexpected EOF mid-read.
	TruncateP float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"latency", c.LatencyP}, {"error", c.ErrorP},
		{"reset", c.ResetP}, {"truncate", c.TruncateP},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s probability %v outside [0, 1]", p.name, p.v)
		}
	}
	if s := c.ResetP + c.ErrorP + c.TruncateP; s > 1 {
		return fmt.Errorf("faultinject: reset+error+truncate = %v exceeds 1", s)
	}
	if c.Latency < 0 {
		return fmt.Errorf("faultinject: latency must be >= 0")
	}
	return nil
}

// Stats counts what the injector has done, for test assertions and the
// daemon's shutdown log.
type Stats struct {
	Requests  int64 `json:"requests"`
	Latencies int64 `json:"latencies"`
	Errors    int64 `json:"errors"`
	Resets    int64 `json:"resets"`
	Truncates int64 `json:"truncates"`
	Clean     int64 `json:"clean"`
}

// Injector wraps handlers with the configured fault mix. Construct with
// New; safe for concurrent use.
type Injector struct {
	cfg    Config
	logger *slog.Logger

	mu  sync.Mutex
	rng *rand.Rand

	requests  atomic.Int64
	latencies atomic.Int64
	errors    atomic.Int64
	resets    atomic.Int64
	truncates atomic.Int64
	clean     atomic.Int64
}

// New builds an injector from the config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Latency == 0 && cfg.LatencyP > 0 {
		cfg.Latency = 25 * time.Millisecond
	}
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// SetLogger attaches a structured logger: every injected fault then
// emits exactly one log line carrying the originating request ID (from
// the X-Request-ID header, or the request context when a middleware
// above already resolved it), so a chaos-test failure is traceable from
// the client through the injector. Call before the injector serves
// traffic.
func (in *Injector) SetLogger(l *slog.Logger) { in.logger = l }

// logFault emits the one structured line an injected fault owes its
// request.
func (in *Injector) logFault(r *http.Request, kind string) {
	if in.logger == nil {
		return
	}
	id := telemetry.SanitizeRequestID(r.Header.Get(telemetry.HeaderRequestID))
	if id == "" {
		id = telemetry.RequestID(r.Context())
	}
	in.logger.LogAttrs(r.Context(), slog.LevelWarn, "fault injected",
		slog.String("kind", kind),
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
	)
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Requests:  in.requests.Load(),
		Latencies: in.latencies.Load(),
		Errors:    in.errors.Load(),
		Resets:    in.resets.Load(),
		Truncates: in.truncates.Load(),
		Clean:     in.clean.Load(),
	}
}

// verdict is one request's drawn fate.
type verdict int

const (
	pass verdict = iota
	injectError
	injectReset
	injectTruncate
)

// draw consumes the seeded stream under the lock: one uniform for the
// latency coin, one partitioned uniform for the terminal fault, and one
// for the 500-vs-503 choice (drawn unconditionally to keep the stream
// length per request fixed, so fault sequences are stable across config
// tweaks).
func (in *Injector) draw() (sleep bool, v verdict, code int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	sleep = in.rng.Float64() < in.cfg.LatencyP
	u := in.rng.Float64()
	switch {
	case u < in.cfg.ResetP:
		v = injectReset
	case u < in.cfg.ResetP+in.cfg.ErrorP:
		v = injectError
	case u < in.cfg.ResetP+in.cfg.ErrorP+in.cfg.TruncateP:
		v = injectTruncate
	}
	code = http.StatusInternalServerError
	if in.rng.Float64() < 0.5 {
		code = http.StatusServiceUnavailable
	}
	return sleep, v, code
}

// Wrap returns next with the fault mix spliced in front of it.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in.requests.Add(1)
		sleep, v, code := in.draw()
		if sleep {
			in.latencies.Add(1)
			in.logFault(r, "latency")
			time.Sleep(in.cfg.Latency)
		}
		switch v {
		case injectReset:
			in.resets.Add(1)
			in.logFault(r, "reset")
			// ErrAbortHandler makes net/http drop the connection without
			// a response (and without logging a stack trace).
			panic(http.ErrAbortHandler)
		case injectError:
			in.errors.Add(1)
			in.logFault(r, "error")
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Fault-Injected", "error")
			if code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"error":"injected fault (status %d)"}`, code)
		case injectTruncate:
			in.truncates.Add(1)
			in.logFault(r, "truncate")
			rec := newRecorder()
			next.ServeHTTP(rec, r)
			h := w.Header()
			for k, vs := range rec.header {
				h[k] = vs
			}
			h.Set("X-Fault-Injected", "truncate")
			h.Set("Content-Length", strconv.Itoa(rec.buf.Len()))
			w.WriteHeader(rec.code)
			w.Write(rec.buf.Bytes()[:rec.buf.Len()/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			// Abort with the body half-sent: the declared Content-Length
			// is never satisfied, so the client reads an unexpected EOF.
			panic(http.ErrAbortHandler)
		default:
			in.clean.Add(1)
			next.ServeHTTP(w, r)
		}
	})
}

// recorder buffers the wrapped handler's response so the truncate fault
// can declare the full length and send only half.
type recorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), code: http.StatusOK}
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.buf.Write(p) }

// Parse builds a Config from the HETEROSIMD_FAULTS spec format: a
// comma-separated list of key=value fields, e.g.
//
//	seed=42,latency=0.1:50ms,error=0.1,reset=0.05,truncate=0.05
//
// latency takes prob or prob:duration; error, reset, and truncate take
// probabilities; seed an int64.
func Parse(spec string) (Config, error) {
	var cfg Config
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("faultinject: field %q is not key=value", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: seed: %v", err)
			}
			cfg.Seed = n
		case "latency":
			prob, dur, hasDur := strings.Cut(v, ":")
			p, err := strconv.ParseFloat(prob, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: latency: %v", err)
			}
			cfg.LatencyP = p
			if hasDur {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return Config{}, fmt.Errorf("faultinject: latency: %v", err)
				}
				cfg.Latency = d
			}
		case "error", "reset", "truncate":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: %s: %v", k, err)
			}
			switch k {
			case "error":
				cfg.ErrorP = p
			case "reset":
				cfg.ResetP = p
			case "truncate":
				cfg.TruncateP = p
			}
		default:
			return Config{}, fmt.Errorf("faultinject: unknown field %q", k)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
