package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=42,latency=0.1:50ms,error=0.1,reset=0.05,truncate=0.05")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, LatencyP: 0.1, Latency: 50 * time.Millisecond, ErrorP: 0.1, ResetP: 0.05, TruncateP: 0.05}
	if cfg != want {
		t.Errorf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse("error=0.25"); err != nil || cfg.ErrorP != 0.25 {
		t.Errorf("minimal spec = (%+v, %v)", cfg, err)
	}
	for _, bad := range []string{
		"nope",             // not key=value
		"mystery=1",        // unknown key
		"error=1.5",        // probability out of range
		"seed=abc",         // unparsable seed
		"latency=0.1:fast", // unparsable duration
		"error=0.5,reset=0.4,truncate=0.3", // partition exceeds 1
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{ErrorP: -0.1}).Validate(); err == nil {
		t.Error("negative probability must fail")
	}
	if err := (Config{Latency: -time.Second}).Validate(); err == nil {
		t.Error("negative latency must fail")
	}
	if _, err := New(Config{ErrorP: 2}); err == nil {
		t.Error("New must reject invalid config")
	}
}

// okHandler is the innocent backend the injector corrupts.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"fine, thanks"}`)
	})
}

// TestDeterministicFaultSequence: the same seed must produce the same
// verdict sequence, and different seeds (almost surely) a different one.
func TestDeterministicFaultSequence(t *testing.T) {
	sequence := func(seed int64) []verdict {
		in, err := New(Config{Seed: seed, ErrorP: 0.2, ResetP: 0.2, TruncateP: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		var vs []verdict
		for i := 0; i < 64; i++ {
			_, v, _ := in.draw()
			vs = append(vs, v)
		}
		return vs
	}
	a, b := sequence(7), sequence(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 64-draw sequences")
	}
}

// TestInjectedErrorResponse: an error verdict yields a JSON 5xx with the
// marker header, leaving the backend untouched.
func TestInjectedErrorResponse(t *testing.T) {
	in, err := New(Config{Seed: 1, ErrorP: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	res, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError && res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want injected 5xx", res.StatusCode)
	}
	if res.Header.Get("X-Fault-Injected") != "error" {
		t.Errorf("X-Fault-Injected = %q, want error", res.Header.Get("X-Fault-Injected"))
	}
	body, _ := io.ReadAll(res.Body)
	if !strings.Contains(string(body), "injected fault") {
		t.Errorf("body = %q", body)
	}
	if st := in.Stats(); st.Errors != 1 || st.Requests != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestInjectedReset: a reset verdict drops the connection with no
// response; the client sees a transport error, never a status.
func TestInjectedReset(t *testing.T) {
	in, err := New(Config{Seed: 1, ResetP: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	res, err := http.Get(ts.URL)
	if err == nil {
		res.Body.Close()
		t.Fatalf("got status %d, want a transport error", res.StatusCode)
	}
	if st := in.Stats(); st.Resets != 1 {
		t.Errorf("stats = %+v, want 1 reset", st)
	}
}

// TestInjectedTruncation: a truncate verdict serves the real status and
// a full-length Content-Length but only half the body, so the read fails
// with an unexpected EOF.
func TestInjectedTruncation(t *testing.T) {
	in, err := New(Config{Seed: 1, TruncateP: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	res, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("headers should arrive intact: %v", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want the backend's 200", res.StatusCode)
	}
	body, err := io.ReadAll(res.Body)
	if err == nil {
		t.Fatalf("read %q cleanly, want an unexpected EOF", body)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") && !strings.Contains(err.Error(), "reset") {
		t.Errorf("read error = %v", err)
	}
	if st := in.Stats(); st.Truncates != 1 {
		t.Errorf("stats = %+v, want 1 truncate", st)
	}
}

// TestCleanPassthrough: with no faults configured every request reaches
// the backend unharmed.
func TestCleanPassthrough(t *testing.T) {
	in, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	for i := 0; i < 10; i++ {
		res, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil || res.StatusCode != http.StatusOK || !strings.Contains(string(body), "fine") {
			t.Fatalf("request %d: (%d, %q, %v)", i, res.StatusCode, body, err)
		}
	}
	if st := in.Stats(); st.Clean != 10 || st.Requests != 10 {
		t.Errorf("stats = %+v, want 10 clean of 10", st)
	}
}

// TestLatencyInjection: a latency verdict delays the response by at
// least the configured duration.
func TestLatencyInjection(t *testing.T) {
	in, err := New(Config{Seed: 1, LatencyP: 1, Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	start := time.Now()
	res, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms injected latency", took)
	}
	if st := in.Stats(); st.Latencies != 1 {
		t.Errorf("stats = %+v, want 1 latency", st)
	}
}
