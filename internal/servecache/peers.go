package servecache

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync/atomic"

	"github.com/calcm/heterosim/internal/baseurl"
	"github.com/calcm/heterosim/internal/telemetry"
)

// This file is the peer-aware tier: consistent-hash ownership of
// canonical cache keys across a static peer list, so N daemons behave
// like one big cache. Every peer derives the identical ring from the
// sorted canonical membership, so for any key exactly one process is
// the owner cluster-wide. A non-owner answers by fetching the owner's
// response over HTTP (single hop — the owner never forwards again),
// with the local singleflight table still coalescing concurrent
// identical requests so the cluster performs at most one fetch, and the
// owner's own singleflight at most one compute, per cold key.
//
// Failure never loses a request: the model layer is pure, so when the
// owner is unreachable the non-owner simply computes locally — a local
// copy can never be wrong, only redundant — and retains peer-fetched
// bytes in the stale tier for serving when both paths fail.

// ringReplicas is the number of virtual nodes per peer. 64 keeps the
// per-peer ownership share within a few percent of uniform for small
// static clusters while the ring stays tiny (64*N points).
const ringReplicas = 64

// Ring is a consistent-hash ring over a static peer list. Ownership is
// a pure function of (sorted membership, key): every peer that was
// given the same member set — in any order — computes the same owner
// for every key.
type Ring struct {
	peers  []string
	points []ringPoint // sorted by hash, ties by peer index
}

type ringPoint struct {
	hash uint64
	peer int
}

// NewRing builds the ring. peers must be non-empty, canonical
// (baseurl.Normalize spellings), and free of duplicates; order does not
// matter — membership is sorted internally.
func NewRing(peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, errors.New("servecache: ring needs at least one peer")
	}
	sorted := baseurl.Sorted(peers)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("servecache: duplicate peer %q", sorted[i])
		}
	}
	r := &Ring{peers: sorted, points: make([]ringPoint, 0, len(sorted)*ringReplicas)}
	for pi, peer := range sorted {
		for v := 0; v < ringReplicas; v++ {
			h := fnv.New64a()
			h.Write([]byte(peer))
			h.Write([]byte{'#'})
			h.Write([]byte(strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), peer: pi})
		}
	}
	// Ties (identical vnode hashes across peers) break toward the lower
	// sorted-peer index, keeping the order deterministic everywhere.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the sorted canonical membership.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// mix64 is the splitmix64 finalizer: FNV-1a alone avalanches poorly on
// near-identical inputs (vnode spellings differ by one digit), which
// clumps ring points and skews ownership shares badly; the finalizer
// restores a near-uniform spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the peer owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	kh := mix64(h.Sum64())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].peer]
}

// ParsePeers canonicalizes a cluster membership flag pair: self is this
// process's advertised base URL, peers a comma-separated list of every
// member (self included). Both go through internal/baseurl so spelling
// variants collapse before the ring is built, and self must name one of
// the members — a process that is not in its own ring would forward
// every request.
func ParsePeers(self, peers string) (string, []string, error) {
	selfNorm, err := baseurl.Normalize(self)
	if err != nil {
		return "", nil, fmt.Errorf("servecache: peer self: %w", err)
	}
	list, err := baseurl.NormalizeList(peers)
	if err != nil {
		return "", nil, fmt.Errorf("servecache: peer list: %w", err)
	}
	list = baseurl.Sorted(list)
	found := false
	for _, p := range list {
		if p == selfNorm {
			found = true
			break
		}
	}
	if !found {
		return "", nil, fmt.Errorf("servecache: self %q is not in the peer list %v", selfNorm, list)
	}
	return selfNorm, list, nil
}

// Fetch retrieves the owner's response for key over the wire. It
// returns the response bytes plus the owner's cache-outcome string
// (the X-Heterosim-Cache header), which feeds the peer hit/miss
// counters. Implementations must mark the request as a peer hop so the
// owner serves locally instead of forwarding again.
type Fetch func(ctx context.Context, owner, key string) ([]byte, string, error)

// Cluster layers peer ownership over a Cache. Construct with
// NewCluster; safe for concurrent use.
type Cluster struct {
	cache *Cache
	ring  *Ring
	self  string
	fetch Fetch

	fetches        atomic.Int64
	peerHits       atomic.Int64
	peerMisses     atomic.Int64
	fetchErrors    atomic.Int64
	localFallbacks atomic.Int64
}

// NewCluster builds the peer tier for one process. peers must include
// self; both must already be canonical (use ParsePeers).
func NewCluster(cache *Cache, self string, peers []string, fetch Fetch) (*Cluster, error) {
	if cache == nil {
		return nil, errors.New("servecache: cluster needs a cache")
	}
	if fetch == nil {
		return nil, errors.New("servecache: cluster needs a fetch function")
	}
	ring, err := NewRing(peers)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range ring.peers {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("servecache: self %q is not in the peer list %v", self, ring.peers)
	}
	return &Cluster{cache: cache, ring: ring, self: self, fetch: fetch}, nil
}

// Owner returns the peer owning key.
func (cl *Cluster) Owner(key string) string { return cl.ring.Owner(key) }

// IsLocal reports whether this process owns key.
func (cl *Cluster) IsLocal(key string) bool { return cl.ring.Owner(key) == cl.self }

// Self returns this process's canonical base URL.
func (cl *Cluster) Self() string { return cl.self }

// Peers returns the sorted canonical membership.
func (cl *Cluster) Peers() []string { return cl.ring.Peers() }

// Do is the cluster-aware Cache.Do: when this process owns key the
// local cache answers exactly as in the single-node case; otherwise the
// response is fetched from the owner (outcome Peer), with the local
// singleflight table coalescing concurrent identical requests onto one
// fetch. Fetched bytes are retained in the stale tier — the owner holds
// the live copy for the cluster — so a later owner outage can still be
// served. When the fetch fails, fn computes locally (purity makes the
// local copy correct) and fills the live tier; when both fail, retained
// stale bytes are the last resort.
func (cl *Cluster) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if cl.IsLocal(key) {
		return cl.cache.Do(ctx, key, fn)
	}
	return cl.doPeer(ctx, key, fn)
}

// doPeer is the non-owner path. It reuses the shard's entry and
// inflight tables so local hits and coalescing behave identically to
// Cache.Do; only the "compute" step differs — fetch the owner first,
// evaluate locally only when that fails.
func (cl *Cluster) doPeer(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c := cl.cache
	span := telemetry.StartSpan(ctx, "cache")
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		// A locally computed fallback copy from an earlier owner outage.
		s.order.MoveToFront(el)
		val := el.Value.(*lruEntry).val
		s.mu.Unlock()
		c.hits.Add(1)
		span.End()
		return val, Hit, nil
	}
	if call, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		defer span.End()
		select {
		case <-call.done:
			if call.err != nil {
				if val, ok := s.staleGet(key); ok {
					c.staleServed.Add(1)
					return val, Stale, nil
				}
			}
			return call.val, Coalesced, call.err
		case <-ctx.Done():
			if val, ok := s.staleGet(key); ok {
				c.staleServed.Add(1)
				return val, Stale, nil
			}
			return nil, Coalesced, ctx.Err()
		}
	}
	call := &call{done: make(chan struct{})}
	s.inflight[key] = call
	s.mu.Unlock()
	c.inflight.Add(1)
	span.End()

	owner := cl.ring.Owner(key)
	pspan := telemetry.StartSpan(ctx, "peer")
	val, outcome, ferr := cl.fetch(ctx, owner, key)
	pspan.End()
	cl.fetches.Add(1)
	if ferr == nil {
		switch outcome {
		case "hit", "coalesced", "stale":
			cl.peerHits.Add(1)
		default:
			cl.peerMisses.Add(1)
		}
		call.val, call.err = val, nil
		s.mu.Lock()
		delete(s.inflight, key)
		// Retain, don't insert: the live copy lives at the owner; the
		// stale shadow is this peer's insurance against owner loss.
		s.retain(key, val)
		s.mu.Unlock()
		c.inflight.Add(-1)
		close(call.done)
		return val, Peer, nil
	}
	cl.fetchErrors.Add(1)

	// Owner unreachable: compute locally. The model is pure, so the
	// local result is byte-identical to whatever the owner would have
	// served; it fills the live tier here so repeated requests during
	// the outage are local hits.
	c.misses.Add(1)
	call.val, call.err = fn(ctx)
	s.mu.Lock()
	delete(s.inflight, key)
	if call.err == nil {
		s.insert(key, call.val, c)
	}
	s.mu.Unlock()
	c.inflight.Add(-1)
	close(call.done)
	if call.err == nil {
		cl.localFallbacks.Add(1)
		return call.val, Miss, nil
	}
	if val, ok := s.staleGet(key); ok {
		c.staleServed.Add(1)
		return val, Stale, nil
	}
	return call.val, Miss, call.err
}

// PeerStats is a point-in-time snapshot of the peer-tier counters.
type PeerStats struct {
	Self           string   `json:"self"`
	Peers          []string `json:"peers"`
	Fetches        int64    `json:"fetches"`
	Hits           int64    `json:"hits"`
	Misses         int64    `json:"misses"`
	FetchErrors    int64    `json:"fetchErrors"`
	LocalFallbacks int64    `json:"localFallbacks"`
}

// Stats snapshots the peer counters.
func (cl *Cluster) Stats() PeerStats {
	return PeerStats{
		Self:           cl.self,
		Peers:          cl.ring.Peers(),
		Fetches:        cl.fetches.Load(),
		Hits:           cl.peerHits.Load(),
		Misses:         cl.peerMisses.Load(),
		FetchErrors:    cl.fetchErrors.Load(),
		LocalFallbacks: cl.localFallbacks.Load(),
	}
}
