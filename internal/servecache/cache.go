// Package servecache is the serving layer's result cache: a sharded LRU
// keyed by a canonical hash of the request, with singleflight-style
// coalescing so N concurrent identical requests cost one evaluation.
//
// The model layer is pure — a response is a function of the request — so
// the cache stores final marshaled response bytes and every hit is
// byte-identical to the evaluation that produced it. Shards keep lock
// contention off the hot path (the shard index is an FNV-1a hash of the
// key), and per-shard LRU lists bound memory to a configurable entry
// budget. Hit/miss/eviction/coalesced/inflight counters feed /metrics.
//
// Purity also powers the stale-while-revalidate fallback: an entry
// evicted from the live LRU is retained in an equally bounded stale LRU,
// and when a fresh evaluation fails transiently (deadline, admission
// rejection, cancellation) the retained bytes are served instead — they
// can never be wrong, only previously computed. Callers see the
// degradation via the Stale outcome.
package servecache

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"github.com/calcm/heterosim/internal/telemetry"
)

// Outcome classifies how Do satisfied a request.
type Outcome int

const (
	// Hit means the response was already cached.
	Hit Outcome = iota
	// Miss means this call ran the evaluation and (on success) filled
	// the cache.
	Miss
	// Coalesced means an identical evaluation was already in flight and
	// this call waited for its result instead of recomputing.
	Coalesced
	// Stale means the fresh evaluation failed (or the caller's deadline
	// expired waiting for it) and a previously computed response was
	// served from the stale retention tier instead.
	Stale
	// Peer means another process owns this key in the cluster's
	// consistent-hash ring and the response was fetched from it
	// (see Cluster).
	Peer
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	case Stale:
		return "stale"
	case Peer:
		return "peer"
	default:
		return "unknown"
	}
}

// DefaultShards is the shard count used by New. Sixteen keeps lock
// contention negligible at the worker counts the server admits while
// costing a few hundred bytes of fixed overhead.
const DefaultShards = 16

// call is one in-flight evaluation that later arrivals coalesce onto.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// shard is one lock domain: an LRU over its slice of the key space, the
// in-flight table for coalescing, and the stale retention LRU that holds
// entries evicted from the live tier for fallback serving.
type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*call

	stale      map[string]*list.Element
	staleOrder *list.List // front = most recently retained
}

// lruEntry is the list payload.
type lruEntry struct {
	key string
	val []byte
}

// Cache is a sharded LRU with request coalescing. The zero value is not
// usable; construct with New or NewSharded.
type Cache struct {
	shards []*shard

	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	evictions   atomic.Int64
	staleServed atomic.Int64
	inflight    atomic.Int64 // current gauge, not cumulative
}

// New builds a cache holding at most entries responses across
// DefaultShards shards. entries == 0 disables storage but keeps
// coalescing: concurrent identical requests still collapse to one
// evaluation, sequential ones recompute.
func New(entries int) (*Cache, error) {
	return NewSharded(entries, DefaultShards)
}

// NewSharded is New with an explicit shard count. The entry budget is
// spread evenly; each shard gets at least one slot when entries > 0.
func NewSharded(entries, shards int) (*Cache, error) {
	if entries < 0 {
		return nil, errors.New("servecache: entries must be >= 0")
	}
	if shards < 1 {
		return nil, errors.New("servecache: shards must be >= 1")
	}
	perShard := entries / shards
	if entries > 0 && perShard == 0 {
		perShard = 1
	}
	c := &Cache{shards: make([]*shard, shards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity:   perShard,
			entries:    make(map[string]*list.Element),
			order:      list.New(),
			inflight:   make(map[string]*call),
			stale:      make(map[string]*list.Element),
			staleOrder: list.New(),
		}
	}
	return c, nil
}

// shardFor hashes the key (FNV-1a 64) onto a shard.
func (c *Cache) shardFor(key string) *shard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Get returns the cached response for key, if present, promoting it to
// most-recently-used. The returned bytes are shared: callers must treat
// them as immutable.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// Do returns the response for key, computing it with fn at most once per
// cache generation: a cached response is returned immediately (Hit); if
// an identical evaluation is already in flight the call waits for it and
// shares its result (Coalesced); otherwise this call runs fn and, on
// success, fills the cache (Miss). Errors are shared with coalesced
// waiters but never cached, so a failed evaluation can be retried.
//
// ctx bounds this caller's participation: fn receives it (so evaluation
// work can observe the request deadline), and a coalesced waiter whose
// ctx expires stops waiting and returns ctx.Err() instead of hanging on
// someone else's evaluation. When fn fails — or the wait is abandoned —
// and a previously computed response survives in the stale retention
// tier, those bytes are served with the Stale outcome and a nil error:
// the model is pure, so retained bytes are correct, merely not fresh.
//
// The returned bytes are shared across callers: treat them as immutable.
func (c *Cache) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The "cache" stage records time spent inside the cache machinery:
	// the lookup on every path, plus the coalesced wait for another
	// caller's evaluation. A miss's own evaluation is excluded — fn's
	// cost belongs to the gate/evaluate stages the caller records.
	span := telemetry.StartSpan(ctx, "cache")
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		val := el.Value.(*lruEntry).val
		s.mu.Unlock()
		c.hits.Add(1)
		span.End()
		return val, Hit, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		defer span.End()
		select {
		case <-cl.done:
			if cl.err != nil {
				if val, ok := s.staleGet(key); ok {
					c.staleServed.Add(1)
					return val, Stale, nil
				}
			}
			return cl.val, Coalesced, cl.err
		case <-ctx.Done():
			if val, ok := s.staleGet(key); ok {
				c.staleServed.Add(1)
				return val, Stale, nil
			}
			return nil, Coalesced, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)
	c.inflight.Add(1)
	span.End()

	cl.val, cl.err = fn(ctx)

	s.mu.Lock()
	delete(s.inflight, key)
	if cl.err == nil {
		s.insert(key, cl.val, c)
	}
	s.mu.Unlock()
	c.inflight.Add(-1)
	close(cl.done)
	if cl.err != nil {
		if val, ok := s.staleGet(key); ok {
			c.staleServed.Add(1)
			return val, Stale, nil
		}
	}
	return cl.val, Miss, cl.err
}

// insert adds (or refreshes) key under the shard lock, evicting the
// least-recently-used entry into the stale retention tier when the shard
// is full. A key re-entering the live tier leaves no stale shadow.
func (s *shard) insert(key string, val []byte, c *Cache) {
	if s.capacity == 0 {
		return
	}
	if el, ok := s.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			old := oldest.Value.(*lruEntry)
			delete(s.entries, old.key)
			s.retain(old.key, old.val)
			c.evictions.Add(1)
		}
	}
	s.entries[key] = s.order.PushFront(&lruEntry{key: key, val: val})
	if el, ok := s.stale[key]; ok {
		s.staleOrder.Remove(el)
		delete(s.stale, key)
	}
}

// retain parks an evicted entry in the stale tier, which is bounded by
// the same per-shard capacity as the live tier. Caller holds s.mu.
func (s *shard) retain(key string, val []byte) {
	if el, ok := s.stale[key]; ok {
		el.Value.(*lruEntry).val = val
		s.staleOrder.MoveToFront(el)
		return
	}
	if s.staleOrder.Len() >= s.capacity {
		oldest := s.staleOrder.Back()
		if oldest != nil {
			s.staleOrder.Remove(oldest)
			delete(s.stale, oldest.Value.(*lruEntry).key)
		}
	}
	s.stale[key] = s.staleOrder.PushFront(&lruEntry{key: key, val: val})
}

// staleGet looks the key up in the stale retention tier.
func (s *shard) staleGet(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.stale[key]; ok {
		s.staleOrder.MoveToFront(el)
		return el.Value.(*lruEntry).val, true
	}
	return nil, false
}

// Len returns the number of cached responses across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry budget across all shards.
func (c *Cache) Capacity() int {
	n := 0
	for _, s := range c.shards {
		n += s.capacity
	}
	return n
}

// StaleLen returns the number of retained (evicted) responses across all
// shards.
func (c *Cache) StaleLen() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.staleOrder.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"`
	Evictions    int64 `json:"evictions"`
	StaleServed  int64 `json:"staleServed"`
	Inflight     int64 `json:"inflight"`
	Entries      int   `json:"entries"`
	StaleEntries int   `json:"staleEntries"`
	Capacity     int   `json:"capacity"`
	Shards       int   `json:"shards"`
}

// Stats snapshots the counters. Entries walks the shards, so the value
// is consistent per shard but not across a concurrent fill.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Evictions:    c.evictions.Load(),
		StaleServed:  c.staleServed.Load(),
		Inflight:     c.inflight.Load(),
		Entries:      c.Len(),
		StaleEntries: c.StaleLen(),
		Capacity:     c.Capacity(),
		Shards:       len(c.shards),
	}
}
