package servecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// errTransient stands in for a failed refresh (deadline, admission
// rejection) in every case below.
var errTransient = errors.New("transient refresh failure")

// TestStaleUnderConcurrentExpiry is the table-driven race suite for the
// stale-while-revalidate tier: hot keys are refreshed (and the refresh
// fails) while churn goroutines force concurrent evictions through the
// live LRU. Run under -race, it holds the purity contract under every
// interleaving: a nil-error response always carries the key's canonical
// bytes — hit, coalesced, or stale, it can never be wrong — and an error
// is only ever the refresh failure or the caller's own context error.
func TestStaleUnderConcurrentExpiry(t *testing.T) {
	value := func(key string) string { return "v:" + key }
	cases := []struct {
		name     string
		entries  int // total live capacity
		shards   int
		hot      int // hot keys being refreshed
		workers  int // goroutines per hot key
		rounds   int // refresh attempts per worker
		churn    int // churn goroutines minting unique cold keys
		failRate int // refresh failure: every Nth call fails (1 = always)
		// wantStale asserts the run must serve stale at least once.
		// Only set where retention survives deterministically — churn
		// floods the bounded stale LRU and can evict every retained
		// copy, which is itself a legal interleaving the other cases
		// exercise.
		wantStale bool
	}{
		// One shard, one slot: every insert evicts, every eviction
		// lands in the stale tier, every failed refresh races a
		// concurrent expiry.
		{name: "single-slot always-failing", entries: 1, shards: 1, hot: 2, workers: 8, rounds: 30, churn: 2, failRate: 1},
		// Default sharding with capacity far below the key population,
		// so eviction pressure is constant across shards.
		{name: "sharded under churn", entries: 8, shards: 4, hot: 6, workers: 4, rounds: 20, churn: 4, failRate: 1},
		// Flapping refresh: successes re-enter the live tier (clearing
		// the stale shadow) while failures race to read it.
		{name: "flapping refresh", entries: 2, shards: 1, hot: 3, workers: 6, rounds: 25, churn: 2, failRate: 2},
		// No churn: only the hot keys themselves compete for slots, so
		// the last-evicted hot key keeps its retained copy for the whole
		// run (failures never insert, so nothing displaces it) and every
		// failed refresh of that key must serve stale.
		{name: "mutual eviction only", entries: 1, shards: 1, hot: 4, workers: 4, rounds: 25, churn: 0, failRate: 1, wantStale: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewSharded(tc.entries, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			// Warm every hot key so the stale tier has something to
			// retain once churn evicts them.
			for i := 0; i < tc.hot; i++ {
				key := fmt.Sprintf("hot-%d", i)
				if _, _, err := c.Do(context.Background(), key, func(context.Context) ([]byte, error) {
					return []byte(value(key)), nil
				}); err != nil {
					t.Fatal(err)
				}
			}

			ctx := context.Background()
			var calls atomic.Int64
			var staleSeen atomic.Int64
			var hotWG, churnWG sync.WaitGroup
			errCh := make(chan error, tc.hot*tc.workers*tc.rounds)

			for i := 0; i < tc.hot; i++ {
				key := fmt.Sprintf("hot-%d", i)
				want := value(key)
				for w := 0; w < tc.workers; w++ {
					hotWG.Add(1)
					go func() {
						defer hotWG.Done()
						for r := 0; r < tc.rounds; r++ {
							v, out, err := c.Do(ctx, key, func(context.Context) ([]byte, error) {
								if n := calls.Add(1); tc.failRate == 1 || n%int64(tc.failRate) == 0 {
									return nil, errTransient
								}
								return []byte(want), nil
							})
							if err != nil {
								// The only legitimate error is the shared
								// refresh failure (no retained copy left).
								if !errors.Is(err, errTransient) {
									errCh <- fmt.Errorf("%s: unexpected error %w", key, err)
									return
								}
								continue
							}
							if string(v) != want {
								errCh <- fmt.Errorf("%s: outcome %v served %q, want %q", key, out, v, want)
								return
							}
							switch out {
							case Hit, Miss, Coalesced:
							case Stale:
								staleSeen.Add(1)
							default:
								errCh <- fmt.Errorf("%s: unknown outcome %v", key, out)
								return
							}
						}
					}()
				}
			}
			// Churn goroutines flood unique cold keys through the same
			// shards, forcing concurrent evictions of the hot entries
			// (live and stale tiers both) while the refreshes run.
			stopChurn := make(chan struct{})
			for g := 0; g < tc.churn; g++ {
				churnWG.Add(1)
				go func(g int) {
					defer churnWG.Done()
					for n := 0; ; n++ {
						select {
						case <-stopChurn:
							return
						default:
						}
						key := fmt.Sprintf("cold-%d-%d", g, n)
						if _, _, err := c.Do(ctx, key, func(context.Context) ([]byte, error) {
							return []byte(value(key)), nil
						}); err != nil {
							errCh <- fmt.Errorf("churn %s: %w", key, err)
							return
						}
					}
				}(g)
			}

			// Hot workers finish their rounds first (churn keeps the
			// eviction pressure on the whole time), then the churn is
			// stopped and drained.
			waitTimeout(t, &hotWG, nil)
			waitTimeout(t, &churnWG, stopChurn)

			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			st := c.Stats()
			if st.Hits < 0 || st.Misses <= 0 {
				t.Errorf("implausible counters: %+v", st)
			}
			if tc.wantStale && staleSeen.Load() == 0 && st.StaleServed == 0 {
				t.Errorf("expected stale serving but none happened (stats %+v)", st)
			}
			if c.StaleLen() > c.Capacity() {
				t.Errorf("stale tier %d exceeds its bound %d", c.StaleLen(), c.Capacity())
			}
		})
	}
}

// waitTimeout optionally closes a stop channel, then waits for the
// group with a watchdog so a deadlock fails the test instead of hanging
// the suite.
func waitTimeout(t *testing.T, wg *sync.WaitGroup, stop chan struct{}) {
	t.Helper()
	if stop != nil {
		close(stop)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers deadlocked")
	}
}

// TestStaleEntryEvictedWhileWaitersBlocked pins the nastiest
// interleaving: waiters coalesce onto a failing in-flight refresh while
// churn evicts the key's stale retention entry out from under them. Each
// waiter must get either the retained bytes (Stale, nil error) or the
// refresh error — never a foreign value, never a hang.
func TestStaleEntryEvictedWhileWaitersBlocked(t *testing.T) {
	c, err := NewSharded(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, "a")
	fill(t, c, "b") // "a" now lives only in the stale tier

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make(chan error, 16)

	// Leader: holds the refresh in flight until released, then fails.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(context.Background(), "a", func(context.Context) ([]byte, error) {
			close(started)
			<-release
			return nil, errTransient
		})
	}()
	<-started

	// Waiters coalesce onto the leader's in-flight call.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "a", func(context.Context) ([]byte, error) {
				return nil, errTransient
			})
			switch {
			case err == nil && out == Stale && string(v) == "a":
			case err == nil && out == Coalesced && v == nil:
				// Coalesced onto a failed call after the stale entry was
				// evicted: surfaced as the shared result. Do reports the
				// error in that case, so this arm should be unreachable.
				results <- fmt.Errorf("coalesced success with nil value")
			case err != nil && errors.Is(err, errTransient):
			default:
				results <- fmt.Errorf("waiter got (%q, %v, %v)", v, out, err)
			}
		}()
	}

	// Churn: evict the stale copy of "a" while the waiters are blocked
	// (the stale LRU is bounded by the live capacity, so one insert
	// cycle pushes it out).
	fill(t, c, "c")
	fill(t, c, "d")

	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		t.Error(err)
	}
}
