package servecache

import (
	"strings"
	"testing"
)

// FuzzParsePeers drives arbitrary flag spellings through the peer-list
// parser and, when a membership is accepted, checks the ring invariants
// the cluster depends on: construction succeeds, ownership is total
// (every key has exactly one owner from the membership), deterministic,
// and independent of the spelling that produced the membership.
func FuzzParsePeers(f *testing.F) {
	f.Add("127.0.0.1:9000", "127.0.0.1:9000")
	f.Add("127.0.0.1:9000", "127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002")
	f.Add("http://a:1", "http://a:1/,b:2")
	f.Add("https://secure:443", "https://secure:443,http://plain:80")
	f.Add("a:1", "a:1,a:1")              // duplicate
	f.Add("a:1", "b:2,c:3")              // self missing
	f.Add("", "a:1")                     // empty self
	f.Add("a:1", "")                     // empty list
	f.Add("a:1", ",,,")                  // only separators
	f.Add("ftp://a:1", "ftp://a:1")      // bad scheme
	f.Add("http://", "http://")          // empty host
	f.Add("a:1?q=1", "a:1?q=1")          // query
	f.Add("http://u:p@h:1", "http://u:p@h:1")
	f.Add("  spaced:80  ", " spaced:80 , other:81 ")
	f.Add("[::1]:8080", "[::1]:8080,127.0.0.1:1")

	f.Fuzz(func(t *testing.T, self, peers string) {
		selfNorm, list, err := ParsePeers(self, peers)
		if err != nil {
			return
		}
		// Accepted memberships must build a ring...
		ring, err := NewRing(list)
		if err != nil {
			t.Fatalf("ParsePeers accepted %q/%q but NewRing rejected: %v", self, peers, err)
		}
		// ...that contains self...
		found := false
		for _, p := range list {
			if p == selfNorm {
				found = true
			}
			if strings.TrimSpace(p) != p || p == "" {
				t.Fatalf("non-canonical member %q", p)
			}
		}
		if !found {
			t.Fatalf("self %q missing from accepted membership %v", selfNorm, list)
		}
		// ...with total, deterministic, re-parse-stable ownership.
		_, list2, err := ParsePeers(selfNorm, strings.Join(list, ","))
		if err != nil {
			t.Fatalf("canonical membership failed to re-parse: %v", err)
		}
		ring2, err := NewRing(list2)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"", "k", "/v1/optimize\x00{}", self + peers} {
			owner := ring.Owner(key)
			ok := false
			for _, p := range list {
				if p == owner {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("owner %q of key %q is not a member of %v", owner, key, list)
			}
			if o2 := ring2.Owner(key); o2 != owner {
				t.Fatalf("ownership not re-parse-stable for key %q: %q vs %q", key, owner, o2)
			}
		}
	})
}
