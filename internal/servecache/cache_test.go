package servecache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative entries must fail")
	}
	if _, err := NewSharded(8, 0); err == nil {
		t.Error("zero shards must fail")
	}
	c, err := NewSharded(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A sub-shard entry budget still gets one slot per shard.
	if got := c.Capacity(); got != 8 {
		t.Errorf("Capacity() = %d, want 8 (one slot per shard)", got)
	}
}

func TestDoHitMissAndGet(t *testing.T) {
	c, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	fn := func(context.Context) ([]byte, error) { calls++; return []byte("payload"), nil }

	v, out, err := c.Do(context.Background(), "k", fn)
	if err != nil || out != Miss || string(v) != "payload" {
		t.Fatalf("first Do = (%q, %v, %v), want miss", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", fn)
	if err != nil || out != Hit || string(v) != "payload" {
		t.Fatalf("second Do = (%q, %v, %v), want hit", v, out, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	if v, ok := c.Get("k"); !ok || string(v) != "payload" {
		t.Errorf("Get = (%q, %v), want cached payload", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("Get of absent key must miss")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits (Do+Get), 2 misses (Do+Get), 1 entry", st)
	}
}

func TestErrorsAreSharedButNotCached(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	_, out, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) || out != Miss {
		t.Fatalf("failed Do = (%v, %v), want miss with boom", out, err)
	}
	// The failure was not cached: the next call re-evaluates and can succeed.
	v, out, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) { calls++; return []byte("ok"), nil })
	if err != nil || out != Miss || string(v) != "ok" {
		t.Fatalf("retry Do = (%q, %v, %v), want fresh miss", v, out, err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2", calls)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (only the success cached)", c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One shard makes the LRU order fully observable.
	c, err := NewSharded(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(k string) {
		if _, _, err := c.Do(context.Background(), k, func(context.Context) ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	fill("a")
	fill("b")
	c.Get("a") // promote a; b is now least recently used
	fill("c")  // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was promoted and must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c was just inserted and must survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestZeroCapacityStillCoalesces(t *testing.T) {
	c, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	var evals atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
				evals.Add(1)
				<-gate
				return []byte("once"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the single evaluation is in flight, then release it.
	for c.Stats().Inflight == 0 {
	}
	close(gate)
	wg.Wait()
	if n := evals.Load(); n != 1 {
		t.Errorf("evaluations = %d, want 1 (coalesced)", n)
	}
	for i, r := range results {
		if !bytes.Equal(r, []byte("once")) {
			t.Errorf("waiter %d got %q", i, r)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0 (storage disabled)", c.Len())
	}
	// Storage is off, so a later identical request recomputes.
	if _, out, _ := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) { evals.Add(1); return []byte("again"), nil }); out != Miss {
		t.Errorf("post-drain Do outcome = %v, want miss", out)
	}
}

// TestConcurrentIdenticalRequestsCoalesce is the core contract: N
// concurrent identical requests cost exactly one evaluation and every
// caller observes byte-identical bytes. Run with -race.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	c, err := New(128)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	var evals atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]byte, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := c.Do(context.Background(), "hot", func(context.Context) ([]byte, error) {
				evals.Add(1)
				return []byte("expensive result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := evals.Load(); n != 1 {
		t.Errorf("evaluations = %d, want exactly 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("result %d differs from result 0", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != goroutines-1 {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, goroutines-1)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight gauge = %d after drain, want 0", st.Inflight)
	}
}

// TestConcurrentMixedKeys hammers many distinct keys across shards to
// give the race detector surface area on the LRU paths.
func TestConcurrentMixedKeys(t *testing.T) {
	c, err := New(32)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("key-%d", (g*7+r)%50)
				want := []byte("val-" + key)
				v, _, err := c.Do(context.Background(), key, func(context.Context) ([]byte, error) { return want, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(v, want) {
					t.Errorf("key %s returned %q", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}
