package servecache

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fill inserts key -> key bytes through the miss path.
func fill(t *testing.T, c *Cache, key string) {
	t.Helper()
	_, out, err := c.Do(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte(key), nil
	})
	if err != nil || out != Miss {
		t.Fatalf("fill %s = (%v, %v), want clean miss", key, out, err)
	}
}

// TestStaleServedAfterEvictionOnError is the stale-while-revalidate
// contract: an entry evicted from the live LRU is retained, and when the
// fresh evaluation fails the retained bytes are served with the Stale
// outcome and no error.
func TestStaleServedAfterEvictionOnError(t *testing.T) {
	c, err := NewSharded(1, 1) // capacity one: the second insert evicts the first
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, "a")
	fill(t, c, "b") // evicts a into the stale tier
	if got := c.StaleLen(); got != 1 {
		t.Fatalf("StaleLen = %d, want 1 retained entry", got)
	}

	boom := errors.New("transient failure")
	v, out, err := c.Do(context.Background(), "a", func(context.Context) ([]byte, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatalf("Do after failed revalidation returned error %v, want stale fallback", err)
	}
	if out != Stale || string(v) != "a" {
		t.Fatalf("Do = (%q, %v), want retained bytes with Stale outcome", v, out)
	}
	if st := c.Stats(); st.StaleServed != 1 {
		t.Errorf("StaleServed = %d, want 1", st.StaleServed)
	}

	// A key with no retained copy still surfaces the evaluation error.
	if _, _, err := c.Do(context.Background(), "never-seen", func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Errorf("unretained key returned %v, want the evaluation error", err)
	}
}

// TestStaleShadowClearedOnReinsert proves a key that re-enters the live
// tier leaves no stale shadow behind (the live copy always wins, and the
// stale tier cannot grow a duplicate).
func TestStaleShadowClearedOnReinsert(t *testing.T) {
	c, err := NewSharded(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, "a")
	fill(t, c, "b") // a -> stale
	fill(t, c, "a") // a back to live (evicting b), stale shadow cleared
	if got := c.StaleLen(); got != 1 {
		t.Fatalf("StaleLen = %d, want only b retained", got)
	}
	if v, ok := c.Get("a"); !ok || string(v) != "a" {
		t.Fatalf("live a = (%q, %v), want hit", v, ok)
	}
}

// TestStaleTierIsBounded proves retention cannot outgrow the live
// capacity: the stale tier evicts its own LRU.
func TestStaleTierIsBounded(t *testing.T) {
	c, err := NewSharded(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		fill(t, c, k)
	}
	if got, want := c.StaleLen(), 2; got != want {
		t.Errorf("StaleLen = %d, want bounded at %d", got, want)
	}
	if got := c.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

// TestCoalescedWaiterDeadlineFallsBackToStale: a waiter whose context
// expires while an identical evaluation is in flight serves the retained
// copy when one exists, and ctx.Err() when not.
func TestCoalescedWaiterDeadlineFallsBackToStale(t *testing.T) {
	c, err := NewSharded(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, "a")
	fill(t, c, "b") // a -> stale

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Do(context.Background(), "a", func(context.Context) ([]byte, error) {
			close(started)
			<-release
			return []byte("fresh"), nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	v, out, err := c.Do(ctx, "a", func(context.Context) ([]byte, error) {
		t.Error("waiter must coalesce, not evaluate")
		return nil, nil
	})
	if err != nil || out != Stale || string(v) != "a" {
		t.Fatalf("expired waiter = (%q, %v, %v), want stale fallback", v, out, err)
	}

	// The same expired wait on a key with no retained copy returns the
	// context error instead of hanging.
	started2 := make(chan struct{})
	go func() {
		c.Do(context.Background(), "c", func(context.Context) ([]byte, error) {
			close(started2)
			<-release
			return []byte("c"), nil
		})
	}()
	<-started2
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, _, err := c.Do(ctx2, "c", func(context.Context) ([]byte, error) {
		return nil, nil
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter with no stale copy returned %v, want DeadlineExceeded", err)
	}
}
