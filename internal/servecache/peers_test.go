package servecache

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return peers
}

// Ownership must be a pure function of (membership, key), independent
// of the order the membership was supplied in.
func TestRingOwnerOrderIndependent(t *testing.T) {
	peers := testPeers(5)
	r1, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), peers...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2, err := NewRing(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("/v1/optimize\x00{\"f\":%d}", i)
		if got, want := r2.Owner(key), r1.Owner(key); got != want {
			t.Fatalf("key %q: owner %q under shuffled membership, %q under sorted", key, got, want)
		}
	}
}

// Every peer must own a non-trivial share of the key space: with 64
// virtual nodes the split should be within a small factor of uniform.
func TestRingOwnerBalance(t *testing.T) {
	peers := testPeers(3)
	r, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 30_000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / n
		if math.Abs(share-1.0/3) > 0.15 {
			t.Errorf("peer %s owns %.1f%% of keys, want ~33%%", p, share*100)
		}
	}
}

func TestRingSinglePeerOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"http://one:1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "http://one:1" {
			t.Fatalf("owner = %q", got)
		}
	}
}

func TestRingRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("NewRing(nil) accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}); err == nil {
		t.Error("NewRing accepted duplicate peer")
	}
}

func TestParsePeers(t *testing.T) {
	self, list, err := ParsePeers("127.0.0.1:9001", "http://127.0.0.1:9002,127.0.0.1:9001, 127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	if self != "http://127.0.0.1:9001" {
		t.Errorf("self = %q", self)
	}
	want := []string{"http://127.0.0.1:9000", "http://127.0.0.1:9001", "http://127.0.0.1:9002"}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("list = %v, want %v", list, want)
		}
	}

	if _, _, err := ParsePeers("127.0.0.1:9", "127.0.0.1:10,127.0.0.1:11"); err == nil {
		t.Error("ParsePeers accepted a self outside the membership")
	}
	if _, _, err := ParsePeers("", "a:1"); err == nil {
		t.Error("ParsePeers accepted empty self")
	}
	if _, _, err := ParsePeers("a:1", ""); err == nil {
		t.Error("ParsePeers accepted empty peer list")
	}
}

// clusterPair builds a 2-peer cluster view for the non-owner process:
// keys owned by "other" exercise the peer path.
func clusterPair(t *testing.T, fetch Fetch) (*Cluster, string) {
	t.Helper()
	cache, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	self, other := "http://127.0.0.1:9000", "http://127.0.0.1:9001"
	cl, err := NewCluster(cache, self, []string{self, other}, fetch)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key the *other* peer owns.
	for i := 0; ; i++ {
		key := fmt.Sprintf("/v1/op\x00{\"i\":%d}", i)
		if cl.Owner(key) == other {
			return cl, key
		}
	}
}

func TestClusterLocalKeyUsesLocalCache(t *testing.T) {
	cache, _ := New(16)
	self := "http://127.0.0.1:9000"
	cl, err := NewCluster(cache, self, []string{self}, func(context.Context, string, string) ([]byte, string, error) {
		t.Fatal("fetch called for a locally owned key")
		return nil, "", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	val, out, err := cl.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("v"), nil
	})
	if err != nil || string(val) != "v" || out != Miss {
		t.Fatalf("Do = %q, %v, %v", val, out, err)
	}
	_, out, _ = cl.Do(context.Background(), "k", nil)
	if out != Hit {
		t.Fatalf("second Do outcome = %v, want Hit", out)
	}
}

func TestClusterPeerFetch(t *testing.T) {
	var fetched atomic.Int64
	cl, key := clusterPair(t, func(_ context.Context, owner, k string) ([]byte, string, error) {
		fetched.Add(1)
		return []byte("owner-bytes"), "hit", nil
	})
	val, out, err := cl.Do(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Fatal("local compute despite reachable owner")
		return nil, nil
	})
	if err != nil || string(val) != "owner-bytes" || out != Peer {
		t.Fatalf("Do = %q, %v, %v", val, out, err)
	}
	if fetched.Load() != 1 {
		t.Fatalf("fetches = %d", fetched.Load())
	}
	st := cl.Stats()
	if st.Fetches != 1 || st.Hits != 1 || st.Misses != 0 || st.FetchErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The fetched copy is retained in the stale tier, not the live one.
	if cl.cache.Len() != 0 || cl.cache.StaleLen() != 1 {
		t.Fatalf("live=%d stale=%d, want 0/1", cl.cache.Len(), cl.cache.StaleLen())
	}
}

func TestClusterPeerMissCounted(t *testing.T) {
	cl, key := clusterPair(t, func(context.Context, string, string) ([]byte, string, error) {
		return []byte("b"), "miss", nil
	})
	if _, _, err := cl.Do(context.Background(), key, nil); err != nil {
		t.Fatal(err)
	}
	if st := cl.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Concurrent identical requests at a non-owner coalesce onto ONE fetch:
// singleflight is preserved cluster-wide.
func TestClusterCoalescesFetches(t *testing.T) {
	var fetches atomic.Int64
	gate := make(chan struct{})
	cl, key := clusterPair(t, func(ctx context.Context, _, _ string) ([]byte, string, error) {
		fetches.Add(1)
		<-gate
		return []byte("b"), "miss", nil
	})
	const n = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out, err := cl.Do(context.Background(), key, nil)
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = out
		}(i)
	}
	// Release the fetch only once every other caller has registered as
	// a coalesced waiter, so none can arrive after completion and start
	// a second fetch.
	for cl.cache.Stats().Coalesced < n-1 {
	}
	close(gate)
	wg.Wait()
	if fetches.Load() != 1 {
		t.Fatalf("fetches = %d, want 1 (coalesced)", fetches.Load())
	}
	peers, coalesced := 0, 0
	for _, o := range outcomes {
		switch o {
		case Peer:
			peers++
		case Coalesced:
			coalesced++
		default:
			t.Fatalf("unexpected outcome %v", o)
		}
	}
	if peers != 1 || coalesced != n-1 {
		t.Fatalf("peers=%d coalesced=%d", peers, coalesced)
	}
}

// Owner unreachable: the non-owner computes locally, the request is
// never lost, and the local result fills the live tier so the outage
// is absorbed.
func TestClusterFetchFailureFallsBackToLocalCompute(t *testing.T) {
	var computes atomic.Int64
	cl, key := clusterPair(t, func(context.Context, string, string) ([]byte, string, error) {
		return nil, "", errors.New("connection refused")
	})
	fn := func(context.Context) ([]byte, error) {
		computes.Add(1)
		return []byte("local"), nil
	}
	val, out, err := cl.Do(context.Background(), key, fn)
	if err != nil || string(val) != "local" || out != Miss {
		t.Fatalf("Do = %q, %v, %v", val, out, err)
	}
	st := cl.Stats()
	if st.FetchErrors != 1 || st.LocalFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// During the outage the local copy serves as a plain hit.
	_, out, err = cl.Do(context.Background(), key, fn)
	if err != nil || out != Hit {
		t.Fatalf("second Do = %v, %v", out, err)
	}
	if computes.Load() != 1 {
		t.Fatalf("computes = %d", computes.Load())
	}
}

// Owner unreachable AND local compute failing: previously fetched bytes
// are served stale.
func TestClusterStaleServeWhenOwnerAndComputeFail(t *testing.T) {
	healthy := true
	cl, key := clusterPair(t, func(context.Context, string, string) ([]byte, string, error) {
		if healthy {
			return []byte("owner-bytes"), "hit", nil
		}
		return nil, "", errors.New("blackholed")
	})
	if _, _, err := cl.Do(context.Background(), key, nil); err != nil {
		t.Fatal(err)
	}
	healthy = false
	val, out, err := cl.Do(context.Background(), key, func(context.Context) ([]byte, error) {
		return nil, errors.New("evaluation failed")
	})
	if err != nil || string(val) != "owner-bytes" || out != Stale {
		t.Fatalf("Do = %q, %v, %v", val, out, err)
	}
}

func TestClusterValidation(t *testing.T) {
	cache, _ := New(16)
	fetch := func(context.Context, string, string) ([]byte, string, error) { return nil, "", nil }
	if _, err := NewCluster(nil, "http://a:1", []string{"http://a:1"}, fetch); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewCluster(cache, "http://a:1", []string{"http://a:1"}, nil); err == nil {
		t.Error("nil fetch accepted")
	}
	if _, err := NewCluster(cache, "http://x:1", []string{"http://a:1"}, fetch); err == nil {
		t.Error("self outside membership accepted")
	}
}

func TestPeerOutcomeString(t *testing.T) {
	if Peer.String() != "peer" {
		t.Fatalf("Peer.String() = %q", Peer.String())
	}
}
