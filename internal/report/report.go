// Package report renders heterosim results for terminals and files:
// aligned ASCII tables, multi-series ASCII line charts (the repository's
// stand-in for the paper's figures), and CSV export.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; it is padded or truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64s are rendered compactly, everything else uses %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, FormatFloat(v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatFloat renders a float compactly: 3 significant-ish decimals for
// small magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Series is one line of a chart.
type Series struct {
	Name   string
	Values []float64 // NaN marks a gap (e.g. infeasible node)
	Marker rune      // plotted glyph; 0 picks automatically
}

// Chart is a multi-series ASCII line chart over a shared categorical X
// axis (e.g. technology nodes or log2 N).
type Chart struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series
	// Height of the plotting area in rows (default 16).
	Height int
	// LogY plots log10(value) instead of value.
	LogY bool
}

var defaultMarkers = []rune{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Render writes the chart to w.
func (c Chart) Render(w io.Writer) error {
	if len(c.XLabels) == 0 {
		return errors.New("report: chart needs X labels")
	}
	if len(c.Series) == 0 {
		return errors.New("report: chart needs at least one series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("report: series %q has %d values for %d labels",
				s.Name, len(s.Values), len(c.XLabels))
		}
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}
	transform := func(v float64) float64 {
		if c.LogY {
			if v <= 0 {
				return math.NaN()
			}
			return math.Log10(v)
		}
		return v
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			tv := transform(v)
			if math.IsNaN(tv) {
				continue
			}
			lo, hi = math.Min(lo, tv), math.Max(hi, tv)
		}
	}
	if math.IsInf(lo, 1) {
		return errors.New("report: chart has no plottable values")
	}
	if hi == lo {
		hi = lo + 1
	}
	if !c.LogY && lo > 0 {
		lo = 0 // anchor linear charts at zero like the paper's figures
	}

	// Lay the points on a grid: one column group per X label.
	colWidth := 0
	for _, l := range c.XLabels {
		if len(l) > colWidth {
			colWidth = len(l)
		}
	}
	colWidth += 2
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", colWidth*len(c.XLabels)))
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for xi, v := range s.Values {
			tv := transform(v)
			if math.IsNaN(tv) {
				continue
			}
			row := int(math.Round((tv - lo) / (hi - lo) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row > height-1 {
				row = height - 1
			}
			col := xi*colWidth + colWidth/2
			grid[height-1-row][col] = marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := hi, lo
	if c.LogY {
		yTop, yBot = math.Pow(10, hi), math.Pow(10, lo)
	}
	label := c.YLabel
	if label != "" {
		label += " "
	}
	fmt.Fprintf(&b, "%s(top=%s, bottom=%s%s)\n", label, FormatFloat(yTop), FormatFloat(yBot),
		map[bool]string{true: ", log scale", false: ""}[c.LogY])
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", colWidth*len(c.XLabels)))
	b.WriteByte('\n')
	b.WriteString(" ")
	for _, l := range c.XLabels {
		pad := colWidth - len(l)
		left := pad / 2
		b.WriteString(strings.Repeat(" ", left))
		b.WriteString(l)
		b.WriteString(strings.Repeat(" ", pad-left))
	}
	b.WriteByte('\n')
	// Legend.
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes headers and rows as CSV.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FloatRow formats a string label followed by float columns for CSV use.
func FloatRow(label string, vals ...float64) []string {
	out := make([]string, 0, len(vals)+1)
	out = append(out, label)
	for _, v := range vals {
		out = append(out, fmt.Sprintf("%g", v))
	}
	return out
}
