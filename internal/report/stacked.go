package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// StackedBar renders horizontal stacked bars — the shape of the paper's
// Figure 3 power-breakdown plot. Each row is one bar whose segments are
// the components, drawn with per-component glyphs and scaled to Width.
type StackedBar struct {
	Title      string
	Unit       string   // e.g. "W"
	Components []string // segment names, in stacking order
	Rows       []StackRow
	Width      int // bar width in characters (default 50)
}

// StackRow is one bar.
type StackRow struct {
	Label  string
	Values []float64 // one value per component; negatives are invalid
}

var stackGlyphs = []rune{'#', '=', '+', ':', '.', '%', '@', '*'}

// Render writes the chart to w.
func (s StackedBar) Render(w io.Writer) error {
	if len(s.Components) == 0 {
		return errors.New("report: stacked bar needs components")
	}
	if len(s.Components) > len(stackGlyphs) {
		return fmt.Errorf("report: at most %d components supported", len(stackGlyphs))
	}
	if len(s.Rows) == 0 {
		return errors.New("report: stacked bar needs rows")
	}
	width := s.Width
	if width <= 0 {
		width = 50
	}
	var maxTotal float64
	labelW := 0
	for _, r := range s.Rows {
		if len(r.Values) != len(s.Components) {
			return fmt.Errorf("report: row %q has %d values for %d components",
				r.Label, len(r.Values), len(s.Components))
		}
		var total float64
		for _, v := range r.Values {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("report: row %q has a negative or NaN segment", r.Label)
			}
			total += v
		}
		if total > maxTotal {
			maxTotal = total
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if maxTotal == 0 {
		return errors.New("report: all bars are zero")
	}
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title)
		b.WriteByte('\n')
	}
	for _, r := range s.Rows {
		b.WriteString(r.Label)
		b.WriteString(strings.Repeat(" ", labelW-len(r.Label)))
		b.WriteString(" |")
		var total float64
		for ci, v := range r.Values {
			n := int(math.Round(v / maxTotal * float64(width)))
			b.WriteString(strings.Repeat(string(stackGlyphs[ci]), n))
			total += v
		}
		fmt.Fprintf(&b, " %s%s\n", FormatFloat(total), s.Unit)
	}
	b.WriteString("legend:")
	for ci, name := range s.Components {
		fmt.Fprintf(&b, " %c=%s", stackGlyphs[ci], name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON pretty-prints v as JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// MarkdownTable writes a GitHub-flavored markdown table.
func MarkdownTable(w io.Writer, headers []string, rows [][]string) error {
	if len(headers) == 0 {
		return errors.New("report: markdown table needs headers")
	}
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range rows {
		cells := make([]string, len(headers))
		for i := range cells {
			if i < len(r) {
				cells[i] = r[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
