package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleStack() StackedBar {
	return StackedBar{
		Title:      "FFT Power Breakdown",
		Unit:       "W",
		Components: []string{"core dynamic", "core leakage", "uncore"},
		Rows: []StackRow{
			{Label: "Core i7", Values: []float64{70, 12, 5}},
			{Label: "GTX285", Values: []float64{90, 12, 48}},
			{Label: "ASIC", Values: []float64{1, 0.1, 0}},
		},
		Width: 40,
	}
}

func TestStackedBarRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleStack().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FFT Power Breakdown", "Core i7", "GTX285", "ASIC",
		"legend:", "core dynamic", "150.0W"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The widest bar (GTX285, total 150) should use close to the full
	// width; the ASIC bar should be nearly empty.
	lines := strings.Split(out, "\n")
	var gtxLen, asicLen int
	for _, l := range lines {
		if strings.HasPrefix(l, "GTX285") {
			gtxLen = strings.Count(l, "#") + strings.Count(l, "=") + strings.Count(l, "+")
		}
		if strings.HasPrefix(l, "ASIC") {
			asicLen = strings.Count(l, "#") + strings.Count(l, "=") + strings.Count(l, "+")
		}
	}
	if gtxLen < 35 {
		t.Errorf("GTX bar too short: %d chars", gtxLen)
	}
	if asicLen > 2 {
		t.Errorf("ASIC bar too long: %d chars", asicLen)
	}
}

func TestStackedBarValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (StackedBar{}).Render(&buf); err == nil {
		t.Error("empty must fail")
	}
	s := sampleStack()
	s.Rows = nil
	if err := s.Render(&buf); err == nil {
		t.Error("no rows must fail")
	}
	s = sampleStack()
	s.Rows[0].Values = []float64{1}
	if err := s.Render(&buf); err == nil {
		t.Error("ragged row must fail")
	}
	s = sampleStack()
	s.Rows[0].Values[0] = -5
	if err := s.Render(&buf); err == nil {
		t.Error("negative segment must fail")
	}
	s = sampleStack()
	s.Rows[0].Values[0] = math.NaN()
	if err := s.Render(&buf); err == nil {
		t.Error("NaN segment must fail")
	}
	s = sampleStack()
	for i := range s.Rows {
		for j := range s.Rows[i].Values {
			s.Rows[i].Values[j] = 0
		}
	}
	if err := s.Render(&buf); err == nil {
		t.Error("all-zero bars must fail")
	}
	s = sampleStack()
	s.Components = make([]string, 20)
	if err := s.Render(&buf); err == nil {
		t.Error("too many components must fail")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]float64{"speedup": 49.7}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"speedup\": 49.7") {
		t.Errorf("JSON output wrong: %s", buf.String())
	}
}

func TestMarkdownTable(t *testing.T) {
	var buf bytes.Buffer
	err := MarkdownTable(&buf, []string{"design", "speedup"}, [][]string{
		{"ASIC", "56.9"},
		{"FPGA"}, // short row padded
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| design | speedup |") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Errorf("separator wrong:\n%s", out)
	}
	if !strings.Contains(out, "| ASIC | 56.9 |") || !strings.Contains(out, "| FPGA |  |") {
		t.Errorf("rows wrong:\n%s", out)
	}
	if err := MarkdownTable(&buf, nil, nil); err == nil {
		t.Error("no headers must fail")
	}
}
