package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Devices", "Name", "GFLOP/s")
	tb.AddRow("Core i7", "96")
	tb.AddRow("ASIC", "694")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Devices", "Name", "GFLOP/s", "Core i7", "694", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and rows share column start offsets.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "GFLOP/s") != strings.Index(row+strings.Repeat(" ", 20), "96") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("x", 3.14159, 42)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.14") {
		t.Errorf("float not formatted: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "42") {
		t.Errorf("int not formatted: %s", buf.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("one", "two", "three-ignored")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "three-ignored") {
		t.Error("extra cells should be dropped")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234.6:  "1235",
		56.78:   "56.8",
		3.14159: "3.14",
		0.0001:  "1.00e-04",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
}

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:   "FFT-1024 projection f=0.999",
		YLabel:  "Speedup",
		XLabels: []string{"40nm", "32nm", "22nm", "16nm", "11nm"},
		Series: []Series{
			{Name: "(6) ASIC", Values: []float64{57, 63, 74, 74, 80}},
			{Name: "(0) SymCMP", Values: []float64{5, 6, 7, 8, 9}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FFT-1024", "Speedup", "40nm", "11nm", "(6) ASIC", "(0) SymCMP", "o", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartGapsForNaN(t *testing.T) {
	c := Chart{
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "s", Values: []float64{math.NaN(), 5}, Marker: '!'}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Exactly one marker plotted in the grid (legend excluded).
	n := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(l, "|") {
			n += strings.Count(l, "!")
		}
	}
	if n != 1 {
		t.Errorf("marker count = %d, want 1", n)
	}
}

func TestChartLogScale(t *testing.T) {
	c := Chart{
		XLabels: []string{"a", "b", "c"},
		Series:  []Series{{Name: "s", Values: []float64{1, 100, 10000}, Marker: '!'}},
		LogY:    true,
		Height:  9,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "log scale") {
		t.Error("log scale annotation missing")
	}
	// On a log axis the three decade-spaced points should sit at evenly
	// spaced rows: top, middle, bottom.
	lines := strings.Split(out, "\n")
	var rows []int
	for i, l := range lines {
		if strings.HasPrefix(l, "|") && strings.Contains(l, "!") {
			rows = append(rows, i)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("marker rows = %v", rows)
	}
	if (rows[1] - rows[0]) != (rows[2] - rows[1]) {
		t.Errorf("log-spaced points not evenly spaced: %v", rows)
	}
}

func TestChartValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{}).Render(&buf); err == nil {
		t.Error("empty chart must fail")
	}
	c := Chart{XLabels: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}}
	if err := c.Render(&buf); err == nil {
		t.Error("mismatched series length must fail")
	}
	c = Chart{XLabels: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{math.NaN()}}}}
	if err := c.Render(&buf); err == nil {
		t.Error("all-NaN chart must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"node", "speedup"}, [][]string{
		{"40nm", "5.5"},
		{"32nm", "7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "node,speedup\n40nm,5.5\n32nm,7\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFloatRow(t *testing.T) {
	row := FloatRow("x", 1.5, 2)
	if len(row) != 3 || row[0] != "x" || row[1] != "1.5" || row[2] != "2" {
		t.Errorf("FloatRow = %v", row)
	}
}
