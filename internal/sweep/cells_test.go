package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func cellsTestGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(
		Axis{Name: "f", Values: []float64{0.5, 0.9, 0.99}},
		Axis{Name: "area", Values: []float64{1}},
		Axis{Name: "power", Values: []float64{0.5, 1, 2, 4}},
		Axis{Name: "bandwidth", Values: []float64{0.25, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCellsMatchesPointAt checks that Cells visits every flat index
// exactly once, at several worker counts, with vals agreeing with the
// named-Point decoding.
func TestCellsMatchesPointAt(t *testing.T) {
	g := cellsTestGrid(t)
	names := []string{"f", "area", "power", "bandwidth"}
	for _, workers := range []int{1, 2, 3, 16} {
		var mu sync.Mutex
		seen := make(map[int][]float64, g.Size())
		err := g.Cells(context.Background(), workers, func(flat int, vals []float64) error {
			cp := append([]float64(nil), vals...) // vals is worker scratch
			mu.Lock()
			if _, dup := seen[flat]; dup {
				mu.Unlock()
				t.Errorf("workers=%d: flat %d visited twice", workers, flat)
				return nil
			}
			seen[flat] = cp
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != g.Size() {
			t.Fatalf("workers=%d: visited %d of %d cells", workers, len(seen), g.Size())
		}
		for flat, vals := range seen {
			p, err := g.PointAt(flat)
			if err != nil {
				t.Fatal(err)
			}
			for k, name := range names {
				if vals[k] != p[name] {
					t.Fatalf("workers=%d flat=%d: vals[%d]=%v, PointAt[%s]=%v",
						workers, flat, k, vals[k], name, p[name])
				}
			}
		}
	}
}

// TestCellsError checks that a failing cell cancels the sweep and the
// lowest-indexed observed error is returned at one worker.
func TestCellsError(t *testing.T) {
	g := cellsTestGrid(t)
	boom := errors.New("boom")
	var calls atomic.Int64
	err := g.Cells(context.Background(), 1, func(flat int, _ []float64) error {
		calls.Add(1)
		if flat == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n != 6 {
		t.Fatalf("serial sweep made %d calls after error at flat 5, want 6", n)
	}
}

// TestCellsCancel checks a pre-cancelled context stops the sweep without
// visiting cells.
func TestCellsCancel(t *testing.T) {
	g := cellsTestGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.Cells(ctx, 4, func(int, []float64) error {
		t.Error("cell visited under cancelled ctx")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
