package sweep

import (
	"context"
	"fmt"

	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/telemetry"
)

// EachParallel invokes fn for every grid point across a bounded worker
// pool (workers <= 0 means GOMAXPROCS). Each invocation decodes its
// row-major index directly into its own Point — there is no shared
// multi-index state — so any interleaving visits exactly the same points
// as Each. The Point is valid only for the duration of the call (use
// Copy to keep one). The first error cancels the sweep; the
// lowest-indexed observed error is returned. Cancelling ctx (nil means
// Background) stops the sweep between points and returns ctx.Err(), so
// request deadlines propagate into long grids.
//
// fn runs concurrently: it must be safe for parallel use.
func (g *Grid) EachParallel(ctx context.Context, workers int, fn func(Point) error) error {
	// When the context carries a telemetry stage family (the serving
	// layer threads one through), the whole parallel grid is recorded as
	// the "sweep" stage — the engine-side share of an evaluation.
	defer telemetry.StartSpan(ctx, "sweep").End()
	return par.ForEach(ctx, g.Size(), workers, func(_ context.Context, i int) error {
		p := make(Point, len(g.axes))
		g.decodeInto(i, p)
		return fn(p)
	})
}

// cell is one evaluated grid point in an ArgMaxParallel sweep.
type cell struct {
	value float64
	err   error
}

// ArgMaxParallel evaluates objective at every point concurrently and
// returns the best result. It is bit-identical to ArgMax at every worker
// count: all points are evaluated (an objective error skips the point, it
// does not cancel the sweep), and the reduction runs in ascending index
// order with a strict > comparison, so ties break to the lowest index
// exactly as the serial scan does. If every point fails, the error of the
// highest-indexed point is returned — again matching ArgMax, whose
// "last error" is the last one met in row-major order. Cancelling ctx
// (nil means Background) aborts the sweep with ctx.Err().
//
// objective runs concurrently: it must be safe for parallel use.
func (g *Grid) ArgMaxParallel(ctx context.Context, workers int, objective func(Point) (float64, error)) (Result, error) {
	cells, err := par.Map(ctx, g.Size(), workers, func(_ context.Context, i int) (cell, error) {
		p := make(Point, len(g.axes))
		g.decodeInto(i, p)
		v, err := objective(p)
		return cell{value: v, err: err}, nil
	})
	if err != nil {
		return Result{}, err
	}
	var (
		best    Result
		bestIdx = -1
		lastErr error
	)
	for i, c := range cells {
		if c.err != nil {
			lastErr = c.err
			continue
		}
		if bestIdx < 0 || c.value > best.Value {
			best = Result{Value: c.value}
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Result{}, fmt.Errorf("sweep: no feasible point: %w", lastErr)
	}
	p, err := g.PointAt(bestIdx)
	if err != nil {
		return Result{}, err
	}
	best.Point = p
	return best, nil
}
