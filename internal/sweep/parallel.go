package sweep

import (
	"context"
	"fmt"

	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/telemetry"
)

// decodeValsInto writes grid point i (row-major, last axis fastest) into
// vals, indexed by axis position: vals[k] is the value of axis k in the
// grid's declared order. The caller guarantees 0 <= i < Size() and
// len(vals) == len(g.axes).
func (g *Grid) decodeValsInto(i int, vals []float64) {
	for ax := len(g.axes) - 1; ax >= 0; ax-- {
		vs := g.axes[ax].Values
		vals[ax] = vs[i%len(vs)]
		i /= len(vs)
	}
}

// blocks partitions [0, Size()) into one contiguous chunk per worker
// slot and fans the chunks out through the par pool. Each chunk is
// visited in ascending index order, so per-chunk scratch state can be
// reused across cells without allocation; ctx is polled between cells so
// request deadlines still propagate into long grids. Errors follow par's
// contract: the first failure cancels the pool and the lowest-indexed
// observed error is returned (chunks are in index order and stop at
// their first error, so this is the lowest-indexed failing cell among
// those observed).
func (g *Grid) blocks(ctx context.Context, workers int, run func(ctx context.Context, lo, hi int) error) error {
	return g.blocksRange(ctx, workers, 0, g.Size(), run)
}

// blocksRange is blocks over the half-open index window [lo, hi).
func (g *Grid) blocksRange(ctx context.Context, workers, lo, hi int, run func(ctx context.Context, lo, hi int) error) error {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	w := par.Workers(workers)
	if w > n {
		w = n
	}
	return par.ForEach(ctx, w, w, func(ctx context.Context, b int) error {
		return run(ctx, lo+b*n/w, lo+(b+1)*n/w)
	})
}

// Cells invokes fn for every grid point across a bounded worker pool
// (workers <= 0 means GOMAXPROCS), passing the point's flat row-major
// index and its values indexed by axis position — the allocation-free
// counterpart of EachParallel for hot paths that would otherwise pay a
// map per cell. vals is per-worker scratch, valid only for the duration
// of the call: fn must copy anything it keeps. fn runs concurrently and
// must be safe for parallel use; the first error cancels the sweep, and
// cancelling ctx (nil means Background) stops it between points.
func (g *Grid) Cells(ctx context.Context, workers int, fn func(flat int, vals []float64) error) error {
	// When the context carries a telemetry stage family (the serving
	// layer threads one through), the whole parallel grid is recorded as
	// the "sweep" stage — the engine-side share of an evaluation.
	return g.CellsRange(ctx, workers, 0, g.Size(), fn)
}

// CellsRange is Cells restricted to the half-open flat-index window
// [lo, hi) — the streaming building block: a caller emitting rows
// incrementally evaluates one bounded window at a time (parallel
// inside the window, windows in row-major order), so memory stays
// proportional to the window and cancellation is honored between
// windows as well as between cells. Out-of-range bounds are clamped;
// an empty window is a no-op. Cell indexing, scratch reuse, error
// selection, and the "sweep" telemetry stage match Cells exactly:
// Cells(ctx, w, fn) ≡ CellsRange(ctx, w, 0, Size(), fn).
func (g *Grid) CellsRange(ctx context.Context, workers, lo, hi int, fn func(flat int, vals []float64) error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > g.Size() {
		hi = g.Size()
	}
	defer telemetry.StartSpan(ctx, "sweep").End()
	return g.blocksRange(ctx, workers, lo, hi, func(ctx context.Context, lo, hi int) error {
		vals := make([]float64, len(g.axes))
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			g.decodeValsInto(i, vals)
			if err := fn(i, vals); err != nil {
				return err
			}
		}
		return nil
	})
}

// EachParallel invokes fn for every grid point across a bounded worker
// pool (workers <= 0 means GOMAXPROCS). Points are decoded from their
// row-major indices — there is no shared multi-index state — so any
// interleaving visits exactly the same points as Each. The Point is
// per-worker scratch, valid only for the duration of the call (use Copy
// to keep one). The first error cancels the sweep; the lowest-indexed
// observed error is returned. Cancelling ctx (nil means Background)
// stops the sweep between points and returns ctx.Err(), so request
// deadlines propagate into long grids.
//
// fn runs concurrently: it must be safe for parallel use.
func (g *Grid) EachParallel(ctx context.Context, workers int, fn func(Point) error) error {
	// Recorded as the "sweep" telemetry stage, exactly like Cells.
	defer telemetry.StartSpan(ctx, "sweep").End()
	return g.blocks(ctx, workers, func(ctx context.Context, lo, hi int) error {
		p := make(Point, len(g.axes))
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			g.decodeInto(i, p)
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	})
}

// cell is one evaluated grid point in an ArgMaxParallel sweep.
type cell struct {
	value float64
	err   error
}

// ArgMaxParallel evaluates objective at every point concurrently and
// returns the best result. It is bit-identical to ArgMax at every worker
// count: all points are evaluated (an objective error skips the point, it
// does not cancel the sweep), and the reduction runs in ascending index
// order with a strict > comparison, so ties break to the lowest index
// exactly as the serial scan does. If every point fails, the error of the
// highest-indexed point is returned — again matching ArgMax, whose
// "last error" is the last one met in row-major order. Cancelling ctx
// (nil means Background) aborts the sweep with ctx.Err(). The Point
// handed to objective is per-worker scratch: copy it if kept.
//
// objective runs concurrently: it must be safe for parallel use.
func (g *Grid) ArgMaxParallel(ctx context.Context, workers int, objective func(Point) (float64, error)) (Result, error) {
	cells := make([]cell, g.Size())
	err := g.blocks(ctx, workers, func(ctx context.Context, lo, hi int) error {
		p := make(Point, len(g.axes))
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			g.decodeInto(i, p)
			v, err := objective(p)
			cells[i] = cell{value: v, err: err}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	var (
		best    Result
		bestIdx = -1
		lastErr error
	)
	for i, c := range cells {
		if c.err != nil {
			lastErr = c.err
			continue
		}
		if bestIdx < 0 || c.value > best.Value {
			best = Result{Value: c.value}
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Result{}, fmt.Errorf("sweep: no feasible point: %w", lastErr)
	}
	p, err := g.PointAt(bestIdx)
	if err != nil {
		return Result{}, err
	}
	best.Point = p
	return best, nil
}
