package sweep

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randomGrid builds a random 1-3 axis grid from the seeded stream.
func randomGrid(t *testing.T, rng *rand.Rand) *Grid {
	t.Helper()
	axes := make([]Axis, 1+rng.Intn(3))
	for i := range axes {
		vals := make([]float64, 1+rng.Intn(6))
		for j := range vals {
			vals[j] = math.Round(rng.Float64()*1000) / 1000
		}
		axes[i] = Axis{Name: fmt.Sprintf("x%d", i), Values: vals}
	}
	g, err := NewGrid(axes...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPropertyArgMaxParallelMatchesSerial: for random grids, random
// objectives (including ones that error on part of the domain), and
// random worker counts, the parallel argmax must agree exactly with the
// serial scan — same value, same winning point, same infeasibility
// verdict. This is the determinism contract the serving cache depends
// on: worker count must never leak into results.
func TestPropertyArgMaxParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	workerChoices := []int{1, 2, 3, 7, 0, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 60; trial++ {
		g := randomGrid(t, rng)
		// A deterministic objective drawn per trial: a random quadratic
		// of the coordinates, erroring below a random feasibility floor.
		coef := make([]float64, 4)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		floor := rng.Float64() * 0.3
		objective := func(p Point) (float64, error) {
			// Sum in fixed axis order: map iteration order would make
			// float addition nondeterministic and fail the comparison
			// for reasons that have nothing to do with the scan.
			v := coef[0]
			for i := 0; i < 3; i++ {
				if x, ok := p[fmt.Sprintf("x%d", i)]; ok {
					v += coef[1]*x + coef[2]*x*x
				}
			}
			if sum := v + coef[3]; math.Abs(sum-math.Floor(sum)) < floor*0.1 {
				return 0, fmt.Errorf("infeasible at %v", p)
			}
			return v, nil
		}

		want, wantErr := g.ArgMax(objective)
		workers := workerChoices[rng.Intn(len(workerChoices))]
		got, gotErr := g.ArgMaxParallel(context.Background(), workers, objective)

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d (workers=%d): serial err %v, parallel err %v", trial, workers, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Value != want.Value {
			t.Fatalf("trial %d (workers=%d): parallel value %v, serial %v", trial, workers, got.Value, want.Value)
		}
		if len(got.Point) != len(want.Point) {
			t.Fatalf("trial %d: point arity %d vs %d", trial, len(got.Point), len(want.Point))
		}
		for k, v := range want.Point {
			if got.Point[k] != v {
				t.Fatalf("trial %d (workers=%d): winner differs at %s: %v vs %v — tie-break is not deterministic",
					trial, workers, k, got.Point[k], v)
			}
		}
	}
}

// TestPropertyEachParallelCoversGrid: EachParallel visits every point
// exactly once for random grids and worker counts.
func TestPropertyEachParallelCoversGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		g := randomGrid(t, rng)
		workers := 1 + rng.Intn(8)
		counts := make([]int32, g.Size())
		// Index points by position: re-derive the flat index from the
		// row-major serial order for comparison.
		serial := make([]Point, 0, g.Size())
		if err := g.Each(func(p Point) error {
			serial = append(serial, p.Copy())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		match := func(p Point) int {
			for i, sp := range serial {
				same := true
				for k, v := range sp {
					if p[k] != v {
						same = false
						break
					}
				}
				if same && counts[i] == 0 {
					return i
				}
			}
			return -1
		}
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		if err := g.EachParallel(context.Background(), workers, func(p Point) error {
			<-mu
			defer func() { mu <- struct{}{} }()
			i := match(p)
			if i < 0 {
				return fmt.Errorf("point %v unmatched or visited twice", p)
			}
			counts[i]++
			return nil
		}); err != nil {
			t.Fatalf("trial %d (workers=%d): %v", trial, workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: point %d visited %d times", trial, i, c)
			}
		}
	}
}
