package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
)

func testGrid(t testing.TB) *Grid {
	t.Helper()
	xs, err := Range(-2, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := Range(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := Range(1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(
		Axis{Name: "x", Values: xs},
		Axis{Name: "y", Values: ys},
		Axis{Name: "z", Values: zs},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// determinismWorkerCounts are the pool shapes the ISSUE pins down:
// serial, small, and GOMAXPROCS (0 resolves to it).
func determinismWorkerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0), 0}
}

func TestPointAtMatchesEachOrder(t *testing.T) {
	g := testGrid(t)
	i := 0
	err := g.Each(func(p Point) error {
		q, err := g.PointAt(i)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(p, q) {
			return fmt.Errorf("index %d: Each=%v PointAt=%v", i, p, q)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != g.Size() {
		t.Fatalf("visited %d of %d points", i, g.Size())
	}
	if _, err := g.PointAt(-1); err == nil {
		t.Error("PointAt(-1) must fail")
	}
	if _, err := g.PointAt(g.Size()); err == nil {
		t.Error("PointAt(Size) must fail")
	}
}

// key serializes a point for order-independent set comparison.
func key(p Point) string { return fmt.Sprintf("%v|%v|%v", p["x"], p["y"], p["z"]) }

func TestEachParallelVisitsSamePoints(t *testing.T) {
	g := testGrid(t)
	var want []string
	if err := g.Each(func(p Point) error {
		want = append(want, key(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	for _, w := range determinismWorkerCounts() {
		var (
			mu  sync.Mutex
			got []string
		)
		if err := g.EachParallel(context.Background(), w, func(p Point) error {
			mu.Lock()
			got = append(got, key(p))
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: visited point set differs from Each", w)
		}
	}
}

func TestEachParallelPropagatesError(t *testing.T) {
	g := testGrid(t)
	boom := errors.New("boom")
	for _, w := range determinismWorkerCounts() {
		err := g.EachParallel(context.Background(), w, func(p Point) error {
			if p["x"] == -2 && p["y"] == 0 && p["z"] == 1 { // index 0
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v", w, err)
		}
	}
}

// frontierObjective mirrors the CLI frontier sweep: optimize a U-core
// heterogeneous design under fixed 40nm FFT budgets. Points with phi too
// high for the budget come back infeasible, exercising the error-skipping
// path with a real model.
func frontierObjective(t testing.TB) (*Grid, func(Point) (float64, error)) {
	t.Helper()
	mus, err := Range(0.5, 64, 24)
	if err != nil {
		t.Fatal(err)
	}
	phis, err := Range(0.125, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(
		Axis{Name: "phi", Values: phis},
		Axis{Name: "mu", Values: mus},
	)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator()
	budgets := bounds.Budgets{Area: 19, Power: 8.6, Bandwidth: 57.9}
	return g, func(p Point) (float64, error) {
		d := core.Design{
			Kind:  core.Het,
			Label: "candidate",
			UCore: bounds.UCore{Mu: p["mu"], Phi: p["phi"]},
		}
		pt, err := ev.Optimize(d, 0.99, budgets)
		if err != nil {
			return 0, err
		}
		return pt.Speedup, nil
	}
}

func TestArgMaxParallelMatchesSerial(t *testing.T) {
	g, objective := frontierObjective(t)
	want, err := g.ArgMax(objective)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range determinismWorkerCounts() {
		got, err := g.ArgMaxParallel(context.Background(), w, objective)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: ArgMaxParallel = %+v, ArgMax = %+v", w, got, want)
		}
	}
}

// A flat objective has every point tied at the max; the winner must be
// the lowest row-major index (the serial scan's first point) at every
// worker count.
func TestArgMaxParallelTieBreaksOnLowestIndex(t *testing.T) {
	g := testGrid(t)
	flat := func(Point) (float64, error) { return 1, nil }
	want, err := g.ArgMax(flat)
	if err != nil {
		t.Fatal(err)
	}
	first, err := g.PointAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Point, first) {
		t.Fatalf("serial ArgMax tie-break drifted: %v", want.Point)
	}
	for _, w := range determinismWorkerCounts() {
		got, err := g.ArgMaxParallel(context.Background(), w, flat)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: tie broke to %v, want %v", w, got.Point, want.Point)
		}
	}
}

func TestArgMaxParallelAllInfeasible(t *testing.T) {
	g := testGrid(t)
	for _, w := range determinismWorkerCounts() {
		_, err := g.ArgMaxParallel(context.Background(), w, func(Point) (float64, error) {
			return 0, errors.New("infeasible")
		})
		if err == nil {
			t.Errorf("workers=%d: all-infeasible must fail", w)
		}
	}
}

// BenchmarkSweepGridSerial is the serial baseline: the frontier-style
// ArgMax over a 24x24 (mu, phi) grid. ReportAllocs verifies the Each
// scratch-map reuse (one Point per sweep, not one per cell).
func BenchmarkSweepGridSerial(b *testing.B) {
	g, objective := frontierObjective(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ArgMax(objective); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepGridParallel runs the identical sweep through the worker
// pool at GOMAXPROCS.
func BenchmarkSweepGridParallel(b *testing.B) {
	g, objective := frontierObjective(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ArgMaxParallel(context.Background(), 0, objective); err != nil {
			b.Fatal(err)
		}
	}
}
