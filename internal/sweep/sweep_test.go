package sweep

import (
	"errors"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Error("empty grid must fail")
	}
	if _, err := NewGrid(Axis{Name: "", Values: []float64{1}}); err == nil {
		t.Error("unnamed axis must fail")
	}
	if _, err := NewGrid(Axis{Name: "a", Values: nil}); err == nil {
		t.Error("empty axis must fail")
	}
	if _, err := NewGrid(Axis{Name: "a", Values: []float64{1}}, Axis{Name: "a", Values: []float64{2}}); err == nil {
		t.Error("duplicate axis must fail")
	}
}

func TestGridSizeAndOrder(t *testing.T) {
	g, err := NewGrid(
		Axis{Name: "x", Values: []float64{1, 2}},
		Axis{Name: "y", Values: []float64{10, 20, 30}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 {
		t.Fatalf("Size = %d, want 6", g.Size())
	}
	var visits []Point
	if err := g.Each(func(p Point) error {
		cp := Point{"x": p["x"], "y": p["y"]}
		visits = append(visits, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 6 {
		t.Fatalf("visited %d points", len(visits))
	}
	// Row-major: y varies fastest.
	if visits[0]["x"] != 1 || visits[0]["y"] != 10 {
		t.Errorf("first = %v", visits[0])
	}
	if visits[1]["x"] != 1 || visits[1]["y"] != 20 {
		t.Errorf("second = %v", visits[1])
	}
	if visits[3]["x"] != 2 || visits[3]["y"] != 10 {
		t.Errorf("fourth = %v", visits[3])
	}
}

func TestEachAbortsOnError(t *testing.T) {
	g, _ := NewGrid(Axis{Name: "x", Values: []float64{1, 2, 3}})
	boom := errors.New("boom")
	count := 0
	err := g.Each(func(Point) error {
		count++
		if count == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 2 {
		t.Errorf("err = %v, count = %d", err, count)
	}
}

func TestArgMax(t *testing.T) {
	g, _ := NewGrid(
		Axis{Name: "x", Values: []float64{-2, -1, 0, 1, 2}},
		Axis{Name: "y", Values: []float64{-1, 0, 1}},
	)
	// Maximize -(x-1)^2 - y^2: best at x=1, y=0.
	best, err := g.ArgMax(func(p Point) (float64, error) {
		dx := p["x"] - 1
		return -dx*dx - p["y"]*p["y"], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Point["x"] != 1 || best.Point["y"] != 0 || best.Value != 0 {
		t.Errorf("best = %+v", best)
	}
}

func TestArgMaxSkipsErrors(t *testing.T) {
	g, _ := NewGrid(Axis{Name: "x", Values: []float64{1, 2, 3}})
	best, err := g.ArgMax(func(p Point) (float64, error) {
		if p["x"] == 3 {
			return 100, nil
		}
		return 0, errors.New("infeasible")
	})
	if err != nil || best.Value != 100 {
		t.Errorf("best = %+v, err = %v", best, err)
	}
	// All infeasible.
	if _, err := g.ArgMax(func(Point) (float64, error) {
		return 0, errors.New("nope")
	}); err == nil {
		t.Error("all-infeasible ArgMax must fail")
	}
}

func TestRange(t *testing.T) {
	vals, err := Range(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("Range[%d] = %g", i, vals[i])
		}
	}
	one, err := Range(7, 9, 1)
	if err != nil || len(one) != 1 || one[0] != 7 {
		t.Errorf("Range count=1 = %v, %v", one, err)
	}
	if _, err := Range(0, 1, 0); err == nil {
		t.Error("count=0 must fail")
	}
}
