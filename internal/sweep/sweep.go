// Package sweep provides small generic helpers for parameter studies:
// named-axis grids, cartesian products, and argmax searches. The CLI and
// examples use it for design-space exploration (e.g. iso-speedup frontiers
// over the U-core (mu, phi) plane).
package sweep

import (
	"errors"
	"fmt"
)

// Axis is one named sweep dimension.
type Axis struct {
	Name   string
	Values []float64
}

// Grid is an ordered set of axes.
type Grid struct {
	axes []Axis
}

// NewGrid builds a grid; every axis needs a name and at least one value.
func NewGrid(axes ...Axis) (*Grid, error) {
	if len(axes) == 0 {
		return nil, errors.New("sweep: grid needs at least one axis")
	}
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Name == "" {
			return nil, errors.New("sweep: axis needs a name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
	}
	return &Grid{axes: axes}, nil
}

// Size returns the number of grid points.
func (g *Grid) Size() int {
	n := 1
	for _, a := range g.axes {
		n *= len(a.Values)
	}
	return n
}

// Point is one grid sample, keyed by axis name.
type Point map[string]float64

// Copy returns an independent copy of the point.
func (p Point) Copy() Point {
	cp := make(Point, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}

// decodeInto writes grid point i (row-major, last axis fastest) into p,
// overwriting the axis keys. The caller guarantees 0 <= i < Size().
func (g *Grid) decodeInto(i int, p Point) {
	for ax := len(g.axes) - 1; ax >= 0; ax-- {
		vals := g.axes[ax].Values
		p[g.axes[ax].Name] = vals[i%len(vals)]
		i /= len(vals)
	}
}

// PointAt returns grid point i in row-major order (last axis fastest),
// decoding the flat index directly with no multi-index state.
func (g *Grid) PointAt(i int) (Point, error) {
	if i < 0 || i >= g.Size() {
		return nil, fmt.Errorf("sweep: point index %d out of range [0, %d)", i, g.Size())
	}
	p := make(Point, len(g.axes))
	g.decodeInto(i, p)
	return p, nil
}

// Each invokes fn for every point in row-major order (last axis fastest).
// The first error aborts the sweep. The Point passed to fn is reused
// between iterations: fn must not retain it (use Copy to keep one).
func (g *Grid) Each(fn func(Point) error) error {
	n := g.Size()
	p := make(Point, len(g.axes))
	for i := 0; i < n; i++ {
		g.decodeInto(i, p)
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// Result couples a grid point with its objective value.
type Result struct {
	Point Point
	Value float64
}

// ArgMax evaluates objective at every point and returns the best result.
// Points where objective returns an error are skipped; if all fail, the
// last error is returned.
func (g *Grid) ArgMax(objective func(Point) (float64, error)) (Result, error) {
	var (
		best    Result
		found   bool
		lastErr error
	)
	err := g.Each(func(p Point) error {
		v, err := objective(p)
		if err != nil {
			lastErr = err
			return nil
		}
		if !found || v > best.Value {
			best = Result{Point: p.Copy(), Value: v}
			found = true
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	if !found {
		return Result{}, fmt.Errorf("sweep: no feasible point: %w", lastErr)
	}
	return best, nil
}

// Range returns count evenly spaced values from lo to hi inclusive.
func Range(lo, hi float64, count int) ([]float64, error) {
	if count < 1 {
		return nil, errors.New("sweep: count must be >= 1")
	}
	if count == 1 {
		return []float64{lo}, nil
	}
	out := make([]float64, count)
	step := (hi - lo) / float64(count-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[count-1] = hi
	return out, nil
}
