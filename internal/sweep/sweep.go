// Package sweep provides small generic helpers for parameter studies:
// named-axis grids, cartesian products, and argmax searches. The CLI and
// examples use it for design-space exploration (e.g. iso-speedup frontiers
// over the U-core (mu, phi) plane).
package sweep

import (
	"errors"
	"fmt"
)

// Axis is one named sweep dimension.
type Axis struct {
	Name   string
	Values []float64
}

// Grid is an ordered set of axes.
type Grid struct {
	axes []Axis
}

// NewGrid builds a grid; every axis needs a name and at least one value.
func NewGrid(axes ...Axis) (*Grid, error) {
	if len(axes) == 0 {
		return nil, errors.New("sweep: grid needs at least one axis")
	}
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Name == "" {
			return nil, errors.New("sweep: axis needs a name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
	}
	return &Grid{axes: axes}, nil
}

// Size returns the number of grid points.
func (g *Grid) Size() int {
	n := 1
	for _, a := range g.axes {
		n *= len(a.Values)
	}
	return n
}

// Point is one grid sample, keyed by axis name.
type Point map[string]float64

// Each invokes fn for every point in row-major order (last axis fastest).
// The first error aborts the sweep.
func (g *Grid) Each(fn func(Point) error) error {
	idx := make([]int, len(g.axes))
	for {
		p := make(Point, len(g.axes))
		for i, a := range g.axes {
			p[a.Name] = a.Values[idx[i]]
		}
		if err := fn(p); err != nil {
			return err
		}
		// Increment the multi-index.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// Result couples a grid point with its objective value.
type Result struct {
	Point Point
	Value float64
}

// ArgMax evaluates objective at every point and returns the best result.
// Points where objective returns an error are skipped; if all fail, the
// last error is returned.
func (g *Grid) ArgMax(objective func(Point) (float64, error)) (Result, error) {
	var (
		best    Result
		found   bool
		lastErr error
	)
	err := g.Each(func(p Point) error {
		v, err := objective(p)
		if err != nil {
			lastErr = err
			return nil
		}
		if !found || v > best.Value {
			cp := make(Point, len(p))
			for k, x := range p {
				cp[k] = x
			}
			best = Result{Point: cp, Value: v}
			found = true
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	if !found {
		return Result{}, fmt.Errorf("sweep: no feasible point: %w", lastErr)
	}
	return best, nil
}

// Range returns count evenly spaced values from lo to hi inclusive.
func Range(lo, hi float64, count int) ([]float64, error) {
	if count < 1 {
		return nil, errors.New("sweep: count must be >= 1")
	}
	if count == 1 {
		return []float64{lo}, nil
	}
	out := make([]float64, count)
	step := (hi - lo) / float64(count-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[count-1] = hi
	return out, nil
}
