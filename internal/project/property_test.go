package project

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/paper"
)

// propertyDesigns is the paper's full design lineup for each workload:
// symmetric, asymmetric, and the heterogeneous variants with real U-core
// parameters, so the properties below are checked against every design
// shape the model can evaluate.
func propertyDesigns(t *testing.T) []core.Design {
	t.Helper()
	var all []core.Design
	for _, w := range []paper.WorkloadID{paper.MMM, paper.BS, paper.FFT1024} {
		ds, err := DesignsFor(w)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ds...)
	}
	return all
}

// randomBudgets draws a feasible-ish random budget from the stream.
func randomBudgets(rng *rand.Rand) bounds.Budgets {
	return bounds.Budgets{
		Area:      1 + rng.Float64()*512,
		Power:     1 + rng.Float64()*512,
		Bandwidth: 0.1 + rng.Float64()*64,
	}
}

// TestPropertySpeedupMonotoneInBudgets: growing one budget axis (area or
// power) while holding the rest fixed can only relax constraints, so the
// optimized speedup must be non-decreasing along the axis — and a design
// feasible under a small budget must stay feasible under a larger one.
// Speedups must also never be negative (a "speedup" below zero would
// mean the model produced negative work).
func TestPropertySpeedupMonotoneInBudgets(t *testing.T) {
	ev := core.NewEvaluator()
	rng := rand.New(rand.NewSource(1))
	designs := propertyDesigns(t)
	axes := []struct {
		name string
		set  func(*bounds.Budgets, float64)
		base func(bounds.Budgets) float64
	}{
		{"area", func(b *bounds.Budgets, v float64) { b.Area = v }, func(b bounds.Budgets) float64 { return b.Area }},
		{"power", func(b *bounds.Budgets, v float64) { b.Power = v }, func(b bounds.Budgets) float64 { return b.Power }},
	}
	for trial := 0; trial < 40; trial++ {
		d := designs[rng.Intn(len(designs))]
		f := rng.Float64()
		b := randomBudgets(rng)
		ax := axes[trial%len(axes)]

		prev := -1.0 // sentinel: no feasible point seen yet
		for scale := 0.25; scale <= 8; scale *= 2 {
			bb := b
			ax.set(&bb, ax.base(b)*scale)
			p, err := ev.Optimize(d, f, bb)
			if err != nil {
				if !errors.Is(err, core.ErrInfeasible) {
					t.Fatalf("trial %d %s (%s x%g): unexpected error %v", trial, d.Label, ax.name, scale, err)
				}
				if prev >= 0 {
					t.Fatalf("trial %d %s: feasible at smaller %s budget but infeasible at x%g",
						trial, d.Label, ax.name, scale)
				}
				continue
			}
			if p.Speedup < 0 {
				t.Fatalf("trial %d %s: negative speedup %v", trial, d.Label, p.Speedup)
			}
			// Tolerate only float noise; a real regression along a
			// growing budget axis is a model bug.
			if prev >= 0 && p.Speedup < prev*(1-1e-12) {
				t.Fatalf("trial %d %s: speedup fell from %v to %v as %s budget grew x%g",
					trial, d.Label, prev, p.Speedup, ax.name, scale)
			}
			prev = p.Speedup
		}
	}
}

// TestPropertyOptimizeDominatesSweep: the optimizer's winner must never
// be beaten by any point in the r-sweep it claims to have searched, and
// when it declares infeasibility every r must actually fail.
func TestPropertyOptimizeDominatesSweep(t *testing.T) {
	ev := core.NewEvaluator()
	rng := rand.New(rand.NewSource(2))
	designs := propertyDesigns(t)
	for trial := 0; trial < 60; trial++ {
		d := designs[rng.Intn(len(designs))]
		f := rng.Float64()
		b := randomBudgets(rng)

		best, err := ev.Optimize(d, f, b)
		if err != nil {
			if !errors.Is(err, core.ErrInfeasible) {
				t.Fatalf("trial %d %s: unexpected error %v", trial, d.Label, err)
			}
			for r := 1; r <= ev.MaxR; r++ {
				if p, err := ev.Evaluate(d, f, b, r); err == nil {
					t.Fatalf("trial %d %s: Optimize said infeasible but r=%d evaluates to %v",
						trial, d.Label, r, p.Speedup)
				}
			}
			continue
		}
		for r := 1; r <= ev.MaxR; r++ {
			p, err := ev.Evaluate(d, f, b, r)
			if err != nil {
				continue // infeasible r values are legitimately skipped
			}
			if p.Speedup < 0 {
				t.Fatalf("trial %d %s r=%d: negative speedup %v", trial, d.Label, r, p.Speedup)
			}
			if p.Speedup > best.Speedup {
				t.Fatalf("trial %d %s: r=%d speedup %v beats the optimizer's %v (r=%d)",
					trial, d.Label, r, p.Speedup, best.Speedup, best.R)
			}
		}
		// The winner itself must re-evaluate to the same point.
		again, err := ev.Evaluate(d, f, b, best.R)
		if err != nil || again.Speedup != best.Speedup {
			t.Fatalf("trial %d %s: winner r=%d does not reproduce: (%v, %v)",
				trial, d.Label, best.R, again.Speedup, err)
		}
	}
}
