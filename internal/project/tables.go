// tables.go precomputes everything the serving hot path would otherwise
// rebuild per request: the paper's design lineup and the BCE-relative
// budgets of every (workload, default-roadmap node) pair under the
// baseline physical budgets. The entries are produced by exactly the
// same code paths callers would run directly (DesignsFor, BudgetsAt), so
// table hits are byte-identical to cold computation — the tables change
// latency, never results.
package project

import (
	"sync"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/paper"
)

// workloadTable is the precomputed per-workload state.
type workloadTable struct {
	designs []core.Design             // the Figure 6-10 lineup, shared read-only
	budgets map[string]bounds.Budgets // default budgets by node name
}

// defaultTables builds the tables once, on first use, for every Table 5
// workload. Workloads whose calibration data is incomplete are simply
// absent; lookups fall back to the direct computation (and its error).
var defaultTables = sync.OnceValue(func() map[paper.WorkloadID]workloadTable {
	m := make(map[paper.WorkloadID]workloadTable, len(paper.AllWorkloads))
	for _, w := range paper.AllWorkloads {
		cfg := DefaultConfig(w)
		designs, err := DesignsFor(w)
		if err != nil {
			continue
		}
		conv, err := cfg.budgetConverter()
		if err != nil {
			continue
		}
		t := workloadTable{designs: designs, budgets: make(map[string]bounds.Budgets)}
		for _, n := range cfg.Roadmap.Nodes() {
			t.budgets[n.Name] = conv(n)
		}
		m[w] = t
	}
	return m
})

// designsCached returns the workload's lineup from the table, falling
// back to DesignsFor for workloads outside it. The returned slice is
// shared: callers must treat it as read-only (DesignsFor allocates a
// private copy for callers that need to mutate).
func designsCached(w paper.WorkloadID) ([]core.Design, error) {
	if t, ok := defaultTables()[w]; ok {
		return t.designs, nil
	}
	return DesignsFor(w)
}

// DefaultBudgets returns the BCE-relative budgets for workload w at the
// named node of the default roadmap under the paper's baseline physical
// budgets (DefaultConfig), served from the precomputed table. Unknown
// workloads or node names take the direct path and report its errors.
func DefaultBudgets(w paper.WorkloadID, nodeName string) (bounds.Budgets, error) {
	if t, ok := defaultTables()[w]; ok {
		if b, ok := t.budgets[nodeName]; ok {
			return b, nil
		}
	}
	cfg := DefaultConfig(w)
	node, err := cfg.Roadmap.ByName(nodeName)
	if err != nil {
		return bounds.Budgets{}, err
	}
	return cfg.BudgetsAt(node)
}
