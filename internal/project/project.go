// Package project implements Section 6 of the paper: scaling projections
// of heterogeneous (HET) and non-heterogeneous (CMP) single-chip designs
// across ITRS technology nodes under area, power, and bandwidth budgets.
//
// For each workload it converts the physical budgets (mm², watts, GB/s)
// into BCE-relative units using the calibrated BCE anchors, assembles the
// paper's design lineup from Table 5 parameters, sweeps the sequential
// core size r (1..16) at every node, and reports the best speedup with
// its limiting factor — the data behind Figures 6-10.
package project

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/calcm/heterosim/internal/bounds"
	"github.com/calcm/heterosim/internal/core"
	"github.com/calcm/heterosim/internal/itrs"
	"github.com/calcm/heterosim/internal/model"
	"github.com/calcm/heterosim/internal/paper"
	"github.com/calcm/heterosim/internal/par"
	"github.com/calcm/heterosim/internal/pollack"
	"github.com/calcm/heterosim/internal/ucore"
	"github.com/calcm/heterosim/internal/workload"
)

// Config parameterizes one projection study. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	Workload paper.WorkloadID
	Roadmap  itrs.Roadmap

	PowerBudgetW     float64 // core+cache power budget (paper: 100 W)
	BaseBandwidthGBs float64 // first-node bandwidth (paper: 180 GB/s)
	AreaScale        float64 // multiplies the node area budget (paper: 1)
	Alpha            float64 // sequential power exponent (paper: 1.75)
	MaxR             int     // sequential-core sweep bound (paper: 16)

	// Model, when non-nil, selects the model backend evaluating each
	// design x node cell; nil means the paper's Chung evaluator (the
	// analytic fast path). The factory runs after all config transforms
	// (scenario alpha overrides, ablation MaxR pinning) so backends see
	// the final Alpha and MaxR.
	Model model.Factory

	// Workers bounds the design x node evaluation pool; <= 0 means
	// GOMAXPROCS. Results are identical at every worker count.
	Workers int
}

// DefaultConfig returns the paper's baseline projection setup for a
// workload.
func DefaultConfig(w paper.WorkloadID) Config {
	return Config{
		Workload:         w,
		Roadmap:          itrs.Default(),
		PowerBudgetW:     itrs.CorePowerBudgetW,
		BaseBandwidthGBs: itrs.BaseBandwidthGBs,
		AreaScale:        1,
		Alpha:            pollack.DefaultAlpha,
		MaxR:             paper.MaxSweepR,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workload == "" {
		return errors.New("project: workload required")
	}
	if err := c.Roadmap.Validate(); err != nil {
		return err
	}
	if c.PowerBudgetW <= 0 || c.BaseBandwidthGBs <= 0 || c.AreaScale <= 0 {
		return errors.New("project: budgets must be positive")
	}
	if c.Alpha <= 0 {
		return errors.New("project: alpha must be positive")
	}
	if c.MaxR < 1 {
		return errors.New("project: MaxR must be >= 1")
	}
	return nil
}

// evaluator builds the core evaluator for this config.
func (c Config) evaluator() (core.Evaluator, error) {
	law, err := pollack.New(c.Alpha)
	if err != nil {
		return core.Evaluator{}, err
	}
	return core.Evaluator{Law: law, MaxR: c.MaxR}, nil
}

// BudgetsAt converts the config's physical budgets at one node into
// BCE-relative units for the config's workload:
//
//	A = node area (BCE) x AreaScale
//	P = watts / (BCE watts x relative power per transistor)
//	B = node GB/s / BCE compulsory GB/s
func (c Config) BudgetsAt(node itrs.Node) (bounds.Budgets, error) {
	conv, err := c.budgetConverter()
	if err != nil {
		return bounds.Budgets{}, err
	}
	return conv(node), nil
}

// budgetConverter resolves the workload's BCE calibration once and
// returns a per-node converter, so multi-node callers (the projection
// fan-out, the startup tables) do not re-derive the anchors for every
// cell. The conversion expressions are exactly BudgetsAt's.
func (c Config) budgetConverter() (func(itrs.Node) bounds.Budgets, error) {
	ref, err := ucore.DefaultBCE(c.Workload)
	if err != nil {
		return nil, err
	}
	bceBW, err := BCEBandwidthGBs(c.Workload, ref)
	if err != nil {
		return nil, err
	}
	return func(node itrs.Node) bounds.Budgets {
		return bounds.Budgets{
			Area:      node.MaxAreaBCE * c.AreaScale,
			Power:     c.PowerBudgetW / (ref.Watts * node.RelPowerPerXtor),
			Bandwidth: node.BandwidthGBs(c.BaseBandwidthGBs) / bceBW,
		}
	}, nil
}

// BCEBandwidthGBs returns the compulsory off-chip bandwidth of one BCE
// core running the workload, in GB/s. Throughput units are GFLOP/s for
// FLOP-counted workloads (GFLOP/s x bytes/flop = GB/s) and Mopt/s for
// Black-Scholes (Mopt/s x bytes/option = MB/s).
func BCEBandwidthGBs(w paper.WorkloadID, ref ucore.BCE) (float64, error) {
	bytesPerUnit, err := workload.BytesPerUnitWork(w)
	if err != nil {
		return 0, err
	}
	scale := 1.0
	if w == paper.BS {
		scale = 1e-3 // MB/s -> GB/s
	}
	return ref.PerfUnits * bytesPerUnit * scale, nil
}

// DesignsFor assembles the paper's Figure 6-10 lineup for a workload:
// the two CMP baselines plus one HET per device with published Table 5
// parameters, numbered as in the figures. The ASIC MMM design is exempt
// from the bandwidth bound (Section 6's blocking argument).
func DesignsFor(w paper.WorkloadID) ([]core.Design, error) {
	type slot struct {
		dev   paper.DeviceID
		label string
	}
	lineup := []slot{
		{paper.LX760, "(2) LX760"},
		{paper.GTX285, "(3) GTX285"},
		{paper.GTX480, "(4) GTX480"},
		{paper.R5870, "(5) R5870"},
		{paper.ASIC, "(6) ASIC"},
	}
	var hets []core.Design
	for _, s := range lineup {
		p, ok := ucore.PublishedParams(s.dev, w)
		if !ok {
			continue
		}
		hets = append(hets, core.Design{
			Kind:            core.Het,
			Label:           s.label,
			UCore:           bounds.UCore{Mu: p.Mu, Phi: p.Phi},
			ExemptBandwidth: s.dev == paper.ASIC && w == paper.MMM,
		})
	}
	if len(hets) == 0 {
		return nil, fmt.Errorf("project: no published U-core parameters for %s", w)
	}
	return core.StandardDesignsFor(hets), nil
}

// NodePoint is one trajectory sample: the optimized design point at one
// node, or Valid=false when the node is infeasible (e.g. a 10 W budget
// cannot power one BCE at 40nm).
type NodePoint struct {
	Node  itrs.Node
	Valid bool
	Point core.Point
	// EnergyNode is the task energy normalized to one BCE at the first
	// roadmap node: Point.EnergyNorm x the node's relative power per
	// transistor (Figure 10's metric).
	EnergyNode float64
}

// Trajectory is one design's evolution across the roadmap.
type Trajectory struct {
	Design core.Design
	F      float64
	Points []NodePoint
}

// MaxSpeedup returns the largest valid speedup along the trajectory.
func (t Trajectory) MaxSpeedup() float64 {
	best := 0.0
	for _, p := range t.Points {
		if p.Valid && p.Point.Speedup > best {
			best = p.Point.Speedup
		}
	}
	return best
}

// Project computes trajectories for every design in the workload's lineup
// at parallel fraction f. The design x node cells are independent
// optimizations, so they are evaluated across cfg.Workers goroutines and
// reassembled in order; output is identical at every worker count.
func Project(cfg Config, f float64) ([]Trajectory, error) {
	return ProjectCtx(context.Background(), cfg, f)
}

// ProjectCtx is Project bounded by ctx: cancelling it (e.g. an expired
// HTTP request deadline) aborts the projection between cells and returns
// ctx.Err(). nil means Background.
func ProjectCtx(ctx context.Context, cfg Config, f float64) ([]Trajectory, error) {
	return projectWith(ctx, cfg, f, false)
}

// ProjectEnergy is like Project but optimizes each node for minimum
// energy instead of maximum speedup (the alternative objective discussed
// with Figure 10).
func ProjectEnergy(cfg Config, f float64) ([]Trajectory, error) {
	return ProjectEnergyCtx(context.Background(), cfg, f)
}

// ProjectEnergyCtx is ProjectEnergy bounded by ctx (nil = Background).
func ProjectEnergyCtx(ctx context.Context, cfg Config, f float64) ([]Trajectory, error) {
	return projectWith(ctx, cfg, f, true)
}

// projectWith is the shared projection engine: it fans the design x node
// cells out over the worker pool, optimizes each for the requested
// objective under the config's model backend, and stitches the
// NodePoints back into per-design trajectories in roadmap order.
func projectWith(ctx context.Context, cfg Config, f float64, energy bool) ([]Trajectory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return nil, errors.New("project: f must be in [0, 1]")
	}
	designs, err := designsCached(cfg.Workload)
	if err != nil {
		return nil, err
	}
	var optimizer model.Optimizer
	if cfg.Model != nil {
		optimizer, err = cfg.Model(cfg.Alpha, cfg.MaxR)
	} else {
		optimizer, err = cfg.evaluator()
	}
	if err != nil {
		return nil, err
	}
	opt := optimizer.Optimize
	if energy {
		opt = optimizer.OptimizeEnergy
	}
	nodes := cfg.Roadmap.Nodes()
	// The budget conversion depends only on (workload, node): resolve the
	// BCE anchors once and convert each node once, instead of per cell.
	conv, err := cfg.budgetConverter()
	if err != nil {
		return nil, err
	}
	buds := make([]bounds.Budgets, len(nodes))
	for i, node := range nodes {
		buds[i] = conv(node)
	}
	// One flat cell per (design, node), row-major with node fastest, so
	// cell i maps to designs[i/len(nodes)] at nodes[i%len(nodes)].
	pts, err := par.Map(ctx, len(designs)*len(nodes), cfg.Workers,
		func(_ context.Context, i int) (NodePoint, error) {
			d, node, b := designs[i/len(nodes)], nodes[i%len(nodes)], buds[i%len(nodes)]
			pt, err := opt(d, f, b)
			np := NodePoint{Node: node}
			if err == nil {
				np.Valid = true
				np.Point = pt
				np.EnergyNode = pt.EnergyNorm * node.RelPowerPerXtor
			} else if !errors.Is(err, core.ErrInfeasible) {
				return NodePoint{}, fmt.Errorf("project: %s at %s: %w", d.Label, node.Name, err)
			}
			return np, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]Trajectory, 0, len(designs))
	for di, d := range designs {
		out = append(out, Trajectory{Design: d, F: f,
			Points: pts[di*len(nodes) : (di+1)*len(nodes) : (di+1)*len(nodes)]})
	}
	return out, nil
}

// FindTrajectory returns the trajectory whose design label matches.
func FindTrajectory(ts []Trajectory, label string) (Trajectory, error) {
	for _, t := range ts {
		if t.Design.Label == label {
			return t, nil
		}
	}
	return Trajectory{}, fmt.Errorf("project: no trajectory labeled %q", label)
}
