package project

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/calcm/heterosim/internal/paper"
)

// TestProjectParallelStability proves the golden-stability guarantee: the
// parallel engine's trajectories are identical (reflect.DeepEqual over
// every float) at workers = 1, 4, and GOMAXPROCS, for both objectives and
// every workload in the paper's lineup.
func TestProjectParallelStability(t *testing.T) {
	workloads := []paper.WorkloadID{paper.FFT1024, paper.MMM, paper.BS}
	for _, w := range workloads {
		for _, f := range []float64{0.5, 0.99, 0.999} {
			base := DefaultConfig(w)
			base.Workers = 1
			wantS, err := Project(base, f)
			if err != nil {
				t.Fatalf("%s f=%g: %v", w, f, err)
			}
			wantE, err := ProjectEnergy(base, f)
			if err != nil {
				t.Fatalf("%s f=%g: %v", w, f, err)
			}
			for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
				cfg := DefaultConfig(w)
				cfg.Workers = workers
				gotS, err := Project(cfg, f)
				if err != nil {
					t.Fatalf("%s f=%g workers=%d: %v", w, f, workers, err)
				}
				if !reflect.DeepEqual(gotS, wantS) {
					t.Errorf("%s f=%g: Project differs at workers=%d", w, f, workers)
				}
				gotE, err := ProjectEnergy(cfg, f)
				if err != nil {
					t.Fatalf("%s f=%g workers=%d: %v", w, f, workers, err)
				}
				if !reflect.DeepEqual(gotE, wantE) {
					t.Errorf("%s f=%g: ProjectEnergy differs at workers=%d", w, f, workers)
				}
			}
		}
	}
}

// TestProjectWorkersValidation: any Workers value is legal (<= 0 resolves
// to GOMAXPROCS), so Validate must not reject it.
func TestProjectWorkersValidation(t *testing.T) {
	cfg := DefaultConfig(paper.FFT1024)
	cfg.Workers = -5
	if err := cfg.Validate(); err != nil {
		t.Errorf("negative Workers must be legal (resolves to GOMAXPROCS): %v", err)
	}
	if _, err := Project(cfg, 0.9); err != nil {
		t.Errorf("Project with Workers=-5: %v", err)
	}
}

// benchProject regenerates the Figure 6 panels (four fractions) at a
// fixed worker count.
func benchProject(b *testing.B, workers int) {
	cfg := DefaultConfig(paper.FFT1024)
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range paper.ProjectionFractions {
			if _, err := Project(cfg, f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkProjectSerial is the single-worker baseline.
func BenchmarkProjectSerial(b *testing.B) { benchProject(b, 1) }

// BenchmarkProjectParallel fans the design x node cells out at GOMAXPROCS.
func BenchmarkProjectParallel(b *testing.B) { benchProject(b, 0) }
